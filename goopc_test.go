package goopc_test

// Public API smoke tests: everything a downstream user touches through
// the root package, exercised end to end.

import (
	"bytes"
	"testing"

	"goopc"
)

func apiFlow(t *testing.T) *goopc.Flow {
	t.Helper()
	opt := goopc.DefaultOptics()
	opt.SourceSteps = 5
	opt.GuardNM = 1200
	flow, err := goopc.NewFlow(goopc.Options{Optics: opt, SkipBiasTable: true})
	if err != nil {
		t.Fatal(err)
	}
	return flow
}

func TestPublicGeometryHelpers(t *testing.T) {
	p := goopc.Rectangle(0, 0, 100, 200)
	if p.Area() != 20000 {
		t.Errorf("area = %d", p.Area())
	}
	if goopc.Pt(3, 4) != (goopc.Point{X: 3, Y: 4}) {
		t.Error("Pt mismatch")
	}
}

func TestPublicFlowCorrectAssess(t *testing.T) {
	flow := apiFlow(t)
	target := []goopc.Polygon{goopc.Rectangle(-90, -2000, 90, 0)}
	mask, conv, err := flow.Correct(target, goopc.L2)
	if err != nil {
		t.Fatal(err)
	}
	if conv == nil || len(mask.Corrected) == 0 {
		t.Fatal("no correction result")
	}
	imp, err := flow.Assess(target, goopc.L0)
	if err != nil {
		t.Fatal(err)
	}
	if imp.EPE.Sites == 0 || imp.Data.Figures != 1 {
		t.Errorf("impact: %+v", imp)
	}
	if len(goopc.Levels) != 4 {
		t.Error("Levels")
	}
}

func TestPublicLayoutAndGDS(t *testing.T) {
	ly := goopc.NewLayout("api")
	cell := ly.MustCell("TOP")
	cell.AddPolygon(goopc.Poly, goopc.Rectangle(0, 0, 180, 2000))
	ly.SetTop(cell)
	var buf bytes.Buffer
	n, err := goopc.WriteGDS(&buf, ly)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Error("byte count mismatch")
	}
	back, err := goopc.ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	polys := goopc.Flatten(back.Top, goopc.Poly)
	if len(polys) != 1 || polys[0].Area() != 180*2000 {
		t.Errorf("round trip: %v", polys)
	}
}

func TestPublicSimulatorAndChecker(t *testing.T) {
	opt := goopc.DefaultOptics()
	opt.SourceSteps = 5
	opt.GuardNM = 1200
	sim, err := goopc.NewSimulator(opt)
	if err != nil {
		t.Fatal(err)
	}
	th, err := goopc.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	checker := goopc.NewChecker(sim, th)
	target := []goopc.Polygon{goopc.Rectangle(-125, -2000, 125, 2000)}
	rep, err := checker.Check(target, goopc.CorrectionResult{Corrected: target},
		goopc.Rectangle(-800, -800, 800, 800).BBox())
	if err != nil {
		t.Fatal(err)
	}
	if rep.EPE.Sites == 0 {
		t.Error("no sites checked")
	}
	// Annular preset is valid.
	if _, err := goopc.NewSimulator(goopc.AnnularOptics()); err != nil {
		t.Error(err)
	}
}

func TestPublicProcessWindow(t *testing.T) {
	opt := goopc.DefaultOptics()
	opt.SourceSteps = 5
	opt.GuardNM = 1200
	sim, err := goopc.NewSimulator(opt)
	if err != nil {
		t.Fatal(err)
	}
	th, err := goopc.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	var mask []goopc.Polygon
	for i := -3; i <= 3; i++ {
		x := goopc.Coord(i) * 500
		mask = append(mask, goopc.Rectangle(x-125, -2000, x+125, 2000))
	}
	res, err := goopc.AnalyzeProcessWindow(sim, th, mask,
		goopc.Rectangle(-400, -300, 400, 300).BBox(),
		[]goopc.PWSite{{Name: "d", At: goopc.Pt(0, 0), Horizontal: true, TargetCD: 250, TolFrac: 0.1}},
		[]float64{-300, 0, 300}, []float64{0.95, 1.0, 1.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InSpec[1][1] {
		t.Error("nominal out of spec")
	}
}

func TestPublicHierarchyAnalysis(t *testing.T) {
	ly := goopc.NewLayout("h")
	bit := ly.MustCell("BIT")
	bit.AddPolygon(goopc.Poly, goopc.Rectangle(0, 0, 180, 1000))
	top := ly.MustCell("TOP")
	top.PlaceArray(bit, goopc.Identity(), 8, 8, goopc.Pt(1000, 0), goopc.Pt(0, 2000))
	ly.SetTop(top)
	imp, err := goopc.AnalyzeHierarchyImpact(ly, goopc.Poly, 600)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Placements != 64 {
		t.Errorf("placements = %d", imp.Placements)
	}
	if imp.TotalVariants >= imp.Placements {
		t.Error("array interior should share contexts")
	}
}
