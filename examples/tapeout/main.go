// Tape-out example: the whole adoption story in one run. A placed
// standard-cell block goes through a JSON job deck — poly corrected
// hierarchically at L3, metal1 rule-based — and comes out as a single
// GDSII carrying both drawn and OPC layers, with the data-volume bill.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"goopc"
	"goopc/internal/gds"
	"goopc/internal/jobdeck"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
)

const deckJSON = `{
  "name": "block-tapeout",
  "optics": {"sourceSteps": 5, "guardNM": 1200},
  "anchor": {"cd": 250, "pitch": 500},
  "biasSpaces": [240, 320, 420, 560],
  "layers": [
    {"layer": 2, "level": "L3", "mode": "hier"},
    {"layer": 4, "level": "L1", "mode": "hier"}
  ]
}`

func main() {
	// Build the design.
	ly := goopc.NewLayout("tapeout-demo")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		log.Fatal(err)
	}
	block, err := gen.BuildBlock(ly, lib, "BLOCK", 2, 5, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}
	ly.SetTop(block)

	// Parse and run the deck.
	deck, err := jobdeck.Parse(strings.NewReader(deckJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running deck %q (calibration + rule table takes a minute)...\n", deck.Name)
	rep, err := jobdeck.Run(deck, ly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated threshold: %.3f\n", rep.Threshold)
	for _, lr := range rep.Layers {
		fmt.Printf("  layer %-7v %-16s cells=%d figures=%d %.1fs\n",
			lr.Layer, lr.Level, lr.Cells, lr.Figures, lr.Seconds)
	}

	// Price the result: the output GDS carries drawn + OPC layers.
	out, err := os.CreateTemp("", "tapeout-*.gds")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(out.Name())
	n, err := goopc.WriteGDS(out, ly)
	if err != nil {
		log.Fatal(err)
	}
	out.Close()
	fmt.Printf("wrote %s: %d bytes total\n", out.Name(), n)

	// Per-layer stats from the library model.
	glib, err := layout.ToGDS(ly)
	if err != nil {
		log.Fatal(err)
	}
	st := gds.Collect(glib)
	fmt.Printf("figures by layer: drawn poly=%d opc poly=%d drawn m1=%d opc m1=%d\n",
		st.PerLayer[2], st.PerLayer[102], st.PerLayer[4], st.PerLayer[104])
	fmt.Println("hierarchy preserved: OPC figures live on the cell masters, placed by reference.")
}
