// Line-end example: the single most visible OPC effect. Measures the
// printed pullback of a line tip uncorrected, with a rule-based
// hammerhead, and with converged model OPC — then shows the gap-closure
// risk when two tips face each other.
package main

import (
	"fmt"
	"log"

	"goopc"
	"goopc/internal/resist"
)

func main() {
	fmt.Println("calibrating flow...")
	flow, err := goopc.NewFlow(goopc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: isolated tip at y=0.
	tip := []goopc.Polygon{goopc.Rectangle(-90, -2600, 90, 0)}
	fmt.Println("\nisolated 180 nm line tip (drawn end at y=0):")
	for _, level := range goopc.Levels {
		res, _, err := flow.Correct(tip, level)
		if err != nil {
			log.Fatal(err)
		}
		im, err := flow.Sim.Aerial(res.AllMask(), goopc.Rectangle(-500, -1100, 500, 400).BBox())
		if err != nil {
			log.Fatal(err)
		}
		d, ok := im.FindCrossing(0, -1000, 0, 1, flow.Threshold, 1600)
		if !ok {
			log.Fatalf("%v: no contour", level)
		}
		fmt.Printf("  %-16s printed tip at y=%+.1f nm (pullback %.1f)\n", level, d-1000, 1000-d)
	}

	// Part 2: facing tips across a 300 nm gap — pullback widens the
	// gap; over-correction risks bridging it.
	gapTarget := []goopc.Polygon{
		goopc.Rectangle(-90, -2600, 90, -150),
		goopc.Rectangle(-90, 150, 90, 2600),
	}
	fmt.Println("\nfacing tips across a drawn 300 nm gap:")
	for _, level := range goopc.Levels {
		res, _, err := flow.Correct(gapTarget, level)
		if err != nil {
			log.Fatal(err)
		}
		im, err := flow.Sim.Aerial(res.AllMask(), goopc.Rectangle(-500, -800, 500, 800).BBox())
		if err != nil {
			log.Fatal(err)
		}
		gap, err := resist.MeasureGap(im, flow.Threshold, 0, 0, false, 1500)
		if err != nil {
			fmt.Printf("  %-16s gap closed (bridge)\n", level)
			continue
		}
		fmt.Printf("  %-16s printed gap %.1f nm (drawn 300)\n", level, gap)
	}
}
