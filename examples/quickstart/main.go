// Quickstart: calibrate a flow, correct an isolated line with a line
// end at every adoption level, and print the fidelity/cost tradeoff —
// the library's core loop in ~40 lines.
package main

import (
	"fmt"
	"log"

	"goopc"
)

func main() {
	// A flow is calibrated once per process: dose-to-size threshold
	// calibration plus rule-table generation by simulation. The zero
	// options select the 248 nm / NA 0.68 baseline.
	fmt.Println("calibrating 248 nm flow...")
	flow, err := goopc.NewFlow(goopc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resist threshold: %.3f of clear field\n\n", flow.Threshold)

	// The target: a 180 nm line ending in free space — the classic
	// OPC-demanding pattern (line-end pullback plus iso-dense bias).
	target := []goopc.Polygon{
		goopc.Rectangle(-90, -2200, 90, 0),
	}

	fmt.Println("level            EPE-rms  EPE-max  figures  shots  gds-bytes")
	for _, level := range goopc.Levels {
		impact, err := flow.Assess(target, level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %7.1f  %7.1f  %7d  %5d  %9d\n",
			level, impact.EPE.RMS, impact.EPE.Max,
			impact.Data.Figures, impact.Data.Shots, impact.Data.GDSBytes)
	}
	fmt.Println("\nFidelity improves monotonically with adoption level;")
	fmt.Println("mask data volume is the price paid.")
}
