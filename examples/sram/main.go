// SRAM example: the workload that drove OPC adoption. Generates a 6T-
// style bit-cell array, shows why hierarchy matters (one corrected bit
// cell serves thousands of placements when correction is context-
// independent), and quantifies the variant explosion if correction
// were context-dependent.
package main

import (
	"fmt"
	"log"

	"goopc"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/mask"
)

func main() {
	ly := goopc.NewLayout("sram-demo")
	arr, err := gen.BuildSRAM(ly, gen.Tech180(), "SRAM", 32, 32)
	if err != nil {
		log.Fatal(err)
	}
	ly.SetTop(arr)

	hs, err := layout.CollectHierStats(ly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d placements of the bit cell, %d stored figures, %d expanded (%.0fx compression)\n",
		hs.Placements, hs.StoredFigures, hs.ExpandedFigures, hs.CompressionRatio)

	// Context analysis: interior bit cells share one optical context;
	// edge and corner cells differ. The variant count is what a
	// hierarchical OPC flow must manage.
	imp, err := goopc.AnalyzeHierarchyImpact(ly, goopc.Poly, 700)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context-dependent OPC at 700 nm radius: %d variants of %d master(s) over %d placements\n",
		imp.TotalVariants, imp.Masters, imp.Placements)
	fmt.Println("(interior cells collapse to one variant: hierarchical correction stays viable)")

	// Correct ONE bit cell at L3 and price the whole array both ways.
	fmt.Println("\ncalibrating flow...")
	flow, err := goopc.NewFlow(goopc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bit := ly.Cell("SRAM_bit")
	target := goopc.Flatten(bit, goopc.Poly)
	res, conv, err := flow.Correct(target, goopc.L3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit cell corrected: EPE rms %.2f -> %.2f nm in %d iterations\n",
		conv.PerIter[0].RMS, conv.Final().RMS, conv.Iterations)

	w := mask.DefaultWriter()
	cellCost := mask.Analyze(res.AllMask(), w)
	flatCost := mask.DataStats{
		Figures:  cellCost.Figures * int(hs.Placements),
		Shots:    cellCost.Shots * int(hs.Placements),
		GDSBytes: cellCost.GDSBytes * hs.Placements,
	}
	fmt.Printf("mask data, hierarchical: %d figures / %d shots for the master + %d array refs\n",
		cellCost.Figures, cellCost.Shots, hs.Placements)
	fmt.Printf("mask data if flattened:  %d figures / %d shots / %d bytes\n",
		flatCost.Figures, flatCost.Shots, flatCost.GDSBytes)
}
