// Hotspot-library example: find printability failures by simulation
// once, capture them as 2D geometry patterns, then screen a new design
// for the same configurations with zero simulation — the workflow that
// turned OPC verification into pattern-based design rules.
package main

import (
	"fmt"
	"log"

	"goopc"
)

func main() {
	fmt.Println("calibrating flow...")
	opt := goopc.DefaultOptics()
	opt.SourceSteps = 5
	opt.GuardNM = 1200
	flow, err := goopc.NewFlow(goopc.Options{Optics: opt, SkipBiasTable: true})
	if err != nil {
		log.Fatal(err)
	}

	// A test-chip clip with two marginal constructs: a sub-resolution
	// space (bridges) and a sub-resolution line (pinches).
	testChip := []goopc.Polygon{
		// Bridge risk: 60 nm space between wide lines.
		goopc.Rectangle(-460, -2000, -30, 2000),
		goopc.Rectangle(30, -2000, 460, 2000),
		// Pinch risk: 60 nm line, far away.
		goopc.Rectangle(9970, -2000, 10030, 2000),
	}
	fmt.Println("verifying test chip at L0 and capturing hotspot patterns...")
	hl, err := flow.BuildHotspotLibrary(testChip, goopc.L0, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d hotspot pattern(s):\n", hl.Lib.Len())
	for _, c := range hl.Captured {
		fmt.Printf("  %-10s anchored at %v\n", c.Kind, c.Anchor)
	}

	// A "product" design reuses one bad construct among clean geometry.
	var product []goopc.Polygon
	product = append(product,
		goopc.Rectangle(0, 0, 180, 4000),     // clean line
		goopc.Rectangle(540, 0, 720, 4000),   // clean line
		goopc.Rectangle(1080, 0, 1260, 4000), // clean line
	)
	// The same 60 nm space construct, placed far from the original.
	product = append(product,
		goopc.Rectangle(20000-460, 5000, 20000-30, 9000),
		goopc.Rectangle(20000+30, 5000, 20000+460, 9000),
	)
	fmt.Println("\nscreening the product design (no simulation)...")
	matches := hl.Screen(product)
	if len(matches) == 0 {
		fmt.Println("no known hotspots found")
		return
	}
	for _, m := range matches {
		fmt.Printf("  known hotspot %q found at %v\n", m.Name, m.At)
	}

	// The screen is geometric: fixing the spacing clears it.
	fixed := []goopc.Polygon{
		goopc.Rectangle(20000-560, 5000, 20000-130, 9000),
		goopc.Rectangle(20000+130, 5000, 20000+560, 9000),
	}
	if rem := hl.Screen(fixed); len(rem) == 0 {
		fmt.Println("after widening the space: screen is clean")
	} else {
		fmt.Printf("after fix: %d matches remain\n", len(rem))
	}
}
