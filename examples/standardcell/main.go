// Standard-cell example: generate a small 180 nm standard-cell library,
// place a block, run model-based OPC over its poly layer with the tiled
// full-layer engine, verify the result, and write both drawn and
// corrected GDSII — the shape of a production tape-out flow.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"goopc"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
)

func main() {
	// Build the library and place a 2x6 block.
	ly := goopc.NewLayout("stdcell-demo")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		log.Fatal(err)
	}
	block, err := gen.BuildBlock(ly, lib, "BLOCK", 2, 6, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	ly.SetTop(block)
	target := goopc.Flatten(block, goopc.Poly)
	fmt.Printf("block: %d cells, %d flat poly polygons, bbox %v\n",
		len(block.Insts), len(target), block.BBox())

	// Calibrate and correct the full layer with tiling. Demo-speed
	// source sampling: 5 steps instead of 7 cuts runtime ~3x with
	// sub-nm effect on the corrections.
	fmt.Println("calibrating flow...")
	opt := goopc.DefaultOptics()
	opt.SourceSteps = 5
	opt.GuardNM = 1200
	flow, err := goopc.NewFlow(goopc.Options{Optics: opt})
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err := flow.CorrectWindowed(target, goopc.L3, 4*flow.Ambit, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrected %d polygons in %d tiles, %.1fs, worst tile RMS %.2f nm\n",
		len(res.Corrected), stats.Tiles, stats.Seconds, stats.WorstRMS)

	// Spot-verify one cell-sized window: check the features fully
	// inside the core, simulating with a halo of surrounding mask so
	// the clip boundary introduces no artificial EPE.
	checker := goopc.NewChecker(flow.Sim, flow.Threshold)
	core := goopc.Rectangle(0, 0, 4000, 5000).BBox()
	simWin := core.Grow(flow.Ambit)
	var clipTarget, clipMask []goopc.Polygon
	for _, p := range target {
		bb := p.BBox()
		if core.Contains(bb.Center()) && bb.X0 >= core.X0 && bb.X1 <= core.X1 {
			clipTarget = append(clipTarget, p)
		}
	}
	for _, p := range res.Corrected {
		if p.BBox().Touches(simWin) {
			clipMask = append(clipMask, p)
		}
	}
	rep, err := checker.Check(clipTarget, goopc.CorrectionResult{Corrected: clipMask}, simWin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification clip: %d EPE sites, rms %.2f nm\n", rep.EPE.Sites, rep.EPE.RMS)
	byKind := map[string]int{}
	for _, h := range rep.Hotspots {
		byKind[h.Kind.String()]++
	}
	fmt.Printf("hotspots by kind: %v\n", byKind)

	// Write drawn and corrected data; compare sizes.
	drawnBytes := writeGDS("stdcell_drawn.gds", target, goopc.Poly)
	corrBytes := writeGDS("stdcell_opc.gds", res.Corrected, layout.OPCLayer(goopc.Poly))
	fmt.Printf("data volume: drawn %d B -> corrected %d B (%.2fx)\n",
		drawnBytes, corrBytes, float64(corrBytes)/float64(drawnBytes))
}

func writeGDS(path string, polys []goopc.Polygon, l goopc.Layer) int64 {
	out := goopc.NewLayout(path)
	cell := out.MustCell("TOP")
	for _, p := range polys {
		cell.AddPolygon(l, p)
	}
	out.SetTop(cell)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := goopc.WriteGDS(f, out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, n)
	return n
}
