// Package goopc is the public surface of the OPC adoption library: a
// from-scratch Go implementation of a 2001-era optical proximity
// correction flow — GDSII layout in, calibrated partially-coherent
// aerial-image model, rule-based and model-based correction, post-OPC
// verification, mask data preparation — together with the impact
// metrics (print fidelity, mask data volume, hierarchy survival,
// design-rule headroom, runtime) that the DAC 2001 paper "Adoption of
// OPC and the Impact on Design and Layout" discusses.
//
// The implementation lives under internal/; this package re-exports the
// supported API. Quick start:
//
//	flow, err := goopc.NewFlow(goopc.Options{})
//	target := []goopc.Polygon{goopc.Rectangle(0, 0, 180, 2000)}
//	mask, conv, err := flow.Correct(target, goopc.L3)
//	impact, err := flow.Assess(target, goopc.L3)
package goopc

import (
	"io"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/gds"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/obs"
	"goopc/internal/opc"
	"goopc/internal/opc/model"
	"goopc/internal/optics"
	"goopc/internal/orc"
	"goopc/internal/resist"
)

// Geometry types.
type (
	// Coord is a layout coordinate in database units (1 DBU = 1 nm).
	Coord = geom.Coord
	// Point is a layout location.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a closed rectilinear ring.
	Polygon = geom.Polygon
	// Region is a set of disjoint rectangles with boolean operations.
	Region = geom.Region
	// Xform is a placement transform (orientation + magnification +
	// offset).
	Xform = geom.Xform
	// Orient is one of the eight right-angle placement orientations.
	Orient = geom.Orient
)

// Identity returns the no-op placement transform.
func Identity() Xform { return geom.Identity() }

// Pt builds a Point.
func Pt(x, y Coord) Point { return geom.Pt(x, y) }

// Rectangle builds the 4-point ring of a rectangle.
func Rectangle(x0, y0, x1, y1 Coord) Polygon { return geom.R(x0, y0, x1, y1).Polygon() }

// Flow types: the correction pipeline and its knobs.
type (
	// Flow is a calibrated correction flow; see core.Flow.
	Flow = core.Flow
	// Options configures NewFlow.
	Options = core.Options
	// Level is the OPC adoption level.
	Level = core.Level
	// Impact quantifies what one level did to one layout clip.
	Impact = core.Impact
	// PitchResult is one point of the design-rule exploration sweep.
	PitchResult = core.PitchResult
	// TileStats reports a windowed full-layer correction.
	TileStats = core.TileStats
	// TileDegradation records one tile class that fell down the
	// degradation ladder (DESIGN.md 5e) and needs re-verification.
	TileDegradation = core.TileDegradation
	// Checkpoint is the resumable state of a windowed correction run;
	// set Flow.CheckpointPath / Flow.Resume to use it.
	Checkpoint = core.Checkpoint
	// FaultPlan is a deterministic fault-injection plan; arm it with
	// Flow.FaultPlan to rehearse recovery paths.
	FaultPlan = faults.Plan
	// HierarchyImpact reports context-variant counting.
	HierarchyImpact = core.HierarchyImpact
	// Convergence is the model-OPC iteration trace.
	Convergence = model.Convergence
	// CorrectionResult is a corrected mask (main features + assists).
	CorrectionResult = opc.Result
	// EPEStats summarizes edge placement error.
	EPEStats = opc.EPEStats
)

// Adoption levels.
const (
	// L0 sends drawn data to the mask unchanged.
	L0 = core.L0
	// L1 applies rule-based OPC (bias tables, hammerheads, serifs).
	L1 = core.L1
	// L2 applies single-pass model-based OPC.
	L2 = core.L2
	// L3 applies converged model-based OPC with scattering bars.
	L3 = core.L3
)

// Levels lists all adoption levels in order.
var Levels = core.Levels

// NewFlow calibrates a correction flow: dose-to-size threshold
// calibration against the anchor pattern, then rule-table generation by
// simulation. The zero Options value selects the 248 nm / NA 0.68
// baseline with a 250 nm / 500 nm anchor.
func NewFlow(o Options) (*Flow, error) { return core.NewFlow(o) }

// AnalyzeHierarchyImpact counts the corrected cell variants a
// context-dependent hierarchical OPC flow needs.
func AnalyzeHierarchyImpact(ly *Layout, l Layer, radius Coord) (HierarchyImpact, error) {
	return core.AnalyzeHierarchyImpact(ly, l, radius)
}

// Layout database types.
type (
	// Layout is a hierarchical cell database.
	Layout = layout.Layout
	// Cell is one named piece of layout.
	Cell = layout.Cell
	// Layer identifies a mask layer.
	Layer = layout.Layer
)

// Common process layers (see internal/layout for the full map).
const (
	Active  = layout.Active
	Poly    = layout.Poly
	Contact = layout.Contact
	Metal1  = layout.Metal1
	Via1    = layout.Via1
	Metal2  = layout.Metal2
)

// NewLayout creates an empty layout database.
func NewLayout(name string) *Layout { return layout.New(name) }

// Flatten expands one layer under a cell with all transforms applied.
func Flatten(c *Cell, l Layer) []Polygon { return layout.Flatten(c, l) }

// ReadGDS parses a GDSII stream into a layout.
func ReadGDS(r io.Reader) (*Layout, error) { return layout.ReadGDS(r) }

// WriteGDS serializes a layout as a GDSII stream and returns the byte
// count (the mask data volume).
func WriteGDS(w io.Writer, ly *Layout) (int64, error) { return layout.WriteGDS(w, ly) }

// GDSLibrary is the lower-level GDSII model for callers that need
// element access rather than the cell database.
type GDSLibrary = gds.Library

// Imaging and verification types for advanced use.
type (
	// OpticsSettings describes the exposure system.
	OpticsSettings = optics.Settings
	// Simulator computes aerial images.
	Simulator = optics.Simulator
	// AerialImage is a computed intensity field.
	AerialImage = optics.Image
	// Checker is the post-OPC verification engine.
	Checker = orc.Checker
	// VerifyReport is a verification outcome.
	VerifyReport = orc.Report
	// PWSite is a process-window CD monitor.
	PWSite = orc.PWSite
	// PWResult is an exposure-defocus analysis.
	PWResult = orc.PWResult
)

// DefaultOptics returns the 248 nm KrF baseline settings.
func DefaultOptics() OpticsSettings { return optics.Default() }

// AnnularOptics returns the off-axis illumination variant.
func AnnularOptics() OpticsSettings { return optics.DefaultAnnular() }

// NewSimulator validates settings and builds an aerial-image simulator.
func NewSimulator(s OpticsSettings) (*Simulator, error) { return optics.New(s) }

// CalibrateThreshold performs dose-to-size calibration: the intensity
// threshold at which the anchor line/space pattern prints at its drawn
// CD.
func CalibrateThreshold(sim *Simulator, anchorCD, anchorPitch Coord) (float64, error) {
	return resist.CalibrateThreshold(sim, anchorCD, anchorPitch)
}

// NewChecker builds a post-OPC verification engine with production
// defaults.
func NewChecker(sim *Simulator, threshold float64) *Checker {
	return orc.NewChecker(sim, threshold)
}

// AnalyzeProcessWindow runs the exposure-defocus matrix for a mask.
func AnalyzeProcessWindow(sim *Simulator, threshold float64, mask []Polygon,
	window Rect, sites []PWSite, focuses, doses []float64) (*PWResult, error) {
	return orc.AnalyzeWindow(sim, threshold, mask, window, sites, focuses, doses)
}

// Observability types (DESIGN.md section 5d): the metrics registry the
// library instruments itself onto, phase spans, run-report artifacts,
// and the live HTTP inspector.
type (
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// Span is a phase-trace span; set Flow.Span to trace tiled runs.
	Span = obs.Span
	// RunReport is the per-run JSON artifact (metrics + trace + build).
	RunReport = obs.RunReport
	// Inspector serves /metrics, /status and /debug/pprof over HTTP.
	Inspector = obs.Inspector
	// Logger is the leveled progress logger used by the CLI tools.
	Logger = obs.Logger
)

// Metrics returns the process-wide registry all goopc_* series live on.
func Metrics() *MetricsRegistry { return obs.Default() }

// NewSpan starts a root phase span on the default registry. End it and
// pass it to RunReport.Finish (or read Span.Tree) for the trace.
func NewSpan(name string) *Span { return obs.NewSpan(name, obs.Default()) }

// NewRunReport starts a run-report artifact for a tool invocation.
func NewRunReport(tool string, args []string, settings map[string]any) *RunReport {
	return obs.NewRunReport(tool, args, settings)
}

// ParseFaultPlan parses the fault-plan grammar, e.g.
// "seed=42;tile:panic:n=2;tile:delay:p=0.1:d=50ms" (DESIGN.md 5e).
func ParseFaultPlan(s string) (*FaultPlan, error) { return faults.Parse(s) }

// LoadCheckpoint reads a checkpoint artifact written by a prior run.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }
