package goopc_test

// The benchmark harness: one testing.B benchmark per reconstructed
// table and figure (see DESIGN.md section 4), driven by the same
// experiment code as cmd/benchtables, plus micro-benchmarks of the
// performance-critical substrates. Each table/figure benchmark performs
// one full experiment per iteration; run with -benchtime=1x for a
// single regeneration.

import (
	"io"
	"math/rand"
	"testing"

	"goopc/internal/experiments"
	"goopc/internal/fft"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/mask"
	"goopc/internal/optics"
)

func benchCfg() experiments.Config { return experiments.Default() }

func runExp[T interface{ Print(io.Writer) }](b *testing.B, run func(experiments.Config) (T, error)) {
	b.Helper()
	cfg := benchCfg()
	// Flow setup (calibration + rule table) is shared and cached; build
	// it outside the timer.
	if _, err := experiments.SharedFlow(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkTable1CorrectionLevels(b *testing.B) { runExp(b, experiments.RunT1) }
func BenchmarkTable2MaskData(b *testing.B)         { runExp(b, experiments.RunT2) }
func BenchmarkTable3Runtime(b *testing.B)          { runExp(b, experiments.RunT3) }
func BenchmarkTable4MinPitch(b *testing.B)         { runExp(b, experiments.RunT4) }
func BenchmarkFigure1ThroughPitch(b *testing.B)    { runExp(b, experiments.RunF1) }
func BenchmarkFigure2LineEnd(b *testing.B)         { runExp(b, experiments.RunF2) }
func BenchmarkFigure3ProcessWindow(b *testing.B)   { runExp(b, experiments.RunF3) }
func BenchmarkFigure4Convergence(b *testing.B)     { runExp(b, experiments.RunF4) }
func BenchmarkFigure5Hierarchy(b *testing.B)       { runExp(b, experiments.RunF5) }
func BenchmarkFigure6Fragmentation(b *testing.B)   { runExp(b, experiments.RunF6) }
func BenchmarkExt1TimingImpact(b *testing.B)       { runExp(b, experiments.RunE1) }
func BenchmarkExt2AttPSM(b *testing.B)             { runExp(b, experiments.RunE2) }
func BenchmarkExt3MEEF(b *testing.B)               { runExp(b, experiments.RunE3) }
func BenchmarkExt4Yield(b *testing.B)              { runExp(b, experiments.RunE4) }

// --- substrate micro-benchmarks ---

func BenchmarkGeomUnion1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 1000)
	for i := range rects {
		x := geom.Coord(rng.Intn(100000))
		y := geom.Coord(rng.Intn(100000))
		rects[i] = geom.R(x, y, x+geom.Coord(100+rng.Intn(2000)), y+geom.Coord(100+rng.Intn(2000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := geom.RegionFromRects(rects...)
		_ = g.Area()
	}
}

func BenchmarkGeomPolygonReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rects := make([]geom.Rect, 200)
	for i := range rects {
		x := geom.Coord(rng.Intn(20000))
		y := geom.Coord(rng.Intn(20000))
		rects[i] = geom.R(x, y, x+geom.Coord(500+rng.Intn(2000)), y+geom.Coord(500+rng.Intn(2000)))
	}
	g := geom.RegionFromRects(rects...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Polygons()
	}
}

func BenchmarkFFT2D256(b *testing.B) {
	g := fft.NewGrid(256, 256)
	for i := range g.Data {
		g.Data[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		if err := c.Forward2D(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFT2D256Planned is the same transform through a reusable
// Plan2D and the grid pool: no per-call allocation, table twiddles.
func BenchmarkFFT2D256Planned(b *testing.B) {
	g := fft.NewGrid(256, 256)
	for i := range g.Data {
		g.Data[i] = complex(float64(i%17), 0)
	}
	plan, err := fft.NewPlan2D(256, 256)
	if err != nil {
		b.Fatal(err)
	}
	plan.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := fft.GetGrid(256, 256)
		copy(c.Data, g.Data)
		if err := plan.Forward2DP(c); err != nil {
			b.Fatal(err)
		}
		fft.PutGrid(c)
	}
}

func benchAerial(b *testing.B, engine optics.Engine, parallel bool, prec ...optics.Precision) {
	b.Helper()
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	s.Engine = engine
	s.Parallel = parallel
	if len(prec) > 0 {
		s.Precision = prec[0]
	}
	sim, err := optics.New(s)
	if err != nil {
		b.Fatal(err)
	}
	var mask []geom.Polygon
	for i := -3; i <= 3; i++ {
		x := geom.Coord(i) * 430
		mask = append(mask, geom.R(x-90, -2000, x+90, 2000).Polygon())
	}
	window := geom.R(-800, -400, 800, 400)
	// Warm the kernel cache: steady-state simulation cost is the metric.
	if _, err := sim.Aerial(mask, window); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Aerial(mask, window); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAerialImage is the historical name: the default engine
// (SOCS, serial) at equal source sampling to the Abbe variants below.
func BenchmarkAerialImage(b *testing.B)             { benchAerial(b, optics.EngineSOCS, false) }
func BenchmarkAerialImageSOCSParallel(b *testing.B) { benchAerial(b, optics.EngineSOCS, true) }

// BenchmarkAerialImageF32 is the SOCS serial benchmark with the
// PrecisionF32 kernel path (complex64 coarse inverses).
func BenchmarkAerialImageF32(b *testing.B) {
	benchAerial(b, optics.EngineSOCS, false, optics.PrecisionF32)
}
func BenchmarkAerialImageAbbe(b *testing.B)         { benchAerial(b, optics.EngineAbbe, false) }
func BenchmarkAerialImageAbbeParallel(b *testing.B) { benchAerial(b, optics.EngineAbbe, true) }

func BenchmarkFractureStdCellBlock(b *testing.B) {
	ly := layout.New("bench")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		b.Fatal(err)
	}
	block, err := gen.BuildBlock(ly, lib, "B", 4, 10, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	polys := layout.Flatten(block, layout.Poly)
	w := mask.DefaultWriter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mask.Fracture(polys, w.MaxShotNM)
	}
}

func BenchmarkGDSWrite(b *testing.B) {
	ly := layout.New("bench")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		b.Fatal(err)
	}
	block, err := gen.BuildBlock(ly, lib, "B", 4, 10, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	ly.SetTop(block)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.WriteGDS(io.Discard, ly); err != nil {
			b.Fatal(err)
		}
	}
}
