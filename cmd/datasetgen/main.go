// Command datasetgen drives the dataset factory and the learned
// initial-bias prior (DESIGN.md 5j): it sweeps layout generators x
// optics x correction levels into a sharded on-disk dataset, audits
// dataset integrity, and fits prior tables that warm-start model OPC
// (opcflow -prior, opcd FlowSpec.prior).
//
// Usage:
//
//	datasetgen sweep -out dir [-spec spec.json | -smoke] [-seed N]
//	datasetgen stats <dir>
//	datasetgen verify <dir> [-regen N]
//	datasetgen fit <dir> -o prior.json [-radius DBU] [-level L2|L3]
//	datasetgen spec [-smoke]
//
// sweep generates the dataset described by -spec (JSON, see spec
// subcommand for a template) into -out; -smoke selects the tiny
// built-in CI spec and -seed overrides the spec's seed. verify
// re-hashes every shard against the manifest; -regen N additionally
// regenerates shard N from the spec alone and requires the bytes to
// match the shard on disk. fit builds a prior table from a generated
// dataset and writes it with its summary. spec prints the built-in
// spec as JSON to adapt.
//
// Exit codes: 0 success, 1 failure, 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"goopc/internal/dataset"
	"goopc/internal/geom"
	"goopc/internal/layout/gen"
	"goopc/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("datasetgen", flag.ContinueOnError)
	version := fs.Bool("version", false, "print the build fingerprint and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println("datasetgen", obs.CollectBuildInfo())
		return 0
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "datasetgen: need a subcommand: sweep | stats | verify | fit | spec")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch rest[0] {
	case "sweep":
		err = cmdSweep(ctx, rest[1:])
	case "stats":
		err = cmdStats(rest[1:])
	case "verify":
		err = cmdVerify(ctx, rest[1:])
	case "fit":
		err = cmdFit(rest[1:])
	case "spec":
		err = cmdSpec(rest[1:])
	default:
		fmt.Fprintf(os.Stderr, "datasetgen: unknown subcommand %q\n", rest[0])
		return 2
	}
	if err == nil {
		return 0
	}
	fmt.Fprintf(os.Stderr, "datasetgen: %v\n", err)
	var ue usageErr
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// usageErr marks command-line mistakes (exit 2).
type usageErr struct{ error }

// smokeSpec is the tiny CI sweep `make dataset-smoke` runs: two
// pattern populations, one optics point, model-full correction.
func smokeSpec() dataset.Spec {
	return dataset.Spec{
		Name: "smoke",
		Seed: 7,
		Generators: []dataset.GeneratorSpec{
			{Name: "through-pitch", Variants: []int{0}},
			{Name: "corner", Variants: []int{0}},
		},
		ShardSamples: 1,
	}
}

// defaultSpec sweeps the whole generator catalog at one optics point —
// a sensible starting corpus to fit a first prior from.
func defaultSpec() dataset.Spec {
	spec := dataset.Spec{Name: "catalog", Seed: 1}
	for _, name := range gen.CatalogNames() {
		spec.Generators = append(spec.Generators, dataset.GeneratorSpec{Name: name})
	}
	return spec
}

func loadSpec(path string, smoke bool) (dataset.Spec, error) {
	if path != "" && smoke {
		return dataset.Spec{}, usageErr{errors.New("-spec and -smoke are mutually exclusive")}
	}
	if smoke {
		return smokeSpec(), nil
	}
	if path == "" {
		return defaultSpec(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return dataset.Spec{}, err
	}
	var spec dataset.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return dataset.Spec{}, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("datasetgen sweep", flag.ContinueOnError)
	out := fs.String("out", "", "dataset output directory (required)")
	specPath := fs.String("spec", "", "sweep spec JSON (default: built-in catalog spec)")
	smoke := fs.Bool("smoke", false, "use the tiny built-in CI spec")
	seed := fs.Int64("seed", 0, "override the spec's root seed (0 keeps it)")
	if err := fs.Parse(args); err != nil {
		return usageErr{err}
	}
	if *out == "" {
		return usageErr{errors.New("sweep: -out is required")}
	}
	spec, err := loadSpec(*specPath, *smoke)
	if err != nil {
		return err
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	man, err := dataset.Generate(ctx, spec, *out, dataset.Options{
		Log: func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d samples in %d shards, fingerprint %s\n",
		*out, man.Samples, len(man.Shards), man.Fingerprint)
	return nil
}

func dirArg(fs *flag.FlagSet, name string, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", usageErr{err}
	}
	if fs.NArg() != 1 {
		return "", usageErr{fmt.Errorf("%s: need exactly one dataset directory", name)}
	}
	return fs.Arg(0), nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("datasetgen stats", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	dir, err := dirArg(fs, "stats", args)
	if err != nil {
		return err
	}
	man, err := dataset.LoadManifest(dir)
	if err != nil {
		return err
	}
	type stats struct {
		Samples   int            `json:"samples"`
		Shards    int            `json:"shards"`
		Mode      string         `json:"mode"`
		Seed      int64          `json:"seed"`
		Levels    map[string]int `json:"levels"`
		Iters     int            `json:"model_iterations"`
		Fragments int            `json:"fragments"`
		Converged int            `json:"converged"`
	}
	st := stats{Samples: man.Samples, Shards: len(man.Shards), Mode: man.Mode,
		Seed: man.Seed, Levels: map[string]int{}}
	err = dataset.ScanRecords(dir, func(rec dataset.Record) error {
		st.Levels[rec.Level]++
		st.Iters += rec.Iters
		st.Fragments += len(rec.Frags)
		if rec.Converged {
			st.Converged++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if *asJSON {
		return json.NewEncoder(os.Stdout).Encode(st)
	}
	fmt.Printf("dataset %s (%s, seed %d)\n", dir, st.Mode, st.Seed)
	fmt.Printf("  samples    %d in %d shards (fingerprint %s)\n", st.Samples, st.Shards, man.Fingerprint)
	for level, n := range st.Levels {
		fmt.Printf("  level %-4s %d samples\n", level, n)
	}
	fmt.Printf("  iterations %d model iterations, %d/%d converged\n", st.Iters, st.Converged, st.Samples)
	fmt.Printf("  fragments  %d recorded\n", st.Fragments)
	return nil
}

func cmdVerify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("datasetgen verify", flag.ContinueOnError)
	regen := fs.Int("regen", -1, "also regenerate this shard from the spec and require byte-identity")
	dir, err := dirArg(fs, "verify", args)
	if err != nil {
		return err
	}
	if err := dataset.Verify(dir); err != nil {
		return err
	}
	fmt.Printf("dataset %s: shard hashes verified\n", dir)
	if *regen < 0 {
		return nil
	}
	man, err := dataset.LoadManifest(dir)
	if err != nil {
		return err
	}
	if *regen >= len(man.Shards) {
		return usageErr{fmt.Errorf("verify: shard %d out of range (%d shards)", *regen, len(man.Shards))}
	}
	got, err := dataset.RegenerateShard(ctx, dir, *regen, dataset.Options{})
	if err != nil {
		return err
	}
	disk, err := os.ReadFile(filepath.Join(dir, man.Shards[*regen].File))
	if err != nil {
		return err
	}
	if string(got) != string(disk) {
		return fmt.Errorf("shard %d regeneration differs from disk: %d vs %d bytes", *regen, len(got), len(disk))
	}
	fmt.Printf("dataset %s: shard %d regenerated byte-identically (%d bytes)\n", dir, *regen, len(got))
	return nil
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("datasetgen fit", flag.ContinueOnError)
	out := fs.String("o", "", "prior table output path (required)")
	radius := fs.Int("radius", 0, "signature capture radius in DBU (default: dataset.DefaultSigRadius)")
	level := fs.String("level", "", "correction level to fit (default: the spec's first level)")
	dir, err := dirArg(fs, "fit", args)
	if err != nil {
		return err
	}
	if *out == "" {
		return usageErr{errors.New("fit: -o is required")}
	}
	tab, err := dataset.Fit(dir, geom.Coord(*radius), *level)
	if err != nil {
		return err
	}
	if err := tab.Save(*out); err != nil {
		return err
	}
	s := tab.Summary()
	fmt.Printf("prior %s: level %s radius %d, %d entries (%d conflicted), %.1f obs/entry, fitted from %d runs at %.2f mean iterations\n",
		*out, tab.Level, tab.Radius, s.Entries, s.Conflicts, s.MeanObs, s.Runs, s.MeanIters)
	return nil
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("datasetgen spec", flag.ContinueOnError)
	smoke := fs.Bool("smoke", false, "print the tiny built-in CI spec")
	if err := fs.Parse(args); err != nil {
		return usageErr{err}
	}
	spec := defaultSpec()
	if *smoke {
		spec = smokeSpec()
	}
	norm, err := dataset.Normalize(spec)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(norm)
}
