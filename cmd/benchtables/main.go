// Command benchtables regenerates the reconstructed evaluation: every
// table and figure indexed in DESIGN.md section 4. Results print as
// plain-text tables matching the rows recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtables            # run everything (several minutes)
//	benchtables -exp T1    # one experiment: T1 T2 T3 T4 F1 F2 F3 F4 F5 F6
//	benchtables -exp T2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

import "goopc/internal/experiments"

type runner struct {
	name string
	run  func(experiments.Config, io.Writer) error
}

var all = []runner{
	{"T1", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT1(c))(w) }},
	{"T2", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT2(c))(w) }},
	{"T3", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT3(c))(w) }},
	{"T4", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT4(c))(w) }},
	{"F1", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF1(c))(w) }},
	{"F2", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF2(c))(w) }},
	{"F3", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF3(c))(w) }},
	{"F4", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF4(c))(w) }},
	{"F5", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF5(c))(w) }},
	{"F6", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF6(c))(w) }},
	{"E1", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE1(c))(w) }},
	{"E2", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE2(c))(w) }},
	{"E3", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE3(c))(w) }},
	{"E4", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE4(c))(w) }},
}

// printable is any experiment result.
type printable interface{ Print(io.Writer) }

// p adapts a (result, error) pair to a deferred printer.
func p[T printable](res T, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		res.Print(w)
		return nil
	}
}

func main() {
	os.Exit(run())
}

// run carries the real main so profile-flushing defers execute before
// the process exits (os.Exit skips defers).
func run() int {
	exp := flag.String("exp", "all", "experiment id (T1..T4, F1..F6) or 'all'")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is current
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: memprofile: %v\n", err)
			}
		}()
	}
	cfg := experiments.Default()
	exitCode := 0
	for _, r := range all {
		if !strings.EqualFold(*exp, "all") && !strings.EqualFold(*exp, r.name) {
			continue
		}
		t0 := time.Now()
		if err := r.run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables %s: %v\n", r.name, err)
			exitCode = 1
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", r.name, time.Since(t0).Seconds())
	}
	return exitCode
}
