// Command benchtables regenerates the reconstructed evaluation: every
// table and figure indexed in DESIGN.md section 4. Results print as
// plain-text tables matching the rows recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtables                     # run everything (several minutes)
//	benchtables -exp T2 -exp T3     # a subset (repeatable flag)
//	benchtables -exp T2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	benchtables -exp T2 -report run.json   # metrics + trace artifact
//
// Progress ("[T2 completed in ...]") goes to stderr through the obs
// logger (-v / -q adjust verbosity); the tables themselves stay on
// stdout so redirecting stdout captures exactly the results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"goopc/internal/experiments"
	"goopc/internal/obs"
)

type runner struct {
	name string
	run  func(experiments.Config, io.Writer) error
}

var all = []runner{
	{"T1", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT1(c))(w) }},
	{"T2", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT2(c))(w) }},
	{"T3", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT3(c))(w) }},
	{"T4", func(c experiments.Config, w io.Writer) error { return p(experiments.RunT4(c))(w) }},
	{"F1", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF1(c))(w) }},
	{"F2", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF2(c))(w) }},
	{"F3", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF3(c))(w) }},
	{"F4", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF4(c))(w) }},
	{"F5", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF5(c))(w) }},
	{"F6", func(c experiments.Config, w io.Writer) error { return p(experiments.RunF6(c))(w) }},
	{"E1", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE1(c))(w) }},
	{"E2", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE2(c))(w) }},
	{"E3", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE3(c))(w) }},
	{"E4", func(c experiments.Config, w io.Writer) error { return p(experiments.RunE4(c))(w) }},
}

// printable is any experiment result.
type printable interface{ Print(io.Writer) }

// p adapts a (result, error) pair to a deferred printer.
func p[T printable](res T, err error) func(io.Writer) error {
	return func(w io.Writer) error {
		if err != nil {
			return err
		}
		res.Print(w)
		return nil
	}
}

func main() {
	os.Exit(run())
}

// multiFlag collects repeated -exp values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// selected reports whether experiment name should run given the -exp
// selections (none means all).
func selected(sel []string, name string) bool {
	if len(sel) == 0 {
		return true
	}
	for _, s := range sel {
		if strings.EqualFold(s, "all") || strings.EqualFold(s, name) {
			return true
		}
	}
	return false
}

// knownExp reports whether name is a defined experiment id.
func knownExp(name string) bool {
	if strings.EqualFold(name, "all") {
		return true
	}
	for _, r := range all {
		if strings.EqualFold(r.name, name) {
			return true
		}
	}
	return false
}

// printPatlibSummary tabulates the run's goopc_patlib_* metrics so a
// -patlib invocation ends with the hit-rate evidence next to the timing
// tables (the cold/warm rows in bench_results.txt come from this).
func printPatlibSummary(w io.Writer) {
	snap := obs.Default().Snapshot()
	var names []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "goopc_patlib_") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintln(w, "\nPattern library (goopc_patlib_*)")
	for _, name := range names {
		fmt.Fprintf(w, "  %-40s %d\n", strings.TrimPrefix(name, "goopc_patlib_"), snap.Counters[name])
	}
	exact := snap.Counters["goopc_patlib_exact_hits_total"]
	similar := snap.Counters["goopc_patlib_similarity_hits_total"]
	misses := snap.Counters["goopc_patlib_misses_total"]
	if probed := exact + similar + misses; probed > 0 {
		fmt.Fprintf(w, "  %-40s %.1f%%\n", "hit rate (classes)",
			100*float64(exact+similar)/float64(probed))
	}
	if n, ok := snap.Gauges["goopc_patlib_entries"]; ok {
		fmt.Fprintf(w, "  %-40s %.0f\n", "entries", n)
	}
}

// run carries the real main so profile-flushing defers execute before
// the process exits (os.Exit skips defers). Exit codes: 0 success,
// 1 experiment/report failure, 2 usage error.
func run() int {
	var exps multiFlag
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.Var(&exps, "exp", "experiment id (T1..T4, F1..F6, E1..E4) or 'all'; repeatable")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	reportPath := fs.String("report", "", "write an obs RunReport (JSON) to this file")
	patlibPath := fs.String("patlib", "", "persistent pattern library file for the tiled experiments (cold/warm protocol; see DESIGN.md 5f)")
	verbose := fs.Bool("v", false, "verbose progress output")
	quiet := fs.Bool("q", false, "suppress progress output (errors still print)")
	version := fs.Bool("version", false, "print the build fingerprint and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *version {
		fmt.Println("benchtables", obs.CollectBuildInfo())
		return 0
	}
	log := obs.NewLogger(os.Stderr, obs.ParseLogLevel(*quiet, *verbose), "benchtables")
	for _, e := range exps {
		if !knownExp(e) {
			log.Errorf("unknown experiment %q (want T1..T4, F1..F6, E1..E4 or 'all')", e)
			return 2
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Errorf("cpuprofile: %v", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Errorf("cpuprofile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Errorf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is current
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Errorf("memprofile: %v", err)
			}
		}()
	}
	root := obs.NewSpan("benchtables", obs.Default())
	var rep *obs.RunReport
	if *reportPath != "" {
		rep = obs.NewRunReport("benchtables", os.Args[1:], map[string]any{
			"exp": exps.String(),
		})
	}
	cfg := experiments.Default()
	cfg.PatternLibPath = *patlibPath
	exitCode := 0
	for _, r := range all {
		if !selected(exps, r.name) {
			continue
		}
		sp := root.Start(r.name)
		log.Verbosef("%s starting", r.name)
		t0 := time.Now()
		if err := r.run(cfg, os.Stdout); err != nil {
			log.Errorf("%s: %v", r.name, err)
			exitCode = 1
		}
		sp.End()
		log.Infof("[%s completed in %.1fs]", r.name, time.Since(t0).Seconds())
	}
	root.End()
	if *patlibPath != "" {
		printPatlibSummary(os.Stdout)
	}
	if rep != nil {
		rep.Finish(obs.Default(), root)
		if err := rep.WriteFile(*reportPath); err != nil {
			log.Errorf("report: %v", err)
			exitCode = 1
		} else {
			log.Infof("wrote run report %s", *reportPath)
		}
	}
	return exitCode
}
