// Command benchtables regenerates the reconstructed evaluation: every
// table and figure indexed in DESIGN.md section 4. Results print as
// plain-text tables matching the rows recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtables                     # run everything (several minutes)
//	benchtables -exp T2 -exp T3     # a subset (repeatable flag)
//	benchtables -exp T2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	benchtables -exp T2 -report run.json   # metrics + trace artifact
//	benchtables -exp T2 -exp T3 -json 'BENCH_<exp>.json'
//
// Progress ("[T2 completed in ...]") goes to stderr through the obs
// logger (-v / -q adjust verbosity); the tables themselves stay on
// stdout so redirecting stdout captures exactly the results.
//
// -json writes one machine-readable artifact per experiment — wall
// time, phase breakdown from the span tree, the experiment's registry
// counter deltas and derived cache hit rates — so CI and plotting
// scripts diff benchmark runs without scraping the stdout tables. The
// path is a template: the literal <exp> placeholder expands to the
// experiment id, and is required when more than one experiment runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"goopc/internal/experiments"
	"goopc/internal/obs"
)

type runner struct {
	name string
	run  func(experiments.Config, io.Writer) (any, error)
}

var all = []runner{
	{"T1", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunT1(c))(w) }},
	{"T2", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunT2(c))(w) }},
	{"T3", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunT3(c))(w) }},
	{"T4", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunT4(c))(w) }},
	{"F1", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunF1(c))(w) }},
	{"F2", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunF2(c))(w) }},
	{"F3", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunF3(c))(w) }},
	{"F4", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunF4(c))(w) }},
	{"F5", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunF5(c))(w) }},
	{"F6", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunF6(c))(w) }},
	{"E1", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunE1(c))(w) }},
	{"E2", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunE2(c))(w) }},
	{"E3", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunE3(c))(w) }},
	{"E4", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunE4(c))(w) }},
	{"PRIOR", func(c experiments.Config, w io.Writer) (any, error) { return p(experiments.RunPrior(c))(w) }},
}

// printable is any experiment result.
type printable interface{ Print(io.Writer) }

// p adapts a (result, error) pair to a deferred printer that also
// hands the result back for the -json artifact.
func p[T printable](res T, err error) func(io.Writer) (any, error) {
	return func(w io.Writer) (any, error) {
		if err != nil {
			return nil, err
		}
		res.Print(w)
		return res, nil
	}
}

func main() {
	os.Exit(run())
}

// multiFlag collects repeated -exp values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// selected reports whether experiment name should run given the -exp
// selections (none means all).
func selected(sel []string, name string) bool {
	if len(sel) == 0 {
		return true
	}
	for _, s := range sel {
		if strings.EqualFold(s, "all") || strings.EqualFold(s, name) {
			return true
		}
	}
	return false
}

// knownExp reports whether name is a defined experiment id.
func knownExp(name string) bool {
	if strings.EqualFold(name, "all") {
		return true
	}
	for _, r := range all {
		if strings.EqualFold(r.name, name) {
			return true
		}
	}
	return false
}

// benchArtifact is the machine-readable per-experiment record -json
// writes: identity (experiment, build, start), cost (wall seconds plus
// the span-tree phase breakdown), and behavior (registry counter
// deltas over the experiment and the cache hit rates derived from
// them). Artifacts from different runs diff cleanly: counters are
// deltas, not lifetime totals.
type benchArtifact struct {
	Exp         string        `json:"exp"`
	Build       obs.BuildInfo `json:"build"`
	Start       time.Time     `json:"start"`
	WallSeconds float64       `json:"wall_seconds"`
	// CPUSeconds is process CPU (user+system) during the experiment;
	// AllocBytes the heap bytes allocated. CPUSeconds/WallSeconds ≈
	// effective parallelism.
	CPUSeconds float64 `json:"cpu_seconds"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Failed     bool    `json:"failed,omitempty"`
	// PhaseSeconds maps slash-joined span paths under the experiment to
	// wall seconds (the experiment's own phase tree, flattened).
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// Counters are the non-zero goopc_* counter deltas attributable to
	// this experiment (after-snapshot minus before-snapshot).
	Counters map[string]int64 `json:"counters,omitempty"`
	// HitRates derive from paired <base>_hits_total / <base>_misses_total
	// counter deltas, keyed by <base>, in [0,1].
	HitRates map[string]float64 `json:"hit_rates,omitempty"`
	// Result embeds the experiment's own row data (the same values the
	// stdout table prints), so artifact diffs carry the measurements,
	// not just the meta-accounting.
	Result any `json:"result,omitempty"`
}

// expandJSONPath substitutes the <exp> placeholder in the -json
// template.
func expandJSONPath(tmpl, exp string) string {
	return strings.ReplaceAll(tmpl, "<exp>", exp)
}

// counterDeltas subtracts two registry snapshots, keeping counters that
// moved during the experiment.
func counterDeltas(before, after obs.Snapshot) map[string]int64 {
	out := map[string]int64{}
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// hitRates derives cache hit rates from the delta counters: every
// <base>_hits_total with a sibling <base>_misses_total (either side may
// be absent, meaning zero) yields <base> -> hits/(hits+misses).
func hitRates(deltas map[string]int64) map[string]float64 {
	out := map[string]float64{}
	for name, hits := range deltas {
		base, ok := strings.CutSuffix(name, "_hits_total")
		if !ok {
			continue
		}
		misses := deltas[base+"_misses_total"]
		if hits+misses > 0 {
			out[base] = float64(hits) / float64(hits+misses)
		}
	}
	for name, misses := range deltas {
		base, ok := strings.CutSuffix(name, "_misses_total")
		if !ok {
			continue
		}
		if _, seen := out[base]; !seen && misses > 0 {
			out[base] = 0 // all misses, no hits counter moved
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// flattenPhases walks an experiment's span subtree into path -> wall
// seconds entries ("" prefix keeps the experiment's own node out; its
// wall time is already WallSeconds).
func flattenPhases(n obs.SpanNode, prefix string, out map[string]float64) {
	for _, c := range n.Children {
		path := c.Name
		if prefix != "" {
			path = prefix + "/" + c.Name
		}
		out[path] = c.WallMS / 1e3
		flattenPhases(c, path, out)
	}
}

// writeBenchArtifact assembles and writes one experiment's artifact.
func writeBenchArtifact(path string, art benchArtifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printPatlibSummary tabulates the run's goopc_patlib_* metrics so a
// -patlib invocation ends with the hit-rate evidence next to the timing
// tables (the cold/warm rows in bench_results.txt come from this).
func printPatlibSummary(w io.Writer) {
	snap := obs.Default().Snapshot()
	var names []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "goopc_patlib_") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintln(w, "\nPattern library (goopc_patlib_*)")
	for _, name := range names {
		fmt.Fprintf(w, "  %-40s %d\n", strings.TrimPrefix(name, "goopc_patlib_"), snap.Counters[name])
	}
	exact := snap.Counters["goopc_patlib_exact_hits_total"]
	similar := snap.Counters["goopc_patlib_similarity_hits_total"]
	misses := snap.Counters["goopc_patlib_misses_total"]
	if probed := exact + similar + misses; probed > 0 {
		fmt.Fprintf(w, "  %-40s %.1f%%\n", "hit rate (classes)",
			100*float64(exact+similar)/float64(probed))
	}
	if n, ok := snap.Gauges["goopc_patlib_entries"]; ok {
		fmt.Fprintf(w, "  %-40s %.0f\n", "entries", n)
	}
}

// run carries the real main so profile-flushing defers execute before
// the process exits (os.Exit skips defers). Exit codes: 0 success,
// 1 experiment/report failure, 2 usage error.
func run() int {
	var exps multiFlag
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.Var(&exps, "exp", "experiment id (T1..T4, F1..F6, E1..E4) or 'all'; repeatable")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	reportPath := fs.String("report", "", "write an obs RunReport (JSON) to this file")
	jsonTmpl := fs.String("json", "", "write a machine-readable artifact per experiment; '<exp>' in the path expands to the experiment id (e.g. 'BENCH_<exp>.json')")
	patlibPath := fs.String("patlib", "", "persistent pattern library file for the tiled experiments (cold/warm protocol; see DESIGN.md 5f)")
	verbose := fs.Bool("v", false, "verbose progress output")
	quiet := fs.Bool("q", false, "suppress progress output (errors still print)")
	version := fs.Bool("version", false, "print the build fingerprint and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *version {
		fmt.Println("benchtables", obs.CollectBuildInfo())
		return 0
	}
	log := obs.NewLogger(os.Stderr, obs.ParseLogLevel(*quiet, *verbose), "benchtables")
	for _, e := range exps {
		if !knownExp(e) {
			log.Errorf("unknown experiment %q (want T1..T4, F1..F6, E1..E4 or 'all')", e)
			return 2
		}
	}
	if *jsonTmpl != "" {
		n := 0
		for _, r := range all {
			if selected(exps, r.name) {
				n++
			}
		}
		if n > 1 && !strings.Contains(*jsonTmpl, "<exp>") {
			log.Errorf("-json %q would overwrite itself: %d experiments selected but the path has no <exp> placeholder", *jsonTmpl, n)
			return 2
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Errorf("cpuprofile: %v", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Errorf("cpuprofile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Errorf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is current
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Errorf("memprofile: %v", err)
			}
		}()
	}
	root := obs.NewSpan("benchtables", obs.Default())
	var rep *obs.RunReport
	if *reportPath != "" {
		rep = obs.NewRunReport("benchtables", os.Args[1:], map[string]any{
			"exp": exps.String(),
		})
	}
	cfg := experiments.Default()
	cfg.PatternLibPath = *patlibPath
	exitCode := 0
	for _, r := range all {
		if !selected(exps, r.name) {
			continue
		}
		var before obs.Snapshot
		if *jsonTmpl != "" {
			before = obs.Default().Snapshot()
		}
		sp := root.Start(r.name)
		log.Verbosef("%s starting", r.name)
		t0 := time.Now()
		failed := false
		result, err := r.run(cfg, os.Stdout)
		if err != nil {
			log.Errorf("%s: %v", r.name, err)
			exitCode = 1
			failed = true
		}
		sp.End()
		log.Infof("[%s completed in %.1fs]", r.name, time.Since(t0).Seconds())
		if *jsonTmpl != "" {
			deltas := counterDeltas(before, obs.Default().Snapshot())
			art := benchArtifact{
				Exp:         r.name,
				Build:       obs.CollectBuildInfo(),
				Start:       t0,
				WallSeconds: time.Since(t0).Seconds(),
				Failed:      failed,
				Counters:    deltas,
				HitRates:    hitRates(deltas),
				Result:      result,
			}
			node := sp.Tree()
			art.CPUSeconds = node.CPUMS / 1e3
			art.AllocBytes = node.AllocBytes
			phases := map[string]float64{}
			flattenPhases(node, "", phases)
			if len(phases) > 0 {
				art.PhaseSeconds = phases
			}
			path := expandJSONPath(*jsonTmpl, r.name)
			if err := writeBenchArtifact(path, art); err != nil {
				log.Errorf("%s: json artifact: %v", r.name, err)
				exitCode = 1
			} else {
				log.Infof("wrote %s", path)
			}
		}
	}
	root.End()
	if *patlibPath != "" {
		printPatlibSummary(os.Stdout)
	}
	if rep != nil {
		rep.Finish(obs.Default(), root)
		if err := rep.WriteFile(*reportPath); err != nil {
			log.Errorf("report: %v", err)
			exitCode = 1
		} else {
			log.Infof("wrote run report %s", *reportPath)
		}
	}
	return exitCode
}
