// Command gdsplot renders a GDSII cell (or the built-in demo) to SVG.
// With -opc it runs the correction flow on the clip and draws the
// canonical target / corrected-mask / printed-contour overlay.
//
// Usage:
//
//	gdsplot -gds in.gds [-cell NAME] [-layer 2] -o out.svg
//	gdsplot -demo -opc L3 -o out.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/obs"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/render"
	"goopc/internal/resist"
)

func main() {
	gdsPath := flag.String("gds", "", "GDSII input")
	cellName := flag.String("cell", "", "cell (default top)")
	layerNum := flag.Int("layer", 2, "layer to draw")
	out := flag.String("o", "out.svg", "output SVG path")
	demo := flag.Bool("demo", false, "use the built-in line-end demo clip")
	opcLevel := flag.String("opc", "", "run OPC at this level (L1/L2/L3) and overlay mask+contour")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()
	if *version {
		fmt.Println("gdsplot", obs.CollectBuildInfo())
		return
	}
	if err := run(*gdsPath, *cellName, layout.Layer(*layerNum), *out, *demo, *opcLevel); err != nil {
		fmt.Fprintln(os.Stderr, "gdsplot:", err)
		os.Exit(1)
	}
}

func run(gdsPath, cellName string, l layout.Layer, out string, demo bool, opcLevel string) error {
	var target []geom.Polygon
	switch {
	case demo:
		target = []geom.Polygon{
			geom.R(-90, -2200, 90, 0).Polygon(),
			geom.R(270, -2200, 450, 2200).Polygon(),
			geom.R(-450, -2200, -270, 2200).Polygon(),
		}
	case gdsPath != "":
		f, err := os.Open(gdsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ly, err := layout.ReadGDS(f)
		if err != nil {
			return err
		}
		cell := ly.Top
		if cellName != "" {
			if cell = ly.Cell(cellName); cell == nil {
				return fmt.Errorf("cell %q not found", cellName)
			}
		}
		target = layout.Flatten(cell, l)
	default:
		return fmt.Errorf("need -gds or -demo")
	}
	if len(target) == 0 {
		return fmt.Errorf("no geometry")
	}
	window := opc.WindowFor(target, 600)

	scene := render.Scene{
		Window: window,
		Layers: []render.LayerArt{{
			Name: "drawn", Polys: target,
			Style: render.Style{Fill: render.Palette[0], Opacity: 0.7},
		}},
	}
	if opcLevel != "" {
		var level core.Level
		switch opcLevel {
		case "L1":
			level = core.L1
		case "L2":
			level = core.L2
		case "L3":
			level = core.L3
		default:
			return fmt.Errorf("unknown level %q", opcLevel)
		}
		s := optics.Default()
		s.SourceSteps = 5
		s.GuardNM = 1200
		fmt.Println("calibrating flow...")
		flow, err := core.NewFlow(core.Options{Optics: s, BiasSpaces: []geom.Coord{240, 420}})
		if err != nil {
			return err
		}
		res, _, err := flow.Correct(target, level)
		if err != nil {
			return err
		}
		im, err := flow.Sim.Aerial(res.AllMask(), window)
		if err != nil {
			return err
		}
		contours := resist.Contours(im, flow.Threshold, window)
		scene = render.TargetMaskWafer(window, target, res.Corrected, res.SRAFs, contours)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := scene.WriteSVG(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (window %v)\n", out, window)
	return nil
}
