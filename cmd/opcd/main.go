// Command opcd is the OPC job server: it accepts correction jobs over
// HTTP (a GDSII upload or a named example workload, plus Flow settings
// as JSON), queues them with admission control, runs them through the
// tiled correction engine on a bounded worker pool, and serves the
// corrected GDS and run-report artifacts back. Jobs survive daemon
// restarts: spec, lifecycle state and the engine checkpoint persist
// under the data directory, and interrupted jobs resume from their
// checkpointed tiles.
//
// Usage:
//
//	opcd -listen :9800 -data /var/lib/opcd -workers 2 -queue-depth 16
//	opcd -listen :9800 -cluster            # also coordinate remote workers
//	opcd -join http://coord:9800           # run as a cluster worker process
//
// With -cluster the daemon is also the coordinator of a distributed
// correction cluster (DESIGN.md 5i): worker processes started with
// -join lease shards of each job's canonical tile classes, solve them
// remotely, and stream results back; expired leases requeue, stragglers
// are work-stolen, and with no workers jobs just run locally.
//
// API (see the server package and `opcctl -h` for the client):
//
//	POST   /jobs                 submit (JSON spec, or GDS body + ?spec=)
//	GET    /jobs                 list
//	GET    /jobs/{id}            status
//	GET    /jobs/{id}/events     SSE progress stream
//	GET    /jobs/{id}/result.gds corrected geometry
//	GET    /jobs/{id}/report.json, /jobs/{id}/orc.json
//	DELETE /jobs/{id}            cancel (live) / purge (terminal)
//	GET    /metrics /status /debug/pprof  obs inspector
//	POST   /cluster/join|lease|heartbeat|result  worker protocol (-cluster)
//	GET    /cluster/status       coordinator state (opcctl cluster)
//
// SIGINT/SIGTERM shut down gracefully: the listener drains, running
// jobs flush a final checkpoint, and their on-disk state stays
// "running" so the next start requeues and resumes them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"goopc/internal/cluster"
	"goopc/internal/faults"
	"goopc/internal/obs"
	"goopc/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("opcd", flag.ContinueOnError)
	listen := fs.String("listen", ":9800", "HTTP listen address")
	dataDir := fs.String("data", "opcd-data", "server state directory (job specs, checkpoints, artifacts)")
	workers := fs.Int("workers", 2, "correction worker pool size")
	queueDepth := fs.Int("queue-depth", 16, "max queued jobs before submissions get 429 + Retry-After")
	maxTiles := fs.Int("max-tiles", 0, "per-job tile budget; bigger jobs are rejected (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", 0, "fixed Retry-After hint on 429s (0 = estimate from job durations)")
	serialTiles := fs.Bool("serial-tiles", false, "run each job's tiles serially (pool-level concurrency only)")
	ckptEvery := fs.Duration("ckpt-every", 2*time.Second, "per-job checkpoint flush interval")
	inject := fs.String("inject", "", `server fault plan (probe site "http"), e.g. 'seed=1;http:error:p=0.1'`)
	clusterOn := fs.Bool("cluster", false, "coordinate a distributed correction cluster (workers join with -join)")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Second, "cluster shard lease TTL; expired leases requeue")
	shardClasses := fs.Int("shard-classes", 4, "canonical tile classes per cluster shard")
	requeueLimit := fs.Int("requeue-limit", 3, "requeues before a cluster shard is abandoned to local solving")
	tenantQuota := fs.Int("tenant-quota", 0, "max queued jobs per tenant (0 = no per-tenant cap)")
	tenantWeights := fs.String("tenant-weights", "", `fair-share dequeue weights, e.g. "acme=3,umbra=1" (missing tenants weigh 1)`)
	join := fs.String("join", "", "run as a cluster worker of this coordinator URL instead of serving")
	workerName := fs.String("worker-name", "", "worker display name in cluster status (default hostname-derived)")
	patlibPath := fs.String("patlib", "", "shared cross-run pattern library file; jobs opt in via flow.patternLib")
	patlibRO := fs.Bool("patlib-readonly", false, "serve pattern-library hits without persisting new solutions")
	grace := fs.Duration("grace", 30*time.Second, "graceful shutdown budget for draining requests and jobs")
	verbose := fs.Bool("v", false, "verbose logging")
	quiet := fs.Bool("q", false, "errors only")
	version := fs.Bool("version", false, "print the build fingerprint and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println("opcd", obs.CollectBuildInfo())
		return 0
	}
	log := obs.NewLogger(os.Stderr, obs.ParseLogLevel(*quiet, *verbose), "opcd")

	var plan *faults.Plan
	if *inject != "" {
		p, err := faults.Parse(*inject)
		if err != nil {
			log.Errorf("-inject: %v", err)
			return 2
		}
		plan = p
	}

	if *join != "" {
		return runWorker(*join, *workerName, plan, log)
	}

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		log.Errorf("-tenant-weights: %v", err)
		return 2
	}
	var coord *cluster.Coordinator
	if *clusterOn {
		coord = cluster.New(cluster.Config{
			LeaseTTL:     *leaseTTL,
			ShardClasses: *shardClasses,
			RequeueLimit: *requeueLimit,
			Registry:     obs.Default(),
			Log:          log,
		})
	}

	srv := server.New(server.Config{
		DataDir:         *dataDir,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		MaxTilesPerJob:  *maxTiles,
		RetryAfterHint:  *retryAfter,
		SerialTiles:     *serialTiles,
		CheckpointEvery: *ckptEvery,
		FaultPlan:       plan,
		Log:             log,
		Registry:        obs.Default(),

		PatternLibPath:     *patlibPath,
		PatternLibReadOnly: *patlibRO,

		TenantQuota:   *tenantQuota,
		TenantWeights: weights,
		Cluster:       coord,
	})
	if err := srv.Start(); err != nil {
		log.Errorf("%v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Errorf("listen: %v", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	// SIGINT/SIGTERM drain the listener via the shared obs lifecycle
	// helper; running jobs then get cancelled by srv.Stop below (their
	// checkpoints flush, so no completed tile work is lost).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := obs.ShutdownOnCancel(ctx, *grace, hs.Shutdown)

	log.Infof("opcd %s listening on http://%s (data %s, %d workers, queue %d)",
		obs.CollectBuildInfo().Revision, ln.Addr(), *dataDir, *workers, *queueDepth)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Errorf("serve: %v", err)
		return 1
	}
	<-drained

	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Stop(sctx); err != nil {
		log.Errorf("%v", err)
		return 1
	}
	log.Infof("opcd stopped; queued and running jobs resume on next start")
	return 0
}

// runWorker turns this process into a cluster worker: it joins the
// coordinator, leases shards, solves them with the same engine the
// daemon uses, and rejoins through coordinator restarts until
// SIGINT/SIGTERM.
func runWorker(join, name string, plan *faults.Plan, log *obs.Logger) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Infof("opcd worker joining %s", join)
	err := cluster.RunWorker(ctx, cluster.WorkerConfig{
		Coordinator: join,
		Name:        name,
		Solve:       server.NewWorkerSolver(log, plan),
		FaultPlan:   plan,
		Log:         log,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Errorf("worker: %v", err)
		return 1
	}
	log.Infof("opcd worker stopped")
	return 0
}

// parseWeights parses "name=3,other=1" into tenant fair-share weights.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q, want name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q for %s (want a positive integer)", val, name)
		}
		out[name] = w
	}
	return out, nil
}
