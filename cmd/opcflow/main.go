// Command opcflow runs the full OPC adoption flow on a layer: correct
// at a chosen level (or all levels), verify, and print the impact
// report — fidelity gained, mask data paid. Input is a GDSII file or a
// built-in generated workload.
//
// Usage:
//
//	opcflow -workload stdcell [-level L3] [-out corrected.gds]
//	opcflow -gds in.gds -layer 2 [-level all]
//	opcflow -gds in.gds -deck job.json [-out corrected.gds]
//
// Observability:
//
//	opcflow -workload routed -level L3 -report run.json -obs-listen :9090
//
// -report writes an obs.RunReport (metrics snapshot + phase trace tree
// + build/settings fingerprint) after the run; -obs-listen serves the
// live inspector (/metrics, /status, /debug/pprof) while it is in
// flight. -v / -q raise / silence progress output (progress goes to
// stderr; result tables stay on stdout).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/jobdeck"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/obs"
	"goopc/internal/optics"
)

// app carries the run-wide observability handles.
type app struct {
	log  *obs.Logger
	root *obs.Span
}

func main() {
	gdsPath := flag.String("gds", "", "GDSII input file")
	layerNum := flag.Int("layer", 2, "layer to correct")
	workload := flag.String("workload", "", "built-in workload: stdcell | sram | routed | patterns")
	levelFlag := flag.String("level", "all", "adoption level: L0 | L1 | L2 | L3 | all")
	outPath := flag.String("out", "", "write corrected geometry to this GDSII file (single level only)")
	deckPath := flag.String("deck", "", "JSON job deck: run a multi-layer tape-out job")
	fast := flag.Bool("fast", true, "reduced source sampling for speed")
	reportPath := flag.String("report", "", "write an obs RunReport (JSON) to this file")
	obsListen := flag.String("obs-listen", "", "serve the live inspector (/metrics, /status, /debug/pprof) on this address, e.g. :9090")
	verbose := flag.Bool("v", false, "verbose progress output")
	quiet := flag.Bool("q", false, "suppress progress output (errors still print)")
	flag.Parse()

	a := &app{
		log:  obs.NewLogger(os.Stderr, obs.ParseLogLevel(*quiet, *verbose), "opcflow"),
		root: obs.NewSpan("opcflow", obs.Default()),
	}
	if *obsListen != "" {
		ins := &obs.Inspector{}
		addr, err := ins.ListenAndServe(*obsListen)
		if err != nil {
			a.log.Errorf("obs-listen: %v", err)
			os.Exit(1)
		}
		defer ins.Close()
		a.log.Infof("inspector on http://%s (/metrics /status /debug/pprof)", addr)
	}
	var rep *obs.RunReport
	if *reportPath != "" {
		rep = obs.NewRunReport("opcflow", os.Args[1:], map[string]any{
			"gds": *gdsPath, "layer": *layerNum, "workload": *workload,
			"level": *levelFlag, "deck": *deckPath, "fast": *fast,
		})
	}

	var err error
	if *deckPath != "" {
		err = a.runDeck(*deckPath, *gdsPath, *outPath)
	} else {
		err = a.run(*gdsPath, layout.Layer(*layerNum), *workload, *levelFlag, *outPath, *fast)
	}
	a.root.End()
	if rep != nil {
		rep.Finish(obs.Default(), a.root)
		if werr := rep.WriteFile(*reportPath); werr != nil {
			a.log.Errorf("report: %v", werr)
			if err == nil {
				err = werr
			}
		} else {
			a.log.Infof("wrote run report %s", *reportPath)
		}
	}
	if err != nil {
		a.log.Errorf("%v", err)
		os.Exit(1)
	}
}

// runDeck executes a JSON job deck against a GDSII layout and writes
// the layout (now carrying OPC output layers) back out.
func (a *app) runDeck(deckPath, gdsPath, outPath string) error {
	sp := a.root.Start("load")
	df, err := os.Open(deckPath)
	if err != nil {
		sp.End()
		return err
	}
	deck, err := jobdeck.Parse(df)
	df.Close()
	if err != nil {
		sp.End()
		return err
	}
	if gdsPath == "" {
		sp.End()
		return fmt.Errorf("-deck needs -gds input")
	}
	gf, err := os.Open(gdsPath)
	if err != nil {
		sp.End()
		return err
	}
	ly, err := layout.ReadGDS(gf)
	gf.Close()
	sp.End()
	if err != nil {
		return err
	}
	a.log.Infof("deck %q on %q: calibrating...", deck.Name, gdsPath)
	sp = a.root.Start("deck-run")
	rep, err := jobdeck.Run(deck, ly)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Printf("threshold %.3f\n", rep.Threshold)
	for _, lr := range rep.Layers {
		fmt.Printf("  layer %v %-16s mode=%-4s cells=%d tiles=%d figures=%d %.1fs\n",
			lr.Layer, lr.Level, lr.Mode, lr.Cells, lr.Tiles, lr.Figures, lr.Seconds)
	}
	if outPath != "" {
		sp = a.root.Start("write")
		defer sp.End()
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		n, err := layout.WriteGDS(out, ly)
		if err != nil {
			return err
		}
		a.log.Infof("wrote %s (%d bytes, drawn + OPC layers)", outPath, n)
	}
	return nil
}

func (a *app) run(gdsPath string, l layout.Layer, workload, levelFlag, outPath string, fast bool) error {
	sp := a.root.Start("load")
	target, err := loadTarget(gdsPath, l, workload)
	sp.End()
	if err != nil {
		return err
	}
	a.log.Infof("target: %d polygons on layer %v", len(target), l)

	s := optics.Default()
	if fast {
		s.SourceSteps = 5
		s.GuardNM = 1200
	}
	a.log.Infof("calibrating flow (threshold + rule table)...")
	sp = a.root.Start("calibrate")
	flow, err := core.NewFlow(core.Options{Optics: s, BiasSpaces: []geom.Coord{240, 320, 420, 560}})
	sp.End()
	if err != nil {
		return err
	}
	a.log.Infof("calibrated: threshold=%.3f ambit=%d nm", flow.Threshold, flow.Ambit)

	levels, err := parseLevels(levelFlag)
	if err != nil {
		return err
	}
	for _, level := range levels {
		sp := a.root.Start("correct-" + level.String())
		if len(target) > 40 {
			// Large targets go through the tiled engine; report data only.
			a.log.Verbosef("%s: tiled correction, %d polygons", level, len(target))
			flow.Span = sp
			res, st, err := flow.CorrectWindowed(target, level, 4*flow.Ambit, true)
			flow.Span = nil
			if err != nil {
				sp.End()
				return err
			}
			fmt.Printf("%-16s tiles=%d time=%.2fs worstRMS=%.2f polygons=%d\n",
				level, st.Tiles, st.Seconds, st.WorstRMS, len(res.Corrected))
			if outPath != "" && len(levels) == 1 {
				if err := a.writeOut(outPath, res.Corrected, l); err != nil {
					sp.End()
					return err
				}
			}
			sp.End()
			continue
		}
		imp, err := flow.Assess(target, level)
		if err != nil {
			sp.End()
			return err
		}
		fmt.Printf("%-16s EPE mean=%.1f rms=%.1f max=%.1f nm | hotspots pinch=%d bridge=%d lobe=%d epe=%d | figures=%d shots=%d gds=%dB mrc=%d | correct=%.2fs verify=%.2fs\n",
			imp.Level, imp.EPE.MeanAbs, imp.EPE.RMS, imp.EPE.Max,
			imp.Pinches, imp.Bridges, imp.SideLobes, imp.EPEViolations,
			imp.Data.Figures, imp.Data.Shots, imp.Data.GDSBytes, imp.MRCViolations,
			imp.CorrectSec, imp.VerifySec)
		if outPath != "" && len(levels) == 1 {
			res, _, err := flow.Correct(target, level)
			if err != nil {
				sp.End()
				return err
			}
			if err := a.writeOut(outPath, res.AllMask(), l); err != nil {
				sp.End()
				return err
			}
		}
		sp.End()
	}
	return nil
}

func loadTarget(gdsPath string, l layout.Layer, workload string) ([]geom.Polygon, error) {
	if gdsPath != "" {
		f, err := os.Open(gdsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ly, err := layout.ReadGDS(f)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(ly.Top, l), nil
	}
	ly := layout.New("workload")
	rng := rand.New(rand.NewSource(1))
	switch workload {
	case "stdcell":
		lib, err := gen.BuildCellLib(ly, gen.Tech180())
		if err != nil {
			return nil, err
		}
		block, err := gen.BuildBlock(ly, lib, "BLOCK", 2, 4, rng)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(block, layout.Poly), nil
	case "sram":
		arr, err := gen.BuildSRAM(ly, gen.Tech180(), "SRAM", 4, 4)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(arr, layout.Poly), nil
	case "routed":
		blk, err := gen.BuildRoutedBlock(ly, gen.Tech180(), "RT", 20000, 20000, 16, rng)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(blk, layout.Metal1), nil
	case "patterns":
		cell, _, err := gen.ThroughPitch(ly, "TP", layout.Poly, 180,
			[]geom.Coord{360, 520, 800}, 3000, 5)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(cell, layout.Poly), nil
	case "":
		return nil, fmt.Errorf("need -gds or -workload")
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func parseLevels(s string) ([]core.Level, error) {
	if strings.EqualFold(s, "all") {
		return core.Levels, nil
	}
	switch strings.ToUpper(s) {
	case "L0":
		return []core.Level{core.L0}, nil
	case "L1":
		return []core.Level{core.L1}, nil
	case "L2":
		return []core.Level{core.L2}, nil
	case "L3":
		return []core.Level{core.L3}, nil
	}
	return nil, fmt.Errorf("unknown level %q", s)
}

func (a *app) writeOut(path string, polys []geom.Polygon, l layout.Layer) error {
	out := layout.New("corrected")
	cell := out.MustCell("TOP")
	for _, p := range polys {
		cell.AddPolygon(layout.OPCLayer(l), p)
	}
	out.SetTop(cell)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := layout.WriteGDS(f, out)
	if err != nil {
		return err
	}
	a.log.Infof("wrote %s (%d bytes)", path, n)
	return nil
}
