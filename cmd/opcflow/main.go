// Command opcflow runs the full OPC adoption flow on a layer: correct
// at a chosen level (or all levels), verify, and print the impact
// report — fidelity gained, mask data paid. Input is a GDSII file or a
// built-in generated workload.
//
// Usage:
//
//	opcflow -workload stdcell [-level L3] [-out corrected.gds]
//	opcflow -gds in.gds -layer 2 [-level all]
//	opcflow -gds in.gds -deck job.json [-out corrected.gds]
//
// Observability:
//
//	opcflow -workload routed -level L3 -report run.json -obs-listen :9090
//	opcflow -workload stdcell -level L3 -trace run.trace.json
//
// -report writes an obs.RunReport (metrics snapshot + phase trace tree
// + build/settings fingerprint) after the run; -obs-listen serves the
// live inspector (/metrics, /status, /debug/pprof) while it is in
// flight. -trace attaches the tile-level flight recorder to the tiled
// engine and writes the merged timeline as Chrome trace-event JSON
// (load it in Perfetto or chrome://tracing); the event counts are
// reconciled against the scheduler's TileStats before the file is
// trusted, and a lossy or inconsistent timeline fails the run. -v / -q
// raise / silence progress output (progress goes to stderr; result
// tables stay on stdout).
//
// Fault tolerance (tiled runs; see DESIGN.md 5e):
//
//	opcflow -workload routed -level L3 -ckpt run.ckpt -deadline 10m
//	opcflow -workload routed -level L3 -resume run.ckpt
//	opcflow -workload routed -level L3 -inject 'seed=42;tile:panic:n=2'
//
// -ckpt checkpoints completed tile classes periodically and on exit
// (including SIGINT/SIGTERM, which cancel the run cleanly); -resume
// seeds a run from such a checkpoint, skipping finished work;
// -tile-timeout / -deadline bound each tile attempt / the whole run;
// -inject arms the deterministic fault-injection harness.
//
// Exit codes: 0 success, 1 internal/runtime failure, 2 usage error,
// 3 invalid input (unreadable or malformed GDS/deck/checkpoint).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/jobdeck"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/obs"
	"goopc/internal/obs/trace"
	"goopc/internal/optics"
	"goopc/internal/prior"
)

// Exit codes. Everything funnels through run() so the run report and
// any checkpoint are flushed no matter how the run ends.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitInput    = 3
)

// usageError and inputError tag an error with its exit code; anything
// untagged exits exitInternal.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

type inputError struct{ err error }

func (e inputError) Error() string { return e.err.Error() }
func (e inputError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func inputf(format string, args ...any) error {
	return inputError{fmt.Errorf(format, args...)}
}

func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ue usageError
	if errors.As(err, &ue) {
		return exitUsage
	}
	var ie inputError
	if errors.As(err, &ie) {
		return exitInput
	}
	return exitInternal
}

// app carries the run-wide observability handles.
type app struct {
	log  *obs.Logger
	root *obs.Span
	// tracer is the -trace flight recorder (nil when tracing is off);
	// traceWant accumulates the TileStats-derived expectation across the
	// tiled runs that share it, for the post-run reconciliation.
	tracer    *trace.Recorder
	traceWant trace.TileCounts
}

// resilienceCfg groups the fault-tolerance flags applied to the tiled
// correction engine.
type resilienceCfg struct {
	ckptPath    string
	ckptEvery   time.Duration
	resumePath  string
	inject      string
	tileTimeout time.Duration
	deadline    time.Duration
	patlibPath  string
	patlibRO    bool
	priorPath   string
}

// apply wires the config into the flow, loading the resume checkpoint
// and parsing the fault plan.
func (rc *resilienceCfg) apply(flow *core.Flow) error {
	flow.CheckpointPath = rc.ckptPath
	flow.CheckpointEvery = rc.ckptEvery
	flow.TileTimeout = rc.tileTimeout
	flow.Deadline = rc.deadline
	if rc.resumePath != "" {
		ck, err := core.LoadCheckpoint(rc.resumePath)
		if err != nil {
			return inputError{err}
		}
		flow.Resume = ck
		if flow.CheckpointPath == "" {
			// Keep checkpointing to the file we resumed from, so a
			// second interruption also costs no completed work.
			flow.CheckpointPath = rc.resumePath
		}
	}
	if rc.inject != "" {
		plan, err := faults.Parse(rc.inject)
		if err != nil {
			return usageError{err}
		}
		flow.FaultPlan = plan
	}
	flow.PatternLibPath = rc.patlibPath
	flow.PatLibReadOnly = rc.patlibRO
	if rc.priorPath != "" {
		tab, err := prior.Load(rc.priorPath)
		if err != nil {
			return inputError{err}
		}
		flow.Prior = tab
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the single exit path: it parses flags, executes the job, and
// always flushes the run report before returning an exit code.
func run(args []string) int {
	fs := flag.NewFlagSet("opcflow", flag.ContinueOnError)
	gdsPath := fs.String("gds", "", "GDSII input file")
	layerNum := fs.Int("layer", 2, "layer to correct")
	workload := fs.String("workload", "", "built-in workload: stdcell | sram | routed | patterns")
	levelFlag := fs.String("level", "all", "adoption level: L0 | L1 | L2 | L3 | all")
	outPath := fs.String("out", "", "write corrected geometry to this GDSII file (single level only)")
	deckPath := fs.String("deck", "", "JSON job deck: run a multi-layer tape-out job")
	fast := fs.Bool("fast", true, "reduced source sampling for speed")
	precFlag := fs.String("precision", "f64", "SOCS imaging precision: f64 | f32 (complex64 coarse kernel fields)")
	reportPath := fs.String("report", "", "write an obs RunReport (JSON) to this file")
	tracePath := fs.String("trace", "", "write the tiled run's flight-recorder timeline as Chrome trace-event JSON to this file")
	obsListen := fs.String("obs-listen", "", "serve the live inspector (/metrics, /status, /debug/pprof) on this address, e.g. :9090")
	verbose := fs.Bool("v", false, "verbose progress output")
	quiet := fs.Bool("q", false, "suppress progress output (errors still print)")
	version := fs.Bool("version", false, "print the build fingerprint and exit")
	rc := resilienceCfg{}
	fs.StringVar(&rc.ckptPath, "ckpt", "", "checkpoint completed tile classes to this file (periodic + on exit)")
	fs.DurationVar(&rc.ckptEvery, "ckpt-every", 0, "minimum interval between periodic checkpoint writes (default 30s)")
	fs.StringVar(&rc.resumePath, "resume", "", "resume from this checkpoint file, skipping finished tile classes")
	fs.StringVar(&rc.inject, "inject", "", `deterministic fault plan, e.g. 'seed=42;tile:panic:n=2;tile:delay:p=0.1:d=50ms'`)
	fs.DurationVar(&rc.tileTimeout, "tile-timeout", 0, "per-tile correction attempt timeout (0 = none)")
	fs.DurationVar(&rc.deadline, "deadline", 0, "whole-run deadline (0 = none)")
	fs.StringVar(&rc.patlibPath, "patlib", "", "persistent cross-run pattern library file (tiled runs; see DESIGN.md 5f)")
	fs.BoolVar(&rc.patlibRO, "patlib-readonly", false, "consult the pattern library without persisting new solutions")
	fs.StringVar(&rc.priorPath, "prior", "", "learned initial-bias prior table (datasetgen fit; DESIGN.md 5j): warm-starts model-OPC runs")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		fmt.Println("opcflow", obs.CollectBuildInfo())
		return exitOK
	}
	prec, perr := optics.ParsePrecision(*precFlag)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "opcflow:", perr)
		return exitUsage
	}

	a := &app{
		log:  obs.NewLogger(os.Stderr, obs.ParseLogLevel(*quiet, *verbose), "opcflow"),
		root: obs.NewSpan("opcflow", obs.Default()),
	}
	if *tracePath != "" {
		a.tracer = trace.New(0)
	}

	// SIGINT/SIGTERM cancel the run context: the tiled engine drains its
	// workers, flushes a final checkpoint, and we still write the run
	// report below before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	if *obsListen != "" {
		ins := &obs.Inspector{}
		addr, ierr := ins.ListenAndServe(*obsListen)
		if ierr != nil {
			a.log.Errorf("obs-listen: %v", ierr)
			return exitInternal
		}
		// A SIGINT/SIGTERM drains the inspector (in-flight /metrics
		// scrapes finish) via the shared lifecycle helper; a normal exit
		// shuts it down directly. Shutdown is idempotent, so whichever
		// path fires second is a no-op.
		obs.ShutdownOnCancel(ctx, 2*time.Second, ins.Shutdown)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = ins.Shutdown(sctx)
		}()
		a.log.Infof("inspector on http://%s (/metrics /status /debug/pprof)", addr)
	}
	var rep *obs.RunReport
	if *reportPath != "" {
		rep = obs.NewRunReport("opcflow", args, map[string]any{
			"gds": *gdsPath, "layer": *layerNum, "workload": *workload,
			"level": *levelFlag, "deck": *deckPath, "fast": *fast,
			"precision": prec.String(),
			"ckpt":      rc.ckptPath, "resume": rc.resumePath, "inject": rc.inject,
			"patlib": rc.patlibPath, "prior": rc.priorPath,
		})
	}

	if *deckPath != "" {
		if a.tracer != nil {
			a.log.Errorf("-trace covers the level flow only; deck runs are not traced")
		}
		err = a.runDeck(*deckPath, *gdsPath, *outPath)
	} else {
		err = a.runLevels(ctx, *gdsPath, layout.Layer(*layerNum), *workload, *levelFlag, *outPath, *fast, prec, &rc)
	}
	a.root.End()
	if a.tracer != nil {
		sum := a.tracer.Summary()
		if rep != nil {
			rep.Flight = &sum
		}
		// Only a clean run can reconcile (a cancelled or failed one has
		// legitimately missing outcomes); its timeline still gets written
		// for post-mortem reading either way.
		if terr := a.writeTraceFile(*tracePath, sum, err == nil); terr != nil {
			a.log.Errorf("trace: %v", terr)
			if err == nil {
				err = terr
			}
		}
	}
	if rep != nil {
		rep.Finish(obs.Default(), a.root)
		if werr := rep.WriteFile(*reportPath); werr != nil {
			a.log.Errorf("report: %v", werr)
			if err == nil {
				err = werr
			}
		} else {
			a.log.Infof("wrote run report %s", *reportPath)
		}
	}
	if err != nil {
		a.log.Errorf("%v", err)
		return exitCode(err)
	}
	return exitOK
}

// writeTraceFile reconciles the recorded timeline against the
// scheduler's accumulated TileStats expectation and writes it as Chrome
// trace-event JSON. A trace that dropped events or disagrees with the
// stats is an error: a timeline that cannot account for the run is
// worse than none.
func (a *app) writeTraceFile(path string, sum trace.Summary, reconcile bool) error {
	if reconcile {
		if err := core.ReconcileTrace(sum, a.traceWant); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := a.tracer.WriteChrome(f, trace.ChromeOptions{PID: 1, ProcessName: "opcflow"})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	a.log.Infof("wrote trace %s (%d events, %d workers, drops=%d); open it in Perfetto or chrome://tracing",
		path, sum.Events, sum.Workers, sum.Drops)
	return nil
}

// runDeck executes a JSON job deck against a GDSII layout and writes
// the layout (now carrying OPC output layers) back out.
func (a *app) runDeck(deckPath, gdsPath, outPath string) error {
	sp := a.root.Start("load")
	df, err := os.Open(deckPath)
	if err != nil {
		sp.End()
		return inputError{err}
	}
	deck, err := jobdeck.Parse(df)
	df.Close()
	if err != nil {
		sp.End()
		return inputError{err}
	}
	if gdsPath == "" {
		sp.End()
		return usagef("-deck needs -gds input")
	}
	gf, err := os.Open(gdsPath)
	if err != nil {
		sp.End()
		return inputError{err}
	}
	ly, err := layout.ReadGDS(gf)
	gf.Close()
	sp.End()
	if err != nil {
		return inputError{err}
	}
	a.log.Infof("deck %q on %q: calibrating...", deck.Name, gdsPath)
	sp = a.root.Start("deck-run")
	rep, err := jobdeck.Run(deck, ly)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Printf("threshold %.3f\n", rep.Threshold)
	for _, lr := range rep.Layers {
		fmt.Printf("  layer %v %-16s mode=%-4s cells=%d tiles=%d figures=%d %.1fs\n",
			lr.Layer, lr.Level, lr.Mode, lr.Cells, lr.Tiles, lr.Figures, lr.Seconds)
	}
	if outPath != "" {
		sp = a.root.Start("write")
		defer sp.End()
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		n, err := layout.WriteGDS(out, ly)
		if err != nil {
			return err
		}
		a.log.Infof("wrote %s (%d bytes, drawn + OPC layers)", outPath, n)
	}
	return nil
}

func (a *app) runLevels(ctx context.Context, gdsPath string, l layout.Layer, workload, levelFlag, outPath string, fast bool, prec optics.Precision, rc *resilienceCfg) error {
	sp := a.root.Start("load")
	target, err := loadTarget(gdsPath, l, workload)
	sp.End()
	if err != nil {
		return err
	}
	a.log.Infof("target: %d polygons on layer %v", len(target), l)

	s := optics.Default()
	if fast {
		s.SourceSteps = 5
		s.GuardNM = 1200
	}
	s.Precision = prec
	a.log.Infof("calibrating flow (threshold + rule table)...")
	sp = a.root.Start("calibrate")
	flow, err := core.NewFlow(core.Options{Optics: s, BiasSpaces: []geom.Coord{240, 320, 420, 560}})
	sp.End()
	if err != nil {
		return err
	}
	if err := rc.apply(flow); err != nil {
		return err
	}
	a.log.Infof("calibrated: threshold=%.3f ambit=%d nm", flow.Threshold, flow.Ambit)

	levels, err := parseLevels(levelFlag)
	if err != nil {
		return err
	}
	for _, level := range levels {
		sp := a.root.Start("correct-" + level.String())
		if len(target) > 40 {
			// Large targets go through the tiled engine; report data only.
			a.log.Verbosef("%s: tiled correction, %d polygons", level, len(target))
			flow.Span = sp
			flow.Tracer = a.tracer
			res, st, err := flow.CorrectWindowedCtx(ctx, target, level, 4*flow.Ambit, true)
			flow.Span = nil
			a.traceWant = a.traceWant.Add(st.ExpectedTraceCounts())
			if err != nil {
				sp.End()
				if errors.Is(err, core.ErrCheckpointMismatch) {
					// A -resume checkpoint from a different target or
					// settings is bad input, not an engine failure.
					return inputError{err}
				}
				return err
			}
			fmt.Printf("%-16s tiles=%d time=%.2fs worstRMS=%.2f polygons=%d\n",
				level, st.Tiles, st.Seconds, st.WorstRMS, len(res.Corrected))
			if st.LibExactTiles+st.LibSimilarTiles+st.LibHaloRejects+st.LibMisses+st.LibAppends > 0 {
				fmt.Printf("%-16s patlib: exact=%d similar=%d halo-rejects=%d misses=%d appends=%d\n",
					level, st.LibExactTiles, st.LibSimilarTiles, st.LibHaloRejects,
					st.LibMisses, st.LibAppends)
			}
			if st.WarmTiles > 0 || st.PriorSavedIters > 0 {
				fmt.Printf("%-16s prior: warm-tiles=%d warm-fragments=%d saved-iterations=%d\n",
					level, st.WarmTiles, st.WarmFragments, st.PriorSavedIters)
			}
			if st.Retries+st.Panics+st.Timeouts+st.ResumedTiles+len(st.Degradations) > 0 {
				fmt.Printf("%-16s resilience: retries=%d panics=%d timeouts=%d resumed=%d degraded-rules=%d degraded-uncorrected=%d\n",
					level, st.Retries, st.Panics, st.Timeouts, st.ResumedTiles,
					st.DegradedRules, st.DegradedUncorrected)
				for _, d := range st.Degradations {
					a.log.Infof("degraded tile pass=%d core=%v members=%d mode=%s: %s",
						d.Pass, d.Tile, d.Members, d.Mode, d.Err)
				}
			}
			if outPath != "" && len(levels) == 1 {
				if err := a.writeOut(outPath, res.Corrected, l); err != nil {
					sp.End()
					return err
				}
			}
			sp.End()
			continue
		}
		imp, err := flow.Assess(target, level)
		if err != nil {
			sp.End()
			return err
		}
		fmt.Printf("%-16s EPE mean=%.1f rms=%.1f max=%.1f nm | hotspots pinch=%d bridge=%d lobe=%d epe=%d | figures=%d shots=%d gds=%dB mrc=%d | correct=%.2fs verify=%.2fs\n",
			imp.Level, imp.EPE.MeanAbs, imp.EPE.RMS, imp.EPE.Max,
			imp.Pinches, imp.Bridges, imp.SideLobes, imp.EPEViolations,
			imp.Data.Figures, imp.Data.Shots, imp.Data.GDSBytes, imp.MRCViolations,
			imp.CorrectSec, imp.VerifySec)
		if outPath != "" && len(levels) == 1 {
			res, _, err := flow.Correct(target, level)
			if err != nil {
				sp.End()
				return err
			}
			if err := a.writeOut(outPath, res.AllMask(), l); err != nil {
				sp.End()
				return err
			}
		}
		sp.End()
	}
	return nil
}

func loadTarget(gdsPath string, l layout.Layer, workload string) ([]geom.Polygon, error) {
	if gdsPath != "" {
		f, err := os.Open(gdsPath)
		if err != nil {
			return nil, inputError{err}
		}
		defer f.Close()
		ly, err := layout.ReadGDS(f)
		if err != nil {
			return nil, inputError{err}
		}
		return layout.Flatten(ly.Top, l), nil
	}
	ly := layout.New("workload")
	rng := rand.New(rand.NewSource(1))
	switch workload {
	case "stdcell":
		lib, err := gen.BuildCellLib(ly, gen.Tech180())
		if err != nil {
			return nil, err
		}
		block, err := gen.BuildBlock(ly, lib, "BLOCK", 2, 4, rng)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(block, layout.Poly), nil
	case "sram":
		arr, err := gen.BuildSRAM(ly, gen.Tech180(), "SRAM", 4, 4)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(arr, layout.Poly), nil
	case "routed":
		blk, err := gen.BuildRoutedBlock(ly, gen.Tech180(), "RT", 20000, 20000, 16, rng)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(blk, layout.Metal1), nil
	case "patterns":
		cell, _, err := gen.ThroughPitch(ly, "TP", layout.Poly, 180,
			[]geom.Coord{360, 520, 800}, 3000, 5)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(cell, layout.Poly), nil
	case "":
		return nil, usagef("need -gds or -workload")
	}
	return nil, usagef("unknown workload %q", workload)
}

func parseLevels(s string) ([]core.Level, error) {
	if strings.EqualFold(s, "all") {
		return core.Levels, nil
	}
	switch strings.ToUpper(s) {
	case "L0":
		return []core.Level{core.L0}, nil
	case "L1":
		return []core.Level{core.L1}, nil
	case "L2":
		return []core.Level{core.L2}, nil
	case "L3":
		return []core.Level{core.L3}, nil
	}
	return nil, usagef("unknown level %q", s)
}

func (a *app) writeOut(path string, polys []geom.Polygon, l layout.Layer) error {
	out := layout.New("corrected")
	cell := out.MustCell("TOP")
	for _, p := range polys {
		cell.AddPolygon(layout.OPCLayer(l), p)
	}
	out.SetTop(cell)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := layout.WriteGDS(f, out)
	if err != nil {
		return err
	}
	a.log.Infof("wrote %s (%d bytes)", path, n)
	return nil
}
