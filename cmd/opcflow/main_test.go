package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"goopc/internal/core"
	"goopc/internal/obs/trace"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, exitOK},
		{usagef("bad flag"), exitUsage},
		{inputf("bad gds"), exitInput},
		{fmt.Errorf("wrapped: %w", usagef("inner")), exitUsage},
		{fmt.Errorf("wrapped: %w", inputf("inner")), exitInput},
		{fmt.Errorf("anything else"), exitInternal},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestParseLevelsUsageErrors(t *testing.T) {
	if _, err := parseLevels("L9"); exitCode(err) != exitUsage {
		t.Errorf("unknown level classified %d, want %d", exitCode(err), exitUsage)
	}
	if _, err := loadTarget("", 2, ""); exitCode(err) != exitUsage {
		t.Errorf("missing input classified %d, want %d", exitCode(err), exitUsage)
	}
	if _, err := loadTarget("", 2, "nope"); exitCode(err) != exitUsage {
		t.Errorf("unknown workload classified %d, want %d", exitCode(err), exitUsage)
	}
}

// TestResumeFingerprintMismatchExit runs the real CLI path end to end:
// resuming a checkpoint written for a different run must exit with the
// invalid-input code (3), not the internal-failure code (1). The
// refusal happens before any tile correction, so the test only pays for
// flow calibration.
func TestResumeFingerprintMismatchExit(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a flow")
	}
	stale := filepath.Join(t.TempDir(), "stale.ckpt")
	ck := core.NewCheckpoint("0000000000000000000000000000000000000000000000000000000000000000", "L2-model-1pass", 2500)
	if err := ck.WriteFile(stale); err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-workload", "stdcell", "-level", "L2", "-resume", stale, "-q"})
	if code != exitInput {
		t.Errorf("stale -resume exited %d, want %d", code, exitInput)
	}
}

// TestTraceSmoke is the end-to-end tracing smoke test behind
// `make trace-smoke`: a small seeded tiled run with -trace must exit 0
// (run() reconciles the timeline against TileStats before trusting
// it), produce a loadable Chrome trace-event document, and the
// document's own event stream must agree with its embedded summary.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiled correction")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	code := run([]string{"-workload", "stdcell", "-level", "L2", "-trace", tracePath, "-q"})
	if code != exitOK {
		t.Fatalf("opcflow -trace exited %d", code)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData struct {
			Tool    string        `json:"tool"`
			Summary trace.Summary `json:"summary"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not loadable JSON: %v", err)
	}
	sum := doc.OtherData.Summary
	if doc.OtherData.Tool != "goopc" || sum.Drops != 0 || sum.Tiles.Scheduled == 0 {
		t.Fatalf("trace doc: tool=%q summary=%+v", doc.OtherData.Tool, sum)
	}
	// The document must account for itself: instants named "scheduled"
	// match the summary's scheduled count, solve slices its solved count.
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" || ev.Ph == "X" {
			counts[ev.Name]++
		}
	}
	if counts["scheduled"] != sum.Tiles.Scheduled {
		t.Errorf("%d scheduled events in the stream, summary says %d", counts["scheduled"], sum.Tiles.Scheduled)
	}
	if counts["solve"] != sum.Tiles.Solved {
		t.Errorf("%d solve slices in the stream, summary says %d", counts["solve"], sum.Tiles.Solved)
	}
}

func TestResilienceCfgApply(t *testing.T) {
	var f core.Flow
	rc := resilienceCfg{inject: "seed=1;tile:error:n=1"}
	if err := rc.apply(&f); err != nil {
		t.Fatal(err)
	}
	if f.FaultPlan == nil {
		t.Error("fault plan not armed")
	}

	rc = resilienceCfg{inject: "tile:badkind"}
	if err := rc.apply(&f); exitCode(err) != exitUsage {
		t.Errorf("bad inject grammar classified %d, want %d", exitCode(err), exitUsage)
	}

	rc = resilienceCfg{resumePath: filepath.Join(t.TempDir(), "missing.ckpt")}
	if err := rc.apply(&f); exitCode(err) != exitInput {
		t.Errorf("missing checkpoint classified %d, want %d", exitCode(err), exitInput)
	}

	// A malformed checkpoint file is invalid input too.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rc = resilienceCfg{resumePath: bad}
	if err := rc.apply(&f); exitCode(err) != exitInput {
		t.Errorf("corrupt checkpoint classified %d, want %d", exitCode(err), exitInput)
	}

	// -resume without -ckpt keeps checkpointing to the resumed file.
	good := filepath.Join(t.TempDir(), "good.ckpt")
	ck := core.NewCheckpoint("fp", "L2-model-1pass", 2500)
	if err := ck.WriteFile(good); err != nil {
		t.Fatal(err)
	}
	var g core.Flow
	rc = resilienceCfg{resumePath: good}
	if err := rc.apply(&g); err != nil {
		t.Fatal(err)
	}
	if g.Resume == nil || g.CheckpointPath != good {
		t.Errorf("resume did not rearm checkpointing: resume=%v ckpt=%q", g.Resume != nil, g.CheckpointPath)
	}
}
