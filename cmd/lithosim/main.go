// Command lithosim images a GDSII clip through the 248 nm baseline
// optics and reports printed CDs along a cut line, demonstrating the
// proximity effects OPC exists to correct.
//
// Usage:
//
//	lithosim -gds file.gds -layer 2 [-cell NAME] [-cut y] [-defocus nm]
//	lithosim -demo            (built-in through-pitch demo)
package main

import (
	"flag"
	"fmt"
	"os"

	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/obs"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

func main() {
	gdsPath := flag.String("gds", "", "GDSII input file")
	cellName := flag.String("cell", "", "cell to image (default: top)")
	layerNum := flag.Int("layer", 2, "layer to image")
	cutY := flag.Int("cut", 0, "y coordinate of the horizontal cut [DBU]")
	defocus := flag.Float64("defocus", 0, "defocus [nm]")
	demo := flag.Bool("demo", false, "run the built-in through-pitch demo")
	precFlag := flag.String("precision", "f64", "SOCS imaging precision: f64 | f32")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()
	if *version {
		fmt.Println("lithosim", obs.CollectBuildInfo())
		return
	}
	prec, err := optics.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lithosim:", err)
		os.Exit(2)
	}

	if err := run(*gdsPath, *cellName, layout.Layer(*layerNum), geom.Coord(*cutY), *defocus, *demo, prec); err != nil {
		fmt.Fprintln(os.Stderr, "lithosim:", err)
		os.Exit(1)
	}
}

func run(gdsPath, cellName string, l layout.Layer, cutY geom.Coord, defocus float64, demo bool, prec optics.Precision) error {
	var polys []geom.Polygon
	switch {
	case demo:
		for i, pitch := range []geom.Coord{360, 430, 520, 640, 800} {
			x := geom.Coord(i) * 4000
			for j := -3; j <= 3; j++ {
				lx := x + geom.Coord(j)*pitch
				polys = append(polys, geom.R(lx-90, -3000, lx+90, 3000).Polygon())
			}
		}
	case gdsPath != "":
		f, err := os.Open(gdsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ly, err := layout.ReadGDS(f)
		if err != nil {
			return err
		}
		cell := ly.Top
		if cellName != "" {
			cell = ly.Cell(cellName)
			if cell == nil {
				return fmt.Errorf("cell %q not found", cellName)
			}
		}
		polys = layout.Flatten(cell, l)
	default:
		return fmt.Errorf("need -gds or -demo")
	}
	if len(polys) == 0 {
		return fmt.Errorf("no geometry on layer %v", l)
	}

	s := optics.Default()
	s.Precision = prec
	sim, err := optics.New(s)
	if err != nil {
		return err
	}
	th, err := resist.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		return err
	}
	fmt.Printf("optics: lambda=%.0f NA=%.2f sigma=%.2f threshold=%.3f defocus=%.0f nm\n",
		sim.S.LambdaNM, sim.S.NA, sim.S.SigmaOuter, th, defocus)

	var bb geom.Rect
	for i, p := range polys {
		if i == 0 {
			bb = p.BBox()
		} else {
			bb = bb.Union(p.BBox())
		}
	}
	// Image in windows along the cut and report each feature crossing
	// the cut line.
	reported := 0
	for _, p := range polys {
		pb := p.BBox()
		if cutY < pb.Y0 || cutY >= pb.Y1 {
			continue
		}
		cx := pb.Center().X
		window := geom.R(cx-1500, cutY-300, cx+1500, cutY+300)
		im, err := sim.AerialDefocus(clipTo(polys, window.Grow(1500)), window, defocus)
		if err != nil {
			return err
		}
		cd, err := resist.MeasureCD(im, th, float64(cx), float64(cutY), true, 1500)
		if err != nil {
			fmt.Printf("feature @%v drawn=%d: does not print (%v)\n", pb.Center(), pb.W(), err)
		} else {
			fmt.Printf("feature @%v drawn=%d printed=%.1f delta=%+.1f nm\n",
				pb.Center(), pb.W(), cd, cd-float64(pb.W()))
		}
		reported++
		if reported >= 40 {
			fmt.Println("... (further features suppressed)")
			break
		}
	}
	if reported == 0 {
		return fmt.Errorf("no feature crosses cut y=%d (layer bbox %v)", cutY, bb)
	}
	return nil
}

func clipTo(polys []geom.Polygon, window geom.Rect) []geom.Polygon {
	var out []geom.Polygon
	for _, p := range polys {
		if p.BBox().Touches(window) {
			out = append(out, p)
		}
	}
	return out
}
