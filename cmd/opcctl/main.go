// Command opcctl is the opcd client: submit correction jobs, watch
// their live progress, fetch artifacts, cancel or purge.
//
// Usage:
//
//	opcctl [-server URL] submit -workload routed -level L3 [-watch]
//	opcctl [-server URL] submit -gds in.gds -layer 2 -level L2 -verify
//	opcctl [-server URL] submit -batch jobs.jsonl
//	opcctl [-server URL] list
//	opcctl [-server URL] status <job-id>
//	opcctl [-server URL] watch <job-id>
//	opcctl [-server URL] fetch <job-id> result.gds [-o corrected.gds]
//	opcctl [-server URL] trace <job-id> [-o job.trace.json]
//	opcctl [-server URL] cancel <job-id>
//	opcctl [-server URL] cluster
//
// submit prints the assigned job ID; -watch streams progress until the
// job finishes and exits non-zero if it failed. -batch submits one job
// per JSONL line of JobSpecs (bulk dataset sweeps); -prior points the
// daemon at a fitted initial-bias table to warm-start model OPC. fetch streams an
// artifact (result.gds, report.json, orc.json) to -o or stdout. trace
// downloads the job's flight-recorder timeline as Chrome trace-event
// JSON — load it in Perfetto or chrome://tracing; it works on live
// jobs too (point-in-time snapshot). status includes the job's
// queued→running→done latency breakdown.
//
// Exit codes: 0 success, 1 request/server failure (including a watched
// job ending failed), 2 usage error, 3 server busy (429; the
// Retry-After hint is printed).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"goopc/internal/geom"
	"goopc/internal/obs"
	"goopc/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("opcctl", flag.ContinueOnError)
	serverURL := fs.String("server", "http://127.0.0.1:9800", "opcd base URL")
	version := fs.Bool("version", false, "print the build fingerprint and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println("opcctl", obs.CollectBuildInfo())
		return 0
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "opcctl: need a subcommand: submit | list | status | watch | fetch | trace | cancel | cluster")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := server.NewClient(*serverURL)

	var err error
	switch rest[0] {
	case "submit":
		err = cmdSubmit(ctx, c, rest[1:])
	case "list":
		err = cmdList(ctx, c)
	case "status":
		err = cmdStatus(ctx, c, rest[1:])
	case "watch":
		err = cmdWatch(ctx, c, rest[1:])
	case "fetch":
		err = cmdFetch(ctx, c, rest[1:])
	case "trace":
		err = cmdTrace(ctx, c, rest[1:])
	case "cancel":
		err = cmdCancel(ctx, c, rest[1:])
	case "cluster":
		err = cmdCluster(ctx, c)
	default:
		fmt.Fprintf(os.Stderr, "opcctl: unknown subcommand %q\n", rest[0])
		return 2
	}
	return exitCode(err)
}

// usageErr marks command-line mistakes (exit 2).
type usageErr struct{ error }

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	fmt.Fprintf(os.Stderr, "opcctl: %v\n", err)
	var ue usageErr
	if errors.As(err, &ue) {
		return 2
	}
	var be *server.BusyError
	if errors.As(err, &be) {
		return 3
	}
	return 1
}

func cmdSubmit(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("opcctl submit", flag.ContinueOnError)
	gds := fs.String("gds", "", "upload this GDSII file (otherwise use -workload)")
	workload := fs.String("workload", "", "built-in workload: stdcell | sram | routed | patterns")
	layer := fs.Int("layer", 0, "drawn layer to correct (default 2, poly)")
	level := fs.String("level", "L3", "adoption level: L0 | L1 | L2 | L3")
	name := fs.String("name", "", "free-form job label")
	tile := fs.Int("tile", 0, "scheduler tile size in DBU (0 = 4x ambit)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	tenant := fs.String("tenant", "", "tenant name for fair-share queueing and quotas")
	inject := fs.String("inject", "", "per-job fault plan (faults grammar)")
	verify := fs.Bool("verify", false, "run post-OPC verification, producing orc.json")
	fast := fs.Bool("fast", true, "reduced source sampling for speed")
	patlib := fs.Bool("patlib", false, "opt into the daemon's shared cross-run pattern library (needs opcd -patlib)")
	priorPath := fs.String("prior", "", "daemon-local path to a fitted initial-bias prior table (datasetgen fit)")
	batch := fs.String("batch", "", "submit a batch: one JobSpec JSON per line (\"-\" reads stdin)")
	flowJSON := fs.String("flow", "", "FlowSpec JSON file overriding the flow settings")
	watch := fs.Bool("watch", false, "stream progress until the job finishes")
	if err := fs.Parse(args); err != nil {
		return usageErr{err}
	}
	if *batch != "" {
		if *gds != "" || *workload != "" || *watch {
			return usageErr{errors.New("-batch is standalone: job specs come from the batch file, -watch is per-job")}
		}
		return submitBatch(ctx, c, *batch)
	}

	spec := server.JobSpec{
		Name:     *name,
		Workload: *workload,
		Layer:    *layer,
		Level:    *level,
		TileNM:   geom.Coord(*tile),
		Priority: *priority,
		Tenant:   *tenant,
		Inject:   *inject,
		Verify:   *verify,
	}
	if *fast {
		spec.Flow.SourceSteps = 5
		spec.Flow.GuardNM = 1200
	}
	if *flowJSON != "" {
		data, err := os.ReadFile(*flowJSON)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec.Flow); err != nil {
			return fmt.Errorf("-flow: %w", err)
		}
	}
	if *patlib {
		spec.Flow.PatternLib = true
	}
	if *priorPath != "" {
		spec.Flow.Prior = *priorPath
	}

	var st server.JobStatus
	var err error
	if *gds != "" {
		f, ferr := os.Open(*gds)
		if ferr != nil {
			return ferr
		}
		st, err = c.SubmitGDS(ctx, spec, f)
		f.Close()
	} else {
		st, err = c.Submit(ctx, spec)
	}
	if err != nil {
		return err
	}
	fmt.Println(st.ID)
	if !*watch {
		return nil
	}
	return watchJob(ctx, c, st.ID)
}

// submitBatch submits one job per non-empty line of a JSONL file of
// JobSpecs (datasetgen sweeps use this to farm a dataset's cells out
// to a daemon). It fails fast on the first bad line or refused
// submission — already-submitted jobs keep running — and prints one
// assigned ID per job.
func submitBatch(ctx context.Context, c *server.Client, path string) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line, submitted := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var spec server.JobSpec
		if err := json.Unmarshal([]byte(text), &spec); err != nil {
			return fmt.Errorf("batch line %d: %w", line, err)
		}
		st, err := c.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("batch line %d: %w", line, err)
		}
		submitted++
		fmt.Println(st.ID)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if submitted == 0 {
		return usageErr{fmt.Errorf("batch %s: no job specs found", path)}
	}
	fmt.Fprintf(os.Stderr, "submitted %d jobs\n", submitted)
	return nil
}

func cmdList(ctx context.Context, c *server.Client) error {
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %-6s %-20s %-10s %s\n", "ID", "STATE", "LEVEL", "SOURCE", "PROGRESS", "SUBMITTED")
	for _, j := range jobs {
		fmt.Printf("%-8s %-10s %-6s %-20s %-10s %s\n",
			j.ID, j.State, j.Spec.Level, sourceOf(j), progressOf(j),
			j.Submitted.Format(time.RFC3339))
	}
	return nil
}

func sourceOf(j server.JobStatus) string {
	if j.Upload {
		return "gds upload"
	}
	return "workload " + j.Spec.Workload
}

func progressOf(j server.JobStatus) string {
	switch j.State {
	case server.StateQueued:
		if j.QueuePos > 0 {
			return fmt.Sprintf("#%d", j.QueuePos)
		}
		return "-"
	case server.StateRunning:
		return fmt.Sprintf("%d/%d p%d", j.Progress.DoneTiles, j.Progress.TotalTiles, j.Progress.Pass)
	}
	if j.Stats != nil {
		return fmt.Sprintf("%d tiles", j.Stats.Tiles)
	}
	return "-"
}

func jobArg(args []string, cmd string) (string, error) {
	if len(args) < 1 || args[0] == "" {
		return "", usageErr{fmt.Errorf("%s needs a job ID", cmd)}
	}
	return args[0], nil
}

func cmdStatus(ctx context.Context, c *server.Client, args []string) error {
	id, err := jobArg(args, "status")
	if err != nil {
		return err
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func cmdWatch(ctx context.Context, c *server.Client, args []string) error {
	id, err := jobArg(args, "watch")
	if err != nil {
		return err
	}
	return watchJob(ctx, c, id)
}

// watchJob streams SSE progress to stderr and reports the terminal
// state; a failed job is an error (exit 1).
func watchJob(ctx context.Context, c *server.Client, id string) error {
	var lastLine string
	final, err := c.Watch(ctx, id, func(st server.JobStatus) {
		line := fmt.Sprintf("%s %s %s", st.ID, st.State, progressOf(st))
		if line != lastLine {
			fmt.Fprintln(os.Stderr, line)
			lastLine = line
		}
	})
	if err != nil {
		return err
	}
	if l := final.Latency; l != nil {
		fmt.Fprintf(os.Stderr, "%s latency: queued=%.2fs running=%.2fs total=%.2fs\n",
			final.ID, l.QueueSeconds, l.RunSeconds, l.TotalSeconds)
	}
	switch final.State {
	case server.StateDone:
		if final.Stats != nil {
			fmt.Printf("%s done: tiles=%d failed_tiles=%d time=%.2fs worstRMS=%.2f polygons=%d\n",
				final.ID, final.Stats.Tiles, final.Stats.FailedTiles,
				final.Stats.Seconds, final.Stats.WorstRMS, final.Stats.Polygons)
			s := final.Stats
			if s.LibExactTiles+s.LibSimilarTiles+s.LibHaloRejects+s.LibMisses+s.LibAppends > 0 {
				fmt.Printf("%s patlib: exact=%d similar=%d halo-rejects=%d misses=%d appends=%d\n",
					final.ID, s.LibExactTiles, s.LibSimilarTiles, s.LibHaloRejects,
					s.LibMisses, s.LibAppends)
			}
			if s.WarmTiles > 0 || s.PriorSavedIters > 0 {
				fmt.Printf("%s prior: warm-tiles=%d warm-fragments=%d saved-iterations=%d mean-iterations=%.2f\n",
					final.ID, s.WarmTiles, s.WarmFragments, s.PriorSavedIters, s.MeanIterations)
			}
		} else {
			fmt.Printf("%s done\n", final.ID)
		}
		return nil
	case server.StateCancelled:
		return fmt.Errorf("job %s was cancelled", final.ID)
	default:
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
}

func cmdFetch(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("opcctl fetch", flag.ContinueOnError)
	out := fs.String("o", "", "write the artifact here (default stdout)")
	// Accept both "fetch <id> <artifact> -o f" and "fetch -o f <id> <artifact>".
	var pos []string
	for len(args) > 0 {
		if strings.HasPrefix(args[0], "-") {
			if err := fs.Parse(args); err != nil {
				return usageErr{err}
			}
			args = fs.Args()
			continue
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	if len(pos) < 1 {
		return usageErr{fmt.Errorf("fetch needs a job ID")}
	}
	id := pos[0]
	artifact := "result.gds"
	if len(pos) > 1 {
		artifact = pos[1]
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := c.Fetch(ctx, id, artifact, w)
	if err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, n)
	}
	return nil
}

// cmdTrace downloads the job's flight-recorder timeline as Chrome
// trace-event JSON.
func cmdTrace(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("opcctl trace", flag.ContinueOnError)
	out := fs.String("o", "", "write the trace here (default stdout)")
	var pos []string
	for len(args) > 0 {
		if strings.HasPrefix(args[0], "-") {
			if err := fs.Parse(args); err != nil {
				return usageErr{err}
			}
			args = fs.Args()
			continue
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	if len(pos) < 1 {
		return usageErr{fmt.Errorf("trace needs a job ID")}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := c.Trace(ctx, pos[0], w)
	if err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes); open it in Perfetto or chrome://tracing\n", *out, n)
	}
	return nil
}

// cmdCluster prints the coordinator's worker table and shard counters
// (opcd must be running with -cluster).
func cmdCluster(ctx context.Context, c *server.Client) error {
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		return err
	}
	circuit := ""
	if st.CircuitOpen {
		circuit = " [circuit open: solving locally]"
	}
	fmt.Printf("workers=%d jobs=%d shards pending=%d inflight=%d%s\n",
		len(st.Workers), st.Jobs, st.PendingShards, st.InflightShards, circuit)
	fmt.Printf("lifetime: assigned=%d completed=%d requeued=%d stolen=%d abandoned=%d\n",
		st.Assigned, st.Completed, st.Requeued, st.Stolen, st.Abandoned)
	fmt.Printf("classes: remote=%d failed=%d duplicates=%d local-fallbacks=%d\n",
		st.Remote, st.Failed, st.Duplicates, st.Fallbacks)
	if len(st.Workers) > 0 {
		fmt.Printf("%-14s %-16s %-24s %s\n", "ID", "NAME", "SHARD", "LAST SEEN")
		for _, w := range st.Workers {
			shard := w.Shard
			if shard == "" {
				shard = "-"
			}
			fmt.Printf("%-14s %-16s %-24s %s\n", w.ID, w.Name, shard, w.LastSeen)
		}
	}
	return nil
}

func cmdCancel(ctx context.Context, c *server.Client, args []string) error {
	id, err := jobArg(args, "cancel")
	if err != nil {
		return err
	}
	st, err := c.Cancel(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("%s %s\n", st.ID, st.State)
	return nil
}
