// Command gdsstat prints figure, vertex, reference and byte statistics
// for GDSII files — the quantities OPC adoption inflates. With -layout
// it also reports hierarchy statistics (stored vs expanded figures).
//
// Usage:
//
//	gdsstat [-layout] file.gds...
package main

import (
	"flag"
	"fmt"
	"os"

	"goopc/internal/gds"
	"goopc/internal/layout"
	"goopc/internal/obs"
)

func main() {
	layoutStats := flag.Bool("layout", false, "also report hierarchy statistics")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()
	if *version {
		fmt.Println("gdsstat", obs.CollectBuildInfo())
		os.Exit(0)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gdsstat [-layout] file.gds...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := report(path, *layoutStats); err != nil {
			fmt.Fprintf(os.Stderr, "gdsstat: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func report(path string, layoutStats bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	lib, err := gds.Read(f)
	if err != nil {
		return err
	}
	st, err := gds.CollectWithBytes(lib)
	if err != nil {
		return err
	}
	fmt.Printf("%s: lib=%q %s\n", path, lib.Name, st)
	if layoutStats {
		ly, err := layout.FromGDS(lib)
		if err != nil {
			return err
		}
		hs, err := layout.CollectHierStats(ly)
		if err != nil {
			return err
		}
		fmt.Printf("  hierarchy: cells=%d instances=%d placements=%d stored=%d expanded=%d compression=%.1fx\n",
			hs.Cells, hs.Instances, hs.Placements, hs.StoredFigures, hs.ExpandedFigures, hs.CompressionRatio)
	}
	return nil
}
