// Command drccheck runs the geometric design rule deck over a GDSII
// layout (or the generated standard-cell library) and reports
// violations — the design-side gate the OPC flow assumes is clean.
//
// Usage:
//
//	drccheck file.gds [-cell NAME]
//	drccheck -selftest          (check the generated cell library)
package main

import (
	"flag"
	"fmt"
	"os"

	"goopc/internal/drc"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/obs"
)

func main() {
	cellName := flag.String("cell", "", "cell to check (default: top)")
	selftest := flag.Bool("selftest", false, "check the generated standard-cell library")
	version := flag.Bool("version", false, "print the build fingerprint and exit")
	flag.Parse()
	if *version {
		fmt.Println("drccheck", obs.CollectBuildInfo())
		return
	}

	if err := run(flag.Arg(0), *cellName, *selftest); err != nil {
		fmt.Fprintln(os.Stderr, "drccheck:", err)
		os.Exit(1)
	}
}

func run(path, cellName string, selftest bool) error {
	deck := drc.Deck180()
	fmt.Printf("rule deck: %d rules\n", len(deck))

	if selftest {
		ly := layout.New("selftest")
		lib, err := gen.BuildCellLib(ly, gen.Tech180())
		if err != nil {
			return err
		}
		fail := 0
		for _, c := range lib.Cells {
			v := drc.CheckCell(c, deck)
			status := "clean"
			if len(v) > 0 {
				status = fmt.Sprintf("%d violations", len(v))
				fail++
			}
			fmt.Printf("  %-10s %s\n", c.Name, status)
			for _, viol := range v {
				fmt.Printf("    %v\n", viol)
			}
		}
		if fail > 0 {
			return fmt.Errorf("%d cells failed", fail)
		}
		return nil
	}

	if path == "" {
		return fmt.Errorf("need a GDSII file or -selftest")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ly, err := layout.ReadGDS(f)
	if err != nil {
		return err
	}
	cell := ly.Top
	if cellName != "" {
		cell = ly.Cell(cellName)
		if cell == nil {
			return fmt.Errorf("cell %q not found", cellName)
		}
	}
	v := drc.CheckCell(cell, deck)
	if len(v) == 0 {
		fmt.Printf("%s: clean\n", cell.Name)
		return nil
	}
	for _, viol := range v {
		fmt.Println(" ", viol)
	}
	return fmt.Errorf("%s: %d violations", cell.Name, len(v))
}
