module goopc

go 1.22
