# Developer / CI entry points. Everything is plain go tooling; the
# targets just fix the flag sets so local runs and CI agree.

.PHONY: build test verify fuzz-short bench

build:
	go build ./...

# Full suite (simulation-heavy; several minutes).
test:
	go test ./...

# The CI gate: static checks plus the whole tree under the race
# detector (the lock-free obs registry, the parallel tile scheduler,
# and the checkpoint writer all have concurrency to defend).
verify:
	go vet ./...
	go test -race ./...

# Short fuzz pass over the GDS ingest hardening (the seed corpora plus
# 30s of mutation per target); CI runs this, longer runs are manual.
fuzz-short:
	go test ./internal/gds/ -run '^$$' -fuzz 'FuzzReadGDS$$' -fuzztime 30s
	go test ./internal/gds/ -run '^$$' -fuzz 'FuzzReadGDSLayout$$' -fuzztime 30s

# Regenerate the recorded evaluation tables.
bench:
	go run ./cmd/benchtables
