# Developer / CI entry points. Everything is plain go tooling; the
# targets just fix the flag sets so local runs and CI agree.

.PHONY: build test verify bench

build:
	go build ./...

# Full suite (simulation-heavy; several minutes).
test:
	go test ./...

# The CI gate: static checks plus the race-sensitive packages — the
# lock-free obs registry and the parallel tile scheduler — under the
# race detector.
verify:
	go vet ./...
	go test -race ./internal/obs/... ./internal/core/...

# Regenerate the recorded evaluation tables.
bench:
	go run ./cmd/benchtables
