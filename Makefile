# Developer / CI entry points. Everything is plain go tooling; the
# targets just fix the flag sets so local runs and CI agree.

.PHONY: build test verify server-integration fuzz-short bench

build:
	go build ./...

# Full suite (simulation-heavy; several minutes).
test:
	go test ./...

# The CI gate: static checks plus the whole tree under the race
# detector (the lock-free obs registry, the parallel tile scheduler,
# the checkpoint writer and the opcd job server all have concurrency
# to defend), then the opcd integration suite forced uncached.
verify:
	go vet ./...
	go test -race ./...
	$(MAKE) server-integration

# The opcd service gate on its own: the job-server integration suite
# (concurrent submit parity, backpressure, chaos, restart recovery)
# under the race detector, never from the test cache.
server-integration:
	go vet ./internal/server/ ./cmd/opcd/ ./cmd/opcctl/
	go test -race -count=1 -run '^TestServer' ./internal/server/

# Short fuzz pass over the GDS ingest hardening (the seed corpora plus
# 30s of mutation per target); CI runs this, longer runs are manual.
fuzz-short:
	go test ./internal/gds/ -run '^$$' -fuzz 'FuzzReadGDS$$' -fuzztime 30s
	go test ./internal/gds/ -run '^$$' -fuzz 'FuzzReadGDSLayout$$' -fuzztime 30s

# Regenerate the recorded evaluation tables.
bench:
	go run ./cmd/benchtables
