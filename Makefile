# Developer / CI entry points. Everything is plain go tooling; the
# targets just fix the flag sets so local runs and CI agree.

.PHONY: build test test-purego verify server-integration cluster-smoke patlib-bench-smoke trace-smoke dataset-smoke fuzz-short bench bench-micro bench-json

build:
	go build ./...

# Full suite (simulation-heavy; several minutes).
test:
	go test ./...

# The no-assembly leg: compile the SIMD butterfly kernels out entirely
# and prove the whole tree (and the kernel equivalence tests, now
# reference-vs-reference) still passes on the pure-Go path every
# non-amd64/arm64 port will take.
test-purego:
	go build -tags purego ./...
	go vet -tags purego ./...
	go test -tags purego -race ./internal/fft/ ./internal/optics/

# The CI gate: static checks plus the whole tree under the race
# detector (the lock-free obs registry, the parallel tile scheduler,
# the checkpoint writer and the opcd job server all have concurrency
# to defend), then the opcd integration suite forced uncached.
verify:
	go vet ./...
	go test -race ./...
	$(MAKE) test-purego
	$(MAKE) server-integration
	$(MAKE) cluster-smoke
	$(MAKE) patlib-bench-smoke
	$(MAKE) trace-smoke
	$(MAKE) dataset-smoke

# The opcd service gate on its own: the job-server integration suite
# (concurrent submit parity, backpressure, chaos, restart recovery)
# under the race detector, never from the test cache.
server-integration:
	go vet ./internal/server/ ./cmd/opcd/ ./cmd/opcctl/
	go test -race -count=1 -run '^TestServer' ./internal/server/

# Distributed-cluster smoke (DESIGN.md 5i): a coordinator with three
# REAL worker processes (the test binary re-execs itself) corrects a
# job, one worker is SIGKILLed mid-shard, and the run must still finish
# with output bit-identical to the single-process engine — plus, on
# machines with >=4 CPUs, beat the forced-serial run on wall clock.
# Never cached, so the kill/requeue actually happens every run.
cluster-smoke:
	go test -count=1 -run '^TestClusterSmoke$$' ./internal/server/
	go test -count=1 -race -run '^TestCluster' ./internal/cluster/

# Pattern-library cold/warm smoke (DESIGN.md 5f): a tiny workload is
# solved cold into a fresh library, then rerun warm — the warm run must
# be served entirely by exact hits with byte-identical output, plus the
# rotated-similarity and fingerprint-mismatch guards. Never cached, so
# the on-disk round trip actually happens.
patlib-bench-smoke:
	go test -count=1 -run '^TestPatlibWarm|^TestPatlibFingerprint' ./internal/core/

# Dataset-factory / learned-prior smoke (DESIGN.md 5j): a tiny sweep is
# generated into a throwaway dataset, a shard is regenerated from the
# manifest's spec+seed and must match byte for byte, a prior is fitted
# from the records, and the same cells rerun warm must spend strictly
# fewer total model iterations while converging to the cold result
# (final RMS within ConvergeEps). Never cached, so the sweep, the fit
# and the warm rerun actually happen every run.
dataset-smoke:
	go test -count=1 -run '^TestSweepFitWarm$$' ./internal/dataset/

# Flight-recorder smoke (DESIGN.md 5h): a small seeded tiled run with
# -trace must produce a loadable Chrome trace-event file whose event
# counts reconcile exactly with the scheduler's TileStats. Never cached,
# so the CLI path, the export and the reconciliation all actually run.
trace-smoke:
	go test -count=1 -run '^TestTraceSmoke$$' ./cmd/opcflow/

# Short fuzz pass over the GDS ingest hardening (the seed corpora plus
# 30s of mutation per target); CI runs this, longer runs are manual.
fuzz-short:
	go test ./internal/gds/ -run '^$$' -fuzz 'FuzzReadGDS$$' -fuzztime 30s
	go test ./internal/gds/ -run '^$$' -fuzz 'FuzzReadGDSLayout$$' -fuzztime 30s
	go test ./internal/fft/ -run '^$$' -fuzz 'FuzzTransformEquivalence$$' -fuzztime 30s

# Regenerate the recorded evaluation tables.
bench:
	go run ./cmd/benchtables

# Regenerate the committed machine-readable bench artifacts (per-
# experiment wall/CPU/alloc plus counter deltas and cache hit rates).
bench-json:
	go run ./cmd/benchtables -exp T2 -exp T3 -exp PRIOR -json 'BENCH_<exp>.json'

# The aerial-image micro-benchmarks (FFT substrates plus the SOCS
# serial/parallel/f32 and Abbe engines) in short form: the quick check
# that a kernel or imaging change moved the needle the right way.
bench-micro:
	go test -run '^$$' -bench 'BenchmarkFFT2D|BenchmarkAerialImage' -benchtime 200ms .
