package geom

import "sort"

// Region is a set of points of the plane represented as a union of
// disjoint axis-aligned rectangles. Regions are the normal form all
// boolean operations produce: rectangles are maximal horizontal runs of
// scanline slabs, disjoint, and sorted by (Y0, X0). The zero Region is
// empty and ready to use.
type Region struct {
	rects []Rect
}

// RegionFromRects builds a region from arbitrary, possibly overlapping
// rectangles by taking their union.
func RegionFromRects(rs ...Rect) Region {
	var edges []vEdge
	for _, r := range rs {
		edges = appendRectEdges(edges, r, 0)
	}
	return sweep(edges, predOr)
}

// RegionFromPolygons builds a region from rings using the nonzero winding
// rule: counter-clockwise rings fill, clockwise rings carve holes.
func RegionFromPolygons(ps ...Polygon) Region {
	var edges []vEdge
	for _, p := range ps {
		edges = appendPolyEdges(edges, p, 0)
	}
	return sweep(edges, predOr)
}

// Rects returns the rectangle decomposition. The slice is owned by the
// region; callers must not modify it.
func (g Region) Rects() []Rect { return g.rects }

// Empty reports whether the region covers no area.
func (g Region) Empty() bool { return len(g.rects) == 0 }

// Count returns the number of rectangles in the decomposition.
func (g Region) Count() int { return len(g.rects) }

// Area returns the total covered area in DBU^2.
func (g Region) Area() int64 {
	var a int64
	for _, r := range g.rects {
		a += r.Area()
	}
	return a
}

// BBox returns the bounding box of the region.
func (g Region) BBox() Rect {
	var b Rect
	for i, r := range g.rects {
		if i == 0 {
			b = r
		} else {
			b = b.Union(r)
		}
	}
	return b
}

// Contains reports whether p lies in the region (half-open rectangles:
// low edges in, high edges out).
func (g Region) Contains(p Point) bool {
	for _, r := range g.rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Translate returns the region shifted by d.
func (g Region) Translate(d Point) Region {
	out := make([]Rect, len(g.rects))
	for i, r := range g.rects {
		out[i] = r.Translate(d)
	}
	return Region{out}
}

// Union returns g OR h.
func (g Region) Union(h Region) Region { return combine(g, h, predOr) }

// Intersect returns g AND h.
func (g Region) Intersect(h Region) Region { return combine(g, h, predAnd) }

// Subtract returns g AND NOT h.
func (g Region) Subtract(h Region) Region { return combine(g, h, predSub) }

// Xor returns the symmetric difference of g and h.
func (g Region) Xor(h Region) Region { return combine(g, h, predXor) }

// Grow returns the region dilated by d on all sides (Minkowski sum with
// the 2d-by-2d square). d must be non-negative; use Shrink to erode.
func (g Region) Grow(d Coord) Region {
	if d == 0 || g.Empty() {
		return g
	}
	grown := make([]Rect, 0, len(g.rects))
	for _, r := range g.rects {
		grown = append(grown, r.Grow(d))
	}
	return RegionFromRects(grown...)
}

// GrowDir dilates the region by dx horizontally and dy vertically
// (Minkowski sum with a 2dx-by-2dy rectangle). Directional design-rule
// checks (endcap extension) use it.
func (g Region) GrowDir(dx, dy Coord) Region {
	if (dx == 0 && dy == 0) || g.Empty() {
		return g
	}
	grown := make([]Rect, 0, len(g.rects))
	for _, r := range g.rects {
		grown = append(grown, r.GrowXY(dx, dy))
	}
	return RegionFromRects(grown...)
}

// Shrink returns the region eroded by d on all sides (Minkowski erosion
// by the 2d-by-2d square). Features narrower than 2d vanish.
func (g Region) Shrink(d Coord) Region {
	if d == 0 || g.Empty() {
		return g
	}
	big := g.BBox().Grow(2 * d)
	comp := RegionFromRects(big).Subtract(g)
	return g.Subtract(comp.Grow(d))
}

// Size applies signed sizing: positive d grows, negative d shrinks.
func (g Region) Size(d Coord) Region {
	if d >= 0 {
		return g.Grow(d)
	}
	return g.Shrink(-d)
}

// Opening erodes then dilates by d, removing slivers narrower than 2d
// while preserving the bulk shape. Mask rule cleanups use this.
func (g Region) Opening(d Coord) Region { return g.Shrink(d).Grow(d) }

// dilateAsym is the Minkowski sum with the rectangle spanned by the
// origin and (dx, dy) (negative values extend in the negative
// direction).
func (g Region) dilateAsym(dx, dy Coord) Region {
	if g.Empty() || (dx == 0 && dy == 0) {
		return g
	}
	grown := make([]Rect, 0, len(g.rects))
	for _, r := range g.rects {
		grown = append(grown, Rect{
			X0: r.X0 + minC(0, dx), Y0: r.Y0 + minC(0, dy),
			X1: r.X1 + maxC(0, dx), Y1: r.Y1 + maxC(0, dy),
		})
	}
	return RegionFromRects(grown...)
}

// SquareOpening returns the union of every side-by-side axis-aligned
// square contained in the region: the morphological opening with a
// square structuring element of the exact given side. Points outside
// the result cannot be covered by any inscribed square of that size —
// the precise minimum-width test design rule checking needs (a feature
// exactly `side` wide survives; one unit narrower vanishes).
func (g Region) SquareOpening(side Coord) Region {
	if side <= 0 || g.Empty() {
		return g
	}
	big := g.BBox().Grow(2 * side)
	comp := RegionFromRects(big).Subtract(g)
	// Erosion via the complement: anchor p survives iff the side x side
	// square at p avoids the complement entirely. With half-open
	// rectangles the square spans offsets [0, side-1], so the reflected
	// element extends by side-1.
	compD := comp.dilateAsym(-(side - 1), -(side - 1))
	eroded := RegionFromRects(big).Subtract(compD)
	return eroded.dilateAsym(side-1, side-1).Intersect(g)
}

// NarrowerThan returns the parts of the region not coverable by an
// inscribed side-by-side square: the exact minimum-width violations.
func (g Region) NarrowerThan(side Coord) Region {
	return g.Subtract(g.SquareOpening(side))
}

// GapsNarrowerThan returns the parts of the region's complement (near
// the region) that cannot hold a side-by-side square: the exact
// minimum-space violations. Open space far from any feature is never
// reported.
func (g Region) GapsNarrowerThan(side Coord) Region {
	if g.Empty() || side <= 0 {
		return Region{}
	}
	universe := g.BBox().Grow(3 * side)
	comp := RegionFromRects(universe).Subtract(g)
	narrow := comp.NarrowerThan(side)
	// Drop frame artifacts hugging the universe border.
	return narrow.Intersect(RegionFromRects(g.BBox().Grow(side)))
}

// Closing dilates then erodes by d, filling notches and gaps narrower
// than 2d.
func (g Region) Closing(d Coord) Region { return g.Grow(d).Shrink(d) }

// --- scanline boolean core ---

// vEdge is one weighted vertical edge event. Winding convention: a
// downward original edge contributes +1 to the winding of every point to
// its right; an upward edge contributes -1. With counter-clockwise rings
// this makes interior winding +1.
type vEdge struct {
	x, y0, y1 Coord // y0 < y1 always; w carries the direction sign
	w         int32
	op        uint8 // operand index: 0 = A, 1 = B
}

func appendRectEdges(dst []vEdge, r Rect, op uint8) []vEdge {
	if r.Empty() {
		return dst
	}
	// CCW rect: left edge travels south (downward, +1), right edge north
	// (upward, -1).
	dst = append(dst,
		vEdge{x: r.X0, y0: r.Y0, y1: r.Y1, w: +1, op: op},
		vEdge{x: r.X1, y0: r.Y0, y1: r.Y1, w: -1, op: op},
	)
	return dst
}

func appendPolyEdges(dst []vEdge, p Polygon, op uint8) []vEdge {
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		if a.X != b.X || a.Y == b.Y {
			continue // horizontal or degenerate: no winding contribution
		}
		if b.Y < a.Y { // downward edge: +1 to the right
			dst = append(dst, vEdge{x: a.X, y0: b.Y, y1: a.Y, w: +1, op: op})
		} else { // upward edge: -1 to the right
			dst = append(dst, vEdge{x: a.X, y0: a.Y, y1: b.Y, w: -1, op: op})
		}
	}
	return dst
}

func regionEdges(dst []vEdge, g Region, op uint8) []vEdge {
	for _, r := range g.rects {
		dst = appendRectEdges(dst, r, op)
	}
	return dst
}

// pred decides coverage from the two operand winding states.
type pred func(inA, inB bool) bool

func predOr(a, b bool) bool  { return a || b }
func predAnd(a, b bool) bool { return a && b }
func predSub(a, b bool) bool { return a && !b }
func predXor(a, b bool) bool { return a != b }

func combine(g, h Region, p pred) Region {
	var edges []vEdge
	edges = regionEdges(edges, g, 0)
	edges = regionEdges(edges, h, 1)
	return sweep(edges, p)
}

// BooleanPolygons applies op ("or", "and", "sub", "xor") to two sets of
// rings directly, without materializing intermediate regions.
func BooleanPolygons(a, b []Polygon, op string) Region {
	var p pred
	switch op {
	case "or":
		p = predOr
	case "and":
		p = predAnd
	case "sub":
		p = predSub
	case "xor":
		p = predXor
	default:
		p = predOr
	}
	var edges []vEdge
	for _, ring := range a {
		edges = appendPolyEdges(edges, ring, 0)
	}
	for _, ring := range b {
		edges = appendPolyEdges(edges, ring, 1)
	}
	return sweep(edges, p)
}

// interval is a covered y-range within one scanline slab.
type interval struct{ y0, y1 Coord }

// sweep runs the vertical-edge scanline and returns the covered region
// with maximal horizontal run-merging of slab rectangles.
func sweep(edges []vEdge, p pred) Region {
	if len(edges) == 0 {
		return Region{}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].x < edges[j].x })

	// Active winding deltas per y breakpoint, one accumulator per operand.
	type delta struct{ a, b int32 }
	deltas := map[Coord]*delta{}
	var ys []Coord // sorted keys of deltas

	addDelta := func(y Coord, op uint8, w int32) {
		d := deltas[y]
		if d == nil {
			d = &delta{}
			deltas[y] = d
			i := sort.Search(len(ys), func(k int) bool { return ys[k] >= y })
			ys = append(ys, 0)
			copy(ys[i+1:], ys[i:])
			ys[i] = y
		}
		if op == 0 {
			d.a += w
		} else {
			d.b += w
		}
	}

	// open tracks rectangles still extending rightward: interval -> x
	// where the run started.
	open := map[interval]Coord{}
	var out []Rect

	cur := make([]interval, 0, 16)
	i := 0
	for i < len(edges) {
		x := edges[i].x
		for i < len(edges) && edges[i].x == x {
			e := edges[i]
			addDelta(e.y0, e.op, e.w)
			addDelta(e.y1, e.op, -e.w)
			i++
		}
		// Recompute covered intervals after this event column.
		cur = cur[:0]
		var wa, wb int32
		var start Coord
		covering := false
		for _, y := range ys {
			d := deltas[y]
			nwa, nwb := wa+d.a, wb+d.b
			nowIn := p(nwa > 0, nwb > 0)
			if nowIn && !covering {
				start, covering = y, true
			} else if !nowIn && covering {
				cur = append(cur, interval{start, y})
				covering = false
			}
			wa, wb = nwa, nwb
		}
		// Slab boundary at x: close runs not present anymore, open new ones.
		next := map[interval]Coord{}
		for _, iv := range cur {
			if sx, ok := open[iv]; ok {
				next[iv] = sx
				delete(open, iv)
			} else {
				next[iv] = x
			}
		}
		for iv, sx := range open {
			if sx < x {
				out = append(out, Rect{sx, iv.y0, x, iv.y1})
			}
		}
		open = next
		// Prune zero deltas to keep ys short.
		if len(ys) > 64 {
			kept := ys[:0]
			for _, y := range ys {
				d := deltas[y]
				if d.a == 0 && d.b == 0 {
					delete(deltas, y)
				} else {
					kept = append(kept, y)
				}
			}
			ys = kept
		}
	}
	// Edges exhausted: all windings net to zero, so nothing remains open
	// unless the input was malformed; close defensively at the last x.
	if len(open) > 0 {
		lastX := edges[len(edges)-1].x
		for iv, sx := range open {
			if sx < lastX {
				out = append(out, Rect{sx, iv.y0, lastX, iv.y1})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y0 != out[j].Y0 {
			return out[i].Y0 < out[j].Y0
		}
		return out[i].X0 < out[j].X0
	})
	return Region{out}
}
