package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquareOpeningExactWidth(t *testing.T) {
	// A feature exactly `side` wide survives untouched; one unit
	// narrower vanishes. This boundary exactness is what the DRC width
	// check depends on.
	line := RegionFromRects(R(0, 0, 180, 2000))
	if !line.SquareOpening(180).Xor(line).Empty() {
		t.Error("exact-width line must survive its own width opening")
	}
	if !line.SquareOpening(181).Empty() {
		t.Error("line must vanish under a wider opening")
	}
	narrow := RegionFromRects(R(0, 0, 179, 2000))
	if !narrow.SquareOpening(180).Empty() {
		t.Error("sub-width line must vanish")
	}
}

func TestSquareOpeningLShape(t *testing.T) {
	// Both arms 400 wide: the L survives a 400 opening exactly.
	l := RegionFromPolygons(Polygon{
		Pt(0, 0), Pt(2000, 0), Pt(2000, 400), Pt(400, 400), Pt(400, 2000), Pt(0, 2000),
	})
	if !l.SquareOpening(400).Xor(l).Empty() {
		t.Error("L with arms at width must survive")
	}
	if l.SquareOpening(401).Xor(l).Empty() {
		t.Error("L must lose area under a wider opening")
	}
}

func TestNarrowerThan(t *testing.T) {
	// A wide block with a narrow tab: only the tab is flagged.
	g := RegionFromRects(R(0, 0, 1000, 1000), R(1000, 450, 1100, 550))
	v := g.NarrowerThan(180)
	if v.Empty() {
		t.Fatal("tab not flagged")
	}
	// The violation sits in the tab, not the block.
	if bb := v.BBox(); bb.X0 < 1000 {
		t.Errorf("violation leaked into the block: %v", bb)
	}
	// Clean geometry returns empty.
	if !RegionFromRects(R(0, 0, 1000, 1000)).NarrowerThan(180).Empty() {
		t.Error("clean block flagged")
	}
}

func TestGapsNarrowerThan(t *testing.T) {
	g := RegionFromRects(R(0, 0, 500, 1000), R(620, 0, 1100, 1000))
	// 120 gap: flagged at 180, clean at 120.
	if g.GapsNarrowerThan(180).Empty() {
		t.Error("120 gap not flagged at 180")
	}
	if !g.GapsNarrowerThan(120).Empty() {
		t.Error("exact-width gap flagged")
	}
	// The flagged area is the gap itself.
	v := g.GapsNarrowerThan(180)
	if bb := v.BBox(); bb.X0 < 500 || bb.X1 > 620 {
		t.Errorf("violation outside the gap: %v", bb)
	}
	// Isolated feature: outer space never flagged.
	iso := RegionFromRects(R(0, 0, 300, 300))
	if !iso.GapsNarrowerThan(200).Empty() {
		t.Error("open space flagged")
	}
}

func TestQuickSquareOpeningProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randRegion(rng)
		side := Coord(2 + rng.Intn(12))
		opened := g.SquareOpening(side)
		// Anti-extensivity: opening never adds area.
		if !opened.Subtract(g).Empty() {
			return false
		}
		// Idempotence: opening twice = opening once.
		if !opened.SquareOpening(side).Xor(opened).Empty() {
			return false
		}
		// Monotonicity in the structuring element: larger squares keep
		// less.
		bigger := g.SquareOpening(side + 3)
		return bigger.Subtract(opened).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGrowDir(t *testing.T) {
	g := RegionFromRects(R(0, 0, 100, 100))
	gx := g.GrowDir(10, 0)
	if gx.BBox() != R(-10, 0, 110, 100) {
		t.Errorf("GrowDir x: %v", gx.BBox())
	}
	gy := g.GrowDir(0, 20)
	if gy.BBox() != R(0, -20, 100, 120) {
		t.Errorf("GrowDir y: %v", gy.BBox())
	}
	if !g.GrowDir(0, 0).Xor(g).Empty() {
		t.Error("zero GrowDir must be identity")
	}
}

func TestXformInvert(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(13, -7), Pt(-100, 42)}
	for o := R0; o <= MX270; o++ {
		x := Xform{Orient: o, Mag: 1, Offset: Pt(31, -17)}
		inv := x.Invert()
		for _, p := range pts {
			if got := inv.Apply(x.Apply(p)); got != p {
				t.Fatalf("invert(%v): %v -> %v", o, p, got)
			}
			if got := x.Apply(inv.Apply(p)); got != p {
				t.Fatalf("invert-apply(%v): %v -> %v", o, p, got)
			}
		}
	}
}

func TestXformInvertPanicsOnMag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mag != 1")
		}
	}()
	(Xform{Orient: R0, Mag: 2}).Invert()
}
