package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Neg(); got != Pt(-3, -4) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d", got)
	}
	if got := p.Dist(Pt(0, 0)); got != 5 {
		t.Errorf("Dist = %f", got)
	}
}

func TestCross(t *testing.T) {
	if c := Cross(Pt(0, 0), Pt(1, 0), Pt(1, 1)); c <= 0 {
		t.Errorf("CCW turn should be positive, got %d", c)
	}
	if c := Cross(Pt(0, 0), Pt(0, 1), Pt(1, 1)); c >= 0 {
		t.Errorf("CW turn should be negative, got %d", c)
	}
	if c := Cross(Pt(0, 0), Pt(1, 1), Pt(2, 2)); c != 0 {
		t.Errorf("collinear should be zero, got %d", c)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(10, 0, 0, 5) // swapped corners canonicalize
	if r != (Rect{0, 0, 10, 5}) {
		t.Fatalf("R canonicalization: %v", r)
	}
	if r.W() != 10 || r.H() != 5 || r.Area() != 50 {
		t.Errorf("dims: w=%d h=%d a=%d", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{3, 3, 3, 9}).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if r.Center() != Pt(5, 2) {
		t.Errorf("center = %v", r.Center())
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 9), true},
		{Pt(10, 5), false},
		{Pt(5, 10), false},
		{Pt(-1, 5), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsClosed(Pt(10, 10)) {
		t.Error("ContainsClosed should include the high corner")
	}
}

func TestRectOverlapIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(10, 0, 20, 10) // abutting a
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("abutting rects must not count as overlapping")
	}
	if !a.Touches(c) {
		t.Error("abutting rects should touch")
	}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(R(20, 20, 30, 30)).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if u := a.Union(c); u != (Rect{0, 0, 20, 10}) {
		t.Errorf("Union = %v", u)
	}
}

func TestRectGrowTranslate(t *testing.T) {
	r := R(0, 0, 10, 10)
	if g := r.Grow(5); g != (Rect{-5, -5, 15, 15}) {
		t.Errorf("Grow = %v", g)
	}
	if g := r.Grow(-6); !g.Empty() {
		t.Errorf("over-shrunk rect should be empty, got %v", g)
	}
	if tr := r.Translate(Pt(3, -2)); tr != (Rect{3, -2, 13, 8}) {
		t.Errorf("Translate = %v", tr)
	}
	if g := r.GrowXY(1, 2); g != (Rect{-1, -2, 11, 12}) {
		t.Errorf("GrowXY = %v", g)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Pt(100, 100), 30, 20)
	if r.W() != 30 || r.H() != 20 {
		t.Fatalf("dims wrong: %v", r)
	}
	if r.Center() != Pt(100, 100) {
		t.Errorf("center = %v", r.Center())
	}
}

func lShape() Polygon {
	// CCW L: 20x20 square missing its top-right 10x10 quadrant.
	return Polygon{
		Pt(0, 0), Pt(20, 0), Pt(20, 10), Pt(10, 10), Pt(10, 20), Pt(0, 20),
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := lShape().Validate(); err != nil {
		t.Fatalf("valid L rejected: %v", err)
	}
	diag := Polygon{Pt(0, 0), Pt(10, 10), Pt(0, 10)}
	if err := diag.Validate(); err == nil {
		t.Error("diagonal polygon should fail validation")
	}
	short := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	if err := short.Validate(); err == nil {
		t.Error("3-vertex polygon should fail validation")
	}
	dup := Polygon{Pt(0, 0), Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if err := dup.Validate(); err == nil {
		t.Error("zero-length edge should fail validation")
	}
}

func TestPolygonAreaPerimeter(t *testing.T) {
	l := lShape()
	if a := l.Area(); a != 300 {
		t.Errorf("L area = %d, want 300", a)
	}
	if !l.IsCCW() {
		t.Error("L should be CCW")
	}
	if p := l.Perimeter(); p != 80 {
		t.Errorf("L perimeter = %d, want 80", p)
	}
	rev := l.Reverse()
	if rev.IsCCW() {
		t.Error("reversed L should be CW")
	}
	if rev.Area() != 300 {
		t.Error("area must be winding-independent")
	}
}

func TestPolygonBBoxTranslate(t *testing.T) {
	l := lShape()
	if bb := l.BBox(); bb != (Rect{0, 0, 20, 20}) {
		t.Errorf("BBox = %v", bb)
	}
	tr := l.Translate(Pt(5, 5))
	if bb := tr.BBox(); bb != (Rect{5, 5, 25, 25}) {
		t.Errorf("translated BBox = %v", bb)
	}
	if l[0] != Pt(0, 0) {
		t.Error("Translate must not mutate the receiver")
	}
}

func TestPolygonNormalize(t *testing.T) {
	p := Polygon{
		Pt(0, 0), Pt(5, 0), Pt(10, 0), // collinear run on the bottom
		Pt(10, 10), Pt(10, 10), // duplicate
		Pt(0, 10),
	}
	n := p.Normalize()
	want := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if len(n) != len(want) {
		t.Fatalf("Normalize len = %d (%v)", len(n), n)
	}
	if n.Area() != 100 {
		t.Errorf("area after normalize = %d", n.Area())
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	l := lShape()
	in := []Point{Pt(5, 5), Pt(15, 5), Pt(5, 15), Pt(1, 1)}
	outp := []Point{Pt(15, 15), Pt(25, 5), Pt(-1, 5), Pt(5, 25)}
	for _, p := range in {
		if !l.ContainsPoint(p) {
			t.Errorf("%v should be inside", p)
		}
	}
	for _, p := range outp {
		if l.ContainsPoint(p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

func TestDirBasics(t *testing.T) {
	if East.Opposite() != West || North.Opposite() != South {
		t.Error("Opposite wrong")
	}
	if East.Left() != North || North.Left() != West {
		t.Error("Left wrong")
	}
	if East.Right() != South || South.Right() != West {
		t.Error("Right wrong")
	}
	if !East.Horizontal() || North.Horizontal() {
		t.Error("Horizontal wrong")
	}
	// CCW ring, interior left: outward normal of an East edge points south.
	if East.Normal() != Pt(0, -1) {
		t.Errorf("East normal = %v", East.Normal())
	}
	if North.Normal() != Pt(1, 0) {
		t.Errorf("North normal = %v", North.Normal())
	}
	if DirOf(Pt(0, 0), Pt(5, 0)) != East || DirOf(Pt(0, 0), Pt(0, -5)) != South {
		t.Error("DirOf wrong")
	}
}

func TestPolygonEdgesCorners(t *testing.T) {
	sq := R(0, 0, 10, 10).Polygon()
	edges := sq.Edges()
	if len(edges) != 4 {
		t.Fatalf("square edges = %d", len(edges))
	}
	for _, e := range edges {
		if e.CornerA != Convex || e.CornerB != Convex {
			t.Errorf("square corner kinds: %v %v", e.CornerA, e.CornerB)
		}
		if e.Len() != 10 {
			t.Errorf("edge len = %d", e.Len())
		}
	}
	convex, concave := lShape().CountCorners()
	if convex != 5 || concave != 1 {
		t.Errorf("L corners: convex=%d concave=%d, want 5/1", convex, concave)
	}
}

func TestEdgeMid(t *testing.T) {
	e := Edge{A: Pt(0, 0), B: Pt(10, 0), Dir: East}
	if e.Mid() != Pt(5, 0) {
		t.Errorf("Mid = %v", e.Mid())
	}
}

func TestRegionFromRectsUnion(t *testing.T) {
	g := RegionFromRects(R(0, 0, 10, 10), R(5, 5, 15, 15))
	if got := g.Area(); got != 175 {
		t.Errorf("union area = %d, want 175", got)
	}
	// Disjoint.
	g = RegionFromRects(R(0, 0, 10, 10), R(20, 0, 30, 10))
	if got := g.Area(); got != 200 {
		t.Errorf("disjoint union area = %d", got)
	}
	// Identical rects collapse.
	g = RegionFromRects(R(0, 0, 10, 10), R(0, 0, 10, 10))
	if got := g.Area(); got != 100 {
		t.Errorf("duplicate union area = %d", got)
	}
}

func TestRegionBooleans(t *testing.T) {
	a := RegionFromRects(R(0, 0, 10, 10))
	b := RegionFromRects(R(5, 0, 15, 10))
	if got := a.Intersect(b).Area(); got != 50 {
		t.Errorf("AND area = %d", got)
	}
	if got := a.Subtract(b).Area(); got != 50 {
		t.Errorf("SUB area = %d", got)
	}
	if got := a.Xor(b).Area(); got != 100 {
		t.Errorf("XOR area = %d", got)
	}
	if got := a.Union(b).Area(); got != 150 {
		t.Errorf("OR area = %d", got)
	}
	if !a.Intersect(RegionFromRects(R(50, 50, 60, 60))).Empty() {
		t.Error("disjoint AND should be empty")
	}
}

func TestRegionFromPolygonsWithHole(t *testing.T) {
	outer := R(0, 0, 30, 30).Polygon()
	hole := R(10, 10, 20, 20).Polygon().Reverse() // CW carves
	g := RegionFromPolygons(outer, hole)
	if got := g.Area(); got != 800 {
		t.Errorf("holey area = %d, want 800", got)
	}
	if g.Contains(Pt(15, 15)) {
		t.Error("hole interior should be outside")
	}
	if !g.Contains(Pt(5, 5)) {
		t.Error("rim should be inside")
	}
}

func TestRegionContainsAndBBox(t *testing.T) {
	g := RegionFromRects(R(0, 0, 10, 10), R(20, 20, 30, 30))
	if !g.Contains(Pt(5, 5)) || !g.Contains(Pt(25, 25)) {
		t.Error("Contains misses member rects")
	}
	if g.Contains(Pt(15, 15)) {
		t.Error("gap should be outside")
	}
	if bb := g.BBox(); bb != (Rect{0, 0, 30, 30}) {
		t.Errorf("BBox = %v", bb)
	}
}

func TestRegionGrowShrink(t *testing.T) {
	g := RegionFromRects(R(100, 100, 200, 200))
	grown := g.Grow(10)
	if got := grown.Area(); got != 120*120 {
		t.Errorf("grown area = %d", got)
	}
	back := grown.Shrink(10)
	if got := back.Area(); got != 100*100 {
		t.Errorf("shrink-back area = %d", got)
	}
	if bb := back.BBox(); bb != (Rect{100, 100, 200, 200}) {
		t.Errorf("shrink-back bbox = %v", bb)
	}
	// Features narrower than 2d vanish.
	thin := RegionFromRects(R(0, 0, 10, 100))
	if !thin.Shrink(5).Empty() {
		t.Error("10-wide bar should vanish under Shrink(5)")
	}
	if got := thin.Shrink(4).Area(); got != 2*92 {
		t.Errorf("Shrink(4) area = %d, want 184", got)
	}
}

func TestRegionSizeSign(t *testing.T) {
	g := RegionFromRects(R(0, 0, 100, 100))
	if got := g.Size(5).Area(); got != 110*110 {
		t.Errorf("Size(+5) area = %d", got)
	}
	if got := g.Size(-5).Area(); got != 90*90 {
		t.Errorf("Size(-5) area = %d", got)
	}
	if got := g.Size(0).Area(); got != 100*100 {
		t.Errorf("Size(0) area = %d", got)
	}
}

func TestRegionOpeningClosing(t *testing.T) {
	// Two bars 6 apart: Closing(4) bridges the gap.
	g := RegionFromRects(R(0, 0, 20, 100), R(26, 0, 46, 100))
	closed := g.Closing(4)
	if closed.Area() <= g.Area() {
		t.Error("Closing should fill the 6-wide gap")
	}
	// A 4-wide sliver on a big block: Opening(4) removes it.
	h := RegionFromRects(R(0, 0, 100, 100), R(100, 48, 104, 52))
	opened := h.Opening(4)
	if got := opened.Area(); got != 100*100 {
		t.Errorf("Opening area = %d, want sliver removed", got)
	}
}

func TestRegionTranslate(t *testing.T) {
	g := RegionFromRects(R(0, 0, 10, 10)).Translate(Pt(100, 200))
	if !g.Contains(Pt(105, 205)) {
		t.Error("translated region misplaced")
	}
	if g.Area() != 100 {
		t.Error("translation must preserve area")
	}
}

func TestBooleanPolygons(t *testing.T) {
	a := []Polygon{R(0, 0, 10, 10).Polygon()}
	b := []Polygon{R(5, 5, 15, 15).Polygon()}
	if got := BooleanPolygons(a, b, "and").Area(); got != 25 {
		t.Errorf("and = %d", got)
	}
	if got := BooleanPolygons(a, b, "or").Area(); got != 175 {
		t.Errorf("or = %d", got)
	}
	if got := BooleanPolygons(a, b, "sub").Area(); got != 75 {
		t.Errorf("sub = %d", got)
	}
	if got := BooleanPolygons(a, b, "xor").Area(); got != 150 {
		t.Errorf("xor = %d", got)
	}
}

func TestPolygonsReconstructionSimple(t *testing.T) {
	g := RegionFromRects(R(0, 0, 10, 10))
	ps := g.Polygons()
	if len(ps) != 1 {
		t.Fatalf("polygons = %d", len(ps))
	}
	if ps[0].Area() != 100 || !ps[0].IsCCW() {
		t.Errorf("bad ring: area=%d ccw=%v", ps[0].Area(), ps[0].IsCCW())
	}
	if len(ps[0]) != 4 {
		t.Errorf("square should have 4 vertices, got %d: %v", len(ps[0]), ps[0])
	}
}

func TestPolygonsReconstructionLShape(t *testing.T) {
	g := RegionFromPolygons(lShape())
	ps := g.Polygons()
	if len(ps) != 1 {
		t.Fatalf("polygons = %d: %v", len(ps), ps)
	}
	if ps[0].Area() != 300 {
		t.Errorf("L area = %d", ps[0].Area())
	}
	if len(ps[0]) != 6 {
		t.Errorf("L should have 6 vertices, got %d: %v", len(ps[0]), ps[0])
	}
}

func TestPolygonsReconstructionHole(t *testing.T) {
	outer := R(0, 0, 30, 30).Polygon()
	hole := R(10, 10, 20, 20).Polygon().Reverse()
	g := RegionFromPolygons(outer, hole)
	ps := g.Polygons()
	if len(ps) != 2 {
		t.Fatalf("expected outer+hole rings, got %d", len(ps))
	}
	var net int64
	for _, p := range ps {
		net += p.SignedArea2() / 2
	}
	if net != 800 {
		t.Errorf("net signed area = %d, want 800", net)
	}
	// Round trip.
	back := RegionFromPolygons(ps...)
	if back.Area() != 800 {
		t.Errorf("round-trip area = %d", back.Area())
	}
}

func TestPolygonsReconstructionDisjoint(t *testing.T) {
	g := RegionFromRects(R(0, 0, 10, 10), R(20, 0, 30, 10), R(0, 20, 10, 30))
	ps := g.Polygons()
	if len(ps) != 3 {
		t.Fatalf("expected 3 rings, got %d", len(ps))
	}
	back := RegionFromPolygons(ps...)
	if back.Area() != 300 {
		t.Errorf("round-trip area = %d", back.Area())
	}
}

// randRegion builds a region from up to 8 random small rects near the
// origin, for property tests.
func randRegion(r *rand.Rand) Region {
	n := 1 + r.Intn(8)
	rects := make([]Rect, 0, n)
	for i := 0; i < n; i++ {
		x := Coord(r.Intn(60) - 30)
		y := Coord(r.Intn(60) - 30)
		w := Coord(1 + r.Intn(25))
		h := Coord(1 + r.Intn(25))
		rects = append(rects, R(x, y, x+w, y+h))
	}
	return RegionFromRects(rects...)
}

func TestQuickBooleanAreaIdentities(t *testing.T) {
	// |A| + |B| == |A∪B| + |A∩B| and |A⊕B| == |A∪B| - |A∩B|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRegion(rng), randRegion(rng)
		or := a.Union(b).Area()
		and := a.Intersect(b).Area()
		if a.Area()+b.Area() != or+and {
			return false
		}
		if a.Xor(b).Area() != or-and {
			return false
		}
		if a.Subtract(b).Area() != a.Area()-and {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRegionRectsDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randRegion(rng)
		rs := g.Rects()
		for i := range rs {
			for j := i + 1; j < len(rs); j++ {
				if rs[i].Overlaps(rs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPolygonRoundTrip(t *testing.T) {
	// Region -> Polygons -> Region preserves area exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randRegion(rng)
		back := RegionFromPolygons(g.Polygons()...)
		return back.Area() == g.Area() && back.Xor(g).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGrowShrinkMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randRegion(rng)
		d := Coord(1 + rng.Intn(5))
		grown := g.Grow(d)
		shrunk := g.Shrink(d)
		// Monotonicity: shrink ⊆ original ⊆ grow.
		if !shrunk.Subtract(g).Empty() {
			return false
		}
		if !g.Subtract(grown).Empty() {
			return false
		}
		// Opening and closing bracket the original.
		if !g.Opening(d).Subtract(g).Empty() {
			return false
		}
		if !g.Subtract(g.Closing(d)).Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientCompose(t *testing.T) {
	// Exhaustive check: composing transforms equals composing orients.
	pts := []Point{Pt(3, 5), Pt(-2, 7), Pt(0, 1)}
	for o1 := R0; o1 <= MX270; o1++ {
		for o2 := R0; o2 <= MX270; o2++ {
			t1 := Xform{Orient: o1, Mag: 1}
			t2 := Xform{Orient: o2, Mag: 1}
			comp := o2.Compose(o1)
			for _, p := range pts {
				want := t2.Apply(t1.Apply(p))
				got := (Xform{Orient: comp, Mag: 1}).Apply(p)
				if got != want {
					t.Fatalf("compose(%v after %v): got %v want %v at %v", o2, o1, got, want, p)
				}
			}
		}
	}
}

func TestOrientInvert(t *testing.T) {
	for o := R0; o <= MX270; o++ {
		inv := o.Invert()
		if got := o.Compose(inv); got != R0 {
			// Compose(first) applies first then o: o after inv.
			t.Errorf("%v∘%v = %v, want R0", inv, o, got)
		}
		if got := inv.Compose(o); got != R0 {
			t.Errorf("%v∘%v = %v, want R0", o, inv, got)
		}
	}
}

func TestXformApply(t *testing.T) {
	x := Xform{Orient: R90, Mag: 2, Offset: Pt(100, 0)}
	// (1,0) -> rot90 -> (0,1) -> mag2 -> (0,2) -> +offset -> (100,2)
	if got := x.Apply(Pt(1, 0)); got != Pt(100, 2) {
		t.Errorf("Apply = %v", got)
	}
	mx := Xform{Orient: MX, Mag: 1}
	if got := mx.Apply(Pt(3, 4)); got != Pt(3, -4) {
		t.Errorf("MX Apply = %v", got)
	}
}

func TestXformCompose(t *testing.T) {
	inner := Xform{Orient: R90, Mag: 2, Offset: Pt(10, 20)}
	outer := Xform{Orient: MX, Mag: 3, Offset: Pt(-5, 7)}
	comp := outer.Compose(inner)
	for _, p := range []Point{Pt(0, 0), Pt(1, 0), Pt(-3, 11)} {
		want := outer.Apply(inner.Apply(p))
		if got := comp.Apply(p); got != want {
			t.Errorf("Compose.Apply(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestXformPolygonWinding(t *testing.T) {
	sq := R(0, 0, 10, 10).Polygon()
	mx := Xform{Orient: MX, Mag: 1}
	out := mx.ApplyPolygon(sq)
	if !out.IsCCW() {
		t.Error("mirrored polygon should be re-oriented to CCW")
	}
	if out.Area() != 100 {
		t.Errorf("area = %d", out.Area())
	}
}

func TestFragmentPolygonBasic(t *testing.T) {
	// 1000x100 bar: long edges split with 80 corner zones and 200 runs.
	bar := R(0, 0, 1000, 100).Polygon()
	frags := FragmentPolygon(bar, 0, DefaultFragmentSpec())
	if len(frags) == 0 {
		t.Fatal("no fragments")
	}
	// Total fragment length must equal perimeter.
	var total int64
	for _, f := range frags {
		total += int64(f.Edge.Len())
		if f.Edge.Len() <= 0 {
			t.Fatalf("non-positive fragment: %+v", f)
		}
	}
	if total != bar.Perimeter() {
		t.Errorf("fragment length sum = %d, perimeter = %d", total, bar.Perimeter())
	}
	// The 100-long left/right edges are bounded by convex corners and are
	// under LineEndMax, so they are line ends.
	var lineEnds int
	for _, f := range frags {
		if f.Kind == LineEndFragment {
			lineEnds++
		}
	}
	if lineEnds != 2 {
		t.Errorf("line ends = %d, want 2", lineEnds)
	}
}

func TestFragmentCornerZones(t *testing.T) {
	bar := R(0, 0, 1000, 400).Polygon() // all edges > LineEndMax
	spec := FragmentSpec{MaxLen: 200, CornerLen: 80, LineEndMax: 250}
	frags := FragmentPolygon(bar, 0, spec)
	var cornerFrags int
	for _, f := range frags {
		if f.Kind == ConvexCornerFragment {
			cornerFrags++
			if f.Edge.Len() != 80 {
				t.Errorf("corner zone len = %d, want 80", f.Edge.Len())
			}
		}
	}
	if cornerFrags != 8 {
		t.Errorf("corner fragments = %d, want 8 (2 per edge)", cornerFrags)
	}
}

func TestFragmentConcave(t *testing.T) {
	frags := FragmentPolygon(lShape().Translate(Pt(0, 0)), 0, FragmentSpec{MaxLen: 5, CornerLen: 2, LineEndMax: 3})
	var concave int
	for _, f := range frags {
		if f.Kind == ConcaveCornerFragment {
			concave++
		}
	}
	if concave == 0 {
		t.Error("L-shape should yield concave corner fragments")
	}
}

func TestRebuildPolygonIdentity(t *testing.T) {
	bar := R(0, 0, 1000, 100).Polygon()
	frags := FragmentPolygon(bar, 0, DefaultFragmentSpec())
	rebuilt := RebuildPolygon(frags)
	if rebuilt.Area() != bar.Area() {
		t.Errorf("identity rebuild area = %d, want %d", rebuilt.Area(), bar.Area())
	}
}

func TestRebuildPolygonUniformBias(t *testing.T) {
	bar := R(0, 0, 1000, 100).Polygon()
	frags := FragmentPolygon(bar, 0, DefaultFragmentSpec())
	for i := range frags {
		frags[i].Bias = 5 // uniform grow by 5
	}
	rebuilt := RebuildPolygon(frags)
	want := int64(1010) * 110
	if rebuilt.Area() != want {
		t.Errorf("uniform-bias rebuild area = %d, want %d", rebuilt.Area(), want)
	}
}

func TestRebuildPolygonJog(t *testing.T) {
	bar := R(0, 0, 400, 100).Polygon()
	frags := FragmentPolygon(bar, 0, FragmentSpec{MaxLen: 200, CornerLen: 0, LineEndMax: 150})
	// Bias only the fragments on the bottom edge (dir East).
	var biased int64
	for i := range frags {
		if frags[i].Edge.Dir == East && frags[i].FragIndex == 0 {
			frags[i].Bias = 10
			biased += int64(frags[i].Edge.Len())
		}
	}
	if biased == 0 {
		t.Fatal("no fragment biased")
	}
	rebuilt := RebuildPolygon(frags)
	want := bar.Area() + biased*10
	if rebuilt.Area() != want {
		t.Errorf("jogged area = %d, want %d", rebuilt.Area(), want)
	}
}

func TestGridIndexBasics(t *testing.T) {
	idx := NewGridIndex(100)
	idx.Insert(R(0, 0, 50, 50), 1)
	idx.Insert(R(200, 200, 260, 260), 2)
	idx.Insert(R(40, 40, 220, 220), 3) // spans multiple cells
	if idx.Len() != 3 {
		t.Fatalf("Len = %d", idx.Len())
	}
	ids := idx.CollectIDs(R(10, 10, 20, 20))
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("query small window: %v", ids)
	}
	ids = idx.CollectIDs(R(0, 0, 300, 300))
	if len(ids) != 3 {
		t.Errorf("query all: %v", ids)
	}
	// Dedup: item 3 spans many cells but must appear once.
	count := 0
	idx.Query(R(0, 0, 300, 300), func(_ Rect, id int32) bool {
		if id == 3 {
			count++
		}
		return true
	})
	if count != 1 {
		t.Errorf("item 3 reported %d times", count)
	}
}

func TestGridIndexEarlyStop(t *testing.T) {
	idx := NewGridIndex(100)
	for i := int32(0); i < 10; i++ {
		idx.Insert(R(Coord(i)*10, 0, Coord(i)*10+5, 5), i)
	}
	n := 0
	idx.Query(R(0, 0, 100, 100), func(_ Rect, _ int32) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestGridIndexNegativeCoords(t *testing.T) {
	idx := NewGridIndex(64)
	idx.Insert(R(-130, -130, -70, -70), 9)
	ids := idx.CollectIDs(R(-100, -100, -90, -90))
	if len(ids) != 1 || ids[0] != 9 {
		t.Errorf("negative-coordinate query failed: %v", ids)
	}
}
