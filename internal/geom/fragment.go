package geom

// Fragment is one correctable piece of a polygon edge. Model-based OPC
// dissects every polygon edge into fragments, evaluates the edge
// placement error at each fragment's control site, and moves each
// fragment independently along its outward normal.
type Fragment struct {
	Edge Edge
	// PolyIndex and EdgeIndex identify the source edge within the
	// fragmented polygon set; FragIndex numbers fragments along the edge.
	PolyIndex, EdgeIndex, FragIndex int
	// Kind tags the fragment for rule selection: corner fragments sit
	// adjacent to a convex or concave corner, line-end fragments span a
	// full short edge between two convex corners.
	Kind FragmentKind
	// Bias is the current displacement along the outward normal in DBU;
	// OPC iterations update it.
	Bias Coord
}

// FragmentKind classifies a fragment by its position on the polygon.
type FragmentKind uint8

const (
	// RunFragment is an interior piece of a long edge.
	RunFragment FragmentKind = iota
	// ConvexCornerFragment abuts at least one convex corner.
	ConvexCornerFragment
	// ConcaveCornerFragment abuts at least one concave corner.
	ConcaveCornerFragment
	// LineEndFragment is an entire short edge bounded by two convex
	// corners: the tip of a line, the prime site for hammerheads.
	LineEndFragment
)

func (k FragmentKind) String() string {
	switch k {
	case RunFragment:
		return "run"
	case ConvexCornerFragment:
		return "convex-corner"
	case ConcaveCornerFragment:
		return "concave-corner"
	case LineEndFragment:
		return "line-end"
	}
	return "?"
}

// FragmentSpec controls edge dissection.
type FragmentSpec struct {
	// MaxLen is the maximum fragment length; longer edges are split into
	// equal pieces no longer than this.
	MaxLen Coord
	// CornerLen carves a dedicated fragment of this length next to each
	// corner so corners can be corrected independently of the edge run.
	CornerLen Coord
	// LineEndMax is the longest edge still treated as a line end when
	// bounded by two convex corners.
	LineEndMax Coord
}

// DefaultFragmentSpec matches a 2001-era 248 nm recipe: 80 nm corner
// zones, 200 nm maximum run fragments, line ends up to 250 nm wide.
func DefaultFragmentSpec() FragmentSpec {
	return FragmentSpec{MaxLen: 200, CornerLen: 80, LineEndMax: 250}
}

// FragmentPolygon dissects a CCW ring into fragments per the spec.
// Corner zones are carved first; the remaining run is split into pieces
// of at most MaxLen. Edges short enough to be line ends become a single
// LineEndFragment.
func FragmentPolygon(p Polygon, polyIdx int, spec FragmentSpec) []Fragment {
	edges := p.Edges()
	var out []Fragment
	for ei, e := range edges {
		l := e.Len()
		if l <= 0 {
			continue
		}
		if e.CornerA == Convex && e.CornerB == Convex && l <= spec.LineEndMax {
			out = append(out, Fragment{Edge: e, PolyIndex: polyIdx, EdgeIndex: ei, Kind: LineEndFragment})
			continue
		}
		// Walk the edge from A to B carving sub-fragments.
		type piece struct {
			off, length Coord
			kind        FragmentKind
		}
		var pieces []piece
		cornerKind := func(c CornerKind) FragmentKind {
			if c == Concave {
				return ConcaveCornerFragment
			}
			return ConvexCornerFragment
		}
		remainingStart, remainingEnd := Coord(0), l
		if spec.CornerLen > 0 && l > 2*spec.CornerLen {
			pieces = append(pieces, piece{0, spec.CornerLen, cornerKind(e.CornerA)})
			pieces = append(pieces, piece{l - spec.CornerLen, spec.CornerLen, cornerKind(e.CornerB)})
			remainingStart, remainingEnd = spec.CornerLen, l-spec.CornerLen
		}
		run := remainingEnd - remainingStart
		if run > 0 {
			n := 1
			if spec.MaxLen > 0 {
				n = int((run + spec.MaxLen - 1) / spec.MaxLen)
			}
			step := run / Coord(n)
			off := remainingStart
			for i := 0; i < n; i++ {
				length := step
				if i == n-1 {
					length = remainingEnd - off
				}
				kind := RunFragment
				if len(pieces) == 0 { // no separate corner zones carved
					if i == 0 && e.CornerA != Straight {
						kind = cornerKind(e.CornerA)
					}
					if i == n-1 && e.CornerB != Straight {
						kind = cornerKind(e.CornerB)
					}
				}
				pieces = append(pieces, piece{off, length, kind})
				off += length
			}
		}
		// Order pieces along the edge (insertion sort: lists are tiny) and
		// materialize fragments.
		for i := 1; i < len(pieces); i++ {
			for j := i; j > 0 && pieces[j].off < pieces[j-1].off; j-- {
				pieces[j], pieces[j-1] = pieces[j-1], pieces[j]
			}
		}
		d := e.Dir.Delta()
		for fi, pc := range pieces {
			a := Point{e.A.X + d.X*pc.off, e.A.Y + d.Y*pc.off}
			b := Point{a.X + d.X*pc.length, a.Y + d.Y*pc.length}
			sub := Edge{A: a, B: b, Dir: e.Dir, CornerA: Straight, CornerB: Straight}
			if pc.off == 0 {
				sub.CornerA = e.CornerA
			}
			if pc.off+pc.length == l {
				sub.CornerB = e.CornerB
			}
			out = append(out, Fragment{Edge: sub, PolyIndex: polyIdx, EdgeIndex: ei, FragIndex: fi, Kind: pc.kind})
		}
	}
	return out
}

// RebuildPolygon reassembles a ring from its fragments after biases have
// been applied. Each fragment edge is shifted along its outward normal by
// its bias; consecutive shifted edges are reconnected: perpendicular
// neighbors meet at the intersection of their carrier lines, while
// collinear neighbors with different biases get a connector jog. The
// result can self-intersect for extreme biases; callers clean up with
// RegionFromPolygons when needed.
//
// Fragments must be in ring order (as produced by FragmentPolygon for a
// single polygon).
func RebuildPolygon(frags []Fragment) Polygon {
	n := len(frags)
	if n == 0 {
		return nil
	}
	// Shifted carrier line for each fragment: for horizontal edges the
	// line is y = const; for vertical, x = const.
	linePos := make([]Coord, n)
	for i, f := range frags {
		nrm := f.Edge.Normal()
		if f.Edge.Dir.Horizontal() {
			linePos[i] = f.Edge.A.Y + nrm.Y*f.Bias
		} else {
			linePos[i] = f.Edge.A.X + nrm.X*f.Bias
		}
	}
	var ring Polygon
	for i := 0; i < n; i++ {
		cur, next := frags[i], frags[(i+1)%n]
		cp, np := linePos[i], linePos[(i+1)%n]
		if cur.Edge.Dir.Horizontal() == next.Edge.Dir.Horizontal() {
			// Collinear neighbors: connector jog at the shared endpoint.
			shared := cur.Edge.B
			if cur.Edge.Dir.Horizontal() {
				ring = append(ring, Pt(shared.X, cp), Pt(shared.X, np))
			} else {
				ring = append(ring, Pt(cp, shared.Y), Pt(np, shared.Y))
			}
		} else {
			// Perpendicular: single corner at the carrier intersection.
			if cur.Edge.Dir.Horizontal() {
				ring = append(ring, Pt(np, cp))
			} else {
				ring = append(ring, Pt(cp, np))
			}
		}
	}
	return ring.Normalize()
}
