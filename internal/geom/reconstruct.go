package geom

import "sort"

// Polygons reconstructs the boundary of the region as rectilinear rings.
// Outer boundaries come back counter-clockwise, hole boundaries
// clockwise, so feeding the result to RegionFromPolygons (nonzero
// winding) reproduces the region exactly. Collinear vertices are merged.
//
// The algorithm cancels interior edges between touching rectangles on
// each grid line, then chains the surviving directed boundary edges into
// loops, taking the left-most turn at four-valent vertices so loops never
// self-intersect.
// bedge is a directed boundary edge used during reconstruction.
type bedge struct {
	a, b Point
	dir  Dir
}

func (g Region) Polygons() []Polygon {
	if g.Empty() {
		return nil
	}
	type seg struct {
		pos    Coord // the line: x for vertical, y for horizontal
		lo, hi Coord // span along the line, lo < hi
		w      int32 // net direction weight
	}
	// Collect signed 1-D coverage per line. Vertical lines: +1 means the
	// boundary travels north (up); horizontal: +1 means east.
	vert := map[Coord][]seg{}
	horz := map[Coord][]seg{}
	for _, r := range g.rects {
		// CCW rect boundary: bottom east, right north, top west, left south.
		horz[r.Y0] = append(horz[r.Y0], seg{r.Y0, r.X0, r.X1, +1})
		vert[r.X1] = append(vert[r.X1], seg{r.X1, r.Y0, r.Y1, +1})
		horz[r.Y1] = append(horz[r.Y1], seg{r.Y1, r.X0, r.X1, -1})
		vert[r.X0] = append(vert[r.X0], seg{r.X0, r.Y0, r.Y1, -1})
	}

	var boundary []bedge

	// flatten resolves the signed coverage on one line into directed
	// segments where the net weight is nonzero.
	flatten := func(segs []seg, vertical bool) {
		if len(segs) == 0 {
			return
		}
		type ev struct {
			at Coord
			dw int32
		}
		evs := make([]ev, 0, 2*len(segs))
		for _, s := range segs {
			evs = append(evs, ev{s.lo, s.w}, ev{s.hi, -s.w})
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		pos := segs[0].pos
		var w int32
		var runStart Coord
		var runW int32
		emit := func(from, to Coord, weight int32) {
			if weight == 0 || from == to {
				return
			}
			if vertical {
				if weight > 0 {
					boundary = append(boundary, bedge{Pt(pos, from), Pt(pos, to), North})
				} else {
					boundary = append(boundary, bedge{Pt(pos, to), Pt(pos, from), South})
				}
			} else {
				if weight > 0 {
					boundary = append(boundary, bedge{Pt(from, pos), Pt(to, pos), East})
				} else {
					boundary = append(boundary, bedge{Pt(to, pos), Pt(from, pos), West})
				}
			}
		}
		i := 0
		for i < len(evs) {
			at := evs[i].at
			emit(runStart, at, runW)
			for i < len(evs) && evs[i].at == at {
				w += evs[i].dw
				i++
			}
			runStart, runW = at, w
		}
	}

	// Flatten lines in sorted key order: map iteration order would
	// randomize the boundary edge list, and with it the starting vertex
	// of every emitted ring and the order of rings in the result.
	// Downstream consumers (canonical dedup keys, parallel-vs-serial
	// output equality) need Polygons() to be a pure function of the
	// region, so the walk must be deterministic.
	lineKeys := func(m map[Coord][]seg) []Coord {
		ks := make([]Coord, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		return ks
	}
	for _, x := range lineKeys(vert) {
		flatten(vert[x], true)
	}
	for _, y := range lineKeys(horz) {
		flatten(horz[y], false)
	}

	// Chain boundary edges into loops. Edges are split so endpoints only
	// meet at vertices: split every edge at interior points where another
	// edge starts or ends on the same line. Because flatten already merges
	// per line, the only remaining splits needed are at cross-direction
	// junctions. Endpoints are bucketed per row and per column so each
	// edge only consults its own line.
	ptsByY := map[Coord][]Coord{} // y -> xs of endpoints on that row
	ptsByX := map[Coord][]Coord{} // x -> ys of endpoints on that column
	addPt := func(p Point) {
		ptsByY[p.Y] = append(ptsByY[p.Y], p.X)
		ptsByX[p.X] = append(ptsByX[p.X], p.Y)
	}
	for _, e := range boundary {
		addPt(e.a)
		addPt(e.b)
	}
	for _, s := range ptsByY {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	for _, s := range ptsByX {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	// cutsIn returns the strictly interior sorted values of line in
	// (lo, hi), deduplicated.
	cutsIn := func(line []Coord, lo, hi Coord) []Coord {
		i := sort.Search(len(line), func(k int) bool { return line[k] > lo })
		var out []Coord
		for ; i < len(line) && line[i] < hi; i++ {
			if len(out) == 0 || out[len(out)-1] != line[i] {
				out = append(out, line[i])
			}
		}
		return out
	}
	var edges []bedge
	for _, e := range boundary {
		if e.dir.Horizontal() {
			y := e.a.Y
			lo, hi := e.a.X, e.b.X
			if e.dir == West {
				lo, hi = e.b.X, e.a.X
			}
			edges = appendSplit(edges, e, lo, hi, cutsIn(ptsByY[y], lo, hi), false)
		} else {
			x := e.a.X
			lo, hi := e.a.Y, e.b.Y
			if e.dir == South {
				lo, hi = e.b.Y, e.a.Y
			}
			edges = appendSplit(edges, e, lo, hi, cutsIn(ptsByX[x], lo, hi), true)
		}
	}

	// Outgoing adjacency.
	out := map[Point][]int{}
	used := make([]bool, len(edges))
	for i, e := range edges {
		out[e.a] = append(out[e.a], i)
	}

	var rings []Polygon
	for start := range edges {
		if used[start] {
			continue
		}
		var ring Polygon
		cur := start
		for {
			used[cur] = true
			e := edges[cur]
			ring = append(ring, e.a)
			// Pick the next edge leaving e.b: prefer the left-most turn
			// (left, straight, right) and never reverse.
			var next = -1
			bestRank := 4
			for _, cand := range out[e.b] {
				if used[cand] {
					continue
				}
				d := edges[cand].dir
				var rank int
				switch d {
				case e.dir.Left():
					rank = 0
				case e.dir:
					rank = 1
				case e.dir.Right():
					rank = 2
				default:
					rank = 3 // reversal: only if nothing else remains
				}
				if rank < bestRank {
					bestRank, next = rank, cand
				}
			}
			if next == -1 || next == start {
				break
			}
			cur = next
		}
		if len(ring) >= 4 {
			rings = append(rings, ring.Normalize())
		}
	}
	return rings
}

func appendSplit(dst []bedge, e bedge, lo, hi Coord, cuts []Coord, vertical bool) []bedge {
	pts := make([]Coord, 0, len(cuts)+2)
	pts = append(pts, lo)
	pts = append(pts, cuts...)
	pts = append(pts, hi)
	mk := func(a, b Coord) bedge {
		var s bedge
		s.dir = e.dir
		if vertical {
			x := e.a.X
			if e.dir == North {
				s.a, s.b = Pt(x, a), Pt(x, b)
			} else {
				s.a, s.b = Pt(x, b), Pt(x, a)
			}
		} else {
			y := e.a.Y
			if e.dir == East {
				s.a, s.b = Pt(a, y), Pt(b, y)
			} else {
				s.a, s.b = Pt(b, y), Pt(a, y)
			}
		}
		return s
	}
	for i := 0; i+1 < len(pts); i++ {
		if pts[i] != pts[i+1] {
			dst = append(dst, mk(pts[i], pts[i+1]))
		}
	}
	return dst
}
