package geom

import (
	"errors"
	"fmt"
)

// Polygon is a closed rectilinear ring stored as its vertex list. The
// closing edge from the last vertex back to the first is implicit.
// Positive signed area means counter-clockwise winding (a filled ring);
// negative means clockwise (a hole ring when emitted by region
// reconstruction).
type Polygon []Point

// ErrNotManhattan is returned by validation when a polygon has an edge
// that is neither horizontal nor vertical.
var ErrNotManhattan = errors.New("geom: polygon edge is not axis-aligned")

// ErrDegenerate is returned by validation for polygons with fewer than
// four vertices or with zero-length edges.
var ErrDegenerate = errors.New("geom: degenerate polygon")

// Validate checks that p is a usable rectilinear ring: at least 4
// vertices, all edges axis-aligned and of nonzero length.
func (p Polygon) Validate() error {
	if len(p) < 4 {
		return fmt.Errorf("%w: %d vertices", ErrDegenerate, len(p))
	}
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		dx, dy := b.X-a.X, b.Y-a.Y
		if dx != 0 && dy != 0 {
			return fmt.Errorf("%w: edge %v->%v", ErrNotManhattan, a, b)
		}
		if dx == 0 && dy == 0 {
			return fmt.Errorf("%w: zero-length edge at vertex %d (%v)", ErrDegenerate, i, a)
		}
	}
	return nil
}

// SignedArea2 returns twice the signed area of the ring (positive for
// counter-clockwise winding). Using the doubled value keeps the result
// exact in int64.
func (p Polygon) SignedArea2() int64 {
	var s int64
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		s += int64(a.X)*int64(b.Y) - int64(b.X)*int64(a.Y)
	}
	return s
}

// Area returns the absolute area of the ring in DBU^2.
func (p Polygon) Area() int64 {
	s := p.SignedArea2()
	if s < 0 {
		s = -s
	}
	return s / 2
}

// IsCCW reports whether the ring winds counter-clockwise.
func (p Polygon) IsCCW() bool { return p.SignedArea2() > 0 }

// Perimeter returns the total edge length of the ring in DBU.
func (p Polygon) Perimeter() int64 {
	var s int64
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		s += absI64(int64(b.X)-int64(a.X)) + absI64(int64(b.Y)-int64(a.Y))
	}
	return s
}

// BBox returns the bounding box of the ring.
func (p Polygon) BBox() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	r := Rect{p[0].X, p[0].Y, p[0].X, p[0].Y}
	for _, v := range p[1:] {
		r.X0 = minC(r.X0, v.X)
		r.Y0 = minC(r.Y0, v.Y)
		r.X1 = maxC(r.X1, v.X)
		r.Y1 = maxC(r.Y1, v.Y)
	}
	return r
}

// Translate returns a copy of the ring shifted by d.
func (p Polygon) Translate(d Point) Polygon {
	q := make(Polygon, len(p))
	for i, v := range p {
		q[i] = v.Add(d)
	}
	return q
}

// Reverse returns a copy of the ring with opposite winding.
func (p Polygon) Reverse() Polygon {
	q := make(Polygon, len(p))
	for i, v := range p {
		q[len(p)-1-i] = v
	}
	return q
}

// Clone returns a deep copy of the ring.
func (p Polygon) Clone() Polygon {
	q := make(Polygon, len(p))
	copy(q, p)
	return q
}

// Normalize returns the ring with collinear runs merged and duplicate
// vertices removed, winding preserved. The result shares no storage with
// the input.
func (p Polygon) Normalize() Polygon {
	if len(p) < 3 {
		return p.Clone()
	}
	// Pass 1: drop consecutive duplicate vertices (including wraparound).
	dedup := make(Polygon, 0, len(p))
	for i, v := range p {
		if i > 0 && v == dedup[len(dedup)-1] {
			continue
		}
		dedup = append(dedup, v)
	}
	for len(dedup) > 1 && dedup[0] == dedup[len(dedup)-1] {
		dedup = dedup[:len(dedup)-1]
	}
	// Pass 2: drop vertices whose incident edges are collinear (both
	// horizontal or both vertical through the vertex).
	n := len(dedup)
	out := make(Polygon, 0, n)
	for i := 0; i < n; i++ {
		prev := dedup[(i-1+n)%n]
		cur := dedup[i]
		next := dedup[(i+1)%n]
		if (prev.X == cur.X && cur.X == next.X) || (prev.Y == cur.Y && cur.Y == next.Y) {
			continue
		}
		out = append(out, cur)
	}
	return out
}

// ContainsPoint reports whether q is strictly inside the ring, using a
// half-open ray-crossing test that treats points on the boundary as
// outside-or-inside per the usual even-odd half-open convention
// (low edges in, high edges out for rectangles).
func (p Polygon) ContainsPoint(q Point) bool {
	inside := false
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		if a.X != b.X { // only vertical edges cross a horizontal ray cleanly in Manhattan geometry
			continue
		}
		lo, hi := a.Y, b.Y
		if lo > hi {
			lo, hi = hi, lo
		}
		if q.Y >= lo && q.Y < hi && q.X < a.X {
			inside = !inside
		}
	}
	return inside
}

// VertexCount returns the number of vertices (a convenience for mask
// data-volume accounting).
func (p Polygon) VertexCount() int { return len(p) }
