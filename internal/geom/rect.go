package geom

import "fmt"

// Rect is an axis-aligned rectangle. A Rect is canonical when X0 <= X1 and
// Y0 <= Y1; a canonical rect with X0 == X1 or Y0 == Y1 is degenerate
// (zero area) and treated as empty by region operations.
type Rect struct {
	X0, Y0, X1, Y1 Coord
}

// R builds a canonical rectangle from two corner coordinates given in any
// order.
func R(x0, y0, x1, y1 Coord) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectFromCenter returns the w-by-h rectangle centered at c. Odd widths
// and heights are rounded down on the high side.
func RectFromCenter(c Point, w, h Coord) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X - w/2 + w, c.Y - h/2 + h}
}

// Empty reports whether the rectangle has zero (or negative) area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// W returns the width of r.
func (r Rect) W() Coord { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() Coord { return r.Y1 - r.Y0 }

// Area returns the rectangle area in DBU^2.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.W()) * int64(r.H())
}

// Center returns the midpoint of r (rounded toward -inf).
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside r, using half-open semantics:
// the low edges are inside, the high edges are outside.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsClosed reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Touches reports whether r and s share area or boundary.
func (r Rect) Touches(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Intersect returns the overlap of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{maxC(r.X0, s.X0), maxC(r.Y0, s.Y0), minC(r.X1, s.X1), minC(r.Y1, s.Y1)}
}

// Union returns the bounding box of r and s. Empty operands are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{minC(r.X0, s.X0), minC(r.Y0, s.Y0), maxC(r.X1, s.X1), maxC(r.Y1, s.Y1)}
}

// Grow expands every side of r outward by d (inward if d is negative).
// The result may be empty after negative growth.
func (r Rect) Grow(d Coord) Rect {
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// GrowXY expands r by dx horizontally and dy vertically on each side.
func (r Rect) GrowXY(dx, dy Coord) Rect {
	return Rect{r.X0 - dx, r.Y0 - dy, r.X1 + dx, r.Y1 + dy}
}

// Translate returns r shifted by p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.X0 + p.X, r.Y0 + p.Y, r.X1 + p.X, r.Y1 + p.Y}
}

// Polygon returns the counter-clockwise 4-point ring of r.
func (r Rect) Polygon() Polygon {
	return Polygon{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d;%d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}
