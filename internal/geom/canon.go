package geom

import "encoding/binary"

// Translation-canonical polygon encoding. The tiled correction
// scheduler deduplicates tiles whose geometry is identical up to a
// translation: each tile's polygons are encoded relative to the tile
// origin, and tiles with equal encodings are corrected once. The
// encoding is exact — every vertex coordinate is serialized — so equal
// keys mean equal geometry, never a hash collision.

// AppendCanonicalPolygons appends a binary encoding of polys with every
// vertex expressed relative to origin. Two polygon lists produce the
// same bytes iff they are identical after translating their respective
// origins to (0,0): same polygon order, same vertex order, same shapes.
func AppendCanonicalPolygons(buf []byte, polys []Polygon, origin Point) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(polys)))
	for _, p := range polys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		for _, v := range p {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.X-origin.X))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Y-origin.Y))
		}
	}
	return buf
}

// TranslatePolygons returns a fresh copy of polys displaced by d.
func TranslatePolygons(polys []Polygon, d Point) []Polygon {
	out := make([]Polygon, len(polys))
	for i, p := range polys {
		q := make(Polygon, len(p))
		for j, v := range p {
			q[j] = v.Add(d)
		}
		out[i] = q
	}
	return out
}

// TranslateRects returns a fresh copy of rs displaced by d.
func TranslateRects(rs []Rect, d Point) []Rect {
	out := make([]Rect, len(rs))
	for i, r := range rs {
		out[i] = r.Translate(d)
	}
	return out
}
