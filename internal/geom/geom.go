// Package geom implements the integer Manhattan geometry engine that
// underlies the layout database, the OPC engines, and mask data
// preparation.
//
// All coordinates are int32 database units (DBU); throughout this module
// 1 DBU = 1 nm. The package provides points, rectangles, rectilinear
// polygons, directed edges with corner classification, scanline boolean
// operations (union, intersection, difference, symmetric difference),
// region sizing (grow/shrink with a square structuring element), polygon
// reconstruction from rectangle decompositions, edge fragmentation for
// model-based OPC, and a uniform-grid spatial index.
//
// Rectilinear ("Manhattan") geometry is assumed everywhere: every polygon
// edge is horizontal or vertical. This matches the 2001-era mask data the
// reproduced paper concerns; 45-degree geometry is rejected with errors
// rather than silently mangled.
package geom

import (
	"fmt"
	"math"
)

// Coord is a layout coordinate in database units (1 DBU = 1 nm).
type Coord = int32

// Point is a location on the layout grid.
type Point struct {
	X, Y Coord
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y Coord) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Neg returns the point reflected through the origin.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Scale returns p with both coordinates multiplied by k.
func (p Point) Scale(k Coord) Point { return Point{p.X * k, p.Y * k} }

// ManhattanDist returns |dx| + |dy| between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absI64(int64(p.X)-int64(q.X)) + absI64(int64(p.Y)-int64(q.Y))
}

// Dist returns the Euclidean distance between p and q in DBU.
func (p Point) Dist(q Point) float64 {
	dx := float64(p.X) - float64(q.X)
	dy := float64(p.Y) - float64(q.Y)
	return math.Hypot(dx, dy)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Cross returns the z-component of (q-p) x (r-p). Positive means the turn
// p->q->r is counter-clockwise.
func Cross(p, q, r Point) int64 {
	return int64(q.X-p.X)*int64(r.Y-p.Y) - int64(q.Y-p.Y)*int64(r.X-p.X)
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minC(a, b Coord) Coord {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b Coord) Coord {
	if a > b {
		return a
	}
	return b
}
