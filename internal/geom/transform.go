package geom

import "fmt"

// Orient is one of the eight axis-preserving layout orientations
// (rotations by multiples of 90 degrees, optionally mirrored about the
// x-axis first), matching the GDSII STRANS/ANGLE conventions used by the
// layout database.
type Orient uint8

const (
	// R0 is the identity.
	R0 Orient = iota
	// R90, R180, R270 rotate counter-clockwise.
	R90
	R180
	R270
	// MX mirrors about the x-axis (y -> -y), then rotates.
	MX
	MX90
	MX180
	MX270
)

func (o Orient) String() string {
	switch o {
	case R0:
		return "R0"
	case R90:
		return "R90"
	case R180:
		return "R180"
	case R270:
		return "R270"
	case MX:
		return "MX"
	case MX90:
		return "MX90"
	case MX180:
		return "MX180"
	case MX270:
		return "MX270"
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// Mirrored reports whether the orientation includes the x-axis mirror.
func (o Orient) Mirrored() bool { return o >= MX }

// AngleDeg returns the rotation angle in degrees (0, 90, 180, 270).
func (o Orient) AngleDeg() int { return int(o%4) * 90 }

// Compose returns the orientation equivalent to applying first then o.
func (o Orient) Compose(first Orient) Orient {
	// Work in the dihedral group D4: element = (mirror, rotation).
	m1, r1 := first.Mirrored(), int(first%4)
	m2, r2 := o.Mirrored(), int(o%4)
	// Applying (m1,r1) then (m2,r2): if m2, the second mirror conjugates
	// the first rotation: total rotation r2 - r1 (mod 4) with mirror
	// m1 XOR m2; otherwise r1 + r2.
	var m bool
	var r int
	if m2 {
		m = !m1
		r = (r2 - r1 + 4) % 4
	} else {
		m = m1
		r = (r1 + r2) % 4
	}
	out := Orient(r)
	if m {
		out += MX
	}
	return out
}

// Invert returns the orientation that undoes o.
func (o Orient) Invert() Orient {
	if o.Mirrored() {
		return o // mirror-rotations are involutions in D4
	}
	return Orient((4 - int(o)) % 4)
}

// Xform is a placement transform: mirror/rotate about the origin, scale
// by an integer magnification, then translate. Layout instance placement
// (SREF/AREF) uses these. Mag is in units of 1 (Mag=0 is treated as 1);
// fractional magnification is not supported in DBU geometry.
type Xform struct {
	Orient Orient
	Mag    Coord
	Offset Point
}

// Identity returns the no-op transform.
func Identity() Xform { return Xform{Orient: R0, Mag: 1} }

func (t Xform) mag() Coord {
	if t.Mag == 0 {
		return 1
	}
	return t.Mag
}

// Apply maps a point through the transform.
func (t Xform) Apply(p Point) Point {
	if t.Orient.Mirrored() {
		p.Y = -p.Y
	}
	switch t.Orient % 4 {
	case 1: // 90 CCW
		p = Point{-p.Y, p.X}
	case 2:
		p = Point{-p.X, -p.Y}
	case 3:
		p = Point{p.Y, -p.X}
	}
	m := t.mag()
	return Point{p.X*m + t.Offset.X, p.Y*m + t.Offset.Y}
}

// ApplyRect maps a rectangle through the transform; the result is
// re-canonicalized.
func (t Xform) ApplyRect(r Rect) Rect {
	a := t.Apply(Point{r.X0, r.Y0})
	b := t.Apply(Point{r.X1, r.Y1})
	return R(a.X, a.Y, b.X, b.Y)
}

// ApplyPolygon maps a ring through the transform. Mirroring reverses the
// winding; the result is re-oriented to preserve the input's winding
// sense so CCW-filled rings stay CCW.
func (t Xform) ApplyPolygon(p Polygon) Polygon {
	q := make(Polygon, len(p))
	for i, v := range p {
		q[i] = t.Apply(v)
	}
	if t.Orient.Mirrored() {
		q = q.Reverse()
	}
	return q
}

// Invert returns the inverse transform. Only magnification 1 is
// invertible in integer geometry; Invert panics otherwise (callers in
// this repository never magnify).
func (t Xform) Invert() Xform {
	if t.mag() != 1 {
		panic("geom: Xform.Invert with magnification != 1")
	}
	inv := Xform{Orient: t.Orient.Invert(), Mag: 1}
	// inv.Apply(t.Apply(p)) == p requires inv.Offset = -M_inv(t.Offset).
	inv.Offset = Xform{Orient: inv.Orient, Mag: 1}.Apply(t.Offset).Neg()
	return inv
}

// Compose returns the transform equivalent to applying inner first,
// then t (i.e. t.Compose(inner).Apply(p) == t.Apply(inner.Apply(p))).
func (t Xform) Compose(inner Xform) Xform {
	return Xform{
		Orient: t.Orient.Compose(inner.Orient),
		Mag:    t.mag() * inner.mag(),
		Offset: t.Apply(inner.Offset),
	}
}
