package geom

// GridIndex is a uniform-grid spatial index over rectangles. Layout
// region queries, DRC neighbor searches, and OPC context gathering use
// it. Items are referenced by the integer ID supplied at insert time.
type GridIndex struct {
	cell  Coord
	cells map[[2]int32][]int32
	items []indexItem
}

type indexItem struct {
	box Rect
	id  int32
}

// NewGridIndex creates an index with the given cell size. Cell size
// should be on the order of the typical query window; 10 µm (10000 DBU)
// is a reasonable default for full-block layouts.
func NewGridIndex(cellSize Coord) *GridIndex {
	if cellSize <= 0 {
		cellSize = 10000
	}
	return &GridIndex{cell: cellSize, cells: map[[2]int32][]int32{}}
}

func (g *GridIndex) cellRange(r Rect) (cx0, cy0, cx1, cy1 int32) {
	cx0 = int32(floorDiv(r.X0, g.cell))
	cy0 = int32(floorDiv(r.Y0, g.cell))
	cx1 = int32(floorDiv(r.X1-1, g.cell))
	cy1 = int32(floorDiv(r.Y1-1, g.cell))
	return
}

func floorDiv(a, b Coord) Coord {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Insert adds a rectangle with an application-defined ID.
func (g *GridIndex) Insert(box Rect, id int32) {
	if box.Empty() {
		return
	}
	idx := int32(len(g.items))
	g.items = append(g.items, indexItem{box, id})
	cx0, cy0, cx1, cy1 := g.cellRange(box)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			key := [2]int32{cx, cy}
			g.cells[key] = append(g.cells[key], idx)
		}
	}
}

// Len returns the number of inserted items.
func (g *GridIndex) Len() int { return len(g.items) }

// Query calls fn for every inserted rectangle that touches the window
// (sharing a boundary counts). Items spanning multiple cells are
// deduplicated. Returning false from fn stops the query.
func (g *GridIndex) Query(window Rect, fn func(box Rect, id int32) bool) {
	if window.Empty() || len(g.items) == 0 {
		return
	}
	cx0, cy0, cx1, cy1 := g.cellRange(window.Grow(1))
	seen := map[int32]bool{}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, idx := range g.cells[[2]int32{cx, cy}] {
				if seen[idx] {
					continue
				}
				seen[idx] = true
				it := g.items[idx]
				if it.box.Touches(window) {
					if !fn(it.box, it.id) {
						return
					}
				}
			}
		}
	}
}

// CollectIDs returns the IDs of all items touching the window, in
// insertion order of first contact.
func (g *GridIndex) CollectIDs(window Rect) []int32 {
	var out []int32
	g.Query(window, func(_ Rect, id int32) bool {
		out = append(out, id)
		return true
	})
	return out
}
