package geom

import "fmt"

// Dir is an axis-aligned edge direction, the direction of travel when
// walking the ring.
type Dir uint8

// Edge directions. For a counter-clockwise ring the filled interior lies
// to the left of the direction of travel.
const (
	East Dir = iota
	North
	West
	South
)

func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case North:
		return "N"
	case West:
		return "W"
	case South:
		return "S"
	}
	return "?"
}

// Horizontal reports whether the direction is east or west.
func (d Dir) Horizontal() bool { return d == East || d == West }

// Opposite returns the reversed direction.
func (d Dir) Opposite() Dir { return (d + 2) % 4 }

// Left returns the direction after a 90-degree left (CCW) turn.
func (d Dir) Left() Dir { return (d + 1) % 4 }

// Right returns the direction after a 90-degree right (CW) turn.
func (d Dir) Right() Dir { return (d + 3) % 4 }

// Normal returns the outward unit normal of an edge traveling in
// direction d on a counter-clockwise ring (interior on the left, so the
// outward normal is to the right).
func (d Dir) Normal() Point {
	switch d {
	case East:
		return Point{0, -1}
	case North:
		return Point{1, 0}
	case West:
		return Point{0, 1}
	default: // South
		return Point{-1, 0}
	}
}

// Delta returns the unit step of the direction.
func (d Dir) Delta() Point {
	switch d {
	case East:
		return Point{1, 0}
	case North:
		return Point{0, 1}
	case West:
		return Point{-1, 0}
	default:
		return Point{0, -1}
	}
}

// DirOf classifies the direction of the axis-aligned segment a->b.
// It panics on non-axis-aligned or zero-length input; callers validate
// polygons before walking edges.
func DirOf(a, b Point) Dir {
	switch {
	case b.X > a.X && b.Y == a.Y:
		return East
	case b.X < a.X && b.Y == a.Y:
		return West
	case b.Y > a.Y && b.X == a.X:
		return North
	case b.Y < a.Y && b.X == a.X:
		return South
	}
	panic(fmt.Sprintf("geom: DirOf on non-Manhattan segment %v->%v", a, b))
}

// CornerKind classifies a polygon vertex by the turn taken there.
type CornerKind uint8

const (
	// Convex corners turn left on a CCW ring (90-degree exterior corner).
	Convex CornerKind = iota
	// Concave corners turn right on a CCW ring (270-degree interior corner).
	Concave
	// Straight marks collinear vertices, which Normalize removes.
	Straight
)

func (k CornerKind) String() string {
	switch k {
	case Convex:
		return "convex"
	case Concave:
		return "concave"
	default:
		return "straight"
	}
}

// Edge is one directed axis-aligned polygon edge, annotated with the
// corner classification at both of its endpoints. OPC fragmentation and
// correction operate on these.
type Edge struct {
	A, B Point
	Dir  Dir
	// CornerA and CornerB classify the vertex at A (between the previous
	// edge and this one) and at B (between this edge and the next one).
	CornerA, CornerB CornerKind
}

// Len returns the edge length in DBU.
func (e Edge) Len() Coord {
	if e.Dir.Horizontal() {
		if e.B.X > e.A.X {
			return e.B.X - e.A.X
		}
		return e.A.X - e.B.X
	}
	if e.B.Y > e.A.Y {
		return e.B.Y - e.A.Y
	}
	return e.A.Y - e.B.Y
}

// Mid returns the midpoint of the edge.
func (e Edge) Mid() Point {
	return Point{(e.A.X + e.B.X) / 2, (e.A.Y + e.B.Y) / 2}
}

// Normal returns the outward normal, assuming the parent ring is CCW.
func (e Edge) Normal() Point { return e.Dir.Normal() }

// Edges decomposes a validated CCW ring into its directed edges with
// corner classification. For a clockwise ring the corner kinds come out
// inverted; callers that care must orient rings first.
func (p Polygon) Edges() []Edge {
	n := len(p)
	if n < 4 {
		return nil
	}
	dirs := make([]Dir, n)
	for i := 0; i < n; i++ {
		dirs[i] = DirOf(p[i], p[(i+1)%n])
	}
	turn := func(from, to Dir) CornerKind {
		switch {
		case to == from.Left():
			return Convex
		case to == from.Right():
			return Concave
		default:
			return Straight
		}
	}
	out := make([]Edge, n)
	for i := 0; i < n; i++ {
		prev := dirs[(i-1+n)%n]
		next := dirs[(i+1)%n]
		out[i] = Edge{
			A:       p[i],
			B:       p[(i+1)%n],
			Dir:     dirs[i],
			CornerA: turn(prev, dirs[i]),
			CornerB: turn(dirs[i], next),
		}
	}
	return out
}

// CountCorners returns the number of convex and concave corners of a CCW
// ring.
func (p Polygon) CountCorners() (convex, concave int) {
	for _, e := range p.Edges() {
		switch e.CornerB {
		case Convex:
			convex++
		case Concave:
			concave++
		}
	}
	return
}
