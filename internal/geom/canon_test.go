package geom

import (
	"bytes"
	"testing"
)

func TestCanonicalPolygonsTranslationInvariant(t *testing.T) {
	a := []Polygon{
		R(100, 200, 300, 400).Polygon(),
		{Pt(500, 500), Pt(700, 500), Pt(700, 600), Pt(600, 600), Pt(600, 700), Pt(500, 700)},
	}
	d := Pt(-12345, 6789)
	b := TranslatePolygons(a, d)

	ka := AppendCanonicalPolygons(nil, a, Pt(100, 200))
	kb := AppendCanonicalPolygons(nil, b, Pt(100, 200).Add(d))
	if !bytes.Equal(ka, kb) {
		t.Error("translated polygons produced a different canonical key")
	}

	// Different geometry, different key.
	c := []Polygon{R(100, 200, 300, 401).Polygon()}
	kc := AppendCanonicalPolygons(nil, c, Pt(100, 200))
	if bytes.Equal(ka, kc) {
		t.Error("distinct geometry produced an equal canonical key")
	}

	// Same shapes in a different order are a different key (polygon
	// order feeds fragmentation, so order must be part of identity).
	rev := []Polygon{a[1], a[0]}
	kr := AppendCanonicalPolygons(nil, rev, Pt(100, 200))
	if bytes.Equal(ka, kr) {
		t.Error("reordered polygons produced an equal canonical key")
	}

	// The encoding separates list boundaries: [2 polys]+[0 polys] must
	// differ from [1 poly]+[1 poly] even when concatenated vertices match.
	k2 := AppendCanonicalPolygons(AppendCanonicalPolygons(nil, a, Pt(0, 0)), nil, Pt(0, 0))
	k11 := AppendCanonicalPolygons(AppendCanonicalPolygons(nil, a[:1], Pt(0, 0)), a[1:], Pt(0, 0))
	if bytes.Equal(k2, k11) {
		t.Error("list-boundary ambiguity in canonical encoding")
	}
}

func TestTranslatePolygonsAndRects(t *testing.T) {
	p := []Polygon{R(0, 0, 10, 10).Polygon()}
	q := TranslatePolygons(p, Pt(5, -3))
	if q[0][0] != Pt(5, -3) {
		t.Errorf("translated vertex = %v", q[0][0])
	}
	// Fresh copy: mutating the result must not touch the input.
	q[0][0] = Pt(99, 99)
	if p[0][0] != Pt(0, 0) {
		t.Error("TranslatePolygons aliased its input")
	}
	rs := TranslateRects([]Rect{R(0, 0, 2, 2)}, Pt(1, 1))
	if rs[0] != R(1, 1, 3, 3) {
		t.Errorf("translated rect = %v", rs[0])
	}
}
