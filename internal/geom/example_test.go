package geom_test

import (
	"fmt"

	"goopc/internal/geom"
)

func ExampleRegion_booleans() {
	a := geom.RegionFromRects(geom.R(0, 0, 100, 100))
	b := geom.RegionFromRects(geom.R(50, 0, 150, 100))
	fmt.Println("or :", a.Union(b).Area())
	fmt.Println("and:", a.Intersect(b).Area())
	fmt.Println("sub:", a.Subtract(b).Area())
	fmt.Println("xor:", a.Xor(b).Area())
	// Output:
	// or : 15000
	// and: 5000
	// sub: 5000
	// xor: 10000
}

func ExampleRegion_Polygons() {
	// Two touching rectangles merge into one L-shaped ring.
	g := geom.RegionFromRects(
		geom.R(0, 0, 200, 100),
		geom.R(0, 100, 100, 200),
	)
	rings := g.Polygons()
	fmt.Println("rings:", len(rings))
	fmt.Println("vertices:", rings[0].VertexCount())
	fmt.Println("area:", rings[0].Area())
	// Output:
	// rings: 1
	// vertices: 6
	// area: 30000
}

func ExampleRegion_NarrowerThan() {
	// A 180-wide line passes a 180 check; a 100-wide sliver fails.
	g := geom.RegionFromRects(
		geom.R(0, 0, 180, 2000),
		geom.R(500, 0, 600, 2000),
	)
	violations := g.NarrowerThan(180)
	fmt.Println("violation area:", violations.Area())
	fmt.Println("at:", violations.BBox())
	// Output:
	// violation area: 200000
	// at: [500,0;600,2000]
}

func ExampleFragmentPolygon() {
	// A short bar dissects into line ends, corner zones and runs.
	bar := geom.R(0, 0, 600, 200).Polygon()
	frags := geom.FragmentPolygon(bar, 0, geom.DefaultFragmentSpec())
	counts := map[geom.FragmentKind]int{}
	for _, f := range frags {
		counts[f.Kind]++
	}
	fmt.Println("line-ends:", counts[geom.LineEndFragment])
	fmt.Println("corners:", counts[geom.ConvexCornerFragment])
	fmt.Println("runs:", counts[geom.RunFragment])
	// Output:
	// line-ends: 2
	// corners: 4
	// runs: 6
}
