package orc

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// MEEF — the mask error enhancement factor — is the derivative of
// printed CD with respect to mask CD: d(CD_wafer)/d(CD_mask). At high
// k1 it approaches 1; as features shrink toward the resolution limit
// it grows, amplifying mask-making errors. MEEF is the reason OPC-era
// mask specs tightened: a MEEF of 3 turns a 4 nm mask error into 12 nm
// on the wafer.

// MEEFResult is one measurement.
type MEEFResult struct {
	// Nominal is the printed CD at the drawn mask size.
	Nominal float64
	// MEEF is the central-difference derivative.
	MEEF float64
}

// MeasureMEEF computes the MEEF at a cut site by symmetrically biasing
// the entire mask by +-delta (mask CD changes by 2*delta) and imaging
// both perturbations. The site must measure a dark feature.
func MeasureMEEF(sim *optics.Simulator, threshold float64, mask []geom.Polygon,
	window geom.Rect, cutAt geom.Point, horizontal bool, delta geom.Coord, maxSearch float64) (MEEFResult, error) {
	if delta <= 0 {
		return MEEFResult{}, fmt.Errorf("orc: MEEF delta must be positive")
	}
	measure := func(bias geom.Coord) (float64, error) {
		biased := mask
		if bias != 0 {
			biased = geom.RegionFromPolygons(mask...).Size(bias).Polygons()
		}
		im, err := sim.Aerial(biased, window)
		if err != nil {
			return 0, err
		}
		return resist.MeasureCD(im, threshold, float64(cutAt.X), float64(cutAt.Y), horizontal, maxSearch)
	}
	nominal, err := measure(0)
	if err != nil {
		return MEEFResult{}, fmt.Errorf("orc: MEEF nominal: %w", err)
	}
	plus, err := measure(delta)
	if err != nil {
		return MEEFResult{}, fmt.Errorf("orc: MEEF +%d: %w", delta, err)
	}
	minus, err := measure(-delta)
	if err != nil {
		return MEEFResult{}, fmt.Errorf("orc: MEEF -%d: %w", delta, err)
	}
	// Mask CD change per side bias delta is 2*delta.
	meef := (plus - minus) / float64(4*delta)
	return MEEFResult{Nominal: nominal, MEEF: meef}, nil
}
