package orc

import (
	"math"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

func fastSim(t *testing.T) (*optics.Simulator, float64) {
	t.Helper()
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := optics.New(s)
	if err != nil {
		t.Fatal(err)
	}
	th, err := resist.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	return sim, th
}

func TestCheckCleanPattern(t *testing.T) {
	sim, th := fastSim(t)
	c := NewChecker(sim, th)
	c.EPELimit = 25 // relaxed: uncorrected dense prints near size
	// The calibration anchor itself: dense 250/500 lines print to size.
	var target []geom.Polygon
	for i := -2; i <= 2; i++ {
		x := geom.Coord(i) * 500
		target = append(target, geom.R(x-125, -2000, x+125, 2000).Polygon())
	}
	rep, err := c.Check(target, opc.Uncorrected(target), opc.WindowFor(target, 600))
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Count(Pinch); n != 0 {
		t.Errorf("clean pattern reported %d pinches: %v", n, rep.Hotspots)
	}
	if n := rep.Count(Bridge); n != 0 {
		t.Errorf("clean pattern reported %d bridges", n)
	}
	if rep.EPE.Sites == 0 {
		t.Error("no EPE sites evaluated")
	}
}

func TestCheckDetectsPinch(t *testing.T) {
	sim, th := fastSim(t)
	c := NewChecker(sim, th)
	// A line far below resolution: 60 nm drawn — cannot print.
	target := []geom.Polygon{geom.R(-30, -2000, 30, 2000).Polygon()}
	rep, err := c.Check(target, opc.Uncorrected(target), opc.WindowFor(target, 600))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Pinch) == 0 {
		t.Error("60 nm line should pinch")
	}
}

func TestCheckDetectsBridge(t *testing.T) {
	sim, th := fastSim(t)
	c := NewChecker(sim, th)
	// Two wide lines separated by a 60 nm space: prints closed.
	target := []geom.Polygon{
		geom.R(-460, -2000, -30, 2000).Polygon(),
		geom.R(30, -2000, 460, 2000).Polygon(),
	}
	rep, err := c.Check(target, opc.Uncorrected(target), opc.WindowFor(target, 600))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Bridge) == 0 {
		t.Error("60 nm space should bridge")
	}
}

func TestCheckDetectsSideLobe(t *testing.T) {
	sim, th := fastSim(t)
	c := NewChecker(sim, th)
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	// A fat "assist" 300 nm wide prints — that is a side-lobe failure.
	mask := opc.Result{
		Corrected: target,
		SRAFs:     []geom.Polygon{geom.R(500, -2000, 800, 2000).Polygon()},
	}
	rep, err := c.Check(target, mask, opc.WindowFor(mask.AllMask(), 600))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(SideLobe) == 0 {
		t.Error("printing assist should be flagged")
	}
	// A proper 60 nm bar does not print.
	mask.SRAFs = []geom.Polygon{geom.R(460, -2000, 520, 2000).Polygon()}
	rep, err = c.Check(target, mask, opc.WindowFor(mask.AllMask(), 600))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(SideLobe) != 0 {
		for _, h := range rep.Hotspots {
			if h.Kind == SideLobe {
				t.Errorf("sub-resolution bar flagged: %v", h)
			}
		}
	}
}

func TestCheckEPEViolations(t *testing.T) {
	sim, th := fastSim(t)
	c := NewChecker(sim, th)
	c.EPELimit = 2 // tight limit: uncorrected iso line must violate
	target := []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
	rep, err := c.Check(target, opc.Uncorrected(target), opc.WindowFor(target, 600))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(EPEViolation) == 0 {
		t.Error("uncorrected iso line should violate a 2 nm EPE limit")
	}
}

func TestInnerWidth(t *testing.T) {
	p := geom.R(0, 0, 180, 2000).Polygon()
	// Midpoint of the right edge, outward normal east.
	w, ok := innerWidth(geom.Pt(180, 1000), geom.Pt(1, 0), p, 2000)
	if !ok || w != 180 {
		t.Errorf("innerWidth = %d ok=%v, want 180", w, ok)
	}
	// From the top edge.
	w, ok = innerWidth(geom.Pt(90, 2000), geom.Pt(0, 1), p, 3000)
	if !ok || w != 2000 {
		t.Errorf("vertical innerWidth = %d ok=%v", w, ok)
	}
	// Beyond probe distance.
	if _, ok := innerWidth(geom.Pt(90, 2000), geom.Pt(0, 1), p, 500); ok {
		t.Error("probe-limited width should miss")
	}
}

func TestHotspotDedupe(t *testing.T) {
	rep := Report{Hotspots: []Hotspot{
		{Kind: Pinch, At: geom.Pt(0, 0)},
		{Kind: Pinch, At: geom.Pt(10, 10)},  // within 100: dup
		{Kind: Pinch, At: geom.Pt(500, 0)},  // far: kept
		{Kind: Bridge, At: geom.Pt(10, 10)}, // other kind: kept
	}}
	dedupe(&rep)
	if len(rep.Hotspots) != 3 {
		t.Errorf("dedupe left %d", len(rep.Hotspots))
	}
}

func TestProcessWindowBasics(t *testing.T) {
	sim, th := fastSim(t)
	var mask []geom.Polygon
	for i := -3; i <= 3; i++ {
		x := geom.Coord(i) * 500
		mask = append(mask, geom.R(x-125, -3000, x+125, 3000).Polygon())
	}
	sites := []PWSite{{
		Name: "dense", At: geom.Pt(0, 0), Horizontal: true,
		TargetCD: 250, TolFrac: 0.10,
	}}
	focuses := []float64{-600, -300, 0, 300, 600}
	doses := []float64{0.90, 0.95, 1.0, 1.05, 1.10}
	res, err := AnalyzeWindow(sim, th, mask, geom.R(-400, -300, 400, 300), sites, focuses, doses)
	if err != nil {
		t.Fatal(err)
	}
	// Nominal condition must be in spec (it is the calibration anchor).
	if !res.InSpec[2][2] {
		t.Errorf("nominal focus/dose out of spec, CD=%v", res.CD[0][2][2])
	}
	// CD at nominal ~250.
	if cd := res.CD[0][2][2]; math.Abs(cd-250) > 5 {
		t.Errorf("nominal CD = %.1f", cd)
	}
	// Higher dose -> smaller dark CD (monotone in dose).
	if !(res.CD[0][2][0] > res.CD[0][2][4]) {
		t.Errorf("CD not monotone in dose: %.1f .. %.1f", res.CD[0][2][0], res.CD[0][2][4])
	}
	// EL at best focus positive.
	if el := res.ExposureLatitudeAt(2); el <= 0 {
		t.Errorf("EL at focus 0 = %f", el)
	}
	// DOF at a modest EL requirement positive, and shrinks as the EL
	// requirement grows.
	d1 := res.DOF(0.05)
	d2 := res.DOF(0.15)
	if d1 <= 0 {
		t.Errorf("DOF(5%%) = %f", d1)
	}
	if d2 > d1 {
		t.Errorf("DOF must shrink with stricter EL: %f > %f", d2, d1)
	}
}

func TestProcessWindowValidation(t *testing.T) {
	sim, th := fastSim(t)
	if _, err := AnalyzeWindow(sim, th, nil, geom.R(0, 0, 100, 100), nil, []float64{0}, []float64{1}); err == nil {
		t.Error("no sites should fail")
	}
}

func TestExposureLatitudeEdgeCases(t *testing.T) {
	r := &PWResult{
		Focuses: []float64{0},
		Doses:   []float64{0.9, 1.0, 1.1},
		InSpec:  [][]bool{{false, true, true}},
	}
	if el := r.ExposureLatitudeAt(0); math.Abs(el-0.1) > 1e-12 {
		t.Errorf("EL = %f, want 0.1", el)
	}
	if el := r.ExposureLatitudeAt(5); el != 0 {
		t.Error("out-of-range focus index should return 0")
	}
	// All out of spec.
	r.InSpec = [][]bool{{false, false, false}}
	if el := r.ExposureLatitudeAt(0); el != 0 {
		t.Errorf("EL = %f for all-fail", el)
	}
}

func TestMEEFGrowsTowardResolutionLimit(t *testing.T) {
	sim, th := fastSim(t)
	measureAtPitch := func(pitch geom.Coord) float64 {
		var mask []geom.Polygon
		cd := pitch / 2
		for i := -4; i <= 4; i++ {
			x := geom.Coord(i) * pitch
			mask = append(mask, geom.R(x-cd/2, -3000, x+cd/2, 3000).Polygon())
		}
		window := geom.R(-pitch-200, -200, pitch+200, 200)
		res, err := MeasureMEEF(sim, th, mask, window, geom.Pt(0, 0), true, 4, float64(pitch))
		if err != nil {
			t.Fatalf("pitch %d: %v", pitch, err)
		}
		return res.MEEF
	}
	loose := measureAtPitch(700) // k1 comfortable
	tight := measureAtPitch(400) // toward the limit
	if loose < 0.5 || loose > 2.5 {
		t.Errorf("loose-pitch MEEF = %.2f, expected near 1", loose)
	}
	if tight <= loose {
		t.Errorf("MEEF should grow toward the limit: %.2f (tight) vs %.2f (loose)", tight, loose)
	}
	// Validation.
	if _, err := MeasureMEEF(sim, th, nil, geom.R(0, 0, 100, 100), geom.Pt(0, 0), true, 0, 100); err == nil {
		t.Error("zero delta should fail")
	}
}
