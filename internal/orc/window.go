package orc

import (
	"fmt"
	"math"

	"goopc/internal/geom"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// PWSite is one CD monitor for process-window analysis.
type PWSite struct {
	Name string
	// At is the cut center (must print as a dark feature at nominal
	// conditions).
	At geom.Point
	// Horizontal is the cut direction.
	Horizontal bool
	// TargetCD and TolFrac define the spec: |CD - target| <= TolFrac *
	// target.
	TargetCD float64
	TolFrac  float64
}

// PWResult is the exposure-defocus analysis outcome.
type PWResult struct {
	Focuses []float64 // nm
	Doses   []float64 // relative, 1.0 nominal
	// CD[s][f][d] is the printed CD of site s at focus f, dose d;
	// NaN when the feature failed to print.
	CD [][][]float64
	// InSpec[f][d] is true when every site meets its spec.
	InSpec [][]bool
	Sites  []PWSite
}

// AnalyzeWindow runs the exposure-defocus matrix: one aerial image per
// focus (dose enters as threshold scaling, so doses are free), measuring
// every site at every condition.
func AnalyzeWindow(sim *optics.Simulator, threshold float64, mask []geom.Polygon,
	window geom.Rect, sites []PWSite, focuses, doses []float64) (*PWResult, error) {
	if len(sites) == 0 || len(focuses) == 0 || len(doses) == 0 {
		return nil, fmt.Errorf("orc: process window needs sites, focuses and doses")
	}
	res := &PWResult{Focuses: focuses, Doses: doses, Sites: sites}
	res.CD = make([][][]float64, len(sites))
	for s := range sites {
		res.CD[s] = make([][]float64, len(focuses))
		for f := range focuses {
			res.CD[s][f] = make([]float64, len(doses))
		}
	}
	res.InSpec = make([][]bool, len(focuses))
	for f, focus := range focuses {
		im, err := sim.AerialDefocus(mask, window, focus)
		if err != nil {
			return nil, fmt.Errorf("orc: focus %v: %w", focus, err)
		}
		res.InSpec[f] = make([]bool, len(doses))
		for d, dose := range doses {
			th := threshold / dose
			ok := true
			for s, site := range sites {
				cd, err := resist.MeasureCD(im, th, float64(site.At.X), float64(site.At.Y),
					site.Horizontal, 3*site.TargetCD)
				if err != nil {
					res.CD[s][f][d] = math.NaN()
					ok = false
					continue
				}
				res.CD[s][f][d] = cd
				if math.Abs(cd-site.TargetCD) > site.TolFrac*site.TargetCD {
					ok = false
				}
			}
			res.InSpec[f][d] = ok
		}
	}
	return res, nil
}

// ExposureLatitudeAt returns the widest contiguous in-spec dose range at
// one focus, as a fraction of nominal dose.
func (r *PWResult) ExposureLatitudeAt(focusIdx int) float64 {
	if focusIdx < 0 || focusIdx >= len(r.Focuses) {
		return 0
	}
	best := 0.0
	start := -1
	for d := 0; d <= len(r.Doses); d++ {
		in := d < len(r.Doses) && r.InSpec[focusIdx][d]
		if in && start == -1 {
			start = d
		}
		if !in && start != -1 {
			span := r.Doses[d-1] - r.Doses[start]
			if span > best {
				best = span
			}
			start = -1
		}
	}
	return best
}

// DOF returns the widest focus span over which a common dose window of
// at least minEL (relative dose width) stays in spec. This is the
// overlapping-process-window depth of focus.
func (r *PWResult) DOF(minEL float64) float64 {
	nF := len(r.Focuses)
	best := 0.0
	for i := 0; i < nF; i++ {
		// Common in-spec dose set across focuses i..j.
		common := make([]bool, len(r.Doses))
		copy(common, r.InSpec[i])
		for j := i; j < nF; j++ {
			if j > i {
				for d := range common {
					common[d] = common[d] && r.InSpec[j][d]
				}
			}
			if widestDoseSpan(common, r.Doses) >= minEL {
				span := math.Abs(r.Focuses[j] - r.Focuses[i])
				if span > best {
					best = span
				}
			}
		}
	}
	return best
}

func widestDoseSpan(in []bool, doses []float64) float64 {
	best := 0.0
	start := -1
	for d := 0; d <= len(doses); d++ {
		ok := d < len(doses) && in[d]
		if ok && start == -1 {
			start = d
		}
		if !ok && start != -1 {
			span := doses[d-1] - doses[start]
			if span > best {
				best = span
			}
			start = -1
		}
	}
	return best
}
