// Package orc implements optical rule checking — the post-OPC
// verification step that made OPC adoptable in production: site-based
// edge-placement checks against the design target, pinching and
// bridging hotspot detection, assist-feature side-lobe printing checks,
// and exposure–defocus process-window analysis.
package orc

import (
	"fmt"
	"math"

	"goopc/internal/geom"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// HotspotKind classifies a detected failure.
type HotspotKind uint8

// Hotspot kinds.
const (
	// Pinch: a drawn feature prints critically narrow or not at all.
	Pinch HotspotKind = iota
	// Bridge: a drawn space prints closed.
	Bridge
	// SideLobe: an assist feature prints.
	SideLobe
	// EPEViolation: edge placement error beyond the checker limit.
	EPEViolation
)

func (k HotspotKind) String() string {
	switch k {
	case Pinch:
		return "pinch"
	case Bridge:
		return "bridge"
	case SideLobe:
		return "side-lobe"
	case EPEViolation:
		return "epe"
	}
	return "?"
}

// Hotspot is one detected check failure.
type Hotspot struct {
	Kind HotspotKind
	At   geom.Point
	// Severity is kind-specific: printed/drawn CD ratio for pinch and
	// bridge, intensity margin for side lobes, |EPE| nm for EPE.
	Severity float64
	Detail   string
}

func (h Hotspot) String() string {
	return fmt.Sprintf("%s@%v sev=%.2f %s", h.Kind, h.At, h.Severity, h.Detail)
}

// Checker configures verification.
type Checker struct {
	Sim       *optics.Simulator
	Threshold float64
	// Spec controls check-site density (one site per fragment).
	Spec geom.FragmentSpec
	// EPELimit flags sites beyond this |EPE| in nm.
	EPELimit float64
	// SkipCornerEPE exempts corner-zone fragments from the EPE limit
	// (corners never print square; production checks spec them
	// separately). Pinch/bridge checks still run there.
	SkipCornerEPE bool
	// PinchRatio and BridgeRatio flag printed CD (or space) below this
	// fraction of drawn.
	PinchRatio, BridgeRatio float64
	// MaxSearch bounds contour searches in nm.
	MaxSearch float64
	// MaxProbe bounds the drawn-geometry neighbor probe in DBU.
	MaxProbe geom.Coord
}

// NewChecker returns production-typical limits: 10 nm EPE, 60% pinch
// and bridge ratios.
func NewChecker(sim *optics.Simulator, threshold float64) *Checker {
	return &Checker{
		Sim:           sim,
		Threshold:     threshold,
		Spec:          geom.DefaultFragmentSpec(),
		EPELimit:      10,
		SkipCornerEPE: true,
		PinchRatio:    0.6,
		BridgeRatio:   0.6,
		MaxSearch:     400,
		MaxProbe:      2000,
	}
}

// Report is the verification outcome for one window.
type Report struct {
	EPE      opc.EPEStats
	Hotspots []Hotspot
}

// Count returns the number of hotspots of a kind.
func (r Report) Count(k HotspotKind) int {
	n := 0
	for _, h := range r.Hotspots {
		if h.Kind == k {
			n++
		}
	}
	return n
}

// Check verifies a mask against its design target over the window.
func (c *Checker) Check(target []geom.Polygon, mask opc.Result, window geom.Rect) (Report, error) {
	im, err := c.Sim.Aerial(mask.AllMask(), window)
	if err != nil {
		return Report{}, fmt.Errorf("orc: imaging: %w", err)
	}
	return c.CheckOnImage(im, target, mask), nil
}

// CheckOnImage verifies against an already-computed aerial image.
func (c *Checker) CheckOnImage(im *optics.Image, target []geom.Polygon, mask opc.Result) Report {
	var rep Report
	rep.EPE = opc.EvaluateEPEOnImage(im, c.Threshold, target, c.Spec, c.MaxSearch)

	for pi, p := range target {
		for _, f := range geom.FragmentPolygon(p, pi, c.Spec) {
			mid := f.Edge.Mid()
			n := f.Edge.Normal()

			// EPE site check (corner zones exempt when configured).
			cornerSite := f.Kind == geom.ConvexCornerFragment || f.Kind == geom.ConcaveCornerFragment
			epe, err := resist.EPE(im, c.Threshold, float64(mid.X), float64(mid.Y),
				float64(n.X), float64(n.Y), c.MaxSearch)
			if err == nil && math.Abs(epe) > c.EPELimit && !(c.SkipCornerEPE && cornerSite) {
				rep.Hotspots = append(rep.Hotspots, Hotspot{
					Kind: EPEViolation, At: mid, Severity: math.Abs(epe),
					Detail: fmt.Sprintf("epe %.1f nm", epe),
				})
			}

			// Pinch check: drawn CD through this fragment vs printed.
			drawnCD, ok := innerWidth(mid, n, p, c.MaxProbe)
			if ok && drawnCD > 0 {
				interior := geom.Pt(mid.X-n.X*drawnCD/2, mid.Y-n.Y*drawnCD/2)
				iv := im.AtPoint(interior)
				if iv >= c.Threshold {
					rep.Hotspots = append(rep.Hotspots, Hotspot{
						Kind: Pinch, At: interior, Severity: 0,
						Detail: "feature missing",
					})
				} else {
					cd, err := resist.MeasureCD(im, c.Threshold,
						float64(interior.X), float64(interior.Y),
						n.X != 0, c.MaxSearch)
					if err == nil && cd < c.PinchRatio*float64(drawnCD) {
						rep.Hotspots = append(rep.Hotspots, Hotspot{
							Kind: Pinch, At: interior, Severity: cd / float64(drawnCD),
							Detail: fmt.Sprintf("printed %.0f of drawn %d", cd, drawnCD),
						})
					}
				}
			}

			// Bridge check: the drawn space in front of the fragment.
			// Zero distance means abutting polygons of the same net — a
			// connection, not a space.
			space := opc.NeighborDistance(f, target, pi, c.MaxProbe)
			if space > 0 && space < c.MaxProbe {
				exterior := geom.Pt(mid.X+n.X*space/2, mid.Y+n.Y*space/2)
				ev := im.AtPoint(exterior)
				if ev < c.Threshold {
					rep.Hotspots = append(rep.Hotspots, Hotspot{
						Kind: Bridge, At: exterior, Severity: 0,
						Detail: fmt.Sprintf("space %d printed closed", space),
					})
				} else {
					gap, err := resist.MeasureGap(im, c.Threshold,
						float64(exterior.X), float64(exterior.Y),
						n.X != 0, c.MaxSearch)
					if err == nil && gap < c.BridgeRatio*float64(space) {
						rep.Hotspots = append(rep.Hotspots, Hotspot{
							Kind: Bridge, At: exterior, Severity: gap / float64(space),
							Detail: fmt.Sprintf("printed %.0f of drawn %d", gap, space),
						})
					}
				}
			}
		}
	}

	// Side-lobe check: assist features must not print. Sample each SRAF
	// polygon's interior.
	for _, s := range mask.SRAFs {
		ctr := s.BBox().Center()
		iv := im.AtPoint(ctr)
		if iv < c.Threshold {
			rep.Hotspots = append(rep.Hotspots, Hotspot{
				Kind: SideLobe, At: ctr, Severity: c.Threshold - iv,
				Detail: fmt.Sprintf("assist prints (I=%.2f < %.2f)", iv, c.Threshold),
			})
		}
	}
	dedupe(&rep)
	return rep
}

// innerWidth casts a ray from the edge midpoint into the polygon (along
// the inward normal) to the opposite boundary: the drawn feature width
// at this site.
func innerWidth(mid geom.Point, outward geom.Point, p geom.Polygon, maxDist geom.Coord) (geom.Coord, bool) {
	inward := geom.Pt(-outward.X, -outward.Y)
	// Step one unit in so the cast does not hit the edge we sit on.
	start := mid.Add(inward)
	best := maxDist + 1
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		var d geom.Coord
		var hit bool
		switch {
		case inward.X != 0 && a.X == b.X:
			lo, hi := a.Y, b.Y
			if lo > hi {
				lo, hi = hi, lo
			}
			if start.Y < lo || start.Y > hi {
				continue
			}
			delta := (a.X - start.X) * inward.X
			if delta >= 0 {
				d, hit = delta, true
			}
		case inward.Y != 0 && a.Y == b.Y:
			lo, hi := a.X, b.X
			if lo > hi {
				lo, hi = hi, lo
			}
			if start.X < lo || start.X > hi {
				continue
			}
			delta := (a.Y - start.Y) * inward.Y
			if delta >= 0 {
				d, hit = delta, true
			}
		}
		if hit && d > 0 && d < best {
			best = d
		}
	}
	if best > maxDist {
		return 0, false
	}
	return best + 1, true // account for the one-unit inset
}

// dedupe collapses hotspots of the same kind within a small radius so
// adjacent fragments reporting the same physical failure count once.
func dedupe(rep *Report) {
	const radius = 100
	var out []Hotspot
	for _, h := range rep.Hotspots {
		dup := false
		for _, o := range out {
			if o.Kind == h.Kind && o.At.ManhattanDist(h.At) < radius {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	rep.Hotspots = out
}
