package gds_test

import (
	"bytes"
	"fmt"

	"goopc/internal/gds"
	"goopc/internal/geom"
)

func Example_roundTrip() {
	// Build a tiny library, serialize it, read it back.
	lib := gds.NewLibrary("DEMO")
	cell := lib.AddStruct("INV")
	cell.Add(&gds.Boundary{Layer: 2, XY: geom.R(0, 0, 180, 2000).Polygon()})
	top := lib.AddStruct("TOP")
	top.Add(&gds.ARef{Name: "INV", Cols: 4, Rows: 1,
		ColStep: geom.Pt(560, 0), RowStep: geom.Pt(0, 5040)})

	var buf bytes.Buffer
	n, _ := gds.Write(&buf, lib)
	back, _ := gds.Read(&buf)
	st := gds.Collect(back)
	fmt.Println("bytes:", n)
	fmt.Println("structs:", st.Structs, "figures:", st.Figures(), "arefs:", st.ARefs)
	// Output:
	// bytes: 262
	// structs: 2 figures: 1 arefs: 1
}

func ExampleReal8Encode() {
	// GDSII's excess-64 float: 1.0 is exponent 65, mantissa 1/16.
	b := gds.Real8Encode(1.0)
	fmt.Printf("% x\n", b)
	fmt.Println(gds.Real8Decode(b))
	// Output:
	// 41 10 00 00 00 00 00 00
	// 1
}
