package gds

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"goopc/internal/geom"
)

func TestReal8KnownValues(t *testing.T) {
	// 1.0 = 16^(65-64) * 1/16: exponent 65, mantissa 0x10000000000000.
	b := Real8Encode(1.0)
	want := [8]byte{0x41, 0x10, 0, 0, 0, 0, 0, 0}
	if b != want {
		t.Errorf("Real8Encode(1.0) = % x, want % x", b, want)
	}
	// -1.0 sets the sign bit.
	b = Real8Encode(-1.0)
	want[0] = 0xC1
	if b != want {
		t.Errorf("Real8Encode(-1.0) = % x, want % x", b, want)
	}
	// 0 encodes as all zero.
	if b := Real8Encode(0); b != ([8]byte{}) {
		t.Errorf("Real8Encode(0) = % x", b)
	}
	// The canonical 1 nm database unit pair written by every layout tool:
	// 1e-3 user units and 1e-9 meters must survive a round trip exactly
	// enough to reproduce the grid.
	for _, v := range []float64{1e-3, 1e-9, 0.5, 2.0, 480.0, 1e6} {
		got := Real8Decode(Real8Encode(v))
		if math.Abs(got-v) > math.Abs(v)*1e-14 {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}

func TestReal8DecodeKnown(t *testing.T) {
	// Decode the spec example: 0x41 10 00 00 00 00 00 00 = 1.0.
	if v := Real8Decode([8]byte{0x41, 0x10, 0, 0, 0, 0, 0, 0}); v != 1.0 {
		t.Errorf("decode = %v, want 1.0", v)
	}
	if v := Real8Decode([8]byte{}); v != 0 {
		t.Errorf("decode zero = %v", v)
	}
}

func TestQuickReal8RoundTrip(t *testing.T) {
	f := func(mant int64, scale uint8) bool {
		v := float64(mant) * math.Pow(10, float64(int(scale%40))-20)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		got := Real8Decode(Real8Encode(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v) <= math.Abs(v)*1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReal8NaN(t *testing.T) {
	if b := Real8Encode(math.NaN()); b != ([8]byte{}) {
		t.Errorf("NaN should encode as zero, got % x", b)
	}
}

func sampleLib() *Library {
	lib := NewLibrary("TESTLIB")
	cell := lib.AddStruct("CELL")
	cell.Add(&Boundary{Layer: 2, XY: geom.Polygon{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 50), geom.Pt(0, 50),
	}})
	cell.Add(&Path{Layer: 4, Width: 90, XY: []geom.Point{
		geom.Pt(0, 200), geom.Pt(500, 200), geom.Pt(500, 700),
	}})
	cell.Add(&Text{Layer: 63, Origin: geom.Pt(10, 10), String: "label"})
	top := lib.AddStruct("TOP")
	top.Add(&SRef{Name: "CELL", Origin: geom.Pt(1000, 0)})
	top.Add(&SRef{Name: "CELL", Origin: geom.Pt(0, 1000),
		Strans: Strans{Reflect: true, Angle: 90}})
	top.Add(&ARef{Name: "CELL", Cols: 4, Rows: 2,
		Origin: geom.Pt(5000, 5000), ColStep: geom.Pt(1200, 0), RowStep: geom.Pt(0, 900)})
	return lib
}

func TestRoundTrip(t *testing.T) {
	lib := sampleLib()
	var buf bytes.Buffer
	n, err := Write(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "TESTLIB" {
		t.Errorf("lib name = %q", got.Name)
	}
	if got.UserUnit != 1e-3 || got.MeterUnit != 1e-9 {
		t.Errorf("units = %g %g", got.UserUnit, got.MeterUnit)
	}
	if len(got.Structs) != 2 {
		t.Fatalf("structs = %d", len(got.Structs))
	}
	cell := got.Struct("CELL")
	if cell == nil || len(cell.Elements) != 3 {
		t.Fatalf("CELL missing or wrong element count")
	}
	b, ok := cell.Elements[0].(*Boundary)
	if !ok || b.Layer != 2 || len(b.XY) != 4 {
		t.Fatalf("boundary wrong: %+v", cell.Elements[0])
	}
	if b.XY[2] != geom.Pt(100, 50) {
		t.Errorf("boundary vertex = %v", b.XY[2])
	}
	p, ok := cell.Elements[1].(*Path)
	if !ok || p.Width != 90 || len(p.XY) != 3 {
		t.Fatalf("path wrong: %+v", cell.Elements[1])
	}
	top := got.Struct("TOP")
	sr, ok := top.Elements[1].(*SRef)
	if !ok || !sr.Strans.Reflect || sr.Strans.Angle != 90 {
		t.Fatalf("sref strans wrong: %+v", top.Elements[1])
	}
	ar, ok := top.Elements[2].(*ARef)
	if !ok || ar.Cols != 4 || ar.Rows != 2 {
		t.Fatalf("aref wrong: %+v", top.Elements[2])
	}
	if ar.ColStep != geom.Pt(1200, 0) || ar.RowStep != geom.Pt(0, 900) {
		t.Errorf("aref steps: %v %v", ar.ColStep, ar.RowStep)
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Write(&a, sampleLib()); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, sampleLib()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("writer output must be deterministic for data-volume experiments")
	}
}

func TestQuickStreamRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lib := NewLibrary("Q")
		s := lib.AddStruct("S")
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			x := geom.Coord(rng.Intn(100000) - 50000)
			y := geom.Coord(rng.Intn(100000) - 50000)
			w := geom.Coord(1 + rng.Intn(5000))
			h := geom.Coord(1 + rng.Intn(5000))
			s.Add(&Boundary{
				Layer:    int16(rng.Intn(64)),
				DataType: int16(rng.Intn(4)),
				XY:       geom.R(x, y, x+w, y+h).Polygon(),
			})
		}
		var buf bytes.Buffer
		if _, err := Write(&buf, lib); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		gs := got.Struct("S")
		if gs == nil || len(gs.Elements) != n {
			return false
		}
		for i, el := range gs.Elements {
			ob := s.Elements[i].(*Boundary)
			gb, ok := el.(*Boundary)
			if !ok || gb.Layer != ob.Layer || gb.DataType != ob.DataType {
				return false
			}
			if len(gb.XY) != len(ob.XY) {
				return false
			}
			for j := range gb.XY {
				if gb.XY[j] != ob.XY[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header should fail")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	// A stream that never reaches ENDLIB.
	var buf bytes.Buffer
	rw := newRecordWriter(&buf)
	rw.i16(RecHeader, 600)
	rw.i16(RecBgnLib, fixedStamp...)
	rw.ascii(RecLibName, "X")
	_ = rw.w.Flush()
	if _, err := Read(&buf); err == nil {
		t.Error("missing ENDLIB should fail")
	}
}

func TestReadRejectsWrongDataType(t *testing.T) {
	var buf bytes.Buffer
	rw := newRecordWriter(&buf)
	rw.rec(RecHeader, DTASCII, []byte{0, 0}) // HEADER must be int16
	_ = rw.w.Flush()
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "data type") {
		t.Errorf("wrong data type should fail, got %v", err)
	}
}

func TestElementOutsideStructure(t *testing.T) {
	var buf bytes.Buffer
	rw := newRecordWriter(&buf)
	rw.i16(RecHeader, 600)
	rw.i16(RecBgnLib, fixedStamp...)
	rw.ascii(RecLibName, "X")
	rw.r8(RecUnits, 1e-3, 1e-9)
	rw.none(RecBoundary)
	_ = rw.w.Flush()
	if _, err := Read(&buf); err == nil {
		t.Error("element outside structure should fail")
	}
}

func TestLibraryValidate(t *testing.T) {
	lib := sampleLib()
	if err := lib.Validate(); err != nil {
		t.Fatalf("valid library rejected: %v", err)
	}
	// Dangling reference.
	bad := NewLibrary("B")
	s := bad.AddStruct("A")
	s.Add(&SRef{Name: "MISSING"})
	if err := bad.Validate(); err == nil {
		t.Error("dangling reference should fail validation")
	}
	// Cycle.
	cyc := NewLibrary("C")
	a := cyc.AddStruct("A")
	b := cyc.AddStruct("B")
	a.Add(&SRef{Name: "B"})
	b.Add(&SRef{Name: "A"})
	if err := cyc.Validate(); err == nil {
		t.Error("reference cycle should fail validation")
	}
}

func TestAddStructIdempotent(t *testing.T) {
	lib := NewLibrary("L")
	a := lib.AddStruct("X")
	b := lib.AddStruct("X")
	if a != b {
		t.Error("AddStruct should return the existing structure")
	}
	if len(lib.Structs) != 1 {
		t.Errorf("structs = %d", len(lib.Structs))
	}
}

func TestStransOrient(t *testing.T) {
	cases := []struct {
		s    Strans
		want geom.Orient
	}{
		{Strans{}, geom.R0},
		{Strans{Angle: 90}, geom.R90},
		{Strans{Angle: 180}, geom.R180},
		{Strans{Angle: 270}, geom.R270},
		{Strans{Angle: -90}, geom.R270},
		{Strans{Angle: 450}, geom.R90},
		{Strans{Reflect: true}, geom.MX},
		{Strans{Reflect: true, Angle: 90}, geom.MX90},
	}
	for _, c := range cases {
		got, err := c.s.Orient()
		if err != nil {
			t.Errorf("Orient(%+v): %v", c.s, err)
			continue
		}
		if got != c.want {
			t.Errorf("Orient(%+v) = %v, want %v", c.s, got, c.want)
		}
	}
	if _, err := (Strans{Angle: 45}).Orient(); err == nil {
		t.Error("45-degree angle should be rejected")
	}
}

func TestStransXform(t *testing.T) {
	x, err := (Strans{Angle: 90, Mag: 2}).Xform(geom.Pt(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Apply(geom.Pt(1, 0)); got != geom.Pt(100, 2) {
		t.Errorf("Apply = %v", got)
	}
	if _, err := (Strans{Mag: 1.5}).Xform(geom.Point{}); err == nil {
		t.Error("fractional mag should be rejected")
	}
}

func TestStransFromOrientRoundTrip(t *testing.T) {
	for o := geom.R0; o <= geom.MX270; o++ {
		s := StransFromOrient(o)
		back, err := s.Orient()
		if err != nil {
			t.Fatalf("orient %v: %v", o, err)
		}
		if back != o {
			t.Errorf("round trip %v -> %v", o, back)
		}
	}
}

func TestPathOutline(t *testing.T) {
	p := &Path{Width: 10, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}}
	polys, err := p.Outline()
	if err != nil {
		t.Fatal(err)
	}
	area := geom.RegionFromPolygons(polys...).Area()
	if area != 100*10 {
		t.Errorf("straight path area = %d", area)
	}
	// L-bend: union of two arms sharing the joint square.
	p = &Path{Width: 10, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100)}}
	polys, err = p.Outline()
	if err != nil {
		t.Fatal(err)
	}
	area = geom.RegionFromPolygons(polys...).Area()
	// Horizontal arm [0,100]x[-5,5] (1000) plus vertical arm
	// [95,105]x[0,100] (1000) minus their 25 overlap, plus the joint
	// square's 25 not covered by either arm: 2000 total.
	if area != 2000 {
		t.Errorf("L path area = %d, want 2000", area)
	}
	// Extended ends (PathType 2) add half-width at both ends.
	p = &Path{Width: 10, PathType: 2, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}}
	polys, err = p.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if a := geom.RegionFromPolygons(polys...).Area(); a != 110*10 {
		t.Errorf("extended path area = %d", a)
	}
	// Diagonal rejected.
	p = &Path{Width: 10, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(50, 50)}}
	if _, err := p.Outline(); err == nil {
		t.Error("diagonal path should be rejected")
	}
	// Degenerate rejected.
	p = &Path{Width: 0, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0)}}
	if _, err := p.Outline(); err == nil {
		t.Error("zero-width path should be rejected")
	}
}

func TestStatsCollect(t *testing.T) {
	lib := sampleLib()
	st, err := CollectWithBytes(lib)
	if err != nil {
		t.Fatal(err)
	}
	if st.Structs != 2 || st.Boundaries != 1 || st.Paths != 1 ||
		st.SRefs != 2 || st.ARefs != 1 || st.Texts != 1 {
		t.Errorf("counts wrong: %+v", st)
	}
	if st.Vertices != 4+3 {
		t.Errorf("vertices = %d", st.Vertices)
	}
	if st.Figures() != 2 {
		t.Errorf("figures = %d", st.Figures())
	}
	if st.Bytes <= 0 {
		t.Error("bytes not measured")
	}
	if st.PerLayer[2] != 1 || st.PerLayer[4] != 1 {
		t.Errorf("per-layer: %v", st.PerLayer)
	}
	if s := st.String(); !strings.Contains(s, "figures=2") {
		t.Errorf("String() = %q", s)
	}
}

func TestOversizedBoundaryRejected(t *testing.T) {
	lib := NewLibrary("L")
	s := lib.AddStruct("S")
	ring := make(geom.Polygon, 0, 9000)
	// A long staircase exceeding the per-record vertex limit.
	x, y := geom.Coord(0), geom.Coord(0)
	for i := 0; i < 8500; i++ {
		ring = append(ring, geom.Pt(x, y))
		if i%2 == 0 {
			x += 10
		} else {
			y += 10
		}
	}
	s.Add(&Boundary{Layer: 1, XY: ring})
	if _, err := Write(io.Discard, lib); err == nil {
		t.Error("oversized boundary should be rejected")
	}
}

func TestReadSkipsPaddedTail(t *testing.T) {
	// Some writers pad the stream with zero words after ENDLIB; the
	// reader must stop cleanly at ENDLIB.
	var buf bytes.Buffer
	if _, err := Write(&buf, sampleLib()); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 64)) // zero padding
	if _, err := Read(&buf); err != nil {
		t.Fatalf("padded stream rejected: %v", err)
	}
}

func TestReadSkipsBoxAndNode(t *testing.T) {
	var buf bytes.Buffer
	rw := newRecordWriter(&buf)
	rw.i16(RecHeader, 600)
	rw.i16(RecBgnLib, fixedStamp...)
	rw.ascii(RecLibName, "X")
	rw.r8(RecUnits, 1e-3, 1e-9)
	rw.i16(RecBgnStr, fixedStamp...)
	rw.ascii(RecStrName, "S")
	// A BOX element: modeled and kept.
	rw.none(RecBox)
	rw.i16(RecLayer, 5)
	rw.rec(RecBoxType, DTInt16, []byte{0, 0})
	rw.i32(RecXY, 0, 0, 10, 0, 10, 10, 0, 10, 0, 0)
	rw.none(RecEndEl)
	// A normal boundary follows.
	rw.none(RecBoundary)
	rw.i16(RecLayer, 1)
	rw.i16(RecDataType, 0)
	rw.i32(RecXY, 0, 0, 100, 0, 100, 100, 0, 100, 0, 0)
	rw.none(RecEndEl)
	rw.none(RecEndStr)
	rw.none(RecEndLib)
	_ = rw.w.Flush()
	lib, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := lib.Struct("S")
	if s == nil || len(s.Elements) != 2 {
		t.Fatalf("BOX and boundary should both be kept: %+v", s)
	}
	if _, ok := s.Elements[0].(*Box); !ok {
		t.Errorf("first element should be a Box: %T", s.Elements[0])
	}
}

func TestFromGDSRejects45Degree(t *testing.T) {
	lib := NewLibrary("L")
	s := lib.AddStruct("S")
	s.Add(&Boundary{Layer: 1, XY: geom.Polygon{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100),
	}})
	// The diagonal closing edge (100,100)->(0,0) must be rejected by
	// the layout importer.
	var buf bytes.Buffer
	if _, err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	// gds.Read itself accepts any polygon; layout.FromGDS validates.
	if _, err := Read(&buf); err != nil {
		t.Fatalf("raw read should accept: %v", err)
	}
}

func TestCWBoundaryReorientedByLayout(t *testing.T) {
	// Writers may emit clockwise rings; the layout importer normalizes
	// to CCW. Covered indirectly here by checking gds preserves order.
	lib := NewLibrary("L")
	s := lib.AddStruct("S")
	cw := geom.R(0, 0, 100, 100).Polygon().Reverse()
	s.Add(&Boundary{Layer: 1, XY: cw})
	var buf bytes.Buffer
	if _, err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := got.Struct("S").Elements[0].(*Boundary)
	if b.XY.IsCCW() {
		t.Error("gds layer should preserve the stored winding verbatim")
	}
}

func TestPropertiesRoundTrip(t *testing.T) {
	lib := NewLibrary("P")
	s := lib.AddStruct("S")
	s.Add(&Boundary{Layer: 1, XY: geom.R(0, 0, 100, 100).Polygon(),
		Props: []Property{{Attr: 1, Value: "netA"}, {Attr: 2, Value: "crit"}}})
	s.Add(&Box{Layer: 60, BoxType: 1, XY: geom.R(0, 0, 500, 500).Polygon(),
		Props: []Property{{Attr: 7, Value: "blockade"}}})
	var buf bytes.Buffer
	if _, err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gs := got.Struct("S")
	b := gs.Elements[0].(*Boundary)
	if len(b.Props) != 2 || b.Props[0] != (Property{1, "netA"}) || b.Props[1] != (Property{2, "crit"}) {
		t.Errorf("boundary props: %+v", b.Props)
	}
	bx := gs.Elements[1].(*Box)
	if bx.Layer != 60 || bx.BoxType != 1 || len(bx.Props) != 1 || bx.Props[0].Value != "blockade" {
		t.Errorf("box: %+v", bx)
	}
	if bx.XY.Area() != 250000 {
		t.Errorf("box area: %d", bx.XY.Area())
	}
}

func TestQuickTruncationNeverPanics(t *testing.T) {
	// Any truncation of a valid stream must produce an error (the
	// stream ends with ENDLIB), and must never panic.
	var full bytes.Buffer
	if _, err := Write(&full, sampleLib()); err != nil {
		t.Fatal(err)
	}
	data := full.Bytes()
	f := func(cut uint16) bool {
		n := int(cut) % len(data)
		_, err := Read(bytes.NewReader(data[:n]))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBitFlipNeverPanics(t *testing.T) {
	// Randomly corrupted streams may parse or fail, but must not panic
	// and must not hang.
	var full bytes.Buffer
	if _, err := Write(&full, sampleLib()); err != nil {
		t.Fatal(err)
	}
	orig := full.Bytes()
	f := func(pos uint16, bit uint8) bool {
		data := append([]byte{}, orig...)
		data[int(pos)%len(data)] ^= 1 << (bit % 8)
		_, _ = Read(bytes.NewReader(data)) // outcome irrelevant; no panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
