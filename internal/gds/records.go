// Package gds implements the GDSII stream format: the binary record
// codec (including excess-64 REAL8 floats), a reader and writer for the
// element subset that mask layout work uses (BOUNDARY, PATH, SREF, AREF,
// TEXT, BOX with properties; NODE is skipped), and an in-memory
// library/structure model.
//
// GDSII is the interchange format the reproduced paper's flow lives in;
// no Go EDA library exists, so this package is written against the Calma
// GDSII Stream Format release 6 description. Byte order is big-endian
// throughout.
package gds

import "fmt"

// RecordType identifies a GDSII record header type byte.
type RecordType uint8

// GDSII record types (the subset this library reads and writes, plus the
// ones it must be able to skip).
const (
	RecHeader       RecordType = 0x00
	RecBgnLib       RecordType = 0x01
	RecLibName      RecordType = 0x02
	RecUnits        RecordType = 0x03
	RecEndLib       RecordType = 0x04
	RecBgnStr       RecordType = 0x05
	RecStrName      RecordType = 0x06
	RecEndStr       RecordType = 0x07
	RecBoundary     RecordType = 0x08
	RecPath         RecordType = 0x09
	RecSRef         RecordType = 0x0A
	RecARef         RecordType = 0x0B
	RecText         RecordType = 0x0C
	RecLayer        RecordType = 0x0D
	RecDataType     RecordType = 0x0E
	RecWidth        RecordType = 0x0F
	RecXY           RecordType = 0x10
	RecEndEl        RecordType = 0x11
	RecSName        RecordType = 0x12
	RecColRow       RecordType = 0x13
	RecNode         RecordType = 0x15
	RecTextType     RecordType = 0x16
	RecPresentation RecordType = 0x17
	RecString       RecordType = 0x19
	RecSTrans       RecordType = 0x1A
	RecMag          RecordType = 0x1B
	RecAngle        RecordType = 0x1C
	RecRefLibs      RecordType = 0x1F
	RecFonts        RecordType = 0x20
	RecPathType     RecordType = 0x21
	RecGenerations  RecordType = 0x22
	RecAttrTable    RecordType = 0x23
	RecElFlags      RecordType = 0x26
	RecNodeType     RecordType = 0x2A
	RecPropAttr     RecordType = 0x2B
	RecPropValue    RecordType = 0x2C
	RecBox          RecordType = 0x2D
	RecBoxType      RecordType = 0x2E
	RecPlex         RecordType = 0x2F
	RecBgnExtn      RecordType = 0x30
	RecEndExtn      RecordType = 0x31
)

var recNames = map[RecordType]string{
	RecHeader: "HEADER", RecBgnLib: "BGNLIB", RecLibName: "LIBNAME",
	RecUnits: "UNITS", RecEndLib: "ENDLIB", RecBgnStr: "BGNSTR",
	RecStrName: "STRNAME", RecEndStr: "ENDSTR", RecBoundary: "BOUNDARY",
	RecPath: "PATH", RecSRef: "SREF", RecARef: "AREF", RecText: "TEXT",
	RecLayer: "LAYER", RecDataType: "DATATYPE", RecWidth: "WIDTH",
	RecXY: "XY", RecEndEl: "ENDEL", RecSName: "SNAME", RecColRow: "COLROW",
	RecNode: "NODE", RecTextType: "TEXTTYPE", RecPresentation: "PRESENTATION",
	RecString: "STRING", RecSTrans: "STRANS", RecMag: "MAG", RecAngle: "ANGLE",
	RecPathType: "PATHTYPE", RecElFlags: "ELFLAGS", RecPlex: "PLEX",
	RecBox: "BOX", RecBoxType: "BOXTYPE", RecPropAttr: "PROPATTR",
	RecPropValue: "PROPVALUE", RecBgnExtn: "BGNEXTN", RecEndExtn: "ENDEXTN",
}

func (r RecordType) String() string {
	if n, ok := recNames[r]; ok {
		return n
	}
	return fmt.Sprintf("REC(0x%02X)", uint8(r))
}

// DataType is the GDSII record data-type byte.
type DataType uint8

// GDSII data type codes.
const (
	DTNone     DataType = 0
	DTBitArray DataType = 1
	DTInt16    DataType = 2
	DTInt32    DataType = 3
	DTReal4    DataType = 4
	DTReal8    DataType = 5
	DTASCII    DataType = 6
)

func (d DataType) String() string {
	switch d {
	case DTNone:
		return "none"
	case DTBitArray:
		return "bits"
	case DTInt16:
		return "i16"
	case DTInt32:
		return "i32"
	case DTReal4:
		return "r4"
	case DTReal8:
		return "r8"
	case DTASCII:
		return "ascii"
	}
	return fmt.Sprintf("dt(%d)", uint8(d))
}

// expectedDT maps record types to the data type the spec requires, for
// validation on read. Absent entries are not validated.
var expectedDT = map[RecordType]DataType{
	RecHeader: DTInt16, RecBgnLib: DTInt16, RecLibName: DTASCII,
	RecUnits: DTReal8, RecEndLib: DTNone, RecBgnStr: DTInt16,
	RecStrName: DTASCII, RecEndStr: DTNone, RecBoundary: DTNone,
	RecPath: DTNone, RecSRef: DTNone, RecARef: DTNone, RecText: DTNone,
	RecLayer: DTInt16, RecDataType: DTInt16, RecWidth: DTInt32,
	RecXY: DTInt32, RecEndEl: DTNone, RecSName: DTASCII,
	RecColRow: DTInt16, RecTextType: DTInt16, RecString: DTASCII,
	RecSTrans: DTBitArray, RecMag: DTReal8, RecAngle: DTReal8,
	RecPathType: DTInt16, RecBoxType: DTInt16,
	RecPropAttr: DTInt16, RecPropValue: DTASCII, RecBox: DTNone,
}
