package gds

import "math"

// GDSII REAL8 is not IEEE 754: it is an excess-64, base-16 format with a
// sign bit, 7 exponent bits, and a 56-bit mantissa interpreted as a
// binary fraction. value = (-1)^sign * (mantissa / 2^56) * 16^(exp-64).

// Real8Encode converts a float64 to the 8 GDSII real bytes. Values whose
// magnitude is outside the representable range saturate; NaN encodes as
// zero (GDSII has no NaN).
func Real8Encode(v float64) [8]byte {
	var out [8]byte
	if v == 0 || math.IsNaN(v) {
		return out
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	// Find e such that v / 16^(e-64) is in [1/16, 1).
	exp := 64
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	if exp < 0 {
		return out // underflow to zero
	}
	if exp > 127 {
		exp = 127
		v = 1 - math.Pow(2, -56) // saturate
	}
	mant := uint64(v * (1 << 56))
	if mant >= 1<<56 { // rounding pushed it out of range
		mant >>= 4
		exp++
		if exp > 127 {
			exp, mant = 127, 1<<56-1
		}
	}
	out[0] = sign | byte(exp)
	for i := 6; i >= 0; i-- {
		out[1+i] = byte(mant)
		mant >>= 8
	}
	return out
}

// Real8Decode converts 8 GDSII real bytes to a float64.
func Real8Decode(b [8]byte) float64 {
	sign := b[0]&0x80 != 0
	exp := int(b[0] & 0x7F)
	var mant uint64
	for i := 0; i < 7; i++ {
		mant = mant<<8 | uint64(b[1+i])
	}
	if mant == 0 {
		return 0
	}
	v := float64(mant) / float64(uint64(1)<<56) * math.Pow(16, float64(exp-64))
	if sign {
		v = -v
	}
	return v
}
