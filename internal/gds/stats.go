package gds

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Stats summarizes the mask-data cost of a library: the figure and
// vertex counts that drive mask write time and the byte volume that
// drives data handling. These are the quantities the paper's
// "impact on design and layout" discussion tracks across OPC levels.
type Stats struct {
	Structs    int
	Boundaries int
	Paths      int
	SRefs      int
	ARefs      int
	Texts      int
	// Vertices counts boundary ring vertices (excluding the implicit
	// closing point) plus path centerline points.
	Vertices int
	// Bytes is the serialized GDSII stream size; zero until measured via
	// MeasureBytes or CollectWithBytes.
	Bytes int64
	// PerLayer maps layer number to boundary+path figure count.
	PerLayer map[int16]int
}

// Collect walks the library and tallies element statistics.
func Collect(lib *Library) Stats {
	st := Stats{PerLayer: map[int16]int{}}
	st.Structs = len(lib.Structs)
	for _, s := range lib.Structs {
		for _, el := range s.Elements {
			switch e := el.(type) {
			case *Boundary:
				st.Boundaries++
				st.Vertices += len(e.XY)
				st.PerLayer[e.Layer]++
			case *Path:
				st.Paths++
				st.Vertices += len(e.XY)
				st.PerLayer[e.Layer]++
			case *SRef:
				st.SRefs++
			case *ARef:
				st.ARefs++
			case *Text:
				st.Texts++
			}
		}
	}
	return st
}

// MeasureBytes serializes the library to a counting sink and returns the
// exact stream size.
func MeasureBytes(lib *Library) (int64, error) {
	return Write(io.Discard, lib)
}

// CollectWithBytes tallies statistics and fills in the serialized size.
func CollectWithBytes(lib *Library) (Stats, error) {
	st := Collect(lib)
	n, err := MeasureBytes(lib)
	if err != nil {
		return st, err
	}
	st.Bytes = n
	return st, nil
}

// Figures returns the total drawn figure count (boundaries + paths).
func (s Stats) Figures() int { return s.Boundaries + s.Paths }

// String formats the stats as a one-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structs=%d figures=%d (bnd=%d path=%d) refs=%d/%d vertices=%d",
		s.Structs, s.Figures(), s.Boundaries, s.Paths, s.SRefs, s.ARefs, s.Vertices)
	if s.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", s.Bytes)
	}
	if len(s.PerLayer) > 0 {
		layers := make([]int, 0, len(s.PerLayer))
		for l := range s.PerLayer {
			layers = append(layers, int(l))
		}
		sort.Ints(layers)
		b.WriteString(" layers:")
		for _, l := range layers {
			fmt.Fprintf(&b, " %d=%d", l, s.PerLayer[int16(l)])
		}
	}
	return b.String()
}
