package gds_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"goopc/internal/gds"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
)

// seedStreams builds the fuzz seed corpus from the package's own
// generators: a hand-assembled library covering every element kind, a
// generated through-pitch test layout, plus deterministic corruptions
// (truncations and byte flips) of the valid streams so the fuzzer
// starts on both sides of the validity boundary.
func seedStreams(tb testing.TB) [][]byte {
	var seeds [][]byte

	lib := gds.NewLibrary("SEED")
	leaf := lib.AddStruct("LEAF")
	leaf.Add(&gds.Boundary{Layer: 2, XY: geom.Polygon{
		geom.Pt(0, 0), geom.Pt(400, 0), geom.Pt(400, 180), geom.Pt(0, 180),
	}})
	leaf.Add(&gds.Path{Layer: 3, Width: 120, XY: []geom.Point{
		geom.Pt(0, 300), geom.Pt(900, 300), geom.Pt(900, 800),
	}})
	top := lib.AddStruct("TOP")
	top.Add(&gds.SRef{Name: "LEAF", Origin: geom.Pt(1000, 0)})
	top.Add(&gds.ARef{
		Name: "LEAF", Cols: 3, Rows: 2,
		Origin: geom.Pt(0, 2000), ColStep: geom.Pt(600, 0), RowStep: geom.Pt(0, 500),
	})
	top.Add(&gds.Text{Layer: 63, Origin: geom.Pt(10, 10), String: "label"})
	var buf bytes.Buffer
	if _, err := gds.Write(&buf, lib); err != nil {
		tb.Fatalf("seed write: %v", err)
	}
	seeds = append(seeds, append([]byte(nil), buf.Bytes()...))

	ly := layout.New("fuzzgen")
	cell, _, err := gen.ThroughPitch(ly, "TP", layout.Poly, 180,
		[]geom.Coord{360, 800}, 1500, 2)
	if err != nil {
		tb.Fatalf("seed gen: %v", err)
	}
	ly.SetTop(cell)
	buf.Reset()
	if _, err := layout.WriteGDS(&buf, ly); err != nil {
		tb.Fatalf("seed gen write: %v", err)
	}
	seeds = append(seeds, append([]byte(nil), buf.Bytes()...))

	rng := rand.New(rand.NewSource(7))
	base := seeds[0]
	for i := 0; i < 8; i++ {
		cut := rng.Intn(len(base))
		seeds = append(seeds, append([]byte(nil), base[:cut]...))
		flip := append([]byte(nil), base...)
		flip[rng.Intn(len(flip))] ^= byte(1 << rng.Intn(8))
		seeds = append(seeds, flip)
	}
	return seeds
}

// FuzzReadGDS drives the reader with arbitrary byte streams. The
// invariants: Read never panics, rejects corruption with a wrapped
// ErrCorrupt, and anything it accepts (and that validates) survives a
// write/reread round trip.
func FuzzReadGDS(f *testing.F) {
	for _, s := range seedStreams(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := gds.Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, gds.ErrCorrupt) {
				t.Fatalf("read error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if lib == nil {
			t.Fatal("nil library with nil error")
		}
		if err := lib.Validate(); err != nil {
			return // structurally readable but referentially broken
		}
		var buf bytes.Buffer
		if _, err := gds.Write(&buf, lib); err != nil {
			return // writer limits (e.g. vertex caps) may be tighter
		}
		if _, err := gds.Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("reread of written library failed: %v", err)
		}
	})
}

// FuzzReadGDSLayout layers the layout importer on top of the raw
// reader: FromGDS must reject without panicking whatever Read lets
// through (degenerate rings, bad transforms, missing tops).
func FuzzReadGDSLayout(f *testing.F) {
	for _, s := range seedStreams(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ly, err := layout.ReadGDS(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ly == nil {
			t.Fatal("nil layout with nil error")
		}
	})
}
