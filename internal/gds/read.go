package gds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"goopc/internal/geom"
)

// ErrCorrupt wraps all structural read failures.
var ErrCorrupt = errors.New("gds: corrupt stream")

// record is one decoded GDSII record; off is its byte offset in the
// stream, carried so higher-level validation can report locations.
type record struct {
	typ  RecordType
	dt   DataType
	data []byte
	off  int64
}

// recordReader pulls records off a stream with validation.
type recordReader struct {
	r   *bufio.Reader
	buf []byte
	// Bytes counts total stream bytes consumed, for stats.
	Bytes int64
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// errAt wraps a structural failure with the byte offset of the record
// it occurred in, so a corrupt multi-gigabyte stream is debuggable.
func (rr *recordReader) errAt(off int64, format string, args ...any) error {
	return fmt.Errorf("%w: at byte %d: %s", ErrCorrupt, off, fmt.Sprintf(format, args...))
}

// dtSize is the element size each data type must align to; 0 means no
// alignment constraint (bit arrays and ASCII pad freely).
func dtSize(dt DataType) int {
	switch dt {
	case DTInt16:
		return 2
	case DTInt32, DTReal4:
		return 4
	case DTReal8:
		return 8
	}
	return 0
}

// next reads one record. io.EOF is returned only at a clean record
// boundary.
func (rr *recordReader) next() (record, error) {
	off := rr.Bytes
	var hdr [4]byte
	if _, err := io.ReadFull(rr.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, rr.errAt(off, "header: %v", err)
	}
	if _, err := io.ReadFull(rr.r, hdr[1:]); err != nil {
		return record{}, rr.errAt(off, "truncated header: %v", err)
	}
	length := int(binary.BigEndian.Uint16(hdr[:2]))
	typ := RecordType(hdr[2])
	dt := DataType(hdr[3])
	if length < 4 {
		// Some writers pad the stream tail with zero words.
		if length == 0 && typ == 0 && dt == 0 {
			return record{}, io.EOF
		}
		return record{}, rr.errAt(off, "record %v length %d", typ, length)
	}
	n := length - 4
	if sz := dtSize(dt); sz > 0 && n%sz != 0 {
		return record{}, rr.errAt(off, "record %v: %d body bytes not a multiple of %d-byte %v", typ, n, sz, dt)
	}
	// The 16-bit length field caps n at 65531, so this buffer — the only
	// allocation sized from untrusted input before validation — is
	// bounded regardless of stream content.
	if cap(rr.buf) < n {
		rr.buf = make([]byte, n)
	}
	data := rr.buf[:n]
	if _, err := io.ReadFull(rr.r, data); err != nil {
		return record{}, rr.errAt(off, "record %v body: %v", typ, err)
	}
	if want, ok := expectedDT[typ]; ok && dt != want {
		return record{}, rr.errAt(off, "record %v has data type %v, want %v", typ, dt, want)
	}
	rr.Bytes += int64(length)
	return record{typ, dt, data, off}, nil
}

func (r record) int16s() []int16 {
	out := make([]int16, len(r.data)/2)
	for i := range out {
		out[i] = int16(binary.BigEndian.Uint16(r.data[2*i:]))
	}
	return out
}

func (r record) int32s() []int32 {
	out := make([]int32, len(r.data)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(r.data[4*i:]))
	}
	return out
}

func (r record) real8s() []float64 {
	out := make([]float64, len(r.data)/8)
	for i := range out {
		var b [8]byte
		copy(b[:], r.data[8*i:])
		out[i] = Real8Decode(b)
	}
	return out
}

func (r record) str() string {
	b := r.data
	// ASCII records are padded to even length with a NUL.
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

func (r record) points() []geom.Point {
	vals := r.int32s()
	out := make([]geom.Point, len(vals)/2)
	for i := range out {
		out[i] = geom.Pt(vals[2*i], vals[2*i+1])
	}
	return out
}

// Read parses a GDSII stream into a Library.
func Read(r io.Reader) (*Library, error) {
	rr := newRecordReader(r)
	lib := NewLibrary("")
	sawHeader := false
	var cur *Struct

	for {
		rec, err := rr.next()
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing ENDLIB", ErrCorrupt)
		}
		if err != nil {
			return nil, err
		}
		switch rec.typ {
		case RecHeader:
			sawHeader = true
		case RecBgnLib:
			// timestamps ignored
		case RecLibName:
			lib.Name = rec.str()
		case RecUnits:
			u := rec.real8s()
			if len(u) != 2 {
				return nil, rr.errAt(rec.off, "UNITS has %d reals", len(u))
			}
			// Bounds cover every plausible unit system with orders of
			// magnitude to spare; beyond them lies corruption (and
			// REAL8 exponent underflow on rewrite).
			const unitMin, unitMax = 1e-30, 1e30
			for _, v := range u {
				if !(v >= unitMin && v <= unitMax) {
					return nil, rr.errAt(rec.off, "UNITS out of range: %g, %g", u[0], u[1])
				}
			}
			lib.UserUnit, lib.MeterUnit = u[0], u[1]
		case RecBgnStr:
			cur = nil // name comes in STRNAME
		case RecStrName:
			name := rec.str()
			if name == "" {
				return nil, rr.errAt(rec.off, "empty STRNAME")
			}
			cur = lib.AddStruct(name)
		case RecEndStr:
			cur = nil
		case RecEndLib:
			if !sawHeader {
				return nil, rr.errAt(rec.off, "missing HEADER")
			}
			return lib, nil
		case RecBoundary, RecPath, RecSRef, RecARef, RecText, RecBox, RecNode:
			if cur == nil {
				return nil, rr.errAt(rec.off, "element %v outside structure", rec.typ)
			}
			el, err := readElement(rr, rec.typ, rec.off)
			if err != nil {
				return nil, err
			}
			if el != nil {
				cur.Add(el)
			}
		default:
			// Skip records we do not model (REFLIBS, FONTS, ...).
		}
	}
}

// maxXYPoints caps coordinate lists; the historical GDSII boundary
// limit is 8191 vertices and the 16-bit record length cannot encode
// more pairs than that anyway, so anything larger is corruption.
const maxXYPoints = 8191

// readElement consumes records up to ENDEL and builds the element.
// BOX and NODE elements are consumed and dropped (nil element).
func readElement(rr *recordReader, kind RecordType, start int64) (Element, error) {
	var (
		layer, dtype, ttype, ptype, btype int16
		width                             int32
		xy                                []geom.Point
		sname, text                       string
		strans                            Strans
		cols, rows                        int16
		props                             []Property
		pendingAttr                       int16
		havePending                       bool
	)
	for {
		rec, err := rr.next()
		if err != nil {
			return nil, rr.errAt(start, "inside %v element: %v", kind, err)
		}
		switch rec.typ {
		case RecEndEl:
			el, err := buildElement(kind, layer, dtype, ttype, ptype, btype, width, xy, sname, text, strans, cols, rows, props)
			if err != nil {
				return nil, rr.errAt(start, "%v", err)
			}
			return el, nil
		case RecLayer:
			layer = first16(rec)
		case RecDataType:
			dtype = first16(rec)
		case RecTextType:
			ttype = first16(rec)
		case RecPathType:
			ptype = first16(rec)
		case RecWidth:
			v := rec.int32s()
			if len(v) > 0 {
				width = v[0]
			}
		case RecXY:
			vals := rec.int32s()
			if len(vals)%2 != 0 {
				return nil, rr.errAt(rec.off, "XY has %d values (odd)", len(vals))
			}
			if len(vals)/2 > maxXYPoints {
				return nil, rr.errAt(rec.off, "XY has %d points, max %d", len(vals)/2, maxXYPoints)
			}
			xy = rec.points()
		case RecSName:
			sname = rec.str()
		case RecString:
			text = rec.str()
		case RecSTrans:
			if len(rec.data) >= 2 {
				strans.Reflect = rec.data[0]&0x80 != 0
			}
		case RecMag:
			v := rec.real8s()
			if len(v) > 0 {
				strans.Mag = v[0]
			}
		case RecAngle:
			v := rec.real8s()
			if len(v) > 0 {
				strans.Angle = v[0]
			}
		case RecColRow:
			v := rec.int16s()
			if len(v) != 2 {
				return nil, rr.errAt(rec.off, "COLROW has %d values", len(v))
			}
			if v[0] <= 0 || v[1] <= 0 {
				return nil, rr.errAt(rec.off, "COLROW %dx%d not positive", v[0], v[1])
			}
			cols, rows = v[0], v[1]
		case RecBoxType:
			btype = first16(rec)
		case RecPropAttr:
			pendingAttr = first16(rec)
			havePending = true
		case RecPropValue:
			if havePending {
				props = append(props, Property{Attr: pendingAttr, Value: rec.str()})
				havePending = false
			}
		default:
			// ELFLAGS, PLEX: skipped.
		}
	}
}

func first16(rec record) int16 {
	v := rec.int16s()
	if len(v) > 0 {
		return v[0]
	}
	return 0
}

func buildElement(kind RecordType, layer, dtype, ttype, ptype, btype int16, width int32,
	xy []geom.Point, sname, text string, strans Strans, cols, rows int16, props []Property) (Element, error) {
	switch kind {
	case RecBoundary:
		if len(xy) < 4 {
			return nil, fmt.Errorf("boundary with %d points", len(xy))
		}
		ring := geom.Polygon(xy)
		if ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1] // strip GDSII closing point
		}
		return &Boundary{Layer: layer, DataType: dtype, XY: ring.Clone(), Props: props}, nil
	case RecPath:
		if len(xy) < 2 {
			return nil, fmt.Errorf("path with %d points", len(xy))
		}
		pts := make([]geom.Point, len(xy))
		copy(pts, xy)
		return &Path{Layer: layer, DataType: dtype, PathType: ptype, Width: width, XY: pts, Props: props}, nil
	case RecSRef:
		if sname == "" || len(xy) < 1 {
			return nil, fmt.Errorf("SREF missing name or origin")
		}
		return &SRef{Name: sname, Strans: strans, Origin: xy[0]}, nil
	case RecARef:
		if sname == "" || len(xy) != 3 || cols <= 0 || rows <= 0 {
			return nil, fmt.Errorf("AREF needs SNAME, COLROW and 3 XY points")
		}
		origin := xy[0]
		colStep := geom.Pt((xy[1].X-origin.X)/int32(cols), (xy[1].Y-origin.Y)/int32(cols))
		rowStep := geom.Pt((xy[2].X-origin.X)/int32(rows), (xy[2].Y-origin.Y)/int32(rows))
		return &ARef{
			Name: sname, Strans: strans, Cols: cols, Rows: rows,
			Origin: origin, ColStep: colStep, RowStep: rowStep,
		}, nil
	case RecText:
		if len(xy) < 1 {
			return nil, fmt.Errorf("TEXT missing origin")
		}
		return &Text{Layer: layer, TextType: ttype, Origin: xy[0], Strans: strans, String: text}, nil
	case RecBox:
		if len(xy) < 4 {
			return nil, fmt.Errorf("box with %d points", len(xy))
		}
		ring := geom.Polygon(xy)
		if ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1]
		}
		return &Box{Layer: layer, BoxType: btype, XY: ring.Clone(), Props: props}, nil
	case RecNode:
		return nil, nil // consumed, not modeled
	}
	return nil, fmt.Errorf("unexpected element kind %v", kind)
}
