package gds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"goopc/internal/geom"
)

// ErrCorrupt wraps all structural read failures.
var ErrCorrupt = errors.New("gds: corrupt stream")

// record is one decoded GDSII record.
type record struct {
	typ  RecordType
	dt   DataType
	data []byte
}

// recordReader pulls records off a stream with validation.
type recordReader struct {
	r   *bufio.Reader
	buf []byte
	// Bytes counts total stream bytes consumed, for stats.
	Bytes int64
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// next reads one record. io.EOF is returned only at a clean record
// boundary.
func (rr *recordReader) next() (record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rr.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(rr.r, hdr[1:]); err != nil {
		return record{}, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	length := int(binary.BigEndian.Uint16(hdr[:2]))
	typ := RecordType(hdr[2])
	dt := DataType(hdr[3])
	if length < 4 {
		// Some writers pad the stream tail with zero words.
		if length == 0 && typ == 0 && dt == 0 {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: record %v length %d", ErrCorrupt, typ, length)
	}
	n := length - 4
	if cap(rr.buf) < n {
		rr.buf = make([]byte, n)
	}
	data := rr.buf[:n]
	if _, err := io.ReadFull(rr.r, data); err != nil {
		return record{}, fmt.Errorf("%w: record %v body: %v", ErrCorrupt, typ, err)
	}
	if want, ok := expectedDT[typ]; ok && dt != want {
		return record{}, fmt.Errorf("%w: record %v has data type %v, want %v", ErrCorrupt, typ, dt, want)
	}
	rr.Bytes += int64(length)
	return record{typ, dt, data}, nil
}

func (r record) int16s() []int16 {
	out := make([]int16, len(r.data)/2)
	for i := range out {
		out[i] = int16(binary.BigEndian.Uint16(r.data[2*i:]))
	}
	return out
}

func (r record) int32s() []int32 {
	out := make([]int32, len(r.data)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(r.data[4*i:]))
	}
	return out
}

func (r record) real8s() []float64 {
	out := make([]float64, len(r.data)/8)
	for i := range out {
		var b [8]byte
		copy(b[:], r.data[8*i:])
		out[i] = Real8Decode(b)
	}
	return out
}

func (r record) str() string {
	b := r.data
	// ASCII records are padded to even length with a NUL.
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

func (r record) points() []geom.Point {
	vals := r.int32s()
	out := make([]geom.Point, len(vals)/2)
	for i := range out {
		out[i] = geom.Pt(vals[2*i], vals[2*i+1])
	}
	return out
}

// Read parses a GDSII stream into a Library.
func Read(r io.Reader) (*Library, error) {
	rr := newRecordReader(r)
	lib := NewLibrary("")
	sawHeader := false
	var cur *Struct

	for {
		rec, err := rr.next()
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing ENDLIB", ErrCorrupt)
		}
		if err != nil {
			return nil, err
		}
		switch rec.typ {
		case RecHeader:
			sawHeader = true
		case RecBgnLib:
			// timestamps ignored
		case RecLibName:
			lib.Name = rec.str()
		case RecUnits:
			u := rec.real8s()
			if len(u) != 2 {
				return nil, fmt.Errorf("%w: UNITS has %d reals", ErrCorrupt, len(u))
			}
			lib.UserUnit, lib.MeterUnit = u[0], u[1]
		case RecBgnStr:
			cur = nil // name comes in STRNAME
		case RecStrName:
			cur = lib.AddStruct(rec.str())
		case RecEndStr:
			cur = nil
		case RecEndLib:
			if !sawHeader {
				return nil, fmt.Errorf("%w: missing HEADER", ErrCorrupt)
			}
			return lib, nil
		case RecBoundary, RecPath, RecSRef, RecARef, RecText, RecBox, RecNode:
			if cur == nil {
				return nil, fmt.Errorf("%w: element %v outside structure", ErrCorrupt, rec.typ)
			}
			el, err := readElement(rr, rec.typ)
			if err != nil {
				return nil, err
			}
			if el != nil {
				cur.Add(el)
			}
		default:
			// Skip records we do not model (REFLIBS, FONTS, ...).
		}
	}
}

// readElement consumes records up to ENDEL and builds the element.
// BOX and NODE elements are consumed and dropped (nil element).
func readElement(rr *recordReader, kind RecordType) (Element, error) {
	var (
		layer, dtype, ttype, ptype, btype int16
		width                             int32
		xy                                []geom.Point
		sname, text                       string
		strans                            Strans
		cols, rows                        int16
		props                             []Property
		pendingAttr                       int16
		havePending                       bool
	)
	for {
		rec, err := rr.next()
		if err != nil {
			return nil, fmt.Errorf("%w: inside %v element", ErrCorrupt, kind)
		}
		switch rec.typ {
		case RecEndEl:
			return buildElement(kind, layer, dtype, ttype, ptype, btype, width, xy, sname, text, strans, cols, rows, props)
		case RecLayer:
			layer = first16(rec)
		case RecDataType:
			dtype = first16(rec)
		case RecTextType:
			ttype = first16(rec)
		case RecPathType:
			ptype = first16(rec)
		case RecWidth:
			v := rec.int32s()
			if len(v) > 0 {
				width = v[0]
			}
		case RecXY:
			xy = rec.points()
		case RecSName:
			sname = rec.str()
		case RecString:
			text = rec.str()
		case RecSTrans:
			if len(rec.data) >= 2 {
				strans.Reflect = rec.data[0]&0x80 != 0
			}
		case RecMag:
			v := rec.real8s()
			if len(v) > 0 {
				strans.Mag = v[0]
			}
		case RecAngle:
			v := rec.real8s()
			if len(v) > 0 {
				strans.Angle = v[0]
			}
		case RecColRow:
			v := rec.int16s()
			if len(v) != 2 {
				return nil, fmt.Errorf("%w: COLROW has %d values", ErrCorrupt, len(v))
			}
			cols, rows = v[0], v[1]
		case RecBoxType:
			btype = first16(rec)
		case RecPropAttr:
			pendingAttr = first16(rec)
			havePending = true
		case RecPropValue:
			if havePending {
				props = append(props, Property{Attr: pendingAttr, Value: rec.str()})
				havePending = false
			}
		default:
			// ELFLAGS, PLEX: skipped.
		}
	}
}

func first16(rec record) int16 {
	v := rec.int16s()
	if len(v) > 0 {
		return v[0]
	}
	return 0
}

func buildElement(kind RecordType, layer, dtype, ttype, ptype, btype int16, width int32,
	xy []geom.Point, sname, text string, strans Strans, cols, rows int16, props []Property) (Element, error) {
	switch kind {
	case RecBoundary:
		if len(xy) < 4 {
			return nil, fmt.Errorf("%w: boundary with %d points", ErrCorrupt, len(xy))
		}
		ring := geom.Polygon(xy)
		if ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1] // strip GDSII closing point
		}
		return &Boundary{Layer: layer, DataType: dtype, XY: ring.Clone(), Props: props}, nil
	case RecPath:
		if len(xy) < 2 {
			return nil, fmt.Errorf("%w: path with %d points", ErrCorrupt, len(xy))
		}
		pts := make([]geom.Point, len(xy))
		copy(pts, xy)
		return &Path{Layer: layer, DataType: dtype, PathType: ptype, Width: width, XY: pts, Props: props}, nil
	case RecSRef:
		if sname == "" || len(xy) < 1 {
			return nil, fmt.Errorf("%w: SREF missing name or origin", ErrCorrupt)
		}
		return &SRef{Name: sname, Strans: strans, Origin: xy[0]}, nil
	case RecARef:
		if sname == "" || len(xy) != 3 || cols <= 0 || rows <= 0 {
			return nil, fmt.Errorf("%w: AREF needs SNAME, COLROW and 3 XY points", ErrCorrupt)
		}
		origin := xy[0]
		colStep := geom.Pt((xy[1].X-origin.X)/int32(cols), (xy[1].Y-origin.Y)/int32(cols))
		rowStep := geom.Pt((xy[2].X-origin.X)/int32(rows), (xy[2].Y-origin.Y)/int32(rows))
		return &ARef{
			Name: sname, Strans: strans, Cols: cols, Rows: rows,
			Origin: origin, ColStep: colStep, RowStep: rowStep,
		}, nil
	case RecText:
		if len(xy) < 1 {
			return nil, fmt.Errorf("%w: TEXT missing origin", ErrCorrupt)
		}
		return &Text{Layer: layer, TextType: ttype, Origin: xy[0], Strans: strans, String: text}, nil
	case RecBox:
		if len(xy) < 4 {
			return nil, fmt.Errorf("%w: box with %d points", ErrCorrupt, len(xy))
		}
		ring := geom.Polygon(xy)
		if ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1]
		}
		return &Box{Layer: layer, BoxType: btype, XY: ring.Clone(), Props: props}, nil
	case RecNode:
		return nil, nil // consumed, not modeled
	}
	return nil, fmt.Errorf("%w: unexpected element kind %v", ErrCorrupt, kind)
}
