package gds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"goopc/internal/geom"
)

// maxXYPerRecord bounds the points in one XY record. The GDSII record
// length field is 16 bits, giving at most 8191 coordinate pairs; the
// historical limit for boundaries is 8191 vertices but many tools cap at
// 8000. Boundaries larger than this are rejected (mask flows fracture
// them first).
const maxXYPerRecord = 8000

// recordWriter emits records and counts bytes.
type recordWriter struct {
	w     *bufio.Writer
	Bytes int64
	err   error
}

func newRecordWriter(w io.Writer) *recordWriter {
	return &recordWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (rw *recordWriter) rec(t RecordType, dt DataType, data []byte) {
	if rw.err != nil {
		return
	}
	n := len(data) + 4
	if n > 0xFFFF {
		rw.err = fmt.Errorf("gds: record %v too long (%d bytes)", t, n)
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[:2], uint16(n))
	hdr[2] = byte(t)
	hdr[3] = byte(dt)
	if _, err := rw.w.Write(hdr[:]); err != nil {
		rw.err = err
		return
	}
	if _, err := rw.w.Write(data); err != nil {
		rw.err = err
		return
	}
	rw.Bytes += int64(n)
}

func (rw *recordWriter) none(t RecordType) { rw.rec(t, DTNone, nil) }

func (rw *recordWriter) i16(t RecordType, vals ...int16) {
	b := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(b[2*i:], uint16(v))
	}
	rw.rec(t, DTInt16, b)
}

func (rw *recordWriter) i32(t RecordType, vals ...int32) {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
	rw.rec(t, DTInt32, b)
}

func (rw *recordWriter) r8(t RecordType, vals ...float64) {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		e := Real8Encode(v)
		copy(b[8*i:], e[:])
	}
	rw.rec(t, DTReal8, b)
}

func (rw *recordWriter) ascii(t RecordType, s string) {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0)
	}
	rw.rec(t, DTASCII, b)
}

func (rw *recordWriter) xy(pts []geom.Point) {
	vals := make([]int32, 0, 2*len(pts))
	for _, p := range pts {
		vals = append(vals, p.X, p.Y)
	}
	rw.i32(RecXY, vals...)
}

// fixedStamp is the BGNLIB/BGNSTR timestamp written to every stream.
// A constant stamp keeps output byte-for-byte reproducible, which the
// data-volume experiments depend on.
var fixedStamp = []int16{2001, 6, 18, 12, 0, 0, 2001, 6, 18, 12, 0, 0}

// Write serializes the library as a GDSII stream and returns the number
// of bytes written. The byte count is the exact mask-data volume used by
// the impact experiments.
func Write(w io.Writer, lib *Library) (int64, error) {
	rw := newRecordWriter(w)
	rw.i16(RecHeader, 600) // stream version 6
	rw.i16(RecBgnLib, fixedStamp...)
	name := lib.Name
	if name == "" {
		name = "LIB"
	}
	rw.ascii(RecLibName, name)
	uu, mu := lib.UserUnit, lib.MeterUnit
	if uu == 0 {
		uu = 1e-3
	}
	if mu == 0 {
		mu = 1e-9
	}
	rw.r8(RecUnits, uu, mu)
	for _, s := range lib.Structs {
		if err := writeStruct(rw, s); err != nil {
			return rw.Bytes, err
		}
	}
	rw.none(RecEndLib)
	if rw.err != nil {
		return rw.Bytes, rw.err
	}
	if err := rw.w.Flush(); err != nil {
		return rw.Bytes, err
	}
	return rw.Bytes, nil
}

func writeStruct(rw *recordWriter, s *Struct) error {
	rw.i16(RecBgnStr, fixedStamp...)
	rw.ascii(RecStrName, s.Name)
	for _, el := range s.Elements {
		switch e := el.(type) {
		case *Boundary:
			if len(e.XY) < 3 {
				return fmt.Errorf("gds: boundary in %q has %d vertices", s.Name, len(e.XY))
			}
			if len(e.XY)+1 > maxXYPerRecord {
				return fmt.Errorf("gds: boundary in %q has %d vertices, exceeds format limit", s.Name, len(e.XY))
			}
			rw.none(RecBoundary)
			rw.i16(RecLayer, e.Layer)
			rw.i16(RecDataType, e.DataType)
			ring := append([]geom.Point{}, e.XY...)
			ring = append(ring, e.XY[0]) // GDSII closes explicitly
			rw.xy(ring)
			writeProps(rw, e.Props)
			rw.none(RecEndEl)
		case *Path:
			rw.none(RecPath)
			rw.i16(RecLayer, e.Layer)
			rw.i16(RecDataType, e.DataType)
			if e.PathType != 0 {
				rw.i16(RecPathType, e.PathType)
			}
			rw.i32(RecWidth, e.Width)
			rw.xy(e.XY)
			writeProps(rw, e.Props)
			rw.none(RecEndEl)
		case *Box:
			if len(e.XY) != 4 {
				return fmt.Errorf("gds: box in %q has %d vertices", s.Name, len(e.XY))
			}
			rw.none(RecBox)
			rw.i16(RecLayer, e.Layer)
			rw.i16(RecBoxType, e.BoxType)
			ring := append([]geom.Point{}, e.XY...)
			ring = append(ring, e.XY[0])
			rw.xy(ring)
			writeProps(rw, e.Props)
			rw.none(RecEndEl)
		case *SRef:
			rw.none(RecSRef)
			rw.ascii(RecSName, e.Name)
			writeStrans(rw, e.Strans)
			rw.xy([]geom.Point{e.Origin})
			rw.none(RecEndEl)
		case *ARef:
			rw.none(RecARef)
			rw.ascii(RecSName, e.Name)
			writeStrans(rw, e.Strans)
			rw.i16(RecColRow, e.Cols, e.Rows)
			p1 := geom.Pt(e.Origin.X+e.ColStep.X*int32(e.Cols), e.Origin.Y+e.ColStep.Y*int32(e.Cols))
			p2 := geom.Pt(e.Origin.X+e.RowStep.X*int32(e.Rows), e.Origin.Y+e.RowStep.Y*int32(e.Rows))
			rw.xy([]geom.Point{e.Origin, p1, p2})
			rw.none(RecEndEl)
		case *Text:
			rw.none(RecText)
			rw.i16(RecLayer, e.Layer)
			rw.i16(RecTextType, e.TextType)
			writeStrans(rw, e.Strans)
			rw.xy([]geom.Point{e.Origin})
			rw.ascii(RecString, e.String)
			rw.none(RecEndEl)
		default:
			return fmt.Errorf("gds: unsupported element %T in %q", el, s.Name)
		}
	}
	rw.none(RecEndStr)
	return rw.err
}

func writeProps(rw *recordWriter, props []Property) {
	for _, p := range props {
		rw.i16(RecPropAttr, p.Attr)
		rw.ascii(RecPropValue, p.Value)
	}
}

func writeStrans(rw *recordWriter, s Strans) {
	if !s.Reflect && s.Mag == 0 && s.Angle == 0 {
		return
	}
	var bits [2]byte
	if s.Reflect {
		bits[0] = 0x80
	}
	rw.rec(RecSTrans, DTBitArray, bits[:])
	if s.Mag != 0 && s.Mag != 1 {
		rw.r8(RecMag, s.Mag)
	}
	if s.Angle != 0 {
		rw.r8(RecAngle, s.Angle)
	}
}
