package gds

import (
	"errors"
	"fmt"
	"math"

	"goopc/internal/geom"
)

// Library is an in-memory GDSII library: named structures plus the unit
// header. The database unit convention across this repository is
// 1 DBU = 1 nm, i.e. UserUnit = 1e-3 (µm per DBU) and MeterUnit = 1e-9.
type Library struct {
	Name string
	// UserUnit is the size of a database unit in user units.
	UserUnit float64
	// MeterUnit is the size of a database unit in meters.
	MeterUnit float64
	Structs   []*Struct

	byName map[string]*Struct
}

// NewLibrary creates a library with the repository's nm database unit.
func NewLibrary(name string) *Library {
	return &Library{
		Name:      name,
		UserUnit:  1e-3,
		MeterUnit: 1e-9,
		byName:    map[string]*Struct{},
	}
}

// AddStruct creates (or returns the existing) structure with the name.
func (l *Library) AddStruct(name string) *Struct {
	if l.byName == nil {
		l.byName = map[string]*Struct{}
	}
	if s, ok := l.byName[name]; ok {
		return s
	}
	s := &Struct{Name: name}
	l.Structs = append(l.Structs, s)
	l.byName[name] = s
	return s
}

// Struct looks up a structure by name; nil when absent.
func (l *Library) Struct(name string) *Struct {
	if l.byName == nil {
		l.byName = map[string]*Struct{}
		for _, s := range l.Structs {
			l.byName[s.Name] = s
		}
	}
	return l.byName[name]
}

// maxRefDepth caps the structure reference hierarchy. Real layouts are
// a few dozen levels deep; the cap exists so a hostile or corrupt
// library (a chain of thousands of single-child structs) cannot
// overflow the stack during validation or flattening.
const maxRefDepth = 1024

// Validate checks referential integrity: every SREF/AREF target exists,
// no structure participates in a reference cycle, and the hierarchy is
// no deeper than maxRefDepth.
func (l *Library) Validate() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(s *Struct, depth int) error
	visit = func(s *Struct, depth int) error {
		if depth > maxRefDepth {
			return fmt.Errorf("gds: reference hierarchy deeper than %d at %q", maxRefDepth, s.Name)
		}
		color[s.Name] = gray
		for _, el := range s.Elements {
			var target string
			switch e := el.(type) {
			case *SRef:
				target = e.Name
			case *ARef:
				target = e.Name
			default:
				continue
			}
			child := l.Struct(target)
			if child == nil {
				return fmt.Errorf("gds: structure %q references missing %q", s.Name, target)
			}
			switch color[child.Name] {
			case gray:
				return fmt.Errorf("gds: reference cycle through %q", child.Name)
			case white:
				if err := visit(child, depth+1); err != nil {
					return err
				}
			}
		}
		color[s.Name] = black
		return nil
	}
	for _, s := range l.Structs {
		if color[s.Name] == white {
			if err := visit(s, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// Struct is one GDSII structure (a cell).
type Struct struct {
	Name     string
	Elements []Element
}

// Add appends an element to the structure.
func (s *Struct) Add(e Element) { s.Elements = append(s.Elements, e) }

// Element is any GDSII element this library models.
type Element interface {
	element()
}

// Property is one PROPATTR/PROPVALUE pair attached to an element.
type Property struct {
	Attr  int16
	Value string
}

// Boundary is a filled polygon on a layer. XY holds the ring without the
// GDSII closing point; the writer adds it and the reader strips it.
type Boundary struct {
	Layer    int16
	DataType int16
	XY       geom.Polygon
	Props    []Property
}

// Path is a wire with a width, drawn along a centerline.
type Path struct {
	Layer    int16
	DataType int16
	PathType int16 // 0 flush, 1 round (approximated square on read), 2 extended
	Width    int32
	XY       []geom.Point
	Props    []Property
}

// Box is the GDSII BOX element: an annotation rectangle that carries no
// mask data but survives round trips.
type Box struct {
	Layer   int16
	BoxType int16
	XY      geom.Polygon // 4-vertex ring (closing point stripped)
	Props   []Property
}

// SRef places one instance of a named structure.
type SRef struct {
	Name   string
	Strans Strans
	Origin geom.Point
}

// ARef places a Cols x Rows array of a named structure. ColStep and
// RowStep are the per-column and per-row displacement vectors (the GDSII
// file stores the two far lattice corner points; the reader divides).
type ARef struct {
	Name       string
	Strans     Strans
	Cols, Rows int16
	Origin     geom.Point
	ColStep    geom.Point
	RowStep    geom.Point
}

// Text is an annotation label.
type Text struct {
	Layer    int16
	TextType int16
	Origin   geom.Point
	Strans   Strans
	String   string
}

func (*Boundary) element() {}
func (*Path) element()     {}
func (*SRef) element()     {}
func (*ARef) element()     {}
func (*Text) element()     {}
func (*Box) element()      {}

// Strans is the GDSII placement transform: reflect about X (before
// rotation), magnification, and CCW rotation in degrees.
type Strans struct {
	Reflect bool
	Mag     float64 // 0 means 1.0
	Angle   float64 // degrees CCW
}

// ErrOffAxisAngle is returned when a placement angle is not a multiple of
// 90 degrees; the Manhattan geometry engine cannot represent it.
var ErrOffAxisAngle = errors.New("gds: placement angle not a multiple of 90 degrees")

// Orient converts the transform to a geom.Orient. Only right angles are
// representable.
func (s Strans) Orient() (geom.Orient, error) {
	a := math.Mod(s.Angle, 360)
	if a < 0 {
		a += 360
	}
	q := int(math.Round(a / 90))
	if math.Abs(a-float64(q)*90) > 1e-6 {
		return geom.R0, fmt.Errorf("%w: %v", ErrOffAxisAngle, s.Angle)
	}
	q %= 4
	// GDSII applies reflection about the X axis first, then rotation —
	// exactly geom's MX-then-rotate convention.
	o := geom.Orient(q)
	if s.Reflect {
		o += geom.MX
	}
	return o, nil
}

// Xform converts the transform plus an origin to a geom.Xform. The
// magnification must be a positive integer in DBU geometry.
func (s Strans) Xform(origin geom.Point) (geom.Xform, error) {
	o, err := s.Orient()
	if err != nil {
		return geom.Xform{}, err
	}
	mag := geom.Coord(1)
	if s.Mag != 0 {
		m := math.Round(s.Mag)
		if m < 1 || math.Abs(s.Mag-m) > 1e-9 {
			return geom.Xform{}, fmt.Errorf("gds: non-integer magnification %v", s.Mag)
		}
		mag = geom.Coord(m)
	}
	return geom.Xform{Orient: o, Mag: mag, Offset: origin}, nil
}

// StransFromOrient builds the GDSII transform encoding a geom.Orient.
func StransFromOrient(o geom.Orient) Strans {
	return Strans{
		Reflect: o.Mirrored(),
		Angle:   float64(o.AngleDeg()),
	}
}

// Outline returns the polygon a path expands to: each segment becomes a
// rectangle of the path width, unioned; PathType 2 extends the ends by
// half the width. Only Manhattan centerlines are supported.
func (p *Path) Outline() ([]geom.Polygon, error) {
	if p.Width <= 0 || len(p.XY) < 2 {
		return nil, fmt.Errorf("gds: path needs width and >=2 points")
	}
	half := geom.Coord(p.Width / 2)
	ext := geom.Coord(0)
	if p.PathType == 2 || p.PathType == 1 {
		ext = half // round ends approximated as square extensions
	}
	var rects []geom.Rect
	for i := 0; i+1 < len(p.XY); i++ {
		a, b := p.XY[i], p.XY[i+1]
		switch {
		case a.Y == b.Y && a.X != b.X: // horizontal
			x0, x1 := a.X, b.X
			if x0 > x1 {
				x0, x1 = x1, x0
			}
			e0, e1 := geom.Coord(0), geom.Coord(0)
			if i == 0 {
				e0 = ext
			}
			if i+2 == len(p.XY) {
				e1 = ext
			}
			if a.X > b.X {
				e0, e1 = e1, e0
			}
			rects = append(rects, geom.R(x0-e0, a.Y-half, x1+e1, a.Y+half))
		case a.X == b.X && a.Y != b.Y: // vertical
			y0, y1 := a.Y, b.Y
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			e0, e1 := geom.Coord(0), geom.Coord(0)
			if i == 0 {
				e0 = ext
			}
			if i+2 == len(p.XY) {
				e1 = ext
			}
			if a.Y > b.Y {
				e0, e1 = e1, e0
			}
			rects = append(rects, geom.R(a.X-half, y0-e0, a.X+half, y1+e1))
		default:
			return nil, fmt.Errorf("gds: non-Manhattan path segment %v->%v", a, b)
		}
		// Square joints: corner fill comes from the union of overlapping
		// segment rectangles, which the half-width overlap provides when
		// consecutive segments turn. Add an explicit joint square so
		// flush-ended (PathType 0) corners are filled too.
		if i+2 < len(p.XY) {
			rects = append(rects, geom.R(b.X-half, b.Y-half, b.X+half, b.Y+half))
		}
	}
	return geom.RegionFromRects(rects...).Polygons(), nil
}
