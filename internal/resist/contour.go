package resist

import (
	"math"

	"goopc/internal/geom"
	"goopc/internal/optics"
)

// FPoint is a sub-pixel contour vertex in nm coordinates.
type FPoint struct {
	X, Y float64
}

// Contour is one closed printed-edge loop extracted from an aerial
// image at a threshold.
type Contour []FPoint

// Len returns the perimeter length of the contour in nm.
func (c Contour) Len() float64 {
	var s float64
	for i := range c {
		a, b := c[i], c[(i+1)%len(c)]
		s += math.Hypot(b.X-a.X, b.Y-a.Y)
	}
	return s
}

// BBox returns the contour bounding box.
func (c Contour) BBox() (x0, y0, x1, y1 float64) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, p := range c {
		x0 = math.Min(x0, p.X)
		y0 = math.Min(y0, p.Y)
		x1 = math.Max(x1, p.X)
		y1 = math.Max(y1, p.Y)
	}
	return
}

// Contours extracts the threshold iso-lines of the image within the
// window using marching squares with linear interpolation. Segments are
// chained into closed loops; loops cut off by the window border are
// closed along the border walk order and may be slightly open — callers
// using contours for metrology should size the window generously.
func Contours(im *optics.Image, th float64, window geom.Rect) []Contour {
	f := im.Frame
	ix0 := int((float64(window.X0) - f.OriginX) / f.PixelNM)
	ix1 := int((float64(window.X1)-f.OriginX)/f.PixelNM + 1)
	iy0 := int((float64(window.Y0) - f.OriginY) / f.PixelNM)
	iy1 := int((float64(window.Y1)-f.OriginY)/f.PixelNM + 1)
	if ix0 < 0 {
		ix0 = 0
	}
	if iy0 < 0 {
		iy0 = 0
	}
	if ix1 > f.W-2 {
		ix1 = f.W - 2
	}
	if iy1 > f.H-2 {
		iy1 = f.H - 2
	}
	if ix1 < ix0 || iy1 < iy0 {
		return nil
	}

	// Each marching-squares cell contributes 0..2 segments with
	// endpoints on cell edges. Key endpoints by (edge id) so loops can
	// be chained exactly.
	type ptKey struct {
		// Edge identified by its low cell corner and axis: horizontal
		// edges (axis 0) run from (x,y) to (x+1,y); vertical (axis 1)
		// from (x,y) to (x,y+1).
		x, y, axis int
	}
	type segment struct{ a, b ptKey }
	pos := map[ptKey]FPoint{}
	var segs []segment

	val := func(x, y int) float64 { return im.I[y*f.W+x] }
	interp := func(x0f, y0f, v0, x1f, y1f, v1 float64) FPoint {
		t := 0.5
		if v1 != v0 {
			t = (th - v0) / (v1 - v0)
		}
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		return FPoint{x0f + (x1f-x0f)*t, y0f + (y1f-y0f)*t}
	}

	for cy := iy0; cy <= iy1; cy++ {
		for cx := ix0; cx <= ix1; cx++ {
			v00 := val(cx, cy)
			v10 := val(cx+1, cy)
			v01 := val(cx, cy+1)
			v11 := val(cx+1, cy+1)
			var code int
			if v00 >= th {
				code |= 1
			}
			if v10 >= th {
				code |= 2
			}
			if v11 >= th {
				code |= 4
			}
			if v01 >= th {
				code |= 8
			}
			if code == 0 || code == 15 {
				continue
			}
			px := func(ix int) float64 { return f.OriginX + float64(ix)*f.PixelNM }
			py := func(iy int) float64 { return f.OriginY + float64(iy)*f.PixelNM }
			// Edge crossing points.
			bottom := ptKey{cx, cy, 0}
			top := ptKey{cx, cy + 1, 0}
			left := ptKey{cx, cy, 1}
			right := ptKey{cx + 1, cy, 1}
			setPt := func(k ptKey, p FPoint) { pos[k] = p }
			switch code {
			case 1, 14:
				setPt(bottom, interp(px(cx), py(cy), v00, px(cx+1), py(cy), v10))
				setPt(left, interp(px(cx), py(cy), v00, px(cx), py(cy+1), v01))
				segs = append(segs, segment{bottom, left})
			case 2, 13:
				setPt(bottom, interp(px(cx), py(cy), v00, px(cx+1), py(cy), v10))
				setPt(right, interp(px(cx+1), py(cy), v10, px(cx+1), py(cy+1), v11))
				segs = append(segs, segment{bottom, right})
			case 4, 11:
				setPt(right, interp(px(cx+1), py(cy), v10, px(cx+1), py(cy+1), v11))
				setPt(top, interp(px(cx), py(cy+1), v01, px(cx+1), py(cy+1), v11))
				segs = append(segs, segment{right, top})
			case 8, 7:
				setPt(left, interp(px(cx), py(cy), v00, px(cx), py(cy+1), v01))
				setPt(top, interp(px(cx), py(cy+1), v01, px(cx+1), py(cy+1), v11))
				segs = append(segs, segment{left, top})
			case 3, 12:
				setPt(left, interp(px(cx), py(cy), v00, px(cx), py(cy+1), v01))
				setPt(right, interp(px(cx+1), py(cy), v10, px(cx+1), py(cy+1), v11))
				segs = append(segs, segment{left, right})
			case 6, 9:
				setPt(bottom, interp(px(cx), py(cy), v00, px(cx+1), py(cy), v10))
				setPt(top, interp(px(cx), py(cy+1), v01, px(cx+1), py(cy+1), v11))
				segs = append(segs, segment{bottom, top})
			case 5, 10:
				// Saddle: resolve by the cell-center average.
				avg := (v00 + v10 + v01 + v11) / 4
				setPt(bottom, interp(px(cx), py(cy), v00, px(cx+1), py(cy), v10))
				setPt(top, interp(px(cx), py(cy+1), v01, px(cx+1), py(cy+1), v11))
				setPt(left, interp(px(cx), py(cy), v00, px(cx), py(cy+1), v01))
				setPt(right, interp(px(cx+1), py(cy), v10, px(cx+1), py(cy+1), v11))
				if (code == 5) == (avg >= th) {
					segs = append(segs, segment{bottom, right}, segment{left, top})
				} else {
					segs = append(segs, segment{bottom, left}, segment{right, top})
				}
			}
		}
	}

	// Chain segments into loops via endpoint adjacency.
	adj := map[ptKey][]int{}
	for i, s := range segs {
		adj[s.a] = append(adj[s.a], i)
		adj[s.b] = append(adj[s.b], i)
	}
	used := make([]bool, len(segs))
	var loops []Contour
	for start := range segs {
		if used[start] {
			continue
		}
		used[start] = true
		loop := []ptKey{segs[start].a, segs[start].b}
		for {
			cur := loop[len(loop)-1]
			var next = -1
			for _, si := range adj[cur] {
				if !used[si] {
					next = si
					break
				}
			}
			if next == -1 {
				break
			}
			used[next] = true
			if segs[next].a == cur {
				loop = append(loop, segs[next].b)
			} else {
				loop = append(loop, segs[next].a)
			}
		}
		if len(loop) >= 3 {
			c := make(Contour, 0, len(loop))
			// Drop the duplicated closing vertex when the loop closed.
			if loop[0] == loop[len(loop)-1] {
				loop = loop[:len(loop)-1]
			}
			for _, k := range loop {
				c = append(c, pos[k])
			}
			loops = append(loops, c)
		}
	}
	return loops
}
