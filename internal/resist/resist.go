// Package resist turns aerial images into printed geometry: constant-
// and diffused-threshold resist models, dose-to-size calibration,
// threshold-contour extraction (marching squares), and the CD / gap /
// edge-placement measurements the OPC loop and the verification engine
// are built on.
//
// Polarity convention: with a bright-field mask and positive resist the
// printed feature is the *dark* region of the aerial image (intensity
// below the threshold). All measurement helpers take the threshold
// explicitly so dark-field layers work the same way with the roles of
// inside/outside exchanged by the caller.
package resist

import (
	"errors"
	"fmt"
	"math"

	"goopc/internal/optics"
)

// Model is the resist response: an intensity threshold after optional
// acid-diffusion blur, with dose entering as a divisor on the threshold.
type Model struct {
	// Threshold is the develop threshold at nominal dose, on the
	// clear-field = 1.0 intensity scale.
	Threshold float64
	// Dose is the relative exposure dose (1.0 nominal). Doubling the
	// dose halves the effective threshold.
	Dose float64
	// DiffusionNM blurs the image with a Gaussian of this sigma before
	// thresholding (0 = pure constant-threshold resist).
	DiffusionNM float64
}

// DefaultModel returns a constant-threshold resist at 30% clear field.
func DefaultModel() Model { return Model{Threshold: 0.30, Dose: 1.0} }

// Effective returns the dose-scaled threshold.
func (m Model) Effective() float64 {
	d := m.Dose
	if d == 0 {
		d = 1
	}
	return m.Threshold / d
}

// Apply returns the image the model thresholds: the input unchanged for
// a constant-threshold model, or a diffused copy.
func (m Model) Apply(im *optics.Image) *optics.Image {
	if m.DiffusionNM <= 0 {
		return im
	}
	return Blur(im, m.DiffusionNM)
}

// Blur returns a copy of the image convolved with a Gaussian of the
// given sigma (nm), using a separable kernel truncated at 3 sigma.
func Blur(im *optics.Image, sigmaNM float64) *optics.Image {
	f := im.Frame
	sigmaPx := sigmaNM / f.PixelNM
	radius := int(math.Ceil(3 * sigmaPx))
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	var sum float64
	for i := range kernel {
		x := float64(i - radius)
		kernel[i] = math.Exp(-x * x / (2 * sigmaPx * sigmaPx))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	tmp := make([]float64, len(im.I))
	out := make([]float64, len(im.I))
	// Rows.
	for y := 0; y < f.H; y++ {
		row := im.I[y*f.W : (y+1)*f.W]
		dst := tmp[y*f.W : (y+1)*f.W]
		for x := 0; x < f.W; x++ {
			var v float64
			for k, w := range kernel {
				xx := x + k - radius
				if xx < 0 {
					xx = 0
				} else if xx >= f.W {
					xx = f.W - 1
				}
				v += w * row[xx]
			}
			dst[x] = v
		}
	}
	// Columns.
	for x := 0; x < f.W; x++ {
		for y := 0; y < f.H; y++ {
			var v float64
			for k, w := range kernel {
				yy := y + k - radius
				if yy < 0 {
					yy = 0
				} else if yy >= f.H {
					yy = f.H - 1
				}
				v += w * tmp[yy*f.W+x]
			}
			out[y*f.W+x] = v
		}
	}
	return &optics.Image{Frame: f, Window: im.Window, I: out}
}

// ErrNoEdge is returned when a measurement cannot find the expected
// threshold crossings.
var ErrNoEdge = errors.New("resist: no threshold crossing found")

// MeasureCD measures the printed width of a dark feature: from a point
// inside the feature, walk both ways along the cut direction to the
// threshold crossings. Returns the CD in nm.
func MeasureCD(im *optics.Image, th float64, cx, cy float64, horizontal bool, maxDist float64) (float64, error) {
	dx, dy := 1.0, 0.0
	if !horizontal {
		dx, dy = 0.0, 1.0
	}
	if im.At(cx, cy) >= th {
		return 0, fmt.Errorf("%w: start point (%.0f,%.0f) not inside a dark feature (I=%.3f >= %.3f)",
			ErrNoEdge, cx, cy, im.At(cx, cy), th)
	}
	dPlus, ok1 := im.FindCrossing(cx, cy, dx, dy, th, maxDist)
	dMinus, ok2 := im.FindCrossing(cx, cy, -dx, -dy, th, maxDist)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("%w: cut at (%.0f,%.0f)", ErrNoEdge, cx, cy)
	}
	return dPlus + dMinus, nil
}

// MeasureGap measures the printed space between two dark features: from
// a point inside the bright gap, walk both ways to the crossings.
func MeasureGap(im *optics.Image, th float64, cx, cy float64, horizontal bool, maxDist float64) (float64, error) {
	dx, dy := 1.0, 0.0
	if !horizontal {
		dx, dy = 0.0, 1.0
	}
	if im.At(cx, cy) < th {
		return 0, fmt.Errorf("%w: start point (%.0f,%.0f) not inside a gap (I=%.3f < %.3f)",
			ErrNoEdge, cx, cy, im.At(cx, cy), th)
	}
	dPlus, ok1 := im.FindCrossing(cx, cy, dx, dy, th, maxDist)
	dMinus, ok2 := im.FindCrossing(cx, cy, -dx, -dy, th, maxDist)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("%w: gap cut at (%.0f,%.0f)", ErrNoEdge, cx, cy)
	}
	return dPlus + dMinus, nil
}

// EPE returns the signed edge placement error at a drawn edge point:
// the distance from the drawn edge to the printed contour along the
// outward normal (nx, ny). Positive means the printed feature extends
// beyond the drawn edge; negative means it falls short. maxDist bounds
// the search each way.
func EPE(im *optics.Image, th float64, ex, ey, nx, ny, maxDist float64) (float64, error) {
	v := im.At(ex, ey)
	if v < th {
		// Edge point is inside the printed (dark) feature: contour lies
		// outward.
		d, ok := im.FindCrossing(ex, ey, nx, ny, th, maxDist)
		if !ok {
			return 0, fmt.Errorf("%w: EPE outward at (%.0f,%.0f)", ErrNoEdge, ex, ey)
		}
		return d, nil
	}
	// Edge point prints bright: contour lies inward (negative EPE).
	d, ok := im.FindCrossing(ex, ey, -nx, -ny, th, maxDist)
	if !ok {
		return 0, fmt.Errorf("%w: EPE inward at (%.0f,%.0f)", ErrNoEdge, ex, ey)
	}
	return -d, nil
}
