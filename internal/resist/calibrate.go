package resist

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/optics"
)

// CalibrateThreshold performs the dose-to-size anchor calibration every
// production flow starts with: find the intensity threshold at which a
// dense line/space anchor pattern prints at its drawn CD. The anchor is
// lines of width anchorCD at pitch anchorPitch (equal-ish line/space is
// customary). Returns the calibrated threshold.
//
// The printed dark-line CD grows monotonically with the threshold, so
// bisection converges; the search window [0.05, 0.95] covers any
// physical process.
func CalibrateThreshold(sim *optics.Simulator, anchorCD, anchorPitch geom.Coord) (float64, error) {
	if anchorCD <= 0 || anchorPitch < anchorCD {
		return 0, fmt.Errorf("resist: bad anchor cd=%d pitch=%d", anchorCD, anchorPitch)
	}
	var mask []geom.Polygon
	for i := -5; i <= 5; i++ {
		x := geom.Coord(i) * anchorPitch
		mask = append(mask, geom.R(x-anchorCD/2, -4000, x+anchorCD/2, 4000).Polygon())
	}
	window := geom.R(-anchorPitch, -200, anchorPitch, 200)
	im, err := sim.Aerial(mask, window)
	if err != nil {
		return 0, fmt.Errorf("resist: calibration imaging: %w", err)
	}
	target := float64(anchorCD)
	lo, hi := 0.05, 0.95
	measure := func(th float64) (float64, bool) {
		cd, err := MeasureCD(im, th, 0, 0, true, float64(anchorPitch))
		return cd, err == nil
	}
	// Establish a valid bracket: CD(lo) < target < CD(hi).
	cdLo, okLo := measure(lo)
	cdHi, okHi := measure(hi)
	if !okLo {
		cdLo = 0
	}
	if !okHi {
		cdHi = float64(anchorPitch)
	}
	if !(cdLo < target && target < cdHi) {
		return 0, fmt.Errorf("resist: anchor CD %d not reachable (cd[%.2f]=%.1f cd[%.2f]=%.1f)",
			anchorCD, lo, cdLo, hi, cdHi)
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		cd, ok := measure(mid)
		if !ok || cd < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
