package resist

import (
	"math"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/optics"
)

func fastSim(t *testing.T) *optics.Simulator {
	t.Helper()
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := optics.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestModelEffective(t *testing.T) {
	m := Model{Threshold: 0.3, Dose: 1.0}
	if m.Effective() != 0.3 {
		t.Errorf("effective = %f", m.Effective())
	}
	m.Dose = 1.2
	if math.Abs(m.Effective()-0.25) > 1e-12 {
		t.Errorf("overdose effective = %f", m.Effective())
	}
	m.Dose = 0 // treated as 1
	if m.Effective() != 0.3 {
		t.Errorf("zero dose effective = %f", m.Effective())
	}
}

func TestBlurConservesAndSmooths(t *testing.T) {
	f := optics.Frame{W: 64, H: 64, PixelNM: 8, OriginX: 0, OriginY: 0}
	im := &optics.Image{Frame: f, I: make([]float64, 64*64)}
	im.I[32*64+32] = 1 // impulse
	b := Blur(im, 24)
	// Peak reduced, neighbors raised.
	if b.I[32*64+32] >= 0.5 {
		t.Errorf("peak after blur = %f", b.I[32*64+32])
	}
	if b.I[32*64+35] <= 0 {
		t.Error("blur did not spread")
	}
	// Mass approximately conserved (away from borders).
	var sum float64
	for _, v := range b.I {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("blur mass = %f", sum)
	}
	// Symmetry.
	if math.Abs(b.I[32*64+30]-b.I[32*64+34]) > 1e-12 {
		t.Error("blur not symmetric")
	}
}

func TestModelApply(t *testing.T) {
	f := optics.Frame{W: 16, H: 16, PixelNM: 8, OriginX: 0, OriginY: 0}
	im := &optics.Image{Frame: f, I: make([]float64, 256)}
	m := Model{Threshold: 0.3, Dose: 1}
	if got := m.Apply(im); got != im {
		t.Error("CTR Apply should return the image unchanged")
	}
	m.DiffusionNM = 20
	if got := m.Apply(im); got == im {
		t.Error("diffused Apply should return a new image")
	}
}

func TestMeasureCDAndGap(t *testing.T) {
	sim := fastSim(t)
	// Dense 250 nm lines at 500 pitch.
	var mask []geom.Polygon
	for i := -4; i <= 4; i++ {
		x := geom.Coord(i) * 500
		mask = append(mask, geom.R(x-125, -3000, x+125, 3000).Polygon())
	}
	im, err := sim.Aerial(mask, geom.R(-400, -200, 400, 200))
	if err != nil {
		t.Fatal(err)
	}
	th := 0.3
	cd, err := MeasureCD(im, th, 0, 0, true, 400)
	if err != nil {
		t.Fatal(err)
	}
	if cd < 150 || cd > 350 {
		t.Errorf("printed CD = %.1f, implausible for 250 drawn", cd)
	}
	gap, err := MeasureGap(im, th, 250, 0, true, 400)
	if err != nil {
		t.Fatal(err)
	}
	if gap < 150 || gap > 350 {
		t.Errorf("printed gap = %.1f", gap)
	}
	// CD + gap should approximate the pitch.
	if math.Abs(cd+gap-500) > 20 {
		t.Errorf("cd+gap = %.1f, want ~500", cd+gap)
	}
	// Starting in the wrong region errors.
	if _, err := MeasureCD(im, th, 250, 0, true, 400); err == nil {
		t.Error("MeasureCD from a bright point should fail")
	}
	if _, err := MeasureGap(im, th, 0, 0, true, 400); err == nil {
		t.Error("MeasureGap from a dark point should fail")
	}
}

func TestEPESign(t *testing.T) {
	sim := fastSim(t)
	// A wide isolated line: the printed line is narrower than drawn at
	// low threshold -> negative EPE at the drawn edge; at high threshold
	// the dark region swells past the drawn edge -> positive EPE.
	line := geom.R(-200, -3000, 200, 3000).Polygon()
	im, err := sim.Aerial([]geom.Polygon{line}, geom.R(-500, -200, 500, 200))
	if err != nil {
		t.Fatal(err)
	}
	lowTh, highTh := 0.1, 0.7
	epeLow, err := EPE(im, lowTh, 200, 0, 1, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	epeHigh, err := EPE(im, highTh, 200, 0, 1, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if epeLow >= 0 {
		t.Errorf("low-threshold EPE = %.1f, want negative (feature shrinks)", epeLow)
	}
	if epeHigh <= 0 {
		t.Errorf("high-threshold EPE = %.1f, want positive (feature swells)", epeHigh)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	sim := fastSim(t)
	th, err := CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	if th < 0.1 || th > 0.6 {
		t.Errorf("calibrated threshold = %.3f, implausible", th)
	}
	// Verify the anchor prints to size at the calibrated threshold.
	var mask []geom.Polygon
	for i := -5; i <= 5; i++ {
		x := geom.Coord(i) * 500
		mask = append(mask, geom.R(x-125, -4000, x+125, 4000).Polygon())
	}
	im, err := sim.Aerial(mask, geom.R(-400, -200, 400, 200))
	if err != nil {
		t.Fatal(err)
	}
	cd, err := MeasureCD(im, th, 0, 0, true, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cd-250) > 1 {
		t.Errorf("anchor CD at calibrated threshold = %.2f, want 250 +- 1", cd)
	}
	// Bad anchors rejected.
	if _, err := CalibrateThreshold(sim, 0, 500); err == nil {
		t.Error("zero anchor CD should fail")
	}
	if _, err := CalibrateThreshold(sim, 600, 500); err == nil {
		t.Error("cd > pitch should fail")
	}
}

func TestContoursCircleLike(t *testing.T) {
	// Synthetic radial field: threshold iso-line is a circle of known
	// radius.
	f := optics.Frame{W: 64, H: 64, PixelNM: 10, OriginX: 0, OriginY: 0}
	im := &optics.Image{Frame: f, I: make([]float64, 64*64)}
	cx, cy := 320.0, 320.0
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			d := math.Hypot(float64(x)*10-cx, float64(y)*10-cy)
			im.I[y*64+x] = d / 100 // intensity = r/100: iso 1.0 at r=100
		}
	}
	loops := Contours(im, 1.0, geom.R(0, 0, 630, 630))
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	c := loops[0]
	// All vertices near radius 100.
	for _, p := range c {
		r := math.Hypot(p.X-cx, p.Y-cy)
		if math.Abs(r-100) > 5 {
			t.Fatalf("contour vertex at r=%.1f, want ~100", r)
		}
	}
	// Perimeter near 2*pi*100.
	if l := c.Len(); math.Abs(l-628) > 30 {
		t.Errorf("perimeter = %.1f, want ~628", l)
	}
	x0, y0, x1, y1 := c.BBox()
	if x1-x0 < 180 || y1-y0 < 180 {
		t.Errorf("bbox = %f %f %f %f", x0, y0, x1, y1)
	}
}

func TestContoursTwoFeatures(t *testing.T) {
	sim := fastSim(t)
	mask := []geom.Polygon{
		geom.R(-600, -1500, -300, 1500).Polygon(),
		geom.R(300, -1500, 600, 1500).Polygon(),
	}
	im, err := sim.Aerial(mask, geom.R(-900, -900, 900, 900))
	if err != nil {
		t.Fatal(err)
	}
	loops := Contours(im, 0.3, geom.R(-900, -900, 900, 900))
	if len(loops) < 2 {
		t.Errorf("expected >=2 contour loops for two lines, got %d", len(loops))
	}
}

func TestContoursEmpty(t *testing.T) {
	f := optics.Frame{W: 16, H: 16, PixelNM: 10, OriginX: 0, OriginY: 0}
	im := &optics.Image{Frame: f, I: make([]float64, 256)}
	if loops := Contours(im, 0.5, geom.R(0, 0, 150, 150)); len(loops) != 0 {
		t.Errorf("uniform field produced %d loops", len(loops))
	}
	// Window outside the frame.
	if loops := Contours(im, 0.5, geom.R(10000, 10000, 10100, 10100)); len(loops) != 0 {
		t.Errorf("out-of-frame window produced %d loops", len(loops))
	}
}

func TestLevelRankingStableUnderDiffusedModel(t *testing.T) {
	// Design-choice ablation (DESIGN.md section 5, item 3): the
	// iso-dense proximity gap measured with a pure constant-threshold
	// model persists under a diffused-threshold model — so OPC level
	// rankings derived from either are consistent.
	sim := fastSim(t)
	measureSpread := func(diffusionNM float64) float64 {
		m := Model{Threshold: 0.3, Dose: 1, DiffusionNM: diffusionNM}
		cds := []float64{}
		for _, pitch := range []geom.Coord{360, 0} {
			var mask []geom.Polygon
			if pitch == 0 {
				mask = []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
			} else {
				for i := -4; i <= 4; i++ {
					x := geom.Coord(i) * pitch
					mask = append(mask, geom.R(x-90, -2000, x+90, 2000).Polygon())
				}
			}
			im, err := sim.Aerial(mask, geom.R(-300, -200, 300, 200))
			if err != nil {
				t.Fatal(err)
			}
			im = m.Apply(im)
			cd, err := MeasureCD(im, m.Effective(), 0, 0, true, 400)
			if err != nil {
				t.Fatal(err)
			}
			cds = append(cds, cd)
		}
		return math.Abs(cds[0] - cds[1])
	}
	ctr := measureSpread(0)
	diffused := measureSpread(30)
	if ctr < 2 {
		t.Fatalf("CTR iso-dense gap = %.1f, expected a measurable proximity effect", ctr)
	}
	if diffused < 1 {
		t.Errorf("diffusion erased the proximity effect entirely: %.2f", diffused)
	}
	// Diffusion smooths the image, so the gap shrinks but survives.
	if diffused > ctr*1.5 {
		t.Errorf("diffused gap %.1f implausibly larger than CTR %.1f", diffused, ctr)
	}
}
