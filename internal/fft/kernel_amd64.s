//go:build amd64 && !purego

#include "textflag.h"

// AVX2 butterfly stage kernels. Complex multiplication uses the
// dup/swap/addsub sequence (VMULPD x2 + VADDSUBPD) — deliberately not
// FMA, whose fused rounding would diverge from the pure-Go reference.
// For b = hi*w per complex: t1 = [hr*wr, hi*wr], t2 = [hi*wi, hr*wi],
// VADDSUBPD gives [hr*wr - hi*wi, hi*wr + hr*wi] — the same individually
// rounded products, differences and (commuted) sums the reference
// computes, so outputs are value-identical.

// func cpuSupportsAVX2() bool
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	// CPUID.1:ECX — OSXSAVE (bit 27) and AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<27 | 1<<28), CX
	CMPL CX, $(1<<27 | 1<<28)
	JNE  no
	// XCR0 — XMM (bit 1) and YMM (bit 2) state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.7.0:EBX — AVX2 (bit 5).
	MOVL  $7, AX
	XORL  CX, CX
	CPUID
	TESTL $(1<<5), BX
	JZ    no
	MOVB  $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func stageAVX2(x *complex128, n, size int, wt *complex128)
//
// One radix-2 stage over every size-aligned block of x, 4 butterflies
// (2 ymm pairs) per inner iteration. half = size/2 is a multiple of 4
// (wrapper-enforced), so the inner loop has no tail.
TEXT ·stageAVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ size+16(FP), DX
	MOVQ wt+24(FP), SI
	MOVQ DX, R8
	SHLQ $3, R8          // halfB = size/2 * 16
	SHLQ $4, DX          // sizeB = size * 16
	SHLQ $4, CX          // nB = n * 16
	XORQ R9, R9          // block offset in bytes

stblock:
	LEAQ (DI)(R9*1), R10 // lo base
	LEAQ (R10)(R8*1), R11 // hi base
	XORQ BX, BX          // butterfly offset in bytes

stk:
	VMOVUPD (R11)(BX*1), Y0    // hi, complexes 0-1
	VMOVUPD 32(R11)(BX*1), Y1  // hi, complexes 2-3
	VMOVUPD (SI)(BX*1), Y2     // wt 0-1
	VMOVUPD 32(SI)(BX*1), Y3   // wt 2-3
	VMOVDDUP Y2, Y4            // [wr, wr] dup
	VMOVDDUP Y3, Y5
	VPERMILPD $0xF, Y2, Y2     // [wi, wi] dup
	VPERMILPD $0xF, Y3, Y3
	VPERMILPD $0x5, Y0, Y6     // hi re/im swapped
	VPERMILPD $0x5, Y1, Y7
	VMULPD Y0, Y4, Y4          // t1 = hi * wr
	VMULPD Y1, Y5, Y5
	VMULPD Y6, Y2, Y6          // t2 = swap(hi) * wi
	VMULPD Y7, Y3, Y7
	VADDSUBPD Y6, Y4, Y4       // b = t1 -/+ t2
	VADDSUBPD Y7, Y5, Y5
	VMOVUPD (R10)(BX*1), Y8    // lo
	VMOVUPD 32(R10)(BX*1), Y9
	VADDPD Y4, Y8, Y10         // lo + b
	VADDPD Y5, Y9, Y11
	VSUBPD Y4, Y8, Y12         // lo - b
	VSUBPD Y5, Y9, Y13
	VMOVUPD Y10, (R10)(BX*1)
	VMOVUPD Y11, 32(R10)(BX*1)
	VMOVUPD Y12, (R11)(BX*1)
	VMOVUPD Y13, 32(R11)(BX*1)
	ADDQ $64, BX
	CMPQ BX, R8
	JB   stk
	ADDQ DX, R9
	CMPQ R9, CX
	JB   stblock
	VZEROUPPER
	RET

// func stageScaleAVX2(x *complex128, n, size int, wt *complex128, scale float64)
//
// stageAVX2 with a uniform scaling of both butterfly outputs — the
// final inverse stage folds its 1/N here.
TEXT ·stageScaleAVX2(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ size+16(FP), DX
	MOVQ wt+24(FP), SI
	VBROADCASTSD scale+32(FP), Y15
	MOVQ DX, R8
	SHLQ $3, R8
	SHLQ $4, DX
	SHLQ $4, CX
	XORQ R9, R9

ssblock:
	LEAQ (DI)(R9*1), R10
	LEAQ (R10)(R8*1), R11
	XORQ BX, BX

ssk:
	VMOVUPD (R11)(BX*1), Y0
	VMOVUPD 32(R11)(BX*1), Y1
	VMOVUPD (SI)(BX*1), Y2
	VMOVUPD 32(SI)(BX*1), Y3
	VMOVDDUP Y2, Y4
	VMOVDDUP Y3, Y5
	VPERMILPD $0xF, Y2, Y2
	VPERMILPD $0xF, Y3, Y3
	VPERMILPD $0x5, Y0, Y6
	VPERMILPD $0x5, Y1, Y7
	VMULPD Y0, Y4, Y4
	VMULPD Y1, Y5, Y5
	VMULPD Y6, Y2, Y6
	VMULPD Y7, Y3, Y7
	VADDSUBPD Y6, Y4, Y4
	VADDSUBPD Y7, Y5, Y5
	VMOVUPD (R10)(BX*1), Y8
	VMOVUPD 32(R10)(BX*1), Y9
	VADDPD Y4, Y8, Y10
	VADDPD Y5, Y9, Y11
	VSUBPD Y4, Y8, Y12
	VSUBPD Y5, Y9, Y13
	VMULPD Y15, Y10, Y10       // fold scale into the stores
	VMULPD Y15, Y11, Y11
	VMULPD Y15, Y12, Y12
	VMULPD Y15, Y13, Y13
	VMOVUPD Y10, (R10)(BX*1)
	VMOVUPD Y11, 32(R10)(BX*1)
	VMOVUPD Y12, (R11)(BX*1)
	VMOVUPD Y13, 32(R11)(BX*1)
	ADDQ $64, BX
	CMPQ BX, R8
	JB   ssk
	ADDQ DX, R9
	CMPQ R9, CX
	JB   ssblock
	VZEROUPPER
	RET

// func stage24AVX2(x *complex128, n int, w1r, w1i float64)
//
// Fused size-2 and size-4 stages, one 4-complex group per iteration.
// Only the group's fourth output needs a true complex multiply (by
// w1 = tw[n/4]); the rest are adds and subtracts.
TEXT ·stage24AVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	SHLQ $4, CX                // nB
	MOVSD w1r+16(FP), X10
	VMOVDDUP X10, X10          // [w1r, w1r]
	MOVSD w1i+24(FP), X11
	VMOVDDUP X11, X11          // [w1i, w1i]
	XORQ BX, BX

s24:
	MOVUPD (DI)(BX*1), X0      // a0
	MOVUPD 16(DI)(BX*1), X1    // a1
	MOVUPD 32(DI)(BX*1), X2    // a2
	MOVUPD 48(DI)(BX*1), X3    // a3
	VADDPD X1, X0, X4          // b0 = a0 + a1
	VSUBPD X1, X0, X5          // b1 = a0 - a1
	VADDPD X3, X2, X6          // b2 = a2 + a3
	VSUBPD X3, X2, X7          // b3 = a2 - a3
	VPERMILPD $0x1, X7, X8     // swap(b3)
	VMULPD X10, X7, X7         // b3 * w1r
	VMULPD X11, X8, X8         // swap(b3) * w1i
	VADDSUBPD X8, X7, X7       // t3 = b3 * w1
	VADDPD X6, X4, X9          // x[s]   = b0 + b2
	VSUBPD X6, X4, X6          // x[s+2] = b0 - b2
	VADDPD X7, X5, X8          // x[s+1] = b1 + t3
	VSUBPD X7, X5, X5          // x[s+3] = b1 - t3
	MOVUPD X9, (DI)(BX*1)
	MOVUPD X8, 16(DI)(BX*1)
	MOVUPD X6, 32(DI)(BX*1)
	MOVUPD X5, 48(DI)(BX*1)
	ADDQ $64, BX
	CMPQ BX, CX
	JB   s24
	RET

// func stage32AVX2(x *complex64, n, size int, wt *complex64)
//
// complex64 radix-2 stage: 4 butterflies per ymm iteration using the
// single-precision dup/swap/addsub sequence (VMOVSLDUP/VMOVSHDUP).
TEXT ·stage32AVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ size+16(FP), DX
	MOVQ wt+24(FP), SI
	MOVQ DX, R8
	SHLQ $2, R8          // halfB = size/2 * 8
	SHLQ $3, DX          // sizeB = size * 8
	SHLQ $3, CX          // nB = n * 8
	XORQ R9, R9

f32block:
	LEAQ (DI)(R9*1), R10
	LEAQ (R10)(R8*1), R11
	XORQ BX, BX

f32k:
	VMOVUPS (R11)(BX*1), Y0    // hi, complexes 0-3
	VMOVUPS (SI)(BX*1), Y2     // wt
	VMOVSLDUP Y2, Y4           // [wr, wr] dup
	VMOVSHDUP Y2, Y2           // [wi, wi] dup
	VPERMILPS $0xB1, Y0, Y6    // hi re/im swapped
	VMULPS Y0, Y4, Y4          // t1 = hi * wr
	VMULPS Y6, Y2, Y6          // t2 = swap(hi) * wi
	VADDSUBPS Y6, Y4, Y4       // b
	VMOVUPS (R10)(BX*1), Y8    // lo
	VADDPS Y4, Y8, Y10
	VSUBPS Y4, Y8, Y12
	VMOVUPS Y10, (R10)(BX*1)
	VMOVUPS Y12, (R11)(BX*1)
	ADDQ $32, BX
	CMPQ BX, R8
	JB   f32k
	ADDQ DX, R9
	CMPQ R9, CX
	JB   f32block
	VZEROUPPER
	RET

// func stageScale32AVX2(x *complex64, n, size int, wt *complex64, scale float32)
TEXT ·stageScale32AVX2(SB), NOSPLIT, $0-36
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ size+16(FP), DX
	MOVQ wt+24(FP), SI
	VBROADCASTSS scale+32(FP), Y15
	MOVQ DX, R8
	SHLQ $2, R8
	SHLQ $3, DX
	SHLQ $3, CX
	XORQ R9, R9

fs32block:
	LEAQ (DI)(R9*1), R10
	LEAQ (R10)(R8*1), R11
	XORQ BX, BX

fs32k:
	VMOVUPS (R11)(BX*1), Y0
	VMOVUPS (SI)(BX*1), Y2
	VMOVSLDUP Y2, Y4
	VMOVSHDUP Y2, Y2
	VPERMILPS $0xB1, Y0, Y6
	VMULPS Y0, Y4, Y4
	VMULPS Y6, Y2, Y6
	VADDSUBPS Y6, Y4, Y4
	VMOVUPS (R10)(BX*1), Y8
	VADDPS Y4, Y8, Y10
	VSUBPS Y4, Y8, Y12
	VMULPS Y15, Y10, Y10
	VMULPS Y15, Y12, Y12
	VMOVUPS Y10, (R10)(BX*1)
	VMOVUPS Y12, (R11)(BX*1)
	ADDQ $32, BX
	CMPQ BX, R8
	JB   fs32k
	ADDQ DX, R9
	CMPQ R9, CX
	JB   fs32block
	VZEROUPPER
	RET

// func stage2432AVX2(x *complex64, n int, w1r, w1i float32)
//
// complex64 fused size-2/4 stages, one 4-complex group (one ymm) per
// iteration. The in-lane pair butterflies produce [b0,b1|b2,b3]; the
// cross-lane second stage multiplies [b2,b3] by [1, w1] — the exact
// unit twiddle can only flip zero signs — and recombines lanes.
TEXT ·stage2432AVX2(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	SHLQ $3, CX                // nB
	// Y14 = [1, 0, w1r, w1i | 1, 0, w1r, w1i]
	MOVSS w1r+16(FP), X2
	MOVSS w1i+20(FP), X3
	VUNPCKLPS X3, X2, X2       // [w1r, w1i, 0, 0]
	MOVL $0x3F800000, AX
	MOVQ AX, X4                // [1.0f, 0f]
	VMOVLHPS X2, X4, X5        // [1, 0, w1r, w1i]
	VINSERTF128 $1, X5, Y5, Y14
	VMOVSLDUP Y14, Y12         // [1, 1, w1r, w1r | ...]
	VMOVSHDUP Y14, Y13         // [0, 0, w1i, w1i | ...]
	XORQ BX, BX

s2432:
	VMOVUPS (DI)(BX*1), Y0     // [a0, a1 | a2, a3]
	VPERMILPS $0x4E, Y0, Y1    // [a1, a0 | a3, a2]
	VADDPS Y1, Y0, Y2          // s: [a0+a1, . | a2+a3, .]
	VSUBPS Y1, Y0, Y3          // d: [a0-a1, . | a2-a3, .]
	VSHUFPS $0x44, Y3, Y2, Y2  // [b0, b1 | b2, b3]
	VPERM2F128 $0x00, Y2, Y2, Y4 // [b0, b1 | b0, b1]
	VPERM2F128 $0x11, Y2, Y2, Y5 // [b2, b3 | b2, b3]
	VPERMILPS $0xB1, Y5, Y8    // swap re/im
	VMULPS Y5, Y12, Y6         // t1 = [b2, b3] * [1, w1r]
	VMULPS Y8, Y13, Y7         // t2 = swap * [0, w1i]
	VADDSUBPS Y7, Y6, Y6       // [b2, t3 | b2, t3]
	VADDPS Y6, Y4, Y7          // [b0+b2, b1+t3 | ...]
	VSUBPS Y6, Y4, Y8          // [b0-b2, b1-t3 | ...]
	VPERM2F128 $0x20, Y8, Y7, Y7 // [b0+b2, b1+t3 | b0-b2, b1-t3]
	VMOVUPS Y7, (DI)(BX*1)
	ADDQ $32, BX
	CMPQ BX, CX
	JB   s2432
	VZEROUPPER
	RET
