//go:build arm64 && !purego

package fft

// NEON butterfly kernels. The assembly multiplies complexes with the
// dup/swap/negate-add sequence — separate FMUL products, a sign flip of
// the cross term's real lane (a-b == a+(-b) in IEEE-754), then FADD —
// never FMLA, whose fused rounding would diverge from the pure-Go
// reference. Every component is rounded exactly where the generic
// kernels round it, so outputs match value-for-value (only zero signs
// may differ, which compare equal). Wrappers guard the alignment
// invariants the assembly assumes and fall back to the generic kernels
// otherwise; with the tables the transforms build, the guards never
// fire.

//go:noescape
func stageNEON(x *complex128, n, size int, wt *complex128)

//go:noescape
func stageScaleNEON(x *complex128, n, size int, wt *complex128, scale float64)

//go:noescape
func stage24NEON(x *complex128, n int, w1r, w1i float64)

//go:noescape
func stage32NEON(x *complex64, n, size int, wt *complex64)

//go:noescape
func stageScale32NEON(x *complex64, n, size int, wt *complex64, scale float32)

//go:noescape
func stage2432NEON(x *complex64, n int, w1r, w1i float32)

// installArchKernels swaps in the NEON kernels unconditionally: ASIMD
// is part of the arm64 baseline, so there is nothing to probe.
func installArchKernels() {
	kernelName = kernelNEON
	stage24 = stage24NAsm
	stage = stageNAsm
	stageScale = stageScaleNAsm
	stage2432 = stage2432NAsm
	stage32 = stage32NAsm
	stageScale32 = stageScale32NAsm
}

func stageNAsm(x []complex128, size int, wt []complex128) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stageGeneric(x, size, wt)
		return
	}
	stageNEON(&x[0], len(x), size, &wt[0])
}

func stageScaleNAsm(x []complex128, size int, wt []complex128, scale float64) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stageScaleGeneric(x, size, wt, scale)
		return
	}
	stageScaleNEON(&x[0], len(x), size, &wt[0], scale)
}

func stage24NAsm(x []complex128, w1 complex128) {
	if len(x) < 4 || len(x)&3 != 0 {
		stage24Generic(x, w1)
		return
	}
	stage24NEON(&x[0], len(x), real(w1), imag(w1))
}

func stage32NAsm(x []complex64, size int, wt []complex64) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stage32Generic(x, size, wt)
		return
	}
	stage32NEON(&x[0], len(x), size, &wt[0])
}

func stageScale32NAsm(x []complex64, size int, wt []complex64, scale float32) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stageScale32Generic(x, size, wt, scale)
		return
	}
	stageScale32NEON(&x[0], len(x), size, &wt[0], scale)
}

func stage2432NAsm(x []complex64, w1 complex64) {
	if len(x) < 4 || len(x)&3 != 0 {
		stage2432Generic(x, w1)
		return
	}
	stage2432NEON(&x[0], len(x), real(w1), imag(w1))
}
