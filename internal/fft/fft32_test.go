package fft

import (
	"math"
	"math/rand"
	"testing"
)

func randVec32(n int, rng *rand.Rand) []complex64 {
	x := make([]complex64, n)
	for i := range x {
		x[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return x
}

// TestForward32MatchesFloat64 pins the complex64 transform to the
// float64 one: same input, results within single-precision error of
// the double-precision spectrum.
func TestForward32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x32 := randVec32(n, rng)
		x64 := make([]complex128, n)
		for i, v := range x32 {
			x64[i] = complex128(v)
		}
		if err := Forward32(x32); err != nil {
			t.Fatal(err)
		}
		if err := Forward(x64); err != nil {
			t.Fatal(err)
		}
		// Magnitudes grow like sqrt(n)*|x|; scale the tolerance with n.
		tol := 1e-5 * math.Sqrt(float64(n)) * 4
		for i := range x64 {
			d := complex128(x32[i]) - x64[i]
			if math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
				t.Fatalf("n=%d idx=%d: f32 %v vs f64 %v (tol %g)", n, i, x32[i], x64[i], tol)
			}
		}
	}
}

// TestInverse32RoundTrip checks Inverse32(Forward32(x)) ~ x with the
// folded 1/N scaling.
func TestInverse32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 4, 8, 32, 128, 512} {
		x := randVec32(n, rng)
		orig := append([]complex64(nil), x...)
		if err := Forward32(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse32(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			d := complex128(x[i]) - complex128(orig[i])
			if math.Abs(real(d)) > 1e-4 || math.Abs(imag(d)) > 1e-4 {
				t.Fatalf("n=%d idx=%d: round trip %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

// TestStage32KernelsMatchGeneric cross-checks the dispatched complex64
// stage kernels (assembly on amd64/arm64) against the generic reference
// with ==: outputs must be value-identical, zero signs aside (which ==
// treats as equal).
func TestStage32KernelsMatchGeneric(t *testing.T) {
	t.Logf("active kernel: %s", KernelName())
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{8, 16, 32, 64, 256, 1024} {
		for size := 8; size <= n; size <<= 1 {
			wt := tablesFor32(n, false).stages[0:]
			// Pick the twiddle vector matching this stage size.
			var st []complex64
			for i, v := range wt {
				if 8<<i == size {
					st = v
				}
			}
			a := randVec32(n, rng)
			b := append([]complex64(nil), a...)
			stage32(a, size, st)
			stage32Generic(b, size, st)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("stage32 n=%d size=%d idx=%d: %v vs %v", n, size, i, a[i], b[i])
				}
			}
			a = randVec32(n, rng)
			b = append([]complex64(nil), a...)
			stageScale32(a, size, st, 0.25)
			stageScale32Generic(b, size, st, 0.25)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("stageScale32 n=%d size=%d idx=%d: %v vs %v", n, size, i, a[i], b[i])
				}
			}
		}
		w1 := tablesFor32(n, true).w1
		a := randVec32(n, rng)
		b := append([]complex64(nil), a...)
		stage2432(a, w1)
		stage2432Generic(b, w1)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("stage2432 n=%d idx=%d: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}

// TestPlan2D32MatchesFloat64Plan compares the complex64 2-D plan
// against the float64 plan on the same field, forward and inverse.
func TestPlan2D32MatchesFloat64Plan(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dim := range [][2]int{{8, 8}, {32, 16}, {64, 64}} {
		w, h := dim[0], dim[1]
		g32 := NewGrid32(w, h)
		g64 := NewGrid(w, h)
		for i := range g32.Data {
			v := complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
			g32.Data[i] = v
			g64.Data[i] = complex128(v)
		}
		p32, err := NewPlan2D32(w, h)
		if err != nil {
			t.Fatal(err)
		}
		p64, err := NewPlan2D(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := p32.Forward2DP(g32); err != nil {
			t.Fatal(err)
		}
		if err := p64.Forward2DP(g64); err != nil {
			t.Fatal(err)
		}
		tol := 1e-5 * math.Sqrt(float64(w*h)) * 4
		for i := range g64.Data {
			d := complex128(g32.Data[i]) - g64.Data[i]
			if math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
				t.Fatalf("%dx%d fwd idx=%d: %v vs %v", w, h, i, g32.Data[i], g64.Data[i])
			}
		}
		if err := p32.Inverse2DP(g32); err != nil {
			t.Fatal(err)
		}
		if err := p64.Inverse2DP(g64); err != nil {
			t.Fatal(err)
		}
		for i := range g64.Data {
			d := complex128(g32.Data[i]) - g64.Data[i]
			if math.Abs(real(d)) > 1e-4 || math.Abs(imag(d)) > 1e-4 {
				t.Fatalf("%dx%d inv idx=%d: %v vs %v", w, h, i, g32.Data[i], g64.Data[i])
			}
		}
	}
}

// TestInverse2DPRows32Pruning checks the pruned inverse matches the
// full inverse bit-for-bit when the input is nonzero only on the listed
// rows.
func TestInverse2DPRows32Pruning(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w, h := 32, 32
	rows := []int{0, 1, 2, 29, 30, 31}
	g := NewGrid32(w, h)
	for _, y := range rows {
		for x := 0; x < w; x++ {
			g.Data[y*w+x] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		}
	}
	full := &Grid32{W: w, H: h, Data: append([]complex64(nil), g.Data...)}
	p, err := NewPlan2D32(w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse2DPRows(g, rows); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse2DP(full); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if g.Data[i] != full.Data[i] {
			t.Fatalf("idx=%d: pruned %v vs full %v", i, g.Data[i], full.Data[i])
		}
	}
}
