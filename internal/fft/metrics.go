package fft

import "goopc/internal/obs"

// Registry series for the transform substrate. Handles are resolved
// once at init; the hot paths pay one atomic add per whole transform or
// pool checkout — never per butterfly.
var (
	mPlansBuilt = obs.Default().Counter("goopc_fft_plans_built_total",
		"2-D FFT plans constructed (twiddle tables resolved)")
	mTransforms = obs.Default().Counter("goopc_fft_transforms_total",
		"planned 2-D transforms executed (forward or inverse, full or pruned)")
	mGridGets = obs.Default().Counter("goopc_fft_grid_gets_total",
		"pooled grid checkouts")
	mGridAllocs = obs.Default().Counter("goopc_fft_grid_allocs_total",
		"pooled grid checkouts that allocated a fresh grid (pool miss)")
)
