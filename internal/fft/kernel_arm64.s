//go:build arm64 && !purego

#include "textflag.h"

// NEON butterfly stage kernels. Go's assembler has no mnemonics for the
// ASIMD floating-point arithmetic instructions, so those are emitted as
// WORD-encoded machine words behind the macros below; each encoding was
// verified to disassemble to the intended instruction. Operand order in
// the macros follows the architectural one: (m, n, d) computes
// d = n OP m elementwise.
//
// Complex multiplication (b = hi*w): dup w's real and imaginary parts,
// t1 = hi*wr, t2 = swap(hi)*wi, flip the sign of t2's real lane with
// VEOR (a-b == a+(-b) in IEEE-754), then b = t1 + t2 — the same
// individually rounded products, differences and (commuted) sums the
// pure-Go reference computes, so outputs are value-identical. No FMLA
// anywhere: fusing would change the rounding.

// FADD Vd.2D, Vn.2D, Vm.2D
#define FADD2D(m, n, d) WORD $(0x4E60D400 | ((m)<<16) | ((n)<<5) | (d))
// FSUB Vd.2D, Vn.2D, Vm.2D
#define FSUB2D(m, n, d) WORD $(0x4EE0D400 | ((m)<<16) | ((n)<<5) | (d))
// FMUL Vd.2D, Vn.2D, Vm.2D
#define FMUL2D(m, n, d) WORD $(0x6E60DC00 | ((m)<<16) | ((n)<<5) | (d))
// FADD Vd.4S, Vn.4S, Vm.4S
#define FADD4S(m, n, d) WORD $(0x4E20D400 | ((m)<<16) | ((n)<<5) | (d))
// FSUB Vd.4S, Vn.4S, Vm.4S
#define FSUB4S(m, n, d) WORD $(0x4EA0D400 | ((m)<<16) | ((n)<<5) | (d))
// FMUL Vd.4S, Vn.4S, Vm.4S
#define FMUL4S(m, n, d) WORD $(0x6E20DC00 | ((m)<<16) | ((n)<<5) | (d))

// SIGNMASK64 sets V28 = [0x8000000000000000, 0]: XORing flips the sign
// of a complex128's real lane only.
#define SIGNMASK64 \
	MOVD $0x8000000000000000, R7 \
	VMOV R7, V28.D[0]            \
	MOVD $0, R7                  \
	VMOV R7, V28.D[1]

// SIGNMASK32 sets V28 = [0x80000000, 0, 0x80000000, 0]: flips the sign
// of the real lane of each packed complex64.
#define SIGNMASK32 \
	MOVD $0x80000000, R7 \
	VMOV R7, V28.D[0]    \
	VMOV R7, V28.D[1]

// func stageNEON(x *complex128, n, size int, wt *complex128)
//
// One radix-2 stage over every size-aligned block of x, 2 butterflies
// (2 q-registers) per inner iteration. half = size/2 is a multiple of 4
// (wrapper-enforced), so the inner loop has no tail.
TEXT ·stageNEON(SB), NOSPLIT, $0-32
	MOVD x+0(FP), R0
	MOVD n+8(FP), R1
	MOVD size+16(FP), R2
	MOVD wt+24(FP), R3
	LSL  $3, R2, R4      // halfB = size/2 * 16
	LSL  $4, R2, R5      // sizeB
	LSL  $4, R1, R6      // nB
	SIGNMASK64
	MOVD $0, R8          // block offset in bytes

nblock:
	ADD  R8, R0, R9      // lo ptr
	ADD  R4, R9, R10     // hi ptr
	MOVD R3, R11         // wt ptr
	MOVD R4, R12         // bytes left in half

nk:
	VLD1   (R10), [V0.D2, V1.D2]     // hi h0, h1
	VLD1.P 32(R11), [V2.D2, V3.D2]   // w0, w1
	VDUP   V2.D[0], V4.D2            // [w0r, w0r]
	VDUP   V3.D[0], V5.D2
	VDUP   V2.D[1], V6.D2            // [w0i, w0i]
	VDUP   V3.D[1], V7.D2
	VEXT   $8, V0.B16, V0.B16, V16.B16 // swap(h0)
	VEXT   $8, V1.B16, V1.B16, V17.B16
	FMUL2D(4, 0, 8)                  // t1 = hi * wr
	FMUL2D(5, 1, 9)
	FMUL2D(6, 16, 10)                // t2 = swap(hi) * wi
	FMUL2D(7, 17, 11)
	VEOR   V28.B16, V10.B16, V10.B16 // negate t2's real lane
	VEOR   V28.B16, V11.B16, V11.B16
	FADD2D(10, 8, 8)                 // b = t1 + (-re t2)
	FADD2D(11, 9, 9)
	VLD1   (R9), [V12.D2, V13.D2]    // lo
	FADD2D(8, 12, 20)                // lo + b
	FADD2D(9, 13, 21)
	FSUB2D(8, 12, 22)                // lo - b
	FSUB2D(9, 13, 23)
	VST1.P [V20.D2, V21.D2], 32(R9)
	VST1.P [V22.D2, V23.D2], 32(R10)
	SUBS   $32, R12, R12
	BNE    nk
	ADD    R5, R8, R8
	CMP    R6, R8
	BLT    nblock
	RET

// func stageScaleNEON(x *complex128, n, size int, wt *complex128, scale float64)
//
// stageNEON with a uniform scaling of both butterfly outputs — the
// final inverse stage folds its 1/N here.
TEXT ·stageScaleNEON(SB), NOSPLIT, $0-40
	MOVD  x+0(FP), R0
	MOVD  n+8(FP), R1
	MOVD  size+16(FP), R2
	MOVD  wt+24(FP), R3
	FMOVD scale+32(FP), F29
	VDUP  V29.D[0], V29.D2
	LSL   $3, R2, R4
	LSL   $4, R2, R5
	LSL   $4, R1, R6
	SIGNMASK64
	MOVD  $0, R8

nsblock:
	ADD  R8, R0, R9
	ADD  R4, R9, R10
	MOVD R3, R11
	MOVD R4, R12

nsk:
	VLD1   (R10), [V0.D2, V1.D2]
	VLD1.P 32(R11), [V2.D2, V3.D2]
	VDUP   V2.D[0], V4.D2
	VDUP   V3.D[0], V5.D2
	VDUP   V2.D[1], V6.D2
	VDUP   V3.D[1], V7.D2
	VEXT   $8, V0.B16, V0.B16, V16.B16
	VEXT   $8, V1.B16, V1.B16, V17.B16
	FMUL2D(4, 0, 8)
	FMUL2D(5, 1, 9)
	FMUL2D(6, 16, 10)
	FMUL2D(7, 17, 11)
	VEOR   V28.B16, V10.B16, V10.B16
	VEOR   V28.B16, V11.B16, V11.B16
	FADD2D(10, 8, 8)
	FADD2D(11, 9, 9)
	VLD1   (R9), [V12.D2, V13.D2]
	FADD2D(8, 12, 20)
	FADD2D(9, 13, 21)
	FSUB2D(8, 12, 22)
	FSUB2D(9, 13, 23)
	FMUL2D(29, 20, 20)               // fold scale into the stores
	FMUL2D(29, 21, 21)
	FMUL2D(29, 22, 22)
	FMUL2D(29, 23, 23)
	VST1.P [V20.D2, V21.D2], 32(R9)
	VST1.P [V22.D2, V23.D2], 32(R10)
	SUBS   $32, R12, R12
	BNE    nsk
	ADD    R5, R8, R8
	CMP    R6, R8
	BLT    nsblock
	RET

// func stage24NEON(x *complex128, n int, w1r, w1i float64)
//
// Fused size-2 and size-4 stages, one 4-complex group per iteration.
// Only the group's fourth output needs a true complex multiply (by
// w1 = tw[n/4]); the rest are adds and subtracts.
TEXT ·stage24NEON(SB), NOSPLIT, $0-32
	MOVD  x+0(FP), R0
	MOVD  n+8(FP), R1
	FMOVD w1r+16(FP), F26
	VDUP  V26.D[0], V26.D2
	FMOVD w1i+24(FP), F27
	VDUP  V27.D[0], V27.D2
	SIGNMASK64
	ADD   R1<<4, R0, R3  // end pointer

n24:
	VLD1   (R0), [V0.D2, V1.D2, V2.D2, V3.D2]
	FADD2D(1, 0, 4)                  // b0 = a0 + a1
	FSUB2D(1, 0, 5)                  // b1 = a0 - a1
	FADD2D(3, 2, 6)                  // b2 = a2 + a3
	FSUB2D(3, 2, 7)                  // b3 = a2 - a3
	VEXT   $8, V7.B16, V7.B16, V8.B16
	FMUL2D(26, 7, 7)                 // b3 * w1r
	FMUL2D(27, 8, 8)                 // swap(b3) * w1i
	VEOR   V28.B16, V8.B16, V8.B16
	FADD2D(8, 7, 7)                  // t3 = b3 * w1
	FADD2D(6, 4, 20)                 // x[s]   = b0 + b2
	FADD2D(7, 5, 21)                 // x[s+1] = b1 + t3
	FSUB2D(6, 4, 22)                 // x[s+2] = b0 - b2
	FSUB2D(7, 5, 23)                 // x[s+3] = b1 - t3
	VST1.P [V20.D2, V21.D2, V22.D2, V23.D2], 64(R0)
	CMP    R3, R0
	BLT    n24
	RET

// func stage32NEON(x *complex64, n, size int, wt *complex64)
//
// complex64 radix-2 stage: 4 butterflies (2 q-registers, 2 packed
// complexes each) per inner iteration. Real/imag dups use TRN1/TRN2 of
// the twiddle vector with itself; the re/im swap is REV64 on .S4.
TEXT ·stage32NEON(SB), NOSPLIT, $0-32
	MOVD x+0(FP), R0
	MOVD n+8(FP), R1
	MOVD size+16(FP), R2
	MOVD wt+24(FP), R3
	LSL  $2, R2, R4      // halfB = size/2 * 8
	LSL  $3, R2, R5      // sizeB
	LSL  $3, R1, R6      // nB
	SIGNMASK32
	MOVD $0, R8

f32block:
	ADD  R8, R0, R9
	ADD  R4, R9, R10
	MOVD R3, R11
	MOVD R4, R12

f32k:
	VLD1   (R10), [V0.S4, V1.S4]     // hi h0..h3
	VLD1.P 32(R11), [V2.S4, V3.S4]   // w0..w3
	VTRN1  V2.S4, V2.S4, V4.S4       // [w0r, w0r, w1r, w1r]
	VTRN1  V3.S4, V3.S4, V5.S4
	VTRN2  V2.S4, V2.S4, V6.S4       // [w0i, w0i, w1i, w1i]
	VTRN2  V3.S4, V3.S4, V7.S4
	VREV64 V0.S4, V16.S4             // swap re/im per complex
	VREV64 V1.S4, V17.S4
	FMUL4S(4, 0, 8)                  // t1 = hi * wr
	FMUL4S(5, 1, 9)
	FMUL4S(6, 16, 10)                // t2 = swap(hi) * wi
	FMUL4S(7, 17, 11)
	VEOR   V28.B16, V10.B16, V10.B16
	VEOR   V28.B16, V11.B16, V11.B16
	FADD4S(10, 8, 8)                 // b
	FADD4S(11, 9, 9)
	VLD1   (R9), [V12.S4, V13.S4]    // lo
	FADD4S(8, 12, 20)
	FADD4S(9, 13, 21)
	FSUB4S(8, 12, 22)
	FSUB4S(9, 13, 23)
	VST1.P [V20.S4, V21.S4], 32(R9)
	VST1.P [V22.S4, V23.S4], 32(R10)
	SUBS   $32, R12, R12
	BNE    f32k
	ADD    R5, R8, R8
	CMP    R6, R8
	BLT    f32block
	RET

// func stageScale32NEON(x *complex64, n, size int, wt *complex64, scale float32)
TEXT ·stageScale32NEON(SB), NOSPLIT, $0-36
	MOVD  x+0(FP), R0
	MOVD  n+8(FP), R1
	MOVD  size+16(FP), R2
	MOVD  wt+24(FP), R3
	FMOVS scale+32(FP), F29
	VDUP  V29.S[0], V29.S4
	LSL   $2, R2, R4
	LSL   $3, R2, R5
	LSL   $3, R1, R6
	SIGNMASK32
	MOVD  $0, R8

fs32block:
	ADD  R8, R0, R9
	ADD  R4, R9, R10
	MOVD R3, R11
	MOVD R4, R12

fs32k:
	VLD1   (R10), [V0.S4, V1.S4]
	VLD1.P 32(R11), [V2.S4, V3.S4]
	VTRN1  V2.S4, V2.S4, V4.S4
	VTRN1  V3.S4, V3.S4, V5.S4
	VTRN2  V2.S4, V2.S4, V6.S4
	VTRN2  V3.S4, V3.S4, V7.S4
	VREV64 V0.S4, V16.S4
	VREV64 V1.S4, V17.S4
	FMUL4S(4, 0, 8)
	FMUL4S(5, 1, 9)
	FMUL4S(6, 16, 10)
	FMUL4S(7, 17, 11)
	VEOR   V28.B16, V10.B16, V10.B16
	VEOR   V28.B16, V11.B16, V11.B16
	FADD4S(10, 8, 8)
	FADD4S(11, 9, 9)
	VLD1   (R9), [V12.S4, V13.S4]
	FADD4S(8, 12, 20)
	FADD4S(9, 13, 21)
	FSUB4S(8, 12, 22)
	FSUB4S(9, 13, 23)
	FMUL4S(29, 20, 20)
	FMUL4S(29, 21, 21)
	FMUL4S(29, 22, 22)
	FMUL4S(29, 23, 23)
	VST1.P [V20.S4, V21.S4], 32(R9)
	VST1.P [V22.S4, V23.S4], 32(R10)
	SUBS   $32, R12, R12
	BNE    fs32k
	ADD    R5, R8, R8
	CMP    R6, R8
	BLT    fs32block
	RET

// func stage2432NEON(x *complex64, n int, w1r, w1i float32)
//
// complex64 fused size-2/4 stages, one 4-complex group (2 q-registers)
// per iteration. The pair butterflies produce [b0,b1] and [b2,b3] via
// EXT/ADD/SUB + TRN1; the second stage multiplies [b2,b3] by [1, w1] —
// the exact unit twiddle can only flip zero signs — and adds/subtracts
// against [b0,b1].
TEXT ·stage2432NEON(SB), NOSPLIT, $0-24
	MOVD  x+0(FP), R0
	MOVD  n+8(FP), R1
	// V24 = [1, 0, w1r, w1i]
	MOVWU w1r+16(FP), R4
	MOVWU w1i+20(FP), R5
	ORR   R5<<32, R4, R4
	VMOV  R4, V24.D[1]
	MOVD  $0x3F800000, R5 // 1.0f
	VMOV  R5, V24.D[0]
	VTRN1 V24.S4, V24.S4, V26.S4 // [1, 1, w1r, w1r]
	VTRN2 V24.S4, V24.S4, V27.S4 // [0, 0, w1i, w1i]
	SIGNMASK32
	ADD   R1<<3, R0, R3  // end pointer

n2432:
	VLD1   (R0), [V0.S4, V1.S4]      // [a0, a1], [a2, a3]
	VEXT   $8, V0.B16, V0.B16, V2.B16 // [a1, a0]
	VEXT   $8, V1.B16, V1.B16, V3.B16 // [a3, a2]
	FADD4S(2, 0, 4)                  // [b0, b0]
	FSUB4S(2, 0, 5)                  // [b1, -b1]
	FADD4S(3, 1, 6)                  // [b2, b2]
	FSUB4S(3, 1, 7)                  // [b3, -b3]
	VTRN1  V5.D2, V4.D2, V8.D2       // [b0, b1]
	VTRN1  V7.D2, V6.D2, V9.D2       // [b2, b3]
	VREV64 V9.S4, V10.S4
	FMUL4S(26, 9, 11)                // [b2, b3] * [1re, w1r]
	FMUL4S(27, 10, 12)               // swap * [0, w1i]
	VEOR   V28.B16, V12.B16, V12.B16
	FADD4S(12, 11, 11)               // ht = [b2, t3]
	FADD4S(11, 8, 20)                // [b0+b2, b1+t3]
	FSUB4S(11, 8, 21)                // [b0-b2, b1-t3]
	VST1.P [V20.S4, V21.S4], 32(R0)
	CMP    R3, R0
	BLT    n2432
	RET
