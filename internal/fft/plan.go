package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// Plan2D is a reusable 2-D transform plan for one grid geometry: the
// twiddle tables for both axes are resolved once, and the row and column
// passes fan out across Workers goroutines. Forward2DP/Inverse2DP
// produce bit-identical results at any worker count (each row/column is
// an independent transform and the inverse scaling is a single uniform
// pass), so a parallel plan can stand in for the serial Grid transforms
// anywhere. A Plan2D is safe for concurrent use.
type Plan2D struct {
	W, H int
	// Workers bounds the goroutine fan-out per pass; values <= 1 run the
	// pass inline.
	Workers    int
	fwdW, fwdH *twTables
	invW, invH *twTables
}

// NewPlan2D builds a plan for W x H grids with the default worker count
// (GOMAXPROCS).
func NewPlan2D(w, h int) (*Plan2D, error) {
	if !IsPow2(w) || !IsPow2(h) {
		return nil, fmt.Errorf("fft: plan %dx%d not power-of-two", w, h)
	}
	mPlansBuilt.Inc()
	return &Plan2D{
		W: w, H: h,
		Workers: runtime.GOMAXPROCS(0),
		fwdW:    tablesFor(w, false),
		fwdH:    tablesFor(h, false),
		invW:    tablesFor(w, true),
		invH:    tablesFor(h, true),
	}, nil
}

// Forward2DP computes the in-place 2-D DFT of g (rows then columns),
// parallel over rows/columns up to p.Workers.
func (p *Plan2D) Forward2DP(g *Grid) error { return p.apply(g, false, nil, nil) }

// Inverse2DP computes the in-place 2-D inverse DFT of g with 1/(W*H)
// scaling, parallel over rows/columns up to p.Workers.
func (p *Plan2D) Inverse2DP(g *Grid) error { return p.apply(g, true, nil, nil) }

// Inverse2DPRows computes the inverse DFT of a grid whose input is
// nonzero only on the listed rows: the row pass transforms just those
// rows (an all-zero row transforms to zero, so skipping it is exact),
// while the column and scaling passes run in full. The result is
// bit-identical to Inverse2DP for such inputs. Band-limited spectra
// occupy a handful of rows, making this several times cheaper.
func (p *Plan2D) Inverse2DPRows(g *Grid, rows []int) error { return p.apply(g, true, rows, nil) }

// Forward2DPCols computes the forward DFT restricted to the listed
// output columns: the row pass runs in full, the column pass only on
// the listed columns. Listed columns match Forward2DP bit-for-bit;
// every other column is left in a partially transformed state and must
// not be read. Use when only a known frequency band is consumed.
func (p *Plan2D) Forward2DPCols(g *Grid, cols []int) error { return p.apply(g, false, nil, cols) }

func (p *Plan2D) apply(g *Grid, invert bool, rows, cols []int) error {
	if g.W != p.W || g.H != p.H {
		return fmt.Errorf("fft: plan %dx%d applied to grid %dx%d", p.W, p.H, g.W, g.H)
	}
	mTransforms.Inc()
	mKernelDispatch.Inc()
	w, h := p.W, p.H
	for _, y := range rows {
		if y < 0 || y >= h {
			return fmt.Errorf("fft: row %d outside plan height %d", y, h)
		}
	}
	for _, x := range cols {
		if x < 0 || x >= w {
			return fmt.Errorf("fft: column %d outside plan width %d", x, w)
		}
	}
	twW, twH := p.fwdW, p.fwdH
	if invert {
		twW, twH = p.invW, p.invH
	}
	// Rows.
	if rows == nil {
		parallelRange(h, p.Workers, func(y0, y1 int) {
			for y := y0; y < y1; y++ {
				transformT(g.Data[y*w:(y+1)*w], twW)
			}
		})
	} else {
		parallelRange(len(rows), p.Workers, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				y := rows[i]
				transformT(g.Data[y*w:(y+1)*w], twW)
			}
		})
	}
	// Columns, gathered into pooled scratch in blocks: four adjacent
	// complex128 columns share each 64-byte cache line, so walking the
	// grid once per 4-column block instead of once per column cuts the
	// strided gather/scatter traffic 4x. Each column is still an
	// independent contiguous transform.
	// The inverse's 1/N scaling is folded into each column transform's
	// final butterfly stage (transformTs): every output cell passes
	// through it exactly once (inverse passes always run the full
	// column set), and scaling inside the stage computes the same
	// expression the old per-element scatter multiply did, so the
	// scatter below is a plain store on both directions.
	cscale := 1.0
	if invert {
		cscale = 1 / float64(w*h)
	}
	const colBlock = 4
	colPass := func(x0, x1 int, pick []int) {
		buf := getScratch(colBlock * h)
		b0, b1 := buf[0*h:1*h], buf[1*h:2*h]
		b2, b3 := buf[2*h:3*h], buf[3*h:4*h]
		for i := x0; i < x1; i += colBlock {
			nb := x1 - i
			if nb > colBlock {
				nb = colBlock
			}
			if pick == nil && nb == colBlock {
				// Contiguous full block: the four columns are adjacent, so
				// gather and scatter move whole 4-wide row slices with no
				// index indirection.
				for y := 0; y < h; y++ {
					r4 := g.Data[y*w+i : y*w+i+4 : y*w+i+4]
					b0[y], b1[y], b2[y], b3[y] = r4[0], r4[1], r4[2], r4[3]
				}
				transformTs(b0, twH, cscale)
				transformTs(b1, twH, cscale)
				transformTs(b2, twH, cscale)
				transformTs(b3, twH, cscale)
				for y := 0; y < h; y++ {
					r4 := g.Data[y*w+i : y*w+i+4 : y*w+i+4]
					r4[0], r4[1], r4[2], r4[3] = b0[y], b1[y], b2[y], b3[y]
				}
				continue
			}
			var xs [colBlock]int
			for j := 0; j < nb; j++ {
				if pick != nil {
					xs[j] = pick[i+j]
				} else {
					xs[j] = i + j
				}
			}
			for y := 0; y < h; y++ {
				row := g.Data[y*w:]
				for j := 0; j < nb; j++ {
					buf[j*h+y] = row[xs[j]]
				}
			}
			for j := 0; j < nb; j++ {
				transformTs(buf[j*h:(j+1)*h], twH, cscale)
			}
			for y := 0; y < h; y++ {
				row := g.Data[y*w:]
				for j := 0; j < nb; j++ {
					row[xs[j]] = buf[j*h+y]
				}
			}
		}
		putScratch(buf)
	}
	if cols == nil {
		parallelRange(w, p.Workers, func(x0, x1 int) { colPass(x0, x1, nil) })
	} else {
		parallelRange(len(cols), p.Workers, func(i0, i1 int) { colPass(i0, i1, cols) })
	}
	return nil
}

// parallelRange splits [0, n) into contiguous chunks across at most
// workers goroutines. With one worker (or a tiny n) it runs inline.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// scratchPools hands out per-length complex scratch vectors (the column
// buffers of the 2-D passes).
var scratchPools sync.Map // int -> *sync.Pool

func getScratch(n int) []complex128 {
	p, ok := scratchPools.Load(n)
	if !ok {
		p, _ = scratchPools.LoadOrStore(n, &sync.Pool{New: func() any {
			return make([]complex128, n)
		}})
	}
	return p.(*sync.Pool).Get().([]complex128)
}

func putScratch(v []complex128) {
	if p, ok := scratchPools.Load(len(v)); ok {
		p.(*sync.Pool).Put(v) //nolint:staticcheck // slice header boxing is fine here
	}
}

// gridPools recycles Grid storage per geometry so hot simulation loops
// stop allocating multi-megabyte fields on every call.
var gridPools sync.Map // [2]int -> *sync.Pool

// GetGrid returns a zeroed W x H grid from the pool.
func GetGrid(w, h int) *Grid {
	key := [2]int{w, h}
	mGridGets.Inc()
	p, ok := gridPools.Load(key)
	if !ok {
		p, _ = gridPools.LoadOrStore(key, &sync.Pool{New: func() any {
			mGridAllocs.Inc()
			return NewGrid(w, h)
		}})
	}
	g := p.(*sync.Pool).Get().(*Grid)
	for i := range g.Data {
		g.Data[i] = 0
	}
	return g
}

// PutGrid returns a grid obtained from GetGrid to its pool. The caller
// must not retain g.Data afterwards.
func PutGrid(g *Grid) {
	if g == nil {
		return
	}
	if p, ok := gridPools.Load([2]int{g.W, g.H}); ok {
		p.(*sync.Pool).Put(g)
	}
}
