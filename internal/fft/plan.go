package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// Plan2D is a reusable 2-D transform plan for one grid geometry: the
// twiddle tables for both axes are resolved once, and the row and column
// passes fan out across Workers goroutines. Forward2DP/Inverse2DP
// produce bit-identical results at any worker count (each row/column is
// an independent transform and the inverse scaling is a single uniform
// pass), so a parallel plan can stand in for the serial Grid transforms
// anywhere. A Plan2D is safe for concurrent use.
type Plan2D struct {
	W, H int
	// Workers bounds the goroutine fan-out per pass; values <= 1 run the
	// pass inline.
	Workers  int
	twW, twH []complex128
}

// NewPlan2D builds a plan for W x H grids with the default worker count
// (GOMAXPROCS).
func NewPlan2D(w, h int) (*Plan2D, error) {
	if !IsPow2(w) || !IsPow2(h) {
		return nil, fmt.Errorf("fft: plan %dx%d not power-of-two", w, h)
	}
	return &Plan2D{
		W: w, H: h,
		Workers: runtime.GOMAXPROCS(0),
		twW:     twiddles(w),
		twH:     twiddles(h),
	}, nil
}

// Forward2DP computes the in-place 2-D DFT of g (rows then columns),
// parallel over rows/columns up to p.Workers.
func (p *Plan2D) Forward2DP(g *Grid) error { return p.apply(g, false, nil, nil) }

// Inverse2DP computes the in-place 2-D inverse DFT of g with 1/(W*H)
// scaling, parallel over rows/columns up to p.Workers.
func (p *Plan2D) Inverse2DP(g *Grid) error { return p.apply(g, true, nil, nil) }

// Inverse2DPRows computes the inverse DFT of a grid whose input is
// nonzero only on the listed rows: the row pass transforms just those
// rows (an all-zero row transforms to zero, so skipping it is exact),
// while the column and scaling passes run in full. The result is
// bit-identical to Inverse2DP for such inputs. Band-limited spectra
// occupy a handful of rows, making this several times cheaper.
func (p *Plan2D) Inverse2DPRows(g *Grid, rows []int) error { return p.apply(g, true, rows, nil) }

// Forward2DPCols computes the forward DFT restricted to the listed
// output columns: the row pass runs in full, the column pass only on
// the listed columns. Listed columns match Forward2DP bit-for-bit;
// every other column is left in a partially transformed state and must
// not be read. Use when only a known frequency band is consumed.
func (p *Plan2D) Forward2DPCols(g *Grid, cols []int) error { return p.apply(g, false, nil, cols) }

func (p *Plan2D) apply(g *Grid, invert bool, rows, cols []int) error {
	if g.W != p.W || g.H != p.H {
		return fmt.Errorf("fft: plan %dx%d applied to grid %dx%d", p.W, p.H, g.W, g.H)
	}
	w, h := p.W, p.H
	for _, y := range rows {
		if y < 0 || y >= h {
			return fmt.Errorf("fft: row %d outside plan height %d", y, h)
		}
	}
	for _, x := range cols {
		if x < 0 || x >= w {
			return fmt.Errorf("fft: column %d outside plan width %d", x, w)
		}
	}
	// Rows.
	if rows == nil {
		parallelRange(h, p.Workers, func(y0, y1 int) {
			for y := y0; y < y1; y++ {
				transformT(g.Data[y*w:(y+1)*w], invert, p.twW)
			}
		})
	} else {
		parallelRange(len(rows), p.Workers, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				y := rows[i]
				transformT(g.Data[y*w:(y+1)*w], invert, p.twW)
			}
		})
	}
	// Columns, each gathered into a pooled scratch vector.
	colPass := func(x0, x1 int, pick []int) {
		col := getScratch(h)
		for i := x0; i < x1; i++ {
			x := i
			if pick != nil {
				x = pick[i]
			}
			for y := 0; y < h; y++ {
				col[y] = g.Data[y*w+x]
			}
			transformT(col, invert, p.twH)
			for y := 0; y < h; y++ {
				g.Data[y*w+x] = col[y]
			}
		}
		putScratch(col)
	}
	if cols == nil {
		parallelRange(w, p.Workers, func(x0, x1 int) { colPass(x0, x1, nil) })
	} else {
		parallelRange(len(cols), p.Workers, func(i0, i1 int) { colPass(i0, i1, cols) })
	}
	if invert {
		inv := 1 / float64(w*h)
		parallelRange(h, p.Workers, func(y0, y1 int) {
			for i := y0 * w; i < y1*w; i++ {
				v := g.Data[i]
				g.Data[i] = complex(real(v)*inv, imag(v)*inv)
			}
		})
	}
	return nil
}

// parallelRange splits [0, n) into contiguous chunks across at most
// workers goroutines. With one worker (or a tiny n) it runs inline.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// scratchPools hands out per-length complex scratch vectors (the column
// buffers of the 2-D passes).
var scratchPools sync.Map // int -> *sync.Pool

func getScratch(n int) []complex128 {
	p, ok := scratchPools.Load(n)
	if !ok {
		p, _ = scratchPools.LoadOrStore(n, &sync.Pool{New: func() any {
			return make([]complex128, n)
		}})
	}
	return p.(*sync.Pool).Get().([]complex128)
}

func putScratch(v []complex128) {
	if p, ok := scratchPools.Load(len(v)); ok {
		p.(*sync.Pool).Put(v) //nolint:staticcheck // slice header boxing is fine here
	}
}

// gridPools recycles Grid storage per geometry so hot simulation loops
// stop allocating multi-megabyte fields on every call.
var gridPools sync.Map // [2]int -> *sync.Pool

// GetGrid returns a zeroed W x H grid from the pool.
func GetGrid(w, h int) *Grid {
	key := [2]int{w, h}
	p, ok := gridPools.Load(key)
	if !ok {
		p, _ = gridPools.LoadOrStore(key, &sync.Pool{New: func() any {
			return NewGrid(w, h)
		}})
	}
	g := p.(*sync.Pool).Get().(*Grid)
	for i := range g.Data {
		g.Data[i] = 0
	}
	return g
}

// PutGrid returns a grid obtained from GetGrid to its pool. The caller
// must not retain g.Data afterwards.
func PutGrid(g *Grid) {
	if g == nil {
		return
	}
	if p, ok := gridPools.Load([2]int{g.W, g.H}); ok {
		p.(*sync.Pool).Put(g)
	}
}
