//go:build purego || (!amd64 && !arm64)

package fft

// installArchKernels is a no-op without architecture kernels: the
// purego build tag, and any GOARCH without a SIMD implementation, keep
// the pure-Go reference kernels installed.
func installArchKernels() {}
