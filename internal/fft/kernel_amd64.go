//go:build amd64 && !purego

package fft

// AVX2 butterfly kernels. The assembly multiplies complexes with the
// classic dup/swap/addsub sequence — separate VMULPD products combined
// by VADDSUBPD, never FMA — so every component is rounded exactly where
// the pure-Go reference rounds it and the outputs match the generic
// kernels value-for-value. Wrappers guard the alignment invariants the
// assembly assumes (half a multiple of 4 for complex128 stages and of
// 4 for complex64 stages, grid length a multiple of the stage size)
// and fall back to the generic kernels otherwise; with the tables the
// transforms build, the guards never fire.

// cpuSupportsAVX2 probes CPUID for AVX2 plus OS-enabled AVX state
// (OSXSAVE, XCR0 XMM|YMM).
func cpuSupportsAVX2() bool

//go:noescape
func stageAVX2(x *complex128, n, size int, wt *complex128)

//go:noescape
func stageScaleAVX2(x *complex128, n, size int, wt *complex128, scale float64)

//go:noescape
func stage24AVX2(x *complex128, n int, w1r, w1i float64)

//go:noescape
func stage32AVX2(x *complex64, n, size int, wt *complex64)

//go:noescape
func stageScale32AVX2(x *complex64, n, size int, wt *complex64, scale float32)

//go:noescape
func stage2432AVX2(x *complex64, n int, w1r, w1i float32)

// installArchKernels swaps in the AVX2 kernels when the CPU and OS
// support them; pre-AVX2 hardware keeps the pure-Go reference.
func installArchKernels() {
	if !cpuSupportsAVX2() {
		return
	}
	kernelName = kernelAVX2
	stage24 = stage24Asm
	stage = stageAsm
	stageScale = stageScaleAsm
	stage2432 = stage2432Asm
	stage32 = stage32Asm
	stageScale32 = stageScale32Asm
}

func stageAsm(x []complex128, size int, wt []complex128) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stageGeneric(x, size, wt)
		return
	}
	stageAVX2(&x[0], len(x), size, &wt[0])
}

func stageScaleAsm(x []complex128, size int, wt []complex128, scale float64) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stageScaleGeneric(x, size, wt, scale)
		return
	}
	stageScaleAVX2(&x[0], len(x), size, &wt[0], scale)
}

func stage24Asm(x []complex128, w1 complex128) {
	if len(x) < 4 || len(x)&3 != 0 {
		stage24Generic(x, w1)
		return
	}
	stage24AVX2(&x[0], len(x), real(w1), imag(w1))
}

func stage32Asm(x []complex64, size int, wt []complex64) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stage32Generic(x, size, wt)
		return
	}
	stage32AVX2(&x[0], len(x), size, &wt[0])
}

func stageScale32Asm(x []complex64, size int, wt []complex64, scale float32) {
	half := size >> 1
	if half < 4 || half&3 != 0 || len(wt) != half || len(x) == 0 || len(x)&(size-1) != 0 {
		stageScale32Generic(x, size, wt, scale)
		return
	}
	stageScale32AVX2(&x[0], len(x), size, &wt[0], scale)
}

func stage2432Asm(x []complex64, w1 complex64) {
	if len(x) < 4 || len(x)&3 != 0 {
		stage2432Generic(x, w1)
		return
	}
	stage2432AVX2(&x[0], len(x), real(w1), imag(w1))
}
