package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardKnownDC(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Errorf("DC bin = %v", x[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Errorf("bin %d = %v", i, x[i])
		}
	}
}

func TestForwardKnownImpulse(t *testing.T) {
	// An impulse transforms to an all-ones spectrum.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v", i, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	n := 16
	k := 3
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(k*i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := complex(0, 0)
		if i == k {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("length 3 should be rejected")
	}
	g := &Grid{W: 3, H: 4, Data: make([]complex128, 12)}
	if err := g.Forward2D(); err == nil {
		t.Error("3x4 grid should be rejected")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(7)) // 4..512
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if Forward(x) != nil || Inverse(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if Forward(x) != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-7*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), 0)
			b[i] = complex(rng.NormFloat64(), 0)
			sum[i] = a[i] + 2*b[i]
		}
		_ = Forward(a)
		_ = Forward(b)
		_ = Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+2*b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGrid(16, 8)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = g.Data[i]
	}
	if err := g.Forward2D(); err != nil {
		t.Fatal(err)
	}
	if err := g.Inverse2D(); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip diverged at %d", i)
		}
	}
}

func TestGrid2DSeparableTone(t *testing.T) {
	// A 2-D plane wave lands in exactly one bin.
	w, h := 16, 16
	kx, ky := 2, 5
	g := NewGrid(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ang := 2 * math.Pi * (float64(kx*x)/float64(w) + float64(ky*y)/float64(h))
			g.Set(x, y, cmplx.Exp(complex(0, ang)))
		}
	}
	if err := g.Forward2D(); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := complex(0, 0)
			if x == kx && y == ky {
				want = complex(float64(w*h), 0)
			}
			if cmplx.Abs(g.At(x, y)-want) > 1e-8 {
				t.Fatalf("bin (%d,%d) = %v, want %v", x, y, g.At(x, y), want)
			}
		}
	}
}

func TestLongTransformMatchesDirectDFT(t *testing.T) {
	// The scalar path reads precomputed twiddle tables instead of
	// accumulating w *= wStep across the butterfly, so even a long
	// transform must track a direct DFT to near machine precision.
	n := 4096
	rng := rand.New(rand.NewSource(7))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j%n) / float64(n)
			sum += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		want[k] = sum
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for k := range x {
		if d := cmplx.Abs(x[k] - want[k]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Errorf("size-%d transform deviates from direct DFT by %.3g, want < 1e-9", n, worst)
	}
}

func TestPlan2DMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, workers := range []int{1, 4} {
		g := NewGrid(64, 32)
		for i := range g.Data {
			g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ref := g.Clone()
		plan, err := NewPlan2D(64, 32)
		if err != nil {
			t.Fatal(err)
		}
		plan.Workers = workers
		if err := plan.Forward2DP(g); err != nil {
			t.Fatal(err)
		}
		if err := ref.Forward2D(); err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if cmplx.Abs(g.Data[i]-ref.Data[i]) > 1e-12 {
				t.Fatalf("workers=%d: planned forward diverges at %d", workers, i)
			}
		}
		if err := plan.Inverse2DP(g); err != nil {
			t.Fatal(err)
		}
		if err := ref.Inverse2D(); err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if cmplx.Abs(g.Data[i]-ref.Data[i]) > 1e-12 {
				t.Fatalf("workers=%d: planned inverse diverges at %d", workers, i)
			}
		}
	}
}

func TestPlan2DDeterministicAcrossWorkers(t *testing.T) {
	// Parallel fan-out must not change a single bit: each row/column is
	// independent and the inverse scaling is one uniform pass.
	mk := func() *Grid {
		g := NewGrid(32, 64)
		for i := range g.Data {
			g.Data[i] = complex(float64(i%13)-6, float64(i%7)-3)
		}
		return g
	}
	a, b := mk(), mk()
	pa, _ := NewPlan2D(32, 64)
	pa.Workers = 1
	pb, _ := NewPlan2D(32, 64)
	pb.Workers = 8
	if err := pa.Inverse2DP(a); err != nil {
		t.Fatal(err)
	}
	if err := pb.Inverse2DP(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("worker count changed bits at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestPlan2DRejectsMismatch(t *testing.T) {
	if _, err := NewPlan2D(3, 4); err == nil {
		t.Error("non-pow2 plan should be rejected")
	}
	plan, err := NewPlan2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Forward2DP(NewGrid(16, 8)); err == nil {
		t.Error("mismatched grid should be rejected")
	}
}

func TestGridPoolReturnsZeroed(t *testing.T) {
	g := GetGrid(8, 8)
	for i := range g.Data {
		g.Data[i] = complex(1, 2)
	}
	PutGrid(g)
	h := GetGrid(8, 8)
	defer PutGrid(h)
	for i, v := range h.Data {
		if v != 0 {
			t.Fatalf("pooled grid not zeroed at %d: %v", i, v)
		}
	}
	if h.W != 8 || h.H != 8 {
		t.Fatalf("pooled grid geometry %dx%d", h.W, h.H)
	}
}

func TestGridAtSetClone(t *testing.T) {
	g := NewGrid(4, 4)
	g.Set(1, 2, 3+4i)
	if g.At(1, 2) != 3+4i {
		t.Error("At/Set mismatch")
	}
	c := g.Clone()
	c.Set(1, 2, 0)
	if g.At(1, 2) != 3+4i {
		t.Error("Clone must not share storage")
	}
}

// TestInverse2DPRowsMatchesFull: for spectra supported on a known row
// set, the row-pruned inverse must be bit-identical to the full one.
func TestInverse2DPRowsMatchesFull(t *testing.T) {
	const w, h = 64, 32
	rng := rand.New(rand.NewSource(11))
	rows := []int{0, 1, 2, 3, 29, 30, 31}
	full := NewGrid(w, h)
	for _, y := range rows {
		for x := 0; x < w; x++ {
			full.Data[y*w+x] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	pruned := NewGrid(w, h)
	copy(pruned.Data, full.Data)
	p, err := NewPlan2D(w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse2DP(full); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse2DPRows(pruned, rows); err != nil {
		t.Fatal(err)
	}
	for i := range full.Data {
		if full.Data[i] != pruned.Data[i] {
			t.Fatalf("bit mismatch at %d: %v vs %v", i, full.Data[i], pruned.Data[i])
		}
	}
	if err := p.Inverse2DPRows(pruned, []int{h}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

// TestForward2DPColsMatchesFull: listed output columns of the pruned
// forward transform must match the full transform bit-for-bit.
func TestForward2DPColsMatchesFull(t *testing.T) {
	const w, h = 32, 64
	rng := rand.New(rand.NewSource(12))
	full := NewGrid(w, h)
	for i := range full.Data {
		full.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	pruned := NewGrid(w, h)
	copy(pruned.Data, full.Data)
	p, err := NewPlan2D(w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Forward2DP(full); err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 1, 5, 30, 31}
	if err := p.Forward2DPCols(pruned, cols); err != nil {
		t.Fatal(err)
	}
	for _, x := range cols {
		for y := 0; y < h; y++ {
			if full.Data[y*w+x] != pruned.Data[y*w+x] {
				t.Fatalf("bit mismatch at col %d row %d", x, y)
			}
		}
	}
	if err := p.Forward2DPCols(pruned, []int{-1}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}
