package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardKnownDC(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Errorf("DC bin = %v", x[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Errorf("bin %d = %v", i, x[i])
		}
	}
}

func TestForwardKnownImpulse(t *testing.T) {
	// An impulse transforms to an all-ones spectrum.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v", i, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	n := 16
	k := 3
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(k*i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := complex(0, 0)
		if i == k {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("length 3 should be rejected")
	}
	g := &Grid{W: 3, H: 4, Data: make([]complex128, 12)}
	if err := g.Forward2D(); err == nil {
		t.Error("3x4 grid should be rejected")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(7)) // 4..512
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if Forward(x) != nil || Inverse(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if Forward(x) != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-7*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), 0)
			b[i] = complex(rng.NormFloat64(), 0)
			sum[i] = a[i] + 2*b[i]
		}
		_ = Forward(a)
		_ = Forward(b)
		_ = Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+2*b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGrid(16, 8)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = g.Data[i]
	}
	if err := g.Forward2D(); err != nil {
		t.Fatal(err)
	}
	if err := g.Inverse2D(); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip diverged at %d", i)
		}
	}
}

func TestGrid2DSeparableTone(t *testing.T) {
	// A 2-D plane wave lands in exactly one bin.
	w, h := 16, 16
	kx, ky := 2, 5
	g := NewGrid(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ang := 2 * math.Pi * (float64(kx*x)/float64(w) + float64(ky*y)/float64(h))
			g.Set(x, y, cmplx.Exp(complex(0, ang)))
		}
	}
	if err := g.Forward2D(); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := complex(0, 0)
			if x == kx && y == ky {
				want = complex(float64(w*h), 0)
			}
			if cmplx.Abs(g.At(x, y)-want) > 1e-8 {
				t.Fatalf("bin (%d,%d) = %v, want %v", x, y, g.At(x, y), want)
			}
		}
	}
}

func TestGridAtSetClone(t *testing.T) {
	g := NewGrid(4, 4)
	g.Set(1, 2, 3+4i)
	if g.At(1, 2) != 3+4i {
		t.Error("At/Set mismatch")
	}
	c := g.Clone()
	c.Set(1, 2, 0)
	if g.At(1, 2) != 3+4i {
		t.Error("Clone must not share storage")
	}
}
