package fft

import (
	"os"

	"goopc/internal/obs"
)

// Butterfly kernel dispatch. The transforms run their per-stage hot
// loops through the function variables below, which default to the
// pure-Go reference kernels and are swapped for architecture-specific
// SIMD implementations (AVX2 on amd64, NEON on arm64) exactly once at
// process init. Selection:
//
//   - build with `-tags purego` to compile the assembly out entirely
//     (the per-arch install hooks become no-ops);
//   - set GOOPC_NOASM=1 (any non-empty value) to force the reference
//     kernels at runtime without rebuilding;
//   - otherwise the amd64 path probes CPUID for AVX2 (plus OS AVX
//     state support) and the arm64 path uses NEON unconditionally
//     (advanced SIMD is baseline on arm64).
//
// Every assembly kernel is proven value-identical to the reference by
// the equivalence and fuzz tests in equiv_test.go (zero-sign flips from
// exact-unit twiddles are the one permitted discrepancy, the same
// allowance the fused stage-2/4 pass has always had).

// Kernel names as reported by KernelName and the goopc_fft_kernel_*
// series.
const (
	kernelGeneric = "generic"
	kernelAVX2    = "avx2"
	kernelNEON    = "neon"
)

var (
	// kernelName is the active kernel, fixed at init.
	kernelName = kernelGeneric

	// complex128 stage kernels.
	stage24    = stage24Generic
	stage      = stageGeneric
	stageScale = stageScaleGeneric

	// complex64 stage kernels.
	stage2432    = stage2432Generic
	stage32      = stage32Generic
	stageScale32 = stageScale32Generic

	// mKernelDispatch counts transform entries (1-D calls and 2-D plan
	// applications) dispatched to the active kernel; the series name
	// carries the kernel, so which kernel served a process is readable
	// straight off /metrics.
	mKernelDispatch *obs.Counter
)

func init() {
	if os.Getenv("GOOPC_NOASM") == "" {
		installArchKernels()
	}
	obs.Default().SetLabel("fft_kernel", kernelName)
	mKernelDispatch = obs.Default().Counter(
		"goopc_fft_kernel_dispatch_"+kernelName+"_total",
		"transform entries (1-D calls and 2-D plan applies) run on the active butterfly kernel")
}

// KernelName reports which butterfly kernel the dispatch selected for
// this process: "avx2", "neon" or "generic".
func KernelName() string { return kernelName }
