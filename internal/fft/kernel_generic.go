package fft

// Pure-Go butterfly stage kernels: the arithmetic reference every
// architecture kernel must reproduce value-for-value (zero-sign flips
// aside). These are always compiled — the purego build tag and the
// GOOPC_NOASM environment variable select them at dispatch, and the
// equivalence and fuzz tests in equiv_test.go compare the assembly
// kernels against them across every stage size and stride.

// stage24Generic runs the fused size-2 and size-4 stages over x. The
// only twiddles are exactly 1 and w1 = tw[n/4], so the arithmetic is
// that of the plain radix-2 ladder. len(x) must be a multiple of 4.
func stage24Generic(x []complex128, w1 complex128) {
	for s := 0; s+3 < len(x); s += 4 {
		a0, a1, a2, a3 := x[s], x[s+1], x[s+2], x[s+3]
		b0, b1 := a0+a1, a0-a1
		b2, b3 := a2+a3, a2-a3
		t3 := b3 * w1
		x[s], x[s+2] = b0+b2, b0-b2
		x[s+1], x[s+3] = b1+t3, b1-t3
	}
}

// stageGeneric runs one radix-2 butterfly stage of the given size over
// every block of x, reading the stage's twiddles sequentially from wt
// (len(wt) == size/2). The halves are resliced to len(wt) so the
// compiler drops every bounds check, and the loop is unrolled 4-wide:
// butterflies are independent, so batching them changes nothing about
// each one's arithmetic. half is always a multiple of 4 here (the
// smallest stage is size 8), so the scalar tail only guards malformed
// tables.
func stageGeneric(x []complex128, size int, wt []complex128) {
	n := len(x)
	half := size >> 1
	for start := 0; start < n; start += size {
		lo := x[start : start+half : start+half][:len(wt)]
		hi := x[start+half : start+size : start+size][:len(wt)]
		k := 0
		for ; k+3 < len(wt); k += 4 {
			b0 := hi[k] * wt[k]
			b1 := hi[k+1] * wt[k+1]
			b2 := hi[k+2] * wt[k+2]
			b3 := hi[k+3] * wt[k+3]
			a0, a1, a2, a3 := lo[k], lo[k+1], lo[k+2], lo[k+3]
			lo[k] = a0 + b0
			hi[k] = a0 - b0
			lo[k+1] = a1 + b1
			hi[k+1] = a1 - b1
			lo[k+2] = a2 + b2
			hi[k+2] = a2 - b2
			lo[k+3] = a3 + b3
			hi[k+3] = a3 - b3
		}
		for ; k < len(wt); k++ {
			w := wt[k]
			b := hi[k] * w
			a := lo[k]
			lo[k] = a + b
			hi[k] = a - b
		}
	}
}

// stageScaleGeneric is stageGeneric with a uniform scaling folded into
// the butterfly outputs — the final stage of an inverse transform
// applies its 1/N here, saving the separate O(N) sweep. Scaling at the
// store computes exactly the expression the separate pass would
// (component-wise multiply of the already-rounded sum), so the result
// is bit-identical; for the power-of-two scales the inverse uses it is
// exact outright.
func stageScaleGeneric(x []complex128, size int, wt []complex128, scale float64) {
	n := len(x)
	half := size >> 1
	for start := 0; start < n; start += size {
		lo := x[start : start+half : start+half][:len(wt)]
		hi := x[start+half : start+size : start+size][:len(wt)]
		for k := range wt {
			b := hi[k] * wt[k]
			a := lo[k]
			s := a + b
			d := a - b
			lo[k] = complex(real(s)*scale, imag(s)*scale)
			hi[k] = complex(real(d)*scale, imag(d)*scale)
		}
	}
}

// cmul32 multiplies two complex64s in strict float32 arithmetic. Go's
// native complex64 multiply widens to complex128 and rounds back, a
// double rounding the single-precision SIMD kernels cannot reproduce;
// explicit component math pins the complex64 path to one deterministic
// answer — every product and sum rounded once in float32 — on every
// platform, assembly or not.
func cmul32(a, b complex64) complex64 {
	ar, ai := real(a), imag(a)
	br, bi := real(b), imag(b)
	return complex(ar*br-ai*bi, ai*br+ar*bi)
}

// stage2432Generic is the complex64 fused size-2/4 stage.
func stage2432Generic(x []complex64, w1 complex64) {
	for s := 0; s+3 < len(x); s += 4 {
		a0, a1, a2, a3 := x[s], x[s+1], x[s+2], x[s+3]
		b0, b1 := a0+a1, a0-a1
		b2, b3 := a2+a3, a2-a3
		t3 := cmul32(b3, w1)
		x[s], x[s+2] = b0+b2, b0-b2
		x[s+1], x[s+3] = b1+t3, b1-t3
	}
}

// stage32Generic is the complex64 radix-2 stage kernel.
func stage32Generic(x []complex64, size int, wt []complex64) {
	n := len(x)
	half := size >> 1
	for start := 0; start < n; start += size {
		lo := x[start : start+half : start+half][:len(wt)]
		hi := x[start+half : start+size : start+size][:len(wt)]
		k := 0
		for ; k+3 < len(wt); k += 4 {
			b0 := cmul32(hi[k], wt[k])
			b1 := cmul32(hi[k+1], wt[k+1])
			b2 := cmul32(hi[k+2], wt[k+2])
			b3 := cmul32(hi[k+3], wt[k+3])
			a0, a1, a2, a3 := lo[k], lo[k+1], lo[k+2], lo[k+3]
			lo[k] = a0 + b0
			hi[k] = a0 - b0
			lo[k+1] = a1 + b1
			hi[k+1] = a1 - b1
			lo[k+2] = a2 + b2
			hi[k+2] = a2 - b2
			lo[k+3] = a3 + b3
			hi[k+3] = a3 - b3
		}
		for ; k < len(wt); k++ {
			b := cmul32(hi[k], wt[k])
			a := lo[k]
			lo[k] = a + b
			hi[k] = a - b
		}
	}
}

// stageScale32Generic is the complex64 final stage with folded scaling.
func stageScale32Generic(x []complex64, size int, wt []complex64, scale float32) {
	n := len(x)
	half := size >> 1
	for start := 0; start < n; start += size {
		lo := x[start : start+half : start+half][:len(wt)]
		hi := x[start+half : start+size : start+size][:len(wt)]
		for k := range wt {
			b := cmul32(hi[k], wt[k])
			a := lo[k]
			s := a + b
			d := a - b
			lo[k] = complex(real(s)*scale, imag(s)*scale)
			hi[k] = complex(real(d)*scale, imag(d)*scale)
		}
	}
}
