// Package fft provides the radix-2 complex FFT the aerial-image
// simulator is built on: 1-D and 2-D transforms over power-of-two sizes,
// with the unitary-pair convention Forward (no scaling) / Inverse (1/N
// scaling) so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place DFT of x. len(x) must be a power of two.
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse DFT of x, scaled by 1/N.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
	return nil
}

// twiddleCache memoizes per-size twiddle tables: for size n the table
// holds exp(-2*pi*i*k/n) for k < n/2, which covers every butterfly stage
// of a size-n transform (stage size s reads the table at stride n/s).
var twiddleCache sync.Map // int -> []complex128

// twiddles returns the forward twiddle table for size n, building and
// caching it on first use.
func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

func transform(x []complex128, invert bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	transformT(x, invert, twiddles(n))
	return nil
}

// transformT is the in-place radix-2 butterfly pass over a power-of-two
// slice using a precomputed twiddle table for len(x). Every twiddle is
// read directly from the table rather than accumulated by repeated
// multiplication, so rounding error stays at table precision regardless
// of transform length.
func transformT(x []complex128, invert bool, tw []complex128) {
	n := len(x)
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := 0; k < half; k++ {
				w := tw[ti]
				if invert {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				ti += stride
			}
		}
	}
}

// Grid is a 2-D complex field stored row-major, sized W x H (both powers
// of two for transforms).
type Grid struct {
	W, H int
	Data []complex128
}

// NewGrid allocates a zeroed W x H grid.
func NewGrid(w, h int) *Grid {
	return &Grid{W: w, H: h, Data: make([]complex128, w*h)}
}

// At returns the value at (x, y).
func (g *Grid) At(x, y int) complex128 { return g.Data[y*g.W+x] }

// Set stores v at (x, y).
func (g *Grid) Set(x, y int, v complex128) { g.Data[y*g.W+x] = v }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.W, g.H)
	copy(out.Data, g.Data)
	return out
}

// Forward2D computes the in-place 2-D DFT (rows then columns).
func (g *Grid) Forward2D() error { return g.transform2D(false) }

// Inverse2D computes the in-place 2-D inverse DFT with 1/(W*H) scaling.
func (g *Grid) Inverse2D() error { return g.transform2D(true) }

func (g *Grid) transform2D(invert bool) error {
	if !IsPow2(g.W) || !IsPow2(g.H) {
		return fmt.Errorf("fft: grid %dx%d not power-of-two", g.W, g.H)
	}
	do := Forward
	if invert {
		do = Inverse
	}
	// Rows.
	for y := 0; y < g.H; y++ {
		if err := do(g.Data[y*g.W : (y+1)*g.W]); err != nil {
			return err
		}
	}
	// Columns via a scratch vector.
	col := make([]complex128, g.H)
	for x := 0; x < g.W; x++ {
		for y := 0; y < g.H; y++ {
			col[y] = g.Data[y*g.W+x]
		}
		if err := do(col); err != nil {
			return err
		}
		for y := 0; y < g.H; y++ {
			g.Data[y*g.W+x] = col[y]
		}
	}
	return nil
}
