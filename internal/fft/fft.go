// Package fft provides the radix-2 complex FFT the aerial-image
// simulator is built on: 1-D and 2-D transforms over power-of-two sizes,
// with the unitary-pair convention Forward (no scaling) / Inverse (1/N
// scaling) so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place DFT of x. len(x) must be a power of two.
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse DFT of x, scaled by 1/N. The
// scaling is folded into the final butterfly stage (Plan2D folds it
// into its column pass the same way), so no separate O(N) sweep runs;
// 1/N is an exact power of two, making the fold bit-identical to
// scaling afterwards.
func Inverse(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	mKernelDispatch.Inc()
	transformTs(x, tablesFor(n, true), 1/float64(n))
	return nil
}

// twiddleCache memoizes per-size twiddle tables: for size n the table
// holds exp(-2*pi*i*k/n) for k < n/2, which covers every butterfly stage
// of a size-n transform (stage size s reads the table at stride n/s).
var twiddleCache sync.Map // int -> []complex128

// twiddles returns the forward twiddle table for size n, building and
// caching it on first use.
func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

// twTables is the butterfly schedule for one transform size and
// direction: the stage-2 twiddle plus one sequential twiddle vector per
// remaining stage. Every entry is copied (or exactly conjugated, for
// the inverse) from the base twiddles table, so the butterflies consume
// the same values as a strided walk over that table — the layout only
// exists to make the hot loop read its twiddles contiguously and
// branch-free.
type twTables struct {
	// w1 is tw[n/4], the single non-unit twiddle of the size-4 stage.
	w1 complex128
	// stages[i] holds the size-(8<<i) stage's twiddles: stages[i][k] =
	// tw[k * n/size] for k < size/2.
	stages [][]complex128
	// rev is the bit-reversal swap list for the size.
	rev [][2]int32
}

// twTableCache memoizes twTables per (size, inverse).
var twTableCache sync.Map // [2]int -> *twTables

// revCache memoizes the bit-reversal swap list per size: the (i, j)
// pairs with i < j = reverse(i), precomputed so the permutation loop
// neither recomputes reversals nor visits fixed points.
var revCache sync.Map // int -> [][2]int32

func revPairs(n int) [][2]int32 {
	if v, ok := revCache.Load(n); ok {
		return v.([][2]int32)
	}
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	var pairs [][2]int32
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
	}
	v, _ := revCache.LoadOrStore(n, pairs)
	return v.([][2]int32)
}

// tablesFor returns the butterfly schedule for size n, direction
// invert, building and caching it on first use.
func tablesFor(n int, invert bool) *twTables {
	key := [2]int{n, 0}
	if invert {
		key[1] = 1
	}
	if v, ok := twTableCache.Load(key); ok {
		return v.(*twTables)
	}
	tw := twiddles(n)
	conj := func(w complex128) complex128 {
		if invert {
			return complex(real(w), -imag(w))
		}
		return w
	}
	t := &twTables{rev: revPairs(n)}
	if n >= 4 {
		t.w1 = conj(tw[n/4])
	}
	for size := 8; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		st := make([]complex128, half)
		for k := 0; k < half; k++ {
			st[k] = conj(tw[k*stride])
		}
		t.stages = append(t.stages, st)
	}
	v, _ := twTableCache.LoadOrStore(key, t)
	return v.(*twTables)
}

func transform(x []complex128, invert bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	mKernelDispatch.Inc()
	transformT(x, tablesFor(n, invert))
	return nil
}

// transformT is the in-place radix-2 butterfly pass over a power-of-two
// slice using the precomputed schedule for len(x). Every twiddle is
// read directly from a table rather than accumulated by repeated
// multiplication, so rounding error stays at table precision regardless
// of transform length. The stage loops run through the dispatched
// butterfly kernels (kernel.go): the fused size-2/4 pass, then one
// sequential-twiddle kernel call per remaining stage.
func transformT(x []complex128, t *twTables) { transformTs(x, t, 1) }

// transformTs is transformT with a uniform output scaling folded into
// the final butterfly stage (scale 1 disables it). Folding computes
// exactly what a separate scaling sweep over the stored sums would, so
// results are bit-identical to transform-then-scale while saving the
// extra O(N) pass; inverse transforms pass their exact power-of-two
// 1/N here. Transforms too short to reach a foldable stage (n < 8)
// scale in a trailing loop instead.
func transformTs(x []complex128, t *twTables, scale float64) {
	n := len(x)
	// Bit-reversal permutation via the precomputed swap list.
	for _, p := range t.rev {
		i, j := p[0], p[1]
		x[i], x[j] = x[j], x[i]
	}
	if n < 8 {
		if n >= 4 {
			stage24(x, t.w1)
		} else if n == 2 {
			x[0], x[1] = x[0]+x[1], x[0]-x[1]
		}
		if scale != 1 {
			for i := range x {
				x[i] = complex(real(x[i])*scale, imag(x[i])*scale)
			}
		}
		return
	}
	// Fused stages of size 2 and 4, then the remaining stages with
	// their per-stage twiddle vectors; the last stage absorbs the
	// scaling when one was requested.
	stage24(x, t.w1)
	size := 8
	last := len(t.stages) - 1
	for i, wt := range t.stages {
		if i == last && scale != 1 {
			stageScale(x, size, wt, scale)
		} else {
			stage(x, size, wt)
		}
		size <<= 1
	}
}

// Grid is a 2-D complex field stored row-major, sized W x H (both powers
// of two for transforms).
type Grid struct {
	W, H int
	Data []complex128
}

// NewGrid allocates a zeroed W x H grid.
func NewGrid(w, h int) *Grid {
	return &Grid{W: w, H: h, Data: make([]complex128, w*h)}
}

// At returns the value at (x, y).
func (g *Grid) At(x, y int) complex128 { return g.Data[y*g.W+x] }

// Set stores v at (x, y).
func (g *Grid) Set(x, y int, v complex128) { g.Data[y*g.W+x] = v }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.W, g.H)
	copy(out.Data, g.Data)
	return out
}

// Forward2D computes the in-place 2-D DFT (rows then columns).
func (g *Grid) Forward2D() error { return g.transform2D(false) }

// Inverse2D computes the in-place 2-D inverse DFT with 1/(W*H) scaling.
func (g *Grid) Inverse2D() error { return g.transform2D(true) }

func (g *Grid) transform2D(invert bool) error {
	if !IsPow2(g.W) || !IsPow2(g.H) {
		return fmt.Errorf("fft: grid %dx%d not power-of-two", g.W, g.H)
	}
	do := Forward
	if invert {
		do = Inverse
	}
	// Rows.
	for y := 0; y < g.H; y++ {
		if err := do(g.Data[y*g.W : (y+1)*g.W]); err != nil {
			return err
		}
	}
	// Columns via a scratch vector.
	col := make([]complex128, g.H)
	for x := 0; x < g.W; x++ {
		for y := 0; y < g.H; y++ {
			col[y] = g.Data[y*g.W+x]
		}
		if err := do(col); err != nil {
			return err
		}
		for y := 0; y < g.H; y++ {
			g.Data[y*g.W+x] = col[y]
		}
	}
	return nil
}
