package fft

import (
	"fmt"
	"sync"
)

// complex64 transform path. Same radix-2 schedule and conventions as
// the complex128 path — Forward (no scaling) / Inverse (1/N, folded
// into the final butterfly stage) — but over single-precision data,
// halving memory traffic and doubling SIMD lanes. Twiddles are rounded
// once from the float64 tables, so every complex64 transform of a size
// consumes identical twiddle values regardless of build or kernel.

// Forward32 computes the in-place DFT of x. len(x) must be a power of
// two.
func Forward32(x []complex64) error { return transform32(x, false) }

// Inverse32 computes the in-place inverse DFT of x, scaled by 1/N.
// Like Inverse, the exact power-of-two scaling is folded into the final
// butterfly stage.
func Inverse32(x []complex64) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	mKernelDispatch.Inc()
	transformTs32(x, tablesFor32(n, true), 1/float32(n))
	return nil
}

func transform32(x []complex64, invert bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	mKernelDispatch.Inc()
	transformTs32(x, tablesFor32(n, invert), 1)
	return nil
}

// twTables32 is the complex64 butterfly schedule for one size and
// direction, converted entry-for-entry from the float64 schedule; the
// bit-reversal swap list is shared.
type twTables32 struct {
	w1     complex64
	stages [][]complex64
	rev    [][2]int32
}

var twTable32Cache sync.Map // [2]int -> *twTables32

// tablesFor32 returns the complex64 schedule for size n, direction
// invert, converting from the float64 schedule on first use.
func tablesFor32(n int, invert bool) *twTables32 {
	key := [2]int{n, 0}
	if invert {
		key[1] = 1
	}
	if v, ok := twTable32Cache.Load(key); ok {
		return v.(*twTables32)
	}
	t64 := tablesFor(n, invert)
	t := &twTables32{w1: complex64(t64.w1), rev: t64.rev}
	for _, st := range t64.stages {
		st32 := make([]complex64, len(st))
		for i, w := range st {
			st32[i] = complex64(w)
		}
		t.stages = append(t.stages, st32)
	}
	v, _ := twTable32Cache.LoadOrStore(key, t)
	return v.(*twTables32)
}

// transformTs32 is the complex64 twin of transformTs: bit-reversal,
// fused size-2/4 stage, then per-stage kernels, with a uniform output
// scaling folded into the final stage (scale 1 disables it). Inverse
// transforms pass 1/N, which is exact in float32 for every power-of-two
// length that fits memory, so the fold is bit-identical to scaling
// afterwards.
func transformTs32(x []complex64, t *twTables32, scale float32) {
	n := len(x)
	for _, p := range t.rev {
		i, j := p[0], p[1]
		x[i], x[j] = x[j], x[i]
	}
	if n < 8 {
		if n >= 4 {
			stage2432(x, t.w1)
		} else if n == 2 {
			x[0], x[1] = x[0]+x[1], x[0]-x[1]
		}
		if scale != 1 {
			for i := range x {
				x[i] = complex(real(x[i])*scale, imag(x[i])*scale)
			}
		}
		return
	}
	stage2432(x, t.w1)
	size := 8
	last := len(t.stages) - 1
	for i, wt := range t.stages {
		if i == last && scale != 1 {
			stageScale32(x, size, wt, scale)
		} else {
			stage32(x, size, wt)
		}
		size <<= 1
	}
}

// Grid32 is a 2-D complex64 field stored row-major, sized W x H (both
// powers of two for transforms).
type Grid32 struct {
	W, H int
	Data []complex64
}

// NewGrid32 allocates a zeroed W x H complex64 grid.
func NewGrid32(w, h int) *Grid32 {
	return &Grid32{W: w, H: h, Data: make([]complex64, w*h)}
}

// Plan2D32 is the complex64 twin of Plan2D: a reusable parallel 2-D
// transform plan with the same 4-column blocked column pass and folded
// inverse scaling. Safe for concurrent use.
type Plan2D32 struct {
	W, H       int
	Workers    int
	fwdW, fwdH *twTables32
	invW, invH *twTables32
}

// NewPlan2D32 builds a complex64 plan for W x H grids. Workers defaults
// to the float64 plan's policy (GOMAXPROCS); set it directly to bound
// the fan-out.
func NewPlan2D32(w, h int) (*Plan2D32, error) {
	p64, err := NewPlan2D(w, h)
	if err != nil {
		return nil, err
	}
	return &Plan2D32{
		W: w, H: h,
		Workers: p64.Workers,
		fwdW:    tablesFor32(w, false),
		fwdH:    tablesFor32(h, false),
		invW:    tablesFor32(w, true),
		invH:    tablesFor32(h, true),
	}, nil
}

// Forward2DP computes the in-place 2-D DFT of g (rows then columns).
func (p *Plan2D32) Forward2DP(g *Grid32) error { return p.apply(g, false, nil) }

// Inverse2DP computes the in-place 2-D inverse DFT of g with 1/(W*H)
// scaling.
func (p *Plan2D32) Inverse2DP(g *Grid32) error { return p.apply(g, true, nil) }

// Inverse2DPRows computes the inverse DFT of a grid whose input is
// nonzero only on the listed rows, exactly like Plan2D.Inverse2DPRows.
func (p *Plan2D32) Inverse2DPRows(g *Grid32, rows []int) error { return p.apply(g, true, rows) }

func (p *Plan2D32) apply(g *Grid32, invert bool, rows []int) error {
	if g.W != p.W || g.H != p.H {
		return fmt.Errorf("fft: plan %dx%d applied to grid %dx%d", p.W, p.H, g.W, g.H)
	}
	mTransforms.Inc()
	mKernelDispatch.Inc()
	w, h := p.W, p.H
	for _, y := range rows {
		if y < 0 || y >= h {
			return fmt.Errorf("fft: row %d outside plan height %d", y, h)
		}
	}
	twW, twH := p.fwdW, p.fwdH
	if invert {
		twW, twH = p.invW, p.invH
	}
	if rows == nil {
		parallelRange(h, p.Workers, func(y0, y1 int) {
			for y := y0; y < y1; y++ {
				transformTs32(g.Data[y*w:(y+1)*w], twW, 1)
			}
		})
	} else {
		parallelRange(len(rows), p.Workers, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				y := rows[i]
				transformTs32(g.Data[y*w:(y+1)*w], twW, 1)
			}
		})
	}
	// Columns, blocked 4 wide like Plan2D; the inverse's 1/(W*H) is
	// folded into each column transform's final stage. 1/(W*H) is an
	// exact float32 power of two for any grid that fits memory.
	cscale := float32(1)
	if invert {
		cscale = 1 / float32(w*h)
	}
	const colBlock = 4
	parallelRange(w, p.Workers, func(x0, x1 int) {
		buf := getScratch32(colBlock * h)
		b0, b1 := buf[0*h:1*h], buf[1*h:2*h]
		b2, b3 := buf[2*h:3*h], buf[3*h:4*h]
		for i := x0; i < x1; i += colBlock {
			nb := x1 - i
			if nb > colBlock {
				nb = colBlock
			}
			if nb == colBlock {
				for y := 0; y < h; y++ {
					r4 := g.Data[y*w+i : y*w+i+4 : y*w+i+4]
					b0[y], b1[y], b2[y], b3[y] = r4[0], r4[1], r4[2], r4[3]
				}
				transformTs32(b0, twH, cscale)
				transformTs32(b1, twH, cscale)
				transformTs32(b2, twH, cscale)
				transformTs32(b3, twH, cscale)
				for y := 0; y < h; y++ {
					r4 := g.Data[y*w+i : y*w+i+4 : y*w+i+4]
					r4[0], r4[1], r4[2], r4[3] = b0[y], b1[y], b2[y], b3[y]
				}
				continue
			}
			for y := 0; y < h; y++ {
				row := g.Data[y*w:]
				for j := 0; j < nb; j++ {
					buf[j*h+y] = row[i+j]
				}
			}
			for j := 0; j < nb; j++ {
				transformTs32(buf[j*h:(j+1)*h], twH, cscale)
			}
			for y := 0; y < h; y++ {
				row := g.Data[y*w:]
				for j := 0; j < nb; j++ {
					row[i+j] = buf[j*h+y]
				}
			}
		}
		putScratch32(buf)
	})
	return nil
}

// scratchPools32 hands out per-length complex64 scratch vectors.
var scratchPools32 sync.Map // int -> *sync.Pool

func getScratch32(n int) []complex64 {
	p, ok := scratchPools32.Load(n)
	if !ok {
		p, _ = scratchPools32.LoadOrStore(n, &sync.Pool{New: func() any {
			return make([]complex64, n)
		}})
	}
	return p.(*sync.Pool).Get().([]complex64)
}

func putScratch32(v []complex64) {
	if p, ok := scratchPools32.Load(len(v)); ok {
		p.(*sync.Pool).Put(v) //nolint:staticcheck // slice header boxing is fine here
	}
}

// gridPools32 recycles Grid32 storage per geometry.
var gridPools32 sync.Map // [2]int -> *sync.Pool

// GetGrid32 returns a zeroed W x H complex64 grid from the pool.
func GetGrid32(w, h int) *Grid32 {
	key := [2]int{w, h}
	mGridGets.Inc()
	p, ok := gridPools32.Load(key)
	if !ok {
		p, _ = gridPools32.LoadOrStore(key, &sync.Pool{New: func() any {
			mGridAllocs.Inc()
			return NewGrid32(w, h)
		}})
	}
	g := p.(*sync.Pool).Get().(*Grid32)
	for i := range g.Data {
		g.Data[i] = 0
	}
	return g
}

// PutGrid32 returns a grid obtained from GetGrid32 to its pool. The
// caller must not retain g.Data afterwards.
func PutGrid32(g *Grid32) {
	if g == nil {
		return
	}
	if p, ok := gridPools32.Load([2]int{g.W, g.H}); ok {
		p.(*sync.Pool).Put(g)
	}
}
