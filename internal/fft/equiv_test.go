package fft

import (
	"encoding/binary"
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// transformRef is the pre-optimization butterfly ladder, kept verbatim
// as the arithmetic reference: a plain radix-2 pass with a strided walk
// over the twiddle table and per-butterfly conjugation for the inverse.
// The production transformT reorganizes the twiddle storage, fuses the
// first two stages, and blocks the column gathers — all of which must
// reproduce this ladder's values exactly (sign-of-zero aside), or every
// cached kernel set and golden table in the repo silently shifts.
func transformRef(x []complex128, invert bool, tw []complex128) {
	n := len(x)
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := 0; k < half; k++ {
				w := tw[ti]
				if invert {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				ti += stride
			}
		}
	}
}

func TestTransformMatchesReferenceExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 2048; n <<= 1 {
		for _, invert := range []bool{false, true} {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			ref := make([]complex128, n)
			copy(ref, x)
			transformRef(ref, invert, twiddles(n))
			transformT(x, tablesFor(n, invert))
			for i := range x {
				// == (not bit comparison): +0 and -0 compare equal, and a
				// zero-sign flip from the fused unit-twiddle stages is the
				// one discrepancy the optimization is allowed.
				if x[i] != ref[i] {
					t.Fatalf("n=%d invert=%v: bin %d = %v, reference %v", n, invert, i, x[i], ref[i])
				}
			}
		}
	}
}

func randVec(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestStageKernelsMatchGeneric cross-checks the dispatched complex128
// stage kernels (AVX2 on amd64, NEON on arm64) against the pure-Go
// reference with == across every stage size the transforms use. On a
// purego build or under GOOPC_NOASM the dispatched vars ARE the
// reference and the test is a tautology — the log line records which
// case ran.
func TestStageKernelsMatchGeneric(t *testing.T) {
	t.Logf("active kernel: %s", KernelName())
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 16, 32, 64, 256, 1024, 2048} {
		for size := 8; size <= n; size <<= 1 {
			var st []complex128
			for i, v := range tablesFor(n, false).stages {
				if 8<<i == size {
					st = v
				}
			}
			a := randVec(n, rng)
			b := append([]complex128(nil), a...)
			stage(a, size, st)
			stageGeneric(b, size, st)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("stage n=%d size=%d idx=%d: %v vs %v", n, size, i, a[i], b[i])
				}
			}
			a = randVec(n, rng)
			b = append([]complex128(nil), a...)
			stageScale(a, size, st, 1/float64(n))
			stageScaleGeneric(b, size, st, 1/float64(n))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("stageScale n=%d size=%d idx=%d: %v vs %v", n, size, i, a[i], b[i])
				}
			}
		}
		w1 := tablesFor(n, true).w1
		a := randVec(n, rng)
		b := append([]complex128(nil), a...)
		stage24(a, w1)
		stage24Generic(b, w1)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("stage24 n=%d idx=%d: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}

// TestInverseScaleFoldBitIdentical proves the folded 1/N of Inverse
// against the two-pass formulation: run the reference inverse ladder,
// scale in a separate sweep, and demand == on every bin. The fold
// multiplies exactly the already-rounded butterfly outputs the sweep
// would read, so any difference is a kernel bug, not rounding.
func TestInverseScaleFoldBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for n := 2; n <= 2048; n <<= 1 {
		x := randVec(n, rng)
		ref := append([]complex128(nil), x...)
		transformRef(ref, true, twiddles(n))
		scale := 1 / float64(n)
		for i := range ref {
			ref[i] = complex(real(ref[i])*scale, imag(ref[i])*scale)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("n=%d bin %d: folded %v, scale-after %v", n, i, x[i], ref[i])
			}
		}
	}
}

// FuzzTransformEquivalence feeds arbitrary bit patterns through the
// full dispatched transform (bit-reversal, fused 2/4 stage, per-stage
// kernels, folded scaling) and the verbatim reference ladder, requiring
// value equality on every bin. Non-finite and astronomically large
// inputs are clamped: Inf-Inf and NaN poison == on both sides equally,
// which would mask, not find, kernel divergence.
func FuzzTransformEquivalence(f *testing.F) {
	seed := make([]byte, 16*16)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < len(seed); i += 8 {
		binary.LittleEndian.PutUint64(seed[i:], math.Float64bits(rng.NormFloat64()))
	}
	f.Add(seed, false)
	f.Add(seed[:64], true)
	f.Fuzz(func(t *testing.T, data []byte, invert bool) {
		vals := len(data) / 16
		if vals < 2 {
			t.Skip()
		}
		n := 1 << (bits.Len(uint(vals)) - 1) // largest power of two <= vals
		if n > 4096 {
			n = 4096
		}
		load := func(off int) float64 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			if !(math.Abs(v) < 1e100) { // also catches NaN
				return 1
			}
			return v
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(load(16*i), load(16*i+8))
		}
		ref := append([]complex128(nil), x...)
		transformRef(ref, invert, twiddles(n))
		scale := 1.0
		if invert {
			scale = 1 / float64(n)
			for i := range ref {
				ref[i] = complex(real(ref[i])*scale, imag(ref[i])*scale)
			}
		}
		transformTs(x, tablesFor(n, invert), scale)
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("n=%d invert=%v bin %d: %v vs reference %v", n, invert, i, x[i], ref[i])
			}
		}
	})
}

func TestPlanColumnBlockingMatchesSerialGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Non-square, and sizes not divisible by the column block so the
	// tail path runs.
	for _, dims := range [][2]int{{8, 32}, {32, 8}, {64, 64}, {2, 16}, {1, 8}} {
		w, h := dims[0], dims[1]
		g := NewGrid(w, h)
		for i := range g.Data {
			g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		s := g.Clone()
		p, err := NewPlan2D(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Forward2DP(g); err != nil {
			t.Fatal(err)
		}
		if err := s.Forward2D(); err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if g.Data[i] != s.Data[i] {
				t.Fatalf("%dx%d forward: bin %d = %v, serial %v", w, h, i, g.Data[i], s.Data[i])
			}
		}
		if err := p.Inverse2DP(g); err != nil {
			t.Fatal(err)
		}
		if err := s.Inverse2D(); err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if g.Data[i] != s.Data[i] {
				t.Fatalf("%dx%d inverse: bin %d = %v, serial %v", w, h, i, g.Data[i], s.Data[i])
			}
		}
	}
}
