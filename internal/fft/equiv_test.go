package fft

import (
	"math/bits"
	"math/rand"
	"testing"
)

// transformRef is the pre-optimization butterfly ladder, kept verbatim
// as the arithmetic reference: a plain radix-2 pass with a strided walk
// over the twiddle table and per-butterfly conjugation for the inverse.
// The production transformT reorganizes the twiddle storage, fuses the
// first two stages, and blocks the column gathers — all of which must
// reproduce this ladder's values exactly (sign-of-zero aside), or every
// cached kernel set and golden table in the repo silently shifts.
func transformRef(x []complex128, invert bool, tw []complex128) {
	n := len(x)
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := 0; k < half; k++ {
				w := tw[ti]
				if invert {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				ti += stride
			}
		}
	}
}

func TestTransformMatchesReferenceExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 2048; n <<= 1 {
		for _, invert := range []bool{false, true} {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			ref := make([]complex128, n)
			copy(ref, x)
			transformRef(ref, invert, twiddles(n))
			transformT(x, tablesFor(n, invert))
			for i := range x {
				// == (not bit comparison): +0 and -0 compare equal, and a
				// zero-sign flip from the fused unit-twiddle stages is the
				// one discrepancy the optimization is allowed.
				if x[i] != ref[i] {
					t.Fatalf("n=%d invert=%v: bin %d = %v, reference %v", n, invert, i, x[i], ref[i])
				}
			}
		}
	}
}

func TestPlanColumnBlockingMatchesSerialGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Non-square, and sizes not divisible by the column block so the
	// tail path runs.
	for _, dims := range [][2]int{{8, 32}, {32, 8}, {64, 64}, {2, 16}, {1, 8}} {
		w, h := dims[0], dims[1]
		g := NewGrid(w, h)
		for i := range g.Data {
			g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		s := g.Clone()
		p, err := NewPlan2D(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Forward2DP(g); err != nil {
			t.Fatal(err)
		}
		if err := s.Forward2D(); err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if g.Data[i] != s.Data[i] {
				t.Fatalf("%dx%d forward: bin %d = %v, serial %v", w, h, i, g.Data[i], s.Data[i])
			}
		}
		if err := p.Inverse2DP(g); err != nil {
			t.Fatal(err)
		}
		if err := s.Inverse2D(); err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if g.Data[i] != s.Data[i] {
				t.Fatalf("%dx%d inverse: bin %d = %v, serial %v", w, h, i, g.Data[i], s.Data[i])
			}
		}
	}
}
