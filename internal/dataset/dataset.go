// Package dataset is the dataset factory (DESIGN.md 5j): it enumerates
// layout generators (internal/layout/gen catalog) × optics settings ×
// correction levels from a declarative Spec, runs every generated cell
// through the calibrated correction flow, and writes per-sample records
// — target layout, corrected mask, printed contour, per-fragment
// converged bias and residual EPE — into sharded, manifest-indexed
// JSONL on disk.
//
// Shards are deterministic: the same spec (including its seed)
// regenerates byte-identical shard bytes, which the manifest's
// per-shard SHA-256 fingerprints enforce. Every sample's layout is
// derived from a seed computed from (spec seed, generator, variant,
// rep) alone, so a single shard can be regenerated — or audited —
// without re-running the rest of the sweep. internal/prior fits its
// initial-bias table from these manifests.
package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"goopc/internal/geom"
	"goopc/internal/layout/gen"
	"goopc/internal/resist"
)

// manifestVersion guards the on-disk format.
const manifestVersion = 1

// ManifestFile is the manifest's file name inside a dataset directory.
const ManifestFile = "manifest.json"

// OpticsSpec is one optics point of the sweep: the accuracy/speed knobs
// layered over the default exposure setup (248 nm / NA 0.68). The
// defaults match the experiment harness, so priors fitted from a sweep
// transfer to benchmark flows.
type OpticsSpec struct {
	SourceSteps int     `json:"source_steps"`
	GuardNM     float64 `json:"guard_nm"`
}

// DefaultOptics is the experiment-harness optics point.
func DefaultOptics() OpticsSpec { return OpticsSpec{SourceSteps: 5, GuardNM: 1200} }

// GeneratorSpec selects a catalog generator and how much of it to run.
type GeneratorSpec struct {
	// Name is a gen.Catalog entry name.
	Name string `json:"name"`
	// Variants selects parameterizations (default: all the entry has).
	Variants []int `json:"variants,omitempty"`
	// Count is the number of seeded repetitions per variant (default 1).
	// Only rng-driven generators (stdcell, routed) produce distinct
	// geometry across reps.
	Count int `json:"count,omitempty"`
}

// Spec declares a sweep: the cross-product of generators × variants ×
// reps × optics × levels, plus the seed everything derives from.
type Spec struct {
	Name string `json:"name"`
	// Seed is the root of every per-sample layout seed (satellite:
	// recorded in the manifest; equal seeds regenerate equal shards).
	Seed int64 `json:"seed"`
	// Levels are the correction levels to run ("L2", "L3"; default L3).
	Levels []string `json:"levels,omitempty"`
	// Optics are the optics points (default: DefaultOptics).
	Optics []OpticsSpec `json:"optics,omitempty"`
	// Generators are the layout populations.
	Generators []GeneratorSpec `json:"generators"`
	// ShardSamples caps records per shard file (default 16).
	ShardSamples int `json:"shard_samples,omitempty"`
}

// Normalize fills defaults and validates the spec against the catalog.
func Normalize(spec Spec) (Spec, error) {
	if spec.Name == "" {
		spec.Name = "sweep"
	}
	if len(spec.Levels) == 0 {
		spec.Levels = []string{"L3"}
	}
	for _, l := range spec.Levels {
		if l != "L2" && l != "L3" {
			return spec, fmt.Errorf("dataset: level %q: only the model levels L2/L3 produce fragment biases", l)
		}
	}
	if len(spec.Optics) == 0 {
		spec.Optics = []OpticsSpec{DefaultOptics()}
	}
	if spec.ShardSamples <= 0 {
		spec.ShardSamples = 16
	}
	if len(spec.Generators) == 0 {
		return spec, fmt.Errorf("dataset: spec %q has no generators", spec.Name)
	}
	for i, g := range spec.Generators {
		entry, err := gen.FindCatalog(g.Name)
		if err != nil {
			return spec, err
		}
		if len(g.Variants) == 0 {
			vs := make([]int, entry.Variants)
			for v := range vs {
				vs[v] = v
			}
			spec.Generators[i].Variants = vs
		} else {
			for _, v := range g.Variants {
				if v < 0 || v >= entry.Variants {
					return spec, fmt.Errorf("dataset: generator %q variant %d out of range [0,%d)", g.Name, v, entry.Variants)
				}
			}
		}
		if g.Count <= 0 {
			spec.Generators[i].Count = 1
		}
	}
	return spec, nil
}

// Sample is one enumerated sweep point.
type Sample struct {
	Index   int
	Gen     string
	Variant int
	Rep     int
	Level   string
	Optics  OpticsSpec
	// Seed drives the layout build rng. It depends only on (spec seed,
	// generator, variant, rep) — NOT on level or optics — so every
	// level/optics point of the cross-product corrects the same
	// geometry.
	Seed int64
}

// Enumerate expands a normalized spec into its ordered sample list.
// The order is part of the format: shard contents follow it.
func Enumerate(spec Spec) ([]Sample, error) {
	spec, err := Normalize(spec)
	if err != nil {
		return nil, err
	}
	var samples []Sample
	for _, g := range spec.Generators {
		for _, v := range g.Variants {
			for rep := 0; rep < g.Count; rep++ {
				seed := layoutSeed(spec.Seed, g.Name, v, rep)
				for _, o := range spec.Optics {
					for _, l := range spec.Levels {
						samples = append(samples, Sample{
							Index: len(samples), Gen: g.Name, Variant: v, Rep: rep,
							Level: l, Optics: o, Seed: seed,
						})
					}
				}
			}
		}
	}
	return samples, nil
}

// layoutSeed derives a sample's layout rng seed.
func layoutSeed(root int64, name string, variant, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", root, name, variant, rep)
	return int64(h.Sum64())
}

// FragRecord is one fragment's outcome: identity within the target's
// deterministic fragmentation (poly/edge/frag indices — fitting
// re-fragments the recorded target and pairs by these), the converged
// bias the engine settled on, and the residual EPE measured on the
// final printed image at the fragment midpoint.
type FragRecord struct {
	Poly int `json:"poly"`
	Edge int `json:"edge"`
	Frag int `json:"frag"`
	Kind int `json:"kind"`
	// MidX/MidY and Len locate the fragment on the drawn edge (debug
	// and plotting; fitting uses the index triple).
	MidX geom.Coord `json:"mx"`
	MidY geom.Coord `json:"my"`
	Len  geom.Coord `json:"len"`
	Bias geom.Coord `json:"bias"`
	EPE  float64    `json:"epe"`
	// Unresolved marks a midpoint where the final-image contour search
	// found no edge (EPE is then 0 and meaningless).
	Unresolved bool `json:"unresolved,omitempty"`
}

// Record is one sample's full outcome — everything a learned prior (or
// any other consumer) needs, with no reference back to the generator.
type Record struct {
	Index    int              `json:"index"`
	Gen      string           `json:"gen"`
	Variant  int              `json:"variant"`
	Rep      int              `json:"rep"`
	Level    string           `json:"level"`
	Optics   OpticsSpec       `json:"optics"`
	Seed     int64            `json:"seed"`
	Target   []geom.Polygon   `json:"target"`
	Mask     []geom.Polygon   `json:"mask"`
	SRAFs    []geom.Polygon   `json:"srafs,omitempty"`
	Contours []resist.Contour `json:"contours,omitempty"`
	Frags    []FragRecord     `json:"frags"`
	// Iters / RMS / Converged are the engine run's convergence outcome
	// (cold — dataset generation never applies a prior).
	Iters     int     `json:"iters"`
	RMS       float64 `json:"rms"`
	Converged bool    `json:"converged"`
}

// ShardInfo indexes one shard file in the manifest.
type ShardInfo struct {
	File       string `json:"file"`
	FirstIndex int    `json:"first_index"`
	Samples    int    `json:"samples"`
	// SHA256 is the content fingerprint regeneration must reproduce.
	SHA256 string `json:"sha256"`
}

// Manifest indexes a generated dataset directory.
type Manifest struct {
	Version int  `json:"version"`
	Spec    Spec `json:"spec"`
	// Seed repeats Spec.Seed at top level: the regeneration contract is
	// explicit in the index, not buried in the spec.
	Seed int64 `json:"seed"`
	// Fingerprint hashes the normalized spec — two manifests with equal
	// fingerprints index byte-identical datasets.
	Fingerprint string `json:"fingerprint"`
	// Mode is "local" (in-process solves; regenerable) or "remote"
	// (solved by an opcd cluster; not locally regenerable because the
	// cluster runs the tiled scheduler).
	Mode string `json:"mode"`
	// FragSpec is the fragmentation recipe the flow used; fitting
	// re-fragments recorded targets with it to recapture signatures.
	FragSpec geom.FragmentSpec `json:"frag_spec"`
	Samples  int               `json:"samples"`
	Shards   []ShardInfo       `json:"shards"`
}

// SpecFingerprint hashes a spec's normalized form.
func SpecFingerprint(spec Spec) (string, error) {
	spec, err := Normalize(spec)
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("dataset: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16]), nil
}

// shardName formats the i-th shard's file name.
func shardName(i int) string { return fmt.Sprintf("shard-%04d.jsonl", i) }
