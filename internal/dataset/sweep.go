package dataset

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// CorrectOut is what the bulk-batch correction seam returns for one
// sample: the corrected mask geometry plus the solve's convergence
// accounting (an opcd job report's totals, for remote solves).
type CorrectOut struct {
	Mask      []geom.Polygon
	SRAFs     []geom.Polygon
	Iters     int
	RMS       float64
	Converged bool
}

// Options configures a sweep run.
type Options struct {
	// Flows returns the calibrated flow for an optics point. Nil uses
	// the package cache over core.NewFlow (experiment-compatible
	// settings). The flow also serves metrology (final image, contours,
	// EPE) for remotely solved samples.
	Flows func(OpticsSpec) (*core.Flow, error)
	// Correct, when non-nil, replaces the in-process model solve — the
	// bulk-batch seam cmd/datasetgen's remote mode plugs an opcd client
	// into. Per-fragment biases are then recovered geometrically from
	// the returned mask. Manifests written this way are marked
	// Mode "remote" and are not locally regenerable (the cluster runs
	// the tiled scheduler, not the untiled sample path).
	Correct func(ctx context.Context, s Sample, target []geom.Polygon) (CorrectOut, error)
	// Log, when non-nil, receives one progress line per shard.
	Log func(format string, args ...any)
}

func (o Options) flows() func(OpticsSpec) (*core.Flow, error) {
	if o.Flows != nil {
		return o.Flows
	}
	return DefaultFlows
}

var (
	defFlowMu sync.Mutex
	defFlows  = map[OpticsSpec]*core.Flow{}
)

// DefaultFlows builds (once per optics point) the calibrated flow a
// sweep corrects with. The rule bias table is skipped: the model levels
// zero it before SRAF seeding, so it never influences a dataset record,
// and skipping it cuts sweep setup time.
func DefaultFlows(o OpticsSpec) (*core.Flow, error) {
	defFlowMu.Lock()
	defer defFlowMu.Unlock()
	if f, ok := defFlows[o]; ok {
		return f, nil
	}
	s := optics.Default()
	s.SourceSteps = o.SourceSteps
	s.GuardNM = o.GuardNM
	f, err := core.NewFlow(core.Options{Optics: s, SkipBiasTable: true})
	if err != nil {
		return nil, err
	}
	defFlows[o] = f
	return f, nil
}

// Generate runs the sweep and writes shards plus manifest into dir,
// creating it if needed. Generation is cold by construction: sample
// flows carry no prior, so records capture the full iterative solve the
// prior will later shortcut.
func Generate(ctx context.Context, spec Spec, dir string, opt Options) (*Manifest, error) {
	t0 := time.Now()
	spec, err := Normalize(spec)
	if err != nil {
		return nil, err
	}
	samples, err := Enumerate(spec)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	fp, err := SpecFingerprint(spec)
	if err != nil {
		return nil, err
	}
	mode := "local"
	if opt.Correct != nil {
		mode = "remote"
	}
	man := &Manifest{
		Version: manifestVersion, Spec: spec, Seed: spec.Seed, Fingerprint: fp,
		Mode: mode, FragSpec: geom.DefaultFragmentSpec(), Samples: len(samples),
	}
	for first := 0; first < len(samples); first += spec.ShardSamples {
		end := first + spec.ShardSamples
		if end > len(samples) {
			end = len(samples)
		}
		data, err := shardBytes(ctx, samples[first:end], opt)
		if err != nil {
			return nil, err
		}
		si := len(man.Shards)
		name := shardName(si)
		if err := writeFileAtomic(filepath.Join(dir, name), data); err != nil {
			return nil, err
		}
		man.Shards = append(man.Shards, ShardInfo{
			File: name, FirstIndex: first, Samples: end - first, SHA256: sha256Hex(data),
		})
		mShards.Inc()
		mBytes.Add(int64(len(data)))
		if opt.Log != nil {
			opt.Log("dataset: shard %s: samples %d..%d (%d bytes)", name, first, end-1, len(data))
		}
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	gSweepSeconds.Set(time.Since(t0).Seconds())
	return man, nil
}

// shardBytes produces one shard's exact file contents — the unit of
// the byte-identical regeneration contract.
func shardBytes(ctx context.Context, samples []Sample, opt Options) ([]byte, error) {
	var buf bytes.Buffer
	for _, s := range samples {
		rec, err := runSample(ctx, s, opt)
		if err != nil {
			return nil, fmt.Errorf("dataset: sample %d (%s/v%d r%d %s): %w", s.Index, s.Gen, s.Variant, s.Rep, s.Level, err)
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: encode sample %d: %w", s.Index, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		mSamples.Inc()
	}
	return buf.Bytes(), nil
}

// BuildTarget generates a sample's drawn geometry (deterministic in the
// sample seed). Exposed so batch submitters can ship the same target to
// a cluster that Generate would correct locally.
func BuildTarget(s Sample) ([]geom.Polygon, error) {
	entry, err := gen.FindCatalog(s.Gen)
	if err != nil {
		return nil, err
	}
	ly := layout.New(fmt.Sprintf("ds-%s-%d", s.Gen, s.Index))
	rng := rand.New(rand.NewSource(s.Seed))
	cell, layer, err := entry.Build(ly, "S", s.Variant, rng)
	if err != nil {
		return nil, err
	}
	target := layout.Flatten(cell, layer)
	if len(target) == 0 {
		return nil, fmt.Errorf("generator %q produced no geometry on its layer", s.Gen)
	}
	return target, nil
}

// runSample corrects one sample and measures its record.
func runSample(ctx context.Context, s Sample, opt Options) (Record, error) {
	target, err := BuildTarget(s)
	if err != nil {
		return Record{}, err
	}
	flow, err := opt.flows()(s.Optics)
	if err != nil {
		return Record{}, err
	}
	level := core.L3
	if s.Level == "L2" {
		level = core.L2
	}
	rec := Record{
		Index: s.Index, Gen: s.Gen, Variant: s.Variant, Rep: s.Rep,
		Level: s.Level, Optics: s.Optics, Seed: s.Seed, Target: target,
	}
	var frags [][]geom.Fragment
	if opt.Correct != nil {
		out, err := opt.Correct(ctx, s, target)
		if err != nil {
			return Record{}, err
		}
		rec.Mask, rec.SRAFs = out.Mask, out.SRAFs
		rec.Iters, rec.RMS, rec.Converged = out.Iters, out.RMS, out.Converged
		frags = recoverFragments(target, out.Mask, flow.Spec, flow.MRC.MaxBias)
	} else {
		res, conv, fr, err := flow.CorrectSample(target, level)
		if err != nil {
			return Record{}, err
		}
		rec.Mask, rec.SRAFs = res.Corrected, res.SRAFs
		rec.Iters, rec.Converged = conv.Iterations, conv.Converged
		rec.RMS = conv.Final().RMS
		frags = fr
	}

	// Metrology on the final printed image: contours for the record,
	// residual EPE per fragment midpoint.
	window := opc.WindowFor(target, flow.Ambit)
	full := make([]geom.Polygon, 0, len(rec.Mask)+len(rec.SRAFs))
	full = append(append(full, rec.Mask...), rec.SRAFs...)
	im, err := flow.Sim.AerialDefocusCtx(ctx, full, window, flow.Sim.S.DefocusNM)
	if err != nil {
		return Record{}, err
	}
	rec.Contours = resist.Contours(im, flow.Threshold, window)
	for _, fl := range frags {
		for _, f := range fl {
			mid := f.Edge.Mid()
			n := f.Edge.Normal()
			fr := FragRecord{
				Poly: f.PolyIndex, Edge: f.EdgeIndex, Frag: f.FragIndex,
				Kind: int(f.Kind), MidX: mid.X, MidY: mid.Y,
				Len: f.Edge.Len(), Bias: f.Bias,
			}
			epe, eerr := resist.EPE(im, flow.Threshold, float64(mid.X), float64(mid.Y),
				float64(n.X), float64(n.Y), 400)
			if eerr != nil {
				fr.Unresolved = true
			} else {
				fr.EPE = epe
			}
			rec.Frags = append(rec.Frags, fr)
		}
	}
	return rec, nil
}

// recoverFragments reconstructs per-fragment biases from a corrected
// mask that arrived without fragment state (the remote seam): the
// target is re-fragmented deterministically and each fragment's bias is
// the offset of the nearest parallel corrected edge covering its
// midpoint, bounded by the MRC bias clamp.
func recoverFragments(target, mask []geom.Polygon, spec geom.FragmentSpec, maxBias geom.Coord) [][]geom.Fragment {
	out := make([][]geom.Fragment, len(target))
	for pi, poly := range target {
		frags := geom.FragmentPolygon(poly, pi, spec)
		if pi < len(mask) {
			for i := range frags {
				if b, ok := recoverBias(frags[i], mask[pi], maxBias); ok {
					frags[i].Bias = b
				}
			}
		}
		out[pi] = frags
	}
	return out
}

// recoverBias measures the signed offset along the fragment's outward
// normal from its drawn edge to the nearest parallel corrected edge
// whose span covers the fragment midpoint.
func recoverBias(f geom.Fragment, corrected geom.Polygon, maxBias geom.Coord) (geom.Coord, bool) {
	mid := f.Edge.Mid()
	n := f.Edge.Normal()
	vertical := n.X != 0 // drawn edge is vertical; corrected candidates too
	best, found := geom.Coord(0), false
	for i := range corrected {
		a, b := corrected[i], corrected[(i+1)%len(corrected)]
		var off geom.Coord
		if vertical {
			if a.X != b.X {
				continue
			}
			lo, hi := minC(a.Y, b.Y), maxC(a.Y, b.Y)
			if mid.Y < lo || mid.Y > hi {
				continue
			}
			off = (a.X - mid.X) * n.X
		} else {
			if a.Y != b.Y {
				continue
			}
			lo, hi := minC(a.X, b.X), maxC(a.X, b.X)
			if mid.X < lo || mid.X > hi {
				continue
			}
			off = (a.Y - mid.Y) * n.Y
		}
		if off < -maxBias || off > maxBias {
			continue
		}
		if !found || absC(off) < absC(best) {
			best, found = off, true
		}
	}
	return best, found
}

func minC(a, b geom.Coord) geom.Coord {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b geom.Coord) geom.Coord {
	if a > b {
		return a
	}
	return b
}

func absC(a geom.Coord) geom.Coord {
	if a < 0 {
		return -a
	}
	return a
}
