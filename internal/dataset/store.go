package dataset

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// writeFileAtomic writes data via temp file + rename.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ds-*")
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("dataset: write %s: %w", path, werr)
	}
	return nil
}

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// writeManifest serializes the manifest (indented — it is the
// human-readable index of the dataset).
func writeManifest(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: encode manifest: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, ManifestFile), append(data, '\n'))
}

// LoadManifest reads a dataset directory's manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", dir, err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("dataset: %s: manifest version %d, want %d", dir, man.Version, manifestVersion)
	}
	return &man, nil
}

// Verify checks every shard file on disk against the manifest's
// fingerprints (integrity — cheap; it reads but does not recompute).
func Verify(dir string) error {
	man, err := LoadManifest(dir)
	if err != nil {
		return err
	}
	for _, sh := range man.Shards {
		data, err := os.ReadFile(filepath.Join(dir, sh.File))
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		if got := sha256Hex(data); got != sh.SHA256 {
			return fmt.Errorf("dataset: shard %s: sha256 %s, manifest says %s", sh.File, got, sh.SHA256)
		}
	}
	return nil
}

// RegenerateShard recomputes one shard's bytes from the manifest's spec
// alone — the determinism contract (satellite: explicit seed threading
// makes regeneration byte-identical). The caller compares the returned
// bytes against the on-disk shard. Remote-mode manifests are refused:
// their solves ran the cluster's tiled scheduler, not this path.
func RegenerateShard(ctx context.Context, dir string, shard int, opt Options) ([]byte, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.Mode != "local" {
		return nil, fmt.Errorf("dataset: manifest mode %q is not locally regenerable", man.Mode)
	}
	if shard < 0 || shard >= len(man.Shards) {
		return nil, fmt.Errorf("dataset: shard %d out of range [0,%d)", shard, len(man.Shards))
	}
	samples, err := Enumerate(man.Spec)
	if err != nil {
		return nil, err
	}
	sh := man.Shards[shard]
	if sh.FirstIndex+sh.Samples > len(samples) {
		return nil, fmt.Errorf("dataset: shard %s spans samples beyond the spec's enumeration", sh.File)
	}
	opt.Correct = nil // regeneration is always the local path
	return shardBytes(ctx, samples[sh.FirstIndex:sh.FirstIndex+sh.Samples], opt)
}

// ScanRecords streams every record of the dataset through fn in sample
// order, stopping at the first error.
func ScanRecords(dir string, fn func(Record) error) error {
	man, err := LoadManifest(dir)
	if err != nil {
		return err
	}
	for _, sh := range man.Shards {
		f, err := os.Open(filepath.Join(dir, sh.File))
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<28)
		for sc.Scan() {
			var rec Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				f.Close()
				return fmt.Errorf("dataset: %s: %w", sh.File, err)
			}
			mScanned.Inc()
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		serr := sc.Err()
		f.Close()
		if serr != nil {
			return fmt.Errorf("dataset: %s: %w", sh.File, serr)
		}
	}
	return nil
}
