package dataset

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"goopc/internal/core"
	"goopc/internal/geom"
)

// testSpec is a tiny but non-trivial sweep: two pattern populations,
// one optics point, model-full correction.
func testSpec() Spec {
	return Spec{
		Name: "smoke",
		Seed: 7,
		Generators: []GeneratorSpec{
			{Name: "through-pitch", Variants: []int{0}},
			{Name: "corner", Variants: []int{0}},
		},
		ShardSamples: 1,
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 3,
		Generators: []GeneratorSpec{
			{Name: "through-pitch", Count: 2},
			{Name: "routed", Variants: []int{1}},
		},
		Levels: []string{"L2", "L3"},
	}
	a, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// through-pitch: 3 variants x 2 reps x 2 levels; routed: 1 x 1 x 2.
	if len(a) != 3*2*2+2 {
		t.Fatalf("enumerated %d samples", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across enumerations: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Levels of one rep share the layout seed; distinct reps do not.
	if a[0].Seed != a[1].Seed {
		t.Error("same rep, different level: layout seeds must match")
	}
	if a[0].Seed == a[2].Seed {
		t.Error("distinct reps must have distinct layout seeds")
	}
}

func TestEnumerateRejectsUnknown(t *testing.T) {
	if _, err := Enumerate(Spec{Generators: []GeneratorSpec{{Name: "nope"}}}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := Enumerate(Spec{Levels: []string{"L1"}, Generators: []GeneratorSpec{{Name: "corner"}}}); err == nil {
		t.Fatal("non-model level accepted")
	}
}

// TestSweepFitWarm is the subsystem's end-to-end contract in one pass
// over one generated dataset (generation dominates the test budget):
//
//  1. shards regenerate byte-identically from the manifest's spec+seed;
//  2. a prior fitted from the dataset warm-starts a rerun of the same
//     sweep into strictly fewer total model iterations;
//  3. the warmed output converges to the cold result (final RMS within
//     the flow's ConvergeEps).
func TestSweepFitWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep generation in -short")
	}
	ctx := context.Background()
	dir := t.TempDir()
	spec := testSpec()

	man, err := Generate(ctx, spec, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if man.Samples != 2 || len(man.Shards) != 2 {
		t.Fatalf("manifest: %d samples in %d shards, want 2 in 2", man.Samples, len(man.Shards))
	}
	if man.Seed != spec.Seed {
		t.Fatalf("manifest seed %d, want %d", man.Seed, spec.Seed)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("integrity: %v", err)
	}

	// (1) Byte-identical regeneration of a shard, from spec alone.
	regen, err := RegenerateShard(ctx, dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(filepath.Join(dir, man.Shards[0].File))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regen, disk) {
		t.Fatalf("shard 0 regeneration differs: %d vs %d bytes", len(regen), len(disk))
	}

	// Record sanity: fragments carry biases and resolved EPEs.
	biased, resolved, coldIters := 0, 0, 0
	err = ScanRecords(dir, func(rec Record) error {
		coldIters += rec.Iters
		for _, fr := range rec.Frags {
			if fr.Bias != 0 {
				biased++
			}
			if !fr.Unresolved {
				resolved++
			}
		}
		if len(rec.Contours) == 0 {
			t.Errorf("record %d has no printed contours", rec.Index)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if biased == 0 || resolved == 0 {
		t.Fatalf("records look empty: %d biased, %d resolved fragments", biased, resolved)
	}
	if coldIters == 0 {
		t.Fatal("cold sweep spent no model iterations; nothing for a prior to save")
	}

	// (2) Fit and rerun warm.
	tab, err := Fit(dir, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() == 0 {
		t.Fatal("fitted table is empty")
	}
	samples, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	warmIters, warmedFrags := 0, 0
	for _, s := range samples {
		target, err := BuildTarget(s)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := DefaultFlows(s.Optics)
		if err != nil {
			t.Fatal(err)
		}
		warm := *cold
		warm.Prior = tab
		_, conv, _, err := warm.CorrectSample(target, core.L3)
		if err != nil {
			t.Fatal(err)
		}
		warmIters += conv.Iterations
		warmedFrags += conv.WarmStarted

		// (3) Warm output converges to the cold result.
		var coldRec Record
		if err := ScanRecords(dir, func(rec Record) error {
			if rec.Index == s.Index {
				coldRec = rec
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if d := conv.Final().RMS - coldRec.RMS; d > cold.ConvergeEps || d < -10*cold.ConvergeEps {
			t.Errorf("sample %d: warm RMS %.3f vs cold %.3f (eps %.2f)", s.Index, conv.Final().RMS, coldRec.RMS, cold.ConvergeEps)
		}
	}
	if warmedFrags == 0 {
		t.Fatal("prior warmed no fragments on its own fitting corpus")
	}
	if warmIters >= coldIters {
		t.Fatalf("warm start saved nothing: %d warm vs %d cold iterations", warmIters, coldIters)
	}
	t.Logf("cold %d iters, warm %d iters, %d fragments warmed, %d table entries (%d conflicts)",
		coldIters, warmIters, warmedFrags, tab.Len(), tab.Conflicts())
}

func TestRecoverBias(t *testing.T) {
	// A drawn square biased outward by 10 on its right edge.
	target := geom.Polygon{geom.Pt(0, 0), geom.Pt(400, 0), geom.Pt(400, 400), geom.Pt(0, 400)}
	corrected := geom.Polygon{geom.Pt(0, 0), geom.Pt(410, 0), geom.Pt(410, 400), geom.Pt(0, 400)}
	frags := geom.FragmentPolygon(target, 0, geom.DefaultFragmentSpec())
	found := false
	for _, f := range frags {
		b, ok := recoverBias(f, corrected, 40)
		if !ok {
			continue
		}
		mid := f.Edge.Mid()
		switch {
		case mid.X == 400: // right edge fragments
			if b != 10 {
				t.Errorf("right-edge fragment at %v: bias %d, want 10", mid, b)
			}
			found = true
		case mid.Y == 0 || mid.Y == 400 || mid.X == 0:
			if b != 0 {
				t.Errorf("unbiased edge fragment at %v: bias %d, want 0", mid, b)
			}
		}
	}
	if !found {
		t.Fatal("no right-edge fragment recovered")
	}
}
