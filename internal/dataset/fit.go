package dataset

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/patmatch"
	"goopc/internal/prior"
)

// DefaultSigRadius is the signature capture radius (DBU) priors are
// fitted at: past the optical ambit at 248 nm / NA 0.68 (2λ/NA ≈ 730),
// so a signature sees everything that meaningfully couples into its
// fragment's bias — the precondition for prior.DefaultConflictSpread's
// same-geometry noise tolerance.
const DefaultSigRadius geom.Coord = 1000

// Fit builds an initial-bias prior table from a generated dataset:
// every record at the requested level is re-fragmented with the
// manifest's fragmentation recipe, each fragment's D4-canonical
// signature is captured against the record's drawn target, and the
// engine's converged bias is accumulated into the table. Conflicting
// observations (and any 64-bit signature collisions) poison their
// entries — internal/prior then refuses to predict them.
func Fit(dir string, radius geom.Coord, level string) (*prior.Table, error) {
	if radius <= 0 {
		radius = DefaultSigRadius
	}
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	if level == "" {
		level = man.Spec.Levels[0]
	}
	tab := prior.New(radius, level)
	iterSum, runs := 0, 0
	err = ScanRecords(dir, func(rec Record) error {
		if rec.Level != level {
			return nil
		}
		// Deterministic recapture: the engine fragmented the recorded
		// target with the same recipe, so (poly, edge, frag) triples
		// pair exactly.
		type fragKey struct{ p, e, f int }
		frags := map[fragKey]geom.Fragment{}
		for pi, poly := range rec.Target {
			for _, f := range geom.FragmentPolygon(poly, pi, man.FragSpec) {
				frags[fragKey{f.PolyIndex, f.EdgeIndex, f.FragIndex}] = f
			}
		}
		for _, fr := range rec.Frags {
			f, ok := frags[fragKey{fr.Poly, fr.Edge, fr.Frag}]
			if !ok {
				continue
			}
			tab.Add(patmatch.CaptureFragment(f, rec.Target, radius), fr.Bias)
		}
		tab.Samples++
		iterSum += rec.Iters
		runs++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if runs == 0 {
		return nil, fmt.Errorf("dataset: no records at level %s in %s", level, dir)
	}
	tab.Runs = runs
	tab.MeanIters = float64(iterSum) / float64(runs)
	return tab, nil
}
