package dataset

import "goopc/internal/obs"

// Registry series for the dataset factory: sweep output volume and the
// record stream fitting consumes.
var (
	mSamples = obs.Default().Counter("goopc_dataset_samples_total",
		"sweep samples corrected and recorded")
	mShards = obs.Default().Counter("goopc_dataset_shards_total",
		"dataset shard files written")
	mBytes = obs.Default().Counter("goopc_dataset_bytes_total",
		"dataset shard bytes written")
	mScanned = obs.Default().Counter("goopc_dataset_records_scanned_total",
		"dataset records streamed by ScanRecords (stats, fitting)")
	gSweepSeconds = obs.Default().Gauge("goopc_dataset_sweep_seconds",
		"wall-clock duration of the most recent Generate run")
)
