package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"goopc/internal/obs/trace"
)

// BuildInfo fingerprints the binary and host a run executed on.
type BuildInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Revision is the VCS commit the binary was built from (suffixed
	// "+dirty" for modified trees), or "devel" when the build carries no
	// VCS stamp (go test, go run on a non-repo checkout).
	Revision string `json:"revision,omitempty"`
	// FFTKernel is the butterfly kernel the fft package dispatched at
	// init (avx2, neon, or generic), read from the registry label the
	// package publishes — obs cannot import fft directly.
	FFTKernel string `json:"fft_kernel,omitempty"`
}

// CollectBuildInfo gathers the build fingerprint every RunReport embeds
// and every cmd's -version flag prints.
func CollectBuildInfo() BuildInfo {
	b := BuildInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Revision:   "devel",
		FFTKernel:  Default().Label("fft_kernel"),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "+dirty"
			}
			b.Revision = rev
		}
	}
	return b
}

// String renders the fingerprint as the one-line -version output, e.g.
// "go1.24.0 linux/amd64 rev=devel cpus=8 fft=avx2".
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s/%s rev=%s cpus=%d", b.GoVersion, b.GOOS, b.GOARCH, b.Revision, b.NumCPU)
	if b.FFTKernel != "" {
		s += " fft=" + b.FFTKernel
	}
	return s
}

// RunReport is the per-run observability artifact: what ran (tool,
// args, build and settings fingerprint), when, the full metrics
// snapshot, and the phase trace tree. Emitted by `opcflow -report` and
// `benchtables -report`; the schema is documented in DESIGN.md §5d.
type RunReport struct {
	// Tool names the emitting command; Args its command line.
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	// Build fingerprints the binary; Settings the run configuration
	// (tool-specific: flag values, optics settings, ...).
	Build    BuildInfo `json:"build"`
	Settings any       `json:"settings,omitempty"`
	// Start/End bound the run; WallSeconds is their difference.
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	WallSeconds float64   `json:"wall_seconds"`
	// Metrics is the registry snapshot at End; Trace the span tree.
	Metrics Snapshot  `json:"metrics"`
	Trace   *SpanNode `json:"trace,omitempty"`
	// Flight is the flight-recorder digest (event/drop accounting and
	// per-outcome tile counts) when the run was traced (DESIGN.md 5h).
	Flight *trace.Summary `json:"flight,omitempty"`
}

// NewRunReport starts a report for the named tool. settings may be nil.
func NewRunReport(tool string, args []string, settings any) *RunReport {
	return &RunReport{
		Tool:     tool,
		Args:     args,
		Build:    CollectBuildInfo(),
		Settings: settings,
		Start:    time.Now(),
	}
}

// Finish stamps the end time and captures the registry snapshot and
// (when root is non-nil) the trace tree.
func (r *RunReport) Finish(reg *Registry, root *Span) {
	r.End = time.Now()
	r.WallSeconds = r.End.Sub(r.Start).Seconds()
	if reg != nil {
		r.Metrics = reg.Snapshot()
	}
	if root != nil {
		t := root.Tree()
		r.Trace = &t
	}
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
