//go:build !unix

package obs

import "time"

// processCPU is unavailable on this platform; spans report zero CPU.
func processCPU() time.Duration { return 0 }
