package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Span is one timed phase of a run. Spans nest: Start creates a child,
// End freezes the span's wall-clock, process-CPU and heap-allocation
// deltas. The resulting tree (Tree) is the RunReport trace.
//
// All Span methods are nil-safe no-ops, so call sites can thread an
// optional span through without guarding (`f.Span.Start("pass-1")` on a
// nil f.Span returns nil, and nil.End() does nothing).
//
// CPU and allocation deltas are process-wide (rusage user+system time
// and the runtime's cumulative heap-allocation total), so sibling spans
// running concurrently each observe the whole process's activity during
// their window; within a single-threaded phase sequence they partition
// exactly. Child creation is safe from concurrent goroutines.
//
// When the span carries a registry (NewSpan's reg, inherited by
// children), Start and End maintain the registry's "phase" label with
// the path of the innermost open span, which is what the /status
// endpoint reports as the current phase.
type Span struct {
	name   string
	reg    *Registry
	parent *Span
	start  time.Time
	cpu0   time.Duration
	alloc0 uint64

	mu       sync.Mutex
	children []*Span
	done     bool
	wall     time.Duration
	cpu      time.Duration
	alloc    uint64
}

// NewSpan starts a root span. reg may be nil; when set, the registry's
// "phase" label tracks the innermost open span under this root.
func NewSpan(name string, reg *Registry) *Span {
	s := &Span{
		name:   name,
		reg:    reg,
		start:  time.Now(),
		cpu0:   processCPU(),
		alloc0: heapAllocBytes(),
	}
	if reg != nil {
		reg.SetLabel("phase", name)
	}
	return s
}

// Start creates and starts a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		name:   name,
		reg:    s.reg,
		parent: s,
		start:  time.Now(),
		cpu0:   processCPU(),
		alloc0: heapAllocBytes(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.SetLabel("phase", c.Path())
	}
	return c
}

// End freezes the span's deltas. Idempotent; ending an already-ended
// span keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.wall = time.Since(s.start)
	s.cpu = processCPU() - s.cpu0
	s.alloc = heapAllocBytes() - s.alloc0
	s.mu.Unlock()
	if s.reg != nil {
		if s.parent != nil {
			s.reg.SetLabel("phase", s.parent.Path())
		} else {
			s.reg.SetLabel("phase", s.name+" (done)")
		}
	}
}

// Path returns the slash-joined span path from the root.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	if s.parent == nil {
		return s.name
	}
	return s.parent.Path() + "/" + s.name
}

// Wall returns the span's wall-clock duration (elapsed so far when the
// span is still open).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.wall
	}
	return time.Since(s.start)
}

// SpanNode is the JSON-serializable form of a span subtree.
type SpanNode struct {
	Name string `json:"name"`
	// Start is the span's absolute start time.
	Start time.Time `json:"start"`
	// WallMS is wall-clock milliseconds; CPUMS process CPU (user +
	// system) milliseconds during the span; AllocBytes the process heap
	// bytes allocated during it. Open spans report progress so far.
	WallMS     float64    `json:"wall_ms"`
	CPUMS      float64    `json:"cpu_ms"`
	AllocBytes uint64     `json:"alloc_bytes"`
	Children   []SpanNode `json:"children,omitempty"`
}

// Tree freezes the span subtree into its serializable form.
func (s *Span) Tree() SpanNode {
	if s == nil {
		return SpanNode{}
	}
	s.mu.Lock()
	n := SpanNode{Name: s.name, Start: s.start}
	if s.done {
		n.WallMS = float64(s.wall) / float64(time.Millisecond)
		n.CPUMS = float64(s.cpu) / float64(time.Millisecond)
		n.AllocBytes = s.alloc
	} else {
		n.WallMS = float64(time.Since(s.start)) / float64(time.Millisecond)
		n.CPUMS = float64(processCPU()-s.cpu0) / float64(time.Millisecond)
		n.AllocBytes = heapAllocBytes() - s.alloc0
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

// heapAllocBytes returns the runtime's cumulative heap allocation total
// (monotone; no stop-the-world, unlike runtime.ReadMemStats).
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}
