package obs

import (
	"strings"
	"testing"
)

func TestGaugeFuncSampledAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("test_sampled", "help text", func() float64 { return v })
	if got := r.Snapshot().Gauges["test_sampled"]; got != 1 {
		t.Fatalf("sampled gauge = %v, want 1", got)
	}
	v = 42
	if got := r.Snapshot().Gauges["test_sampled"]; got != 42 {
		t.Fatalf("sampled gauge after change = %v, want 42", got)
	}
	// Idempotent: re-registering keeps the first callback.
	r.GaugeFunc("test_sampled", "other", func() float64 { return -1 })
	if got := r.Snapshot().Gauges["test_sampled"]; got != 42 {
		t.Fatalf("re-registration replaced callback: %v", got)
	}
	// Kind collision panics like every other registry collision.
	defer func() {
		if recover() == nil {
			t.Fatalf("counter over sampled gauge did not panic")
		}
	}()
	r.Counter("test_sampled", "")
}

func TestRuntimeGaugesOnPrometheusAndStatus(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	RegisterRuntimeGauges(r) // second Inspector on the same registry

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE goopc_runtime_goroutines gauge",
		"# TYPE goopc_runtime_heap_inuse_bytes gauge",
		"# TYPE goopc_runtime_gc_pause_total_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	snap := r.Snapshot()
	if snap.Gauges["goopc_runtime_goroutines"] < 1 {
		t.Fatalf("goroutines gauge = %v, want >= 1", snap.Gauges["goopc_runtime_goroutines"])
	}
	if snap.Gauges["goopc_runtime_heap_inuse_bytes"] <= 0 {
		t.Fatalf("heap gauge = %v, want > 0", snap.Gauges["goopc_runtime_heap_inuse_bytes"])
	}

	ins := &Inspector{Registry: r}
	payload := ins.statusPayload()
	gauges, ok := payload["gauges"].(map[string]float64)
	if !ok || gauges["goopc_runtime_goroutines"] < 1 {
		t.Fatalf("/status gauges missing runtime health: %v", payload["gauges"])
	}
	if r.Snapshot().Gauges["goopc_runtime_gc_pause_total_seconds"] < 0 {
		t.Fatalf("gc pause total negative")
	}
}
