package obs

import (
	"strings"
	"testing"
)

func TestSeriesNameEscaping(t *testing.T) {
	cases := []struct {
		base   string
		labels []string
		want   string
	}{
		{"m", nil, "m"},
		{"m", []string{"job", "j1"}, `m{job="j1"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		{"m", []string{"v", `say "hi"`}, `m{v="say \"hi\""}`},
		{"m", []string{"v", `back\slash`}, `m{v="back\\slash"}`},
		{"m", []string{"v", "two\nlines"}, `m{v="two\nlines"}`},
	}
	for _, c := range cases {
		if got := SeriesName(c.base, c.labels...); got != c.want {
			t.Errorf("SeriesName(%q, %v) = %q, want %q", c.base, c.labels, got, c.want)
		}
	}
}

func TestSplitSeries(t *testing.T) {
	base, labels := splitSeries(`m{job="j1"}`)
	if base != "m" || labels != `job="j1"` {
		t.Errorf("splitSeries = %q, %q", base, labels)
	}
	base, labels = splitSeries("plain")
	if base != "plain" || labels != "" {
		t.Errorf("splitSeries(plain) = %q, %q", base, labels)
	}
}

// TestPrometheusLabeledSeries checks that labeled series registered via
// SeriesName expose under one HELP/TYPE header per base name, with the
// label bodies intact and values escaped.
func TestPrometheusLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(SeriesName("jobs_finished_total", "state", "done"), "jobs by state").Add(3)
	r.Counter(SeriesName("jobs_finished_total", "state", "failed"), "jobs by state").Add(1)
	r.Gauge(SeriesName("job_tiles", "job", `we"ird`), "tiles").Set(7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if got := strings.Count(out, "# TYPE jobs_finished_total counter"); got != 1 {
		t.Errorf("TYPE header for labeled counter family appears %d times, want 1\n%s", got, out)
	}
	if got := strings.Count(out, "# HELP jobs_finished_total "); got != 1 {
		t.Errorf("HELP header appears %d times, want 1\n%s", got, out)
	}
	for _, want := range []string{
		`jobs_finished_total{state="done"} 3`,
		`jobs_finished_total{state="failed"} 1`,
		`job_tiles{job="we\"ird"} 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing sample %q in:\n%s", want, out)
		}
	}
	// The base name must never leak an unlabeled duplicate sample.
	if strings.Contains(out, "jobs_finished_total 4") {
		t.Errorf("unlabeled aggregate sample leaked:\n%s", out)
	}
}

// TestPrometheusHistogramCumulative checks the histogram exposition
// contract: le buckets are cumulative, the +Inf bucket equals the
// sample count, and _sum/_count close the family.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 0.7, 1.5, 4, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="2"} 3`,
		`lat_seconds_bucket{le="5"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
		"lat_seconds_sum 106.7",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets must appear in ascending le order.
	i1 := strings.Index(out, `le="1"`)
	i2 := strings.Index(out, `le="2"`)
	i5 := strings.Index(out, `le="5"`)
	iInf := strings.Index(out, `le="+Inf"`)
	if !(i1 < i2 && i2 < i5 && i5 < iInf) {
		t.Errorf("bucket order wrong (%d %d %d %d):\n%s", i1, i2, i5, iInf, out)
	}
}

// TestPrometheusDeterministicOrder checks that two expositions of the
// same registry are byte-identical and series sort by full name
// regardless of registration order.
func TestPrometheusDeterministicOrder(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		reg := []func(){
			func() { r.Counter("zz_total", "z").Add(1) },
			func() { r.Gauge("aa_gauge", "a").Set(2) },
			func() { r.Counter(SeriesName("mid_total", "k", "b"), "m").Add(3) },
			func() { r.Counter(SeriesName("mid_total", "k", "a"), "m").Add(4) },
		}
		for _, i := range order {
			reg[i]()
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]int{0, 1, 2, 3})
	bOut := build([]int{3, 2, 1, 0})
	if a != bOut {
		t.Errorf("exposition depends on registration order:\n--- a ---\n%s--- b ---\n%s", a, bOut)
	}
	if strings.Index(a, "aa_gauge") > strings.Index(a, "zz_total") {
		t.Errorf("series not sorted by name:\n%s", a)
	}
	if strings.Index(a, `mid_total{k="a"}`) > strings.Index(a, `mid_total{k="b"}`) {
		t.Errorf("labeled siblings not sorted:\n%s", a)
	}
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry()
	name := SeriesName("tmp_gauge", "job", "j1")
	r.Gauge(name, "per-job").Set(1)
	r.Remove(name)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "tmp_gauge") {
		t.Errorf("removed series still exposed:\n%s", b.String())
	}
	// Removing twice (or an unknown name) is a no-op.
	r.Remove(name)
	r.Remove("never_registered")
}
