package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats per interval so that the
// heap and GC gauges sharing it cost at most one (briefly
// stop-the-world) stats read per scrape burst, however many series are
// derived from it.
type memSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

const memSampleInterval = 500 * time.Millisecond

func (s *memSampler) sample() (heapInuse, gcPauseTotal float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) > memSampleInterval {
		runtime.ReadMemStats(&s.ms)
		s.last = time.Now()
	}
	return float64(s.ms.HeapInuse), float64(s.ms.PauseTotalNs) / 1e9
}

// RegisterRuntimeGauges installs the process-health gauges — live
// goroutines, heap bytes in use, and cumulative GC pause seconds —
// sampled at scrape time (GaugeFunc), on /metrics and /status of any
// Inspector serving reg. Idempotent, so every Inspector can call it.
func RegisterRuntimeGauges(reg *Registry) {
	s := &memSampler{}
	reg.GaugeFunc("goopc_runtime_goroutines",
		"live goroutines, sampled at scrape time",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("goopc_runtime_heap_inuse_bytes",
		"heap bytes in use (runtime.MemStats.HeapInuse), sampled at scrape time",
		func() float64 { h, _ := s.sample(); return h })
	reg.GaugeFunc("goopc_runtime_gc_pause_total_seconds",
		"cumulative GC stop-the-world pause seconds since process start, sampled at scrape time",
		func() float64 { _, p := s.sample(); return p })
}
