package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammering drives every metric kind from many goroutines
// at once; run under -race this doubles as the data-race proof, and the
// final values prove no update was lost.
func TestConcurrentHammering(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_occupancy", "busy workers")
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%20) / 2) // 0..9.5
				if i%100 == 0 {
					// Concurrent snapshot readers must not race writers.
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0 (balanced adds)", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Each worker observes 0, 0.5, ... 9.5 in rotation: sum per 20
	// observations is 95.
	wantSum := float64(workers) * float64(perWorker) / 20 * 95
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["test_latency_seconds"]
	var total int64
	for _, n := range hs.Counts {
		total += n
	}
	if total != workers*perWorker {
		t.Errorf("bucket counts sum to %d, want %d", total, workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms["h"]
	// le=1: {0.5, 1}; le=2: {1.5, 2}; le=4: {3, 4}; +Inf: {5, 100}.
	want := []int64{2, 2, 2, 2}
	for i, n := range snap.Counts {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, n, want[i], snap.Counts)
		}
	}
}

func TestRegistryIdempotentAndKindCollision(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "first")
	b := reg.Counter("x_total", "second")
	if a != b {
		t.Errorf("Counter not idempotent: %p vs %p", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("registering a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

// TestSpanNesting checks parent/child structure, wall-time sanity,
// idempotent End, and the registry phase label lifecycle.
func TestSpanNesting(t *testing.T) {
	reg := NewRegistry()
	root := NewSpan("run", reg)
	if got := reg.Label("phase"); got != "run" {
		t.Errorf("phase after root start = %q, want %q", got, "run")
	}
	a := root.Start("correct")
	if got := reg.Label("phase"); got != "run/correct" {
		t.Errorf("phase in child = %q, want %q", got, "run/correct")
	}
	inner := a.Start("pass-1")
	time.Sleep(10 * time.Millisecond)
	inner.End()
	inner.End() // idempotent
	a.End()
	if got := reg.Label("phase"); got != "run" {
		t.Errorf("phase after child end = %q, want %q", got, "run")
	}
	b := root.Start("verify")
	b.End()
	root.End()

	tree := root.Tree()
	if len(tree.Children) != 2 || tree.Children[0].Name != "correct" || tree.Children[1].Name != "verify" {
		t.Fatalf("tree children = %+v, want [correct verify]", tree.Children)
	}
	pass := tree.Children[0].Children
	if len(pass) != 1 || pass[0].Name != "pass-1" {
		t.Fatalf("nested child = %+v, want [pass-1]", pass)
	}
	if pass[0].WallMS < 5 {
		t.Errorf("pass-1 wall = %v ms, want >= 5 (slept 10ms)", pass[0].WallMS)
	}
	if tree.WallMS < tree.Children[0].WallMS {
		t.Errorf("root wall %v < child wall %v", tree.WallMS, tree.Children[0].WallMS)
	}
	// Sequential children must sum to no more than the root.
	sum := tree.Children[0].WallMS + tree.Children[1].WallMS
	if sum > tree.WallMS*1.01 {
		t.Errorf("children wall sum %v exceeds root %v", sum, tree.WallMS)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Errorf("nil.Start returned non-nil")
	}
	c.End()
	s.End()
	if got := s.Tree(); got.Name != "" {
		t.Errorf("nil.Tree = %+v, want zero", got)
	}
	if s.Wall() != 0 || s.Path() != "" {
		t.Errorf("nil span accessors not zero")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("run", nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Start("tile")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Tree().Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

// TestPrometheusGolden locks the exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_requests_total", "requests served").Add(42)
	reg.Gauge("app_workers", "busy workers").Set(2.5)
	h := reg.Histogram("app_epe_nm", "EPE per site", []float64{1, 2.5, 8})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(100)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_epe_nm EPE per site
# TYPE app_epe_nm histogram
app_epe_nm_bucket{le="1"} 1
app_epe_nm_bucket{le="2.5"} 2
app_epe_nm_bucket{le="8"} 2
app_epe_nm_bucket{le="+Inf"} 3
app_epe_nm_sum 102.5
app_epe_nm_count 3
# HELP app_requests_total requests served
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_workers busy workers
# TYPE app_workers gauge
app_workers 2.5
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus text mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(7)
	reg.Gauge("g", "").Set(1.5)
	reg.Histogram("h", "", []float64{1}).Observe(3)
	reg.SetLabel("phase", "correct")

	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 7 || back.Gauges["g"] != 1.5 ||
		back.Labels["phase"] != "correct" || back.Histograms["h"].Count != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelNormal, "tool")
	l.Errorf("boom %d", 1)
	l.Infof("progress")
	l.Verbosef("detail")
	got := buf.String()
	if !strings.Contains(got, "tool: boom 1\n") || !strings.Contains(got, "tool: progress\n") {
		t.Errorf("missing expected lines in %q", got)
	}
	if strings.Contains(got, "detail") {
		t.Errorf("verbose line printed at normal level: %q", got)
	}

	buf.Reset()
	q := NewLogger(&buf, LevelQuiet, "")
	q.Infof("progress")
	q.Errorf("err")
	if got := buf.String(); got != "err\n" {
		t.Errorf("quiet logger output = %q, want just the error", got)
	}

	var nilLogger *Logger
	nilLogger.Infof("no panic")
	nilLogger.Errorf("no panic")
	if nilLogger.Level() != LevelQuiet {
		t.Errorf("nil logger level = %v, want quiet", nilLogger.Level())
	}
}

func TestParseLogLevel(t *testing.T) {
	if ParseLogLevel(true, false) != LevelQuiet ||
		ParseLogLevel(false, true) != LevelVerbose ||
		ParseLogLevel(false, false) != LevelNormal ||
		ParseLogLevel(true, true) != LevelQuiet {
		t.Errorf("ParseLogLevel mapping wrong")
	}
}

func TestRunReportFinish(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Inc()
	root := NewSpan("run", reg)
	child := root.Start("phase-a")
	child.End()
	root.End()

	rep := NewRunReport("testtool", []string{"-x"}, map[string]any{"fast": true})
	rep.Finish(reg, root)
	if rep.Tool != "testtool" || rep.Build.GoVersion == "" || rep.WallSeconds < 0 {
		t.Errorf("report header incomplete: %+v", rep)
	}
	if rep.Metrics.Counters["c_total"] != 1 {
		t.Errorf("report metrics missing counter")
	}
	if rep.Trace == nil || rep.Trace.Name != "run" || len(rep.Trace.Children) != 1 {
		t.Errorf("report trace wrong: %+v", rep.Trace)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace.Children[0].Name != "phase-a" {
		t.Errorf("trace lost in JSON round trip")
	}
}
