package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"goopc/internal/geom"
)

// ChromeOptions controls the Chrome trace-event export.
type ChromeOptions struct {
	// PID is the trace process id (opcd uses the job number so multiple
	// job traces merge side by side); ProcessName labels it (defaults
	// to "goopc"); Thread0Name labels worker 0 (defaults to
	// "scheduler"; opcd job traces use "job").
	PID         int
	ProcessName string
	Thread0Name string
}

// chromeEvent is one trace-event record. Field order is fixed by the
// struct so the export is byte-deterministic for a deterministic
// timeline; Args maps marshal with sorted keys.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeOther struct {
	Tool    string  `json:"tool"`
	Summary Summary `json:"summary"`
}

// chromeDoc is the JSON-object envelope form of the trace-event
// format, which lets us carry the recorder summary (and its drop
// accounting) in otherData.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       chromeOther   `json:"otherData"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// us converts an epoch-relative duration to trace-event microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func argsFor(e Event) map[string]any {
	a := map[string]any{}
	if e.Pass != 0 {
		a["pass"] = e.Pass
	}
	if e.Tile != (geom.Rect{}) {
		a["tile"] = fmt.Sprintf("(%d,%d)-(%d,%d)", e.Tile.X0, e.Tile.Y0, e.Tile.X1, e.Tile.Y1)
	}
	if e.Members != 0 {
		a["members"] = e.Members
	}
	if e.Iters != 0 {
		a["iters"] = e.Iters
	}
	if e.RMS != 0 {
		a["rms"] = e.RMS
	}
	if e.Detail != "" {
		a["detail"] = e.Detail
	}
	if len(a) == 0 {
		return nil
	}
	return a
}

// spanPairs maps a closing event kind to (opening kind, span name):
// solve begin/end becomes one complete slice per engine run, and the
// opcd enqueue→dequeue and running→done transitions become "queued"
// and "running" slices so a job's wall breakdown reads directly off
// the timeline.
var spanPairs = map[Kind]struct {
	open Kind
	name string
}{
	SolveEnd:    {SolveBegin, "solve"},
	JobDequeued: {JobEnqueued, "queued"},
	JobDone:     {JobRunning, "running"},
}

var spanOpeners = map[Kind]bool{
	SolveBegin:  true,
	JobEnqueued: true,
	JobRunning:  true,
}

// WriteChrome exports a merged timeline as Chrome trace-event JSON
// (the object form, with the summary in otherData), loadable in
// Perfetto or chrome://tracing. Paired events (solve begin/end, job
// enqueue/dequeue, running/done) become complete "X" slices; everything
// else becomes thread-scoped instants. An opener whose closer fell out
// of the ring (or has not happened yet, on a live snapshot) degrades to
// an "<name>-open" instant rather than being lost.
func WriteChrome(w io.Writer, events []Event, sum Summary, opt ChromeOptions) error {
	if opt.ProcessName == "" {
		opt.ProcessName = "goopc"
	}
	if opt.Thread0Name == "" {
		opt.Thread0Name = "scheduler"
	}
	doc := chromeDoc{
		DisplayTimeUnit: "ms",
		OtherData:       chromeOther{Tool: "goopc", Summary: sum},
	}

	// Metadata: name the process and every worker thread, tid 0 first.
	seen := map[int32]bool{}
	var tids []int32
	for _, e := range events {
		if !seen[e.Worker] {
			seen[e.Worker] = true
			tids = append(tids, e.Worker)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: opt.PID, TID: 0,
		Args: map[string]any{"name": opt.ProcessName},
	})
	for _, tid := range tids {
		name := opt.Thread0Name
		if tid != 0 {
			name = fmt.Sprintf("worker-%d", tid)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: opt.PID, TID: tid,
			Args: map[string]any{"name": name},
		})
	}

	type openKey struct {
		worker int32
		kind   Kind
	}
	open := map[openKey]Event{}
	for _, e := range events {
		if spanOpeners[e.Kind] {
			k := openKey{e.Worker, e.Kind}
			if prev, ok := open[k]; ok {
				// Re-opened without a closer (closer dropped): keep the
				// older one visible as an instant.
				doc.TraceEvents = append(doc.TraceEvents, instant(prev, prev.Kind.String()+"-open", opt.PID))
			}
			open[k] = e
			continue
		}
		if p, ok := spanPairs[e.Kind]; ok {
			k := openKey{e.Worker, p.open}
			if b, okb := open[k]; okb {
				delete(open, k)
				dur := us(e.T - b.T)
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: p.name, Ph: "X", TS: us(b.T), Dur: &dur,
					PID: opt.PID, TID: e.Worker, Args: argsFor(e),
				})
				continue
			}
			// Opener fell out of the ring: degrade to an instant at the
			// close time so the outcome payload survives.
			doc.TraceEvents = append(doc.TraceEvents, instant(e, p.name, opt.PID))
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, instant(e, e.Kind.String(), opt.PID))
	}

	// Spans still open at snapshot time (live export or dropped
	// closers), in deterministic timeline order.
	var left []Event
	for _, e := range open {
		left = append(left, e)
	}
	sort.Slice(left, func(i, j int) bool {
		if left[i].T != left[j].T {
			return left[i].T < left[j].T
		}
		if left[i].Worker != left[j].Worker {
			return left[i].Worker < left[j].Worker
		}
		return left[i].Seq < left[j].Seq
	})
	for _, e := range left {
		doc.TraceEvents = append(doc.TraceEvents, instant(e, e.Kind.String()+"-open", opt.PID))
	}

	enc, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

func instant(e Event, name string, pid int) chromeEvent {
	return chromeEvent{
		Name: name, Ph: "i", TS: us(e.T), PID: pid, TID: e.Worker,
		Scope: "t", Args: argsFor(e),
	}
}

// WriteChrome exports the recorder's current timeline.
func (r *Recorder) WriteChrome(w io.Writer, opt ChromeOptions) error {
	events := r.Events()
	return WriteChrome(w, events, Summarize(events, r.Emitted(), r.Drops()), opt)
}
