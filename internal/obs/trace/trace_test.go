package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"goopc/internal/geom"
)

// fakeClock returns a deterministic clock: each call advances 1µs.
func fakeClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Microsecond
		return n
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	w := r.Worker(3)
	if w != nil {
		t.Fatalf("nil recorder returned non-nil worker")
	}
	w.Emit(SolveBegin, 1, geom.Rect{}, 1, 0, 0, "") // must not panic
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder Events = %v, want nil", got)
	}
	if r.Drops() != 0 || r.Emitted() != 0 {
		t.Fatalf("nil recorder drops/emitted nonzero")
	}
	if s := r.Summary(); s.Events != 0 {
		t.Fatalf("nil recorder summary = %+v", s)
	}
}

// TestConcurrentEmit hammers one recorder from many goroutines — some
// sharing a ring, some on distinct rings, one concurrently snapshotting
// — and checks the emit accounting stays exact. Run under -race this is
// the lock-free-emit soundness test.
func TestConcurrentEmit(t *testing.T) {
	r := New(1 << 10)
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Even goroutines share ring 1; odd ones get their own.
			id := int32(1)
			if g%2 == 1 {
				id = int32(g + 1)
			}
			w := r.Worker(id)
			for i := 0; i < perG; i++ {
				w.Emit(TileScheduled, 1, geom.Rect{X0: int32(i)}, 1, 0, 0, "")
			}
		}(g)
	}
	// Concurrent snapshots must be safe (and torn-free) mid-emit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, e := range r.Events() {
				if e.Kind != TileScheduled {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done

	if got, want := r.Emitted(), uint64(goroutines*perG); got != want {
		t.Fatalf("Emitted = %d, want %d", got, want)
	}
	if got, want := uint64(len(r.Events()))+r.Drops(), r.Emitted(); got != want {
		t.Fatalf("retained(%d) + drops(%d) = %d, want emitted %d",
			len(r.Events()), r.Drops(), got, want)
	}
}

// TestOverflowDropAccounting fills one ring far past capacity and
// checks the drop count and the retained window are exactly right.
func TestOverflowDropAccounting(t *testing.T) {
	const capacity = 64
	r := New(capacity)
	r.SetClock(fakeClock())
	w := r.Worker(0)
	const emits = 1000
	for i := 0; i < emits; i++ {
		w.Emit(TileScheduled, 1, geom.Rect{X0: int32(i)}, 1, 0, 0, "")
	}
	if got := r.Emitted(); got != emits {
		t.Fatalf("Emitted = %d, want %d", got, emits)
	}
	if got, want := r.Drops(), uint64(emits-capacity); got != want {
		t.Fatalf("Drops = %d, want %d", got, want)
	}
	events := r.Events()
	if len(events) != capacity {
		t.Fatalf("retained %d events, want %d", len(events), capacity)
	}
	// The retained window must be the newest `capacity` events in order.
	for i, e := range events {
		if want := uint64(emits - capacity + i); e.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d (oldest must be displaced first)", i, e.Seq, want)
		}
	}
	sum := r.Summary()
	if sum.Drops != uint64(emits-capacity) || sum.Events != capacity || sum.Emitted != emits {
		t.Fatalf("summary accounting = %+v", sum)
	}
}

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	r := New(100)
	if r.capacity != 128 {
		t.Fatalf("capacity = %d, want 128", r.capacity)
	}
	if New(0).capacity != DefaultCap {
		t.Fatalf("zero capacity did not select default")
	}
}

// TestDeterministicMerge checks the merged timeline orders by
// (T, Worker, Seq) and is stable across snapshots.
func TestDeterministicMerge(t *testing.T) {
	r := New(256)
	var n time.Duration
	r.SetClock(func() time.Duration { n += time.Microsecond; return n })
	w0, w1 := r.Worker(0), r.Worker(1)
	w0.Emit(TileScheduled, 1, geom.Rect{X1: 10, Y1: 10}, 1, 0, 0, "")
	w1.Emit(SolveBegin, 1, geom.Rect{X1: 10, Y1: 10}, 2, 0, 0, "")
	w1.Emit(SolveEnd, 1, geom.Rect{X1: 10, Y1: 10}, 2, 7, 0.25, "")
	w0.Emit(TileDedup, 1, geom.Rect{X0: 10, X1: 20, Y1: 10}, 1, 0, 0, "")

	a := r.Events()
	b := r.Events()
	if len(a) != 4 {
		t.Fatalf("got %d events, want 4", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].T <= a[i-1].T {
			t.Fatalf("merge out of order at %d: %v then %v", i, a[i-1].T, a[i].T)
		}
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ:\n%s\n%s", ja, jb)
	}
}

func TestSummarizeMemberWeighting(t *testing.T) {
	events := []Event{
		{Kind: TileScheduled, Members: 1},
		{Kind: TileScheduled, Members: 1},
		{Kind: SolveEnd, Members: 3, Iters: 5},
		{Kind: TileDedup, Members: 2},
		{Kind: TileLibExact, Members: 4},
		{Kind: TileLibSimilar, Members: 1},
		{Kind: TileResumed, Members: 2},
		{Kind: TileCleanSkip, Members: 1},
		{Kind: TileDegrade, Members: 3},
		{Kind: TileRetry, Members: 1},
		{Kind: TileTimeout, Members: 1},
		{Kind: CheckpointWrite, Members: 12},
	}
	s := Summarize(events, uint64(len(events)), 0)
	want := TileCounts{
		Scheduled: 2, Solved: 1, Dedup: 2, Clean: 1,
		LibExact: 4, LibSimilar: 1, Resumed: 2, Degraded: 3,
		Retries: 1, Timeouts: 1, Checkpoints: 1,
	}
	if s.Tiles != want {
		t.Fatalf("tile counts = %+v, want %+v", s.Tiles, want)
	}
	if s.ByKind["solve"] != 1 || s.ByKind["patlib-exact"] != 1 {
		t.Fatalf("by-kind = %v", s.ByKind)
	}
	sum := want.Add(want)
	if sum.LibExact != 8 || sum.Scheduled != 4 {
		t.Fatalf("Add = %+v", sum)
	}
}

// TestChromeExport checks the trace-event JSON shape: metadata, paired
// solve slices, job queue/run slices, instants, and open-span fallback.
func TestChromeExport(t *testing.T) {
	r := New(256)
	r.SetClock(fakeClock())
	sched := r.Worker(0)
	w1 := r.Worker(1)
	sched.Emit(JobEnqueued, 0, geom.Rect{}, 0, 0, 0, "")
	sched.Emit(JobDequeued, 0, geom.Rect{}, 0, 0, 0, "")
	sched.Emit(JobRunning, 0, geom.Rect{}, 0, 0, 0, "")
	sched.Emit(TileScheduled, 1, geom.Rect{X1: 5, Y1: 5}, 1, 0, 0, "")
	w1.Emit(SolveBegin, 1, geom.Rect{X1: 5, Y1: 5}, 1, 0, 0, "")
	w1.Emit(SolveEnd, 1, geom.Rect{X1: 5, Y1: 5}, 1, 9, 0.5, "")
	w1.Emit(SolveBegin, 2, geom.Rect{X1: 5, Y1: 5}, 1, 0, 0, "") // left open
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf, ChromeOptions{PID: 7, ProcessName: "job 7", Thread0Name: "job"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Tool    string  `json:"tool"`
			Summary Summary `json:"summary"`
		} `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData.Tool != "goopc" {
		t.Fatalf("envelope = %+v", doc)
	}
	if doc.OtherData.Summary.Events != 7 || doc.OtherData.Summary.Drops != 0 {
		t.Fatalf("summary = %+v", doc.OtherData.Summary)
	}
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		names[e["name"].(string)]++
		if e["pid"].(float64) != 7 {
			t.Fatalf("pid = %v, want 7", e["pid"])
		}
	}
	for _, want := range []string{"process_name", "thread_name", "queued", "solve", "scheduled", "running-open", "solve-begin-open"} {
		if names[want] == 0 {
			t.Fatalf("export missing %q event; got %v\n%s", want, names, buf.String())
		}
	}
	if names["thread_name"] != 2 {
		t.Fatalf("thread_name count = %d, want 2", names["thread_name"])
	}
	// The solve slice must carry the outcome payload.
	if !strings.Contains(buf.String(), `"iters":9`) || !strings.Contains(buf.String(), `"rms":0.5`) {
		t.Fatalf("solve slice lost its payload:\n%s", buf.String())
	}
	// Byte determinism of the export for a fixed timeline.
	var buf2 bytes.Buffer
	if err := r.WriteChrome(&buf2, ChromeOptions{PID: 7, ProcessName: "job 7", Thread0Name: "job"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("export is not deterministic")
	}
}

func TestKindStrings(t *testing.T) {
	if TileLibSimilar.String() != "patlib-similar" || Kind(250).String() != "unknown" {
		t.Fatalf("kind strings wrong")
	}
}
