// Package trace is the tile-level flight recorder (DESIGN.md 5h): a
// low-overhead, always-on event log of what the tiled correction
// scheduler and the opcd job lifecycle actually did, per worker and
// per tile — which tiles were deduplicated, served from the pattern
// library, solved (and how long the solve took), retried, timed out,
// degraded or checkpointed, and when a job was admitted, queued,
// dequeued and finished.
//
// Events land in per-worker bounded ring buffers. The emit path is
// lock-free — one atomic fetch-add to claim a slot plus one atomic
// pointer swap to publish the event — so instrumented scheduler loops
// pay tens of nanoseconds per event and never block each other. When a
// ring wraps, the oldest events are overwritten and counted as drops
// (flight-recorder semantics: the recent past is always retained, the
// loss is explicit, and nothing on the hot path ever stalls).
//
// Collection merges every ring into one deterministic timeline
// (ordered by timestamp, then worker, then per-ring sequence) that
// exports as Chrome trace-event JSON (WriteChrome) loadable in
// Perfetto or chrome://tracing, with pid = job and tid = worker.
// Collection is safe while emitters are still running — a live opcd
// job can be traced mid-flight — the snapshot is simply the retained
// window at that instant.
//
// Like obs.Span, every method is nil-safe: a nil *Recorder returns a
// nil *Worker, and Emit on a nil *Worker is a single predictable
// branch, so call sites thread an optional recorder through without
// guarding and a disabled tracer costs nothing measurable.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goopc/internal/geom"
)

// Kind enumerates the recorded lifecycle events.
type Kind uint8

// Tile lifecycle (emitted by the core tiled scheduler) and job
// lifecycle (emitted by the opcd server) event kinds.
const (
	KindUnknown Kind = iota
	// TileScheduled marks a tile entering a pass's schedule;
	// TileCleanSkip a pass-2+ tile kept because nothing moved in its
	// halo; TileDedup placements served by translating a deduplicated
	// class representative (Members = extra placements).
	TileScheduled
	TileCleanSkip
	TileDedup
	// TileLibExact / TileLibSimilar are cross-run pattern-library hits
	// (Members = placements served); TileResumed a class restored from
	// a checkpoint.
	TileLibExact
	TileLibSimilar
	TileResumed
	// SolveBegin / SolveEnd bracket one engine run on a class
	// representative; SolveEnd carries Iters and RMS (and the degrade
	// mode in Detail when the resilience ladder engaged).
	SolveBegin
	SolveEnd
	// TileRetry / TileTimeout / TileDegrade are resilience-ladder
	// events; CheckpointWrite one checkpoint flush (Members = entries).
	TileRetry
	TileTimeout
	TileDegrade
	CheckpointWrite
	// Job lifecycle in opcd: admitted (spec validated), enqueued,
	// dequeued by a pool worker, running, done (Detail = terminal
	// state).
	JobAdmitted
	JobEnqueued
	JobDequeued
	JobRunning
	JobDone
	// TileRemote marks a class whose solve was served by a cluster
	// worker through the distributed coordinator (DESIGN.md 5i);
	// Members = placements served, Iters/RMS the remote engine outcome.
	// Appended after the job kinds so recorded numeric kinds stay stable.
	TileRemote
)

var kindNames = [...]string{
	KindUnknown:     "unknown",
	TileScheduled:   "scheduled",
	TileCleanSkip:   "clean-skip",
	TileDedup:       "dedup",
	TileLibExact:    "patlib-exact",
	TileLibSimilar:  "patlib-similar",
	TileResumed:     "resumed",
	SolveBegin:      "solve-begin",
	SolveEnd:        "solve",
	TileRetry:       "retry",
	TileTimeout:     "timeout",
	TileDegrade:     "degrade",
	CheckpointWrite: "checkpoint",
	JobAdmitted:     "admitted",
	JobEnqueued:     "enqueued",
	JobDequeued:     "dequeued",
	JobRunning:      "running",
	JobDone:         "done",
	TileRemote:      "remote",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one flight-recorder record. Fields beyond T/Seq/Worker/Kind
// are kind-specific and zero when not applicable.
type Event struct {
	// T is the emit time relative to the recorder epoch; Seq the
	// per-ring emit index (total order within a worker); Worker the
	// emitting worker id (0 is the scheduler/coordinator).
	T      time.Duration `json:"t"`
	Seq    uint64        `json:"seq"`
	Worker int32         `json:"worker"`
	Kind   Kind          `json:"kind"`
	// Pass is the context pass; Tile the class representative's core
	// rectangle (zero for job events); Members the placements the event
	// accounts for; Iters / RMS the engine outcome on SolveEnd.
	Pass    int32     `json:"pass,omitempty"`
	Tile    geom.Rect `json:"tile"`
	Members int32     `json:"members,omitempty"`
	Iters   int32     `json:"iters,omitempty"`
	RMS     float64   `json:"rms,omitempty"`
	// Detail carries kind-specific text: degrade mode and error, job
	// source, terminal state, checkpoint path.
	Detail string `json:"detail,omitempty"`
}

// ring is one worker's bounded event buffer. Emit claims a slot with a
// fetch-add and publishes with a pointer swap; a displaced (non-nil)
// old event is a drop. Readers Load slots concurrently and see either
// the old or the new event, never a torn one.
type ring struct {
	worker int32
	mask   uint64
	slots  []atomic.Pointer[Event]
	next   atomic.Uint64
	drops  atomic.Uint64
}

func newRing(worker int32, capacity int) *ring {
	return &ring{
		worker: worker,
		mask:   uint64(capacity - 1),
		slots:  make([]atomic.Pointer[Event], capacity),
	}
}

func (r *ring) emit(e *Event) {
	i := r.next.Add(1) - 1
	e.Seq = i
	if old := r.slots[i&r.mask].Swap(e); old != nil {
		r.drops.Add(1)
	}
}

// DefaultCap is the per-worker ring capacity when New is given zero:
// 16384 events ≈ a few hundred KB per worker, enough to hold every
// event of a mid-size run and the recent past of a huge one.
const DefaultCap = 1 << 14

// Recorder is the flight recorder: a set of per-worker rings sharing
// one epoch. The zero value is not usable; a nil *Recorder is a valid
// disabled tracer.
type Recorder struct {
	capacity int
	epoch    time.Time
	// clock overrides the monotonic epoch-relative clock; tests inject
	// a deterministic one. Set before the first emit only.
	clock func() time.Duration

	mu    sync.Mutex
	rings map[int32]*ring
}

// New returns a recorder whose per-worker rings hold capPerWorker
// events (rounded up to a power of two; 0 selects DefaultCap).
func New(capPerWorker int) *Recorder {
	if capPerWorker <= 0 {
		capPerWorker = DefaultCap
	}
	c := 1
	for c < capPerWorker {
		c <<= 1
	}
	return &Recorder{
		capacity: c,
		epoch:    time.Now(),
		rings:    map[int32]*ring{},
	}
}

// SetClock replaces the recorder's clock (a function returning the
// time since the epoch). For deterministic tests; call before any
// emit, never concurrently with one.
func (r *Recorder) SetClock(fn func() time.Duration) { r.clock = fn }

func (r *Recorder) now() time.Duration {
	if r.clock != nil {
		return r.clock()
	}
	return time.Since(r.epoch)
}

// Worker returns an emit handle for a worker id, creating its ring on
// first use. Id 0 is conventionally the scheduler/coordinator thread.
// Nil-safe: a nil recorder returns a nil handle.
func (r *Recorder) Worker(id int32) *Worker {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rg := r.rings[id]
	if rg == nil {
		rg = newRing(id, r.capacity)
		r.rings[id] = rg
	}
	r.mu.Unlock()
	return &Worker{rec: r, ring: rg}
}

// Worker is a per-worker emit handle. Handles for the same id share
// the ring; Emit is safe from any number of goroutines.
type Worker struct {
	rec  *Recorder
	ring *ring
}

// Emit records one event. Nil-safe no-op on a nil handle — the
// disabled-tracer hot path is this one branch.
func (w *Worker) Emit(k Kind, pass int, tile geom.Rect, members, iters int, rms float64, detail string) {
	if w == nil {
		return
	}
	w.ring.emit(&Event{
		T:       w.rec.now(),
		Worker:  w.ring.worker,
		Kind:    k,
		Pass:    int32(pass),
		Tile:    tile,
		Members: int32(members),
		Iters:   int32(iters),
		RMS:     rms,
		Detail:  detail,
	})
}

// snapshotRings copies the ring set under the lock.
func (r *Recorder) snapshotRings() []*ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*ring, 0, len(r.rings))
	for _, rg := range r.rings {
		out = append(out, rg)
	}
	return out
}

// Events merges every ring's retained events into one deterministic
// timeline, ordered by (T, Worker, Seq). Safe to call while emitters
// run; the result is the retained window at that instant.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, rg := range r.snapshotRings() {
		for i := range rg.slots {
			if e := rg.slots[i].Load(); e != nil {
				out = append(out, *e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Emitted returns the total events ever emitted (retained + dropped).
func (r *Recorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, rg := range r.snapshotRings() {
		n += rg.next.Load()
	}
	return n
}

// Drops returns the events lost to ring overflow across all workers.
func (r *Recorder) Drops() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, rg := range r.snapshotRings() {
		n += rg.drops.Load()
	}
	return n
}

// TileCounts is the member-weighted per-outcome tile accounting
// recovered from a timeline. It reconciles exactly with the scheduler's
// TileStats on a drop-free trace — the test that the recorder observed
// every (tile, pass) outcome the run reported.
type TileCounts struct {
	// Scheduled counts (tile, pass) schedule entries; one run schedules
	// Tiles × Passes of them.
	Scheduled int `json:"scheduled"`
	// Solved counts engine runs (SolveEnd events — includes degraded
	// classes, which the engine attempted); Dedup the placements served
	// by translating a class representative; Clean the pass-2+ tiles
	// kept because their halo stayed still.
	Solved int `json:"solved"`
	Dedup  int `json:"dedup"`
	Clean  int `json:"clean"`
	// LibExact / LibSimilar / Resumed are member-weighted reuse
	// placements; Degraded the member-weighted degradation-ladder
	// outcomes; Retries / Timeouts the resilience events; Checkpoints
	// the checkpoint flushes observed.
	LibExact    int `json:"patlib_exact"`
	LibSimilar  int `json:"patlib_similar"`
	Resumed     int `json:"resumed"`
	Degraded    int `json:"degraded"`
	Retries     int `json:"retries"`
	Timeouts    int `json:"timeouts"`
	Checkpoints int `json:"checkpoints"`
	// Remote is the member-weighted count of placements served by
	// cluster workers (TileRemote events). omitempty keeps summaries of
	// non-distributed runs byte-identical to pre-cluster exports.
	Remote int `json:"remote,omitempty"`
}

// Add returns the field-wise sum (aggregating multiple runs traced on
// one recorder).
func (c TileCounts) Add(o TileCounts) TileCounts {
	c.Scheduled += o.Scheduled
	c.Solved += o.Solved
	c.Dedup += o.Dedup
	c.Clean += o.Clean
	c.LibExact += o.LibExact
	c.LibSimilar += o.LibSimilar
	c.Resumed += o.Resumed
	c.Degraded += o.Degraded
	c.Retries += o.Retries
	c.Timeouts += o.Timeouts
	c.Checkpoints += o.Checkpoints
	c.Remote += o.Remote
	return c
}

// Summary is the merged-timeline digest embedded in RunReports and the
// Chrome export's otherData: totals, explicit drop accounting, and the
// per-outcome tile counts.
type Summary struct {
	// Events is the retained (exported) count; Emitted the lifetime
	// total; Drops the events lost to ring overflow (Emitted - Events
	// once emitters have quiesced).
	Events  int    `json:"events"`
	Emitted uint64 `json:"emitted"`
	Drops   uint64 `json:"drops"`
	Workers int    `json:"workers"`
	ByKind  map[string]int `json:"by_kind,omitempty"`
	Tiles   TileCounts     `json:"tiles"`
}

// Summarize digests a merged timeline.
func Summarize(events []Event, emitted, drops uint64) Summary {
	s := Summary{
		Events:  len(events),
		Emitted: emitted,
		Drops:   drops,
	}
	workers := map[int32]bool{}
	byKind := map[string]int{}
	for _, e := range events {
		workers[e.Worker] = true
		byKind[e.Kind.String()]++
		m := int(e.Members)
		switch e.Kind {
		case TileScheduled:
			s.Tiles.Scheduled++
		case SolveEnd:
			s.Tiles.Solved++
		case TileDedup:
			s.Tiles.Dedup += m
		case TileCleanSkip:
			s.Tiles.Clean++
		case TileLibExact:
			s.Tiles.LibExact += m
		case TileLibSimilar:
			s.Tiles.LibSimilar += m
		case TileResumed:
			s.Tiles.Resumed += m
		case TileRemote:
			s.Tiles.Remote += m
		case TileDegrade:
			s.Tiles.Degraded += m
		case TileRetry:
			s.Tiles.Retries++
		case TileTimeout:
			s.Tiles.Timeouts++
		case CheckpointWrite:
			s.Tiles.Checkpoints++
		}
	}
	s.Workers = len(workers)
	if len(byKind) > 0 {
		s.ByKind = byKind
	}
	return s
}

// Summary digests the recorder's current timeline.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	return Summarize(r.Events(), r.Emitted(), r.Drops())
}
