// Package obs is the flow-wide observability substrate: a
// concurrency-safe metrics registry (atomic counters, gauges and
// fixed-bucket histograms with snapshot and Prometheus-text
// exposition), span-based phase tracing (wall clock plus process CPU
// and heap-allocation deltas, nested into a per-run trace tree), a
// leveled logger for tool progress output, a RunReport JSON artifact
// tying all of it to a build/settings fingerprint, and a live HTTP
// inspector serving /metrics, /status and /debug/pprof.
//
// Everything is stdlib-only and designed for always-on use: the hot
// paths (counter adds, gauge sets, histogram observes) are single
// atomic operations with no locks, so instrumented engine loops pay
// nanoseconds per event. Metric handles are resolved once at package
// init — never inside inner loops.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry (or construct standalone ones
// with NewCounter for per-object statistics that mirror into a
// registry-level series).
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter returns a standalone (unregistered) counter. Useful for
// per-object statistics — e.g. a per-simulator cache-hit count — whose
// flow-wide total is mirrored onto a registered counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus contract; this is not
// enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Only standalone per-object counters should
// be reset (registered series are expected to be monotone).
func (c *Counter) Reset() { c.v.Store(0) }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable float64 metric (current value semantics).
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta (CAS loop; used for occupancy-style
// up/down tracking).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free: one binary search plus three atomics.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Int64 // len(bounds)+1; last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket edges; Counts has one more
	// entry than Bounds (the +Inf overflow bucket). Counts are
	// per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable
// (the RunReport metrics section).
type Snapshot struct {
	Labels     map[string]string            `json:"labels,omitempty"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// gaugeFunc is a gauge whose value is computed by a callback at
// snapshot/scrape time instead of being pushed — the natural shape for
// runtime health numbers (goroutines, heap) that are only meaningful
// when read.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// Registry holds named metrics. Metric creation takes a lock (done once
// at package init); metric updates are lock-free. A Registry also
// carries a small set of string labels (e.g. the current phase) for the
// /status view.
type Registry struct {
	start    time.Time
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]*gaugeFunc
	hists    map[string]*Histogram
	labels   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]*gaugeFunc{},
		hists:    map[string]*Histogram{},
		labels:   map[string]string{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// registers on.
func Default() *Registry { return defaultRegistry }

// Start returns the registry creation time (process start for the
// default registry); /status reports uptime against it.
func (r *Registry) Start() time.Time { return r.start }

func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: metric %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: metric %q already registered as gauge", name))
	}
	if _, ok := r.gaugeFns[name]; ok && kind != "gaugefunc" {
		panic(fmt.Sprintf("obs: metric %q already registered as sampled gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: metric %q already registered as histogram", name))
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Registering the same name as a different metric kind
// panics (programmer error, caught at init).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// snapshot/scrape time (runtime health numbers: goroutines, heap). fn
// must be fast, concurrency-safe, and must not touch the registry (it
// runs under the registry lock). Registering an existing name keeps the
// first callback; registering over a different metric kind panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; ok {
		return
	}
	r.checkFree(name, "gaugefunc")
	r.gaugeFns[name] = &gaugeFunc{name: name, help: help, fn: fn}
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending bucket bounds on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name: name, help: help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// SeriesName composes a labeled series name, "base{k="v",...}", from
// alternating key/value pairs, escaping label values per the Prometheus
// text format (backslash, double quote and newline). Labeled series are
// ordinary registry entries — Counter/Gauge/Histogram accept the
// composed name directly — and WritePrometheus groups every series of a
// base name under one HELP/TYPE header, folding the labels into each
// sample line. The opcd job server uses this for per-job series such as
// goopc_server_job_tiles_done{job="7"}.
func SeriesName(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format label escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitSeries separates a (possibly labeled) series name into its base
// metric name and the label body between the braces ("" when none).
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// Remove drops a series from the registry (all kinds). Long-running
// servers use it to retire per-job labeled series once the job is
// purged; removing an unknown name is a no-op. Callers must drop their
// own handle to the removed metric — updates through a stale handle
// still work but are no longer exported.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.gaugeFns, name)
	delete(r.hists, name)
	r.mu.Unlock()
}

// SetLabel sets a string label (e.g. "phase") shown in /status and the
// snapshot.
func (r *Registry) SetLabel(key, value string) {
	r.mu.Lock()
	r.labels[key] = value
	r.mu.Unlock()
}

// Label returns a label's current value.
func (r *Registry) Label(key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels[key]
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	if len(r.labels) > 0 {
		s.Labels = make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			s.Labels[k] = v
		}
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.gaugeFns {
		s.Gauges[name] = g.fn()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Series sort by full name, so the output is
// deterministic, and every series sharing a base metric name (labeled
// variants composed with SeriesName) is grouped under a single
// HELP/TYPE header with the labels folded into each sample line.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	r.mu.Lock()
	helps := make(map[string]string, len(names))
	for n, c := range r.counters {
		helps[n] = c.help
	}
	for n, g := range r.gauges {
		helps[n] = g.help
	}
	for n, g := range r.gaugeFns {
		helps[n] = g.help
	}
	for n, h := range r.hists {
		helps[n] = h.help
	}
	r.mu.Unlock()
	headerDone := ""
	header := func(name, base, kind string) error {
		if base == headerDone {
			return nil // labeled sibling already wrote HELP/TYPE
		}
		headerDone = base
		if help := helps[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, help); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, name := range names {
		base, labels := splitSeries(name)
		if v, ok := snap.Counters[name]; ok {
			if err := header(name, base, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", sample(base, labels), v); err != nil {
				return err
			}
			continue
		}
		if v, ok := snap.Gauges[name]; ok {
			if err := header(name, base, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", sample(base, labels), formatFloat(v)); err != nil {
				return err
			}
			continue
		}
		hs := snap.Histograms[name]
		if err := header(name, base, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range hs.Bounds {
			cum += hs.Counts[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", sample(base+"_bucket", joinLabels(labels, `le="`+escapeLabelValue(formatFloat(b))+`"`)), cum); err != nil {
				return err
			}
		}
		cum += hs.Counts[len(hs.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s %d\n", sample(base+"_bucket", joinLabels(labels, `le="+Inf"`)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
			sample(base+"_sum", labels), formatFloat(hs.Sum),
			sample(base+"_count", labels), hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// sample renders one exposition sample name with an optional label body.
func sample(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// joinLabels appends extra label pairs (already rendered) to a label
// body, either of which may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
