package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Inspector serves the live run view over HTTP:
//
//	/metrics       Prometheus text exposition of the registry
//	/status        JSON: current phase, uptime, every gauge, derived
//	               cache hit rates, plus any extra Status fields
//	/debug/pprof/  the standard Go profiling endpoints
//
// Wire it with `opcflow -obs-listen :9090` and poll with curl while a
// run is in flight.
type Inspector struct {
	// Registry defaults to Default() when nil.
	Registry *Registry
	// Status, when non-nil, contributes extra top-level fields to the
	// /status payload (merged over the built-in ones).
	Status func() map[string]any

	srv *http.Server
	ln  net.Listener
}

func (ins *Inspector) registry() *Registry {
	if ins.Registry != nil {
		return ins.Registry
	}
	return Default()
}

// Register installs the inspector's routes on an existing mux, so a
// host server (opcd) can serve /metrics, /status and /debug/pprof next
// to its own API on one listener.
func (ins *Inspector) Register(mux *http.ServeMux) {
	RegisterRuntimeGauges(ins.registry())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = ins.registry().WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ins.statusPayload())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the inspector's route table (also usable under
// httptest or an existing server).
func (ins *Inspector) Handler() http.Handler {
	mux := http.NewServeMux()
	ins.Register(mux)
	return mux
}

// statusPayload assembles the /status JSON: the current phase label,
// uptime, all gauges (tile progress, worker occupancy, ...), counters,
// and a derived hit rate for every <base>_hits_total /
// <base>_misses_total counter pair on the registry.
func (ins *Inspector) statusPayload() map[string]any {
	reg := ins.registry()
	snap := reg.Snapshot()
	out := map[string]any{
		"phase":          snap.Labels["phase"],
		"uptime_seconds": time.Since(reg.Start()).Seconds(),
		"gauges":         snap.Gauges,
		"counters":       snap.Counters,
	}
	if k := snap.Labels["fft_kernel"]; k != "" {
		out["fft_kernel"] = k
	}
	rates := map[string]float64{}
	for name, hits := range snap.Counters {
		base, ok := strings.CutSuffix(name, "_hits_total")
		if !ok {
			continue
		}
		if misses, ok := snap.Counters[base+"_misses_total"]; ok && hits+misses > 0 {
			rates[base+"_hit_rate"] = float64(hits) / float64(hits+misses)
		}
	}
	if len(rates) > 0 {
		out["hit_rates"] = rates
	}
	if ins.Status != nil {
		for k, v := range ins.Status() {
			out[k] = v
		}
	}
	return out
}

// ListenAndServe binds addr (e.g. ":9090"; ":0" picks a free port) and
// serves the inspector in a background goroutine, returning the bound
// address.
func (ins *Inspector) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	ins.ln = ln
	ins.srv = &http.Server{Handler: ins.Handler()}
	go func() { _ = ins.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close shuts the inspector's listener down immediately, dropping
// in-flight requests. Prefer Shutdown for clean exits.
func (ins *Inspector) Close() error {
	if ins.srv == nil {
		return nil
	}
	return ins.srv.Close()
}

// Shutdown stops the inspector gracefully: the listener closes, then
// in-flight requests (a /metrics scrape, a pprof profile) drain until
// ctx expires. Idempotent — a second call reports no error — and a nil
// inspector or one that never listened is a no-op.
func (ins *Inspector) Shutdown(ctx context.Context) error {
	if ins == nil || ins.srv == nil {
		return nil
	}
	err := ins.srv.Shutdown(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ShutdownOnCancel ties an HTTP server's lifecycle to a context: when
// ctx is cancelled (SIGINT/SIGTERM via signal.NotifyContext, a test
// fixture tearing down), shutdown runs with a grace-period deadline.
// The returned channel closes once the shutdown call has finished —
// callers that must not exit before the listener is released can wait
// on it. Shared by opcflow's -obs-listen inspector and the opcd job
// server so both drain rather than leak their listener goroutines.
func ShutdownOnCancel(ctx context.Context, grace time.Duration, shutdown func(context.Context) error) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		sctx := context.Background()
		if grace > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(sctx, grace)
			defer cancel()
		}
		_ = shutdown(sctx)
	}()
	return done
}
