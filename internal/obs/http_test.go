package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInspectorRoundTrip serves a populated registry through the
// inspector handler and checks both endpoints end to end.
func TestInspectorRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("goopc_kernel_cache_hits_total", "kernel cache hits").Add(9)
	reg.Counter("goopc_kernel_cache_misses_total", "kernel cache misses").Add(1)
	reg.Gauge("goopc_tiles_done", "tiles finished this pass").Set(5)
	reg.Gauge("goopc_tiles_total", "tiles scheduled this pass").Set(8)
	reg.Histogram("goopc_model_epe_rms_nm", "per-iteration EPE RMS", []float64{1, 4, 16}).Observe(2.5)
	reg.SetLabel("phase", "run/correct/pass-1")

	ins := &Inspector{Registry: reg, Status: func() map[string]any {
		return map[string]any{"extra": "value"}
	}}
	srv := httptest.NewServer(ins.Handler())
	defer srv.Close()

	// /metrics: Prometheus text with every series.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"goopc_kernel_cache_hits_total 9",
		"goopc_kernel_cache_misses_total 1",
		"goopc_tiles_done 5",
		`goopc_model_epe_rms_nm_bucket{le="4"} 1`,
		"goopc_model_epe_rms_nm_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// /status: JSON with phase, gauges, derived hit rate, extra fields.
	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status["phase"] != "run/correct/pass-1" {
		t.Errorf("status phase = %v", status["phase"])
	}
	gauges, _ := status["gauges"].(map[string]any)
	if gauges["goopc_tiles_done"] != 5.0 || gauges["goopc_tiles_total"] != 8.0 {
		t.Errorf("status gauges = %v", gauges)
	}
	rates, _ := status["hit_rates"].(map[string]any)
	if r, _ := rates["goopc_kernel_cache_hit_rate"].(float64); r != 0.9 {
		t.Errorf("derived hit rate = %v, want 0.9", rates)
	}
	if status["extra"] != "value" {
		t.Errorf("custom status field missing: %v", status)
	}
	if _, ok := status["uptime_seconds"].(float64); !ok {
		t.Errorf("uptime missing: %v", status)
	}

	// /debug/pprof index responds.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

// TestListenAndServe binds an ephemeral port and hits the live server.
func TestListenAndServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Inc()
	ins := &Inspector{Registry: reg}
	addr, err := ins.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "c_total 1") {
		t.Errorf("live /metrics missing counter: %s", body)
	}
}
