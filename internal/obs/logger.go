package obs

import (
	"fmt"
	"io"
	"sync"
)

// LogLevel selects how chatty a Logger is.
type LogLevel int32

// Levels, least to most verbose. Errors always print.
const (
	// LevelQuiet suppresses progress output (errors still print).
	LevelQuiet LogLevel = iota
	// LevelNormal prints the standard progress lines.
	LevelNormal
	// LevelVerbose adds per-step detail.
	LevelVerbose
)

// ParseLogLevel maps the conventional -q/-v flag pair to a level.
func ParseLogLevel(quiet, verbose bool) LogLevel {
	switch {
	case quiet:
		return LevelQuiet
	case verbose:
		return LevelVerbose
	}
	return LevelNormal
}

// Logger is a minimal leveled logger for tool progress output. It
// writes one line per call, serializes concurrent writers, and is
// nil-safe: every method on a nil *Logger is a no-op, so library code
// can accept an optional logger without guarding call sites.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  LogLevel
	prefix string
}

// NewLogger returns a logger writing to w at the given level. An empty
// prefix is allowed; a non-empty one is prepended as "prefix: ".
func NewLogger(w io.Writer, level LogLevel, prefix string) *Logger {
	return &Logger{w: w, level: level, prefix: prefix}
}

// Level returns the logger's level (LevelQuiet for a nil logger).
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LevelQuiet
	}
	return l.level
}

func (l *Logger) printf(min LogLevel, format string, args ...any) {
	if l == nil || l.level < min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prefix != "" {
		fmt.Fprintf(l.w, "%s: ", l.prefix)
	}
	fmt.Fprintf(l.w, format, args...)
	fmt.Fprintln(l.w)
}

// Errorf always prints (even at LevelQuiet): errors are not progress.
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil {
		return
	}
	l.printf(LevelQuiet, format, args...)
}

// Infof prints at LevelNormal and above: the standard progress lines.
func (l *Logger) Infof(format string, args ...any) {
	l.printf(LevelNormal, format, args...)
}

// Verbosef prints only at LevelVerbose: per-step detail.
func (l *Logger) Verbosef(format string, args ...any) {
	l.printf(LevelVerbose, format, args...)
}
