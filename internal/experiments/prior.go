package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"goopc/internal/core"
	"goopc/internal/dataset"
)

// --- R-PRIOR: learned initial-bias prior, cold vs warm (DESIGN.md 5j) ---

// PriorRow aggregates one generator family of the sweep corpus: the
// paired cold/warm model-iteration counts and wall time for the same
// cells, corrected by the same engine, with only the prior differing.
// The stdcell / sram / routed families are the T2/T3 workloads at
// dataset-cell scale.
type PriorRow struct {
	Gen       string  `json:"gen"`
	Samples   int     `json:"samples"`
	ColdIters int     `json:"cold_iters"`
	WarmIters int     `json:"warm_iters"`
	ColdSec   float64 `json:"cold_sec"`
	WarmSec   float64 `json:"warm_sec"`
	WarmFrags int     `json:"warm_fragments"`
	// MaxRMSDelta is the worst signed (warm - cold) final-RMS
	// disagreement across the family's samples — the convergence-
	// equivalence check. Positive means a warm run ended worse than its
	// cold twin; negative-or-zero means warm never lost accuracy.
	MaxRMSDelta float64 `json:"max_rms_delta"`
}

// PriorResult is the cold/warm comparison table plus the fitted-table
// summary it was produced with.
type PriorResult struct {
	Rows        []PriorRow `json:"rows"`
	Entries     int        `json:"entries"`
	Conflicts   int        `json:"conflicts"`
	ConvergeEps float64    `json:"converge_eps"`
}

// priorSpec is the benchmark corpus: one variant of each generator
// family, including the stdcell/sram/routed families the T2/T3 tables
// are built from.
func priorSpec(seed int64) dataset.Spec {
	spec := dataset.Spec{Name: "prior-bench", Seed: seed, ShardSamples: 4}
	for _, name := range []string{"through-pitch", "line-end", "corner", "stdcell", "sram", "routed"} {
		spec.Generators = append(spec.Generators, dataset.GeneratorSpec{Name: name, Variants: []int{0}})
	}
	return spec
}

// RunPrior sweeps the corpus cold into a throwaway dataset, fits a
// prior from it, then corrects every cell again twice — cold and
// prior-warmed — through the identical CorrectSample path, pairing
// iteration counts and wall time per generator family.
func RunPrior(cfg Config) (*PriorResult, error) {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "goopc-prior-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	spec := priorSpec(cfg.Seed)
	if _, err := dataset.Generate(ctx, spec, dir, dataset.Options{}); err != nil {
		return nil, fmt.Errorf("PRIOR sweep: %w", err)
	}
	tab, err := dataset.Fit(dir, 0, "")
	if err != nil {
		return nil, fmt.Errorf("PRIOR fit: %w", err)
	}
	samples, err := dataset.Enumerate(spec)
	if err != nil {
		return nil, err
	}
	coldRMS := map[int]float64{}
	if err := dataset.ScanRecords(dir, func(rec dataset.Record) error {
		coldRMS[rec.Index] = rec.RMS
		return nil
	}); err != nil {
		return nil, err
	}

	res := &PriorResult{Entries: tab.Len(), Conflicts: tab.Conflicts()}
	byGen := map[string]*PriorRow{}
	var order []string
	for _, s := range samples {
		target, err := dataset.BuildTarget(s)
		if err != nil {
			return nil, err
		}
		base, err := dataset.DefaultFlows(s.Optics)
		if err != nil {
			return nil, err
		}
		res.ConvergeEps = base.ConvergeEps
		level := core.L3
		if s.Level == "L2" {
			level = core.L2
		}

		row := byGen[s.Gen]
		if row == nil {
			row = &PriorRow{Gen: s.Gen}
			byGen[s.Gen] = row
			order = append(order, s.Gen)
		}
		row.Samples++

		cold := *base
		t0 := time.Now()
		_, cc, _, err := cold.CorrectSample(target, level)
		if err != nil {
			return nil, fmt.Errorf("PRIOR cold %s: %w", s.Gen, err)
		}
		row.ColdSec += time.Since(t0).Seconds()
		row.ColdIters += cc.Iterations

		warm := *base
		warm.Prior = tab
		t0 = time.Now()
		_, wc, _, err := warm.CorrectSample(target, level)
		if err != nil {
			return nil, fmt.Errorf("PRIOR warm %s: %w", s.Gen, err)
		}
		row.WarmSec += time.Since(t0).Seconds()
		row.WarmIters += wc.Iterations
		row.WarmFrags += wc.WarmStarted
		d := wc.Final().RMS - coldRMS[s.Index]
		if row.Samples == 1 || d > row.MaxRMSDelta {
			row.MaxRMSDelta = d
		}
	}
	for _, g := range order {
		res.Rows = append(res.Rows, *byGen[g])
	}
	return res, nil
}

// Print renders the comparison table.
func (r *PriorResult) Print(w io.Writer) {
	fmt.Fprintf(w, "PRIOR (R-PRIOR): learned initial-bias prior, cold vs warm (%d entries, %d conflicted)\n",
		r.Entries, r.Conflicts)
	rule(w, 92)
	fmt.Fprintf(w, "%-14s %7s %10s %10s %7s %9s %9s %10s %9s\n",
		"gen", "samples", "coldIters", "warmIters", "saved", "cold[s]", "warm[s]", "warmFrags", "maxΔRMS")
	var coldI, warmI int
	for _, row := range r.Rows {
		saved := "-"
		if row.ColdIters > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(row.WarmIters)/float64(row.ColdIters)))
		}
		fmt.Fprintf(w, "%-14s %7d %10d %10d %7s %9.2f %9.2f %10d %+9.3f\n",
			row.Gen, row.Samples, row.ColdIters, row.WarmIters, saved,
			row.ColdSec, row.WarmSec, row.WarmFrags, row.MaxRMSDelta)
		coldI += row.ColdIters
		warmI += row.WarmIters
	}
	rule(w, 92)
	if coldI > 0 {
		fmt.Fprintf(w, "total model iterations: cold %d, warm %d (%.0f%% saved; eps %.2f)\n",
			coldI, warmI, 100*(1-float64(warmI)/float64(coldI)), r.ConvergeEps)
	}
}
