// Package experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md section 4). Each experiment
// is a pure function from a calibrated Flow to a printable result, so
// the same code backs the benchmark suite (bench_test.go), the
// cmd/benchtables row printer, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/obs"
	"goopc/internal/optics"
)

// Registry series for flow setup: experiments share a calibrated flow,
// so the build count and the last calibration cost tell how much of a
// benchtables run was bring-up rather than correction.
var (
	mFlowBuilds = obs.Default().Counter("goopc_flow_builds_total",
		"calibrated flows built (threshold calibration + rule table)")
	mFlowCacheHits = obs.Default().Counter("goopc_flow_cache_hits_total",
		"SharedFlow calls served from the per-config flow cache")
	gCalibrationSeconds = obs.Default().Gauge("goopc_last_calibration_seconds",
		"wall-clock seconds of the most recent flow calibration")
)

// Config scales the experiments. Fast() keeps everything laptop-scale;
// the numbers in EXPERIMENTS.md use the defaults.
type Config struct {
	// SourceSteps and GuardNM tune simulation accuracy vs speed.
	SourceSteps int
	GuardNM     float64
	// BiasSpaces for the L1 rule table.
	BiasSpaces []geom.Coord
	// Seed drives all random layout generation.
	Seed int64
	// PatternLibPath points the tiled experiments (T2/T3 and the tiled
	// figures) at a persistent cross-run pattern library, enabling the
	// paired cold/warm benchmark protocol (see DESIGN.md 5f). Empty
	// keeps the library out of the loop.
	PatternLibPath string
}

// Default returns the configuration used for the recorded results.
func Default() Config {
	return Config{SourceSteps: 5, GuardNM: 1200, BiasSpaces: []geom.Coord{240, 320, 420, 560}, Seed: 1}
}

var (
	flowMu    sync.Mutex
	flowCache = map[string]*core.Flow{}
)

// SharedFlow builds (once) and returns the calibrated flow for a
// configuration. Experiments share it because calibration and rule-table
// generation dominate setup cost.
func SharedFlow(cfg Config) (*core.Flow, error) {
	key := fmt.Sprintf("%d/%f/%v/%s", cfg.SourceSteps, cfg.GuardNM, cfg.BiasSpaces, cfg.PatternLibPath)
	flowMu.Lock()
	defer flowMu.Unlock()
	if f, ok := flowCache[key]; ok {
		mFlowCacheHits.Inc()
		return f, nil
	}
	t0 := time.Now()
	s := optics.Default()
	s.SourceSteps = cfg.SourceSteps
	s.GuardNM = cfg.GuardNM
	f, err := core.NewFlow(core.Options{Optics: s, BiasSpaces: cfg.BiasSpaces})
	if err != nil {
		return nil, err
	}
	f.PatternLibPath = cfg.PatternLibPath
	mFlowBuilds.Inc()
	gCalibrationSeconds.Set(time.Since(t0).Seconds())
	flowCache[key] = f
	return f, nil
}

// fmtFloat prints NaN as "-".
func fmtFloat(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// rule prints a separator line.
func rule(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
