package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"goopc/internal/core"
	"goopc/internal/timing"
)

// The experiment smoke tests assert the *shape* of each result — who
// wins and in which direction — not absolute numbers. The full tables
// are recorded by cmd/benchtables into EXPERIMENTS.md.

func TestRunT1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("T1 runs the full pattern suite")
	}
	res, err := RunT1(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6*4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Correction reduces the summary RMS monotonically enough: L3 < L1 < L0.
	if !(res.SummaryRMS[core.L3] < res.SummaryRMS[core.L1]) {
		t.Errorf("L3 %.2f !< L1 %.2f", res.SummaryRMS[core.L3], res.SummaryRMS[core.L1])
	}
	if !(res.SummaryRMS[core.L1] < res.SummaryRMS[core.L0]) {
		t.Errorf("L1 %.2f !< L0 %.2f", res.SummaryRMS[core.L1], res.SummaryRMS[core.L0])
	}
	// Headline factors: L3 cuts the summary RMS by >= 3x vs L0; the max
	// (dominated by inherently rounded corners, where MRC clamps the
	// correction) still improves by >= 1.8x.
	if res.SummaryRMS[core.L3]*3 > res.SummaryRMS[core.L0] {
		t.Errorf("L3 RMS %.1f not 3x better than L0 %.1f",
			res.SummaryRMS[core.L3], res.SummaryRMS[core.L0])
	}
	if res.SummaryMax[core.L3]*1.8 > res.SummaryMax[core.L0] {
		t.Errorf("L3 max %.1f not 1.8x better than L0 %.1f",
			res.SummaryMax[core.L3], res.SummaryMax[core.L0])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("Print missing title")
	}
}

func TestRunF2Shape(t *testing.T) {
	res, err := RunF2(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	pull := map[core.Level]float64{}
	for _, r := range res.Rows {
		pull[r.Level] = r.PullbackNM
	}
	// Uncorrected pullback is tens of nm; every correction level
	// reduces it; model OPC ends near zero.
	if pull[core.L0] < 20 {
		t.Errorf("L0 pullback = %.1f, expected substantial", pull[core.L0])
	}
	if !(pull[core.L1] < pull[core.L0]) {
		t.Errorf("hammerhead did not reduce pullback: %.1f -> %.1f", pull[core.L0], pull[core.L1])
	}
	if math.Abs(pull[core.L3]) > pull[core.L0]/3 {
		t.Errorf("L3 pullback %.1f not <3x better than L0 %.1f", pull[core.L3], pull[core.L0])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("Print missing title")
	}
}

func TestRunF4Shape(t *testing.T) {
	res, err := RunF4(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.RMS) < 3 {
			t.Fatalf("damping %.1f trace too short: %d", s.Damping, len(s.RMS))
		}
		// Every damping must end better than it started.
		if !(s.RMS[len(s.RMS)-1] < s.RMS[0]) {
			t.Errorf("damping %.1f did not improve: %v", s.Damping, s.RMS)
		}
	}
	// Over-damped (0.3) converges slower than 0.7 at iteration 2.
	var d03, d07 *F4Series
	for i := range res.Series {
		switch res.Series[i].Damping {
		case 0.3:
			d03 = &res.Series[i]
		case 0.7:
			d07 = &res.Series[i]
		}
	}
	if d03 == nil || d07 == nil {
		t.Fatal("missing series")
	}
	if len(d03.RMS) > 2 && len(d07.RMS) > 2 && d07.RMS[2] > d03.RMS[2] {
		t.Errorf("damping 0.7 slower than 0.3 at iter 2: %.2f vs %.2f", d07.RMS[2], d03.RMS[2])
	}
}

func TestRunF5Shape(t *testing.T) {
	res, err := RunF5(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Variants grow (weakly) with radius and the zero-radius case needs
	// exactly one variant per master.
	zero := res.Rows[0]
	if zero.RadiusNM != 0 {
		t.Fatal("first row should be radius 0")
	}
	if zero.Impact.TotalVariants != zero.Impact.Masters {
		t.Errorf("radius 0: variants %d != masters %d",
			zero.Impact.TotalVariants, zero.Impact.Masters)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Impact.TotalVariants < res.Rows[i-1].Impact.TotalVariants {
			t.Errorf("variants not monotone in radius: %d then %d",
				res.Rows[i-1].Impact.TotalVariants, res.Rows[i].Impact.TotalVariants)
		}
	}
	if last := res.Rows[len(res.Rows)-1].Impact; last.TotalVariants <= last.Masters {
		t.Error("large radius should force extra variants")
	}
}

func TestRunF6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("F6 sweeps fragmentation")
	}
	res, err := RunF6(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Finer fragmentation costs more vertices.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.MaxLen < last.MaxLen {
		t.Fatal("rows should go coarse to fine")
	}
	if last.Vertices <= first.Vertices {
		t.Errorf("finer fragments should add vertices: %d -> %d", first.Vertices, last.Vertices)
	}
	// And fidelity must not get worse than the coarsest setting.
	if last.FinalRMS > first.FinalRMS+1 {
		t.Errorf("finest RMS %.2f worse than coarsest %.2f", last.FinalRMS, first.FinalRMS)
	}
}

func TestSharedFlowCaches(t *testing.T) {
	cfg := Default()
	a, err := SharedFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SharedFlow should cache per configuration")
	}
}

func TestRunE2Shape(t *testing.T) {
	res, err := RunE2(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	bin, psm := res.Rows[0], res.Rows[1]
	// att-PSM steepens both edges and should not shrink the window.
	if psm.NILSDense <= bin.NILSDense {
		t.Errorf("PSM dense NILS %.2f !> binary %.2f", psm.NILSDense, bin.NILSDense)
	}
	if psm.NILSIso <= bin.NILSIso {
		t.Errorf("PSM iso NILS %.2f !> binary %.2f", psm.NILSIso, bin.NILSIso)
	}
	if psm.DOFAt5EL < bin.DOFAt5EL-1e-9 {
		t.Errorf("PSM DOF %.0f worse than binary %.0f", psm.DOFAt5EL, bin.DOFAt5EL)
	}
}

func TestRunE4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("E4 builds two process-window surfaces")
	}
	res, err := RunE4(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	y := map[core.Level]float64{}
	for _, r := range res.Rows {
		y[r.Level] = r.Yield
	}
	// Yield improves with adoption level; L3 should be near-perfect
	// under the default (well-run fab) variation.
	if !(y[core.L3] > y[core.L0]+0.2) {
		t.Errorf("L3 yield %.3f should beat L0 %.3f by a wide margin", y[core.L3], y[core.L0])
	}
	if y[core.L3] < 0.8 {
		t.Errorf("L3 yield = %.3f, expected high", y[core.L3])
	}
	if y[core.L0] > 0.6 {
		t.Errorf("L0 yield = %.3f; uncorrected dense+iso should fail often", y[core.L0])
	}
}

func TestRunE1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 corrects a full block at every level")
	}
	res, err := RunE1(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	st := map[core.Level]timing.Stats{}
	for _, r := range res.Rows {
		st[r.Level] = r.Stats
	}
	// No gate may fail to print at any level on this legal layout.
	for l, s := range st {
		if s.Failed != 0 {
			t.Errorf("%v: %d gates failed to print", l, s.Failed)
		}
	}
	// Uncorrected gates print far from drawn; L3 centers the mean.
	devL0 := math.Abs(st[core.L0].MeanL - 180)
	devL3 := math.Abs(st[core.L3].MeanL - 180)
	if devL3 >= devL0 {
		t.Errorf("L3 mean deviation %.1f !< L0 %.1f", devL3, devL0)
	}
	if devL3 > 6 {
		t.Errorf("L3 mean L = %.1f, want within 6 of 180", st[core.L3].MeanL)
	}
	// Uncorrected error is systematic: every gate prints wide and slow,
	// so the worst-case delay deviation from nominal is what OPC fixes.
	dev := func(s timing.Stats) float64 { return math.Abs(s.WorstDelay - 1) }
	if dev(st[core.L3]) >= dev(st[core.L0]) {
		t.Errorf("L3 worst delay deviation %.3f !< L0 %.3f",
			dev(st[core.L3]), dev(st[core.L0]))
	}
}
