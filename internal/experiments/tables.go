package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/mask"
	"goopc/internal/opc"
)

// --- R-T1: CD error (EPE) vs correction level over the pattern suite ---

// T1Row is one (pattern, level) fidelity measurement.
type T1Row struct {
	Pattern    string
	Level      core.Level
	MeanAbs    float64
	RMS        float64
	Max        float64
	Unresolved int
}

// T1Result is the headline fidelity table.
type T1Result struct {
	Rows []T1Row
	// SummaryRMS[level] aggregates RMS across patterns (RMS of RMS,
	// site-weighted would need the raw sites; this matches how such
	// tables are reported).
	SummaryRMS map[core.Level]float64
	SummaryMax map[core.Level]float64
}

// RunT1 measures post-correction edge fidelity for every pattern at
// every adoption level.
func RunT1(cfg Config) (*T1Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &T1Result{SummaryRMS: map[core.Level]float64{}, SummaryMax: map[core.Level]float64{}}
	suite := Suite(180)
	counts := map[core.Level]int{}
	for _, p := range suite {
		for _, l := range core.Levels {
			corrected, _, err := f.Correct(p.Polys, l)
			if err != nil {
				return nil, fmt.Errorf("T1 %s %v: %w", p.Name, l, err)
			}
			window := opc.WindowFor(p.Polys, f.Ambit)
			st, err := opc.EvaluateEPE(f.Sim, f.Threshold, p.Polys, corrected, window, f.Spec, 400)
			if err != nil {
				return nil, fmt.Errorf("T1 %s %v: %w", p.Name, l, err)
			}
			res.Rows = append(res.Rows, T1Row{
				Pattern: p.Name, Level: l,
				MeanAbs: st.MeanAbs, RMS: st.RMS, Max: st.Max,
				Unresolved: st.Unresolved,
			})
			res.SummaryRMS[l] += st.RMS
			if st.Max > res.SummaryMax[l] {
				res.SummaryMax[l] = st.Max
			}
			counts[l]++
		}
	}
	for l, n := range counts {
		res.SummaryRMS[l] /= float64(n)
	}
	return res, nil
}

// Print renders the table.
func (r *T1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 1 (R-T1): edge placement error by pattern and correction level [nm]")
	rule(w, 78)
	fmt.Fprintf(w, "%-12s %-16s %9s %8s %8s %6s\n", "pattern", "level", "mean|EPE|", "RMS", "max", "unres")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %-16s %9s %8s %8s %6d\n",
			row.Pattern, row.Level,
			fmtFloat(row.MeanAbs, 1), fmtFloat(row.RMS, 1), fmtFloat(row.Max, 1), row.Unresolved)
	}
	rule(w, 78)
	for _, l := range core.Levels {
		fmt.Fprintf(w, "summary %-16s avg-RMS=%s max=%s\n",
			l, fmtFloat(r.SummaryRMS[l], 1), fmtFloat(r.SummaryMax[l], 1))
	}
}

// --- R-T2: mask data impact vs level ---

// T2Row is the mask-data cost of one workload at one level.
type T2Row struct {
	Workload string
	Level    core.Level
	Data     mask.DataStats
	// GrowthVsL0 is GDSBytes relative to the same workload at L0.
	GrowthVsL0 float64
}

// T2Result is the data-volume table.
type T2Result struct {
	Rows []T2Row
}

// t2Workloads builds the flat poly-layer targets: a standard-cell
// block, an SRAM array, and a routed block's metal1.
func t2Workloads(cfg Config) (map[string][]geom.Polygon, error) {
	out := map[string][]geom.Polygon{}

	ly := layout.New("t2")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	block, err := gen.BuildBlock(ly, lib, "BLOCK", 2, 6, rng)
	if err != nil {
		return nil, err
	}
	out["stdcell-poly"] = layout.Flatten(block, layout.Poly)

	sram, err := gen.BuildSRAM(ly, gen.Tech180(), "SRAM", 6, 8)
	if err != nil {
		return nil, err
	}
	out["sram-poly"] = layout.Flatten(sram, layout.Poly)

	routed, err := gen.BuildRoutedBlock(ly, gen.Tech180(), "ROUTED", 20000, 20000, 18, rng)
	if err != nil {
		return nil, err
	}
	out["routed-m1"] = layout.Flatten(routed, layout.Metal1)
	return out, nil
}

// RunT2 measures figure counts, byte volumes, shot counts and write
// time across levels for each workload.
func RunT2(cfg Config) (*T2Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	works, err := t2Workloads(cfg)
	if err != nil {
		return nil, err
	}
	res := &T2Result{}
	for _, name := range []string{"stdcell-poly", "sram-poly", "routed-m1"} {
		target := works[name]
		var l0Bytes int64
		for _, l := range core.Levels {
			corrected, _, err := f.CorrectWindowed(target, l, 4*f.Ambit, true)
			if err != nil {
				return nil, fmt.Errorf("T2 %s %v: %w", name, l, err)
			}
			st := mask.Analyze(corrected.AllMask(), f.Writer)
			row := T2Row{Workload: name, Level: l, Data: st}
			if l == core.L0 {
				l0Bytes = st.GDSBytes
			}
			if l0Bytes > 0 {
				row.GrowthVsL0 = float64(st.GDSBytes) / float64(l0Bytes)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Print renders the table.
func (r *T2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2 (R-T2): mask data impact by workload and correction level")
	rule(w, 96)
	fmt.Fprintf(w, "%-14s %-16s %8s %9s %10s %8s %10s %7s\n",
		"workload", "level", "figures", "vertices", "GDSbytes", "shots", "write[s]", "xL0")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-16s %8d %9d %10d %8d %10.0f %7.2f\n",
			row.Workload, row.Level, row.Data.Figures, row.Data.Vertices,
			row.Data.GDSBytes, row.Data.Shots, row.Data.WriteTimeSec, row.GrowthVsL0)
	}
}

// --- R-T3: flow runtime vs layout size and level ---

// T3Row is one (size, level) timing point with the scheduler's
// per-run tile accounting: tiles actually corrected by the engine,
// tiles reused via deduplication, pass-2 tiles skipped clean, and the
// total model-iteration count.
type T3Row struct {
	Name                            string
	Polygons                        int
	Level                           core.Level
	Seconds                         float64
	Tiles                           int
	CorrTiles, Reused, Clean, Iters int
}

// T3Result is the runtime-scaling table.
type T3Result struct {
	Rows []T3Row
}

// RunT3 times the correction flow on routed blocks of growing area.
func RunT3(cfg Config) (*T3Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &T3Result{}
	sizes := []struct {
		name string
		dim  geom.Coord
		nets int
	}{
		{"1x", 16000, 12},
		{"2x", 23000, 24},
		{"4x", 32000, 48},
	}
	for _, sz := range sizes {
		ly := layout.New("t3" + sz.name)
		rng := rand.New(rand.NewSource(cfg.Seed))
		blk, err := gen.BuildRoutedBlock(ly, gen.Tech180(), "B", sz.dim, sz.dim, sz.nets, rng)
		if err != nil {
			return nil, fmt.Errorf("T3 %s: %w", sz.name, err)
		}
		target := layout.Flatten(blk, layout.Metal1)
		for _, l := range []core.Level{core.L1, core.L2, core.L3} {
			t0 := time.Now()
			_, st, err := f.CorrectWindowed(target, l, 4*f.Ambit, true)
			if err != nil {
				return nil, fmt.Errorf("T3 %s %v: %w", sz.name, l, err)
			}
			res.Rows = append(res.Rows, T3Row{
				Name: sz.name, Polygons: len(target), Level: l,
				Seconds: time.Since(t0).Seconds(), Tiles: st.Tiles,
				CorrTiles: st.CorrectedTiles, Reused: st.ReusedTiles,
				Clean: st.CleanTiles, Iters: st.Iterations,
			})
		}
	}
	return res, nil
}

// Print renders the table.
func (r *T3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3 (R-T3): correction runtime vs layout size")
	rule(w, 88)
	fmt.Fprintf(w, "%-6s %9s %-16s %9s %6s %6s %6s %6s %6s\n",
		"size", "polygons", "level", "time[s]", "tiles", "corr", "reuse", "clean", "iters")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6s %9d %-16s %9.2f %6d %6d %6d %6d %6d\n",
			row.Name, row.Polygons, row.Level, row.Seconds, row.Tiles,
			row.CorrTiles, row.Reused, row.Clean, row.Iters)
	}
}

// --- R-T4: design-rule impact — min pitch meeting spec per level ---

// T4Row is the exploration outcome at one level.
type T4Row struct {
	Level    core.Level
	MinPitch geom.Coord
	Results  []core.PitchResult
}

// T4Result is the design-rule headroom table.
type T4Result struct {
	CD      geom.Coord
	Pitches []geom.Coord
	Rows    []T4Row
}

// RunT4 finds the smallest legal pitch (printed CD within 10% of drawn)
// at each adoption level.
func RunT4(cfg Config) (*T4Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &T4Result{CD: 180, Pitches: []geom.Coord{360, 430, 520, 640, 800}}
	for _, l := range core.Levels {
		min, rs, err := f.MinPitchForSpec(res.CD, res.Pitches, 0.10, l)
		if err != nil {
			return nil, fmt.Errorf("T4 %v: %w", l, err)
		}
		res.Rows = append(res.Rows, T4Row{Level: l, MinPitch: min, Results: rs})
	}
	return res, nil
}

// Print renders the table.
func (r *T4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 4 (R-T4): min pitch meeting CD +-10%% (drawn CD %d nm)\n", r.CD)
	rule(w, 72)
	fmt.Fprintf(w, "%-16s %9s   per-pitch printed CD [nm]\n", "level", "min-pitch")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %9d  ", row.Level, row.MinPitch)
		for _, pr := range row.Results {
			mark := " "
			if pr.InSpec {
				mark = "*"
			}
			fmt.Fprintf(w, " %d:%s%s", pr.Pitch, fmtFloat(pr.PrintedCD, 0), mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(* = in spec)")
}
