package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/optics"
	"goopc/internal/orc"
	"goopc/internal/resist"
	"goopc/internal/timing"
	"goopc/internal/yield"
)

// --- R-E1 (extension): electrical impact — gate delay/leakage spread ---

// E1Row is the gate-population electrical outcome at one level.
type E1Row struct {
	Level core.Level
	Stats timing.Stats
}

// E1Result is the timing-impact table: printed channel-length spread
// and its delay/leakage consequences across OPC levels.
type E1Result struct {
	Gates int
	Rows  []E1Row
}

// RunE1 corrects a standard-cell block's poly at every level and
// measures every transistor gate on the simulated wafer.
func RunE1(cfg Config) (*E1Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	ly := layout.New("e1")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		return nil, err
	}
	block, err := gen.BuildBlock(ly, lib, "B", 1, 6, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	poly := layout.Flatten(block, layout.Poly)
	active := layout.Flatten(block, layout.Active)
	gates := timing.ExtractGates(poly, active, 400)
	if len(gates) == 0 {
		return nil, timing.ErrNoGates
	}
	res := &E1Result{Gates: len(gates)}
	dev := timing.Device180()
	for _, level := range core.Levels {
		corrected, _, err := f.CorrectWindowed(poly, level, 4*f.Ambit, true)
		if err != nil {
			return nil, fmt.Errorf("E1 %v: %w", level, err)
		}
		results, err := timing.MeasureGates(f.Sim, f.Threshold, corrected.AllMask(), gates, dev)
		if err != nil {
			return nil, fmt.Errorf("E1 %v: %w", level, err)
		}
		res.Rows = append(res.Rows, E1Row{Level: level, Stats: timing.Aggregate(results)})
	}
	return res, nil
}

// Print renders the table.
func (r *E1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Extension 1 (R-E1): electrical impact of OPC on %d gates\n", r.Gates)
	rule(w, 92)
	fmt.Fprintf(w, "%-16s %8s %8s %7s %10s %10s %10s %12s\n",
		"level", "meanL", "sigmaL", "failed", "meanDelay", "worstDelay", "meanLeak", "worstLeak")
	for _, row := range r.Rows {
		s := row.Stats
		fmt.Fprintf(w, "%-16s %8.1f %8.2f %7d %10.3f %10.3f %10.2f %12.2f\n",
			row.Level, s.MeanL, s.SigmaL, s.Failed,
			s.MeanDelay, s.WorstDelay, s.MeanLeakage, s.WorstLeakage)
	}
}

// --- R-E2 (extension): attenuated PSM vs binary mask ---

// E2Row compares one mask technology.
type E2Row struct {
	Tone optics.Tone
	// NILSDense and NILSIso at the nominal edge.
	NILSDense, NILSIso float64
	// DOFAt5EL of the dense+iso overlapping window.
	DOFAt5EL float64
	// Threshold is the per-tone dose-to-size calibration.
	Threshold float64
}

// E2Result is the RET comparison table.
type E2Result struct {
	Rows []E2Row
}

// RunE2 calibrates binary and 6% attenuated-PSM processes on the same
// anchor and compares edge slope and overlapping process window — the
// RET adoption decision that accompanied OPC adoption.
func RunE2(cfg Config) (*E2Result, error) {
	res := &E2Result{}
	cd := geom.Coord(180)
	for _, tone := range []optics.Tone{optics.BrightField, optics.AttPSMBrightField} {
		s := optics.Default()
		s.SourceSteps = cfg.SourceSteps
		s.GuardNM = cfg.GuardNM
		s.MaskTone = tone
		sim, err := optics.New(s)
		if err != nil {
			return nil, err
		}
		th, err := resist.CalibrateThreshold(sim, 250, 500)
		if err != nil {
			return nil, fmt.Errorf("E2 %v: %w", tone, err)
		}
		// Dense group + iso line.
		var mask []geom.Polygon
		for i := -3; i <= 3; i++ {
			x := geom.Coord(i) * 430
			mask = append(mask, geom.R(x-cd/2, -3000, x+cd/2, 3000).Polygon())
		}
		isoX := geom.Coord(6000)
		mask = append(mask, geom.R(isoX-cd/2, -3000, isoX+cd/2, 3000).Polygon())
		window := geom.R(-1000, -400, isoX+1000, 400)
		im, err := sim.Aerial(mask, window)
		if err != nil {
			return nil, err
		}
		row := E2Row{Tone: tone, Threshold: th}
		row.NILSDense = im.NILS(float64(cd)/2, 0, 1, 0, float64(cd))
		row.NILSIso = im.NILS(float64(isoX)+float64(cd)/2, 0, 1, 0, float64(cd))
		sites := []orc.PWSite{
			{Name: "dense", At: geom.Pt(0, 0), Horizontal: true, TargetCD: float64(cd), TolFrac: 0.10},
			{Name: "iso", At: geom.Pt(isoX, 0), Horizontal: true, TargetCD: float64(cd), TolFrac: 0.10},
		}
		focuses := []float64{-600, -450, -300, -150, 0, 150, 300, 450, 600}
		doses := []float64{0.88, 0.92, 0.96, 1.0, 1.04, 1.08, 1.12}
		pw, err := orc.AnalyzeWindow(sim, th, mask, window, sites, focuses, doses)
		if err != nil {
			return nil, err
		}
		row.DOFAt5EL = pw.DOF(0.05)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the table.
func (r *E2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension 2 (R-E2): binary chrome vs 6% attenuated PSM (uncorrected)")
	rule(w, 80)
	fmt.Fprintf(w, "%-16s %10s %10s %10s %12s\n", "mask", "threshold", "NILSdense", "NILSiso", "DOF@5%EL")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %10.3f %10.2f %10.2f %12.0f\n",
			row.Tone, row.Threshold, row.NILSDense, row.NILSIso, row.DOFAt5EL)
	}
}

// --- R-E3 (extension): mask error enhancement factor through pitch ---

// E3Row is the MEEF at one pitch.
type E3Row struct {
	Pitch     geom.Coord
	NominalCD float64
	MEEF      float64
}

// E3Result is the MEEF-through-pitch figure: the mask-spec pressure OPC
// adoption put on mask shops.
type E3Result struct {
	CD   geom.Coord
	Rows []E3Row
}

// RunE3 measures the MEEF of equal line/space patterns through pitch.
func RunE3(cfg Config) (*E3Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &E3Result{CD: 0} // cd = pitch/2 per row
	for _, pitch := range []geom.Coord{320, 360, 400, 460, 520, 600, 700, 850, 1000} {
		cd := pitch / 2
		var mask []geom.Polygon
		for i := -4; i <= 4; i++ {
			x := geom.Coord(i) * pitch
			mask = append(mask, geom.R(x-cd/2, -3000, x+cd/2, 3000).Polygon())
		}
		window := geom.R(-pitch-200, -200, pitch+200, 200)
		m, err := orc.MeasureMEEF(f.Sim, f.Threshold, mask, window, geom.Pt(0, 0), true, 4, float64(pitch))
		if err != nil {
			return nil, fmt.Errorf("E3 pitch %d: %w", pitch, err)
		}
		res.Rows = append(res.Rows, E3Row{Pitch: pitch, NominalCD: m.Nominal, MEEF: m.MEEF})
	}
	return res, nil
}

// Print renders the figure.
func (r *E3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Extension 3 (R-E3): MEEF through pitch (equal line/space)")
	rule(w, 56)
	fmt.Fprintf(w, "%8s %8s %12s %8s\n", "pitch", "cd", "nominalCD", "MEEF")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %8d %12.1f %8.2f\n", row.Pitch, row.Pitch/2, row.NominalCD, row.MEEF)
	}
}

// --- R-E4 (extension): parametric yield under process variation ---

// E4Row is the yield outcome at one level.
type E4Row struct {
	Level   core.Level
	Yield   float64
	CDSigma float64 // worst site CD sigma [nm]
}

// E4Result is the parametric-yield table: the Monte Carlo translation
// of the process-window gain into good-die fraction.
type E4Result struct {
	Variation yield.Variation
	Rows      []E4Row
}

// RunE4 builds the dense+iso process-window surface for L0 and L3
// masks and Monte Carlo samples focus/dose noise against it.
func RunE4(cfg Config) (*E4Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	cd := geom.Coord(180)
	var target []geom.Polygon
	for i := -3; i <= 3; i++ {
		x := geom.Coord(i) * 430
		target = append(target, geom.R(x-cd/2, -3000, x+cd/2, 3000).Polygon())
	}
	isoX := geom.Coord(6000)
	target = append(target, geom.R(isoX-cd/2, -3000, isoX+cd/2, 3000).Polygon())
	sites := []orc.PWSite{
		{Name: "dense", At: geom.Pt(0, 0), Horizontal: true, TargetCD: float64(cd), TolFrac: 0.10},
		{Name: "iso", At: geom.Pt(isoX, 0), Horizontal: true, TargetCD: float64(cd), TolFrac: 0.10},
	}
	focuses := []float64{-450, -300, -150, 0, 150, 300, 450}
	doses := []float64{0.94, 0.97, 1.0, 1.03, 1.06}
	window := geom.R(-1000, -400, isoX+1000, 400)
	v := yield.DefaultVariation()
	res := &E4Result{Variation: v}
	for _, level := range []core.Level{core.L0, core.L1, core.L3} {
		corrected, _, err := f.Correct(target, level)
		if err != nil {
			return nil, fmt.Errorf("E4 %v: %w", level, err)
		}
		pw, err := orc.AnalyzeWindow(f.Sim, f.Threshold, corrected.AllMask(), window, sites, focuses, doses)
		if err != nil {
			return nil, fmt.Errorf("E4 %v window: %w", level, err)
		}
		y, err := yield.Estimate(pw, v)
		if err != nil {
			return nil, fmt.Errorf("E4 %v yield: %w", level, err)
		}
		row := E4Row{Level: level, Yield: y.Yield}
		for _, st := range y.SiteStats {
			if st.Sigma > row.CDSigma {
				row.CDSigma = st.Sigma
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the table.
func (r *E4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Extension 4 (R-E4): parametric yield, focus sigma %.0f nm / dose sigma %.1f%%\n",
		r.Variation.FocusSigmaNM, 100*r.Variation.DoseSigma)
	rule(w, 56)
	fmt.Fprintf(w, "%-16s %10s %14s\n", "level", "yield", "worst CDsigma")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %9.1f%% %14.2f\n", row.Level, 100*row.Yield, row.CDSigma)
	}
}
