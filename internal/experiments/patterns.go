package experiments

import (
	"goopc/internal/geom"
)

// Pattern is one evaluation target: a flat set of drawn polygons.
type Pattern struct {
	Name  string
	Polys []geom.Polygon
}

// lineArray builds n vertical lines of width cd at the pitch, centered
// on x=0, spanning +-halfLen.
func lineArray(cd, pitch geom.Coord, n int, halfLen geom.Coord) []geom.Polygon {
	var out []geom.Polygon
	for i := 0; i < n; i++ {
		x := geom.Coord(i-n/2) * pitch
		out = append(out, geom.R(x-cd/2, -halfLen, x+cd/2, halfLen).Polygon())
	}
	return out
}

// Suite returns the standard pattern suite for the fidelity table
// (R-T1): dense through mid through iso pitches, a line-end gap
// structure, and an elbow.
func Suite(cd geom.Coord) []Pattern {
	return []Pattern{
		{"dense-p360", lineArray(cd, 360, 7, 2000)},
		{"mid-p520", lineArray(cd, 520, 7, 2000)},
		{"semi-p800", lineArray(cd, 800, 5, 2000)},
		{"iso", lineArray(cd, 0, 1, 2000)},
		{"line-end", []geom.Polygon{
			geom.R(-cd/2, -2200, cd/2, -150).Polygon(),
			geom.R(-cd/2, 150, cd/2, 2200).Polygon(),
		}},
		{"elbow", []geom.Polygon{{
			geom.Pt(0, 0), geom.Pt(2000, 0), geom.Pt(2000, cd),
			geom.Pt(cd, cd), geom.Pt(cd, 2000), geom.Pt(0, 2000),
		}}},
	}
}
