package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/mask"
	"goopc/internal/opc"
	"goopc/internal/opc/model"
	"goopc/internal/orc"
	"goopc/internal/resist"
)

// --- R-F1: CD through pitch, corrected vs uncorrected ---

// F1Point is one (pitch, level) CD measurement.
type F1Point struct {
	Pitch     geom.Coord // 0 = isolated
	Level     core.Level
	PrintedCD float64
}

// F1Result is the through-pitch proximity curve.
type F1Result struct {
	CD     geom.Coord
	Points []F1Point
	// Spread[level] = max - min printed CD across the pitch series: the
	// residual iso-dense bias.
	Spread map[core.Level]float64
}

// RunF1 sweeps pitch for L0 and L3, measuring the printed CD of the
// center line.
func RunF1(cfg Config) (*F1Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &F1Result{CD: 180, Spread: map[core.Level]float64{}}
	pitches := []geom.Coord{360, 400, 430, 470, 520, 580, 640, 720, 800, 0}
	for _, level := range []core.Level{core.L0, core.L3} {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, pitch := range pitches {
			var target []geom.Polygon
			if pitch == 0 {
				target = lineArray(res.CD, 0, 1, 2500)
			} else {
				target = lineArray(res.CD, pitch, 7, 2500)
			}
			corrected, _, err := f.Correct(target, level)
			if err != nil {
				return nil, fmt.Errorf("F1 p%d %v: %w", pitch, level, err)
			}
			win := geom.Coord(800)
			if pitch > 0 {
				win = pitch + 300
			}
			im, err := f.Sim.Aerial(corrected.AllMask(), geom.R(-win, -300, win, 300))
			if err != nil {
				return nil, err
			}
			cd, err := resist.MeasureCD(im, f.Threshold, 0, 0, true, float64(win))
			if err != nil {
				cd = math.NaN()
			}
			res.Points = append(res.Points, F1Point{Pitch: pitch, Level: level, PrintedCD: cd})
			if !math.IsNaN(cd) {
				lo = math.Min(lo, cd)
				hi = math.Max(hi, cd)
			}
		}
		res.Spread[level] = hi - lo
	}
	return res, nil
}

// Print renders the series.
func (r *F1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 (R-F1): printed CD through pitch, drawn %d nm (0 = iso)\n", r.CD)
	rule(w, 56)
	fmt.Fprintf(w, "%7s %-16s %9s\n", "pitch", "level", "CD[nm]")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%7d %-16s %9s\n", p.Pitch, p.Level, fmtFloat(p.PrintedCD, 1))
	}
	for l, s := range r.Spread {
		fmt.Fprintf(w, "spread %-16s %.1f nm\n", l, s)
	}
}

// --- R-F2: line-end pullback vs level ---

// F2Row is the pullback at one level.
type F2Row struct {
	Level core.Level
	// PullbackNM is drawn tip minus printed tip along the line axis.
	PullbackNM float64
}

// F2Result is the line-end treatment figure.
type F2Result struct {
	Rows []F2Row
}

// RunF2 measures line-end pullback of an isolated tip at each level.
func RunF2(cfg Config) (*F2Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &F2Result{}
	// The worst case: a tip between two continuous neighbors at tight
	// pitch — light funnels around the end and the pullback is maximal.
	target := []geom.Polygon{
		geom.R(-90, -2600, 90, 0).Polygon(), // tip at y=0
		geom.R(-90-360, -2600, 90-360, 2600).Polygon(),
		geom.R(-90+360, -2600, 90+360, 2600).Polygon(),
	}
	for _, level := range core.Levels {
		corrected, _, err := f.Correct(target, level)
		if err != nil {
			return nil, fmt.Errorf("F2 %v: %w", level, err)
		}
		im, err := f.Sim.Aerial(corrected.AllMask(), geom.R(-700, -1100, 700, 400))
		if err != nil {
			return nil, err
		}
		d, ok := im.FindCrossing(0, -1000, 0, 1, f.Threshold, 1600)
		if !ok {
			return nil, fmt.Errorf("F2 %v: no tip contour", level)
		}
		res.Rows = append(res.Rows, F2Row{Level: level, PullbackNM: 1000 - d})
	}
	return res, nil
}

// Print renders the figure.
func (r *F2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 2 (R-F2): line-end pullback vs correction level (drawn tip = 0)")
	rule(w, 44)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s pullback %7.1f nm\n", row.Level, row.PullbackNM)
	}
}

// --- R-F3: process window with/without OPC+SRAF ---

// F3Row is the window metric at one level.
type F3Row struct {
	Level core.Level
	// ELAtBestFocus is the exposure latitude at focus 0.
	ELAtBestFocus float64
	// DOFAt5EL is the depth of focus sustaining 5% exposure latitude.
	DOFAt5EL float64
}

// F3Result is the overlapping-process-window figure.
type F3Result struct {
	Rows []F3Row
}

// RunF3 compares the dense+iso overlapping process window for L0 and
// L3 masks.
func RunF3(cfg Config) (*F3Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &F3Result{}
	cd := geom.Coord(180)
	// Target: one dense group and one isolated line, far apart.
	var target []geom.Polygon
	for i := -3; i <= 3; i++ {
		x := geom.Coord(i) * 430
		target = append(target, geom.R(x-cd/2, -3000, x+cd/2, 3000).Polygon())
	}
	isoX := geom.Coord(6000)
	target = append(target, geom.R(isoX-cd/2, -3000, isoX+cd/2, 3000).Polygon())
	sites := []orc.PWSite{
		{Name: "dense", At: geom.Pt(0, 0), Horizontal: true, TargetCD: float64(cd), TolFrac: 0.10},
		{Name: "iso", At: geom.Pt(isoX, 0), Horizontal: true, TargetCD: float64(cd), TolFrac: 0.10},
	}
	focuses := []float64{-600, -450, -300, -150, 0, 150, 300, 450, 600}
	doses := []float64{0.88, 0.92, 0.96, 1.0, 1.04, 1.08, 1.12}
	window := geom.R(-1000, -400, isoX+1000, 400)
	for _, level := range []core.Level{core.L0, core.L3} {
		corrected, _, err := f.Correct(target, level)
		if err != nil {
			return nil, fmt.Errorf("F3 %v: %w", level, err)
		}
		pw, err := orc.AnalyzeWindow(f.Sim, f.Threshold, corrected.AllMask(), window, sites, focuses, doses)
		if err != nil {
			return nil, fmt.Errorf("F3 %v: %w", level, err)
		}
		res.Rows = append(res.Rows, F3Row{
			Level:         level,
			ELAtBestFocus: pw.ExposureLatitudeAt(4),
			DOFAt5EL:      pw.DOF(0.05),
		})
	}
	return res, nil
}

// Print renders the figure.
func (r *F3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3 (R-F3): dense+iso overlapping process window")
	rule(w, 56)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s EL@f0 %5.1f%%  DOF@5%%EL %6.0f nm\n",
			row.Level, 100*row.ELAtBestFocus, row.DOFAt5EL)
	}
}

// --- R-F4: model-OPC convergence and damping ablation ---

// F4Series is the RMS trace at one damping.
type F4Series struct {
	Damping float64
	RMS     []float64
	MaxAbs  []float64
}

// F4Result is the convergence figure.
type F4Result struct {
	Series []F4Series
}

// RunF4 traces EPE RMS per iteration at several damping factors on the
// line-end pattern (the hardest of the suite).
func RunF4(cfg Config) (*F4Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &F4Result{}
	target := []geom.Polygon{
		geom.R(-90, -2200, 90, 0).Polygon(),
		geom.R(-90+430, -2200, 90+430, 0).Polygon(),
	}
	window := opc.WindowFor(target, f.Ambit)
	for _, damping := range []float64{0.3, 0.7, 1.0} {
		eng := model.New(f.Sim, f.Threshold)
		eng.Spec = f.Spec
		eng.MRC = f.MRC
		eng.Damping = damping
		eng.MaxIter = 8
		eng.Tol = 0.5 // run the full trace
		_, conv, err := eng.Correct(target, window)
		if err != nil {
			return nil, fmt.Errorf("F4 d=%.1f: %w", damping, err)
		}
		s := F4Series{Damping: damping}
		for _, st := range conv.PerIter {
			s.RMS = append(s.RMS, st.RMS)
			s.MaxAbs = append(s.MaxAbs, st.Max)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Print renders the figure.
func (r *F4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4 (R-F4): model-OPC EPE RMS vs iteration (damping ablation)")
	rule(w, 64)
	for _, s := range r.Series {
		fmt.Fprintf(w, "damping %.1f:", s.Damping)
		for _, v := range s.RMS {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}
}

// --- R-F5: hierarchy impact of context-dependent OPC ---

// F5Row is the variant count at one context radius.
type F5Row struct {
	RadiusNM geom.Coord
	Impact   core.HierarchyImpact
}

// F5Result is the hierarchy figure.
type F5Result struct {
	Rows []F5Row
	// Stored and Expanded figures of the block, for the data-volume
	// consequence.
	Hier layout.HierStats
}

// RunF5 measures how many corrected cell variants a context-dependent
// hierarchical OPC flow needs on a placed block, as the optical
// interaction radius grows.
func RunF5(cfg Config) (*F5Result, error) {
	ly := layout.New("f5")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	block, err := gen.BuildBlock(ly, lib, "BLOCK", 4, 12, rng)
	if err != nil {
		return nil, err
	}
	ly.SetTop(block)
	res := &F5Result{}
	res.Hier, err = layout.CollectHierStats(ly)
	if err != nil {
		return nil, err
	}
	for _, radius := range []geom.Coord{0, 400, 700, 1000} {
		imp, err := core.AnalyzeHierarchyImpact(ly, layout.Poly, radius)
		if err != nil {
			return nil, fmt.Errorf("F5 r=%d: %w", radius, err)
		}
		res.Rows = append(res.Rows, F5Row{RadiusNM: radius, Impact: imp})
	}
	return res, nil
}

// Print renders the figure.
func (r *F5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 (R-F5): cell variants required by context-dependent OPC")
	rule(w, 72)
	fmt.Fprintf(w, "block: %d masters, %d placements, compression %.1fx\n",
		r.Hier.Cells, r.Hier.Placements, r.Hier.CompressionRatio)
	fmt.Fprintf(w, "%10s %9s %11s %11s %10s\n", "radius[nm]", "masters", "placements", "variants", "expansion")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d %9d %11d %11d %10.2f\n",
			row.RadiusNM, row.Impact.Masters, row.Impact.Placements,
			row.Impact.TotalVariants, row.Impact.ExpansionFactor())
	}
}

// --- R-F6: fragmentation granularity ablation ---

// F6Row is one fragmentation setting.
type F6Row struct {
	MaxLen   geom.Coord
	FinalRMS float64
	// Shots is the fractured figure count of the corrected output: the
	// data cost of finer fragmentation.
	Shots    int
	Vertices int
}

// F6Result is the fidelity-vs-data tradeoff figure.
type F6Result struct {
	Rows []F6Row
}

// RunF6 sweeps the fragment length on the elbow+line-end pattern,
// recording final fidelity and mask data cost.
func RunF6(cfg Config) (*F6Result, error) {
	f, err := SharedFlow(cfg)
	if err != nil {
		return nil, err
	}
	res := &F6Result{}
	target := Suite(180)[5].Polys // elbow
	target = append(target, geom.R(800, 400, 980, 2400).Polygon())
	window := opc.WindowFor(target, f.Ambit)
	for _, maxLen := range []geom.Coord{400, 200, 100, 60} {
		eng := model.New(f.Sim, f.Threshold)
		eng.Spec = geom.FragmentSpec{MaxLen: maxLen, CornerLen: 60, LineEndMax: 250}
		eng.MRC = f.MRC
		eng.MaxIter = 6
		out, conv, err := eng.Correct(target, window)
		if err != nil {
			return nil, fmt.Errorf("F6 len=%d: %w", maxLen, err)
		}
		st := mask.Analyze(out.AllMask(), f.Writer)
		res.Rows = append(res.Rows, F6Row{
			MaxLen:   maxLen,
			FinalRMS: conv.Final().RMS,
			Shots:    st.Shots,
			Vertices: st.Vertices,
		})
	}
	return res, nil
}

// Print renders the figure.
func (r *F6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 (R-F6): fragment length vs fidelity and mask data")
	rule(w, 64)
	fmt.Fprintf(w, "%10s %10s %8s %10s\n", "maxLen[nm]", "RMS[nm]", "shots", "vertices")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d %10.2f %8d %10d\n", row.MaxLen, row.FinalRMS, row.Shots, row.Vertices)
	}
}
