package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("seed=42;tile:panic:p=0.05;tile:error:n=2;tile:delay:n=1:d=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d", p.Seed)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	if p.Rules[0].Kind != KindPanic || p.Rules[0].Prob != 0.05 {
		t.Errorf("rule 0 = %+v", p.Rules[0])
	}
	if p.Rules[1].Kind != KindError || p.Rules[1].Count != 2 {
		t.Errorf("rule 1 = %+v", p.Rules[1])
	}
	if p.Rules[2].Kind != KindDelay || p.Rules[2].Delay != 50*time.Millisecond {
		t.Errorf("rule 2 = %+v", p.Rules[2])
	}
	if got := p.Sites(); len(got) != 1 || got[0] != "tile" {
		t.Errorf("sites = %v", got)
	}
	// The String round-trip re-parses to the same rules.
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if q.String() != p.String() {
		t.Errorf("round-trip %q != %q", q.String(), p.String())
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"", "tile", "tile:explode", "tile:error:p=2", "tile:error:p=0",
		"tile:delay", "tile:error:n=0", "seed=x;tile:error", "tile:error:q=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestNilPlanIsQuiet(t *testing.T) {
	var p *Plan
	if err := p.Probe(context.Background(), "tile"); err != nil {
		t.Fatal(err)
	}
	if p.Probes("tile") != 0 {
		t.Error("nil plan counted probes")
	}
}

func TestCountModeFiresFirstN(t *testing.T) {
	p, err := Parse("tile:error:n=2")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		err := p.Probe(ctx, "tile")
		if i < 2 {
			if !errors.Is(err, ErrInjected) {
				t.Errorf("probe %d: err = %v, want injected", i, err)
			}
		} else if err != nil {
			t.Errorf("probe %d: err = %v, want nil", i, err)
		}
	}
	// Other sites are untouched.
	if err := p.Probe(ctx, "gds"); err != nil {
		t.Errorf("other site fired: %v", err)
	}
	if p.Probes("tile") != 5 || p.Probes("gds") != 1 {
		t.Errorf("counters = %d/%d", p.Probes("tile"), p.Probes("gds"))
	}
}

func TestProbabilityDeterministicAndCalibrated(t *testing.T) {
	const n = 4000
	fire := func(seed int64) []bool {
		p := NewPlan(seed)
		p.Rules = []Rule{{Site: "tile", Kind: KindError, Prob: 0.25}}
		out := make([]bool, n)
		for i := range out {
			out[i] = p.Probe(context.Background(), "tile") != nil
		}
		return out
	}
	a, b := fire(7), fire(7)
	count := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d differs between identical plans", i)
		}
		if a[i] {
			count++
		}
	}
	if count < n/8 || count > n/2 {
		t.Errorf("p=0.25 fired %d/%d times", count, n)
	}
	// A different seed fires a different sequence.
	c := fire(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Error("seed change did not change the firing sequence")
	}
}

func TestPanicKind(t *testing.T) {
	p, err := Parse("tile:panic:n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "injected panic at tile[0]") {
			t.Errorf("panic value %v", r)
		}
	}()
	p.Probe(context.Background(), "tile")
}

func TestDelayHonorsContext(t *testing.T) {
	p, err := Parse("tile:delay:n=1:d=10s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	perr := p.Probe(ctx, "tile")
	if !errors.Is(perr, context.DeadlineExceeded) {
		t.Errorf("err = %v", perr)
	}
	if time.Since(t0) > 5*time.Second {
		t.Error("delay ignored cancellation")
	}
	// Second probe is past the count: no delay.
	t0 = time.Now()
	if err := p.Probe(context.Background(), "tile"); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) > time.Second {
		t.Error("quiet probe slept")
	}
}

func TestDelayElapses(t *testing.T) {
	p, err := Parse("tile:delay:n=1:d=5ms")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := p.Probe(context.Background(), "tile"); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 5*time.Millisecond {
		t.Error("delay did not elapse")
	}
}

func TestMatchSiteWildcard(t *testing.T) {
	cases := []struct {
		rule, site string
		want       bool
	}{
		{"rpc.lease", "rpc.lease", true},
		{"rpc.lease", "rpc.join", false},
		{"rpc.*", "rpc.lease", true},
		{"rpc.*", "rpc.join", true},
		{"rpc.*", "rpc", false}, // bare family is its own site
		{"rpc.*", "worker.lease", false},
		{"worker.*", "worker.solve", true},
		{"*", "anything", true},
		{"tile", "tile", true},
		{"tile", "tiles", false},
	}
	for _, c := range cases {
		if got := matchSite(c.rule, c.site); got != c.want {
			t.Errorf("matchSite(%q, %q) = %v, want %v", c.rule, c.site, got, c.want)
		}
	}
}

func TestWildcardRuleFiresAcrossFamily(t *testing.T) {
	// One rpc.* rule arms every rpc edge; counters stay per concrete
	// site, so each edge gets its own first-n burst.
	p, err := Parse("seed=3;rpc.*:error:n=1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, site := range []string{"rpc.join", "rpc.lease", "rpc.result"} {
		if err := p.Probe(ctx, site); !errors.Is(err, ErrInjected) {
			t.Errorf("first probe at %s: %v, want injected", site, err)
		}
		if err := p.Probe(ctx, site); err != nil {
			t.Errorf("second probe at %s: %v, want nil", site, err)
		}
	}
	// The family's worker-side edges are not selected.
	if err := p.Probe(ctx, "worker.solve"); err != nil {
		t.Errorf("worker.solve fired on an rpc.* rule: %v", err)
	}
	if got := p.Probes("rpc.lease"); got != 2 {
		t.Errorf("rpc.lease counter = %d, want 2", got)
	}
}
