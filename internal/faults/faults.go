// Package faults is a deterministic fault-injection harness for the
// correction pipeline. Production full-chip runs must survive panicking
// tile workers, transient engine errors, and stalls; this package lets
// tests (and the opcflow -inject flag) provoke exactly those failures
// at named probe sites, reproducibly, so every recovery path in the
// resilience layer is exercised rather than assumed.
//
// A Plan is a seeded set of rules. Each rule targets one probe site
// ("tile", "rules", ...) and fires either on the first n probes of that
// site (count mode) or with a fixed probability per probe (probability
// mode, decided by a counter-keyed hash of the seed so a given plan
// always fires on the same probe sequence numbers). Firing injects a
// panic, an error wrapping ErrInjected, or a context-aware delay.
//
// Site names are flat strings by convention grouped into dot-separated
// families ("rpc.lease", "worker.solve"); a rule site ending in ".*"
// ("rpc.*") arms every site in that family by prefix match. Counters
// (and probability draws) stay keyed by the concrete probed site, so a
// wildcard rule fires deterministically per site, not per family.
//
// A nil *Plan is valid and free: Probe on it is a nil check and
// nothing else, so production code keeps its probes permanently in
// place and pays nothing when no plan is armed.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every injected error, so recovery code and
// tests can distinguish provoked failures from organic ones.
var ErrInjected = errors.New("injected fault")

// Kind is the failure mode a rule injects.
type Kind int

// Failure modes.
const (
	// KindError makes the probe return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes the probe panic (the tile-worker isolation path).
	KindPanic
	// KindDelay makes the probe sleep for the rule's Delay, honoring
	// context cancellation (the timeout path): a cancelled sleep returns
	// ctx.Err().
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule arms one failure mode at one probe site.
type Rule struct {
	// Site is the probe site the rule targets: an exact match, or a
	// family wildcard "prefix.*" matching every site under "prefix.".
	Site string
	Kind Kind
	// Count, when positive, fires the rule on the first Count probes of
	// the site and never again (transient-fault mode). When zero, Prob
	// decides.
	Count int64
	// Prob is the per-probe firing probability in (0, 1]; the decision
	// is a deterministic function of (plan seed, site, probe sequence
	// number), so reruns of a serial pipeline fire identically.
	Prob float64
	// Delay is the sleep duration for KindDelay rules.
	Delay time.Duration
}

// Plan is a seeded set of fault rules plus per-site probe counters.
// Safe for concurrent use.
type Plan struct {
	Seed  int64
	Rules []Rule

	mu       sync.Mutex
	counters map[string]*atomic.Int64
}

// NewPlan returns an empty plan with the given seed. Add rules directly
// or parse them with Parse.
func NewPlan(seed int64) *Plan {
	return &Plan{Seed: seed, counters: map[string]*atomic.Int64{}}
}

// Parse builds a Plan from the -inject grammar: semicolon-separated
// clauses, each "site:kind[:opt...]" with options "p=<prob>",
// "n=<count>" and "d=<duration>", plus an optional leading
// "seed=<int>" clause.
//
//	seed=42;tile:panic:p=0.05;tile:error:n=2;tile:delay:n=1:d=50ms
//
// Kinds are error, panic and delay. A rule with neither p= nor n=
// defaults to p=1 (fire on every probe). delay rules need d=.
func Parse(s string) (*Plan, error) {
	p := NewPlan(1)
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %w", v, err)
			}
			p.Seed = seed
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("faults: clause %q: want site:kind[:opt...]", clause)
		}
		r := Rule{Site: parts[0]}
		switch parts[1] {
		case "error":
			r.Kind = KindError
		case "panic":
			r.Kind = KindPanic
		case "delay":
			r.Kind = KindDelay
		default:
			return nil, fmt.Errorf("faults: clause %q: unknown kind %q", clause, parts[1])
		}
		for _, opt := range parts[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faults: clause %q: bad option %q", clause, opt)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f <= 0 || f > 1 {
					return nil, fmt.Errorf("faults: clause %q: probability %q out of (0,1]", clause, v)
				}
				r.Prob = f
			case "n":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: clause %q: count %q", clause, v)
				}
				r.Count = n
			case "d":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: clause %q: duration %q", clause, v)
				}
				r.Delay = d
			default:
				return nil, fmt.Errorf("faults: clause %q: unknown option %q", clause, opt)
			}
		}
		if r.Kind == KindDelay && r.Delay <= 0 {
			return nil, fmt.Errorf("faults: clause %q: delay rule needs d=<duration>", clause)
		}
		if r.Count == 0 && r.Prob == 0 {
			r.Prob = 1
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faults: plan %q has no rules", s)
	}
	return p, nil
}

// String renders the plan back in the Parse grammar (rules in order).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, r := range p.Rules {
		fmt.Fprintf(&b, ";%s:%s", r.Site, r.Kind)
		if r.Count > 0 {
			fmt.Fprintf(&b, ":n=%d", r.Count)
		} else if r.Prob > 0 && r.Prob != 1 {
			fmt.Fprintf(&b, ":p=%g", r.Prob)
		}
		if r.Kind == KindDelay {
			fmt.Fprintf(&b, ":d=%s", r.Delay)
		}
	}
	return b.String()
}

// Sites returns the distinct probe sites the plan targets, sorted.
func (p *Plan) Sites() []string {
	if p == nil {
		return nil
	}
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Site] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// counter returns the site's probe counter, creating it on first use.
func (p *Plan) counter(site string) *atomic.Int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.counters == nil {
		p.counters = map[string]*atomic.Int64{}
	}
	c := p.counters[site]
	if c == nil {
		c = &atomic.Int64{}
		p.counters[site] = c
	}
	return c
}

// Probes returns how many times the site has been probed.
func (p *Plan) Probes(site string) int64 {
	if p == nil {
		return 0
	}
	return p.counter(site).Load()
}

// Probe evaluates the plan at a site. It may panic, sleep (honoring
// ctx), or return an error wrapping ErrInjected; a quiet probe returns
// nil. Probing a nil plan is a no-op.
func (p *Plan) Probe(ctx context.Context, site string) error {
	if p == nil || len(p.Rules) == 0 {
		return nil
	}
	// Sequence number of this probe at this site: 0, 1, 2, ...
	n := p.counter(site).Add(1) - 1
	for i := range p.Rules {
		r := &p.Rules[i]
		if !matchSite(r.Site, site) {
			continue
		}
		fire := false
		if r.Count > 0 {
			fire = n < r.Count
		} else {
			fire = uniform(p.Seed, site, n, int64(i)) < r.Prob
		}
		if !fire {
			continue
		}
		switch r.Kind {
		case KindPanic:
			panic(fmt.Sprintf("faults: injected panic at %s[%d]", site, n))
		case KindDelay:
			t := time.NewTimer(r.Delay)
			defer t.Stop()
			if ctx == nil {
				ctx = context.Background()
			}
			select {
			case <-t.C:
				// Delay elapsed: the probe stalls but does not fail.
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			return fmt.Errorf("%w at %s[%d]", ErrInjected, site, n)
		}
	}
	return nil
}

// matchSite reports whether a rule site selects a probed site: exact
// match, or family wildcard ("rpc.*" matches "rpc.lease" but not "rpc"
// itself — a bare family name is its own site).
func matchSite(rule, site string) bool {
	if prefix, ok := strings.CutSuffix(rule, "*"); ok {
		return strings.HasPrefix(site, prefix)
	}
	return rule == site
}

// uniform maps (seed, site, sequence, rule) to a deterministic value in
// [0, 1) via splitmix64 over an FNV-mixed key.
func uniform(seed int64, site string, n, rule int64) float64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	h ^= uint64(seed)
	h = splitmix64(h)
	h ^= uint64(n)*0x9e3779b97f4a7c15 + uint64(rule)
	h = splitmix64(h)
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-mixed 64-bit avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
