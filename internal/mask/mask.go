// Package mask implements mask data preparation: fracturing corrected
// layout into the rectangle primitives a vector-shaped-beam writer
// exposes, mask rule checks (MRC) on the fractured data, and the data
// volume / write time models behind the paper's "impact on design"
// accounting — OPC's cost shows up here first, as figure-count and
// file-size explosion.
package mask

import (
	"fmt"

	"goopc/internal/geom"
)

// Fracture decomposes polygons into disjoint rectangles (the Manhattan
// trapezoid decomposition a mask writer consumes), splitting anything
// larger than maxShot into writer-shot-sized pieces. maxShot <= 0
// disables shot splitting.
func Fracture(polys []geom.Polygon, maxShot geom.Coord) []geom.Rect {
	if len(polys) == 0 {
		return nil
	}
	base := geom.RegionFromPolygons(polys...).Rects()
	if maxShot <= 0 {
		return base
	}
	var out []geom.Rect
	for _, r := range base {
		for x := r.X0; x < r.X1; x += maxShot {
			x1 := x + maxShot
			if x1 > r.X1 {
				x1 = r.X1
			}
			for y := r.Y0; y < r.Y1; y += maxShot {
				y1 := y + maxShot
				if y1 > r.Y1 {
					y1 = r.Y1
				}
				out = append(out, geom.Rect{X0: x, Y0: y, X1: x1, Y1: y1})
			}
		}
	}
	return out
}

// WriterModel captures an e-beam mask writer for time estimation.
type WriterModel struct {
	// MaxShotNM is the largest square shot (1x dimensions).
	MaxShotNM geom.Coord
	// FlashHz is the shot rate.
	FlashHz float64
	// OverheadSec is fixed per-mask overhead (load, align, develop).
	OverheadSec float64
}

// DefaultWriter models a 2001-era VSB writer: 2 um max shot (1x),
// 1 MHz flash rate, 1800 s overhead.
func DefaultWriter() WriterModel {
	return WriterModel{MaxShotNM: 2000, FlashHz: 1e6, OverheadSec: 1800}
}

// DataStats is the mask-data cost of one layer.
type DataStats struct {
	// Figures is the polygon count before fracturing.
	Figures int
	// Vertices is the polygon vertex count before fracturing.
	Vertices int
	// Shots is the fractured rectangle count at the writer shot limit.
	Shots int
	// GDSBytes estimates the GDSII stream size of the polygons:
	// 4-byte header + layer/datatype records + 8 bytes per vertex plus
	// the closing point, per BOUNDARY element.
	GDSBytes int64
	// MEBESBytes estimates writer-format size: 16 bytes per fractured
	// rectangle.
	MEBESBytes int64
	// WriteTimeSec estimates the beam time: shots / flash rate plus
	// overhead.
	WriteTimeSec float64
}

// Analyze computes the data statistics of a corrected layer.
func Analyze(polys []geom.Polygon, w WriterModel) DataStats {
	var st DataStats
	st.Figures = len(polys)
	for _, p := range polys {
		st.Vertices += len(p)
		// BOUNDARY + LAYER + DATATYPE + ENDEL headers: 4+8+8+4 bytes,
		// XY record: 4 + 8*(n+1).
		st.GDSBytes += 24 + 4 + 8*int64(len(p)+1)
	}
	shots := Fracture(polys, w.MaxShotNM)
	st.Shots = len(shots)
	st.MEBESBytes = 16 * int64(len(shots))
	if w.FlashHz > 0 {
		st.WriteTimeSec = float64(len(shots))/w.FlashHz + w.OverheadSec
	}
	return st
}

// MRCRules are the geometric constraints a mask shop enforces on the
// final (post-OPC) data, at 1x dimensions.
type MRCRules struct {
	// MinWidth is the smallest feature the writer and process resolve.
	MinWidth geom.Coord
	// MinSpace is the smallest gap.
	MinSpace geom.Coord
	// MinArea rejects dust-sized figures.
	MinArea int64
}

// DefaultMRCRules returns 2001-typical 1x mask limits.
func DefaultMRCRules() MRCRules {
	return MRCRules{MinWidth: 50, MinSpace: 50, MinArea: 3600}
}

// MRCViolation is one mask rule failure.
type MRCViolation struct {
	Rule string
	At   geom.Rect
}

func (v MRCViolation) String() string { return fmt.Sprintf("%s at %v", v.Rule, v.At) }

// CheckMRC verifies the polygons against the rules. Violation locations
// are the bounding boxes of the offending slivers or gaps.
func CheckMRC(polys []geom.Polygon, rules MRCRules) []MRCViolation {
	if len(polys) == 0 {
		return nil
	}
	region := geom.RegionFromPolygons(polys...)
	var out []MRCViolation

	if rules.MinWidth > 1 {
		for _, r := range region.NarrowerThan(rules.MinWidth).Rects() {
			out = append(out, MRCViolation{Rule: fmt.Sprintf("width<%d", rules.MinWidth), At: r})
		}
	}
	if rules.MinSpace > 1 {
		for _, r := range region.GapsNarrowerThan(rules.MinSpace).Rects() {
			out = append(out, MRCViolation{Rule: fmt.Sprintf("space<%d", rules.MinSpace), At: r})
		}
	}
	if rules.MinArea > 0 {
		for _, p := range polys {
			if p.Area() < rules.MinArea {
				out = append(out, MRCViolation{Rule: fmt.Sprintf("area<%d", rules.MinArea), At: p.BBox()})
			}
		}
	}
	return out
}
