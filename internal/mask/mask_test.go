package mask

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goopc/internal/geom"
)

func TestFractureSimple(t *testing.T) {
	// An L-shape fractures into 2 rectangles.
	l := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(2000, 0), geom.Pt(2000, 1000),
		geom.Pt(1000, 1000), geom.Pt(1000, 2000), geom.Pt(0, 2000),
	}
	rects := Fracture([]geom.Polygon{l}, 0)
	if len(rects) != 2 {
		t.Errorf("L fractured into %d rects", len(rects))
	}
	var area int64
	for _, r := range rects {
		area += r.Area()
	}
	if area != l.Area() {
		t.Errorf("fracture area = %d, want %d", area, l.Area())
	}
}

func TestFractureShotSplitting(t *testing.T) {
	big := geom.R(0, 0, 5000, 3000).Polygon()
	rects := Fracture([]geom.Polygon{big}, 2000)
	// 3 x 2 shot grid.
	if len(rects) != 6 {
		t.Errorf("shot count = %d, want 6", len(rects))
	}
	var area int64
	for _, r := range rects {
		area += r.Area()
		if r.W() > 2000 || r.H() > 2000 {
			t.Errorf("shot %v exceeds max", r)
		}
	}
	if area != big.Area() {
		t.Errorf("area after shots = %d", area)
	}
	if got := Fracture(nil, 2000); got != nil {
		t.Error("empty input should fracture to nil")
	}
}

func TestQuickFractureAreaInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var polys []geom.Polygon
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			x := geom.Coord(rng.Intn(4000))
			y := geom.Coord(rng.Intn(4000))
			w := geom.Coord(50 + rng.Intn(3000))
			h := geom.Coord(50 + rng.Intn(3000))
			polys = append(polys, geom.R(x, y, x+w, y+h).Polygon())
		}
		want := geom.RegionFromPolygons(polys...).Area()
		var got int64
		for _, r := range Fracture(polys, 1000) {
			got += r.Area()
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyze(t *testing.T) {
	polys := []geom.Polygon{
		geom.R(0, 0, 1000, 1000).Polygon(),
		geom.R(3000, 0, 3500, 4100).Polygon(),
	}
	st := Analyze(polys, DefaultWriter())
	if st.Figures != 2 || st.Vertices != 8 {
		t.Errorf("figures=%d vertices=%d", st.Figures, st.Vertices)
	}
	// First rect: 1 shot; second: 1x3 shots (4100 tall / 2000).
	if st.Shots != 1+3 {
		t.Errorf("shots = %d", st.Shots)
	}
	if st.MEBESBytes != 16*4 {
		t.Errorf("mebes bytes = %d", st.MEBESBytes)
	}
	if st.GDSBytes <= 0 {
		t.Error("gds bytes missing")
	}
	if st.WriteTimeSec <= DefaultWriter().OverheadSec {
		t.Error("write time should exceed overhead")
	}
}

func TestAnalyzeScalesWithComplexity(t *testing.T) {
	// A jogged (OPC-like) polygon must cost more bytes than its plain
	// envelope.
	plain := []geom.Polygon{geom.R(0, 0, 2000, 200).Polygon()}
	var jog geom.Polygon
	for x := geom.Coord(0); x < 2000; x += 100 {
		y := geom.Coord(0)
		if (x/100)%2 == 0 {
			y = 10
		}
		jog = append(jog, geom.Pt(x, y), geom.Pt(x+100, y))
	}
	for x := geom.Coord(2000); x > 0; x -= 100 {
		y := geom.Coord(200)
		if (x/100)%2 == 0 {
			y = 190
		}
		jog = append(jog, geom.Pt(x, y), geom.Pt(x-100, y))
	}
	jogged := []geom.Polygon{jog.Normalize()}
	w := DefaultWriter()
	stPlain := Analyze(plain, w)
	stJog := Analyze(jogged, w)
	if stJog.GDSBytes <= stPlain.GDSBytes {
		t.Errorf("jogged bytes %d <= plain %d", stJog.GDSBytes, stPlain.GDSBytes)
	}
	if stJog.Shots <= stPlain.Shots {
		t.Errorf("jogged shots %d <= plain %d", stJog.Shots, stPlain.Shots)
	}
}

func TestCheckMRCWidth(t *testing.T) {
	rules := MRCRules{MinWidth: 50}
	// A 40-wide sliver on a large block.
	polys := []geom.Polygon{
		geom.R(0, 0, 1000, 1000).Polygon(),
		geom.R(1000, 480, 1040, 520).Polygon(),
	}
	v := CheckMRC(polys, rules)
	if len(v) == 0 {
		t.Error("40-wide sliver should violate width rule")
	}
	// Clean geometry passes.
	clean := []geom.Polygon{geom.R(0, 0, 1000, 1000).Polygon()}
	if v := CheckMRC(clean, rules); len(v) != 0 {
		t.Errorf("clean geometry flagged: %v", v)
	}
}

func TestCheckMRCSpace(t *testing.T) {
	rules := MRCRules{MinSpace: 50}
	polys := []geom.Polygon{
		geom.R(0, 0, 1000, 1000).Polygon(),
		geom.R(1030, 0, 2000, 1000).Polygon(), // 30 gap
	}
	v := CheckMRC(polys, rules)
	if len(v) == 0 {
		t.Error("30 gap should violate space rule")
	}
	polys[1] = geom.R(1100, 0, 2000, 1000).Polygon() // 100 gap
	if v := CheckMRC(polys, rules); len(v) != 0 {
		t.Errorf("legal gap flagged: %v", v)
	}
}

func TestCheckMRCArea(t *testing.T) {
	rules := MRCRules{MinArea: 3600}
	polys := []geom.Polygon{geom.R(0, 0, 50, 50).Polygon()} // 2500
	if v := CheckMRC(polys, rules); len(v) == 0 {
		t.Error("dust figure should violate area rule")
	}
	if v := CheckMRC(nil, rules); v != nil {
		t.Error("empty input should pass")
	}
}
