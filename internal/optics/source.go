package optics

import "math"

// srcPoint is one sampled illumination direction. SX and SY are in
// pupil-relative sigma coordinates; the spatial-frequency shift is
// sigma * NA / lambda.
type srcPoint struct {
	SX, SY float64
	Weight float64
}

// sampleSource discretizes the illuminator into weighted points on a
// SourceSteps x SourceSteps grid across the [-SigmaOuter, SigmaOuter]
// square, keeping points inside the shape. Weights are uniform and
// normalized to sum to 1.
func sampleSource(s Settings) []srcPoint {
	n := s.SourceSteps
	var pts []srcPoint
	if n == 1 {
		// Coherent limit: a single on-axis point.
		return []srcPoint{{0, 0, 1}}
	}
	step := 2 * s.SigmaOuter / float64(n-1)
	inside := func(x, y float64) bool {
		r := math.Hypot(x, y)
		switch s.Shape {
		case Conventional:
			return r <= s.SigmaOuter+1e-12
		case Annular:
			return r <= s.SigmaOuter+1e-12 && r >= s.SigmaInner-1e-12
		case Quadrupole:
			c := s.SigmaOuter / math.Sqrt2
			pole := s.SigmaInner
			if pole <= 0 {
				pole = s.SigmaOuter / 4
			}
			for _, p := range [4][2]float64{{c, c}, {-c, c}, {c, -c}, {-c, -c}} {
				if math.Hypot(x-p[0], y-p[1]) <= pole+1e-12 {
					return true
				}
			}
			return false
		}
		return false
	}
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			x := -s.SigmaOuter + float64(ix)*step
			y := -s.SigmaOuter + float64(iy)*step
			if inside(x, y) {
				pts = append(pts, srcPoint{x, y, 1})
			}
		}
	}
	if len(pts) == 0 {
		pts = []srcPoint{{0, 0, 1}}
	}
	w := 1 / float64(len(pts))
	for i := range pts {
		pts[i].Weight = w
	}
	return pts
}
