package optics

import (
	"testing"

	"goopc/internal/geom"
)

// Kernel-cache micro-benchmarks: a miss pays the Gram build and Jacobi
// eigensolve, a hit is a sync.Map lookup. OPC iteration loops and E-D
// sweeps run entirely on the hit path.

func benchCacheSim(b *testing.B) (*Simulator, Frame) {
	b.Helper()
	s := Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	frame := FrameFor(geom.R(-800, -400, 800, 400), s.PixelNM, s.GuardNM)
	return sim, frame
}

func BenchmarkKernelCacheMiss(b *testing.B) {
	sim, frame := benchCacheSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ResetKernelCache()
		if _, err := sim.kernels(frame, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelCacheHit(b *testing.B) {
	sim, frame := benchCacheSim(b)
	if _, err := sim.kernels(frame, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.kernels(frame, 0); err != nil {
			b.Fatal(err)
		}
	}
}
