package optics

import (
	"fmt"

	"goopc/internal/fft"
	"goopc/internal/geom"
)

// Frame describes the simulation pixel grid: OriginX/Y is the nm
// coordinate of the *center* of pixel (0,0); pixels are PixelNM square.
type Frame struct {
	W, H             int
	PixelNM          float64
	OriginX, OriginY float64
}

// FrameFor sizes a power-of-two frame covering the window plus the
// guard band, centered on the window.
func FrameFor(window geom.Rect, pixelNM, guardNM float64) Frame {
	w := float64(window.W()) + 2*guardNM
	h := float64(window.H()) + 2*guardNM
	nx := fft.NextPow2(int(w/pixelNM) + 1)
	ny := fft.NextPow2(int(h/pixelNM) + 1)
	cx := (float64(window.X0) + float64(window.X1)) / 2
	cy := (float64(window.Y0) + float64(window.Y1)) / 2
	return Frame{
		W: nx, H: ny, PixelNM: pixelNM,
		OriginX: cx - pixelNM*float64(nx-1)/2,
		OriginY: cy - pixelNM*float64(ny-1)/2,
	}
}

func (f Frame) String() string {
	return fmt.Sprintf("frame %dx%d px=%.1fnm origin=(%.1f,%.1f)", f.W, f.H, f.PixelNM, f.OriginX, f.OriginY)
}

// PixelCenter returns the nm coordinates of pixel (ix, iy).
func (f Frame) PixelCenter(ix, iy int) (x, y float64) {
	return f.OriginX + float64(ix)*f.PixelNM, f.OriginY + float64(iy)*f.PixelNM
}

// rasterize paints polygons into a freshly allocated transmission grid;
// see rasterizeInto.
func rasterize(polys []geom.Polygon, f Frame) *fft.Grid {
	grid := fft.NewGrid(f.W, f.H)
	rasterizeInto(grid, polys, f)
	return grid
}

// rasterizeInto paints polygons into the given zeroed transmission grid
// with exact area-coverage antialiasing: each pixel receives the
// fraction of its area covered. Overlapping input is resolved by a
// region union first, so transmission never exceeds 1.
func rasterizeInto(grid *fft.Grid, polys []geom.Polygon, f Frame) {
	if len(polys) == 0 {
		return
	}
	region := geom.RegionFromPolygons(polys...)
	invArea := 1 / (f.PixelNM * f.PixelNM)
	for _, r := range region.Rects() {
		x0, x1 := float64(r.X0), float64(r.X1)
		y0, y1 := float64(r.Y0), float64(r.Y1)
		// Pixel i covers [OriginX + (i-0.5)p, OriginX + (i+0.5)p).
		ix0 := int((x0 - f.OriginX + f.PixelNM/2) / f.PixelNM)
		ix1 := int((x1 - f.OriginX + f.PixelNM/2) / f.PixelNM)
		iy0 := int((y0 - f.OriginY + f.PixelNM/2) / f.PixelNM)
		iy1 := int((y1 - f.OriginY + f.PixelNM/2) / f.PixelNM)
		if ix1 < 0 || iy1 < 0 || ix0 >= f.W || iy0 >= f.H {
			continue
		}
		ix0, ix1 = clampI(ix0, 0, f.W-1), clampI(ix1, 0, f.W-1)
		iy0, iy1 = clampI(iy0, 0, f.H-1), clampI(iy1, 0, f.H-1)
		for iy := iy0; iy <= iy1; iy++ {
			py0 := f.OriginY + (float64(iy)-0.5)*f.PixelNM
			oy := overlap1(y0, y1, py0, py0+f.PixelNM)
			if oy <= 0 {
				continue
			}
			row := grid.Data[iy*f.W:]
			for ix := ix0; ix <= ix1; ix++ {
				px0 := f.OriginX + (float64(ix)-0.5)*f.PixelNM
				ox := overlap1(x0, x1, px0, px0+f.PixelNM)
				if ox <= 0 {
					continue
				}
				row[ix] += complex(ox*oy*invArea, 0)
			}
		}
	}
	for i, v := range grid.Data {
		if real(v) > 1 {
			grid.Data[i] = 1
		}
	}
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func overlap1(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// freqAt returns the spatial frequency (cycles/nm) of FFT bin k on an
// n-point axis with the given pixel.
func freqAt(k, n int, pixel float64) float64 {
	if k > n/2 {
		k -= n
	}
	return float64(k) / (float64(n) * pixel)
}
