package optics

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"sync/atomic"

	"goopc/internal/fft"
	"goopc/internal/geom"
)

// Simulator computes aerial images for a fixed exposure setup. It is
// safe for concurrent use and must not be copied (it embeds caches).
type Simulator struct {
	S   Settings
	src []srcPoint

	// plans caches FFT plans per frame geometry; plans32 their complex64
	// twins for the PrecisionF32 kernel path.
	plans   sync.Map // [2]int -> *fft.Plan2D
	plans32 sync.Map // [2]int -> *fft.Plan2D32
	// kcache caches SOCS kernel sets per (frame geometry, defocus) so
	// OPC iteration loops and E-D process-window sweeps rebuild nothing.
	kcache                   sync.Map // kernelKey -> *kernelEntry
	kernelHits, kernelMisses atomic.Int64
	// fieldEvals counts Abbe source-field evaluations (observability for
	// the early-abort path and the benchmarks).
	fieldEvals atomic.Int64
}

// New validates the settings and prepares the source sampling.
func New(s Settings) (*Simulator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{S: s, src: sampleSource(s)}, nil
}

// SourcePoints returns the number of sampled illumination points.
func (sim *Simulator) SourcePoints() int { return len(sim.src) }

// plan returns the cached FFT plan for a frame geometry. Serial
// simulators get single-worker plans so Parallel=false stays truly
// serial.
func (sim *Simulator) plan(w, h int) (*fft.Plan2D, error) {
	key := [2]int{w, h}
	if p, ok := sim.plans.Load(key); ok {
		mPlanReuse.Inc()
		return p.(*fft.Plan2D), nil
	}
	mPlanBuilds.Inc()
	p, err := fft.NewPlan2D(w, h)
	if err != nil {
		return nil, err
	}
	if !sim.S.Parallel {
		p.Workers = 1
	}
	actual, _ := sim.plans.LoadOrStore(key, p)
	return actual.(*fft.Plan2D), nil
}

// psmAmplitude returns the shifter field amplitude sqrt(T).
func (sim *Simulator) psmAmplitude() float64 {
	t := sim.S.PSMTransmission
	if t <= 0 {
		t = 0.06
	}
	return math.Sqrt(t)
}

// Aerial computes the aerial image of the mask polygons over the window
// at the settings' defocus.
func (sim *Simulator) Aerial(mask []geom.Polygon, window geom.Rect) (*Image, error) {
	return sim.AerialDefocus(mask, window, sim.S.DefocusNM)
}

// AerialDefocus computes the aerial image at an explicit defocus (nm),
// overriding the settings. Dose is applied downstream by scaling the
// resist threshold, so the image itself is dose-independent. The
// settings' Engine selects between the cached SOCS kernel path (default)
// and the Abbe source-point reference.
func (sim *Simulator) AerialDefocus(mask []geom.Polygon, window geom.Rect, defocusNM float64) (*Image, error) {
	return sim.AerialDefocusCtx(context.Background(), mask, window, defocusNM)
}

// AerialDefocusCtx is AerialDefocus bounded by a context: cancellation
// or deadline expiry aborts the integration between kernel (SOCS) or
// source-point (Abbe) evaluations and returns the context error. The
// per-check cost is one atomic load, so an un-cancelled context costs
// nothing measurable against an FFT.
func (sim *Simulator) AerialDefocusCtx(ctx context.Context, mask []geom.Polygon, window geom.Rect, defocusNM float64) (*Image, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if window.Empty() {
		return nil, fmt.Errorf("optics: empty simulation window")
	}
	frame := FrameFor(window, sim.S.PixelNM, sim.S.GuardNM)
	if frame.W*frame.H > 1<<22 {
		return nil, fmt.Errorf("optics: window %v needs %dx%d grid; enlarge pixel or shrink window",
			window, frame.W, frame.H)
	}
	mFramePixels.Observe(float64(frame.W * frame.H))
	var intensity []float64
	if sim.S.Engine == EngineAbbe {
		mImagesAbbe.Inc()
		spectrum, err := sim.maskSpectrum(mask, frame, nil)
		if err != nil {
			return nil, err
		}
		intensity, err = sim.abbeIntensity(ctx, spectrum, frame, defocusNM)
		fft.PutGrid(spectrum)
		if err != nil {
			return nil, err
		}
	} else {
		// Kernels first: the kernel set knows which spectrum columns are
		// in-band, so the forward transform can skip the rest.
		ks, err := sim.kernels(frame, defocusNM)
		if err != nil {
			return nil, err
		}
		spectrum, err := sim.maskSpectrum(mask, frame, ks.fineCols)
		if err != nil {
			return nil, err
		}
		if sim.S.Precision == PrecisionF32 {
			mImagesSOCS32.Inc()
			intensity, err = sim.socsIntensity32(ctx, spectrum, frame, ks)
		} else {
			mImagesSOCS.Inc()
			intensity, err = sim.socsIntensity(ctx, spectrum, frame, ks)
		}
		fft.PutGrid(spectrum)
		if err != nil {
			return nil, err
		}
	}
	return &Image{Frame: frame, Window: window, I: intensity}, nil
}

// maskSpectrum rasterizes the mask into a pooled grid, applies the tone
// amplitude mapping, and transforms it to the frequency domain. A
// non-nil cols restricts the column pass to the listed spectrum
// columns; the rest of the grid is then garbage and must not be read.
// The caller returns the grid with fft.PutGrid.
func (sim *Simulator) maskSpectrum(mask []geom.Polygon, frame Frame, cols []int) (*fft.Grid, error) {
	spectrum := fft.GetGrid(frame.W, frame.H)
	rasterizeInto(spectrum, mask, frame)
	switch sim.S.MaskTone {
	case BrightField:
		// Drawn polygons are chrome: amplitude is the complement.
		for i, v := range spectrum.Data {
			spectrum.Data[i] = complex(1-real(v), 0)
		}
	case DarkField:
		// Drawn polygons are openings: amplitude is the coverage itself.
	case AttPSMBrightField:
		// Drawn polygons are pi-shifted attenuated shifter: amplitude
		// 1 on the background, -sqrt(T) under full coverage.
		t := sim.psmAmplitude()
		for i, v := range spectrum.Data {
			c := real(v)
			spectrum.Data[i] = complex(1-c*(1+t), 0)
		}
	case AttPSMDarkField:
		// Openings in shifter: background -sqrt(T), opening 1.
		t := sim.psmAmplitude()
		for i, v := range spectrum.Data {
			c := real(v)
			spectrum.Data[i] = complex(c*(1+t)-t, 0)
		}
	}
	plan, err := sim.plan(frame.W, frame.H)
	if err != nil {
		fft.PutGrid(spectrum)
		return nil, err
	}
	if cols != nil {
		err = plan.Forward2DPCols(spectrum, cols)
	} else {
		err = plan.Forward2DP(spectrum)
	}
	if err != nil {
		fft.PutGrid(spectrum)
		return nil, err
	}
	return spectrum, nil
}

// abbeIntensity runs the reference source-point integration: one
// pupil-filtered inverse FFT per sampled source point, weighted
// intensities summed. Workers abort early once any source point fails
// or the context is cancelled.
func (sim *Simulator) abbeIntensity(ctx context.Context, spectrum *fft.Grid, frame Frame, defocusNM float64) ([]float64, error) {
	n := frame.W * frame.H
	intensity := make([]float64, n)
	naOverLambda := sim.S.NA / sim.S.LambdaNM

	// Precompute per-axis frequencies.
	fxs := make([]float64, frame.W)
	for k := range fxs {
		fxs[k] = freqAt(k, frame.W, frame.PixelNM)
	}
	fys := make([]float64, frame.H)
	for k := range fys {
		fys[k] = freqAt(k, frame.H, frame.PixelNM)
	}

	workers := 1
	if sim.S.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(sim.src) {
			workers = len(sim.src)
		}
		if workers < 1 {
			workers = 1
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var cancel atomic.Bool
	jobs := make(chan srcPoint)
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			field := fft.GetGrid(frame.W, frame.H)
			defer fft.PutGrid(field)
			local := getFloats(n)
			for sp := range jobs {
				if cancel.Load() {
					continue
				}
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel.Store(true)
					continue
				}
				if err := sim.sourceField(spectrum, field, frame, sp, defocusNM, naOverLambda, fxs, fys); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel.Store(true)
					continue
				}
				for i, v := range field.Data {
					re, im := real(v), imag(v)
					local[i] += sp.Weight * (re*re + im*im)
				}
			}
			mu.Lock()
			for i, v := range local {
				intensity[i] += v
			}
			mu.Unlock()
			putFloats(local)
		}()
	}
	for _, sp := range sim.src {
		if cancel.Load() {
			break
		}
		jobs <- sp
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return intensity, nil
}

// sourceField fills field with the coherent image field for one source
// point: IFFT of the mask spectrum filtered by the shifted, defocused
// pupil. Out-of-band bins are zeroed.
func (sim *Simulator) sourceField(spectrum, field *fft.Grid, frame Frame, sp srcPoint,
	defocusNM, naOverLambda float64, fxs, fys []float64) error {
	sim.fieldEvals.Add(1)
	mFieldEvals.Inc()
	sx := sp.SX * naOverLambda
	sy := sp.SY * naOverLambda
	cutoff := naOverLambda
	cutoff2 := cutoff * cutoff
	lambda := sim.S.LambdaNM
	for i := range field.Data {
		field.Data[i] = 0
	}
	for ky := 0; ky < frame.H; ky++ {
		fy := fys[ky] + sy
		fy2 := fy * fy
		if fy2 > cutoff2 {
			continue
		}
		rowS := spectrum.Data[ky*frame.W:]
		rowF := field.Data[ky*frame.W:]
		for kx := 0; kx < frame.W; kx++ {
			fx := fxs[kx] + sx
			f2 := fx*fx + fy2
			if f2 > cutoff2 {
				continue
			}
			p := complex(1, 0)
			if defocusNM != 0 {
				// Defocus phase: 2*pi/lambda * z * (sqrt(1-(lambda f)^2) - 1).
				lf2 := lambda * lambda * f2
				phase := 2 * math.Pi / lambda * defocusNM * (math.Sqrt(1-lf2) - 1)
				p = cmplx.Exp(complex(0, phase))
			}
			rowF[kx] = rowS[kx] * p
		}
	}
	return field.Inverse2D()
}
