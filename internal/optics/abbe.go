package optics

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"goopc/internal/fft"
	"goopc/internal/geom"
)

// Simulator computes aerial images for a fixed exposure setup. It is
// safe for concurrent use.
type Simulator struct {
	S   Settings
	src []srcPoint
}

// New validates the settings and prepares the source sampling.
func New(s Settings) (*Simulator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{S: s, src: sampleSource(s)}, nil
}

// SourcePoints returns the number of sampled illumination points.
func (sim *Simulator) SourcePoints() int { return len(sim.src) }

// psmAmplitude returns the shifter field amplitude sqrt(T).
func (sim *Simulator) psmAmplitude() float64 {
	t := sim.S.PSMTransmission
	if t <= 0 {
		t = 0.06
	}
	return math.Sqrt(t)
}

// Aerial computes the aerial image of the mask polygons over the window
// at the settings' defocus.
func (sim *Simulator) Aerial(mask []geom.Polygon, window geom.Rect) (*Image, error) {
	return sim.AerialDefocus(mask, window, sim.S.DefocusNM)
}

// AerialDefocus computes the aerial image at an explicit defocus (nm),
// overriding the settings. Dose is applied downstream by scaling the
// resist threshold, so the image itself is dose-independent.
func (sim *Simulator) AerialDefocus(mask []geom.Polygon, window geom.Rect, defocusNM float64) (*Image, error) {
	if window.Empty() {
		return nil, fmt.Errorf("optics: empty simulation window")
	}
	frame := FrameFor(window, sim.S.PixelNM, sim.S.GuardNM)
	if frame.W*frame.H > 1<<22 {
		return nil, fmt.Errorf("optics: window %v needs %dx%d grid; enlarge pixel or shrink window",
			window, frame.W, frame.H)
	}
	spectrum := rasterize(mask, frame)
	switch sim.S.MaskTone {
	case BrightField:
		// Drawn polygons are chrome: amplitude is the complement.
		for i, v := range spectrum.Data {
			spectrum.Data[i] = complex(1-real(v), 0)
		}
	case DarkField:
		// Drawn polygons are openings: amplitude is the coverage itself.
	case AttPSMBrightField:
		// Drawn polygons are pi-shifted attenuated shifter: amplitude
		// 1 on the background, -sqrt(T) under full coverage.
		t := sim.psmAmplitude()
		for i, v := range spectrum.Data {
			c := real(v)
			spectrum.Data[i] = complex(1-c*(1+t), 0)
		}
	case AttPSMDarkField:
		// Openings in shifter: background -sqrt(T), opening 1.
		t := sim.psmAmplitude()
		for i, v := range spectrum.Data {
			c := real(v)
			spectrum.Data[i] = complex(c*(1+t)-t, 0)
		}
	}
	if err := spectrum.Forward2D(); err != nil {
		return nil, err
	}

	intensity := make([]float64, frame.W*frame.H)
	naOverLambda := sim.S.NA / sim.S.LambdaNM

	// Precompute per-axis frequencies.
	fxs := make([]float64, frame.W)
	for k := range fxs {
		fxs[k] = freqAt(k, frame.W, frame.PixelNM)
	}
	fys := make([]float64, frame.H)
	for k := range fys {
		fys[k] = freqAt(k, frame.H, frame.PixelNM)
	}

	workers := 1
	if sim.S.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(sim.src) {
			workers = len(sim.src)
		}
		if workers < 1 {
			workers = 1
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan srcPoint)
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			field := fft.NewGrid(frame.W, frame.H)
			local := make([]float64, frame.W*frame.H)
			for sp := range jobs {
				if err := sim.sourceField(spectrum, field, frame, sp, defocusNM, naOverLambda, fxs, fys); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				for i, v := range field.Data {
					re, im := real(v), imag(v)
					local[i] += sp.Weight * (re*re + im*im)
				}
			}
			mu.Lock()
			for i, v := range local {
				intensity[i] += v
			}
			mu.Unlock()
		}()
	}
	for _, sp := range sim.src {
		jobs <- sp
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &Image{Frame: frame, Window: window, I: intensity}, nil
}

// sourceField fills field with the coherent image field for one source
// point: IFFT of the mask spectrum filtered by the shifted, defocused
// pupil. Out-of-band bins are zeroed.
func (sim *Simulator) sourceField(spectrum, field *fft.Grid, frame Frame, sp srcPoint,
	defocusNM, naOverLambda float64, fxs, fys []float64) error {
	sx := sp.SX * naOverLambda
	sy := sp.SY * naOverLambda
	cutoff := naOverLambda
	cutoff2 := cutoff * cutoff
	lambda := sim.S.LambdaNM
	for i := range field.Data {
		field.Data[i] = 0
	}
	for ky := 0; ky < frame.H; ky++ {
		fy := fys[ky] + sy
		fy2 := fy * fy
		if fy2 > cutoff2 {
			continue
		}
		rowS := spectrum.Data[ky*frame.W:]
		rowF := field.Data[ky*frame.W:]
		for kx := 0; kx < frame.W; kx++ {
			fx := fxs[kx] + sx
			f2 := fx*fx + fy2
			if f2 > cutoff2 {
				continue
			}
			p := complex(1, 0)
			if defocusNM != 0 {
				// Defocus phase: 2*pi/lambda * z * (sqrt(1-(lambda f)^2) - 1).
				lf2 := lambda * lambda * f2
				phase := 2 * math.Pi / lambda * defocusNM * (math.Sqrt(1-lf2) - 1)
				p = cmplx.Exp(complex(0, phase))
			}
			rowF[kx] = rowS[kx] * p
		}
	}
	return field.Inverse2D()
}
