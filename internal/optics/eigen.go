package optics

import "math"

// jacobiHermitian diagonalizes the n x n complex Hermitian matrix h
// (row-major, destroyed in place) with cyclic Jacobi rotations and
// returns the eigenvalues in descending order together with the matching
// unit eigenvectors (vecs[k] is the eigenvector of eigs[k]). The
// matrices here are source-Gram matrices, so n is the source-point
// count — small enough that Jacobi's robustness beats anything fancier.
func jacobiHermitian(h [][]complex128) (eigs []float64, vecs [][]complex128) {
	n := len(h)
	// v accumulates the product of rotations, column k = eigenvector k.
	v := make([][]complex128, n)
	for i := range v {
		v[i] = make([]complex128, n)
		v[i][i] = 1
	}
	// Scale for the off-diagonal convergence threshold.
	var scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scale += real(h[i][j])*real(h[i][j]) + imag(h[i][j])*imag(h[i][j])
		}
	}
	scale = math.Sqrt(scale)
	if scale == 0 {
		scale = 1
	}
	tol := 1e-15 * scale
	for sweep := 0; sweep < 64; sweep++ {
		var off float64
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += real(h[p][q])*real(h[p][q]) + imag(h[p][q])*imag(h[p][q])
			}
		}
		if math.Sqrt(off) <= tol {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				r := math.Hypot(real(h[p][q]), imag(h[p][q]))
				if r <= tol/float64(n) {
					continue
				}
				// Factor out the phase of h[p][q], then a real Jacobi
				// rotation zeroes the pair.
				ephi := h[p][q] / complex(r, 0) // e^{i phi}
				a := real(h[p][p])
				b := real(h[q][q])
				var t float64
				if a == b {
					t = 1
				} else {
					tau := (b - a) / (2 * r)
					t = 1 / (math.Abs(tau) + math.Sqrt(1+tau*tau))
					if tau < 0 {
						t = -t
					}
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// The unitary J = [[c, s], [-s e^{-i phi}, c e^{-i phi}]]
				// zeroes h[p][q] in J^H h J. Apply h <- h J (columns),
				// v <- v J, then h <- J^H h (rows).
				cs := complex(c, 0)
				ss := complex(s, 0)
				ephiConj := complex(real(ephi), -imag(ephi))
				seConj := ss * ephiConj // s e^{-i phi}
				ceConj := cs * ephiConj // c e^{-i phi}
				for i := 0; i < n; i++ {
					hip, hiq := h[i][p], h[i][q]
					h[i][p] = cs*hip - seConj*hiq
					h[i][q] = ss*hip + ceConj*hiq
					vip, viq := v[i][p], v[i][q]
					v[i][p] = cs*vip - seConj*viq
					v[i][q] = ss*vip + ceConj*viq
				}
				se := ss * ephi // s e^{i phi}
				ce := cs * ephi // c e^{i phi}
				for i := 0; i < n; i++ {
					hpi, hqi := h[p][i], h[q][i]
					h[p][i] = cs*hpi - se*hqi
					h[q][i] = ss*hpi + ce*hqi
				}
			}
		}
	}
	eigs = make([]float64, n)
	order := make([]int, n)
	for i := range eigs {
		eigs[i] = real(h[i][i])
		order[i] = i
	}
	// Selection sort by descending eigenvalue (n is tiny).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if eigs[order[j]] > eigs[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sorted := make([]float64, n)
	vecs = make([][]complex128, n)
	for k, idx := range order {
		sorted[k] = eigs[idx]
		vec := make([]complex128, n)
		for i := 0; i < n; i++ {
			vec[i] = v[i][idx]
		}
		vecs[k] = vec
	}
	return sorted, vecs
}
