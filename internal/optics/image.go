package optics

import (
	"math"

	"goopc/internal/geom"
)

// Image is a computed aerial image: intensity samples on the simulation
// frame, normalized so an unpatterned clear field is 1.0. Window is the
// region of interest the caller asked for; the frame extends beyond it
// by the guard band.
type Image struct {
	Frame  Frame
	Window geom.Rect
	I      []float64
}

// At samples the intensity at nm coordinates by bilinear interpolation.
// Points outside the frame return 0.
func (im *Image) At(x, y float64) float64 {
	f := im.Frame
	gx := (x - f.OriginX) / f.PixelNM
	gy := (y - f.OriginY) / f.PixelNM
	ix := int(math.Floor(gx))
	iy := int(math.Floor(gy))
	if ix < 0 || iy < 0 || ix+1 >= f.W || iy+1 >= f.H {
		return 0
	}
	tx := gx - float64(ix)
	ty := gy - float64(iy)
	i00 := im.I[iy*f.W+ix]
	i10 := im.I[iy*f.W+ix+1]
	i01 := im.I[(iy+1)*f.W+ix]
	i11 := im.I[(iy+1)*f.W+ix+1]
	return i00*(1-tx)*(1-ty) + i10*tx*(1-ty) + i01*(1-tx)*ty + i11*tx*ty
}

// AtPoint samples at a DBU point.
func (im *Image) AtPoint(p geom.Point) float64 {
	return im.At(float64(p.X), float64(p.Y))
}

// Gradient returns the intensity gradient (per nm) at nm coordinates by
// central differences over one pixel.
func (im *Image) Gradient(x, y float64) (gx, gy float64) {
	d := im.Frame.PixelNM
	gx = (im.At(x+d, y) - im.At(x-d, y)) / (2 * d)
	gy = (im.At(x, y+d) - im.At(x, y-d)) / (2 * d)
	return
}

// MaxIn returns the maximum sampled intensity over the window.
func (im *Image) MaxIn(window geom.Rect) float64 {
	best := 0.0
	im.eachIn(window, func(v float64) {
		if v > best {
			best = v
		}
	})
	return best
}

// MinIn returns the minimum sampled intensity over the window.
func (im *Image) MinIn(window geom.Rect) float64 {
	best := math.Inf(1)
	im.eachIn(window, func(v float64) {
		if v < best {
			best = v
		}
	})
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

func (im *Image) eachIn(window geom.Rect, fn func(v float64)) {
	f := im.Frame
	ix0 := clampI(int((float64(window.X0)-f.OriginX)/f.PixelNM), 0, f.W-1)
	ix1 := clampI(int((float64(window.X1)-f.OriginX)/f.PixelNM+1), 0, f.W-1)
	iy0 := clampI(int((float64(window.Y0)-f.OriginY)/f.PixelNM), 0, f.H-1)
	iy1 := clampI(int((float64(window.Y1)-f.OriginY)/f.PixelNM+1), 0, f.H-1)
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			fn(im.I[iy*f.W+ix])
		}
	}
}

// CrossSection samples n+1 intensity values along the segment from
// (x0,y0) to (x1,y1) in nm coordinates.
func (im *Image) CrossSection(x0, y0, x1, y1 float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		out[i] = im.At(x0+(x1-x0)*t, y0+(y1-y0)*t)
	}
	return out
}

// FindCrossing scans along the ray from (x0,y0) in direction (dx,dy)
// (unit-normalized internally) up to maxDist nm for the first crossing
// of the threshold, and refines it by bisection to subStep precision.
// It returns the distance from the start and true when found. The
// crossing direction is detected from the starting side: starting above
// the threshold finds a falling crossing, and vice versa.
func (im *Image) FindCrossing(x0, y0, dx, dy, threshold, maxDist float64) (float64, bool) {
	norm := math.Hypot(dx, dy)
	if norm == 0 || maxDist <= 0 {
		return 0, false
	}
	dx, dy = dx/norm, dy/norm
	step := im.Frame.PixelNM / 2
	v0 := im.At(x0, y0)
	above := v0 >= threshold
	prev := 0.0
	for d := step; d <= maxDist; d += step {
		v := im.At(x0+dx*d, y0+dy*d)
		if (v >= threshold) != above {
			// Bisect between prev and d.
			lo, hi := prev, d
			for i := 0; i < 30; i++ {
				mid := (lo + hi) / 2
				vm := im.At(x0+dx*mid, y0+dy*mid)
				if (vm >= threshold) == above {
					lo = mid
				} else {
					hi = mid
				}
			}
			return (lo + hi) / 2, true
		}
		prev = d
	}
	return 0, false
}

// NILS returns the normalized image log slope |dI/dx| * CD / I at the
// given nm point along the given direction, the standard process-window
// quality metric.
func (im *Image) NILS(x, y, dx, dy float64, cdNM float64) float64 {
	gx, gy := im.Gradient(x, y)
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return 0
	}
	slope := math.Abs(gx*dx/norm + gy*dy/norm)
	v := im.At(x, y)
	if v <= 0 {
		return 0
	}
	return slope * cdNM / v
}
