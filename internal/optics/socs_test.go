package optics

import (
	"context"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"goopc/internal/geom"
)

// parityMask is a mask with 1-D and 2-D structure: a line grating plus a
// square, so both axes and corners exercise the kernels.
func parityMask() []geom.Polygon {
	var mask []geom.Polygon
	for i := -3; i <= 3; i++ {
		x := geom.Coord(i) * 430
		mask = append(mask, geom.R(x-90, -2000, x+90, 2000).Polygon())
	}
	mask = append(mask, geom.R(-600, 2300, -100, 2800).Polygon())
	return mask
}

// TestSOCSMatchesAbbe is the golden parity matrix: every mask tone,
// conventional and annular sources, zero and nonzero defocus. The SOCS
// image must track the Abbe reference to < 1e-3 in clear-field units.
func TestSOCSMatchesAbbe(t *testing.T) {
	tones := []Tone{BrightField, DarkField, AttPSMBrightField, AttPSMDarkField}
	shapes := []struct {
		name string
		set  func() Settings
	}{
		{"conventional", fastSettings},
		{"annular", func() Settings {
			s := fastSettings()
			s.Shape = Annular
			s.SigmaOuter = 0.75
			s.SigmaInner = 0.45
			return s
		}},
	}
	mask := parityMask()
	window := geom.R(-700, -400, 700, 400)
	for _, sh := range shapes {
		for _, tone := range tones {
			for _, defocus := range []float64{0, 400} {
				s := sh.set()
				s.MaskTone = tone
				s.Engine = EngineAbbe
				abbe, err := New(s)
				if err != nil {
					t.Fatal(err)
				}
				s.Engine = EngineSOCS
				socs, err := New(s)
				if err != nil {
					t.Fatal(err)
				}
				imA, err := abbe.AerialDefocus(mask, window, defocus)
				if err != nil {
					t.Fatal(err)
				}
				imS, err := socs.AerialDefocus(mask, window, defocus)
				if err != nil {
					t.Fatal(err)
				}
				worst := 0.0
				for i := range imA.I {
					if d := math.Abs(imA.I[i] - imS.I[i]); d > worst {
						worst = d
					}
				}
				kept, mass, err := socs.KernelInfo(window, defocus)
				if err != nil {
					t.Fatal(err)
				}
				if worst >= 1e-3 {
					t.Errorf("%s/%s z=%.0f: max |dI| = %.2e (kernels=%d mass=%.5f), want < 1e-3",
						sh.name, tone, defocus, worst, kept, mass)
				}
				if kept >= abbe.SourcePoints() && defocus == 0 {
					t.Logf("%s/%s z=%.0f keeps all %d kernels; no compression", sh.name, tone, defocus, kept)
				}
			}
		}
	}
}

// TestKernelMassProperty: the retained eigenvalue mass must reach at
// least 99.5% of the TCC trace, eigenvalues must be sorted descending
// and essentially nonnegative.
func TestKernelMassProperty(t *testing.T) {
	for _, setup := range []func() Settings{fastSettings, func() Settings {
		s := fastSettings()
		s.Shape = Annular
		s.SigmaOuter = 0.75
		s.SigmaInner = 0.45
		return s
	}} {
		for _, defocus := range []float64{0, 400} {
			s := setup()
			sim, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			frame := FrameFor(geom.R(-400, -400, 400, 400), s.PixelNM, s.GuardNM)
			ks, err := sim.kernels(frame, defocus)
			if err != nil {
				t.Fatal(err)
			}
			if ks.trace <= 0 {
				t.Fatalf("TCC trace %v", ks.trace)
			}
			if ks.mass < 0.995 {
				t.Errorf("retained mass %.5f < 0.995 (kept %d of %d)", ks.mass, ks.kept, len(ks.eigs))
			}
			for i := 1; i < len(ks.eigs); i++ {
				if ks.eigs[i] > ks.eigs[i-1]+1e-9 {
					t.Fatalf("eigenvalues not sorted at %d: %v > %v", i, ks.eigs[i], ks.eigs[i-1])
				}
			}
			for i, e := range ks.eigs {
				if e < -1e-6*ks.trace {
					t.Errorf("negative eigenvalue %d: %v", i, e)
				}
			}
			if ks.kept < 1 || ks.kept > sim.SourcePoints() {
				t.Errorf("kept %d outside [1, %d]", ks.kept, sim.SourcePoints())
			}
		}
	}
}

// TestSOCSCompresses: the engine's work must shrink against the Abbe
// reference. The dominant saving is the coarse evaluation grid — the
// fields are band-limited far below the frame's Nyquist, so each
// kernel inverse runs on a grid whose area shrinks with the pixel
// oversampling (4x at the default 16nm pixel, 16x at 8nm). The
// kernel-truncation knob is the secondary axis: at a relaxed mass
// target the kernel count drops well below the source-point count.
func TestSOCSCompresses(t *testing.T) {
	s := Default() // SourceSteps 7, 16nm pixel
	sim, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	window := geom.R(-400, -400, 400, 400)
	cw, ch, fw, fh, err := sim.CoarseGrid(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cw*ch*4 > fw*fh {
		t.Errorf("coarse grid %dx%d vs frame %dx%d: expected >= 4x area reduction", cw, ch, fw, fh)
	}
	fine := s
	fine.PixelNM = 8
	fsim, err := New(fine)
	if err != nil {
		t.Fatal(err)
	}
	if cw, ch, fw, fh, err = fsim.CoarseGrid(window, 0); err != nil {
		t.Fatal(err)
	}
	if cw*ch*16 > fw*fh {
		t.Errorf("8nm pixel: coarse grid %dx%d vs frame %dx%d: expected >= 16x area reduction", cw, ch, fw, fh)
	}
	kept, mass, err := sim.KernelInfo(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("frame %dx%d -> coarse %dx%d; %d kernels (mass %.5f) for %d source points",
		fw, fh, cw, ch, kept, mass, sim.SourcePoints())

	// A discrete source's eigenvalue tail decays slowly, so the default
	// (parity-grade) mass keeps most kernels; a relaxed target must
	// compress the kernel count itself.
	relaxed := s
	relaxed.SOCSMass = 0.90
	rsim, err := New(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	rkept, rmass, err := rsim.KernelInfo(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rkept*2 >= rsim.SourcePoints() {
		t.Errorf("relaxed mass 0.90 kept %d of %d kernels (mass %.5f): truncation knob not compressing",
			rkept, rsim.SourcePoints(), rmass)
	}
}

func TestJacobiHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		// Random Hermitian H.
		h := make([][]complex128, n)
		orig := make([][]complex128, n)
		for i := range h {
			h[i] = make([]complex128, n)
			orig[i] = make([]complex128, n)
		}
		for i := 0; i < n; i++ {
			h[i][i] = complex(rng.NormFloat64(), 0)
			for j := i + 1; j < n; j++ {
				v := complex(rng.NormFloat64(), rng.NormFloat64())
				h[i][j] = v
				h[j][i] = cmplx.Conj(v)
			}
		}
		for i := range h {
			copy(orig[i], h[i])
		}
		eigs, vecs := jacobiHermitian(h)
		// Reconstruct: sum_k eig_k v_k v_k^H == orig.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum complex128
				for k := 0; k < n; k++ {
					sum += complex(eigs[k], 0) * vecs[k][i] * cmplx.Conj(vecs[k][j])
				}
				if cmplx.Abs(sum-orig[i][j]) > 1e-9 {
					t.Fatalf("trial %d: reconstruction (%d,%d) off by %g", trial, i, j, cmplx.Abs(sum-orig[i][j]))
				}
			}
		}
		// Orthonormality.
		for k := 0; k < n; k++ {
			for l := k; l < n; l++ {
				var dot complex128
				for i := 0; i < n; i++ {
					dot += vecs[k][i] * cmplx.Conj(vecs[l][i])
				}
				want := complex(0, 0)
				if k == l {
					want = 1
				}
				if cmplx.Abs(dot-want) > 1e-9 {
					t.Fatalf("trial %d: <v%d,v%d> = %v", trial, k, l, dot)
				}
			}
		}
	}
}

// TestKernelCacheReuse: an E-D style sweep must build kernels once per
// focus, never per dose or per repeated simulation.
func TestKernelCacheReuse(t *testing.T) {
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	mask := []geom.Polygon{geom.R(-90, -1000, 90, 1000).Polygon()}
	window := geom.R(-300, -300, 300, 300)
	focuses := []float64{-300, 0, 300}
	for pass := 0; pass < 4; pass++ { // doses are free: same images re-run
		for _, z := range focuses {
			if _, err := sim.AerialDefocus(mask, window, z); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses := sim.KernelCacheStats()
	if misses != int64(len(focuses)) {
		t.Errorf("misses = %d, want %d (one per focus)", misses, len(focuses))
	}
	if hits != int64(3*len(focuses)) {
		t.Errorf("hits = %d, want %d", hits, 3*len(focuses))
	}
	// A different window with the same frame geometry still hits.
	if _, err := sim.AerialDefocus(mask, geom.R(-280, -280, 280, 280), 0); err != nil {
		t.Fatal(err)
	}
	if _, misses2 := sim.KernelCacheStats(); misses2 != misses {
		t.Errorf("same-geometry window caused a rebuild: misses %d -> %d", misses, misses2)
	}
	sim.ResetKernelCache()
	if h, m := sim.KernelCacheStats(); h != 0 || m != 0 {
		t.Errorf("stats after reset: %d/%d", h, m)
	}
	if _, err := sim.Aerial(mask, window); err != nil {
		t.Fatal(err)
	}
	if _, m := sim.KernelCacheStats(); m != 1 {
		t.Errorf("post-reset miss count = %d, want 1", m)
	}
}

// TestSOCSParallelMatchesSerial: kernel fan-out merges per-kernel
// buffers in kernel order, so parallel must be bit-compatible with
// serial.
func TestSOCSParallelMatchesSerial(t *testing.T) {
	s := fastSettings()
	s.Parallel = true
	simP, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = false
	simS, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	mask := parityMask()
	window := geom.R(-400, -300, 400, 300)
	imP, err := simP.AerialDefocus(mask, window, 250)
	if err != nil {
		t.Fatal(err)
	}
	imS, err := simS.AerialDefocus(mask, window, 250)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imP.I {
		if math.Abs(imP.I[i]-imS.I[i]) > 1e-12 {
			t.Fatalf("parallel/serial mismatch at %d: %g vs %g", i, imP.I[i], imS.I[i])
		}
	}
}

// TestAbbeEarlyAbort: after the first source-point failure the job loop
// must stop issuing work instead of draining every remaining point.
func TestAbbeEarlyAbort(t *testing.T) {
	s := fastSettings()
	s.Engine = EngineAbbe
	s.Parallel = false
	sim, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if sim.SourcePoints() < 5 {
		t.Fatalf("want several source points, got %d", sim.SourcePoints())
	}
	// A non-power-of-two frame makes every per-point inverse FFT fail.
	frame := Frame{W: 24, H: 24, PixelNM: s.PixelNM, OriginX: 0, OriginY: 0}
	spectrum := rasterize(nil, frame)
	if _, err := sim.abbeIntensity(context.Background(), spectrum, frame, 0); err == nil {
		t.Fatal("expected error from non-pow2 frame")
	}
	if n := sim.fieldEvals.Load(); n != 1 {
		t.Errorf("evaluated %d source fields after first failure, want 1", n)
	}
}

// TestEngineSettings covers validation and the tone-independence of the
// kernel cache key.
func TestEngineSettings(t *testing.T) {
	s := Default()
	if s.Engine != EngineSOCS {
		t.Errorf("default engine = %v, want socs", s.Engine)
	}
	if EngineSOCS.String() != "socs" || EngineAbbe.String() != "abbe" {
		t.Errorf("engine names: %q %q", EngineSOCS.String(), EngineAbbe.String())
	}
	bad := Default()
	bad.Engine = Engine(9)
	if err := bad.Validate(); err == nil {
		t.Error("bogus engine should fail validation")
	}
	bad = Default()
	bad.SOCSMass = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("SOCS mass >= 1 should fail validation")
	}
	bad = Default()
	bad.SOCSMaxKernels = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative kernel cap should fail validation")
	}
	// A kernel cap trades accuracy for speed but must stay functional.
	capped := fastSettings()
	capped.SOCSMaxKernels = 2
	sim, err := New(capped)
	if err != nil {
		t.Fatal(err)
	}
	kept, _, err := sim.KernelInfo(geom.R(-300, -300, 300, 300), 0)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Errorf("capped kernel count = %d, want 2", kept)
	}
}

// TestCoarseGridExact: the coarse-grid evaluation plus Fourier
// interpolation is exact for band-limited fields, not an approximation.
// At full kernel rank SOCS must reproduce the Abbe image to rounding
// error even though every kernel inverse ran on a 16x smaller grid.
func TestCoarseGridExact(t *testing.T) {
	s := fastSettings()
	s.SOCSMass = 0.999999 // unreachable short of full rank
	s.Engine = EngineAbbe
	abbe, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Engine = EngineSOCS
	socs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	mask := parityMask()
	window := geom.R(-700, -400, 700, 400)
	for _, z := range []float64{0, 400} {
		imA, err := abbe.AerialDefocus(mask, window, z)
		if err != nil {
			t.Fatal(err)
		}
		imS, err := socs.AerialDefocus(mask, window, z)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range imA.I {
			if d := math.Abs(imA.I[i] - imS.I[i]); d > worst {
				worst = d
			}
		}
		cw, ch, fw, fh, err := socs.CoarseGrid(window, z)
		if err != nil {
			t.Fatal(err)
		}
		if cw >= fw || ch >= fh {
			t.Fatalf("coarse grid %dx%d did not shrink below frame %dx%d", cw, ch, fw, fh)
		}
		if worst > 1e-9 {
			t.Errorf("z=%.0f: full-rank coarse-grid image off by %.2e (coarse %dx%d, frame %dx%d)",
				z, worst, cw, ch, fw, fh)
		}
	}
}
