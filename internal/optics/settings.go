// Package optics implements the partially coherent scalar aerial-image
// simulator the OPC and verification engines are built on. The mask
// transmission is rasterized with exact area antialiasing and
// transformed with an FFT; partial coherence is then imaged by one of
// two engines. The Abbe reference engine filters the spectrum once per
// sampled illumination source point with the shifted, defocused pupil
// and sums the coherent-field intensities. The production SOCS engine
// (the default) eigendecomposes the transmission cross-coefficient of
// the same source and pupil into a small set of coherent kernels —
// cached per (frame, defocus) — so one simulation costs one inverse FFT
// per kernel instead of one per source point. The intensity scale is
// anchored so an unpatterned clear field images at intensity 1.0.
//
// The default settings model the 248 nm / NA 0.68 exposure tools on
// which production OPC was first adopted (the reproduced paper's
// regime); the proximity effects OPC corrects — iso-dense bias,
// line-end pullback, corner rounding — all emerge from this model from
// first principles.
package optics

import (
	"errors"
	"fmt"
)

// IllumShape selects the illuminator geometry.
type IllumShape uint8

// Illuminator shapes.
const (
	// Conventional is a filled circular source of radius SigmaOuter.
	Conventional IllumShape = iota
	// Annular is a ring source between SigmaInner and SigmaOuter.
	Annular
	// Quadrupole is four poles of radius SigmaInner centered at
	// SigmaOuter along the +-45 degree diagonals.
	Quadrupole
)

func (s IllumShape) String() string {
	switch s {
	case Conventional:
		return "conventional"
	case Annular:
		return "annular"
	case Quadrupole:
		return "quadrupole"
	}
	return "?"
}

// Engine selects the imaging algorithm.
type Engine uint8

// Imaging engines.
const (
	// EngineSOCS (the default) images with a precomputed
	// Sum-of-Coherent-Systems kernel set: the transmission
	// cross-coefficient built from the sampled source and defocused
	// pupil is eigendecomposed once per (frame, defocus) and cached, so
	// one simulation costs one inverse FFT per retained kernel instead
	// of one per source point. Accuracy is controlled by SOCSMass.
	EngineSOCS Engine = iota
	// EngineAbbe is the direct source-point integration loop — the
	// golden reference path the SOCS decomposition is validated against.
	EngineAbbe
)

func (e Engine) String() string {
	switch e {
	case EngineAbbe:
		return "abbe"
	}
	return "socs"
}

// Precision selects the floating-point width of the SOCS imaging path.
type Precision uint8

// Imaging precisions.
const (
	// PrecisionF64 (the default) evaluates kernel images in complex128.
	PrecisionF64 Precision = iota
	// PrecisionF32 evaluates the per-kernel coarse-grid inverse FFTs in
	// complex64: half the memory traffic and twice the SIMD lanes on the
	// dominant cost of a SOCS simulation. The fine-grid mask transform,
	// intensity accumulation and final interpolation stay float64, so
	// only the coarse kernel fields carry single-precision rounding; see
	// DESIGN.md for the measured accuracy budget. The Abbe engine
	// ignores this knob (it is the golden reference).
	PrecisionF32
)

func (p Precision) String() string {
	if p == PrecisionF32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision maps the CLI/API spellings onto a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64", "double":
		return PrecisionF64, nil
	case "f32", "float32", "single":
		return PrecisionF32, nil
	}
	return PrecisionF64, fmt.Errorf("%w: precision %q (want f64 or f32)", ErrBadSettings, s)
}

// Tone selects the mask polarity.
type Tone uint8

// Mask polarities.
const (
	// BrightField: drawn polygons are chrome (opaque) on a clear
	// background. The printed resist feature is the dark region
	// (intensity below threshold) — the normal case for poly and metal
	// with positive resist.
	BrightField Tone = iota
	// DarkField: drawn polygons are clear openings in chrome — the
	// contact/via case.
	DarkField
	// AttPSMBrightField: drawn polygons are attenuated phase shifter
	// (amplitude -sqrt(PSMTransmission)) on a clear background. The
	// pi-shifted leakage steepens image slopes at feature edges — the
	// RET usually co-adopted with OPC.
	AttPSMBrightField
	// AttPSMDarkField: drawn polygons are clear openings in attenuated
	// shifter background — the att-PSM contact case.
	AttPSMDarkField
)

func (t Tone) String() string {
	switch t {
	case DarkField:
		return "dark-field"
	case AttPSMBrightField:
		return "attpsm-bright"
	case AttPSMDarkField:
		return "attpsm-dark"
	}
	return "bright-field"
}

// Settings describes the exposure system and simulation grid.
type Settings struct {
	// LambdaNM is the exposure wavelength in nm.
	LambdaNM float64
	// NA is the projection numerical aperture.
	NA float64
	// Shape selects the illuminator; Sigma values are pupil-relative.
	Shape      IllumShape
	SigmaOuter float64
	SigmaInner float64
	// PixelNM is the simulation grid pixel in nm.
	PixelNM float64
	// GuardNM is the optical guard band added around the requested
	// window so wraparound and neighborhood effects are captured. It
	// should be at least the optical ambit (~2 lambda/NA).
	GuardNM float64
	// SourceSteps is the number of source sample points across the
	// illuminator diameter; the source grid is SourceSteps^2 clipped to
	// the shape.
	SourceSteps int
	// DefocusNM is the image-plane defocus in nm (0 = best focus).
	DefocusNM float64
	// MaskTone is the polarity of the mask (BrightField default).
	MaskTone Tone
	// PSMTransmission is the intensity transmission of the attenuated
	// shifter for the AttPSM tones (0 selects the industry-standard 6%).
	PSMTransmission float64
	// Parallel enables source-point fan-out across goroutines.
	Parallel bool
	// Engine selects the imaging path (EngineSOCS default).
	Engine Engine
	// SOCSMass is the fraction of the TCC trace the retained kernel set
	// must capture; 0 selects the default 0.999. Higher mass means more
	// kernels (slower) and tighter agreement with the Abbe reference.
	SOCSMass float64
	// SOCSMaxKernels caps the retained kernel count regardless of mass
	// (0 = uncapped; the count never exceeds the source-point count,
	// which bounds the TCC rank).
	SOCSMaxKernels int
	// Precision selects the SOCS evaluation width (PrecisionF64 default;
	// PrecisionF32 runs the per-kernel coarse inverses in complex64).
	Precision Precision
}

// Default returns the 248 nm KrF baseline: NA 0.68, conventional
// sigma 0.6 illumination, 16 nm grid, 1.5 um guard band.
func Default() Settings {
	return Settings{
		LambdaNM:    248,
		NA:          0.68,
		Shape:       Conventional,
		SigmaOuter:  0.6,
		PixelNM:     16,
		GuardNM:     1500,
		SourceSteps: 7,
		Parallel:    true,
	}
}

// DefaultAnnular returns the off-axis variant used with assist features
// (annular 0.75/0.45), which trades iso performance for dense DOF.
func DefaultAnnular() Settings {
	s := Default()
	s.Shape = Annular
	s.SigmaOuter = 0.75
	s.SigmaInner = 0.45
	return s
}

// ErrBadSettings wraps settings validation failures.
var ErrBadSettings = errors.New("optics: invalid settings")

// Validate checks physical and numerical sanity.
func (s Settings) Validate() error {
	switch {
	case s.LambdaNM <= 0:
		return fmt.Errorf("%w: lambda %v", ErrBadSettings, s.LambdaNM)
	case s.NA <= 0 || s.NA >= 1:
		return fmt.Errorf("%w: NA %v (dry system expected)", ErrBadSettings, s.NA)
	case s.SigmaOuter <= 0 || s.SigmaOuter >= 1:
		return fmt.Errorf("%w: sigma outer %v", ErrBadSettings, s.SigmaOuter)
	case s.Shape != Conventional && (s.SigmaInner < 0 || s.SigmaInner >= s.SigmaOuter):
		return fmt.Errorf("%w: sigma inner %v vs outer %v", ErrBadSettings, s.SigmaInner, s.SigmaOuter)
	case s.PixelNM <= 0:
		return fmt.Errorf("%w: pixel %v", ErrBadSettings, s.PixelNM)
	case s.GuardNM < 0:
		return fmt.Errorf("%w: guard %v", ErrBadSettings, s.GuardNM)
	case s.SourceSteps < 1:
		return fmt.Errorf("%w: source steps %d", ErrBadSettings, s.SourceSteps)
	case s.Engine > EngineAbbe:
		return fmt.Errorf("%w: engine %d", ErrBadSettings, s.Engine)
	case s.SOCSMass < 0 || s.SOCSMass >= 1:
		return fmt.Errorf("%w: SOCS mass %v", ErrBadSettings, s.SOCSMass)
	case s.SOCSMaxKernels < 0:
		return fmt.Errorf("%w: SOCS max kernels %d", ErrBadSettings, s.SOCSMaxKernels)
	case s.Precision > PrecisionF32:
		return fmt.Errorf("%w: precision %d", ErrBadSettings, s.Precision)
	}
	// The pixel must resolve the field band limit NA(1+sigma)/lambda.
	nyquist := s.LambdaNM / (2 * s.NA * (1 + s.SigmaOuter))
	if s.PixelNM > nyquist {
		return fmt.Errorf("%w: pixel %v nm exceeds field Nyquist %.1f nm", ErrBadSettings, s.PixelNM, nyquist)
	}
	return nil
}

// RayleighResolution returns the k1=0.61 Rayleigh resolution in nm.
func (s Settings) RayleighResolution() float64 {
	return 0.61 * s.LambdaNM / s.NA
}

// DepthOfFocus returns the classical lambda/(2 NA^2) DOF scale in nm.
func (s Settings) DepthOfFocus() float64 {
	return s.LambdaNM / (2 * s.NA * s.NA)
}
