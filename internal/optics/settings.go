// Package optics implements the partially coherent scalar aerial-image
// simulator the OPC and verification engines are built on. It performs
// Abbe source-point integration: the mask transmission is rasterized
// with exact area antialiasing, transformed with an FFT, and for every
// sampled illumination source point the shifted pupil (with a defocus
// phase) filters the spectrum; the weighted sum of the resulting
// coherent-field intensities is the aerial image. The intensity scale is
// anchored so an unpatterned clear field images at intensity 1.0.
//
// The default settings model the 248 nm / NA 0.68 exposure tools on
// which production OPC was first adopted (the reproduced paper's
// regime); the proximity effects OPC corrects — iso-dense bias,
// line-end pullback, corner rounding — all emerge from this model from
// first principles.
package optics

import (
	"errors"
	"fmt"
)

// IllumShape selects the illuminator geometry.
type IllumShape uint8

// Illuminator shapes.
const (
	// Conventional is a filled circular source of radius SigmaOuter.
	Conventional IllumShape = iota
	// Annular is a ring source between SigmaInner and SigmaOuter.
	Annular
	// Quadrupole is four poles of radius SigmaInner centered at
	// SigmaOuter along the +-45 degree diagonals.
	Quadrupole
)

func (s IllumShape) String() string {
	switch s {
	case Conventional:
		return "conventional"
	case Annular:
		return "annular"
	case Quadrupole:
		return "quadrupole"
	}
	return "?"
}

// Tone selects the mask polarity.
type Tone uint8

// Mask polarities.
const (
	// BrightField: drawn polygons are chrome (opaque) on a clear
	// background. The printed resist feature is the dark region
	// (intensity below threshold) — the normal case for poly and metal
	// with positive resist.
	BrightField Tone = iota
	// DarkField: drawn polygons are clear openings in chrome — the
	// contact/via case.
	DarkField
	// AttPSMBrightField: drawn polygons are attenuated phase shifter
	// (amplitude -sqrt(PSMTransmission)) on a clear background. The
	// pi-shifted leakage steepens image slopes at feature edges — the
	// RET usually co-adopted with OPC.
	AttPSMBrightField
	// AttPSMDarkField: drawn polygons are clear openings in attenuated
	// shifter background — the att-PSM contact case.
	AttPSMDarkField
)

func (t Tone) String() string {
	switch t {
	case DarkField:
		return "dark-field"
	case AttPSMBrightField:
		return "attpsm-bright"
	case AttPSMDarkField:
		return "attpsm-dark"
	}
	return "bright-field"
}

// Settings describes the exposure system and simulation grid.
type Settings struct {
	// LambdaNM is the exposure wavelength in nm.
	LambdaNM float64
	// NA is the projection numerical aperture.
	NA float64
	// Shape selects the illuminator; Sigma values are pupil-relative.
	Shape      IllumShape
	SigmaOuter float64
	SigmaInner float64
	// PixelNM is the simulation grid pixel in nm.
	PixelNM float64
	// GuardNM is the optical guard band added around the requested
	// window so wraparound and neighborhood effects are captured. It
	// should be at least the optical ambit (~2 lambda/NA).
	GuardNM float64
	// SourceSteps is the number of source sample points across the
	// illuminator diameter; the source grid is SourceSteps^2 clipped to
	// the shape.
	SourceSteps int
	// DefocusNM is the image-plane defocus in nm (0 = best focus).
	DefocusNM float64
	// MaskTone is the polarity of the mask (BrightField default).
	MaskTone Tone
	// PSMTransmission is the intensity transmission of the attenuated
	// shifter for the AttPSM tones (0 selects the industry-standard 6%).
	PSMTransmission float64
	// Parallel enables source-point fan-out across goroutines.
	Parallel bool
}

// Default returns the 248 nm KrF baseline: NA 0.68, conventional
// sigma 0.6 illumination, 16 nm grid, 1.5 um guard band.
func Default() Settings {
	return Settings{
		LambdaNM:    248,
		NA:          0.68,
		Shape:       Conventional,
		SigmaOuter:  0.6,
		PixelNM:     16,
		GuardNM:     1500,
		SourceSteps: 7,
		Parallel:    true,
	}
}

// DefaultAnnular returns the off-axis variant used with assist features
// (annular 0.75/0.45), which trades iso performance for dense DOF.
func DefaultAnnular() Settings {
	s := Default()
	s.Shape = Annular
	s.SigmaOuter = 0.75
	s.SigmaInner = 0.45
	return s
}

// ErrBadSettings wraps settings validation failures.
var ErrBadSettings = errors.New("optics: invalid settings")

// Validate checks physical and numerical sanity.
func (s Settings) Validate() error {
	switch {
	case s.LambdaNM <= 0:
		return fmt.Errorf("%w: lambda %v", ErrBadSettings, s.LambdaNM)
	case s.NA <= 0 || s.NA >= 1:
		return fmt.Errorf("%w: NA %v (dry system expected)", ErrBadSettings, s.NA)
	case s.SigmaOuter <= 0 || s.SigmaOuter >= 1:
		return fmt.Errorf("%w: sigma outer %v", ErrBadSettings, s.SigmaOuter)
	case s.Shape != Conventional && (s.SigmaInner < 0 || s.SigmaInner >= s.SigmaOuter):
		return fmt.Errorf("%w: sigma inner %v vs outer %v", ErrBadSettings, s.SigmaInner, s.SigmaOuter)
	case s.PixelNM <= 0:
		return fmt.Errorf("%w: pixel %v", ErrBadSettings, s.PixelNM)
	case s.GuardNM < 0:
		return fmt.Errorf("%w: guard %v", ErrBadSettings, s.GuardNM)
	case s.SourceSteps < 1:
		return fmt.Errorf("%w: source steps %d", ErrBadSettings, s.SourceSteps)
	}
	// The pixel must resolve the field band limit NA(1+sigma)/lambda.
	nyquist := s.LambdaNM / (2 * s.NA * (1 + s.SigmaOuter))
	if s.PixelNM > nyquist {
		return fmt.Errorf("%w: pixel %v nm exceeds field Nyquist %.1f nm", ErrBadSettings, s.PixelNM, nyquist)
	}
	return nil
}

// RayleighResolution returns the k1=0.61 Rayleigh resolution in nm.
func (s Settings) RayleighResolution() float64 {
	return 0.61 * s.LambdaNM / s.NA
}

// DepthOfFocus returns the classical lambda/(2 NA^2) DOF scale in nm.
func (s Settings) DepthOfFocus() float64 {
	return s.LambdaNM / (2 * s.NA * s.NA)
}
