package optics

import "sync"

// floatPools recycles per-size intensity accumulators so the model-OPC
// iteration loop stops allocating a fresh buffer per source point or
// kernel per iteration. Slices handed out are zeroed.
var floatPools sync.Map // int -> *sync.Pool

func getFloats(n int) []float64 {
	p, ok := floatPools.Load(n)
	if !ok {
		p, _ = floatPools.LoadOrStore(n, &sync.Pool{New: func() any {
			return make([]float64, n)
		}})
	}
	v := p.(*sync.Pool).Get().([]float64)
	for i := range v {
		v[i] = 0
	}
	return v
}

func putFloats(v []float64) {
	if p, ok := floatPools.Load(len(v)); ok {
		p.(*sync.Pool).Put(v) //nolint:staticcheck // slice header boxing is fine here
	}
}
