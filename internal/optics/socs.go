// Sum-of-Coherent-Systems (SOCS) imaging: the production fast path.
//
// The Abbe loop computes I = sum_s w_s |IFFT(S * P_s)|^2 with one
// full-frame inverse FFT per sampled source point. The same image is
// exactly
//
//	I(x) = sum_{f1,f2} S(f1) S*(f2) T(f1,f2) e^{2 pi i (f1-f2) x}
//
// where T(f1,f2) = sum_s w_s P_s(f1) P_s*(f2) is the transmission
// cross-coefficient. Writing A[s][f] = sqrt(w_s) P_s(f), T has rank at
// most S (the source-point count), and its nonzero eigenpairs are
// recovered exactly from the tiny S x S source-Gram matrix G = A A^H:
// if G u = eig u then the TCC kernel is c(f) = sum_s A[s][f] conj(u[s])
// (already scaled by sqrt(eig)), and
//
//	I(x) = sum_k |IFFT(S * c_k)|^2.
//
// Kernels are truncated once their eigenvalue mass reaches the SOCSMass
// target; truncation error is bounded by the discarded mass. For a
// discrete source the tail decays slowly (the kernels must reproduce
// the sampled sum exactly), so the big win is not the kernel count but
// the evaluation grid: every field is band-limited to (1+sigma)NA/L,
// which the simulation frame oversamples by an order of magnitude. Each
// kernel IFFT therefore runs on a small coarse grid spanning the same
// physical extent (exact band-limited sampling, zero aliasing), the
// intensity - band-limited to twice the field band - is accumulated
// there, and one zero-padded Fourier interpolation lifts it to the fine
// frame. The result matches the full-frame evaluation to rounding
// error while doing a fraction of the butterflies. Kernel sets depend
// only on frame geometry and defocus, so they are built once per
// (frame, defocus) under a sync.Once and reused across every mask, OPC
// iteration, and dose point.
package optics

import (
	"context"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"goopc/internal/fft"
	"goopc/internal/geom"
)

// defaultSOCSMass is the retained TCC-trace fraction when
// Settings.SOCSMass is zero.
const defaultSOCSMass = 0.995

// kernelKey identifies one cached kernel set: the frequency grid
// (frame geometry) plus the defocus that shapes the pupil phase.
type kernelKey struct {
	w, h      int
	pixelNM   float64
	defocusNM float64
}

// kernelEntry is a cache slot populated exactly once.
type kernelEntry struct {
	once sync.Once
	ks   *kernelSet
	err  error
}

// kernelSet is one SOCS decomposition: the in-band frequency bins, the
// per-kernel filter coefficients over them, and the coarse evaluation
// grid the kernels are imaged on.
type kernelSet struct {
	// idx holds the flattened fine-frame indices of the in-band bins;
	// cidx the same bins' positions on the coarse grid (identical
	// frequencies: both grids span the same physical extent).
	idx, cidx []int32
	// coef[k][j] is kernel k's filter at bin idx[j], scaled by
	// sqrt(eigenvalue) and the coarse-grid DFT normalization ratio so
	// intensities sum without extra weights.
	coef [][]complex128
	// eigs are all TCC eigenvalues, descending.
	eigs []float64
	// kept is the retained kernel count; mass the retained fraction of
	// trace (the total TCC energy).
	kept  int
	trace float64
	mass  float64
	// cw, ch is the coarse evaluation grid; equal to the frame when the
	// band does not permit reduction.
	cw, ch int
	// fineCols are the fine-frame columns holding in-band bins (pruned
	// forward transform); coarseRows the coarse rows holding them
	// (pruned kernel inverses); embedRows the fine rows that receive
	// the upsampled intensity spectrum (pruned interpolation inverse).
	fineCols, coarseRows, embedRows []int
	// coef32 is the complex64 rounding of coef, converted lazily on the
	// first PrecisionF32 simulation and cached alongside — the kernel
	// cache then serves both precisions from one entry.
	f32once sync.Once
	coef32  [][]complex64
}

// coefs32 returns the complex64 kernel stack, converting from coef on
// first use.
func (ks *kernelSet) coefs32() [][]complex64 {
	ks.f32once.Do(func() {
		ks.coef32 = make([][]complex64, len(ks.coef))
		for k, ck := range ks.coef {
			c := make([]complex64, len(ck))
			for j, v := range ck {
				c[j] = complex64(v)
			}
			ks.coef32[k] = c
		}
	})
	return ks.coef32
}

// kernels returns the cached kernel set for a frame/defocus, building
// it on first use.
func (sim *Simulator) kernels(frame Frame, defocusNM float64) (*kernelSet, error) {
	key := kernelKey{frame.W, frame.H, frame.PixelNM, defocusNM}
	e, ok := sim.kcache.Load(key)
	if !ok {
		var loaded bool
		e, loaded = sim.kcache.LoadOrStore(key, &kernelEntry{})
		if loaded {
			sim.kernelHits.Add(1)
			mKernelHits.Inc()
		} else {
			sim.kernelMisses.Add(1)
			mKernelMisses.Inc()
		}
	} else {
		sim.kernelHits.Add(1)
		mKernelHits.Inc()
	}
	entry := e.(*kernelEntry)
	entry.once.Do(func() {
		entry.ks, entry.err = sim.buildKernels(frame, defocusNM)
	})
	return entry.ks, entry.err
}

// KernelCacheStats reports SOCS kernel cache hits and misses since the
// simulator was created (or last ResetKernelCache). This is a thin
// per-simulator shim over the same events mirrored onto the obs
// registry as goopc_kernel_cache_{hits,misses}_total — the registry
// series aggregate every simulator in the process and are never reset.
func (sim *Simulator) KernelCacheStats() (hits, misses int64) {
	return sim.kernelHits.Load(), sim.kernelMisses.Load()
}

// ResetKernelCache drops every cached kernel set and zeroes the
// per-simulator cache statistics (benchmark support). Dropped entries
// count as evictions on the obs registry; the registry's hit/miss
// totals stay monotone.
func (sim *Simulator) ResetKernelCache() {
	evicted := int64(0)
	sim.kcache.Range(func(k, _ any) bool {
		sim.kcache.Delete(k)
		evicted++
		return true
	})
	mKernelEvictions.Add(evicted)
	sim.kernelHits.Store(0)
	sim.kernelMisses.Store(0)
}

// KernelInfo reports the retained kernel count and eigenvalue-mass
// fraction the SOCS engine would use for the given window and defocus.
func (sim *Simulator) KernelInfo(window geom.Rect, defocusNM float64) (kept int, mass float64, err error) {
	frame := FrameFor(window, sim.S.PixelNM, sim.S.GuardNM)
	ks, err := sim.kernels(frame, defocusNM)
	if err != nil {
		return 0, 0, err
	}
	return ks.kept, ks.mass, nil
}

// CoarseGrid reports the SOCS evaluation grid against the full frame
// for the given window, the source of the engine's butterfly savings.
func (sim *Simulator) CoarseGrid(window geom.Rect, defocusNM float64) (cw, ch, fw, fh int, err error) {
	frame := FrameFor(window, sim.S.PixelNM, sim.S.GuardNM)
	ks, err := sim.kernels(frame, defocusNM)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return ks.cw, ks.ch, frame.W, frame.H, nil
}

// wrapBin maps a fine-grid FFT bin index to the bin of the same signed
// frequency on an n-point axis sharing the physical extent.
func wrapBin(k, fineN, n int) int {
	if k > fineN/2 {
		k -= fineN
	}
	if k < 0 {
		k += n
	}
	return k
}

// coarseSize picks the smallest power-of-two axis that holds the
// intensity spectrum alias-free: field bins reach +-r, so intensity
// (the field autocorrelation) reaches +-2r and needs n/2 > 2r.
func coarseSize(r, fineN int) int {
	n := fft.NextPow2(4*r + 2)
	if n < 8 {
		n = 8
	}
	if n > fineN {
		n = fineN
	}
	return n
}

// buildKernels constructs the TCC over the frame's in-band frequency
// grid and eigendecomposes it through the source-Gram matrix.
func (sim *Simulator) buildKernels(frame Frame, defocusNM float64) (*kernelSet, error) {
	naOverLambda := sim.S.NA / sim.S.LambdaNM
	band := (1 + sim.S.SigmaOuter) * naOverLambda
	band2 := band * band
	cutoff2 := naOverLambda * naOverLambda
	lambda := sim.S.LambdaNM

	fxs := make([]float64, frame.W)
	for k := range fxs {
		fxs[k] = freqAt(k, frame.W, frame.PixelNM)
	}
	fys := make([]float64, frame.H)
	for k := range fys {
		fys[k] = freqAt(k, frame.H, frame.PixelNM)
	}

	// In-band bins: every frequency any shifted pupil can pass. rx, ry
	// track the largest signed bin index per axis (the band radius).
	var idx []int32
	var binFx, binFy []float64
	rx, ry := 0, 0
	for ky := 0; ky < frame.H; ky++ {
		fy2 := fys[ky] * fys[ky]
		if fy2 > band2 {
			continue
		}
		for kx := 0; kx < frame.W; kx++ {
			if fxs[kx]*fxs[kx]+fy2 <= band2 {
				idx = append(idx, int32(ky*frame.W+kx))
				binFx = append(binFx, fxs[kx])
				binFy = append(binFy, fys[ky])
				if s := signedBin(kx, frame.W); s > rx || -s > rx {
					rx = absI(s)
				}
				if s := signedBin(ky, frame.H); s > ry || -s > ry {
					ry = absI(s)
				}
			}
		}
	}
	m := len(idx)
	ns := len(sim.src)

	// Coarse evaluation grid over the same extent, and the bin/row
	// bookkeeping for the pruned transforms.
	cw := coarseSize(rx, frame.W)
	ch := coarseSize(ry, frame.H)
	cidx := make([]int32, m)
	fineColSet := make(map[int]bool)
	coarseRowSet := make(map[int]bool)
	for j, fi := range idx {
		kx := int(fi) % frame.W
		ky := int(fi) / frame.W
		ckx := wrapBin(kx, frame.W, cw)
		cky := wrapBin(ky, frame.H, ch)
		cidx[j] = int32(cky*cw + ckx)
		fineColSet[kx] = true
		coarseRowSet[cky] = true
	}
	fineCols := sortedKeys(fineColSet)
	coarseRows := sortedKeys(coarseRowSet)
	var embedRows []int
	for ky := 0; ky < ch; ky++ {
		if ky == ch/2 {
			continue
		}
		embedRows = append(embedRows, wrapBin(ky, ch, frame.H))
	}

	// A[s][j] = sqrt(w_s) * P(f_j + shift_s), the defocused pupil seen
	// from source point s.
	a := make([][]complex128, ns)
	for si, sp := range sim.src {
		row := make([]complex128, m)
		sx := sp.SX * naOverLambda
		sy := sp.SY * naOverLambda
		sw := complex(math.Sqrt(sp.Weight), 0)
		for j := 0; j < m; j++ {
			fx := binFx[j] + sx
			fy := binFy[j] + sy
			f2 := fx*fx + fy*fy
			if f2 > cutoff2 {
				continue
			}
			p := sw
			if defocusNM != 0 {
				lf2 := lambda * lambda * f2
				phase := 2 * math.Pi / lambda * defocusNM * (math.Sqrt(1-lf2) - 1)
				p = sw * cmplx.Exp(complex(0, phase))
			}
			row[j] = p
		}
		a[si] = row
	}

	// Source-Gram matrix G = A A^H (Hermitian PSD, ns x ns).
	g := make([][]complex128, ns)
	for s := range g {
		g[s] = make([]complex128, ns)
	}
	for s := 0; s < ns; s++ {
		as := a[s]
		for t := s; t < ns; t++ {
			at := a[t]
			var sum complex128
			for j := range as {
				v := at[j]
				sum += as[j] * complex(real(v), -imag(v))
			}
			g[s][t] = sum
			g[t][s] = complex(real(sum), -imag(sum))
		}
	}

	eigs, vecs := jacobiHermitian(g)
	trace := 0.0
	for _, e := range eigs {
		if e > 0 {
			trace += e
		}
	}
	massTarget := sim.S.SOCSMass
	if massTarget == 0 {
		massTarget = defaultSOCSMass
	}
	maxK := sim.S.SOCSMaxKernels
	if maxK <= 0 || maxK > ns {
		maxK = ns
	}
	kept := 0
	acc := 0.0
	for kept < maxK {
		e := eigs[kept]
		if e <= 1e-12*trace {
			break
		}
		acc += e
		kept++
		if trace > 0 && acc >= massTarget*trace {
			break
		}
	}
	if kept == 0 {
		kept = 1
		acc = eigs[0]
	}

	// Kernel filters c_k(f) = sum_s A[s][f] conj(u_k[s]), folded with
	// the coarse-grid normalization: the coarse inverse divides by
	// cw*ch where the frame convention divides by W*H.
	norm := complex(float64(cw*ch)/float64(frame.W*frame.H), 0)
	coef := make([][]complex128, kept)
	for k := 0; k < kept; k++ {
		u := vecs[k]
		ck := make([]complex128, m)
		for s := 0; s < ns; s++ {
			us := complex(real(u[s]), -imag(u[s]))
			if us == 0 {
				continue
			}
			as := a[s]
			for j, av := range as {
				if av != 0 {
					ck[j] += av * us
				}
			}
		}
		for j := range ck {
			ck[j] *= norm
		}
		coef[k] = ck
	}
	mass := 1.0
	if trace > 0 {
		mass = acc / trace
	}
	mKernelBuilds.Inc()
	mKernelsKept.Observe(float64(kept))
	return &kernelSet{
		idx: idx, cidx: cidx, coef: coef, eigs: eigs,
		kept: kept, trace: trace, mass: mass,
		cw: cw, ch: ch,
		fineCols: fineCols, coarseRows: coarseRows, embedRows: embedRows,
	}, nil
}

func signedBin(k, n int) int {
	if k > n/2 {
		return k - n
	}
	return k
}

func absI(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// socsIntensity images the spectrum through the cached kernel set: one
// small coarse-grid inverse FFT per retained kernel, then a single
// Fourier interpolation of the accumulated intensity up to the frame.
// With Parallel set, kernels fan out across goroutines into per-kernel
// buffers merged in kernel order, so the result is bit-identical to the
// serial loop.
func (sim *Simulator) socsIntensity(ctx context.Context, spectrum *fft.Grid, frame Frame, ks *kernelSet) ([]float64, error) {
	cn := ks.cw * ks.ch
	coarse := getFloats(cn)
	cplan, err := sim.plan(ks.cw, ks.ch)
	if err != nil {
		putFloats(coarse)
		return nil, err
	}
	workers := 1
	if sim.S.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > ks.kept {
			workers = ks.kept
		}
		if workers < 1 {
			workers = 1
		}
	}
	if workers <= 1 {
		// Sequential kernels; the plan parallelizes inside each IFFT
		// when the simulator is parallel.
		field := fft.GetGrid(ks.cw, ks.ch)
		for k := 0; k < ks.kept; k++ {
			if err := ctx.Err(); err != nil {
				fft.PutGrid(field)
				putFloats(coarse)
				return nil, err
			}
			if err := kernelField(field, spectrum, ks, k, cplan); err != nil {
				fft.PutGrid(field)
				putFloats(coarse)
				return nil, err
			}
			for i, v := range field.Data {
				re, im := real(v), imag(v)
				coarse[i] += re*re + im*im
			}
		}
		fft.PutGrid(field)
		return sim.upsample(coarse, frame, ks)
	}

	// Kernel-level fan-out with serial per-kernel IFFTs (one transform
	// per core beats nested parallelism).
	serial := *cplan
	serial.Workers = 1
	parts := make([][]float64, ks.kept)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			field := fft.GetGrid(ks.cw, ks.ch)
			defer fft.PutGrid(field)
			for k := range jobs {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				if err := kernelField(field, spectrum, ks, k, &serial); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				part := getFloats(cn)
				for i, v := range field.Data {
					re, im := real(v), imag(v)
					part[i] = re*re + im*im
				}
				parts[k] = part
			}
		}()
	}
	for k := 0; k < ks.kept; k++ {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		for _, part := range parts {
			if part != nil {
				putFloats(part)
			}
		}
		putFloats(coarse)
		return nil, firstErr
	}
	// Deterministic merge in kernel order.
	for _, part := range parts {
		for i, v := range part {
			coarse[i] += v
		}
		putFloats(part)
	}
	return sim.upsample(coarse, frame, ks)
}

// upsample lifts the coarse intensity to the frame grid by zero-padded
// Fourier interpolation. The intensity spectrum fits strictly inside
// the coarse Nyquist square by construction (coarseSize), so the
// interpolation is exact for the band-limited intensity: the fine
// samples match a full-frame evaluation to rounding error. The coarse
// buffer is consumed (returned to its pool).
func (sim *Simulator) upsample(coarse []float64, frame Frame, ks *kernelSet) ([]float64, error) {
	n := frame.W * frame.H
	if ks.cw == frame.W && ks.ch == frame.H {
		out := make([]float64, n)
		copy(out, coarse)
		putFloats(coarse)
		return out, nil
	}
	cg := fft.GetGrid(ks.cw, ks.ch)
	for i, v := range coarse {
		cg.Data[i] = complex(v, 0)
	}
	putFloats(coarse)
	cplan, err := sim.plan(ks.cw, ks.ch)
	if err != nil {
		fft.PutGrid(cg)
		return nil, err
	}
	if err := cplan.Forward2DP(cg); err != nil {
		fft.PutGrid(cg)
		return nil, err
	}
	fplan, err := sim.plan(frame.W, frame.H)
	if err != nil {
		fft.PutGrid(cg)
		return nil, err
	}
	fg := fft.GetGrid(frame.W, frame.H)
	// Embed every non-Nyquist coarse bin at its signed frequency. The
	// Nyquist row/column carry only rounding noise (the spectrum support
	// ends below them) and have no unambiguous image on the fine grid.
	ratio := complex(float64(n)/float64(ks.cw*ks.ch), 0)
	for cky := 0; cky < ks.ch; cky++ {
		if cky == ks.ch/2 {
			continue
		}
		fy := wrapBin(cky, ks.ch, frame.H)
		src := cg.Data[cky*ks.cw:]
		dst := fg.Data[fy*frame.W:]
		for ckx := 0; ckx < ks.cw; ckx++ {
			if ckx == ks.cw/2 {
				continue
			}
			dst[wrapBin(ckx, ks.cw, frame.W)] = src[ckx] * ratio
		}
	}
	fft.PutGrid(cg)
	if err := fplan.Inverse2DPRows(fg, ks.embedRows); err != nil {
		fft.PutGrid(fg)
		return nil, err
	}
	out := make([]float64, n)
	for i, v := range fg.Data {
		out[i] = real(v)
	}
	fft.PutGrid(fg)
	return out, nil
}

// kernelField fills the coarse field with IFFT(spectrum * kernel k):
// in-band bins of the fine-frame spectrum land on the coarse bin of the
// same frequency, and the inverse runs only over the occupied rows.
func kernelField(field, spectrum *fft.Grid, ks *kernelSet, k int, plan *fft.Plan2D) error {
	for i := range field.Data {
		field.Data[i] = 0
	}
	ck := ks.coef[k]
	for j, bi := range ks.idx {
		field.Data[ks.cidx[j]] = spectrum.Data[bi] * ck[j]
	}
	return plan.Inverse2DPRows(field, ks.coarseRows)
}
