package optics

import (
	"math"
	"testing"

	"goopc/internal/geom"
)

// TestSOCSF32MatchesF64 pins the float32 SOCS path against the float64
// one across tones and defocus. The measured gap on these cases is
// below 2e-6 in clear-field units — the coarse kernel fields carry only
// ~10 single-precision butterfly stages — so the 1e-5 assertion leaves
// an order of magnitude of headroom while staying ~100x tighter than
// the 1e-3 SOCS-vs-Abbe budget.
func TestSOCSF32MatchesF64(t *testing.T) {
	mask := parityMask()
	window := geom.R(-700, -400, 700, 400)
	for _, tone := range []Tone{BrightField, DarkField, AttPSMBrightField} {
		for _, defocus := range []float64{0, 400} {
			s := fastSettings()
			s.MaskTone = tone
			f64, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			s.Precision = PrecisionF32
			f32, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			im64, err := f64.AerialDefocus(mask, window, defocus)
			if err != nil {
				t.Fatal(err)
			}
			im32, err := f32.AerialDefocus(mask, window, defocus)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for i := range im64.I {
				if d := math.Abs(im64.I[i] - im32.I[i]); d > worst {
					worst = d
				}
			}
			t.Logf("%s z=%.0f: max |dI(f32,f64)| = %.2e", tone, defocus, worst)
			if worst >= 1e-5 {
				t.Errorf("%s z=%.0f: max |dI| = %.2e, want < 1e-5", tone, defocus, worst)
			}
		}
	}
}

// TestSOCSF32MatchesAbbe holds the float32 path to the same 1e-3 golden
// budget as the float64 SOCS engine: single precision must not consume
// the margin the decomposition leaves.
func TestSOCSF32MatchesAbbe(t *testing.T) {
	mask := parityMask()
	window := geom.R(-700, -400, 700, 400)
	for _, defocus := range []float64{0, 400} {
		s := fastSettings()
		s.Engine = EngineAbbe
		abbe, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		s.Engine = EngineSOCS
		s.Precision = PrecisionF32
		socs, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		imA, err := abbe.AerialDefocus(mask, window, defocus)
		if err != nil {
			t.Fatal(err)
		}
		imS, err := socs.AerialDefocus(mask, window, defocus)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range imA.I {
			if d := math.Abs(imA.I[i] - imS.I[i]); d > worst {
				worst = d
			}
		}
		t.Logf("z=%.0f: max |dI(f32,abbe)| = %.2e", defocus, worst)
		if worst >= 1e-3 {
			t.Errorf("z=%.0f: max |dI| = %.2e, want < 1e-3", defocus, worst)
		}
	}
}

// TestSOCSF32ParallelMatchesSerial: like the float64 engine, the f32
// kernel fan-out must be bit-identical to its serial loop (per-kernel
// parts are merged in kernel order).
func TestSOCSF32ParallelMatchesSerial(t *testing.T) {
	mask := parityMask()
	window := geom.R(-700, -400, 700, 400)
	s := fastSettings()
	s.Precision = PrecisionF32
	s.Parallel = false
	serial, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = true
	par, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	imS, err := serial.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	imP, err := par.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imS.I {
		if imS.I[i] != imP.I[i] {
			t.Fatalf("idx=%d: serial %v vs parallel %v", i, imS.I[i], imP.I[i])
		}
	}
}

// TestPrecisionSettings covers the knob itself: parsing, stringing,
// validation, and that the Abbe engine ignores it.
func TestPrecisionSettings(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", PrecisionF64, true},
		{"f64", PrecisionF64, true},
		{"double", PrecisionF64, true},
		{"f32", PrecisionF32, true},
		{"float32", PrecisionF32, true},
		{"f16", PrecisionF64, false},
	} {
		got, err := ParsePrecision(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v", c.in, got, err)
		}
	}
	if PrecisionF32.String() != "f32" || PrecisionF64.String() != "f64" {
		t.Errorf("Precision strings: %v %v", PrecisionF64, PrecisionF32)
	}
	s := fastSettings()
	s.Precision = PrecisionF32 + 1
	if err := s.Validate(); err == nil {
		t.Error("invalid precision accepted")
	}

	// Abbe ignores the knob: identical images either way.
	mask := parityMask()
	window := geom.R(-400, -300, 400, 300)
	s = fastSettings()
	s.Engine = EngineAbbe
	a, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Precision = PrecisionF32
	b, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	imA, err := a.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	imB, err := b.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imA.I {
		if imA.I[i] != imB.I[i] {
			t.Fatalf("abbe images differ at %d with Precision set", i)
		}
	}
}
