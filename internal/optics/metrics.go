package optics

import "goopc/internal/obs"

// Registry series for the imaging engines. The per-Simulator statistics
// (KernelCacheStats, FieldEvals) remain per-object — tests and
// benchmarks reset them per simulator — and mirror into these flow-wide
// series, so the /metrics view aggregates every simulator in the
// process while the old accessors keep their exact semantics.
var (
	mKernelHits = obs.Default().Counter("goopc_kernel_cache_hits_total",
		"SOCS kernel cache hits (kernel set reused for a frame/defocus)")
	mKernelMisses = obs.Default().Counter("goopc_kernel_cache_misses_total",
		"SOCS kernel cache misses (kernel set built)")
	mKernelEvictions = obs.Default().Counter("goopc_kernel_cache_evictions_total",
		"SOCS kernel cache entries dropped by ResetKernelCache")
	mKernelBuilds = obs.Default().Counter("goopc_kernel_builds_total",
		"SOCS kernel set constructions (TCC eigendecompositions)")
	mKernelsKept = obs.Default().Histogram("goopc_socs_kernels_kept",
		"retained kernel count per SOCS decomposition",
		[]float64{1, 2, 4, 8, 16, 32, 64})
	mPlanReuse = obs.Default().Counter("goopc_sim_plan_reuse_total",
		"FFT plan cache hits on the simulator's per-geometry plan cache")
	mPlanBuilds = obs.Default().Counter("goopc_sim_plan_builds_total",
		"FFT plan cache misses (new plan constructed)")
	mFieldEvals = obs.Default().Counter("goopc_abbe_field_evals_total",
		"Abbe source-point field evaluations")
	mImagesSOCS = obs.Default().Counter("goopc_images_socs_total",
		"aerial images computed by the SOCS engine in float64")
	mImagesSOCS32 = obs.Default().Counter("goopc_images_socs_f32_total",
		"aerial images computed by the SOCS engine in float32 (PrecisionF32)")
	mImagesAbbe = obs.Default().Counter("goopc_images_abbe_total",
		"aerial images computed by the Abbe reference engine")
	mFramePixels = obs.Default().Histogram("goopc_frame_pixels",
		"simulation frame size (W*H) per aerial image",
		[]float64{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22})
)
