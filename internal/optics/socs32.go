// Single-precision SOCS evaluation (Settings.Precision = PrecisionF32).
//
// The per-kernel coarse-grid inverse FFTs dominate a SOCS simulation,
// and they are numerically gentle: small grids, band-limited data,
// O(10) butterfly stages. Running just that part in complex64 halves
// its memory traffic and doubles its SIMD lanes while everything
// accuracy-critical stays float64 — the fine-grid mask transform, the
// intensity accumulation (squares of float32 fields summed in float64)
// and the final Fourier interpolation. The kernel coefficients are
// rounded once per kernel set and cached beside the float64 stack.
package optics

import (
	"context"
	"runtime"
	"sync"

	"goopc/internal/fft"
)

// plan32 returns the cached complex64 FFT plan for a frame geometry,
// mirroring plan.
func (sim *Simulator) plan32(w, h int) (*fft.Plan2D32, error) {
	key := [2]int{w, h}
	if p, ok := sim.plans32.Load(key); ok {
		mPlanReuse.Inc()
		return p.(*fft.Plan2D32), nil
	}
	mPlanBuilds.Inc()
	p, err := fft.NewPlan2D32(w, h)
	if err != nil {
		return nil, err
	}
	if !sim.S.Parallel {
		p.Workers = 1
	}
	actual, _ := sim.plans32.LoadOrStore(key, p)
	return actual.(*fft.Plan2D32), nil
}

// socsIntensity32 is socsIntensity with the per-kernel coarse fields
// evaluated in complex64. The fine-grid spectrum arrives in float64;
// each in-band bin is rounded to complex64 as it is multiplied into the
// kernel field, and each field's squared magnitudes are accumulated in
// float64 (products of the float32 components widened, so the squares
// are exact). The same kernel fan-out and deterministic kernel-order
// merge as the float64 path.
func (sim *Simulator) socsIntensity32(ctx context.Context, spectrum *fft.Grid, frame Frame, ks *kernelSet) ([]float64, error) {
	cn := ks.cw * ks.ch
	coarse := getFloats(cn)
	cplan, err := sim.plan32(ks.cw, ks.ch)
	if err != nil {
		putFloats(coarse)
		return nil, err
	}
	coef := ks.coefs32()
	workers := 1
	if sim.S.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > ks.kept {
			workers = ks.kept
		}
		if workers < 1 {
			workers = 1
		}
	}
	if workers <= 1 {
		field := fft.GetGrid32(ks.cw, ks.ch)
		for k := 0; k < ks.kept; k++ {
			if err := ctx.Err(); err != nil {
				fft.PutGrid32(field)
				putFloats(coarse)
				return nil, err
			}
			if err := kernelField32(field, spectrum, ks, coef[k], cplan); err != nil {
				fft.PutGrid32(field)
				putFloats(coarse)
				return nil, err
			}
			for i, v := range field.Data {
				re, im := float64(real(v)), float64(imag(v))
				coarse[i] += re*re + im*im
			}
		}
		fft.PutGrid32(field)
		return sim.upsample(coarse, frame, ks)
	}

	serial := *cplan
	serial.Workers = 1
	parts := make([][]float64, ks.kept)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			field := fft.GetGrid32(ks.cw, ks.ch)
			defer fft.PutGrid32(field)
			for k := range jobs {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				if err := kernelField32(field, spectrum, ks, coef[k], &serial); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				part := getFloats(cn)
				for i, v := range field.Data {
					re, im := float64(real(v)), float64(imag(v))
					part[i] = re*re + im*im
				}
				parts[k] = part
			}
		}()
	}
	for k := 0; k < ks.kept; k++ {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		for _, part := range parts {
			if part != nil {
				putFloats(part)
			}
		}
		putFloats(coarse)
		return nil, firstErr
	}
	for _, part := range parts {
		for i, v := range part {
			coarse[i] += v
		}
		putFloats(part)
	}
	return sim.upsample(coarse, frame, ks)
}

// kernelField32 is kernelField over a complex64 coarse field: in-band
// fine-spectrum bins are filtered by the rounded kernel and inverse
// transformed over the occupied rows.
func kernelField32(field *fft.Grid32, spectrum *fft.Grid, ks *kernelSet, ck []complex64, plan *fft.Plan2D32) error {
	for i := range field.Data {
		field.Data[i] = 0
	}
	for j, bi := range ks.idx {
		field.Data[ks.cidx[j]] = complex64(spectrum.Data[bi]) * ck[j]
	}
	return plan.Inverse2DPRows(field, ks.coarseRows)
}
