package optics

import (
	"math"
	"testing"

	"goopc/internal/geom"
)

func fastSettings() Settings {
	s := Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	return s
}

func TestSettingsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default settings invalid: %v", err)
	}
	if err := DefaultAnnular().Validate(); err != nil {
		t.Fatalf("annular settings invalid: %v", err)
	}
	bad := Default()
	bad.NA = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("NA > 1 should fail")
	}
	bad = Default()
	bad.PixelNM = 200
	if err := bad.Validate(); err == nil {
		t.Error("pixel above Nyquist should fail")
	}
	bad = DefaultAnnular()
	bad.SigmaInner = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("inner > outer should fail")
	}
	bad = Default()
	bad.SourceSteps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero source steps should fail")
	}
}

func TestResolutionScales(t *testing.T) {
	s := Default()
	res := s.RayleighResolution()
	if res < 200 || res > 250 {
		t.Errorf("Rayleigh resolution = %.1f nm, expected ~222", res)
	}
	dof := s.DepthOfFocus()
	if dof < 200 || dof > 350 {
		t.Errorf("DOF scale = %.1f nm, expected ~268", dof)
	}
}

func TestSourceSampling(t *testing.T) {
	s := Default()
	pts := sampleSource(s)
	if len(pts) == 0 {
		t.Fatal("no source points")
	}
	var sum float64
	for _, p := range pts {
		sum += p.Weight
		if math.Hypot(p.SX, p.SY) > s.SigmaOuter+1e-9 {
			t.Errorf("point (%f,%f) outside sigma", p.SX, p.SY)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %f", sum)
	}
	// Annular excludes the center.
	ann := DefaultAnnular()
	ann.SourceSteps = 9
	for _, p := range sampleSource(ann) {
		r := math.Hypot(p.SX, p.SY)
		if r < ann.SigmaInner-1e-9 {
			t.Errorf("annular point at r=%f inside inner sigma", r)
		}
	}
	// Coherent limit.
	coh := Default()
	coh.SourceSteps = 1
	if pts := sampleSource(coh); len(pts) != 1 || pts[0].SX != 0 {
		t.Errorf("coherent sampling = %v", pts)
	}
	// Quadrupole points live near the diagonals.
	quad := Default()
	quad.Shape = Quadrupole
	quad.SigmaOuter = 0.8
	quad.SigmaInner = 0.15
	quad.SourceSteps = 11
	qp := sampleSource(quad)
	if len(qp) == 0 {
		t.Fatal("no quadrupole points")
	}
	for _, p := range qp {
		if math.Abs(math.Abs(p.SX)-math.Abs(p.SY)) > 2*0.15+1e-9 {
			t.Errorf("quadrupole point (%f,%f) off diagonal", p.SX, p.SY)
		}
	}
}

func TestFrameFor(t *testing.T) {
	w := geom.R(0, 0, 1000, 1000)
	f := FrameFor(w, 16, 1000)
	if f.W < 128 || f.H < 128 {
		t.Errorf("frame too small: %dx%d", f.W, f.H)
	}
	if f.W&(f.W-1) != 0 || f.H&(f.H-1) != 0 {
		t.Error("frame dims must be powers of two")
	}
	// The window center should map to the frame center.
	cx := f.OriginX + f.PixelNM*float64(f.W-1)/2
	if math.Abs(cx-500) > 1e-9 {
		t.Errorf("frame center x = %f", cx)
	}
}

func TestRasterizeCoverage(t *testing.T) {
	f := Frame{W: 64, H: 64, PixelNM: 10, OriginX: 0, OriginY: 0}
	g := rasterize([]geom.Polygon{geom.R(95, 95, 203, 205).Polygon()}, f)
	// Total coverage equals area / pixel area.
	var sum float64
	for _, v := range g.Data {
		sum += real(v)
	}
	want := 108.0 * 110.0 / 100.0
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("coverage sum = %f, want %f", sum, want)
	}
	// Interior pixel fully covered.
	if v := real(g.At(15, 15)); math.Abs(v-1) > 1e-12 {
		t.Errorf("interior pixel = %f", v)
	}
	// Pixel centered at 90 covers [85,95): zero coverage.
	if v := real(g.At(9, 15)); v != 0 {
		t.Errorf("outside pixel = %f", v)
	}
	// Partial edge pixel: pixel 20 covers [195,205); the rect ends at
	// 203, so 8/10 of the pixel is covered.
	if v := real(g.At(20, 15)); math.Abs(v-0.8) > 1e-12 {
		t.Errorf("right edge pixel = %f, want 0.8", v)
	}
}

func TestRasterizeOverlapClamps(t *testing.T) {
	f := Frame{W: 32, H: 32, PixelNM: 10, OriginX: 0, OriginY: 0}
	// Two identical rects: union resolves, max transmission 1.
	p := geom.R(50, 50, 150, 150).Polygon()
	g := rasterize([]geom.Polygon{p, p}, f)
	for _, v := range g.Data {
		if real(v) > 1+1e-12 {
			t.Fatalf("transmission %f exceeds 1", real(v))
		}
	}
}

func TestClearFieldNormalization(t *testing.T) {
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	// Bright field, no chrome drawn: clear field intensity ~1.
	window := geom.R(-200, -200, 200, 200)
	im, err := sim.Aerial(nil, window)
	if err != nil {
		t.Fatal(err)
	}
	if v := im.At(0, 0); math.Abs(v-1) > 0.02 {
		t.Errorf("clear field intensity = %f, want ~1", v)
	}
	// A huge chrome plate: dark, ~0.
	plate := geom.R(-4000, -4000, 4000, 4000).Polygon()
	im2, err := sim.Aerial([]geom.Polygon{plate}, window)
	if err != nil {
		t.Fatal(err)
	}
	if v := im2.At(0, 0); v > 0.02 {
		t.Errorf("under-chrome intensity = %f", v)
	}
	// Dark-field tone: no openings -> dark.
	s := fastSettings()
	s.MaskTone = DarkField
	simDF, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	im3, err := simDF.Aerial(nil, window)
	if err != nil {
		t.Fatal(err)
	}
	if v := im3.At(0, 0); v > 1e-6 {
		t.Errorf("dark-field empty mask intensity = %f", v)
	}
	// Dark-field with a large opening -> bright at center.
	im4, err := simDF.Aerial([]geom.Polygon{plate}, window)
	if err != nil {
		t.Fatal(err)
	}
	if v := im4.At(0, 0); math.Abs(v-1) > 0.02 {
		t.Errorf("dark-field opening intensity = %f", v)
	}
}

func TestLineImageProfile(t *testing.T) {
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	// A single 250 nm chrome line on bright field: dark center, bright far.
	line := geom.R(-125, -2000, 125, 2000).Polygon()
	window := geom.R(-600, -300, 600, 300)
	im, err := sim.Aerial([]geom.Polygon{line}, window)
	if err != nil {
		t.Fatal(err)
	}
	center := im.At(0, 0)
	edge := im.At(125, 0)
	far := im.At(550, 0)
	if center > 0.3 {
		t.Errorf("line center intensity = %f, too bright for chrome", center)
	}
	if far < 0.7 {
		t.Errorf("far field = %f, should approach clear field", far)
	}
	if !(center < edge && edge < far) {
		t.Errorf("profile not monotone: center=%f edge=%f far=%f", center, edge, far)
	}
	// Symmetry about the line axis.
	if l, r := im.At(-200, 0), im.At(200, 0); math.Abs(l-r) > 0.01 {
		t.Errorf("asymmetric image: %f vs %f", l, r)
	}
}

func TestIsoDenseBiasEmerges(t *testing.T) {
	// The core proximity effect: the same drawn CD prints differently
	// through pitch. Assert the through-pitch CD spread is several nm.
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	cd := 180.0
	window := geom.R(-300, -200, 300, 200)
	measure := func(pitch float64) float64 {
		var mask []geom.Polygon
		if pitch == 0 { // isolated
			mask = []geom.Polygon{geom.R(-90, -2000, 90, 2000).Polygon()}
		} else {
			for i := -4; i <= 4; i++ {
				x := float64(i) * pitch
				mask = append(mask, geom.R(geom.Coord(x-cd/2), -2000, geom.Coord(x+cd/2), 2000).Polygon())
			}
		}
		im, err := sim.Aerial(mask, window)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := im.FindCrossing(0, 0, 1, 0, 0.3, 400)
		if !ok {
			t.Fatalf("no crossing at pitch %f", pitch)
		}
		return 2 * d
	}
	pitches := []float64{360, 430, 500, 600, 800, 0}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pitches {
		c := measure(p)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo < 5 {
		t.Errorf("through-pitch CD spread = %.1f nm, expected proximity effect >= 5 nm", hi-lo)
	}
}

func TestDefocusDegradesContrast(t *testing.T) {
	s := fastSettings()
	sim, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	var dense []geom.Polygon
	for i := -4; i <= 4; i++ {
		x := geom.Coord(i * 400)
		dense = append(dense, geom.R(x-100, -2000, x+100, 2000).Polygon())
	}
	window := geom.R(-250, -100, 250, 100)
	focus, err := sim.AerialDefocus(dense, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	defoc, err := sim.AerialDefocus(dense, window, 800)
	if err != nil {
		t.Fatal(err)
	}
	contrast := func(im *Image) float64 {
		mx, mn := im.MaxIn(window), im.MinIn(window)
		return (mx - mn) / (mx + mn)
	}
	c0, c1 := contrast(focus), contrast(defoc)
	if c1 >= c0 {
		t.Errorf("defocus should reduce contrast: %f -> %f", c0, c1)
	}
}

func TestLineEndPullbackEmerges(t *testing.T) {
	// The printed line end retreats from the drawn tip: intensity at the
	// drawn tip is well below the line-center intensity.
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	line := geom.R(-90, -3000, 90, 0).Polygon() // chrome line, tip at y=0
	window := geom.R(-300, -800, 300, 300)
	im, err := sim.Aerial([]geom.Polygon{line}, window)
	if err != nil {
		t.Fatal(err)
	}
	// Light wraps around the tip: the drawn tip point is brighter than
	// the line body.
	tip := im.At(0, 0)
	body := im.At(0, -700)
	if tip < body+0.1 {
		t.Errorf("no tip rounding: tip=%f body=%f", tip, body)
	}
	// The printed (dark) line end retreats inside the drawn tip:
	// walking from the dark body toward the tip crosses the threshold
	// before the drawn end.
	th := 0.3
	d, ok := im.FindCrossing(0, -700, 0, 1, th, 1000)
	if !ok {
		t.Fatal("no crossing along line axis")
	}
	printedTip := -700 + d
	if printedTip >= 0 {
		t.Errorf("printed tip at %f, expected pullback (< 0)", printedTip)
	}
	if printedTip < -250 {
		t.Errorf("pullback %f nm implausibly large", -printedTip)
	}
}

func TestImageSamplingHelpers(t *testing.T) {
	im := &Image{
		Frame: Frame{W: 4, H: 4, PixelNM: 10, OriginX: 0, OriginY: 0},
		I: []float64{
			0, 0, 0, 0,
			0, 1, 1, 0,
			0, 1, 1, 0,
			0, 0, 0, 0,
		},
	}
	if v := im.At(10, 10); v != 1 {
		t.Errorf("At grid point = %f", v)
	}
	if v := im.At(5, 10); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("At midpoint = %f", v)
	}
	if v := im.At(-100, -100); v != 0 {
		t.Errorf("outside = %f", v)
	}
	if v := im.AtPoint(geom.Pt(10, 20)); v != 1 {
		t.Errorf("AtPoint = %f", v)
	}
	cs := im.CrossSection(0, 10, 30, 10, 3)
	if len(cs) != 4 {
		t.Fatalf("cross section len = %d", len(cs))
	}
	if cs[1] != 1 || cs[0] != 0 {
		t.Errorf("cross section = %v", cs)
	}
	if mx := im.MaxIn(geom.R(0, 0, 30, 30)); mx != 1 {
		t.Errorf("MaxIn = %f", mx)
	}
	if mn := im.MinIn(geom.R(0, 0, 30, 30)); mn != 0 {
		t.Errorf("MinIn = %f", mn)
	}
}

func TestFindCrossingPrecision(t *testing.T) {
	// Build a linear ramp: crossing position is analytically known.
	f := Frame{W: 64, H: 4, PixelNM: 10, OriginX: 0, OriginY: 0}
	im := &Image{Frame: f, I: make([]float64, 64*4)}
	for y := 0; y < 4; y++ {
		for x := 0; x < 64; x++ {
			im.I[y*64+x] = float64(x) / 63
		}
	}
	// Intensity 0.5 at x = 31.5 px = 315 nm.
	d, ok := im.FindCrossing(0, 15, 1, 0, 0.5, 600)
	if !ok {
		t.Fatal("no crossing")
	}
	if math.Abs(d-315) > 0.5 {
		t.Errorf("crossing at %f, want 315", d)
	}
	// No crossing within range.
	if _, ok := im.FindCrossing(0, 15, -1, 0, 0.5, 600); ok {
		t.Error("crossing found walking off the low end")
	}
}

func TestNILSPositive(t *testing.T) {
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	line := geom.R(-125, -2000, 125, 2000).Polygon()
	im, err := sim.Aerial([]geom.Polygon{line}, geom.R(-400, -100, 400, 100))
	if err != nil {
		t.Fatal(err)
	}
	// NILS at the nominal edge.
	nils := im.NILS(125, 0, 1, 0, 250)
	if nils < 0.5 || nils > 10 {
		t.Errorf("NILS = %f, implausible", nils)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	s := fastSettings()
	s.Parallel = true
	simP, _ := New(s)
	s.Parallel = false
	simS, _ := New(s)
	mask := []geom.Polygon{geom.R(-90, -1000, 90, 1000).Polygon()}
	window := geom.R(-300, -300, 300, 300)
	imP, err := simP.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	imS, err := simS.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imP.I {
		if math.Abs(imP.I[i]-imS.I[i]) > 1e-12 {
			t.Fatalf("parallel/serial mismatch at %d: %g vs %g", i, imP.I[i], imS.I[i])
		}
	}
}

func TestOversizeWindowRejected(t *testing.T) {
	sim, err := New(fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Aerial(nil, geom.R(0, 0, 200000, 200000)); err == nil {
		t.Error("huge window should be rejected")
	}
	if _, err := sim.Aerial(nil, geom.Rect{}); err == nil {
		t.Error("empty window should be rejected")
	}
}

func TestAttPSMSteepensEdges(t *testing.T) {
	// Attenuated PSM's claim to fame: higher NILS at feature edges than
	// a binary mask, at the same geometry.
	base := fastSettings()
	binSim, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	psm := base
	psm.MaskTone = AttPSMBrightField
	psmSim, err := New(psm)
	if err != nil {
		t.Fatal(err)
	}
	var mask []geom.Polygon
	for i := -4; i <= 4; i++ {
		x := geom.Coord(i) * 500
		mask = append(mask, geom.R(x-125, -2000, x+125, 2000).Polygon())
	}
	window := geom.R(-400, -200, 400, 200)
	imBin, err := binSim.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	imPSM, err := psmSim.Aerial(mask, window)
	if err != nil {
		t.Fatal(err)
	}
	nilsBin := imBin.NILS(125, 0, 1, 0, 250)
	nilsPSM := imPSM.NILS(125, 0, 1, 0, 250)
	if nilsPSM <= nilsBin {
		t.Errorf("att-PSM NILS %.2f should beat binary %.2f", nilsPSM, nilsBin)
	}
	// The shifter leaks: intensity under the line is ~T, not 0.
	if v := imPSM.At(0, 0); v < 0.01 || v > 0.25 {
		t.Errorf("under-shifter intensity = %.3f, expected small but nonzero", v)
	}
}

func TestAttPSMDarkField(t *testing.T) {
	s := fastSettings()
	s.MaskTone = AttPSMDarkField
	sim, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	// Empty mask: uniform shifter background transmits T.
	im, err := sim.Aerial(nil, geom.R(-200, -200, 200, 200))
	if err != nil {
		t.Fatal(err)
	}
	if v := im.At(0, 0); math.Abs(v-0.06) > 0.01 {
		t.Errorf("shifter background intensity = %.3f, want ~0.06", v)
	}
	// A large opening transmits ~1.
	open := geom.R(-3000, -3000, 3000, 3000).Polygon()
	im2, err := sim.Aerial([]geom.Polygon{open}, geom.R(-200, -200, 200, 200))
	if err != nil {
		t.Fatal(err)
	}
	if v := im2.At(0, 0); math.Abs(v-1) > 0.03 {
		t.Errorf("opening intensity = %.3f", v)
	}
}

func TestToneString(t *testing.T) {
	names := map[Tone]string{
		BrightField: "bright-field", DarkField: "dark-field",
		AttPSMBrightField: "attpsm-bright", AttPSMDarkField: "attpsm-dark",
	}
	for tone, want := range names {
		if tone.String() != want {
			t.Errorf("%d = %q", tone, tone.String())
		}
	}
}

func TestAnnularImprovesDenseContrast(t *testing.T) {
	// Off-axis illumination's reason to exist: better modulation for
	// dense pitches near the resolution limit than conventional fill.
	conv := fastSettings()
	convSim, err := New(conv)
	if err != nil {
		t.Fatal(err)
	}
	ann := fastSettings()
	ann.Shape = Annular
	ann.SigmaOuter = 0.80
	ann.SigmaInner = 0.50
	annSim, err := New(ann)
	if err != nil {
		t.Fatal(err)
	}
	// Dense 150/150 lines: pitch 300 nm, near the limit for NA 0.68.
	var mask []geom.Polygon
	for i := -6; i <= 6; i++ {
		x := geom.Coord(i) * 300
		mask = append(mask, geom.R(x-75, -2000, x+75, 2000).Polygon())
	}
	window := geom.R(-300, -100, 300, 100)
	contrast := func(sim *Simulator) float64 {
		im, err := sim.Aerial(mask, window)
		if err != nil {
			t.Fatal(err)
		}
		mx, mn := im.MaxIn(window), im.MinIn(window)
		return (mx - mn) / (mx + mn)
	}
	cConv := contrast(convSim)
	cAnn := contrast(annSim)
	if cAnn <= cConv {
		t.Errorf("annular contrast %.3f should beat conventional %.3f at 300 nm pitch", cAnn, cConv)
	}
}

func TestDarkFieldContactPrinting(t *testing.T) {
	// The contact flow: square openings in chrome, dark-field tone.
	s := fastSettings()
	s.MaskTone = DarkField
	sim, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	// A 250 nm contact array at 600 pitch.
	var mask []geom.Polygon
	for r := -2; r <= 2; r++ {
		for c := -2; c <= 2; c++ {
			x, y := geom.Coord(c)*600, geom.Coord(r)*600
			mask = append(mask, geom.R(x-125, y-125, x+125, y+125).Polygon())
		}
	}
	im, err := sim.Aerial(mask, geom.R(-400, -400, 400, 400))
	if err != nil {
		t.Fatal(err)
	}
	center := im.At(0, 0)
	between := im.At(300, 0)
	if center < 0.4 {
		t.Errorf("contact center intensity = %.3f, too dim to open", center)
	}
	if between > center/2 {
		t.Errorf("between-contact intensity %.3f too bright vs center %.3f", between, center)
	}
	// The printed hole CD at a mid threshold: bright feature, so the
	// gap-style measurement applies (walk from the bright center).
	th := (center + between) / 2
	d1, ok1 := im.FindCrossing(0, 0, 1, 0, th, 400)
	d2, ok2 := im.FindCrossing(0, 0, -1, 0, th, 400)
	if !ok1 || !ok2 {
		t.Fatal("no hole contour")
	}
	cd := d1 + d2
	if cd < 150 || cd > 400 {
		t.Errorf("printed contact CD = %.1f, implausible for 250 drawn", cd)
	}
	// Corner rounding: the printed hole is effectively round, so the
	// diagonal extent is below sqrt(2) x the axis extent.
	dd1, ok := im.FindCrossing(0, 0, 1, 1, th, 400)
	if !ok {
		t.Fatal("no diagonal crossing")
	}
	if dd1 > d1*1.35 {
		t.Errorf("diagonal %.1f vs axis %.1f: square-ish hole, expected rounding", dd1, d1)
	}
}
