// Package cluster is the fault-tolerant distributed tile-correction
// protocol (DESIGN.md 5i): a coordinator that shards a job's canonical
// tile classes across workers registered over HTTP, built so the
// degenerate cluster — zero workers, all workers dead, any worker
// kill -9'd mid-shard — is never worse than single-process execution.
//
// The protocol is pull-based over four POST endpoints:
//
//	/cluster/join       worker registers, receives an id and lease TTL
//	/cluster/lease      worker asks for a shard (or is told to idle)
//	/cluster/heartbeat  worker extends its shard lease mid-solve
//	/cluster/result     worker posts its shard's per-class results
//
// Correctness never depends on a worker behaving: every assignment is
// a lease with a TTL, a background reconciler requeues any shard whose
// lease expires (process death, network partition, injected fault),
// idle workers steal duplicate assignments of straggler shards near
// job end, and the result fold is idempotent first-write-wins — the
// engine is deterministic, so duplicate completions are bit-identical
// and the second is simply dropped. Workers retry every comms edge
// with jittered exponential backoff and rejoin from scratch when the
// coordinator forgets them.
//
// The wire format for a solved class is core.CheckpointEntry, the PR 4
// checkpoint record: canonical-frame polygons plus RMS and iteration
// count. A remote result folds into the run through the same path a
// resumed checkpoint entry does, which is what makes distributed
// output bit-identical to local output.
package cluster

import (
	"encoding/json"

	"goopc/internal/core"
	"goopc/internal/geom"
)

// JobPayload is the flow context a shard's classes solve under. Flow
// carries the submitting job's FlowSpec verbatim (the server package
// owns that type; the coordinator never interprets it), so a worker
// calibrates exactly the flow the coordinator's local path would use.
type JobPayload struct {
	Job  string          `json:"job"`
	Flow json.RawMessage `json:"flow"`
	// Level is the numeric core.Level; Tile the tile size (DBU); Pass
	// the context pass the classes belong to.
	Level int        `json:"level"`
	Tile  geom.Coord `json:"tile"`
	Pass  int        `json:"pass"`
}

// ClassWork is one canonical tile class to solve: the mirror of
// core.ClassSolveRequest on the wire.
type ClassWork struct {
	Key    string         `json:"key"`
	Core   geom.Rect      `json:"core"`
	Active []geom.Polygon `json:"active"`
	Halo   []geom.Polygon `json:"halo,omitempty"`
}

// ClassResult is one solved class: the checkpoint record doubling as
// the wire format. Degraded names the resilience-ladder mode when the
// worker could not solve the class cleanly ("rules"/"uncorrected");
// Err carries a worker-side failure. Either being non-empty means the
// class is unsolved — the coordinator counts it served but folds
// nothing, and the submitting run's local ladder handles it, keeping
// degraded geometry out of checkpoints.
type ClassResult struct {
	Key      string               `json:"key"`
	Entry    core.CheckpointEntry `json:"entry"`
	Degraded string               `json:"degraded,omitempty"`
	Err      string               `json:"err,omitempty"`
}

// JoinRequest registers a worker.
type JoinRequest struct {
	Name string `json:"name"`
}

// JoinResponse assigns the worker its id and the lease parameters it
// must heartbeat within.
type JoinResponse struct {
	WorkerID    string `json:"worker_id"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	PollDelayMS int64  `json:"poll_delay_ms"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Assignment is one leased shard: a slice of a job's classes under one
// payload. Stolen marks a duplicate assignment of a shard another
// worker is still holding (work-stealing near job end).
type Assignment struct {
	ShardID string      `json:"shard_id"`
	Payload JobPayload  `json:"payload"`
	Classes []ClassWork `json:"classes"`
	Stolen  bool        `json:"stolen,omitempty"`
}

// LeaseResponse carries an assignment, or nothing (idle — poll again
// after PollDelayMS).
type LeaseResponse struct {
	Assignment *Assignment `json:"assignment,omitempty"`
}

// HeartbeatRequest extends a shard lease; Done reports solved-so-far
// for observability.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	ShardID  string `json:"shard_id"`
	Done     int    `json:"done"`
}

// HeartbeatResponse; Abandon tells the worker to drop the shard — it
// was requeued after a lease expiry, completed by another worker, or
// its job is gone. The worker stops solving and asks for a new lease.
type HeartbeatResponse struct {
	Abandon bool `json:"abandon,omitempty"`
}

// ResultRequest posts a completed (or partially completed) shard.
type ResultRequest struct {
	WorkerID string        `json:"worker_id"`
	ShardID  string        `json:"shard_id"`
	Results  []ClassResult `json:"results"`
}

// ResultResponse reports how many class results were folded (already-
// folded duplicates and unknown shards count zero — both are normal
// after a requeue, not errors).
type ResultResponse struct {
	Folded int `json:"folded"`
}
