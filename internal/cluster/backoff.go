package cluster

import (
	"context"
	"math/rand"
	"time"
)

// Backoff produces jittered exponential retry delays: Base doubling
// per attempt up to Max, each delay multiplied by a uniform factor in
// [0.5, 1.5) so a fleet of workers retrying the same dead coordinator
// does not thunder back in lockstep. The zero value uses sane
// defaults. Not safe for concurrent use; each retry loop owns one.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	n    int
}

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << b.n
	if d > max || d <= 0 {
		d = max
	} else {
		b.n++
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// Reset restarts the schedule from Base (call after a success).
func (b *Backoff) Reset() { b.n = 0 }

// SleepCtx sleeps for d honoring ctx; reports whether the sleep
// completed (false means ctx was cancelled first).
func SleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
