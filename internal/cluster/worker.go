package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"goopc/internal/faults"
	"goopc/internal/obs"
)

// SolveFunc executes one class of an assignment. Implementations fill
// Entry on success, or Degraded/Err when the class could not be solved
// cleanly; the worker loop sets Key. It must honor ctx — cancellation
// means the shard was abandoned.
type SolveFunc func(ctx context.Context, payload JobPayload, work ClassWork) ClassResult

// WorkerConfig configures one cluster worker process (or goroutine).
type WorkerConfig struct {
	// Coordinator is the coordinator base URL, e.g. "http://host:9800".
	Coordinator string
	// Name labels the worker in cluster status (hostname+pid by
	// convention; opcd -worker fills it in).
	Name string
	// Solve executes one class. Required.
	Solve SolveFunc
	// HTTP defaults to a client with a 30s timeout.
	HTTP *http.Client
	// FaultPlan arms the worker-side chaos probes (sites "worker.join",
	// "worker.lease", "worker.heartbeat", "worker.result" on the comms
	// edges and "worker.solve" before each class): errors exercise the
	// retry loops, delays make stragglers, panics kill the worker.
	FaultPlan *faults.Plan
	// Log may be nil.
	Log *obs.Logger
}

// RunWorker joins the coordinator and processes shard leases until ctx
// ends: lease → heartbeat while solving → post results, with jittered
// exponential backoff on every comms edge and a from-scratch rejoin
// whenever the coordinator says it forgot us (410 after a coordinator
// restart or a worker-table expiry). It only returns on ctx
// cancellation — a worker outlives any number of coordinator outages.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Solve == nil {
		return fmt.Errorf("cluster: WorkerConfig.Solve is required")
	}
	h := cfg.HTTP
	if h == nil {
		h = &http.Client{Timeout: 30 * time.Second}
	}
	w := &workerLoop{cfg: cfg, http: h, log: cfg.Log}
	for {
		if err := w.join(ctx); err != nil {
			return err // ctx ended
		}
		if err := w.serve(ctx); err != nil {
			return err // ctx ended
		}
		// serve returned to rejoin (coordinator forgot us).
	}
}

type workerLoop struct {
	cfg  WorkerConfig
	http *http.Client
	log  *obs.Logger

	id        string
	leaseTTL  time.Duration
	pollDelay time.Duration
}

// errRejoin signals that the coordinator no longer knows this worker.
var errRejoin = fmt.Errorf("cluster: worker must rejoin")

// join registers with the coordinator, retrying forever with backoff.
func (w *workerLoop) join(ctx context.Context) error {
	var bo Backoff
	for {
		var resp JoinResponse
		err := w.post(ctx, "worker.join", "/cluster/join", JoinRequest{Name: w.cfg.Name}, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.leaseTTL = time.Duration(resp.LeaseTTLMS) * time.Millisecond
			w.pollDelay = time.Duration(resp.PollDelayMS) * time.Millisecond
			if w.leaseTTL <= 0 {
				w.leaseTTL = 5 * time.Second
			}
			if w.pollDelay <= 0 {
				w.pollDelay = 250 * time.Millisecond
			}
			w.log.Infof("joined %s as %s (lease %s)", w.cfg.Coordinator, w.id, w.leaseTTL)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log.Verbosef("join: %v (retrying)", err)
		if !SleepCtx(ctx, bo.Next()) {
			return ctx.Err()
		}
	}
}

// serve polls for leases until ctx ends (error return) or the
// coordinator forgets us (nil return → caller rejoins).
func (w *workerLoop) serve(ctx context.Context) error {
	var bo Backoff
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var resp LeaseResponse
		err := w.post(ctx, "worker.lease", "/cluster/lease", LeaseRequest{WorkerID: w.id}, &resp)
		switch {
		case err == errRejoin:
			return nil
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.log.Verbosef("lease: %v (retrying)", err)
			if !SleepCtx(ctx, bo.Next()) {
				return ctx.Err()
			}
			continue
		}
		bo.Reset()
		if resp.Assignment == nil {
			if !SleepCtx(ctx, w.pollDelay) {
				return ctx.Err()
			}
			continue
		}
		w.runShard(ctx, resp.Assignment)
	}
}

// runShard solves every class of an assignment under a heartbeat, then
// posts the results. An Abandon heartbeat response (the shard was
// requeued or completed elsewhere) cancels the solve mid-class and
// skips the post — whatever we computed is either already folded or
// will be recomputed identically by the new holder.
func (w *workerLoop) runShard(ctx context.Context, a *Assignment) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(shardCtx, a.ShardID, cancel)
	}()

	w.log.Infof("shard %s: %d classes (job %s pass %d, stolen=%t)",
		a.ShardID, len(a.Classes), a.Payload.Job, a.Payload.Pass, a.Stolen)
	results := make([]ClassResult, 0, len(a.Classes))
	for _, cw := range a.Classes {
		if shardCtx.Err() != nil {
			break
		}
		res := w.solveOne(shardCtx, a.Payload, cw)
		res.Key = cw.Key
		results = append(results, res)
	}
	cancel()
	<-hbDone
	if ctx.Err() != nil || len(results) < len(a.Classes) {
		w.log.Infof("shard %s abandoned after %d/%d classes", a.ShardID, len(results), len(a.Classes))
		return
	}
	w.postResults(ctx, a.ShardID, results)
}

// solveOne runs one class through the chaos probe and the solver,
// converting a cancelled solve or a fired probe into an unsolved
// ClassResult (panics are left to kill the process — that is the
// fault being modeled).
func (w *workerLoop) solveOne(ctx context.Context, pl JobPayload, cw ClassWork) ClassResult {
	if err := w.cfg.FaultPlan.Probe(ctx, "worker.solve"); err != nil {
		return ClassResult{Err: "chaos: " + err.Error()}
	}
	if ctx.Err() != nil {
		return ClassResult{Err: ctx.Err().Error()}
	}
	return w.cfg.Solve(ctx, pl, cw)
}

// heartbeat extends the shard lease at TTL/3 until ctx ends, calling
// abandon when the coordinator disowns the shard. Transient heartbeat
// failures are absorbed — if they persist past the TTL the coordinator
// requeues the shard and the next heartbeat comes back Abandon.
func (w *workerLoop) heartbeat(ctx context.Context, shardID string, abandon context.CancelFunc) {
	tick := time.NewTicker(w.leaseTTL / 3)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var resp HeartbeatResponse
		err := w.post(ctx, "worker.heartbeat", "/cluster/heartbeat",
			HeartbeatRequest{WorkerID: w.id, ShardID: shardID}, &resp)
		if err == errRejoin || (err == nil && resp.Abandon) {
			abandon()
			return
		}
		if err != nil {
			w.log.Verbosef("heartbeat %s: %v", shardID, err)
		}
	}
}

// postResults delivers a completed shard with bounded retries. Giving
// up is safe: the lease expires and the shard is requeued.
func (w *workerLoop) postResults(ctx context.Context, shardID string, results []ClassResult) {
	var bo Backoff
	for attempt := 0; attempt < 5; attempt++ {
		var resp ResultResponse
		err := w.post(ctx, "worker.result", "/cluster/result",
			ResultRequest{WorkerID: w.id, ShardID: shardID, Results: results}, &resp)
		if err == nil {
			w.log.Infof("shard %s: %d/%d results folded", shardID, resp.Folded, len(results))
			return
		}
		if err == errRejoin || ctx.Err() != nil {
			return
		}
		w.log.Verbosef("result %s: %v (retrying)", shardID, err)
		if !SleepCtx(ctx, bo.Next()) {
			return
		}
	}
	w.log.Errorf("shard %s: result delivery failed; lease expiry will requeue it", shardID)
}

// post is one probed JSON round trip to the coordinator. It returns
// errRejoin on 410 (the coordinator forgot this worker) and an
// ordinary error on anything else retryable.
func (w *workerLoop) post(ctx context.Context, site, path string, in, out any) error {
	if err := w.cfg.FaultPlan.Probe(ctx, site); err != nil {
		return err
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return errRejoin
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("%s: %s", path, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
