package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/obs"
)

// Config tunes the coordinator. The zero value works; every field has
// a production default.
type Config struct {
	// LeaseTTL is how long a shard assignment stays valid without a
	// heartbeat before the reconciler requeues it (default 5s). Workers
	// heartbeat at TTL/3.
	LeaseTTL time.Duration
	// PollDelay is the idle re-poll interval suggested to workers when
	// no work is pending (default 250ms).
	PollDelay time.Duration
	// ShardClasses caps the classes per shard (default 4). Small shards
	// cost more round trips but bound the work lost to a dead worker
	// and give stealing its granularity.
	ShardClasses int
	// RequeueLimit is how many times one shard may be requeued before
	// the coordinator gives up on it and leaves its classes to the
	// submitting run's local fallback (default 3).
	RequeueLimit int
	// CircuitCooldown is how long Solve short-circuits to local
	// execution after a job ends with zero remote results despite
	// healthy workers (default 15s).
	CircuitCooldown time.Duration
	// FaultPlan arms the coordinator-side chaos probes (sites
	// "rpc.join", "rpc.lease", "rpc.heartbeat", "rpc.result"); an
	// injected error turns into a 503 the worker retries through.
	FaultPlan *faults.Plan
	// Log may be nil (every method on a nil *obs.Logger is a no-op);
	// Registry defaults to obs.Default().
	Log      *obs.Logger
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.PollDelay <= 0 {
		c.PollDelay = 250 * time.Millisecond
	}
	if c.ShardClasses <= 0 {
		c.ShardClasses = 4
	}
	if c.RequeueLimit <= 0 {
		c.RequeueLimit = 3
	}
	if c.CircuitCooldown <= 0 {
		c.CircuitCooldown = 15 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	// shard is the shard id this worker currently holds ("" idle) —
	// each worker holds at most one shard at a time.
	shard string
}

// solveJob is one Solve call in flight: the barrier the submitting
// run's scheduler waits on.
type solveJob struct {
	payload   JobPayload
	remaining int
	results   map[string]core.CheckpointEntry
	done      chan struct{}
	closed    bool
}

func (j *solveJob) finishLocked() {
	if !j.closed && j.remaining <= 0 {
		j.closed = true
		close(j.done)
	}
}

// shard is one leased slice of a job's classes.
type shard struct {
	id      string
	job     *solveJob
	classes []ClassWork
	// pending is the class keys not yet folded or failed.
	pending map[string]bool
	// primary / stolen are the holders ("" unheld). leaseUntil is
	// shared: either holder's heartbeat extends it.
	primary    string
	stolen     string
	leaseUntil time.Time
	assignedAt time.Time
	requeues   int
	queued     bool // on the pending list, awaiting a worker
}

func (s *shard) held() bool { return s.primary != "" || s.stolen != "" }

// Coordinator owns the cluster protocol state: the worker table, the
// shard queue and leases, the reconciler, and the idempotent result
// fold. One Coordinator serves any number of concurrent Solve calls.
type Coordinator struct {
	cfg Config
	log *obs.Logger
	met *metrics

	mu           sync.Mutex
	workers      map[string]*workerState
	shards       map[string]*shard
	pending      []*shard // FIFO of unheld shards
	jobs         int      // Solve calls in flight
	wseq, sseq   int64
	circuitUntil time.Time

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a coordinator. Call Start before serving and Stop on
// shutdown.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:     cfg,
		log:     cfg.Log,
		met:     newMetrics(cfg.Registry),
		workers: map[string]*workerState{},
		shards:  map[string]*shard{},
		stop:    make(chan struct{}),
	}
}

// Start launches the lease reconciler.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go c.reconcileLoop()
}

// Stop halts the reconciler (idempotent). In-flight Solve calls are
// not aborted; their callers' contexts own that.
func (c *Coordinator) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}

func (c *Coordinator) reconcileLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.reconcile(time.Now())
		}
	}
}

// reconcile requeues expired shards and prunes dead workers — the
// recovery path for kill -9, partitions, and injected faults. A shard
// over its requeue budget is abandoned: its classes count as served-
// unsolved so the submitting run's local ladder picks them up instead
// of the job hanging forever on a poisonous shard.
func (c *Coordinator) reconcile(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, ws := range c.workers {
		if now.Sub(ws.lastSeen) > 3*c.cfg.LeaseTTL {
			c.log.Infof("worker %s (%s) expired", id, ws.name)
			delete(c.workers, id)
			c.met.workers.Set(float64(len(c.workers)))
			// Its shard, if any, is handled by lease expiry below.
		}
	}
	for _, sh := range c.shards {
		if !sh.held() || now.Before(sh.leaseUntil) {
			continue
		}
		c.releaseHoldersLocked(sh)
		if sh.requeues >= c.cfg.RequeueLimit {
			c.log.Errorf("shard %s abandoned after %d requeues (%d classes to local fallback)",
				sh.id, sh.requeues, len(sh.pending))
			c.met.abandoned.Inc()
			c.failShardLocked(sh)
			continue
		}
		sh.requeues++
		c.met.requeued.Inc()
		c.log.Infof("shard %s lease expired; requeued (%d/%d)", sh.id, sh.requeues, c.cfg.RequeueLimit)
		sh.queued = true
		c.pending = append(c.pending, sh)
	}
	// Queued shards are only ever served by worker lease polls, so a
	// cluster whose last worker died (or expired before its first lease)
	// would hold every pending shard — and the Solve barrier — forever.
	// Fail them instead: the classes fall through to the submitting
	// run's local ladder, preserving the guarantee that a coordinator
	// with zero workers behaves like a plain daemon.
	if len(c.pending) > 0 && c.healthyLocked(now) == 0 {
		for _, sh := range c.pending {
			if !sh.queued || c.shards[sh.id] == nil {
				continue // detached while queued
			}
			c.log.Errorf("shard %s abandoned while queued: no healthy workers (%d classes to local fallback)",
				sh.id, len(sh.pending))
			c.met.abandoned.Inc()
			sh.queued = false
			c.failShardLocked(sh)
		}
		c.pending = c.pending[:0]
	}
}

// releaseHoldersLocked detaches a shard from its holders.
func (c *Coordinator) releaseHoldersLocked(sh *shard) {
	for _, wid := range []string{sh.primary, sh.stolen} {
		if ws := c.workers[wid]; ws != nil && ws.shard == sh.id {
			ws.shard = ""
		}
	}
	sh.primary, sh.stolen = "", ""
}

// failShardLocked gives up on a shard: its unfolded classes are
// counted served so the Solve barrier releases and the local path
// solves them.
func (c *Coordinator) failShardLocked(sh *shard) {
	delete(c.shards, sh.id)
	sh.job.remaining -= len(sh.pending)
	sh.pending = nil
	sh.job.finishLocked()
}

// healthyLocked counts workers seen within the expiry horizon.
func (c *Coordinator) healthyLocked(now time.Time) int {
	n := 0
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= 3*c.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// Solve shards the classes across the registered workers and blocks
// until every class is folded, failed, or ctx ends. The returned map
// holds the cleanly solved classes; missing keys are the caller's to
// solve locally (the core.ClassSolver contract). With no healthy
// workers — or while the failure circuit is open — it returns nil
// immediately: the degenerate cluster costs one mutex acquisition.
func (c *Coordinator) Solve(ctx context.Context, payload JobPayload, classes []ClassWork) map[string]core.CheckpointEntry {
	if len(classes) == 0 {
		return nil
	}
	now := time.Now()
	c.mu.Lock()
	if now.Before(c.circuitUntil) {
		c.met.localFallbacks.Inc()
		c.mu.Unlock()
		return nil
	}
	if c.healthyLocked(now) == 0 {
		c.met.localFallbacks.Inc()
		c.mu.Unlock()
		return nil
	}
	job := &solveJob{
		payload:   payload,
		remaining: len(classes),
		results:   make(map[string]core.CheckpointEntry, len(classes)),
		done:      make(chan struct{}),
	}
	c.jobs++
	for off := 0; off < len(classes); off += c.cfg.ShardClasses {
		end := off + c.cfg.ShardClasses
		if end > len(classes) {
			end = len(classes)
		}
		c.sseq++
		sh := &shard{
			id:      fmt.Sprintf("s%d", c.sseq),
			job:     job,
			classes: classes[off:end],
			pending: make(map[string]bool, end-off),
			queued:  true,
		}
		for _, cw := range sh.classes {
			sh.pending[cw.Key] = true
		}
		c.shards[sh.id] = sh
		c.pending = append(c.pending, sh)
	}
	c.mu.Unlock()

	select {
	case <-job.done:
	case <-ctx.Done():
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs--
	c.detachJobLocked(job)
	if len(job.results) == 0 && ctx.Err() == nil {
		// Healthy-looking workers produced nothing: open the circuit so
		// the next runs go straight to local execution instead of
		// paying the barrier again.
		c.circuitUntil = time.Now().Add(c.cfg.CircuitCooldown)
		c.met.circuitOpens.Inc()
		c.log.Errorf("job %s: no remote results; circuit open for %s", payload.Job, c.cfg.CircuitCooldown)
	} else if len(job.results) > 0 {
		c.circuitUntil = time.Time{}
	}
	c.met.classesRemote.Add(int64(len(job.results)))
	return job.results
}

// detachJobLocked removes a finished/cancelled job's shards so late
// workers get Abandon instead of folding into a dead barrier.
func (c *Coordinator) detachJobLocked(job *solveJob) {
	for id, sh := range c.shards {
		if sh.job == job {
			c.releaseHoldersLocked(sh)
			sh.queued = false
			delete(c.shards, id)
		}
	}
	live := c.pending[:0]
	for _, sh := range c.pending {
		if sh.job != job && sh.queued {
			live = append(live, sh)
		}
	}
	c.pending = live
	job.remaining = 0
	job.finishLocked()
}

// Register mounts the protocol endpoints on a Go 1.22 pattern mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /cluster/join", c.handleJoin)
	mux.HandleFunc("POST /cluster/lease", c.handleLease)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/result", c.handleResult)
	mux.HandleFunc("GET /cluster/status", c.handleStatus)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// probe runs the coordinator-side chaos probe for an rpc site; a fired
// error becomes a 503 the worker's retry loop absorbs.
func (c *Coordinator) probe(w http.ResponseWriter, r *http.Request, site string) bool {
	if err := c.cfg.FaultPlan.Probe(r.Context(), site); err != nil {
		writeError(w, http.StatusServiceUnavailable, "chaos: "+err.Error())
		return false
	}
	return true
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 256<<20)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	if !c.probe(w, r, "rpc.join") {
		return
	}
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.wseq++
	ws := &workerState{id: fmt.Sprintf("w%d", c.wseq), name: req.Name, lastSeen: time.Now()}
	c.workers[ws.id] = ws
	c.met.joins.Inc()
	c.met.workers.Set(float64(len(c.workers)))
	c.mu.Unlock()
	c.log.Infof("worker %s (%s) joined", ws.id, ws.name)
	writeJSON(w, http.StatusOK, JoinResponse{
		WorkerID:    ws.id,
		LeaseTTLMS:  c.cfg.LeaseTTL.Milliseconds(),
		PollDelayMS: c.cfg.PollDelay.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if !c.probe(w, r, "rpc.lease") {
		return
	}
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		writeError(w, http.StatusGone, "unknown worker (rejoin)")
		return
	}
	ws.lastSeen = now
	c.met.leases.Inc()
	// Lost-response retry: the worker already holds a shard it never
	// learned about — re-deliver the same assignment.
	if sh := c.shards[ws.shard]; sh != nil && sh.held() {
		writeJSON(w, http.StatusOK, LeaseResponse{Assignment: c.assignmentLocked(sh, ws.id)})
		return
	}
	ws.shard = ""
	// Pending work first; otherwise steal a straggler.
	for len(c.pending) > 0 {
		sh := c.pending[0]
		c.pending = c.pending[1:]
		if !sh.queued || c.shards[sh.id] == nil {
			continue // detached while queued
		}
		sh.queued = false
		sh.primary = ws.id
		sh.leaseUntil = now.Add(c.cfg.LeaseTTL)
		sh.assignedAt = now
		ws.shard = sh.id
		c.met.assigned.Inc()
		writeJSON(w, http.StatusOK, LeaseResponse{Assignment: c.assignmentLocked(sh, ws.id)})
		return
	}
	if sh := c.stealLocked(ws.id, now); sh != nil {
		ws.shard = sh.id
		c.met.stolen.Inc()
		c.log.Infof("worker %s steals straggler shard %s from %s", ws.id, sh.id, sh.primary)
		writeJSON(w, http.StatusOK, LeaseResponse{Assignment: c.assignmentLocked(sh, ws.id)})
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{})
}

// stealLocked picks the oldest-running singly-held shard for an idle
// worker to duplicate — work-stealing near job end, when the pending
// queue is dry but stragglers hold the barrier. The duplicate fold is
// idempotent, so racing completions are safe by construction.
func (c *Coordinator) stealLocked(wid string, now time.Time) *shard {
	var best *shard
	for _, sh := range c.shards {
		if sh.queued || sh.primary == "" || sh.stolen != "" || sh.primary == wid {
			continue
		}
		if best == nil || sh.assignedAt.Before(best.assignedAt) {
			best = sh
		}
	}
	if best != nil {
		best.stolen = wid
		best.leaseUntil = now.Add(c.cfg.LeaseTTL)
	}
	return best
}

func (c *Coordinator) assignmentLocked(sh *shard, wid string) *Assignment {
	pl := sh.job.payload
	return &Assignment{
		ShardID: sh.id,
		Payload: pl,
		Classes: sh.classes,
		Stolen:  sh.primary != wid,
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !c.probe(w, r, "rpc.heartbeat") {
		return
	}
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		writeError(w, http.StatusGone, "unknown worker (rejoin)")
		return
	}
	ws.lastSeen = now
	sh := c.shards[req.ShardID]
	if sh == nil || (sh.primary != req.WorkerID && sh.stolen != req.WorkerID) {
		// Completed by someone else, requeued after an expiry, or the
		// job is gone: stop working on it.
		if ws.shard == req.ShardID {
			ws.shard = ""
		}
		writeJSON(w, http.StatusOK, HeartbeatResponse{Abandon: true})
		return
	}
	sh.leaseUntil = now.Add(c.cfg.LeaseTTL)
	writeJSON(w, http.StatusOK, HeartbeatResponse{})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	if !c.probe(w, r, "rpc.result") {
		return
	}
	var req ResultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws := c.workers[req.WorkerID]; ws != nil {
		ws.lastSeen = time.Now()
		if ws.shard == req.ShardID {
			ws.shard = ""
		}
	}
	sh := c.shards[req.ShardID]
	if sh == nil {
		// Already completed by a duplicate holder, abandoned, or the job
		// ended. Not an error: accept and drop (idempotent fold).
		c.met.duplicates.Inc()
		writeJSON(w, http.StatusOK, ResultResponse{})
		return
	}
	folded := 0
	for _, res := range req.Results {
		if !sh.pending[res.Key] {
			c.met.duplicates.Inc()
			continue
		}
		delete(sh.pending, res.Key)
		sh.job.remaining--
		if res.Err != "" || res.Degraded != "" {
			// Served but unsolved: the class goes to the submitting
			// run's local ladder. Folding a degraded result would let it
			// into checkpoints and break the fault-free-resume
			// invariant.
			c.met.classesFailed.Inc()
			continue
		}
		sh.job.results[res.Key] = res.Entry
		folded++
	}
	if len(sh.pending) == 0 {
		c.releaseHoldersLocked(sh)
		delete(c.shards, sh.id)
		c.met.completed.Inc()
		sh.job.finishLocked()
	}
	writeJSON(w, http.StatusOK, ResultResponse{Folded: folded})
}

// WorkerStatus is one row of the cluster status report.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Shard    string `json:"shard,omitempty"`
	LastSeen string `json:"last_seen"`
}

// StatusReport is the /cluster/status document (also embedded in the
// opcd /status view).
type StatusReport struct {
	Workers        []WorkerStatus `json:"workers"`
	Jobs           int            `json:"jobs"`
	PendingShards  int            `json:"pending_shards"`
	InflightShards int            `json:"inflight_shards"`
	CircuitOpen    bool           `json:"circuit_open"`
	// Lifetime counters.
	Assigned   int64 `json:"shards_assigned"`
	Completed  int64 `json:"shards_completed"`
	Requeued   int64 `json:"shards_requeued"`
	Stolen     int64 `json:"shards_stolen"`
	Abandoned  int64 `json:"shards_abandoned"`
	Remote     int64 `json:"classes_remote"`
	Failed     int64 `json:"classes_failed"`
	Duplicates int64 `json:"duplicate_results"`
	Fallbacks  int64 `json:"local_fallbacks"`
}

// Status snapshots the cluster state.
func (c *Coordinator) Status() StatusReport {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusReport{
		Jobs:        c.jobs,
		CircuitOpen: now.Before(c.circuitUntil),
		Assigned:    c.met.assigned.Value(),
		Completed:   c.met.completed.Value(),
		Requeued:    c.met.requeued.Value(),
		Stolen:      c.met.stolen.Value(),
		Abandoned:   c.met.abandoned.Value(),
		Remote:      c.met.classesRemote.Value(),
		Failed:      c.met.classesFailed.Value(),
		Duplicates:  c.met.duplicates.Value(),
		Fallbacks:   c.met.localFallbacks.Value(),
	}
	for _, sh := range c.shards {
		if sh.queued {
			st.PendingShards++
		} else if sh.held() {
			st.InflightShards++
		}
	}
	for _, ws := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: ws.id, Name: ws.name, Shard: ws.shard,
			LastSeen: now.Sub(ws.lastSeen).Truncate(time.Millisecond).String() + " ago",
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}
