package cluster

import "goopc/internal/obs"

// metrics is the coordinator's goopc_cluster_* series: the lease /
// requeue / steal lifecycle, the idempotent-fold accounting, and the
// graceful-degradation counters the robustness story is judged by.
type metrics struct {
	workers        *obs.Gauge
	joins          *obs.Counter
	leases         *obs.Counter
	assigned       *obs.Counter
	completed      *obs.Counter
	requeued       *obs.Counter
	stolen         *obs.Counter
	abandoned      *obs.Counter
	classesRemote  *obs.Counter
	classesFailed  *obs.Counter
	duplicates     *obs.Counter
	localFallbacks *obs.Counter
	circuitOpens   *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		workers: reg.Gauge("goopc_cluster_workers",
			"workers currently registered with the coordinator"),
		joins: reg.Counter("goopc_cluster_joins_total",
			"worker join requests accepted"),
		leases: reg.Counter("goopc_cluster_leases_total",
			"lease polls served (with or without an assignment)"),
		assigned: reg.Counter("goopc_cluster_shards_assigned_total",
			"shard assignments handed to workers (requeues re-count)"),
		completed: reg.Counter("goopc_cluster_shards_completed_total",
			"shards whose every class was folded or failed"),
		requeued: reg.Counter("goopc_cluster_shards_requeued_total",
			"shards requeued after a lease expiry"),
		stolen: reg.Counter("goopc_cluster_shards_stolen_total",
			"duplicate straggler assignments handed to idle workers"),
		abandoned: reg.Counter("goopc_cluster_shards_abandoned_total",
			"shards given up after the requeue limit (classes fell back to local)"),
		classesRemote: reg.Counter("goopc_cluster_classes_remote_total",
			"tile classes solved remotely and folded into runs"),
		classesFailed: reg.Counter("goopc_cluster_classes_failed_total",
			"tile classes reported unsolved by workers (left to local fallback)"),
		duplicates: reg.Counter("goopc_cluster_duplicate_results_total",
			"class results dropped by the idempotent first-write-wins fold"),
		localFallbacks: reg.Counter("goopc_cluster_local_fallbacks_total",
			"Solve calls short-circuited to local execution (no workers or open circuit)"),
		circuitOpens: reg.Counter("goopc_cluster_circuit_opens_total",
			"times the no-results circuit opened"),
	}
}
