package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/obs"
)

// testConfig is tuned for fast protocol tests: tiny leases, eager
// polls, 2-class shards.
func testConfig() Config {
	return Config{
		LeaseTTL:        300 * time.Millisecond,
		PollDelay:       10 * time.Millisecond,
		ShardClasses:    2,
		RequeueLimit:    3,
		CircuitCooldown: 200 * time.Millisecond,
		Registry:        obs.NewRegistry(),
	}
}

func startCoord(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	co := New(cfg)
	co.Start()
	mux := http.NewServeMux()
	co.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		co.Stop()
	})
	return co, ts
}

// fakeEntry derives a recognizable deterministic result per class key.
func fakeEntry(key string) core.CheckpointEntry {
	return core.CheckpointEntry{
		Polys: []geom.Polygon{geom.R(0, 0, geom.Coord(len(key)), 10).Polygon()},
		RMS:   float64(len(key)) + 0.5,
		Iters: 3,
	}
}

func fakeSolve(ctx context.Context, pl JobPayload, cw ClassWork) ClassResult {
	return ClassResult{Entry: fakeEntry(cw.Key)}
}

func classWorks(n int) []ClassWork {
	out := make([]ClassWork, n)
	for i := range out {
		out[i] = ClassWork{Key: fmt.Sprintf("class-%03d", i), Core: geom.R(0, 0, 100, 100)}
	}
	return out
}

// startWorker runs a RunWorker loop for the test's lifetime.
func startWorker(t *testing.T, url, name string, solve SolveFunc, plan *faults.Plan) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, WorkerConfig{Coordinator: url, Name: name, Solve: solve, FaultPlan: plan})
	}()
	stop := func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

func waitWorkers(t *testing.T, co *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(co.Status().Workers) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never saw %d workers (status %+v)", n, co.Status())
}

func TestClusterSolveBasic(t *testing.T) {
	co, ts := startCoord(t, testConfig())
	startWorker(t, ts.URL, "a", fakeSolve, nil)
	startWorker(t, ts.URL, "b", fakeSolve, nil)
	waitWorkers(t, co, 2)

	works := classWorks(9)
	got := co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	if len(got) != len(works) {
		t.Fatalf("solved %d of %d classes", len(got), len(works))
	}
	for _, cw := range works {
		ent, ok := got[cw.Key]
		if !ok {
			t.Fatalf("class %s missing", cw.Key)
		}
		want := fakeEntry(cw.Key)
		if ent.RMS != want.RMS || ent.Iters != want.Iters || len(ent.Polys) != 1 {
			t.Fatalf("class %s entry mangled: %+v", cw.Key, ent)
		}
	}
	st := co.Status()
	if st.Completed == 0 || st.Remote != int64(len(works)) {
		t.Fatalf("status accounting off: %+v", st)
	}
}

func TestClusterZeroWorkersLocalFallback(t *testing.T) {
	co, _ := startCoord(t, testConfig())
	t0 := time.Now()
	got := co.Solve(context.Background(), JobPayload{Job: "j1"}, classWorks(4))
	if got != nil {
		t.Fatalf("no-worker solve returned %d entries, want nil", len(got))
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("no-worker solve took %s, want immediate", d)
	}
	if st := co.Status(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
}

// postJSON is a bare-protocol helper for tests that play a misbehaving
// worker by hand.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, _ := json.Marshal(in)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 400 {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func joinManual(t *testing.T, url, name string) string {
	var jr JoinResponse
	if code := postJSON(t, url+"/cluster/join", JoinRequest{Name: name}, &jr); code != 200 {
		t.Fatalf("join: HTTP %d", code)
	}
	return jr.WorkerID
}

func leaseManual(t *testing.T, url, wid string) *Assignment {
	var lr LeaseResponse
	if code := postJSON(t, url+"/cluster/lease", LeaseRequest{WorkerID: wid}, &lr); code != 200 {
		t.Fatalf("lease: HTTP %d", code)
	}
	return lr.Assignment
}

// TestClusterLeaseExpiryRequeue models kill -9: a worker takes a shard
// and goes silent. The reconciler must requeue it and a healthy worker
// must finish the job with full results.
func TestClusterLeaseExpiryRequeue(t *testing.T) {
	co, ts := startCoord(t, testConfig())

	// The victim: joins, grabs one shard, never heartbeats or posts.
	victim := joinManual(t, ts.URL, "victim")

	works := classWorks(6)
	done := make(chan map[string]core.CheckpointEntry, 1)
	go func() {
		done <- co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	}()

	// Grab a shard as the victim, then die.
	var grabbed *Assignment
	deadline := time.Now().Add(5 * time.Second)
	for grabbed == nil && time.Now().Before(deadline) {
		grabbed = leaseManual(t, ts.URL, victim)
		time.Sleep(5 * time.Millisecond)
	}
	if grabbed == nil {
		t.Fatal("victim never got a shard")
	}

	// Wait for the reconciler to notice the dead lease and requeue the
	// shard before adding capacity — otherwise the survivor would
	// rescue it by stealing, which is a different test.
	for deadline := time.Now().Add(10 * time.Second); co.Status().Requeued == 0; {
		if !time.Now().Before(deadline) {
			t.Fatalf("reconciler never requeued the dead shard: %+v", co.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The survivor finishes everything, including the requeued shard.
	startWorker(t, ts.URL, "survivor", fakeSolve, nil)

	select {
	case got := <-done:
		if len(got) != len(works) {
			t.Fatalf("solved %d of %d classes after worker death", len(got), len(works))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solve never completed after worker death")
	}
	if st := co.Status(); st.Requeued == 0 {
		t.Fatalf("no requeue recorded: %+v", st)
	}
}

// TestClusterDuplicateCompletionIdempotent posts the same shard result
// twice and from a thief; the fold must count each class once.
func TestClusterDuplicateCompletionIdempotent(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 5 * time.Second // no expiry interference
	co, ts := startCoord(t, cfg)

	wa := joinManual(t, ts.URL, "a")
	wb := joinManual(t, ts.URL, "b")

	works := classWorks(2) // one shard
	done := make(chan map[string]core.CheckpointEntry, 1)
	go func() {
		done <- co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	}()

	var a *Assignment
	deadline := time.Now().Add(5 * time.Second)
	for a == nil && time.Now().Before(deadline) {
		a = leaseManual(t, ts.URL, wa)
		time.Sleep(5 * time.Millisecond)
	}
	if a == nil {
		t.Fatal("worker a never got the shard")
	}
	// b steals the straggler.
	b := leaseManual(t, ts.URL, wb)
	if b == nil || !b.Stolen || b.ShardID != a.ShardID {
		t.Fatalf("no steal: %+v", b)
	}
	results := func() []ClassResult {
		out := make([]ClassResult, 0, len(a.Classes))
		for _, cw := range a.Classes {
			out = append(out, ClassResult{Key: cw.Key, Entry: fakeEntry(cw.Key)})
		}
		return out
	}()
	var r1, r2, r3 ResultResponse
	postJSON(t, ts.URL+"/cluster/result", ResultRequest{WorkerID: wa, ShardID: a.ShardID, Results: results}, &r1)
	postJSON(t, ts.URL+"/cluster/result", ResultRequest{WorkerID: wa, ShardID: a.ShardID, Results: results}, &r2)
	postJSON(t, ts.URL+"/cluster/result", ResultRequest{WorkerID: wb, ShardID: b.ShardID, Results: results}, &r3)
	if r1.Folded != 2 || r2.Folded != 0 || r3.Folded != 0 {
		t.Fatalf("folded %d/%d/%d, want 2/0/0", r1.Folded, r2.Folded, r3.Folded)
	}
	got := <-done
	if len(got) != 2 {
		t.Fatalf("solved %d classes, want 2", len(got))
	}
	st := co.Status()
	if st.Stolen != 1 || st.Duplicates == 0 {
		t.Fatalf("steal/duplicate accounting off: %+v", st)
	}
}

// TestClusterWorkerJoinsMidJob starts a job on one slow worker and
// adds a second mid-flight; the job completes and the newcomer serves
// at least one shard (fresh or stolen).
func TestClusterWorkerJoinsMidJob(t *testing.T) {
	co, ts := startCoord(t, testConfig())
	slow := func(ctx context.Context, pl JobPayload, cw ClassWork) ClassResult {
		if !SleepCtx(ctx, 50*time.Millisecond) {
			return ClassResult{Err: "cancelled"}
		}
		return ClassResult{Entry: fakeEntry(cw.Key)}
	}
	startWorker(t, ts.URL, "early", slow, nil)
	waitWorkers(t, co, 1)

	works := classWorks(10)
	done := make(chan map[string]core.CheckpointEntry, 1)
	go func() {
		done <- co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	}()
	time.Sleep(60 * time.Millisecond)
	startWorker(t, ts.URL, "late", slow, nil)

	select {
	case got := <-done:
		if len(got) != len(works) {
			t.Fatalf("solved %d of %d classes", len(got), len(works))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solve never completed")
	}
	if st := co.Status(); len(st.Workers) != 2 {
		t.Fatalf("want 2 workers in status, got %+v", st.Workers)
	}
}

// TestClusterHeartbeatFlapping drops half of all heartbeats (and
// sprinkles lease-call failures); with the TTL comfortably above the
// heartbeat interval the shards must still complete without loss.
func TestClusterHeartbeatFlapping(t *testing.T) {
	plan, err := faults.Parse("seed=7;worker.heartbeat:error:p=0.5;rpc.lease:error:p=0.2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.LeaseTTL = 2 * time.Second
	cfg.FaultPlan = plan // rpc.* fires coordinator-side
	co, ts := startCoord(t, cfg)
	slow := func(ctx context.Context, pl JobPayload, cw ClassWork) ClassResult {
		if !SleepCtx(ctx, 30*time.Millisecond) {
			return ClassResult{Err: "cancelled"}
		}
		return ClassResult{Entry: fakeEntry(cw.Key)}
	}
	startWorker(t, ts.URL, "flappy", slow, plan)
	waitWorkers(t, co, 1)

	works := classWorks(8)
	got := co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	if len(got) != len(works) {
		t.Fatalf("solved %d of %d classes under flapping", len(got), len(works))
	}
}

// TestClusterAbandonAndCircuit: a worker that leases shards and never
// delivers burns through the requeue budget; the Solve barrier must
// release with no results (local fallback), and the circuit must then
// short-circuit the next Solve instantly until the cooldown passes.
func TestClusterAbandonAndCircuit(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 100 * time.Millisecond
	cfg.RequeueLimit = 1
	cfg.CircuitCooldown = time.Minute
	co, ts := startCoord(t, cfg)

	// A black hole: keeps leasing (so it stays "healthy") and silently
	// discards every assignment. Runs off the test goroutine, so posts
	// must not t.Fatal — errors are simply ignored.
	stop := make(chan struct{})
	defer close(stop)
	wid := joinManual(t, ts.URL, "blackhole")
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				body, _ := json.Marshal(LeaseRequest{WorkerID: wid})
				if resp, err := http.Post(ts.URL+"/cluster/lease", "application/json", bytes.NewReader(body)); err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	works := classWorks(4)
	got := co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	if len(got) != 0 {
		t.Fatalf("black-hole cluster produced %d results, want 0", len(got))
	}
	st := co.Status()
	if st.Abandoned == 0 || !st.CircuitOpen {
		t.Fatalf("want abandoned shards and open circuit: %+v", st)
	}
	t0 := time.Now()
	if got := co.Solve(context.Background(), JobPayload{Job: "j2", Pass: 1}, works); got != nil {
		t.Fatalf("open-circuit solve returned results")
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("open-circuit solve took %s, want immediate", d)
	}
}

// TestClusterAllHoldersDieWithQueuedShards models a whole-fleet kill
// -9 mid-job: the only worker leases one shard and goes silent while
// another shard is still queued. The requeued shard lands in a cluster
// with no one left to lease it — the reconciler must abandon the
// queued shards once the worker table empties, releasing the Solve
// barrier to the local fallback instead of hanging forever.
func TestClusterAllHoldersDieWithQueuedShards(t *testing.T) {
	co, ts := startCoord(t, testConfig())

	victim := joinManual(t, ts.URL, "victim")
	works := classWorks(4) // two shards; the victim leases only one
	done := make(chan map[string]core.CheckpointEntry, 1)
	go func() {
		done <- co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	}()

	var grabbed *Assignment
	deadline := time.Now().Add(5 * time.Second)
	for grabbed == nil && time.Now().Before(deadline) {
		grabbed = leaseManual(t, ts.URL, victim)
		time.Sleep(5 * time.Millisecond)
	}
	if grabbed == nil {
		t.Fatal("victim never got a shard")
	}
	// The victim dies holding one shard, with the other still queued.
	// Lease expiry requeues the held shard; worker expiry then leaves
	// zero healthy workers and both queued shards must be abandoned.
	select {
	case got := <-done:
		if len(got) != 0 {
			t.Fatalf("dead cluster produced %d results, want 0", len(got))
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("solve hung with queued shards in an empty cluster: %+v", co.Status())
	}
	st := co.Status()
	if st.Abandoned != 2 {
		t.Fatalf("abandoned = %d, want 2 (both shards to local fallback): %+v", st.Abandoned, st)
	}
}

// TestClusterWorkerDiesBeforeFirstLease: a worker joins (so Solve's
// entry-time health check passes and shards are queued) but dies
// before ever polling for a lease. No lease ever expires, so only the
// queued-shard abandonment path can release the barrier.
func TestClusterWorkerDiesBeforeFirstLease(t *testing.T) {
	co, ts := startCoord(t, testConfig())
	joinManual(t, ts.URL, "stillborn") // joins, never leases or heartbeats

	works := classWorks(4)
	done := make(chan map[string]core.CheckpointEntry, 1)
	go func() {
		done <- co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	}()
	select {
	case got := <-done:
		if len(got) != 0 {
			t.Fatalf("leaseless cluster produced %d results, want 0", len(got))
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("solve hung after the only worker died unleased: %+v", co.Status())
	}
	st := co.Status()
	if st.Abandoned != 2 || st.Requeued != 0 {
		t.Fatalf("want 2 abandoned / 0 requeued (no lease ever existed): %+v", st)
	}
}

// TestClusterDegradedNotFolded: degraded worker results must be
// reported unsolved, never folded into the result map.
func TestClusterDegradedNotFolded(t *testing.T) {
	co, ts := startCoord(t, testConfig())
	degrading := func(ctx context.Context, pl JobPayload, cw ClassWork) ClassResult {
		if cw.Key == "class-001" {
			return ClassResult{Degraded: "rules", Entry: fakeEntry(cw.Key)}
		}
		return ClassResult{Entry: fakeEntry(cw.Key)}
	}
	startWorker(t, ts.URL, "d", degrading, nil)
	waitWorkers(t, co, 1)

	works := classWorks(4)
	got := co.Solve(context.Background(), JobPayload{Job: "j1", Pass: 1}, works)
	if len(got) != 3 {
		t.Fatalf("solved %d classes, want 3 (one degraded)", len(got))
	}
	if _, ok := got["class-001"]; ok {
		t.Fatal("degraded class was folded")
	}
	if st := co.Status(); st.Failed != 1 {
		t.Fatalf("failed classes = %d, want 1", st.Failed)
	}
}

// TestClusterSolveCancel releases the barrier on caller cancellation
// and detaches the job so late results are dropped, not folded.
func TestClusterSolveCancel(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 5 * time.Second
	co, ts := startCoord(t, cfg)
	wid := joinManual(t, ts.URL, "slowpoke")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan map[string]core.CheckpointEntry, 1)
	go func() {
		done <- co.Solve(ctx, JobPayload{Job: "j1", Pass: 1}, classWorks(2))
	}()
	var a *Assignment
	deadline := time.Now().Add(5 * time.Second)
	for a == nil && time.Now().Before(deadline) {
		a = leaseManual(t, ts.URL, wid)
		time.Sleep(5 * time.Millisecond)
	}
	if a == nil {
		t.Fatal("never got the shard")
	}
	cancel()
	select {
	case got := <-done:
		if len(got) != 0 {
			t.Fatalf("cancelled solve returned %d results", len(got))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled solve never returned")
	}
	// Late post lands on a detached shard: accepted, dropped.
	var rr ResultResponse
	postJSON(t, ts.URL+"/cluster/result", ResultRequest{
		WorkerID: wid, ShardID: a.ShardID,
		Results: []ClassResult{{Key: a.Classes[0].Key, Entry: fakeEntry(a.Classes[0].Key)}},
	}, &rr)
	if rr.Folded != 0 {
		t.Fatalf("late result folded %d, want 0", rr.Folded)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	for i := 0; i < 10; i++ {
		raw := 100 * time.Millisecond << i
		if raw > time.Second || raw <= 0 {
			raw = time.Second
		}
		d := b.Next()
		if d < raw/2 || d >= raw*3/2 {
			t.Fatalf("attempt %d: delay %s outside [%s, %s)", i, d, raw/2, raw*3/2)
		}
	}
}
