package server

import (
	"context"
	"encoding/json"
	"sync"

	"goopc/internal/cluster"
	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/obs"
	"goopc/internal/prior"
)

// This file bridges the job server and internal/cluster in both
// directions: clusterSolver makes a coordinator daemon offer each
// job's canonical tile classes to the cluster, and NewWorkerSolver is
// the execution half an `opcd -worker` process runs. Both sides apply
// the same FlowSpec through applyFlowSpec, which is what makes a
// remotely solved class bit-identical to the local solve the
// submitting job would otherwise perform.

// applyFlowSpec applies the non-calibration FlowSpec knobs to a job's
// private Flow copy (the calibrated parts are shared via flowCache).
// It errors only when the spec references an artifact this process
// cannot load (the prior table) — silently dropping it would let a
// worker produce solves that are not bit-identical to the submitting
// coordinator's.
func applyFlowSpec(f *core.Flow, fs FlowSpec) error {
	if fs.TilePasses > 0 {
		f.TilePasses = fs.TilePasses
	}
	if fs.ConvergeEps != 0 {
		f.ConvergeEps = fs.ConvergeEps
		if fs.ConvergeEps < 0 {
			f.ConvergeEps = 0
		}
	}
	if fs.TileRetries != 0 {
		f.TileRetries = fs.TileRetries
		if fs.TileRetries < 0 {
			f.TileRetries = 0
		}
	}
	f.TileTimeout, _ = parseDuration(fs.TileTimeout)
	f.Deadline, _ = parseDuration(fs.Deadline)
	if fs.Prior != "" {
		tab, err := loadPrior(fs.Prior)
		if err != nil {
			return err
		}
		f.Prior = tab
	}
	return nil
}

// priorCache shares loaded prior tables across jobs and class solves
// keyed by path; tables are immutable once fitted, so the process
// caches the first successful load (restart to pick up a refit).
var priorCache = struct {
	sync.Mutex
	tables map[string]*prior.Table
}{tables: map[string]*prior.Table{}}

func loadPrior(path string) (*prior.Table, error) {
	priorCache.Lock()
	defer priorCache.Unlock()
	if t, ok := priorCache.tables[path]; ok {
		return t, nil
	}
	t, err := prior.Load(path)
	if err != nil {
		return nil, err
	}
	priorCache.tables[path] = t
	return t, nil
}

// clusterSolver returns the core.ClassSolver that ships a pass's
// unsolved canonical classes to the coordinator. Solve's nil or
// partial return is exactly the ClassSolver contract: missing classes
// fall through to the job's local ladder, so a dead or empty cluster
// degrades to single-process execution mid-pass.
func (s *Server) clusterSolver(j *Job) core.ClassSolver {
	flowJSON, err := json.Marshal(j.Spec.Flow)
	if err != nil {
		return nil
	}
	return func(ctx context.Context, level core.Level, tile geom.Coord, reqs []core.ClassSolveRequest) map[string]core.CheckpointEntry {
		if len(reqs) == 0 {
			return nil
		}
		payload := cluster.JobPayload{
			Job:   j.ID,
			Flow:  flowJSON,
			Level: int(level),
			Tile:  tile,
			Pass:  reqs[0].Pass,
		}
		classes := make([]cluster.ClassWork, len(reqs))
		for i, r := range reqs {
			classes[i] = cluster.ClassWork{Key: r.Key, Core: r.Core, Active: r.Active, Halo: r.Halo}
		}
		return s.cfg.Cluster.Solve(ctx, payload, classes)
	}
}

// NewWorkerSolver builds the cluster.SolveFunc a worker process runs:
// calibrate (and cache) the Flow for the payload's FlowSpec, then
// solve one canonical class per call through the same resilience
// ladder the scheduler applies locally. Degraded solves are reported
// as such — the coordinator refuses to fold them — and plan arms the
// worker's "worker.solve" chaos site alongside its comms sites.
func NewWorkerSolver(log *obs.Logger, plan *faults.Plan) cluster.SolveFunc {
	var flows flowCache
	return func(ctx context.Context, payload cluster.JobPayload, work cluster.ClassWork) cluster.ClassResult {
		var fs FlowSpec
		if len(payload.Flow) > 0 {
			if err := json.Unmarshal(payload.Flow, &fs); err != nil {
				return cluster.ClassResult{Err: "flow spec: " + err.Error()}
			}
		}
		base, err := flows.get(fs)
		if err != nil {
			return cluster.ClassResult{Err: "flow calibration: " + err.Error()}
		}
		f := *base
		if err := applyFlowSpec(&f, fs); err != nil {
			return cluster.ClassResult{Err: err.Error()}
		}
		f.FaultPlan = plan
		entry, degraded, err := f.SolveClass(ctx, core.Level(payload.Level), core.ClassSolveRequest{
			Pass: payload.Pass, Key: work.Key,
			Core: work.Core, Active: work.Active, Halo: work.Halo,
		})
		if err != nil {
			return cluster.ClassResult{Err: err.Error()}
		}
		if degraded != "" {
			log.Verbosef("class %s degraded to %s; reporting unsolved", work.Key, degraded)
			return cluster.ClassResult{Degraded: degraded}
		}
		return cluster.ClassResult{Entry: entry}
	}
}
