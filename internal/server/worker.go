package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/obs"
	"goopc/internal/obs/trace"
	"goopc/internal/opc"
	"goopc/internal/optics"
	"goopc/internal/orc"
)

// worker is one pool goroutine: dequeue, run, repeat until stop.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// next blocks until a job is available or the server stops (then nil).
// The dequeued job transitions to running with a live cancel context.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopping {
			return nil
		}
		if j := s.queue.pop(); j != nil {
			j.state = StateRunning
			j.started = time.Now()
			j.runCtx, j.cancel = context.WithCancel(s.ctx)
			s.met.queueSeconds.Observe(j.started.Sub(j.submitted).Seconds())
			j.emit(trace.JobDequeued, "")
			j.emit(trace.JobRunning, "")
			s.met.queued.Set(float64(s.queue.Len()))
			s.met.running.Add(1)
			// Register the per-job tile series now so scrapes see the
			// job the moment it reports running, not after calibration.
			s.jobGaugesLocked(j.ID)
			s.persistLocked(j)
			j.bump()
			return j
		}
		s.cond.Wait()
	}
}

// runJob executes one job end to end and records the terminal state.
func (s *Server) runJob(j *Job) {
	s.log.Infof("job %s running (%s %s)", j.ID, j.Spec.Level, jobSource(j.Spec, j.upload))
	st, err := s.execute(j.runCtx, j)
	j.cancel()
	s.finish(j, st, err)
	s.writeTrace(j)
}

// writeTrace persists the job's flight-recorder timeline as a Chrome
// trace-event artifact once the job is terminal, so the trace survives
// a later daemon restart (the in-memory recorder does not). A
// shutdown-interrupted job skips it: the run resumes with a fresh
// recorder and writes the artifact when it actually finishes.
func (s *Server) writeTrace(j *Job) {
	s.mu.Lock()
	terminal, dir := j.state.Terminal(), j.dir
	s.mu.Unlock()
	if j.rec == nil || !terminal {
		return
	}
	f, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		s.log.Errorf("job %s: trace artifact: %v", j.ID, err)
		return
	}
	werr := j.rec.WriteChrome(f, jobChromeOptions(j.ID))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		s.log.Errorf("job %s: trace artifact: %v", j.ID, werr)
	}
}

// finish applies the terminal state transition under the server lock.
// A daemon shutdown is the one non-terminal outcome: the job's on-disk
// record stays "running" so the next Start requeues and resumes it.
func (s *Server) finish(j *Job, st *core.TileStats, err error) {
	wall := time.Since(j.started).Seconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.running.Add(-1)
	if st != nil {
		rs := runStatsFrom(*st)
		j.stats = &rs
	}
	switch {
	case err == nil:
		j.state = StateDone
	case j.cancelRequested:
		j.state = StateCancelled
	case s.stopping && errors.Is(err, context.Canceled):
		j.bump()
		s.log.Infof("job %s interrupted by shutdown; will resume on restart", j.ID)
		return
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.emit(trace.JobDone, string(j.state))
	s.met.finishedCounter(j.state).Inc()
	s.met.seconds.Observe(wall)
	s.met.runSeconds.Observe(wall)
	if j.state == StateDone {
		// Calibrate the Retry-After estimator on real completions.
		s.ewmaSec = 0.7*s.ewmaSec + 0.3*wall
	}
	s.persistLocked(j)
	j.bump()
	if j.state == StateFailed {
		s.log.Errorf("job %s failed: %s", j.ID, j.errMsg)
	} else {
		s.log.Infof("job %s %s (%.2fs)", j.ID, j.state, wall)
	}
}

// execute runs the correction and writes the job artifacts. It returns
// the tile stats (when the scheduler produced any) alongside the error
// so a partially-run cancelled job still reports progress.
func (s *Server) execute(ctx context.Context, j *Job) (*core.TileStats, error) {
	target, err := s.jobTarget(j)
	if err != nil {
		return nil, err
	}
	level, err := parseLevel(j.Spec.Level)
	if err != nil {
		return nil, err
	}
	base, err := s.flows.get(j.Spec.Flow)
	if err != nil {
		return nil, fmt.Errorf("flow calibration: %w", err)
	}

	// Private Flow copy: the calibrated parts (simulator, threshold,
	// rule table) are shared read-only across jobs, everything mutable
	// is per-job.
	f := *base
	fs := j.Spec.Flow
	if err := applyFlowSpec(&f, fs); err != nil {
		return nil, err
	}
	if j.Spec.Inject != "" {
		// Validated at admission; re-parse for the job's private plan so
		// probe counters never leak across jobs.
		f.FaultPlan, _ = faults.Parse(j.Spec.Inject)
	}
	if fs.PatternLib {
		// Shared across all opted-in jobs; nil (library not configured
		// or unavailable) simply leaves every rung missing.
		f.PatLib = s.patlib
	}

	// The job's flight recorder rides into the scheduler: tile events
	// land on worker rings 1..N alongside the lifecycle events the
	// server put on ring 0.
	f.Tracer = j.rec

	// Coordinator daemons offer each pass's unsolved classes to the
	// cluster first; classes the cluster cannot serve fall through to
	// the local solve below.
	if s.cfg.Cluster != nil {
		f.ClassSolver = s.clusterSolver(j)
	}

	g := s.jobGaugesFor(j.ID)
	f.Progress = func(ev core.ProgressEvent) {
		j.pass.Store(int64(ev.Pass))
		j.passes.Store(int64(ev.Passes))
		j.doneTiles.Store(int64(ev.DoneTiles))
		j.totalTiles.Store(int64(ev.TotalTiles))
		g.pass.Set(float64(ev.Pass))
		g.tilesDone.Set(float64(ev.DoneTiles))
		g.tilesTotal.Set(float64(ev.TotalTiles))
		j.bump()
	}

	// Checkpoint under the job dir: a daemon kill mid-job costs at most
	// CheckpointEvery of tile work on restart.
	ckptPath := filepath.Join(j.dir, "run.ckpt")
	f.CheckpointPath = ckptPath
	f.CheckpointEvery = s.cfg.CheckpointEvery
	if ck, err := core.LoadCheckpoint(ckptPath); err == nil {
		f.Resume = ck
	}

	tile := s.tileSize(j.Spec)
	res, st, err := f.CorrectWindowedCtx(ctx, target, level, tile, !s.cfg.SerialTiles)
	if err != nil && errors.Is(err, core.ErrCheckpointMismatch) {
		// The persisted checkpoint belongs to a different run shape
		// (e.g. the data dir was reused). Discard it and correct from
		// scratch rather than failing the job.
		s.log.Errorf("job %s: stale checkpoint discarded: %v", j.ID, err)
		os.Remove(ckptPath)
		f.Resume = nil
		res, st, err = f.CorrectWindowedCtx(ctx, target, level, tile, !s.cfg.SerialTiles)
	}
	if err != nil {
		return &st, err
	}
	n, err := s.writeResult(j, res.Corrected)
	if err != nil {
		return &st, err
	}
	s.mu.Lock()
	j.resultLen = n
	s.mu.Unlock()
	if err := s.writeReport(j, st); err != nil {
		return &st, err
	}
	if j.Spec.Verify {
		if err := s.writeOrc(ctx, j, &f, target, res.Corrected, tile); err != nil {
			return &st, fmt.Errorf("verify: %w", err)
		}
	}
	return &st, nil
}

// jobGaugesFor returns (creating if needed) the per-job metric gauges.
func (s *Server) jobGaugesFor(id string) *jobGauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobGaugesLocked(id)
}

func (s *Server) jobGaugesLocked(id string) *jobGauges {
	g := s.gauges[id]
	if g == nil {
		g = s.met.newJobGauges(id)
		s.gauges[id] = g
	}
	return g
}

// jobTarget re-derives the job's target geometry at run time: uploads
// decode the persisted input.gds, workloads regenerate deterministically
// (both give a recovered job the byte-identical target it was admitted
// with, which the checkpoint fingerprint then accepts).
func (s *Server) jobTarget(j *Job) ([]geom.Polygon, error) {
	if !j.upload {
		return workloadTarget(j.Spec.Workload)
	}
	f, err := os.Open(filepath.Join(j.dir, "input.gds"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ly, err := layout.ReadGDS(f)
	if err != nil {
		return nil, fmt.Errorf("input.gds: %w", err)
	}
	target := layout.Flatten(ly.Top, jobLayer(j.Spec))
	if len(target) == 0 {
		return nil, fmt.Errorf("input.gds has no geometry on layer %d", jobLayer(j.Spec))
	}
	return target, nil
}

// workloadTarget generates a named example layout. This mirrors opcflow
// exactly — same generators, same seed — so a server job on a workload
// is bit-identical to the equivalent opcflow run.
func workloadTarget(name string) ([]geom.Polygon, error) {
	ly := layout.New("workload")
	rng := rand.New(rand.NewSource(1))
	switch name {
	case "stdcell":
		lib, err := gen.BuildCellLib(ly, gen.Tech180())
		if err != nil {
			return nil, err
		}
		block, err := gen.BuildBlock(ly, lib, "BLOCK", 2, 4, rng)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(block, layout.Poly), nil
	case "sram":
		arr, err := gen.BuildSRAM(ly, gen.Tech180(), "SRAM", 4, 4)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(arr, layout.Poly), nil
	case "routed":
		blk, err := gen.BuildRoutedBlock(ly, gen.Tech180(), "RT", 20000, 20000, 16, rng)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(blk, layout.Metal1), nil
	case "patterns":
		cell, _, err := gen.ThroughPitch(ly, "TP", layout.Poly, 180,
			[]geom.Coord{360, 520, 800}, 3000, 5)
		if err != nil {
			return nil, err
		}
		return layout.Flatten(cell, layout.Poly), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// writeResult writes result.gds exactly the way opcflow -out does (same
// structure, cell and OPC layer), so the artifact is byte-comparable.
func (s *Server) writeResult(j *Job, polys []geom.Polygon) (int64, error) {
	out := layout.New("corrected")
	cell := out.MustCell("TOP")
	l := jobLayer(j.Spec)
	for _, p := range polys {
		cell.AddPolygon(layout.OPCLayer(l), p)
	}
	out.SetTop(cell)
	f, err := os.Create(filepath.Join(j.dir, "result.gds"))
	if err != nil {
		return 0, err
	}
	n, werr := layout.WriteGDS(f, out)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return int64(n), werr
}

// writeReport writes the job's obs RunReport artifact (build
// fingerprint, spec, tile stats, registry snapshot).
func (s *Server) writeReport(j *Job, st core.TileStats) error {
	rep := obs.NewRunReport("opcd", nil, map[string]any{
		"job":   j.ID,
		"spec":  j.Spec,
		"stats": runStatsFrom(st),
	})
	rep.Finish(s.cfg.Registry, nil)
	if j.rec != nil {
		sum := j.rec.Summary()
		rep.Flight = &sum
	}
	return rep.WriteFile(filepath.Join(j.dir, "report.json"))
}

// OrcSummary is the orc.json artifact: post-OPC verification of the
// corrected mask against the drawn target, tile by tile.
type OrcSummary struct {
	Tiles         int      `json:"tiles"`
	Sites         int      `json:"sites"`
	WorstRMS      float64  `json:"worst_rms"`
	MaxEPE        float64  `json:"max_epe"`
	Pinches       int      `json:"pinches"`
	Bridges       int      `json:"bridges"`
	SideLobes     int      `json:"side_lobes"`
	EPEViolations int      `json:"epe_violations"`
	Hotspots      []string `json:"hotspots,omitempty"`
}

const maxOrcHotspots = 50

// writeOrc verifies the corrected mask tile by tile (target clipped to
// each tile core, mask taken over the haloed window so optical context
// is honest) and writes the orc.json summary.
func (s *Server) writeOrc(ctx context.Context, j *Job, f *core.Flow, target, corrected []geom.Polygon, tile geom.Coord) error {
	sum, err := verifyTiled(ctx, f, target, corrected, tile)
	if err != nil {
		return err
	}
	return writeJSONAtomic(filepath.Join(j.dir, "orc.json"), sum)
}

// verifyTiled runs the flow's Checker over each non-empty tile.
func verifyTiled(ctx context.Context, f *core.Flow, target, corrected []geom.Polygon, tile geom.Coord) (OrcSummary, error) {
	var sum OrcSummary
	if len(target) == 0 {
		return sum, nil
	}
	tgtIdx := geom.NewGridIndex(tile)
	bounds := target[0].BBox()
	for i, p := range target {
		bb := p.BBox()
		tgtIdx.Insert(bb, int32(i))
		bounds = bounds.Union(bb)
	}
	maskIdx := geom.NewGridIndex(tile)
	for i, p := range corrected {
		maskIdx.Insert(p.BBox(), int32(i))
	}
	for y := bounds.Y0; y < bounds.Y1; y += tile {
		for x := bounds.X0; x < bounds.X1; x += tile {
			if err := ctx.Err(); err != nil {
				return sum, err
			}
			coreR := geom.Rect{X0: x, Y0: y, X1: x + tile, Y1: y + tile}
			tgt := clipPolys(target, tgtIdx, coreR)
			if len(tgt) == 0 {
				continue
			}
			window := coreR.Grow(f.Ambit)
			mask := clipPolys(corrected, maskIdx, window)
			rep, err := f.Checker.Check(tgt, opc.Result{Corrected: mask}, window)
			if err != nil {
				return sum, err
			}
			sum.Tiles++
			sum.Sites += rep.EPE.Sites
			if rep.EPE.RMS > sum.WorstRMS {
				sum.WorstRMS = rep.EPE.RMS
			}
			if rep.EPE.Max > sum.MaxEPE {
				sum.MaxEPE = rep.EPE.Max
			}
			for _, h := range rep.Hotspots {
				switch h.Kind {
				case orc.Pinch:
					sum.Pinches++
				case orc.Bridge:
					sum.Bridges++
				case orc.SideLobe:
					sum.SideLobes++
				case orc.EPEViolation:
					sum.EPEViolations++
				}
				if len(sum.Hotspots) < maxOrcHotspots {
					sum.Hotspots = append(sum.Hotspots,
						fmt.Sprintf("%s at (%d,%d): %s", h.Kind, h.At.X, h.At.Y, h.Detail))
				}
			}
		}
	}
	return sum, nil
}

// clipPolys clips polygons (via the index) to a rectangle, fast-pathing
// those fully inside it.
func clipPolys(polys []geom.Polygon, idx *geom.GridIndex, clip geom.Rect) []geom.Polygon {
	region := geom.RegionFromRects(clip)
	var out []geom.Polygon
	for _, id := range idx.CollectIDs(clip) {
		p := polys[id]
		bb := p.BBox()
		if bb.Intersect(clip).Empty() {
			continue
		}
		if bb.X0 >= clip.X0 && bb.Y0 >= clip.Y0 && bb.X1 <= clip.X1 && bb.Y1 <= clip.Y1 {
			out = append(out, p)
			continue
		}
		out = append(out, geom.RegionFromPolygons(p).Intersect(region).Polygons()...)
	}
	return out
}

// flowCache shares expensive Flow calibrations (threshold + bias table)
// across jobs with the same calibration-relevant settings.
type flowCache struct {
	mu      sync.Mutex
	entries map[string]*flowEntry
}

type flowEntry struct {
	once sync.Once
	flow *core.Flow
	err  error
}

// get returns the calibrated Flow for a spec, building it at most once
// per calibration key (concurrent requesters share the same build).
func (c *flowCache) get(fs FlowSpec) (*core.Flow, error) {
	key := fs.calibKey()
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[string]*flowEntry{}
	}
	e := c.entries[key]
	if e == nil {
		e = &flowEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.flow, e.err = buildFlow(fs) })
	return e.flow, e.err
}

// buildFlow calibrates a Flow for the spec's optics/rule settings.
func buildFlow(fs FlowSpec) (*core.Flow, error) {
	s := optics.Default()
	if fs.SourceSteps > 0 {
		s.SourceSteps = fs.SourceSteps
	}
	if fs.GuardNM > 0 {
		s.GuardNM = fs.GuardNM
	}
	// Precision was validated at admission; a decode error here means a
	// hand-edited spec file, which Settings.Validate will reject anyway.
	s.Precision, _ = optics.ParsePrecision(fs.Precision)
	return core.NewFlow(core.Options{
		Optics:      s,
		AnchorCD:    fs.AnchorCD,
		AnchorPitch: fs.AnchorPitch,
		BiasSpaces:  fs.BiasSpaces,
	})
}
