package server

import "container/heap"

// jobQueue is the admission-controlled run queue: a priority heap
// (higher Spec.Priority first, submission order within a level). The
// owning Server's mutex guards every method.
type jobQueue struct {
	items []*Job
}

func (q *jobQueue) Len() int { return len(q.items) }

func (q *jobQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.seq < b.seq
}

func (q *jobQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *jobQueue) Push(x any) { q.items = append(q.items, x.(*Job)) }

func (q *jobQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// push enqueues a job.
func (q *jobQueue) push(j *Job) { heap.Push(q, j) }

// pop dequeues the highest-priority job, or nil when empty.
func (q *jobQueue) pop() *Job {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(q).(*Job)
}

// remove drops a specific job (cancel-while-queued); reports whether it
// was present.
func (q *jobQueue) remove(j *Job) bool {
	for i, it := range q.items {
		if it == j {
			heap.Remove(q, i)
			return true
		}
	}
	return false
}

// position returns the job's 1-based dequeue position (an estimate for
// status displays), or 0 when the job is not queued.
func (q *jobQueue) position(j *Job) int {
	found := false
	ahead := 0
	for _, it := range q.items {
		if it == j {
			found = true
			continue
		}
		if it.Spec.Priority > j.Spec.Priority ||
			(it.Spec.Priority == j.Spec.Priority && it.seq < j.seq) {
			ahead++
		}
	}
	if !found {
		return 0
	}
	return ahead + 1
}
