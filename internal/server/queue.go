package server

import "container/heap"

// tenantHeap orders one tenant's waiting jobs: higher Spec.Priority
// first, submission order within a level.
type tenantHeap []*Job

func (h tenantHeap) Len() int { return len(h) }

func (h tenantHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].seq < h[j].seq
}

func (h tenantHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *tenantHeap) Push(x any) { *h = append(*h, x.(*Job)) }

func (h *tenantHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// tenantState is one tenant's slice of the queue.
type tenantState struct {
	name string
	jobs tenantHeap
	// served is the tenant's normalized service credit: dequeued jobs
	// divided by the tenant's weight. The fair scheduler always serves
	// the active tenant with the lowest credit, so over time tenants
	// dequeue in proportion to their weights regardless of who floods
	// the queue.
	served float64
}

// jobQueue is the admission-controlled run queue: a weighted fair
// queue across tenants, each tenant holding a priority heap (higher
// Spec.Priority first, submission order within a level). With a single
// tenant — every job from the same Spec.Tenant, including the ""
// default — dequeue order degenerates to exactly the plain
// priority/FIFO discipline. The owning Server's mutex guards every
// method; the zero value is ready to use.
type jobQueue struct {
	tenants map[string]*tenantState
	// weights maps tenant name to relative dequeue weight (missing or
	// <1 means 1). Set once at server construction.
	weights map[string]int
	total   int
}

func (q *jobQueue) Len() int { return q.total }

func (q *jobQueue) weight(name string) float64 {
	if w := q.weights[name]; w > 0 {
		return float64(w)
	}
	return 1
}

// push enqueues a job under its tenant.
func (q *jobQueue) push(j *Job) {
	if q.tenants == nil {
		q.tenants = map[string]*tenantState{}
	}
	if q.total == 0 {
		// Idle queue: restart the fairness clock so credit earned in a
		// previous busy period does not hand anyone a grudge or a head
		// start.
		for _, t := range q.tenants {
			t.served = 0
		}
	}
	t := q.tenants[j.Spec.Tenant]
	if t == nil {
		t = &tenantState{name: j.Spec.Tenant}
		q.tenants[j.Spec.Tenant] = t
	}
	if len(t.jobs) == 0 {
		// (Re)activating tenant: align its credit with the least-served
		// active tenant so it competes fairly from now on instead of
		// replaying service it missed while absent.
		if m, ok := q.minActiveServed(); ok && m > t.served {
			t.served = m
		}
	}
	heap.Push(&t.jobs, j)
	q.total++
}

// minActiveServed returns the lowest service credit among tenants with
// queued jobs.
func (q *jobQueue) minActiveServed() (float64, bool) {
	min, any := 0.0, false
	for _, t := range q.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		if !any || t.served < min {
			min, any = t.served, true
		}
	}
	return min, any
}

// pick selects the tenant to serve next: lowest credit, ties broken by
// name for determinism.
func (q *jobQueue) pick() *tenantState {
	var best *tenantState
	for _, t := range q.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		if best == nil || t.served < best.served ||
			(t.served == best.served && t.name < best.name) {
			best = t
		}
	}
	return best
}

// pop dequeues the next job under the fair-share discipline, or nil
// when empty.
func (q *jobQueue) pop() *Job {
	t := q.pick()
	if t == nil {
		return nil
	}
	j := heap.Pop(&t.jobs).(*Job)
	t.served += 1 / q.weight(t.name)
	q.total--
	return j
}

// remove drops a specific job (cancel-while-queued); reports whether it
// was present.
func (q *jobQueue) remove(j *Job) bool {
	t := q.tenants[j.Spec.Tenant]
	if t == nil {
		return false
	}
	for i, it := range t.jobs {
		if it == j {
			heap.Remove(&t.jobs, i)
			q.total--
			return true
		}
	}
	return false
}

// position returns the job's 1-based dequeue position (an estimate for
// status displays), or 0 when the job is not queued. Computed by
// replaying the fair scheduler on a scratch copy, so the estimate
// honors tenant weights, not just priority.
func (q *jobQueue) position(j *Job) int {
	found := false
	if t := q.tenants[j.Spec.Tenant]; t != nil {
		for _, it := range t.jobs {
			if it == j {
				found = true
				break
			}
		}
	}
	if !found {
		return 0
	}
	scratch := jobQueue{tenants: map[string]*tenantState{}, weights: q.weights}
	for name, t := range q.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		scratch.tenants[name] = &tenantState{
			name:   name,
			jobs:   append(tenantHeap(nil), t.jobs...), // a copy of a heap is a heap
			served: t.served,
		}
		scratch.total += len(t.jobs)
	}
	for pos := 1; ; pos++ {
		if scratch.pop() == j {
			return pos
		}
	}
}

// tenantLen returns how many jobs a tenant has queued (the admission
// quota gate).
func (q *jobQueue) tenantLen(name string) int {
	if t := q.tenants[name]; t != nil {
		return len(t.jobs)
	}
	return 0
}

// tenantCounts snapshots queued-job counts per active tenant.
func (q *jobQueue) tenantCounts() map[string]int {
	out := map[string]int{}
	for name, t := range q.tenants {
		if len(t.jobs) > 0 {
			out[name] = len(t.jobs)
		}
	}
	return out
}
