package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"goopc/internal/cluster"
)

// Client is the typed opcd API client opcctl is built on.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:9800".
	Base string
	// HTTP defaults to a client with a sane timeout for the unary
	// calls; Watch uses an un-timed-out copy (SSE streams are long).
	HTTP *http.Client
	// MaxRetries bounds transparent retries of transient failures:
	// connection errors, 5xx responses, and 429s whose Retry-After hint
	// fits within busyRetryCap, all with jittered exponential backoff.
	// Request bodies replay through GetBody, so JSON calls retry but a
	// streamed GDS upload (no GetBody) never does. Submits carry an
	// Idempotency-Key so a replay of a committed-but-lost-response
	// request dedupes server-side instead of creating a duplicate job.
	// 0 disables retries.
	MaxRetries int
}

// NewClient returns a client for a base URL.
func NewClient(base string) *Client {
	return &Client{
		Base:       strings.TrimRight(base, "/"),
		HTTP:       &http.Client{Timeout: 30 * time.Second},
		MaxRetries: 3,
	}
}

// BusyError reports an admission-control rejection (HTTP 429): the
// queue is full and the server suggests when to retry.
type BusyError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("%s (retry after %s)", e.Message, e.RetryAfter)
}

// APIError is any other non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
}

// decodeError turns a non-2xx response into a typed error.
func decodeError(resp *http.Response) error {
	var body apiError
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Duration(body.RetryAfterSeconds) * time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				retry = time.Duration(n) * time.Second
			}
		}
		return &BusyError{RetryAfter: retry, Message: msg}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}

// busyRetryCap is the longest pause do is willing to absorb on a 429:
// a server hinting a longer wait gets its BusyError surfaced to the
// caller (opcctl tells the user; scripts schedule the resubmit).
const busyRetryCap = 3 * time.Second

func (c *Client) do(req *http.Request) (*http.Response, error) {
	h := c.HTTP
	if h == nil {
		h = http.DefaultClient
	}
	replayable := req.Body == nil || req.GetBody != nil
	bo := cluster.Backoff{Base: 150 * time.Millisecond, Max: busyRetryCap}
	for attempt := 0; ; attempt++ {
		if attempt > 0 && req.Body != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = body
		}
		resp, err := h.Do(req)
		if err == nil && resp.StatusCode < 400 {
			return resp, nil
		}
		if err == nil {
			err = decodeError(resp)
			resp.Body.Close()
		}
		wait := bo.Next()
		switch e := err.(type) {
		case *BusyError:
			if e.RetryAfter > busyRetryCap {
				return nil, err
			}
			if e.RetryAfter > 0 {
				wait = e.RetryAfter
			}
		case *APIError:
			if e.StatusCode < 500 {
				// Permanent: bad spec, missing job, conflict. Retrying
				// cannot change the answer.
				return nil, err
			}
		}
		if attempt >= c.MaxRetries || !replayable {
			return nil, err
		}
		if !cluster.SleepCtx(req.Context(), wait) {
			return nil, req.Context().Err()
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// newIdempotencyKey mints the per-call submit dedupe token. Submit is
// not idempotent by nature, and do retries connection errors — a
// request the server committed but whose response was lost would
// otherwise replay into a duplicate job. The key makes the replay safe:
// the server answers it with the already-created job's status.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // no entropy: submit without dedupe rather than fail
	}
	return hex.EncodeToString(b[:])
}

// Submit queues a workload job described by spec.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", newIdempotencyKey())
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// SubmitGDS queues an upload job: gds streams as the request body, the
// spec rides in the query string.
func (c *Client) SubmitGDS(ctx context.Context, spec JobSpec, gds io.Reader) (JobStatus, error) {
	var st JobStatus
	raw, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	u := c.Base + "/jobs?spec=" + url.QueryEscape(string(raw))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, gds)
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// The streamed body has no GetBody so do never replays it, but the
	// key still protects external retries (scripts, proxies).
	req.Header.Set("Idempotency-Key", newIdempotencyKey())
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Status fetches one job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/jobs/"+url.PathEscape(id), &st)
	return st, err
}

// List fetches all jobs the server knows, sorted by ID.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.getJSON(ctx, "/jobs", &out)
	return out, err
}

// Cancel cancels a live job or purges a terminal one.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return st, err
	}
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Fetch downloads a job artifact (result.gds, report.json, orc.json)
// into w, returning the byte count.
func (c *Client) Fetch(ctx context.Context, id, artifact string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/jobs/"+url.PathEscape(id)+"/"+url.PathEscape(artifact), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return io.Copy(w, resp.Body)
}

// Trace downloads the job's flight-recorder timeline as Chrome
// trace-event JSON into w. Unlike the other artifacts it works in any
// job state — live jobs serve a point-in-time snapshot.
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) (int64, error) {
	return c.Fetch(ctx, id, "trace", w)
}

// ClusterStatus fetches the coordinator's cluster state: joined
// workers, pending/in-flight shards, and lifetime protocol counters.
// A daemon running without -cluster answers 404 (an *APIError).
func (c *Client) ClusterStatus(ctx context.Context) (cluster.StatusReport, error) {
	var st cluster.StatusReport
	err := c.getJSON(ctx, "/cluster/status", &st)
	return st, err
}

// Watch subscribes to a job's SSE stream, invoking fn for every status
// event until the job reaches a terminal state (returning its final
// status), the stream ends, or ctx is cancelled. fn may be nil.
func (c *Client) Watch(ctx context.Context, id string, fn func(JobStatus)) (JobStatus, error) {
	var last JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return last, err
	}
	// SSE streams outlive any unary timeout: copy the client without one.
	h := &http.Client{}
	if c.HTTP != nil {
		hc := *c.HTTP
		hc.Timeout = 0
		h = &hc
	}
	resp, err := h.Do(req)
	if err != nil {
		return last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return last, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	seen := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(line[len("data: "):]), &st); err != nil {
			continue
		}
		seen = true
		last = st
		if fn != nil {
			fn(st)
		}
		if st.State.Terminal() {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	if !seen {
		return last, fmt.Errorf("event stream ended before any status arrived")
	}
	// Stream ended without a terminal state (e.g. server shutdown).
	return last, fmt.Errorf("event stream ended while job was %s", last.State)
}
