package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/obs"
)

// testSpec is the cheap-calibration flow every server test uses (same
// reduced sampling the core test flow uses).
func testSpec() FlowSpec {
	return FlowSpec{SourceSteps: 5, GuardNM: 1200, BiasSpaces: []geom.Coord{240, 420}}
}

// fourClusters builds four geometrically distinct isolated clusters,
// three tiles apart at tile 2500, so the scheduler sees four
// equivalence classes that complete one by one.
func fourClusters() []geom.Polygon {
	return []geom.Polygon{
		geom.R(200, 200, 380, 1700).Polygon(),
		geom.R(7700, 200, 7880, 2100).Polygon(),
		geom.R(15200, 200, 15380, 1200).Polygon(),
		geom.R(22700, 200, 22880, 900).Polygon(),
	}
}

// gdsBytes encodes polygons as a GDS stream on the poly layer.
func gdsBytes(t *testing.T, polys []geom.Polygon) []byte {
	t.Helper()
	ly := layout.New("upload")
	cell := ly.MustCell("TOP")
	for _, p := range polys {
		cell.AddPolygon(layout.Poly, p)
	}
	ly.SetTop(cell)
	var buf bytes.Buffer
	if _, err := layout.WriteGDS(&buf, ly); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type testEnv struct {
	srv *Server
	ts  *httptest.Server
	c   *Client
	reg *obs.Registry
}

func startTestServer(t *testing.T, mod func(*Config)) *testEnv {
	t.Helper()
	cfg := Config{
		DataDir:         t.TempDir(),
		Workers:         1,
		QueueDepth:      4,
		CheckpointEvery: time.Millisecond,
		Log:             obs.NewLogger(io.Discard, obs.ParseLogLevel(true, false), "opcd-test"),
		Registry:        obs.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Stop(ctx)
	})
	return &testEnv{srv: srv, ts: ts, c: NewClient(ts.URL), reg: cfg.Registry}
}

func waitState(t *testing.T, c *Client, id string, pred func(JobStatus) bool, what string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if pred(st) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on job %s", what, id)
	return JobStatus{}
}

// TestServerEndToEndParity is the acceptance path: two concurrent
// upload jobs stream progress over SSE, finish, and their result.gds
// artifacts are bit-identical to the same correction run directly
// through the core Flow with the same settings (the opcflow path).
func TestServerEndToEndParity(t *testing.T) {
	target := fourClusters()
	env := startTestServer(t, func(c *Config) { c.Workers = 2 })
	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec(), Verify: true}

	submit := func() string {
		st, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, target)))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if st.State != StateQueued || st.ID == "" {
			t.Fatalf("submit status: %+v", st)
		}
		return st.ID
	}
	id1 := submit()
	id2 := submit()

	// Watch both over SSE concurrently.
	var wg sync.WaitGroup
	finals := make([]JobStatus, 2)
	events := make([]int, 2)
	for i, id := range []string{id1, id2} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			st, err := env.c.Watch(context.Background(), id, func(JobStatus) { events[i]++ })
			if err != nil {
				t.Errorf("watch %s: %v", id, err)
			}
			finals[i] = st
		}(i, id)
	}
	wg.Wait()
	for i, st := range finals {
		if st.State != StateDone {
			t.Fatalf("job %d finished %s (%s)", i, st.State, st.Error)
		}
		if events[i] < 1 {
			t.Errorf("job %d: no SSE events", i)
		}
		if st.Stats == nil || st.Stats.Tiles != 4 {
			t.Errorf("job %d stats: %+v", i, st.Stats)
		}
		if st.Progress.DoneTiles != st.Progress.TotalTiles || st.Progress.TotalTiles == 0 {
			t.Errorf("job %d final progress %+v", i, st.Progress)
		}
	}

	// The reference: the same correction through the core engine with
	// the same settings and writer (what opcflow -out produces).
	base, err := buildFlow(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	f := *base
	res, _, err := f.CorrectWindowedCtx(context.Background(), target, core.L2, 2500, true)
	if err != nil {
		t.Fatal(err)
	}
	out := layout.New("corrected")
	cell := out.MustCell("TOP")
	for _, p := range res.Corrected {
		cell.AddPolygon(layout.OPCLayer(layout.Poly), p)
	}
	out.SetTop(cell)
	var want bytes.Buffer
	if _, err := layout.WriteGDS(&want, out); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{id1, id2} {
		var got bytes.Buffer
		if _, err := env.c.Fetch(context.Background(), id, "result.gds", &got); err != nil {
			t.Fatalf("fetch %s: %v", id, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("job %s result.gds (%d bytes) differs from direct flow run (%d bytes)",
				id, got.Len(), want.Len())
		}
		var rep bytes.Buffer
		if _, err := env.c.Fetch(context.Background(), id, "report.json", &rep); err != nil {
			t.Fatalf("fetch report %s: %v", id, err)
		}
		if !strings.Contains(rep.String(), `"opcd"`) {
			t.Errorf("report.json missing tool stamp: %s", rep.String()[:min(200, rep.Len())])
		}
		var orc bytes.Buffer
		if _, err := env.c.Fetch(context.Background(), id, "orc.json", &orc); err != nil {
			t.Fatalf("fetch orc %s: %v", id, err)
		}
		if !strings.Contains(orc.String(), `"tiles": 4`) {
			t.Errorf("orc.json did not verify 4 tiles: %s", orc.String())
		}
	}
}

// TestServerAdmissionBackpressure exercises both admission gates: the
// per-job tile budget (422) and the queue-depth cap (429 with a
// Retry-After hint), plus the goopc_server_* metric series.
func TestServerAdmissionBackpressure(t *testing.T) {
	env := startTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.MaxTilesPerJob = 2
		c.RetryAfterHint = 7 * time.Second
	})
	small := fourClusters()[:1]
	slow := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec(),
		Inject: "seed=1;tile:delay:n=50:d=30s"}

	// Occupy the only worker with a job stalled by an injected delay.
	blocker, err := env.c.SubmitGDS(context.Background(), slow, bytes.NewReader(gdsBytes(t, small)))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, env.c, blocker.ID, func(st JobStatus) bool { return st.State == StateRunning }, "running")

	// Tile budget: four clusters need 4 tiles > budget 2 -> 422.
	big := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec()}
	_, err = env.c.SubmitGDS(context.Background(), big, bytes.NewReader(gdsBytes(t, fourClusters())))
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget job: got %v, want 422", err)
	}

	// Fill the queue (depth 1), then the next submission must get 429
	// with the configured Retry-After.
	queued, err := env.c.SubmitGDS(context.Background(), slow, bytes.NewReader(gdsBytes(t, small)))
	if err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if queued.State != StateQueued || queued.QueuePos != 1 {
		t.Fatalf("queued status: %+v", queued)
	}
	_, err = env.c.SubmitGDS(context.Background(), slow, bytes.NewReader(gdsBytes(t, small)))
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("saturated queue: got %v, want BusyError", err)
	}
	if be.RetryAfter != 7*time.Second {
		t.Errorf("Retry-After = %s, want 7s", be.RetryAfter)
	}

	// The acceptance metrics must be visible on /metrics.
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"goopc_server_jobs_queued 1",
		"goopc_server_jobs_running 1",
		"goopc_server_jobs_rejected_total 2", // 422 + 429
		"goopc_server_jobs_submitted_total 2",
		`goopc_server_job_tiles_total{job="` + blocker.ID + `"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Cancelling the queued job frees the slot immediately.
	st, err := env.c.Cancel(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Errorf("queued cancel -> %s, want cancelled", st.State)
	}

	// Cancelling the running blocker interrupts the injected delay.
	if _, err := env.c.Cancel(context.Background(), blocker.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, env.c, blocker.ID, func(st JobStatus) bool { return st.State.Terminal() }, "terminal")
	if final.State != StateCancelled {
		t.Errorf("running cancel -> %s, want cancelled", final.State)
	}

	// DELETE on a terminal job purges it entirely.
	if _, err := env.c.Cancel(context.Background(), blocker.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := env.c.Status(context.Background(), blocker.ID); err == nil {
		t.Error("purged job still has a status")
	}
}

// TestServerInjectedPanicDegrades checks the resilience ladder surfaces
// through the service: a job whose tile attempts all panic (injected)
// still completes, with the degraded tiles counted in failed_tiles.
func TestServerInjectedPanicDegrades(t *testing.T) {
	env := startTestServer(t, nil)
	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec(),
		// Default TileRetries is 2 -> 3 attempts, all panicking -> the
		// ladder degrades the class to rule-based correction.
		Inject: "seed=1;tile:panic:n=3"}
	st, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, fourClusters()[:1])))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, env.c, st.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final.State != StateDone {
		t.Fatalf("job %s (%s), want done", final.State, final.Error)
	}
	if final.Stats == nil || final.Stats.FailedTiles < 1 {
		t.Errorf("failed_tiles not reported: %+v", final.Stats)
	}
	if final.Stats.Panics < 1 {
		t.Errorf("panics not reported: %+v", final.Stats)
	}
}

// TestServerRestartRecovery kills the daemon mid-job and verifies the
// restarted server requeues the job, resumes from its checkpoint
// (restored tile classes, not re-corrected), and finishes.
func TestServerRestartRecovery(t *testing.T) {
	dataDir := t.TempDir()
	reg1 := obs.NewRegistry()
	cfg := Config{
		DataDir: dataDir, Workers: 1, QueueDepth: 4,
		SerialTiles:     true, // tiles complete one by one
		CheckpointEvery: time.Millisecond,
		Log:             obs.NewLogger(io.Discard, obs.ParseLogLevel(true, false), "opcd-test"),
		Registry:        reg1,
	}
	s1 := New(cfg)
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	c1 := NewClient(ts1.URL)

	// Every tile attempt stalls 150ms, so the job is mid-flight long
	// enough to observe partial progress.
	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec(),
		Inject: "seed=1;tile:delay:n=50:d=150ms"}
	st, err := c1.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, fourClusters())))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c1, st.ID, func(s JobStatus) bool {
		return s.State == StateRunning && s.Progress.DoneTiles >= 1
	}, "first tile done")

	// Kill the daemon: running jobs get cancelled, flush a final
	// checkpoint, and stay "running" on disk.
	ts1.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Stop(sctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Restart on the same data dir.
	cfg.Registry = obs.NewRegistry()
	s2 := New(cfg)
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	c2 := NewClient(ts2.URL)
	t.Cleanup(func() {
		ts2.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s2.Stop(sctx)
	})

	recovered, err := c2.Status(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("job lost across restart: %v", err)
	}
	if !recovered.Recovered {
		t.Errorf("job not flagged recovered: %+v", recovered)
	}
	final := waitState(t, c2, st.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final.State != StateDone {
		t.Fatalf("recovered job %s (%s), want done", final.State, final.Error)
	}
	if final.Stats == nil || final.Stats.ResumedTiles < 1 {
		t.Errorf("no tiles resumed from checkpoint: %+v", final.Stats)
	}
	var got bytes.Buffer
	if _, err := c2.Fetch(context.Background(), st.ID, "result.gds", &got); err != nil {
		t.Fatalf("fetch after recovery: %v", err)
	}
	if got.Len() == 0 {
		t.Error("empty result.gds after recovery")
	}
}

// TestServerWorkloadAndChaosProbe covers workload-sourced jobs plus the
// server's own "http" fault site.
func TestServerWorkloadAndChaosProbe(t *testing.T) {
	plan, err := faults.Parse("seed=1;http:error:n=1")
	if err != nil {
		t.Fatal(err)
	}
	env := startTestServer(t, func(c *Config) {
		// Fail the very first API request deterministically.
		c.FaultPlan = plan
	})
	// First request hits the injected fault -> 503. Retries off so the
	// raw failure surfaces instead of being transparently absorbed.
	env.c.MaxRetries = 0
	_, err = env.c.List(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("chaos probe: got %v, want 503", err)
	}
	env.c.MaxRetries = 3
	// Subsequent requests are clean.
	spec := JobSpec{Workload: "patterns", Level: "L1", Flow: testSpec()}
	st, err := env.c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, env.c, st.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final.State != StateDone {
		t.Fatalf("workload job %s (%s), want done", final.State, final.Error)
	}
	if final.Upload {
		t.Error("workload job flagged as upload")
	}
}
