package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"goopc/internal/cluster"
	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/obs"
	"goopc/internal/obs/trace"
	"goopc/internal/optics"
	"goopc/internal/patlib"
)

// Config sizes and wires a Server.
type Config struct {
	// DataDir is the server state root: every job keeps its spec,
	// lifecycle record, core checkpoint and result artifacts under
	// DataDir/jobs/<id>/, which is what makes restarts crash-safe.
	DataDir string
	// Workers bounds the correction worker pool (default 2).
	Workers int
	// QueueDepth caps the number of waiting jobs; submissions beyond it
	// are rejected with 429 and a Retry-After hint (default 16).
	QueueDepth int
	// MaxTilesPerJob rejects jobs whose estimated tile count exceeds the
	// budget (admission control against one job starving the pool);
	// 0 means unlimited.
	MaxTilesPerJob int
	// RetryAfterHint overrides the computed Retry-After estimate on 429
	// responses (0 derives it from observed job durations).
	RetryAfterHint time.Duration
	// TenantQuota caps how many jobs one tenant (JobSpec.Tenant) may
	// have queued at once; excess submissions get 429 even when the
	// global queue has room. 0 means no per-tenant cap.
	TenantQuota int
	// TenantWeights sets relative fair-share dequeue weights per tenant
	// (missing tenants weigh 1). With no weights every active tenant
	// dequeues in equal turns.
	TenantWeights map[string]int
	// Cluster, when set, makes this daemon the coordinator of a
	// distributed correction cluster (DESIGN.md 5i): the /cluster/*
	// protocol endpoints mount on the handler, the coordinator starts
	// and stops with the server, and every job offers its unsolved
	// canonical tile classes to the cluster before solving them locally.
	// Nil runs everything in-process, as before.
	Cluster *cluster.Coordinator
	// SerialTiles turns off intra-job tile parallelism (each job then
	// uses one CPU; the pool provides the concurrency).
	SerialTiles bool
	// CheckpointEvery is the per-job checkpoint flush interval
	// (default 2s — a daemon kill loses at most that much tile work).
	CheckpointEvery time.Duration
	// FaultPlan arms the server's own chaos probe sites ("http" on
	// every API request) — the per-job "tile"/"rules" sites come from
	// each job's Inject spec instead.
	FaultPlan *faults.Plan
	// PatternLibPath, when set, opens one shared cross-run pattern
	// library (internal/patlib) at Start and offers it to every job that
	// opts in via FlowSpec.PatternLib — concurrent jobs look solutions
	// up and append new ones through the same in-memory index and
	// single-writer store. PatternLibReadOnly serves hits without
	// persisting new solutions.
	PatternLibPath     string
	PatternLibReadOnly bool
	// Log defaults to a quiet stderr logger; Registry to obs.Default().
	Log      *obs.Logger
	Registry *obs.Registry
}

// Server is the opcd job server: admission-controlled queue, bounded
// worker pool, per-job artifacts, live progress, crash recovery.
type Server struct {
	cfg  Config
	log  *obs.Logger
	met  *serverMetrics
	insp *obs.Inspector

	flows flowCache

	// patlib is the shared cross-run pattern library (nil when not
	// configured or when opening it failed — jobs then just solve).
	patlib *patlib.Library

	// ctx cancels every running job when the server stops; workers and
	// SSE streams watch it.
	ctx  context.Context
	stop context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	queue    jobQueue
	gauges   map[string]*jobGauges
	seq      int64
	ewmaSec  float64
	stopping bool
	started  bool
	// idem dedupes submit replays: Idempotency-Key → job ID ("" while
	// the keyed admission is still in flight). idemOrder is the FIFO
	// eviction order bounding the cache. In-memory only — the window it
	// guards (a client retrying a lost response) is seconds, not
	// restarts.
	idem      map[string]string
	idemOrder []string

	wg sync.WaitGroup
}

// New builds a Server; Start launches it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 2 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.NewLogger(os.Stderr, obs.ParseLogLevel(false, false), "opcd")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	s := &Server{
		cfg:     cfg,
		log:     cfg.Log,
		met:     newServerMetrics(cfg.Registry),
		jobs:    map[string]*Job{},
		gauges:  map[string]*jobGauges{},
		idem:    map[string]string{},
		ewmaSec: 30, // pessimistic seed until real jobs calibrate it
	}
	s.queue.weights = cfg.TenantWeights
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.stop = context.WithCancel(context.Background())
	s.insp = &obs.Inspector{Registry: cfg.Registry, Status: s.inspectorStatus}
	return s
}

// Start recovers persisted jobs from the data dir and launches the
// worker pool. It must be called once before serving requests.
func (s *Server) Start() error {
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return err
	}
	if s.cfg.PatternLibPath != "" {
		lib, err := patlib.Open(s.cfg.PatternLibPath, s.cfg.PatternLibReadOnly)
		if err != nil {
			// The library is a cache: a daemon that cannot open it keeps
			// serving, every opted-in job just solves from scratch.
			s.log.Errorf("pattern library %s unavailable: %v", s.cfg.PatternLibPath, err)
		} else {
			s.patlib = lib
			s.log.Infof("pattern library %s: %d entries (readonly=%t)",
				s.cfg.PatternLibPath, lib.Len(), lib.ReadOnly())
		}
	}
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Start()
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

// Stop shuts the pool down: running jobs are cancelled (their
// checkpoints flush, and their on-disk state stays "running" so a
// restart resumes them), queued jobs stay queued on disk. Stop returns
// when every worker has exited or ctx expires.
func (s *Server) Stop(ctx context.Context) error {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
	s.stop()
	s.cond.Broadcast()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.patlib != nil {
			// Workers have drained: flush the pattern library's append
			// queue and release its lock.
			s.patlib.Close()
		}
		if s.cfg.Cluster != nil {
			s.cfg.Cluster.Stop()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: stop: %w", ctx.Err())
	}
}

func (s *Server) jobsDir() string { return filepath.Join(s.cfg.DataDir, "jobs") }

// Handler returns the full opcd route table: the job API plus the obs
// inspector (/metrics, /status, /debug/pprof) merged onto the same mux,
// all behind the "http" chaos probe.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result.gds", s.handleArtifact("result.gds", "application/octet-stream"))
	mux.HandleFunc("GET /jobs/{id}/report.json", s.handleArtifact("report.json", "application/json"))
	mux.HandleFunc("GET /jobs/{id}/orc.json", s.handleArtifact("orc.json", "application/json"))
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Register(mux)
	}
	s.insp.Register(mux)
	return s.probeMiddleware(mux)
}

// probeMiddleware evaluates the "http" fault site before routing, so a
// chaos plan can fail or stall any request deterministically.
func (s *Server) probeMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := s.cfg.FaultPlan.Probe(r.Context(), "http"); err != nil {
			writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("chaos: %v", err))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// inspectorStatus contributes the job-server summary to /status: the
// job totals, the per-tenant queued/running fairness view, and (when
// this daemon coordinates a cluster) the cluster report.
func (s *Server) inspectorStatus() map[string]any {
	s.mu.Lock()
	running := 0
	runningBy := map[string]int{}
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running++
			runningBy[j.Spec.Tenant]++
		}
	}
	queuedBy := s.queue.tenantCounts()
	total, queued := len(s.jobs), s.queue.Len()
	s.mu.Unlock()

	tenants := map[string]any{}
	for name, n := range queuedBy {
		tenants[tenantLabel(name)] = map[string]int{"queued": n, "running": runningBy[name]}
		delete(runningBy, name)
	}
	for name, n := range runningBy {
		tenants[tenantLabel(name)] = map[string]int{"queued": 0, "running": n}
	}
	out := map[string]any{
		"jobs": map[string]any{
			"total":   total,
			"queued":  queued,
			"running": running,
		},
	}
	if len(tenants) > 0 {
		out["tenants"] = tenants
	}
	if s.cfg.Cluster != nil {
		// Status takes the coordinator's own lock; never call it under
		// s.mu.
		out["cluster"] = s.cfg.Cluster.Status()
	}
	return out
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429s.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(apiError{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit admits one job. Two request shapes:
//
//   - Content-Type: application/json — the body is the JobSpec and the
//     job corrects a named example workload.
//   - any other Content-Type — the body is a GDSII stream (decoded
//     incrementally by the hardened reader, never buffered whole) and
//     the JobSpec rides in the "spec" query parameter.
//
// Admission control runs before any expensive work: a full queue
// answers 429 with a Retry-After estimate, and a job whose estimated
// tile count exceeds the per-job budget answers 422.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	upload := false
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec: %v", err))
			return
		}
	} else {
		upload = true
		raw := r.URL.Query().Get("spec")
		if raw == "" {
			writeError(w, http.StatusBadRequest, "GDS upload needs a ?spec=<json> query parameter")
			return
		}
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec: %v", err))
			return
		}
	}
	if err := spec.validate(upload); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	idemKey := r.Header.Get("Idempotency-Key")

	// Queue-depth gate first: reject cheap, before touching the body.
	s.mu.Lock()
	if !s.started || s.stopping {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is not accepting jobs")
		return
	}
	// Replayed submit (the client retried a request whose response was
	// lost): answer with the committed job instead of duplicating it.
	if prev, inflight := s.resolveIdemLocked(idemKey); prev != nil {
		st := s.statusLocked(prev)
		s.mu.Unlock()
		s.log.Infof("job %s: submit replay deduped (idempotency key)", prev.ID)
		writeJSON(w, http.StatusOK, st)
		return
	} else if inflight {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "a submission with this idempotency key is in flight")
		return
	}
	if s.queue.Len() >= s.cfg.QueueDepth {
		s.releaseIdemLocked(idemKey)
		s.reject429Locked(w, fmt.Sprintf("queue full (%d jobs waiting)", s.cfg.QueueDepth))
		return
	}
	// Per-tenant quota: one tenant cannot occupy the whole queue even
	// when global depth has room.
	if s.cfg.TenantQuota > 0 && s.queue.tenantLen(spec.Tenant) >= s.cfg.TenantQuota {
		s.releaseIdemLocked(idemKey)
		s.reject429Locked(w, fmt.Sprintf("tenant %q quota reached (%d jobs queued)",
			tenantLabel(spec.Tenant), s.cfg.TenantQuota))
		return
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := &Job{
		ID: id, Spec: spec, seq: s.seq, upload: upload,
		dir: filepath.Join(s.jobsDir(), id), state: StateQueued, submitted: time.Now(),
		rec: trace.New(0),
	}
	s.mu.Unlock()

	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.releaseIdem(idemKey)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Resolve the target once at admission: an upload streams through
	// the hardened GDS reader onto disk while decoding; a workload
	// generates. Either way the tile budget is checked before the job
	// can occupy a worker.
	target, err := s.admitTarget(j, r.Body)
	if err != nil {
		os.RemoveAll(j.dir)
		s.releaseIdem(idemKey)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.cfg.MaxTilesPerJob > 0 {
		tiles := core.EstimateTiles(target, s.tileSize(spec))
		if tiles > s.cfg.MaxTilesPerJob {
			os.RemoveAll(j.dir)
			s.releaseIdem(idemKey)
			s.met.rejected.Inc()
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("job needs ~%d tiles, per-job budget is %d", tiles, s.cfg.MaxTilesPerJob))
			return
		}
	}

	s.mu.Lock()
	if s.stopping {
		s.releaseIdemLocked(idemKey)
		s.mu.Unlock()
		os.RemoveAll(j.dir)
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.commitIdemLocked(idemKey, id)
	j.emit(trace.JobAdmitted, jobSource(spec, upload))
	s.jobs[id] = j
	s.queue.push(j)
	j.emit(trace.JobEnqueued, "")
	s.met.submitted.Inc()
	s.met.queued.Set(float64(s.queue.Len()))
	s.persistLocked(j)
	st := s.statusLocked(j)
	s.mu.Unlock()
	s.cond.Signal()
	s.log.Infof("job %s queued (%s %s)", id, spec.Level, jobSource(spec, upload))
	writeJSON(w, http.StatusAccepted, st)
}

// reject429Locked answers a submission with 429 + Retry-After and
// releases the server lock.
func (s *Server) reject429Locked(w http.ResponseWriter, msg string) {
	retry := s.retryAfterLocked()
	s.met.rejected.Inc()
	s.mu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(apiError{Error: msg, RetryAfterSeconds: retry})
}

// idemCacheCap bounds the submit dedupe cache; the oldest keys evict
// first once it fills.
const idemCacheCap = 4096

// resolveIdemLocked resolves an Idempotency-Key at admission. A
// non-nil job means the key already committed — the caller answers
// with that job's status instead of creating a duplicate. inflight
// means another submission carrying the same key is mid-admission; the
// caller answers 503 and the client's retry loop absorbs it.
// Otherwise the key is reserved: the caller must commitIdemLocked on
// success or releaseIdem(Locked) on any rejection so a later retry is
// admitted afresh.
func (s *Server) resolveIdemLocked(key string) (prev *Job, inflight bool) {
	if key == "" {
		return nil, false
	}
	if id, ok := s.idem[key]; ok {
		if id == "" {
			return nil, true
		}
		if j := s.jobs[id]; j != nil {
			return j, false
		}
		// The committed job has since been purged: admit afresh under
		// the same key (it is already in the eviction order).
	} else {
		if len(s.idemOrder) >= idemCacheCap {
			delete(s.idem, s.idemOrder[0])
			s.idemOrder = s.idemOrder[1:]
		}
		s.idemOrder = append(s.idemOrder, key)
	}
	s.idem[key] = ""
	return nil, false
}

func (s *Server) commitIdemLocked(key, id string) {
	if key != "" {
		s.idem[key] = id
	}
}

func (s *Server) releaseIdemLocked(key string) {
	if key == "" {
		return
	}
	if id, ok := s.idem[key]; ok && id == "" {
		delete(s.idem, key)
	}
}

func (s *Server) releaseIdem(key string) {
	s.mu.Lock()
	s.releaseIdemLocked(key)
	s.mu.Unlock()
}

// tenantLabel names a tenant for humans ("" is the shared default).
func tenantLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

func jobSource(spec JobSpec, upload bool) string {
	if upload {
		return "gds upload"
	}
	return "workload " + spec.Workload
}

// admitTarget materializes the job's target geometry at admission time.
// Uploads tee the request body into input.gds while the hardened
// reader decodes it, so the artifact on disk is exactly the accepted
// stream; workloads generate deterministically (seeded) so a recovered
// job re-derives the identical target.
func (s *Server) admitTarget(j *Job, body io.Reader) ([]geom.Polygon, error) {
	if !j.upload {
		return workloadTarget(j.Spec.Workload)
	}
	f, err := os.Create(filepath.Join(j.dir, "input.gds"))
	if err != nil {
		return nil, err
	}
	ly, rerr := layout.ReadGDS(io.TeeReader(body, f))
	cerr := f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("gds upload: %w", rerr)
	}
	if cerr != nil {
		return nil, cerr
	}
	target := layout.Flatten(ly.Top, jobLayer(j.Spec))
	if len(target) == 0 {
		return nil, fmt.Errorf("gds upload has no geometry on layer %d", jobLayer(j.Spec))
	}
	return target, nil
}

// jobLayer returns the drawn layer a job corrects (default poly).
func jobLayer(spec JobSpec) layout.Layer {
	if spec.Layer != 0 {
		return layout.Layer(spec.Layer)
	}
	return layout.Poly
}

// tileSize resolves the scheduler tile size: the spec's TileNM or four
// times the optical ambit (the same default opcflow uses). The ambit
// only depends on the fixed exposure setup, so this is computable
// before calibration.
func (s *Server) tileSize(spec JobSpec) geom.Coord {
	if spec.TileNM > 0 {
		return spec.TileNM
	}
	o := optics.Default()
	return 4 * geom.Coord(2*o.LambdaNM/o.NA)
}

// retryAfterLocked estimates how long a rejected submitter should wait:
// the observed mean job duration times the queue backlog, spread over
// the pool.
func (s *Server) retryAfterLocked() int {
	if s.cfg.RetryAfterHint > 0 {
		return int(s.cfg.RetryAfterHint.Round(time.Second) / time.Second)
	}
	secs := s.ewmaSec * float64(s.queue.Len()+1) / float64(s.cfg.Workers)
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return int(secs + 0.5)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	st := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleDelete cancels a live job (queued jobs cancel immediately,
// running jobs get their context cancelled and transition when the
// scheduler drains) and purges a terminal one — artifacts, persisted
// state and per-job metric series all go.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookup(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	switch {
	case j.state == StateQueued:
		s.queue.remove(j)
		s.met.queued.Set(float64(s.queue.Len()))
		j.state = StateCancelled
		j.finished = time.Now()
		s.met.finishedCounter(StateCancelled).Inc()
		s.persistLocked(j)
		j.bump()
	case j.state == StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	default: // terminal: purge
		delete(s.jobs, id)
		s.gauges[id].retire(s.met)
		delete(s.gauges, id)
		dir := j.dir
		st := s.statusLocked(j)
		s.mu.Unlock()
		if err := os.RemoveAll(dir); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.log.Infof("job %s purged", id)
		writeJSON(w, http.StatusOK, st)
		return
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	s.log.Infof("job %s cancel requested (state %s)", id, st.State)
	writeJSON(w, http.StatusAccepted, st)
}

// handleEvents streams a job's status over SSE: one "status" event on
// connect, another on every observable change (progress, state), and a
// comment heartbeat while idle. The stream ends once a terminal state
// has been sent.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func() (State, bool) {
		s.mu.Lock()
		st := s.statusLocked(j)
		s.mu.Unlock()
		data, err := json.Marshal(st)
		if err != nil {
			return st.State, false
		}
		if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", data); err != nil {
			return st.State, false
		}
		fl.Flush()
		return st.State, true
	}

	last := j.version.Load()
	state, ok := send()
	if !ok || state.Terminal() {
		return
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Server stopping: send a final snapshot and end the stream.
			send()
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-tick.C:
			v := j.version.Load()
			if v == last {
				continue
			}
			last = v
			state, ok = send()
			if !ok || state.Terminal() {
				return
			}
		}
	}
}

// handleArtifact serves one per-job artifact file for finished jobs.
func (s *Server) handleArtifact(name, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.lookup(r.PathValue("id"))
		if j == nil {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		s.mu.Lock()
		state := j.state
		dir := j.dir
		s.mu.Unlock()
		if state != StateDone {
			writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; artifacts exist once it is done", state))
			return
		}
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("artifact %s not available", name))
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", contentType)
		if fi, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
		}
		_, _ = io.Copy(w, f)
	}
}

// handleTrace serves the job's flight-recorder timeline as Chrome
// trace-event JSON (load it in Perfetto / chrome://tracing). Unlike the
// other artifacts it is available in any state: live jobs export a
// point-in-time snapshot of the recorder, and terminal jobs that
// predate this daemon process fall back to the trace.json artifact the
// finishing worker persisted.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.rec != nil {
		w.Header().Set("Content-Type", "application/json")
		_ = j.rec.WriteChrome(w, jobChromeOptions(j.ID))
		return
	}
	s.mu.Lock()
	dir := j.dir
	s.mu.Unlock()
	f, err := os.Open(filepath.Join(dir, "trace.json"))
	if err != nil {
		writeError(w, http.StatusNotFound, "trace not available for this job")
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.Copy(w, f)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ok := s.started && !s.stopping
	queued := s.queue.Len()
	s.mu.Unlock()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ok": ok, "queued": queued})
}

// statusLocked snapshots a job (caller holds s.mu).
func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID: j.ID, State: j.state, Spec: j.Spec, Upload: j.upload,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Progress: j.progressEvent(), Stats: j.stats,
		Recovered: j.recovered, Error: j.errMsg, ResultBytes: j.resultLen,
	}
	st.Latency = j.latency(time.Now())
	if j.state == StateQueued {
		st.QueuePos = s.queue.position(j)
	}
	return st
}

// jobRecord is the persisted lifecycle state (DataDir/jobs/<id>/job.json).
type jobRecord struct {
	ID          string    `json:"id"`
	Spec        JobSpec   `json:"spec"`
	Upload      bool      `json:"upload"`
	State       State     `json:"state"`
	Recovered   bool      `json:"recovered,omitempty"`
	Error       string    `json:"error,omitempty"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started"`
	Finished    time.Time `json:"finished"`
	Stats       *RunStats `json:"stats,omitempty"`
	ResultBytes int64     `json:"result_bytes,omitempty"`
}

// persistLocked writes the job's lifecycle record atomically (caller
// holds s.mu). Persistence failures are logged, not fatal: the server
// keeps serving from memory and recovery degrades gracefully.
func (s *Server) persistLocked(j *Job) {
	rec := jobRecord{
		ID: j.ID, Spec: j.Spec, Upload: j.upload, State: j.state,
		Recovered: j.recovered, Error: j.errMsg,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Stats: j.stats, ResultBytes: j.resultLen,
	}
	if err := writeJSONAtomic(filepath.Join(j.dir, "job.json"), rec); err != nil {
		s.log.Errorf("persist %s: %v", j.ID, err)
	}
}

// writeJSONAtomic writes v as JSON via temp-file + rename, the same
// crash discipline the core checkpoint writer uses.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".job-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(name, path)
	}
	if werr != nil {
		os.Remove(name)
	}
	return werr
}

// recover rebuilds the job table from the data dir at startup. Jobs
// persisted as queued or running go back on the queue (marked
// recovered; their core checkpoint, if any, resumes finished tiles),
// terminal jobs come back as browsable history.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return fmt.Errorf("server: recover: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.jobsDir(), e.Name())
		data, err := os.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			s.log.Errorf("recover %s: %v (skipped)", e.Name(), err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			s.log.Errorf("recover %s: %v (skipped)", e.Name(), err)
			continue
		}
		var seq int64
		if n, err := strconv.ParseInt(strings.TrimPrefix(rec.ID, "j"), 10, 64); err == nil {
			seq = n
			if n > s.seq {
				s.seq = n
			}
		}
		j := &Job{
			ID: rec.ID, Spec: rec.Spec, upload: rec.Upload, dir: dir,
			seq: seq, state: rec.State, recovered: rec.Recovered,
			errMsg: rec.Error, submitted: rec.Submitted, started: rec.Started,
			finished: rec.Finished, stats: rec.Stats, resultLen: rec.ResultBytes,
		}
		if !rec.State.Terminal() {
			// Interrupted mid-flight: requeue from the top. The core
			// checkpoint under the job dir restores completed tile
			// classes, so only unfinished work re-runs. The job gets a
			// fresh flight recorder — the pre-crash timeline is gone, and
			// the resumed run will show the surviving tiles as resumed
			// events instead.
			j.state = StateQueued
			j.recovered = true
			j.started = time.Time{}
			j.rec = trace.New(0)
			j.emit(trace.JobAdmitted, "recovered (was "+string(rec.State)+")")
			s.queue.push(j)
			j.emit(trace.JobEnqueued, "")
			s.met.recovered.Inc()
			s.persistLocked(j)
			s.log.Infof("job %s recovered (was %s)", j.ID, rec.State)
		}
		s.jobs[j.ID] = j
	}
	s.met.queued.Set(float64(s.queue.Len()))
	return nil
}
