// Package server is the OPC-as-a-service layer: a long-running job
// server (the opcd daemon) that accepts correction jobs over HTTP —
// a GDSII upload or a named example workload, plus Flow settings as
// JSON — queues them with admission control and backpressure, runs
// them through the core tiled scheduler on a bounded worker pool, and
// serves the corrected GDS plus run-report/ORC artifacts back.
//
// The package is the paper's end state made concrete: OPC not as a
// per-tapeout batch step but as a shared production service every
// layout passes through. Jobs survive daemon restarts (spec, state and
// the core checkpoint persist under the data directory), progress
// streams live over SSE from the scheduler's tile gauges, and the
// /metrics, /status and /debug/pprof inspector routes share the job
// API's listener.
package server

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/obs/trace"
	"goopc/internal/optics"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle. Queued and Running are live states; the other three
// are terminal. DELETE on a live job cancels it; DELETE on a terminal
// job purges it from the server.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// FlowSpec is the JSON shape of the per-job Flow settings. The
// calibration-relevant fields (optics sampling, bias spaces, anchor)
// key the server's calibrated-flow cache; the remaining knobs apply to
// the job's private Flow copy. Zero values take the same defaults
// opcflow uses, so a job with an empty FlowSpec corrects exactly like
// `opcflow -fast=false`.
type FlowSpec struct {
	// SourceSteps and GuardNM override the optics sampling (opcflow
	// -fast uses 5 / 1200).
	SourceSteps int     `json:"sourceSteps,omitempty"`
	GuardNM     float64 `json:"guardNM,omitempty"`
	// Precision selects the SOCS imaging precision ("" or "f64" for
	// float64, "f32" for the complex64 coarse kernel path). Part of the
	// calibration key: the threshold and bias table must come from the
	// same numeric path the job images with.
	Precision string `json:"precision,omitempty"`
	// BiasSpaces are the rule-table environment bins.
	BiasSpaces []geom.Coord `json:"biasSpaces,omitempty"`
	// AnchorCD / AnchorPitch override the dose-to-size anchor.
	AnchorCD    geom.Coord `json:"anchorCD,omitempty"`
	AnchorPitch geom.Coord `json:"anchorPitch,omitempty"`
	// TilePasses / ConvergeEps tune the tiled scheduler (0 keeps the
	// Flow defaults; ConvergeEps < 0 disables the early exit).
	TilePasses  int     `json:"tilePasses,omitempty"`
	ConvergeEps float64 `json:"convergeEps,omitempty"`
	// TileRetries (-1 disables), TileTimeout and Deadline bound the
	// resilience ladder; durations parse with time.ParseDuration.
	TileRetries int    `json:"tileRetries,omitempty"`
	TileTimeout string `json:"tileTimeout,omitempty"`
	Deadline    string `json:"deadline,omitempty"`
	// PatternLib opts the job into the daemon's shared cross-run
	// pattern library (requires opcd -patlib; ignored otherwise).
	// Deliberately not part of the calibration key — the library is a
	// scheduler-level cache, not a flow setting.
	PatternLib bool `json:"patternLib,omitempty"`
	// Prior is a daemon-local path to a fitted initial-bias prior table
	// (datasetgen fit; DESIGN.md 5j) that warm-starts the job's model
	// iterations. Coordinator and workers each load the path from their
	// own filesystem — deploy the same table everywhere, or remote class
	// solves fail. Like PatternLib it is not part of the calibration
	// key: the prior seeds iteration, it does not change calibration.
	Prior string `json:"prior,omitempty"`
}

// calibKey returns the cache key for the calibration this spec needs.
func (fs FlowSpec) calibKey() string {
	return fmt.Sprintf("src=%d|guard=%g|bias=%v|anchor=%d/%d|prec=%s",
		fs.SourceSteps, fs.GuardNM, fs.BiasSpaces, fs.AnchorCD, fs.AnchorPitch, fs.Precision)
}

// JobSpec describes one correction job: what to correct (an uploaded
// GDS layer or a named example workload), at which adoption level, and
// under which Flow settings.
type JobSpec struct {
	// Name is a free-form label for humans; the server assigns the ID.
	Name string `json:"name,omitempty"`
	// Workload names a built-in example layout (stdcell | sram |
	// routed | patterns) — mutually exclusive with a GDS upload.
	Workload string `json:"workload,omitempty"`
	// Layer selects the drawn layer to correct (default 2, poly).
	Layer int `json:"layer,omitempty"`
	// Level is the adoption level: L0 | L1 | L2 | L3.
	Level string `json:"level"`
	// TileNM is the scheduler tile size in DBU (0 uses 4x the ambit).
	TileNM geom.Coord `json:"tileNM,omitempty"`
	// Priority orders the queue (higher first, FIFO within a level).
	Priority int `json:"priority,omitempty"`
	// Tenant attributes the job for multi-tenant fair queueing: the
	// dequeue order interleaves tenants by weighted fair share, and
	// opcd's per-tenant quota caps how many jobs one tenant may have
	// queued. Empty is the shared default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Inject arms the per-job deterministic fault plan (the faults
	// grammar, e.g. "seed=1;tile:panic:n=1") — chaos testing a live
	// server without hurting other jobs.
	Inject string `json:"inject,omitempty"`
	// Verify runs post-OPC verification tile by tile after correction
	// and writes the orc.json artifact.
	Verify bool `json:"verify,omitempty"`
	// Flow carries the per-job Flow settings.
	Flow FlowSpec `json:"flow,omitempty"`
}

// parseLevel maps the spec's level string to the core adoption level.
func parseLevel(s string) (core.Level, error) {
	switch strings.ToUpper(s) {
	case "L0":
		return core.L0, nil
	case "L1":
		return core.L1, nil
	case "L2":
		return core.L2, nil
	case "L3":
		return core.L3, nil
	}
	return 0, fmt.Errorf("unknown level %q (want L0..L3)", s)
}

// validate rejects malformed specs at admission time.
func (js *JobSpec) validate(hasUpload bool) error {
	if _, err := parseLevel(js.Level); err != nil {
		return err
	}
	switch js.Workload {
	case "", "stdcell", "sram", "routed", "patterns":
	default:
		return fmt.Errorf("unknown workload %q", js.Workload)
	}
	if js.Workload == "" && !hasUpload {
		return fmt.Errorf("job needs a GDS upload body or a named workload")
	}
	if js.Workload != "" && hasUpload {
		return fmt.Errorf("job has both a GDS upload and a workload; pick one")
	}
	if js.Inject != "" {
		if _, err := faults.Parse(js.Inject); err != nil {
			return err
		}
	}
	if _, err := optics.ParsePrecision(js.Flow.Precision); err != nil {
		return err
	}
	if _, err := parseDuration(js.Flow.TileTimeout); err != nil {
		return fmt.Errorf("tileTimeout: %w", err)
	}
	if _, err := parseDuration(js.Flow.Deadline); err != nil {
		return fmt.Errorf("deadline: %w", err)
	}
	if js.Flow.Prior != "" {
		// Fail at admission, not mid-run: the table must load on this
		// daemon (workers validate their own copy per solve).
		if _, err := loadPrior(js.Flow.Prior); err != nil {
			return err
		}
	}
	return nil
}

// parseDuration parses an optional duration string ("" is zero).
func parseDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// RunStats is the correction outcome surfaced in a job's status: the
// core TileStats resilience and reuse accounting, minus the bulky
// per-degradation records (those live in the run report artifact).
type RunStats struct {
	Tiles          int     `json:"tiles"`
	CorrectedTiles int     `json:"corrected_tiles"`
	ReusedTiles    int     `json:"reused_tiles"`
	CleanTiles     int     `json:"clean_tiles"`
	ResumedTiles   int     `json:"resumed_tiles"`
	RemoteTiles    int     `json:"remote_tiles,omitempty"`
	Retries        int     `json:"retries"`
	Panics         int     `json:"panics"`
	Timeouts       int     `json:"timeouts"`
	FailedTiles    int     `json:"failed_tiles"`
	Iterations     int     `json:"iterations"`
	Seconds        float64 `json:"seconds"`
	WorstRMS       float64 `json:"worst_rms"`
	Polygons       int     `json:"polygons"`
	// Pattern-library accounting for jobs that opted in (zero
	// otherwise): tiles served from the shared cross-run library by the
	// exact and similarity rungs, similarity candidates rejected by the
	// halo-validity check, probed classes that missed, and solved
	// classes appended back.
	LibExactTiles   int `json:"patlib_exact_tiles,omitempty"`
	LibSimilarTiles int `json:"patlib_similarity_tiles,omitempty"`
	LibHaloRejects  int `json:"patlib_halo_rejections,omitempty"`
	LibMisses       int `json:"patlib_misses,omitempty"`
	LibAppends      int `json:"patlib_appends,omitempty"`
	// Model-iteration summary (DESIGN.md 5j): MeanIterations averages
	// Iterations over freshly corrected tiles; the prior fields are
	// nonzero only when FlowSpec.Prior warm-started model runs.
	MeanIterations  float64 `json:"mean_iterations,omitempty"`
	WarmTiles       int     `json:"warm_tiles,omitempty"`
	WarmFragments   int     `json:"warm_fragments,omitempty"`
	PriorSavedIters int     `json:"prior_saved_iterations,omitempty"`
}

// runStatsFrom folds core TileStats into the status shape. FailedTiles
// counts the (tile, pass) results that fell down the degradation
// ladder — geometry that shipped rule-based or uncorrected and must be
// re-verified before tape-out.
func runStatsFrom(st core.TileStats) RunStats {
	return RunStats{
		Tiles:          st.Tiles,
		CorrectedTiles: st.CorrectedTiles,
		ReusedTiles:    st.ReusedTiles,
		CleanTiles:     st.CleanTiles,
		ResumedTiles:   st.ResumedTiles,
		RemoteTiles:    st.RemoteTiles,
		Retries:        st.Retries,
		Panics:         st.Panics,
		Timeouts:       st.Timeouts,
		FailedTiles:    st.DegradedRules + st.DegradedUncorrected,
		Iterations:     st.Iterations,
		Seconds:        st.Seconds,
		WorstRMS:       st.WorstRMS,
		Polygons:       st.Corrected,

		LibExactTiles:   st.LibExactTiles,
		LibSimilarTiles: st.LibSimilarTiles,
		LibHaloRejects:  st.LibHaloRejects,
		LibMisses:       st.LibMisses,
		LibAppends:      st.LibAppends,

		MeanIterations:  meanIterations(st),
		WarmTiles:       st.WarmTiles,
		WarmFragments:   st.WarmFragments,
		PriorSavedIters: st.PriorSavedIters,
	}
}

func meanIterations(st core.TileStats) float64 {
	if st.CorrectedTiles == 0 {
		return 0
	}
	return float64(st.Iterations) / float64(st.CorrectedTiles)
}

// JobStatus is the wire shape of one job, served by GET /jobs/{id} and
// streamed over SSE.
type JobStatus struct {
	ID        string             `json:"id"`
	State     State              `json:"state"`
	Spec      JobSpec            `json:"spec"`
	Upload    bool               `json:"upload,omitempty"`
	QueuePos  int                `json:"queue_pos,omitempty"`
	Submitted time.Time          `json:"submitted"`
	Started   time.Time          `json:"started"`
	Finished  time.Time          `json:"finished"`
	Progress  core.ProgressEvent `json:"progress"`
	Stats     *RunStats          `json:"stats,omitempty"`
	// Recovered marks a job requeued by crash recovery after a daemon
	// restart; its checkpointed tiles resume instead of re-correcting.
	Recovered bool `json:"recovered,omitempty"`
	// Error is the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// ResultBytes is the size of the result.gds artifact once done.
	ResultBytes int64 `json:"result_bytes,omitempty"`
	// Latency is the queued→running→done wall-clock breakdown; live
	// jobs report the elapsed-so-far leg.
	Latency *JobLatency `json:"latency,omitempty"`
}

// JobLatency decomposes a job's end-to-end wall clock into its queue
// wait and its run time (the same split the
// goopc_server_job_queue_seconds / goopc_server_job_run_seconds
// histograms aggregate across jobs).
type JobLatency struct {
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// latency computes the breakdown at time now. Legs still in flight
// (queued, running) report elapsed time so far; a job cancelled while
// queued closes its queue leg at the cancellation instant.
func (j *Job) latency(now time.Time) *JobLatency {
	if j.submitted.IsZero() {
		return nil
	}
	queueEnd := j.started
	if queueEnd.IsZero() {
		if queueEnd = j.finished; queueEnd.IsZero() {
			queueEnd = now
		}
	}
	l := &JobLatency{QueueSeconds: queueEnd.Sub(j.submitted).Seconds()}
	if !j.started.IsZero() {
		runEnd := j.finished
		if runEnd.IsZero() {
			runEnd = now
		}
		l.RunSeconds = runEnd.Sub(j.started).Seconds()
	}
	l.TotalSeconds = l.QueueSeconds + l.RunSeconds
	return l
}

// Job is the server-side job state. Mutable fields are guarded by the
// owning Server's mutex except the progress atomics, which scheduler
// worker goroutines update directly.
type Job struct {
	ID   string
	Spec JobSpec
	// dir is the job's artifact directory under the server data dir.
	dir string
	// upload marks a GDS-upload job (input.gds holds the stream).
	upload bool
	// seq orders FIFO within a priority level.
	seq int64

	state     State
	recovered bool
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	stats     *RunStats
	resultLen int64

	// runCtx is the job's run-scoped context, derived from the server
	// lifecycle context when a worker dequeues the job.
	runCtx context.Context
	// cancel aborts the running correction; cancelRequested separates
	// a client DELETE (terminal: cancelled) from a daemon shutdown
	// (job stays running on disk and recovers on restart).
	cancel          func()
	cancelRequested bool

	// rec is the job's flight recorder: lifecycle events land on worker
	// ring 0 here, and the run wires the same recorder into
	// Flow.Tracer so tile events interleave on the one timeline. Set
	// once at admission (or recovery requeue) and never reassigned, so
	// reads need no lock. Nil only for terminal jobs rebuilt from disk
	// history, which serve their persisted trace.json artifact instead.
	rec *trace.Recorder

	// Live progress, updated from the Flow.Progress hook.
	pass, passes, doneTiles, totalTiles atomic.Int64
	// version bumps on every observable change; SSE streams poll it.
	version atomic.Int64
}

// bump marks the job changed for SSE watchers.
func (j *Job) bump() { j.version.Add(1) }

// emit records one job-lifecycle event on the job's flight recorder
// (nil-safe: history jobs without a recorder drop it).
func (j *Job) emit(k trace.Kind, detail string) {
	j.rec.Worker(0).Emit(k, 0, geom.Rect{}, 0, 0, 0, detail)
}

// jobChromeOptions maps a job onto Chrome trace process identity: the
// numeric job sequence becomes the pid so multi-job traces merge
// side by side, and ring 0 — job lifecycle plus the tile scheduler —
// renders as the "job" track.
func jobChromeOptions(id string) trace.ChromeOptions {
	pid, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return trace.ChromeOptions{PID: pid, ProcessName: "opcd job " + id, Thread0Name: "job"}
}

// progressEvent snapshots the live tile progress.
func (j *Job) progressEvent() core.ProgressEvent {
	return core.ProgressEvent{
		Pass:       int(j.pass.Load()),
		Passes:     int(j.passes.Load()),
		DoneTiles:  int(j.doneTiles.Load()),
		TotalTiles: int(j.totalTiles.Load()),
	}
}
