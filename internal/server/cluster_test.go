package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"goopc/internal/cluster"
	"goopc/internal/core"
	"goopc/internal/faults"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/obs"
)

// TestMain doubles as the cluster-smoke worker process: when
// GOOPC_WORKER_JOIN is set, the re-exec'd test binary becomes a real
// opcd-style worker the test can kill -9 mid-shard.
func TestMain(m *testing.M) {
	if join := os.Getenv("GOOPC_WORKER_JOIN"); join != "" {
		workerProcess(join)
		return
	}
	os.Exit(m.Run())
}

func workerProcess(join string) {
	var plan *faults.Plan
	if s := os.Getenv("GOOPC_WORKER_INJECT"); s != "" {
		p, err := faults.Parse(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker inject:", err)
			os.Exit(2)
		}
		plan = p
	}
	log := obs.NewLogger(os.Stderr, obs.ParseLogLevel(true, false), "smoke-worker")
	_ = cluster.RunWorker(context.Background(), cluster.WorkerConfig{
		Coordinator: join,
		Name:        os.Getenv("GOOPC_WORKER_NAME"),
		Solve:       NewWorkerSolver(log, plan),
		FaultPlan:   plan,
		Log:         log,
	})
}

// testCoordinator wires a fast-lease coordinator into a test server
// config.
func testCoordinator(c *Config) *cluster.Coordinator {
	co := cluster.New(cluster.Config{
		LeaseTTL:     500 * time.Millisecond,
		PollDelay:    10 * time.Millisecond,
		ShardClasses: 1,
		Registry:     c.Registry,
		Log:          c.Log,
	})
	c.Cluster = co
	return co
}

// runInprocWorker runs a cluster worker goroutine for the test's
// lifetime.
func runInprocWorker(t *testing.T, url, name string) {
	t.Helper()
	wlog := obs.NewLogger(io.Discard, 0, name)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = cluster.RunWorker(ctx, cluster.WorkerConfig{
			Coordinator: url, Name: name, Solve: NewWorkerSolver(wlog, nil), Log: wlog,
		})
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

func waitClusterWorkers(t *testing.T, co *cluster.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(co.Status().Workers) == n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("never saw %d cluster workers: %+v", n, co.Status())
}

// directRun is the oracle: the same correction straight through the
// core engine, returning the result.gds bytes and the wall time.
func directRun(t *testing.T, target []geom.Polygon, level core.Level, tile geom.Coord, parallel bool) ([]byte, time.Duration) {
	t.Helper()
	base, err := buildFlow(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	f := *base
	t0 := time.Now()
	res, _, err := f.CorrectWindowedCtx(context.Background(), target, level, tile, parallel)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(t0)
	out := layout.New("corrected")
	cell := out.MustCell("TOP")
	for _, p := range res.Corrected {
		cell.AddPolygon(layout.OPCLayer(layout.Poly), p)
	}
	out.SetTop(cell)
	var buf bytes.Buffer
	if _, err := layout.WriteGDS(&buf, out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), wall
}

// fetchResult downloads a done job's result.gds.
func fetchResult(t *testing.T, c *Client, id string) []byte {
	t.Helper()
	var got bytes.Buffer
	if _, err := c.Fetch(context.Background(), id, "result.gds", &got); err != nil {
		t.Fatalf("fetch %s result: %v", id, err)
	}
	return got.Bytes()
}

// TestServerClusterParity: a coordinator daemon with two in-process
// workers corrects a job whose every class solves remotely, and the
// result is bit-identical to the direct single-process run.
func TestServerClusterParity(t *testing.T) {
	target := fourClusters()
	var co *cluster.Coordinator
	env := startTestServer(t, func(c *Config) { co = testCoordinator(c) })
	runInprocWorker(t, env.ts.URL, "inproc-1")
	runInprocWorker(t, env.ts.URL, "inproc-2")
	waitClusterWorkers(t, co, 2)

	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec()}
	st, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, target)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitState(t, env.c, st.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final.State != StateDone {
		t.Fatalf("cluster job %s (%s), want done", final.State, final.Error)
	}
	if final.Stats == nil || final.Stats.RemoteTiles == 0 {
		t.Fatalf("no remote tiles in stats: %+v", final.Stats)
	}

	want, _ := directRun(t, target, core.L2, 2500, true)
	if got := fetchResult(t, env.c, st.ID); !bytes.Equal(got, want) {
		t.Errorf("cluster result.gds (%d bytes) differs from direct run (%d bytes)",
			len(got), len(want))
	}

	// The /cluster/status endpoint is mounted on the same mux.
	resp, err := http.Get(env.ts.URL + "/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs cluster.StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Workers) != 2 || cs.Remote == 0 || cs.Completed == 0 {
		t.Errorf("cluster status after job: %+v", cs)
	}
}

// TestServerClusterDownFallsBackLocal: a coordinator with zero workers
// must complete jobs single-process with identical output — the
// degenerate cluster is never worse than no cluster.
func TestServerClusterDownFallsBackLocal(t *testing.T) {
	target := fourClusters()
	var co *cluster.Coordinator
	env := startTestServer(t, func(c *Config) { co = testCoordinator(c) })

	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec()}
	st, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, target)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitState(t, env.c, st.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final.State != StateDone {
		t.Fatalf("workerless cluster job %s (%s), want done", final.State, final.Error)
	}
	if final.Stats == nil || final.Stats.RemoteTiles != 0 {
		t.Fatalf("workerless job reported remote tiles: %+v", final.Stats)
	}
	want, _ := directRun(t, target, core.L2, 2500, true)
	if got := fetchResult(t, env.c, st.ID); !bytes.Equal(got, want) {
		t.Error("local-fallback result differs from direct run")
	}
	if cs := co.Status(); cs.Fallbacks == 0 {
		t.Errorf("no local fallbacks recorded: %+v", cs)
	}
}

// TestServerTenantQuota: one tenant hits its per-tenant queue cap and
// gets 429 while the global queue still has room and another tenant is
// still admitted. /status reports the per-tenant breakdown.
func TestServerTenantQuota(t *testing.T) {
	env := startTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 8
		c.TenantQuota = 1
	})
	// A slow tiled job holds the single pool worker so later ones queue.
	small := fourClusters()[:1]
	slow := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec(),
		Inject: "seed=1;tile:delay:n=50:d=30s", Tenant: "acme"}
	submit := func(spec JobSpec) (JobStatus, error) {
		return env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, small)))
	}
	st1, err := submit(slow)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitState(t, env.c, st1.ID, func(s JobStatus) bool { return s.State == StateRunning }, "running")

	st2, err := submit(slow)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := submit(slow); err == nil {
		t.Fatal("third acme job admitted past the tenant quota")
	} else {
		var be *BusyError
		if !asBusy(err, &be) || !strings.Contains(be.Message, "tenant") {
			t.Fatalf("quota rejection: got %v, want tenant BusyError", err)
		}
	}
	other := slow
	other.Tenant = "umbra"
	st3, err := submit(other)
	if err != nil {
		t.Fatalf("other tenant rejected alongside acme's quota: %v", err)
	}

	// /status surfaces the per-tenant queue view.
	resp, err := http.Get(env.ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"acme"`) || !strings.Contains(string(body), `"umbra"`) {
		t.Errorf("/status missing tenant breakdown: %s", body)
	}

	for _, id := range []string{st1.ID, st2.ID, st3.ID} {
		if _, err := env.c.Cancel(context.Background(), id); err != nil {
			t.Errorf("cancel %s: %v", id, err)
		}
	}
}

func asBusy(err error, out **BusyError) bool {
	be, ok := err.(*BusyError)
	if ok {
		*out = be
	}
	return ok
}

// spawnWorker re-execs the test binary as a real worker process.
func spawnWorker(t *testing.T, url, name, inject string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"GOOPC_WORKER_JOIN="+url,
		"GOOPC_WORKER_NAME="+name,
		"GOOPC_WORKER_INJECT="+inject)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

// waitWorkerHoldsShard waits until the named worker is mid-shard.
func waitWorkerHoldsShard(t *testing.T, co *cluster.Coordinator, name string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range co.Status().Workers {
			if w.Name == name && w.Shard != "" {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker %s never held a shard: %+v", name, co.Status())
}

// manyClusters builds n geometrically distinct isolated clusters, each
// its own equivalence class, three tiles apart at tile 2500.
func manyClusters(n int) []geom.Polygon {
	out := make([]geom.Polygon, n)
	for i := range out {
		x := geom.Coord(200 + 7500*i)
		h := geom.Coord(600 + 180*i)
		out[i] = geom.R(x, 200, x+180, 200+h).Polygon()
	}
	return out
}

// TestClusterSmoke is the end-to-end robustness gate (make
// cluster-smoke): a coordinator with three REAL worker processes
// survives kill -9 of one worker mid-shard with bit-identical output,
// and — on machines with the cores for it — a clean 3-worker run
// beats the forced-serial single-process run on the same workload.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke spawns worker subprocesses")
	}
	target := manyClusters(8)
	const level, tile = core.L3, geom.Coord(2500)
	var co *cluster.Coordinator
	env := startTestServer(t, func(c *Config) { co = testCoordinator(c) })

	// Three workers; the victim stalls forever on every class it
	// touches, so the kill below always lands mid-shard.
	spawnWorker(t, env.ts.URL, "clean-1", "")
	spawnWorker(t, env.ts.URL, "clean-2", "")
	victim := spawnWorker(t, env.ts.URL, "victim", "seed=1;worker.solve:delay:n=99:d=120s")
	waitClusterWorkers(t, co, 3)

	// The oracle and serial baseline, measured while the cluster idles.
	want, serialWall := directRun(t, target, level, tile, false)

	spec := JobSpec{Level: "L3", TileNM: tile, Flow: testSpec()}
	st, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, target)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitWorkerHoldsShard(t, co, "victim")
	if err := victim.Process.Kill(); err != nil { // SIGKILL, mid-shard
		t.Fatal(err)
	}
	final := waitState(t, env.c, st.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final.State != StateDone {
		t.Fatalf("job after worker kill: %s (%s), want done", final.State, final.Error)
	}
	if final.Stats == nil || final.Stats.RemoteTiles == 0 {
		t.Fatalf("no remote tiles after worker kill: %+v", final.Stats)
	}
	if got := fetchResult(t, env.c, st.ID); !bytes.Equal(got, want) {
		t.Errorf("post-kill result.gds (%d bytes) differs from direct serial run (%d bytes)",
			len(got), len(want))
	}
	cs := co.Status()
	if cs.Requeued == 0 {
		t.Errorf("kill -9 mid-shard did not requeue: %+v", cs)
	}

	// Clean timed run with three healthy workers. Skipped on small
	// machines: the comparison needs the coordinator and three workers
	// to actually run concurrently.
	if runtime.NumCPU() < 4 {
		t.Logf("only %d CPUs; skipping the cluster-vs-serial timing assertion", runtime.NumCPU())
		return
	}
	spawnWorker(t, env.ts.URL, "clean-3", "")
	waitClusterWorkers(t, co, 3) // victim's registration expires; clean-3 joins
	st2, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, target)))
	if err != nil {
		t.Fatalf("submit timed run: %v", err)
	}
	final2 := waitState(t, env.c, st2.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if final2.State != StateDone {
		t.Fatalf("timed run: %s (%s)", final2.State, final2.Error)
	}
	if got := fetchResult(t, env.c, st2.ID); !bytes.Equal(got, want) {
		t.Errorf("timed-run result differs from direct serial run")
	}
	clusterWall := time.Duration(final2.Latency.RunSeconds * float64(time.Second))
	t.Logf("cluster wall %s vs single-process serial wall %s", clusterWall, serialWall)
	if clusterWall >= serialWall {
		t.Errorf("3-worker cluster (%s) not faster than single-process serial (%s)",
			clusterWall, serialWall)
	}
}
