package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with code, then delegates.
func flakyHandler(n int32, code int, next http.Handler) http.Handler {
	var served atomic.Int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= n {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, "transient")
			return
		}
		next.ServeHTTP(w, r)
	})
}

func okJobs() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []JobStatus{{ID: "j000001", State: StateDone}})
	})
}

func TestClientRetriesTransient5xx(t *testing.T) {
	ts := httptest.NewServer(flakyHandler(2, http.StatusServiceUnavailable, okJobs()))
	defer ts.Close()
	c := NewClient(ts.URL)
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatalf("transient 503s not absorbed: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j000001" {
		t.Fatalf("unexpected list after retries: %+v", jobs)
	}
}

func TestClientRetriesBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(flakyHandler(100, http.StatusInternalServerError, okJobs()))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 1
	_, err := c.List(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("exhausted retries: got %v, want surfaced 500", err)
	}
}

func TestClientDoesNotRetryPermanent4xx(t *testing.T) {
	var served atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		writeError(w, http.StatusNotFound, "no such job")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	_, err := c.Status(context.Background(), "j9")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("got %v, want 404", err)
	}
	if n := served.Load(); n != 1 {
		t.Fatalf("404 was retried: %d requests", n)
	}
}

func TestClientRetries429WithinCap(t *testing.T) {
	ts := httptest.NewServer(flakyHandler(1, http.StatusTooManyRequests, okJobs()))
	defer ts.Close()
	c := NewClient(ts.URL)
	t0 := time.Now()
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("short 429 not absorbed: %v", err)
	}
	// The Retry-After: 1 hint must actually be honored.
	if d := time.Since(t0); d < 900*time.Millisecond {
		t.Fatalf("retried after %s, before the server's 1s hint", d)
	}
}

func TestClientSurfacesLong429(t *testing.T) {
	// A Retry-After beyond busyRetryCap must surface immediately as
	// BusyError (the admission-backpressure contract).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusTooManyRequests, "queue full")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	t0 := time.Now()
	_, err := c.List(context.Background())
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != 30*time.Second {
		t.Fatalf("got %v, want BusyError with 30s hint", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("long 429 blocked for %s before surfacing", d)
	}
}

func TestClientRetryReplaysBody(t *testing.T) {
	var bodies atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Workload != "sram" {
			writeError(w, http.StatusBadRequest, "body not replayed")
			return
		}
		if bodies.Add(1) == 1 {
			writeError(w, http.StatusServiceUnavailable, "transient")
			return
		}
		writeJSON(w, http.StatusAccepted, JobStatus{ID: "j000042", State: StateQueued})
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	st, err := c.Submit(context.Background(), JobSpec{Workload: "sram", Level: "L2"})
	if err != nil {
		t.Fatalf("submit with one transient failure: %v", err)
	}
	if st.ID != "j000042" {
		t.Fatalf("submit returned %+v", st)
	}
	if n := bodies.Load(); n != 2 {
		t.Fatalf("server decoded %d bodies, want 2", n)
	}
}

// TestClientSubmitReplayAfterLostResponse models the at-least-once
// hazard of retrying a non-idempotent POST: the first submit commits
// on the real server but its response is lost (connection killed
// before the reply reaches the client). The client's transparent retry
// must dedupe via the Idempotency-Key instead of creating a second
// job.
func TestClientSubmitReplayAfterLostResponse(t *testing.T) {
	env := startTestServer(t, nil)
	inner := env.srv.Handler()
	var submits atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/jobs" && submits.Add(1) == 1 {
			// Commit the job server-side, then kill the connection so the
			// client never sees the 202.
			inner.ServeHTTP(httptest.NewRecorder(), r)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("hijack unsupported")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c := NewClient(flaky.URL)
	st, err := c.Submit(context.Background(), JobSpec{Workload: "patterns", Level: "L1", Flow: testSpec()})
	if err != nil {
		t.Fatalf("submit across lost response: %v", err)
	}
	if n := submits.Load(); n < 2 {
		t.Fatalf("submit was not replayed (%d attempts)", n)
	}
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("replayed submit duplicated the job: got %s, server has %+v", st.ID, jobs)
	}
}

// TestSubmitIdempotencyKeyDedupes drives the header contract directly:
// a second POST /jobs with the same key answers 200 with the first
// job's status; a different key admits a new job.
func TestSubmitIdempotencyKeyDedupes(t *testing.T) {
	env := startTestServer(t, nil)
	post := func(key string) (int, JobStatus) {
		body, _ := json.Marshal(JobSpec{Workload: "patterns", Level: "L1", Flow: testSpec()})
		req, err := http.NewRequest(http.MethodPost, env.ts.URL+"/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}
	code1, st1 := post("key-A")
	if code1 != http.StatusAccepted || st1.ID == "" {
		t.Fatalf("first submit: HTTP %d %+v", code1, st1)
	}
	code2, st2 := post("key-A")
	if code2 != http.StatusOK || st2.ID != st1.ID {
		t.Fatalf("replay: HTTP %d job %s, want 200 with %s", code2, st2.ID, st1.ID)
	}
	code3, st3 := post("key-B")
	if code3 != http.StatusAccepted || st3.ID == st1.ID {
		t.Fatalf("fresh key: HTTP %d job %s, want a new job", code3, st3.ID)
	}
	jobs, err := env.c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("server has %d jobs, want 2", len(jobs))
	}
}
