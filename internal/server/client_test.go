package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with code, then delegates.
func flakyHandler(n int32, code int, next http.Handler) http.Handler {
	var served atomic.Int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= n {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, "transient")
			return
		}
		next.ServeHTTP(w, r)
	})
}

func okJobs() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []JobStatus{{ID: "j000001", State: StateDone}})
	})
}

func TestClientRetriesTransient5xx(t *testing.T) {
	ts := httptest.NewServer(flakyHandler(2, http.StatusServiceUnavailable, okJobs()))
	defer ts.Close()
	c := NewClient(ts.URL)
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatalf("transient 503s not absorbed: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j000001" {
		t.Fatalf("unexpected list after retries: %+v", jobs)
	}
}

func TestClientRetriesBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(flakyHandler(100, http.StatusInternalServerError, okJobs()))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 1
	_, err := c.List(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("exhausted retries: got %v, want surfaced 500", err)
	}
}

func TestClientDoesNotRetryPermanent4xx(t *testing.T) {
	var served atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		writeError(w, http.StatusNotFound, "no such job")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	_, err := c.Status(context.Background(), "j9")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("got %v, want 404", err)
	}
	if n := served.Load(); n != 1 {
		t.Fatalf("404 was retried: %d requests", n)
	}
}

func TestClientRetries429WithinCap(t *testing.T) {
	ts := httptest.NewServer(flakyHandler(1, http.StatusTooManyRequests, okJobs()))
	defer ts.Close()
	c := NewClient(ts.URL)
	t0 := time.Now()
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("short 429 not absorbed: %v", err)
	}
	// The Retry-After: 1 hint must actually be honored.
	if d := time.Since(t0); d < 900*time.Millisecond {
		t.Fatalf("retried after %s, before the server's 1s hint", d)
	}
}

func TestClientSurfacesLong429(t *testing.T) {
	// A Retry-After beyond busyRetryCap must surface immediately as
	// BusyError (the admission-backpressure contract).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusTooManyRequests, "queue full")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	t0 := time.Now()
	_, err := c.List(context.Background())
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != 30*time.Second {
		t.Fatalf("got %v, want BusyError with 30s hint", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("long 429 blocked for %s before surfacing", d)
	}
}

func TestClientRetryReplaysBody(t *testing.T) {
	var bodies atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Workload != "sram" {
			writeError(w, http.StatusBadRequest, "body not replayed")
			return
		}
		if bodies.Add(1) == 1 {
			writeError(w, http.StatusServiceUnavailable, "transient")
			return
		}
		writeJSON(w, http.StatusAccepted, JobStatus{ID: "j000042", State: StateQueued})
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	st, err := c.Submit(context.Background(), JobSpec{Workload: "sram", Level: "L2"})
	if err != nil {
		t.Fatalf("submit with one transient failure: %v", err)
	}
	if st.ID != "j000042" {
		t.Fatalf("submit returned %+v", st)
	}
	if n := bodies.Load(); n != 2 {
		t.Fatalf("server decoded %d bodies, want 2", n)
	}
}
