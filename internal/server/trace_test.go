package server

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"goopc/internal/obs/trace"
)

// chromeTrace is the subset of the Chrome trace-event document the
// trace endpoint serves that the test inspects.
type chromeTrace struct {
	OtherData struct {
		Tool    string        `json:"tool"`
		Summary trace.Summary `json:"summary"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
	} `json:"traceEvents"`
}

// TestServerTraceAndLatency runs one upload job end to end and checks
// the flight-recorder surface: GET /jobs/{id}/trace returns a Chrome
// timeline whose summary carries the job lifecycle and the scheduler's
// tile outcomes, the trace.json artifact lands in the job dir, the
// run report embeds the flight summary, the latency breakdown splits
// queue wait from run time, and the queue/run histograms observe.
func TestServerTraceAndLatency(t *testing.T) {
	env := startTestServer(t, nil)
	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec()}
	st, err := env.c.SubmitGDS(context.Background(), spec, bytes.NewReader(gdsBytes(t, fourClusters())))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := st.ID
	final := waitState(t, env.c, id, func(s JobStatus) bool { return s.State.Terminal() }, "terminal state")
	if final.State != StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	// Latency breakdown: both legs present, total is their sum, and the
	// run leg brackets the Started→Finished interval.
	if final.Latency == nil {
		t.Fatal("done job has no latency breakdown")
	}
	l := final.Latency
	if l.QueueSeconds < 0 || l.RunSeconds <= 0 {
		t.Fatalf("latency legs: %+v", l)
	}
	if diff := l.TotalSeconds - (l.QueueSeconds + l.RunSeconds); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("latency total %v != queue %v + run %v", l.TotalSeconds, l.QueueSeconds, l.RunSeconds)
	}
	// The server computed the run leg from monotonic readings; the
	// round-tripped timestamps only keep wall time, so allow 1ms slack.
	wantRun := final.Finished.Sub(final.Started).Seconds()
	if diff := l.RunSeconds - wantRun; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("run leg %v != finished-started %v", l.RunSeconds, wantRun)
	}

	// The trace endpoint serves a loadable Chrome document that accounts
	// for the whole lifecycle: admitted/enqueued/dequeued/running/done
	// exactly once each, a drop-free timeline, and tile outcomes that
	// agree with the status stats.
	var buf bytes.Buffer
	if _, err := env.c.Trace(context.Background(), id, &buf); err != nil {
		t.Fatalf("fetch trace: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.OtherData.Tool != "goopc" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace doc: tool=%q, %d events", doc.OtherData.Tool, len(doc.TraceEvents))
	}
	sum := doc.OtherData.Summary
	if sum.Drops != 0 {
		t.Fatalf("trace dropped %d events", sum.Drops)
	}
	for _, kind := range []string{"admitted", "enqueued", "dequeued", "running", "done"} {
		if sum.ByKind[kind] != 1 {
			t.Fatalf("lifecycle kind %q seen %d times, want 1 (by_kind %v)", kind, sum.ByKind[kind], sum.ByKind)
		}
	}
	if final.Stats == nil || sum.Tiles.Scheduled == 0 ||
		sum.Tiles.Solved+sum.Tiles.Dedup != final.Stats.CorrectedTiles+final.Stats.ReusedTiles {
		t.Fatalf("trace tiles %+v do not match stats %+v", sum.Tiles, final.Stats)
	}
	// The queued and running slices must render as complete events in
	// the job's numeric pid.
	slices := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			slices[ev.Name] = true
			if ev.PID != 1 {
				t.Fatalf("slice %q in pid %d, want 1 (job j000001)", ev.Name, ev.PID)
			}
		}
	}
	if !slices["queued"] || !slices["running"] {
		t.Fatalf("missing lifecycle slices in %v", slices)
	}

	// The same timeline persisted as the trace.json artifact, and the
	// run report embeds the flight summary.
	job := env.srv.lookup(id)
	if _, err := os.Stat(filepath.Join(job.dir, "trace.json")); err != nil {
		t.Fatalf("trace.json artifact: %v", err)
	}
	rep, err := os.ReadFile(filepath.Join(job.dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rep, []byte(`"flight"`)) {
		t.Fatalf("report.json has no flight summary: %.200s", rep)
	}

	// Both latency histograms observed the job.
	snap := env.reg.Snapshot()
	if snap.Histograms["goopc_server_job_queue_seconds"].Count != 1 {
		t.Fatalf("queue_seconds histogram: %+v", snap.Histograms["goopc_server_job_queue_seconds"])
	}
	if snap.Histograms["goopc_server_job_run_seconds"].Count != 1 {
		t.Fatalf("run_seconds histogram: %+v", snap.Histograms["goopc_server_job_run_seconds"])
	}
}
