package server

import "testing"

func qjob(seq int64, prio int) *Job {
	return &Job{ID: "j", seq: seq, Spec: JobSpec{Priority: prio}}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	var q jobQueue
	a := qjob(1, 0)
	b := qjob(2, 5)
	c := qjob(3, 5)
	d := qjob(4, 0)
	for _, j := range []*Job{a, b, c, d} {
		q.push(j)
	}
	want := []*Job{b, c, a, d} // priority desc, submission order within
	for i, w := range want {
		got := q.pop()
		if got != w {
			t.Fatalf("pop %d: got seq %d prio %d, want seq %d prio %d",
				i, got.seq, got.Spec.Priority, w.seq, w.Spec.Priority)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue is not nil")
	}
}

func TestQueueRemoveAndPosition(t *testing.T) {
	var q jobQueue
	a := qjob(1, 0)
	b := qjob(2, 9)
	c := qjob(3, 0)
	q.push(a)
	q.push(b)
	q.push(c)

	if got := q.position(b); got != 1 {
		t.Errorf("position(high-prio) = %d, want 1", got)
	}
	if got := q.position(a); got != 2 {
		t.Errorf("position(a) = %d, want 2", got)
	}
	if got := q.position(c); got != 3 {
		t.Errorf("position(c) = %d, want 3", got)
	}
	outside := qjob(99, 0)
	if got := q.position(outside); got != 0 {
		t.Errorf("position(absent) = %d, want 0", got)
	}

	if !q.remove(a) {
		t.Fatal("remove(a) reported absent")
	}
	if q.remove(a) {
		t.Fatal("second remove(a) reported present")
	}
	if got := q.position(c); got != 2 {
		t.Errorf("position(c) after remove = %d, want 2", got)
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2", q.Len())
	}
}

func tjob(seq int64, tenant string, prio int) *Job {
	return &Job{ID: "j", seq: seq, Spec: JobSpec{Priority: prio, Tenant: tenant}}
}

// drainTenants pops the whole queue and returns the tenant sequence.
func drainTenants(q *jobQueue) []string {
	var out []string
	for {
		j := q.pop()
		if j == nil {
			return out
		}
		out = append(out, j.Spec.Tenant)
	}
}

func TestQueueTenantFairInterleave(t *testing.T) {
	var q jobQueue
	// Tenant a floods the queue first; b submits after. Equal weights
	// must interleave them rather than let a's backlog starve b.
	for i := int64(1); i <= 4; i++ {
		q.push(tjob(i, "a", 0))
	}
	q.push(tjob(5, "b", 0))
	q.push(tjob(6, "b", 0))
	got := drainTenants(&q)
	want := []string{"a", "b", "a", "b", "a", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestQueueTenantWeights(t *testing.T) {
	q := jobQueue{weights: map[string]int{"heavy": 3}}
	for i := int64(1); i <= 6; i++ {
		q.push(tjob(i, "heavy", 0))
	}
	for i := int64(7); i <= 8; i++ {
		q.push(tjob(i, "light", 0))
	}
	got := drainTenants(&q)
	// With weight 3 vs 1, heavy takes three turns for each of light's.
	want := []string{"heavy", "light", "heavy", "heavy", "heavy", "light", "heavy", "heavy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestQueueTenantPriorityWithinTenant(t *testing.T) {
	var q jobQueue
	low := tjob(1, "a", 0)
	high := tjob(2, "a", 9)
	other := tjob(3, "b", 0)
	q.push(low)
	q.push(high)
	q.push(other)
	// Priority still rules within a tenant; fairness rules across them.
	if j := q.pop(); j != high {
		t.Fatalf("first pop seq %d, want high-prio a", j.seq)
	}
	if j := q.pop(); j != other {
		t.Fatalf("second pop seq %d, want tenant b", j.seq)
	}
	if j := q.pop(); j != low {
		t.Fatalf("third pop seq %d, want low-prio a", j.seq)
	}
}

func TestQueueTenantPositionAndLen(t *testing.T) {
	var q jobQueue
	a1 := tjob(1, "a", 0)
	a2 := tjob(2, "a", 0)
	b1 := tjob(3, "b", 0)
	q.push(a1)
	q.push(a2)
	q.push(b1)
	if got := q.position(a1); got != 1 {
		t.Errorf("position(a1) = %d, want 1", got)
	}
	if got := q.position(b1); got != 2 {
		t.Errorf("position(b1) = %d, want 2 (fair share)", got)
	}
	if got := q.position(a2); got != 3 {
		t.Errorf("position(a2) = %d, want 3", got)
	}
	if got := q.tenantLen("a"); got != 2 {
		t.Errorf("tenantLen(a) = %d, want 2", got)
	}
	if got := q.tenantLen("nope"); got != 0 {
		t.Errorf("tenantLen(nope) = %d, want 0", got)
	}
	counts := q.tenantCounts()
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Errorf("tenantCounts = %v", counts)
	}
}

func TestJobSpecValidate(t *testing.T) {
	ok := JobSpec{Workload: "stdcell", Level: "L2"}
	if err := ok.validate(false); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		spec   JobSpec
		upload bool
	}{
		{"bad level", JobSpec{Workload: "stdcell", Level: "L9"}, false},
		{"no source", JobSpec{Level: "L2"}, false},
		{"two sources", JobSpec{Workload: "sram", Level: "L2"}, true},
		{"bad workload", JobSpec{Workload: "nope", Level: "L2"}, false},
		{"bad inject", JobSpec{Workload: "sram", Level: "L2", Inject: "tile:badkind"}, false},
		{"bad timeout", JobSpec{Workload: "sram", Level: "L2", Flow: FlowSpec{TileTimeout: "xyz"}}, false},
		{"bad deadline", JobSpec{Workload: "sram", Level: "L2", Flow: FlowSpec{Deadline: "-"}}, false},
		{"missing prior", JobSpec{Workload: "sram", Level: "L2", Flow: FlowSpec{Prior: "/no/such/table.json"}}, false},
	}
	for _, c := range cases {
		if err := c.spec.validate(c.upload); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Upload-only is fine.
	up := JobSpec{Level: "L3"}
	if err := up.validate(true); err != nil {
		t.Errorf("upload spec rejected: %v", err)
	}
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), want)
		}
	}
}
