package server

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/patlib"
)

// TestServerPatlibConcurrentAppend runs two opted-in jobs concurrently
// against one shared pattern library — race-detector coverage for the
// single-writer append pipeline under real scheduler traffic (this file
// rides the `make server-integration` race gate) — then proves the
// cache pays: a third, warm job is served entirely from the library
// with zero engine corrections and a bit-identical result artifact.
func TestServerPatlibConcurrentAppend(t *testing.T) {
	libPath := filepath.Join(t.TempDir(), "patterns.jsonl")
	env := startTestServer(t, func(c *Config) {
		c.Workers = 2
		c.PatternLibPath = libPath
	})
	flow := testSpec()
	flow.PatternLib = true
	ctx := context.Background()

	// Two uploads with disjoint geometry, so both jobs solve and append
	// to the same library at the same time.
	targetA := fourClusters()
	targetB := []geom.Polygon{
		geom.R(200, 200, 400, 1900).Polygon(),
		geom.R(7700, 200, 7900, 1500).Polygon(),
		geom.R(15200, 200, 15400, 1100).Polygon(),
		geom.R(22700, 200, 22900, 800).Polygon(),
	}
	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: flow}
	jobA, err := env.c.SubmitGDS(ctx, spec, bytes.NewReader(gdsBytes(t, targetA)))
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := env.c.SubmitGDS(ctx, spec, bytes.NewReader(gdsBytes(t, targetB)))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{jobA.ID, jobB.ID} {
		st := waitState(t, env.c, id, func(js JobStatus) bool { return js.State.Terminal() }, "terminal state")
		if st.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		if st.Stats == nil || st.Stats.LibAppends == 0 {
			t.Fatalf("job %s appended nothing to the shared library: %+v", id, st.Stats)
		}
	}

	// Warm job: same geometry and flow as job A — every tile must come
	// from the library's exact rung, and the job status must surface the
	// hit counts (the opcctl status/fetch path reads these fields).
	warm, err := env.c.SubmitGDS(ctx, spec, bytes.NewReader(gdsBytes(t, targetA)))
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, env.c, warm.ID, func(js JobStatus) bool { return js.State.Terminal() }, "terminal state")
	if st.State != StateDone {
		t.Fatalf("warm job ended %s: %s", st.State, st.Error)
	}
	if st.Stats == nil {
		t.Fatal("warm job has no stats")
	}
	if st.Stats.LibExactTiles != st.Stats.Tiles {
		t.Errorf("warm job exact-hit tiles = %d, want all %d", st.Stats.LibExactTiles, st.Stats.Tiles)
	}
	if st.Stats.CorrectedTiles != 0 || st.Stats.Iterations != 0 {
		t.Errorf("warm job did engine work: corrected=%d iterations=%d",
			st.Stats.CorrectedTiles, st.Stats.Iterations)
	}

	var coldGDS, warmGDS bytes.Buffer
	if _, err := env.c.Fetch(ctx, jobA.ID, "result.gds", &coldGDS); err != nil {
		t.Fatal(err)
	}
	if _, err := env.c.Fetch(ctx, warm.ID, "result.gds", &warmGDS); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldGDS.Bytes(), warmGDS.Bytes()) {
		t.Error("warm result.gds differs from cold — exact hits must be bit-identical")
	}
}

// TestServerPatlibOptOut: without FlowSpec.PatternLib the daemon's
// library is not consulted, and a daemon without -patlib accepts
// opted-in jobs (they just solve).
func TestServerPatlibOptOut(t *testing.T) {
	libPath := filepath.Join(t.TempDir(), "patterns.jsonl")
	env := startTestServer(t, func(c *Config) { c.PatternLibPath = libPath })
	ctx := context.Background()

	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: testSpec()}
	j, err := env.c.SubmitGDS(ctx, spec, bytes.NewReader(gdsBytes(t, fourClusters())))
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, env.c, j.ID, func(js JobStatus) bool { return js.State.Terminal() }, "terminal state")
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Stats.LibAppends != 0 || st.Stats.LibExactTiles != 0 || st.Stats.LibMisses != 0 {
		t.Errorf("opted-out job touched the library: %+v", st.Stats)
	}

	// No daemon library at all: the opt-in flag is inert.
	env2 := startTestServer(t, nil)
	flow := testSpec()
	flow.PatternLib = true
	spec2 := JobSpec{Level: "L2", TileNM: 2500, Flow: flow}
	j2, err := env2.c.SubmitGDS(ctx, spec2, bytes.NewReader(gdsBytes(t, fourClusters())))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitState(t, env2.c, j2.ID, func(js JobStatus) bool { return js.State.Terminal() }, "terminal state")
	if st2.State != StateDone {
		t.Fatalf("job on library-less daemon ended %s: %s", st2.State, st2.Error)
	}
}

// TestServerPatlibStopFlushes: Stop drains the append queue to disk, so
// a daemon restart reopens a warm library.
func TestServerPatlibStopFlushes(t *testing.T) {
	libPath := filepath.Join(t.TempDir(), "patterns.jsonl")
	env := startTestServer(t, func(c *Config) { c.PatternLibPath = libPath })
	flow := testSpec()
	flow.PatternLib = true
	spec := JobSpec{Level: "L2", TileNM: 2500, Flow: flow}
	ctx := context.Background()
	j, err := env.c.SubmitGDS(ctx, spec, bytes.NewReader(gdsBytes(t, fourClusters())))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, env.c, j.ID, func(js JobStatus) bool { return js.State == StateDone }, "done")
	if err := env.srv.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	lib, err := patlib.Open(libPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	if lib.Len() == 0 {
		t.Fatal("library empty after daemon stop — append queue was not flushed")
	}
}
