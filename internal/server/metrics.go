package server

import (
	"sync"

	"goopc/internal/obs"
)

// serverMetrics are the goopc_server_* series. Handles are resolved per
// Server (not at package init) so tests can give each server instance
// its own registry; on the default registry the names are stable across
// instances, so a restarted daemon keeps appending to the same series.
type serverMetrics struct {
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.Counter
	queued    *obs.Gauge
	running   *obs.Gauge
	recovered *obs.Counter
	seconds   *obs.Histogram
	// End-to-end latency accounting: how long jobs sit in the queue
	// before a worker dequeues them, and how long they run once
	// dequeued. Together with goopc_server_jobs_queued these answer the
	// capacity question directly — queue-time growth with flat run time
	// means the pool, not the solver, is the bottleneck.
	queueSeconds *obs.Histogram
	runSeconds   *obs.Histogram

	mu       sync.Mutex
	finished map[State]*obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		submitted: reg.Counter("goopc_server_jobs_submitted_total",
			"jobs accepted into the queue"),
		rejected: reg.Counter("goopc_server_jobs_rejected_total",
			"job submissions rejected by admission control (full queue or tile budget)"),
		queued: reg.Gauge("goopc_server_jobs_queued",
			"jobs currently waiting in the run queue"),
		running: reg.Gauge("goopc_server_jobs_running",
			"jobs currently executing on the worker pool"),
		recovered: reg.Counter("goopc_server_jobs_recovered_total",
			"jobs requeued by crash recovery at daemon startup"),
		seconds: reg.Histogram("goopc_server_job_seconds",
			"wall-clock seconds per finished job (queue wait excluded)",
			[]float64{0.5, 1, 2.5, 5, 10, 30, 60, 300, 1800}),
		queueSeconds: reg.Histogram("goopc_server_job_queue_seconds",
			"seconds jobs waited in the queue before a worker dequeued them",
			[]float64{0.05, 0.25, 1, 2.5, 5, 10, 30, 60, 300, 1800}),
		runSeconds: reg.Histogram("goopc_server_job_run_seconds",
			"seconds jobs spent running (dequeue to terminal state)",
			[]float64{0.5, 1, 2.5, 5, 10, 30, 60, 300, 1800}),
		finished: map[State]*obs.Counter{},
	}
}

// finishedCounter returns the per-terminal-state labeled counter, e.g.
// goopc_server_jobs_finished_total{state="done"}.
func (m *serverMetrics) finishedCounter(st State) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.finished[st]
	if !ok {
		c = m.reg.Counter(obs.SeriesName("goopc_server_jobs_finished_total", "state", string(st)),
			"jobs finished, by terminal state")
		m.finished[st] = c
	}
	return c
}

// jobGauges are the per-job labeled live-progress series, fed from the
// scheduler's Flow.Progress hook and retired when the job is purged.
type jobGauges struct {
	tilesDone  *obs.Gauge
	tilesTotal *obs.Gauge
	pass       *obs.Gauge
	names      []string
}

// newJobGauges registers the three per-job series for a job ID.
func (m *serverMetrics) newJobGauges(id string) *jobGauges {
	done := obs.SeriesName("goopc_server_job_tiles_done", "job", id)
	total := obs.SeriesName("goopc_server_job_tiles_total", "job", id)
	pass := obs.SeriesName("goopc_server_job_pass", "job", id)
	return &jobGauges{
		tilesDone:  m.reg.Gauge(done, "tiles resolved in the job's current pass"),
		tilesTotal: m.reg.Gauge(total, "tiles scheduled in the job's current pass"),
		pass:       m.reg.Gauge(pass, "context pass the job is executing"),
		names:      []string{done, total, pass},
	}
}

// retire removes the per-job series from the registry.
func (g *jobGauges) retire(m *serverMetrics) {
	if g == nil {
		return
	}
	for _, n := range g.names {
		m.reg.Remove(n)
	}
}
