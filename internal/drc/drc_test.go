package drc

import (
	"math/rand"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
)

func TestMinWidth(t *testing.T) {
	deck := []Rule{{Name: "W", Kind: MinWidth, Layer: layout.Poly, Value: 180}}
	layers := map[layout.Layer][]geom.Polygon{
		layout.Poly: {geom.R(0, 0, 100, 2000).Polygon()}, // 100 wide
	}
	if v := Check(layers, deck); len(v) == 0 {
		t.Error("narrow line should violate")
	}
	layers[layout.Poly] = []geom.Polygon{geom.R(0, 0, 180, 2000).Polygon()}
	if v := Check(layers, deck); len(v) != 0 {
		t.Errorf("legal line flagged: %v", v)
	}
}

func TestMinSpace(t *testing.T) {
	deck := []Rule{{Name: "S", Kind: MinSpace, Layer: layout.Poly, Value: 240}}
	layers := map[layout.Layer][]geom.Polygon{
		layout.Poly: {
			geom.R(0, 0, 180, 2000).Polygon(),
			geom.R(300, 0, 480, 2000).Polygon(), // 120 space
		},
	}
	if v := Check(layers, deck); len(v) == 0 {
		t.Error("tight space should violate")
	}
	layers[layout.Poly][1] = geom.R(420, 0, 600, 2000).Polygon() // 240 space
	if v := Check(layers, deck); len(v) != 0 {
		t.Errorf("legal space flagged: %v", v)
	}
}

func TestMinArea(t *testing.T) {
	deck := []Rule{{Name: "A", Kind: MinArea, Layer: layout.Metal1, Value64: 122500}}
	layers := map[layout.Layer][]geom.Polygon{
		layout.Metal1: {geom.R(0, 0, 300, 300).Polygon()}, // 90000
	}
	if v := Check(layers, deck); len(v) != 1 {
		t.Errorf("violations = %d", len(Check(layers, deck)))
	}
	layers[layout.Metal1] = []geom.Polygon{geom.R(0, 0, 350, 350).Polygon()}
	if v := Check(layers, deck); len(v) != 0 {
		t.Errorf("legal area flagged: %v", v)
	}
}

func TestEnclosure(t *testing.T) {
	deck := []Rule{{Name: "E", Kind: Enclosure, Layer: layout.Metal1,
		OtherLayer: layout.Contact, Value: 60}}
	layers := map[layout.Layer][]geom.Polygon{
		layout.Contact: {geom.R(100, 100, 320, 320).Polygon()},
		layout.Metal1:  {geom.R(40, 40, 380, 380).Polygon()}, // exactly 60
	}
	if v := Check(layers, deck); len(v) != 0 {
		t.Errorf("exact enclosure flagged: %v", v)
	}
	layers[layout.Metal1] = []geom.Polygon{geom.R(60, 40, 380, 380).Polygon()} // 40 on the left
	if v := Check(layers, deck); len(v) == 0 {
		t.Error("under-enclosure should violate")
	}
	// Contact with no metal at all.
	layers[layout.Metal1] = nil
	if v := Check(layers, deck); len(v) == 0 {
		t.Error("uncovered contact should violate")
	}
}

func TestMinExtension(t *testing.T) {
	deck := []Rule{{Name: "X", Kind: MinExtension, Layer: layout.Poly,
		OtherLayer: layout.Active, Value: 220}}
	layers := map[layout.Layer][]geom.Polygon{
		layout.Active: {geom.R(0, 0, 2000, 660).Polygon()},
		// Gate crossing with full endcaps.
		layout.Poly: {geom.R(900, -220, 1080, 880).Polygon()},
	}
	if v := Check(layers, deck); len(v) != 0 {
		t.Errorf("full endcap flagged: %v", v)
	}
	// Endcap short by 100.
	layers[layout.Poly] = []geom.Polygon{geom.R(900, -120, 1080, 880).Polygon()}
	if v := Check(layers, deck); len(v) == 0 {
		t.Error("short endcap should violate")
	}
}

func TestCheckCellOnGeneratedLibrary(t *testing.T) {
	ly := layout.New("lib")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		t.Fatal(err)
	}
	// Generated standard cells must be clean on the full 180 nm deck.
	deck := Deck180()
	for _, c := range lib.Cells {
		if v := CheckCell(c, deck); len(v) != 0 {
			t.Errorf("cell %s has %d violations: %v", c.Name, len(v), v[0])
		}
	}
}

func TestDeck180Complete(t *testing.T) {
	deck := Deck180()
	if len(deck) < 6 {
		t.Errorf("deck has %d rules", len(deck))
	}
	kinds := map[RuleKind]bool{}
	for _, r := range deck {
		kinds[r.Kind] = true
		if r.Name == "" {
			t.Error("rule without name")
		}
	}
	for _, k := range []RuleKind{MinWidth, MinSpace, MinArea, Enclosure} {
		if !kinds[k] {
			t.Errorf("deck missing kind %v", k)
		}
	}
}

func TestCheckRandomRectsNoFalsePositives(t *testing.T) {
	// Widely spaced large rects: no rule fires.
	rng := rand.New(rand.NewSource(3))
	deck := Deck180()
	layers := map[layout.Layer][]geom.Polygon{}
	for i := 0; i < 10; i++ {
		x := geom.Coord(i) * 5000
		y := geom.Coord(rng.Intn(1000))
		layers[layout.Poly] = append(layers[layout.Poly],
			geom.R(x, y, x+500, y+2000).Polygon())
		layers[layout.Metal1] = append(layers[layout.Metal1],
			geom.R(x, y+3000, x+500, y+5000).Polygon())
	}
	if v := Check(layers, deck); len(v) != 0 {
		t.Errorf("clean layout flagged: %v", v)
	}
}
