// Package drc implements the geometric design rule checker the design
// side of the flow runs: width, space, area, enclosure and extension
// checks over flattened layer geometry, driven by a declarative rule
// deck. The design-rule-impact experiment (R-T4) uses it to confirm
// which drawn rules remain legal at each OPC level.
package drc

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// RuleKind selects the check performed.
type RuleKind uint8

// Rule kinds.
const (
	// MinWidth: every part of the layer is at least Value wide.
	MinWidth RuleKind = iota
	// MinSpace: distinct features are at least Value apart.
	MinSpace
	// MinArea: every polygon covers at least Value (DBU^2, in Value64).
	MinArea
	// Enclosure: OtherLayer grown by Value stays inside Layer
	// (e.g. poly encloses contact by 120).
	Enclosure
	// MinExtension: Layer extends past OtherLayer by at least Value
	// (e.g. poly endcap past active).
	MinExtension
)

func (k RuleKind) String() string {
	switch k {
	case MinWidth:
		return "min-width"
	case MinSpace:
		return "min-space"
	case MinArea:
		return "min-area"
	case Enclosure:
		return "enclosure"
	case MinExtension:
		return "extension"
	}
	return "?"
}

// Rule is one deck entry.
type Rule struct {
	Name  string
	Kind  RuleKind
	Layer layout.Layer
	// OtherLayer is the second operand for Enclosure/MinExtension.
	OtherLayer layout.Layer
	Value      geom.Coord
	// Value64 is used by MinArea.
	Value64 int64
}

// Violation is one rule failure with its location.
type Violation struct {
	Rule Rule
	At   geom.Rect
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (%s %v) at %v", v.Rule.Name, v.Rule.Kind, v.Rule.Layer, v.At)
}

// Deck180 returns the drawn-rule deck matching gen.Tech180.
func Deck180() []Rule {
	return []Rule{
		{Name: "POLY.W.1", Kind: MinWidth, Layer: layout.Poly, Value: 180},
		{Name: "POLY.S.1", Kind: MinSpace, Layer: layout.Poly, Value: 240},
		{Name: "M1.W.1", Kind: MinWidth, Layer: layout.Metal1, Value: 240},
		{Name: "M1.S.1", Kind: MinSpace, Layer: layout.Metal1, Value: 240},
		{Name: "CT.W.1", Kind: MinWidth, Layer: layout.Contact, Value: 220},
		{Name: "CT.S.1", Kind: MinSpace, Layer: layout.Contact, Value: 280},
		{Name: "M1.A.1", Kind: MinArea, Layer: layout.Metal1, Value64: 122500},
		{Name: "CT.E.1", Kind: Enclosure, Layer: layout.Metal1, OtherLayer: layout.Contact, Value: 30},
	}
}

// Check runs the deck over flattened geometry. layers maps each layer
// to its flat polygons (use layout.Flatten).
func Check(layers map[layout.Layer][]geom.Polygon, deck []Rule) []Violation {
	var out []Violation
	regions := map[layout.Layer]geom.Region{}
	regionOf := func(l layout.Layer) geom.Region {
		if g, ok := regions[l]; ok {
			return g
		}
		g := geom.RegionFromPolygons(layers[l]...)
		regions[l] = g
		return g
	}
	for _, r := range deck {
		switch r.Kind {
		case MinWidth:
			g := regionOf(r.Layer)
			if g.Empty() || r.Value <= 1 {
				continue
			}
			for _, s := range g.NarrowerThan(r.Value).Rects() {
				out = append(out, Violation{Rule: r, At: s})
			}
		case MinSpace:
			g := regionOf(r.Layer)
			if g.Empty() || r.Value <= 1 {
				continue
			}
			for _, s := range g.GapsNarrowerThan(r.Value).Rects() {
				out = append(out, Violation{Rule: r, At: s})
			}
		case MinArea:
			for _, p := range layers[r.Layer] {
				if p.Area() < r.Value64 {
					out = append(out, Violation{Rule: r, At: p.BBox()})
				}
			}
		case Enclosure:
			inner := regionOf(r.OtherLayer)
			outer := regionOf(r.Layer)
			if inner.Empty() {
				continue
			}
			uncovered := inner.Grow(r.Value).Subtract(outer)
			for _, s := range uncovered.Rects() {
				out = append(out, Violation{Rule: r, At: s})
			}
		case MinExtension:
			// Endcap rule: grow the crossing region along each axis by
			// Value; anything not covered by the layer (the gate must
			// continue) or the other layer (still over active, so not an
			// end) is a short endcap. The two axes are checked
			// independently so corners produce no artifacts.
			cross := regionOf(r.OtherLayer).Intersect(regionOf(r.Layer))
			if cross.Empty() {
				continue
			}
			covered := regionOf(r.Layer).Union(regionOf(r.OtherLayer))
			ext := cross.GrowDir(r.Value, 0).Union(cross.GrowDir(0, r.Value))
			for _, s := range ext.Subtract(covered).Rects() {
				out = append(out, Violation{Rule: r, At: s})
			}
		}
	}
	return out
}

// CheckCell flattens the needed layers of a cell and runs the deck.
func CheckCell(cell *layout.Cell, deck []Rule) []Violation {
	needed := map[layout.Layer]bool{}
	for _, r := range deck {
		needed[r.Layer] = true
		if r.Kind == Enclosure || r.Kind == MinExtension {
			needed[r.OtherLayer] = true
		}
	}
	layers := map[layout.Layer][]geom.Polygon{}
	for l := range needed {
		layers[l] = layout.Flatten(cell, l)
	}
	return Check(layers, deck)
}
