package timing

import (
	"math"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/layout/gen"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

func TestDeviceModels(t *testing.T) {
	d := Device180()
	// Nominal length: factors are exactly 1.
	if f := d.DelayFactor(180); math.Abs(f-1) > 1e-12 {
		t.Errorf("nominal delay = %f", f)
	}
	if f := d.LeakageFactor(180); math.Abs(f-1) > 1e-12 {
		t.Errorf("nominal leakage = %f", f)
	}
	// Longer gate: slower, less leaky.
	if d.DelayFactor(200) <= 1 {
		t.Error("longer gate should be slower")
	}
	if d.LeakageFactor(200) >= 1 {
		t.Error("longer gate should leak less")
	}
	// Shorter gate: faster but exponentially leakier.
	if d.DelayFactor(160) >= 1 {
		t.Error("shorter gate should be faster")
	}
	if d.LeakageFactor(160) < 2 {
		t.Errorf("18 nm shorter should leak >2x, got %f", d.LeakageFactor(160))
	}
	// Degenerate input.
	if !math.IsInf(d.DelayFactor(0), 1) {
		t.Error("zero length should be infinite delay")
	}
}

func TestExtractGates(t *testing.T) {
	// One vertical poly line crossing a horizontal active stripe.
	poly := []geom.Polygon{geom.R(1000, 0, 1180, 3000).Polygon()}
	active := []geom.Polygon{geom.R(0, 1000, 3000, 1660).Polygon()}
	gates := ExtractGates(poly, active, 400)
	if len(gates) != 1 {
		t.Fatalf("gates = %d", len(gates))
	}
	g := gates[0]
	if g.DrawnL != 180 || !g.CutHorizontal {
		t.Errorf("gate = %+v", g)
	}
	if g.Channel != geom.R(1000, 1000, 1180, 1660) {
		t.Errorf("channel = %v", g.Channel)
	}
	// A wide pad crossing active is rejected by maxL.
	pad := []geom.Polygon{geom.R(0, 0, 800, 3000).Polygon()}
	if gs := ExtractGates(pad, active, 400); len(gs) != 0 {
		t.Errorf("pad extracted as gate: %v", gs)
	}
}

func TestExtractGatesFromLibraryCell(t *testing.T) {
	ly := layout.New("t")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		t.Fatal(err)
	}
	nand := lib.Cell("NAND2X1")
	gates := ExtractGates(nand.Shapes[layout.Poly], nand.Shapes[layout.Active], 400)
	// Two gate fingers crossing two actives = 4 channels.
	if len(gates) != 4 {
		t.Fatalf("NAND2 gates = %d, want 4", len(gates))
	}
	for _, g := range gates {
		if g.DrawnL != 180 {
			t.Errorf("drawn L = %d", g.DrawnL)
		}
	}
}

func TestMeasureAndAggregate(t *testing.T) {
	s := optics.Default()
	s.SourceSteps = 5
	s.GuardNM = 1200
	sim, err := optics.New(s)
	if err != nil {
		t.Fatal(err)
	}
	th, err := resist.CalibrateThreshold(sim, 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	ly := layout.New("t")
	lib, err := gen.BuildCellLib(ly, gen.Tech180())
	if err != nil {
		t.Fatal(err)
	}
	inv := lib.Cell("INVX1")
	poly := inv.Shapes[layout.Poly]
	active := inv.Shapes[layout.Active]
	gates := ExtractGates(poly, active, 400)
	if len(gates) != 2 {
		t.Fatalf("INV gates = %d", len(gates))
	}
	results, err := MeasureGates(sim, th, poly, gates, Device180())
	if err != nil {
		t.Fatal(err)
	}
	st := Aggregate(results)
	if st.Gates != 2 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The printed gate length must be within tens of nm of drawn
	// (uncorrected at dense calibration misprints but still prints).
	if st.MeanL < 120 || st.MeanL > 240 {
		t.Errorf("mean printed L = %.1f", st.MeanL)
	}
	if st.WorstDelay < 0.5 || st.WorstDelay > 2 {
		t.Errorf("worst delay factor = %.2f", st.WorstDelay)
	}
	if st.MeanLeakage <= 0 {
		t.Errorf("mean leakage = %f", st.MeanLeakage)
	}
}

func TestAggregateWithFailures(t *testing.T) {
	results := []GateResult{
		{PrintedL: 180, Delay: 1, Leakage: 1},
		{PrintedL: math.NaN()},
		{PrintedL: 190, Delay: 1.07, Leakage: 0.6},
	}
	st := Aggregate(results)
	if st.Gates != 3 || st.Failed != 1 {
		t.Errorf("stats: %+v", st)
	}
	if math.Abs(st.MeanL-185) > 1e-9 {
		t.Errorf("meanL = %f", st.MeanL)
	}
	if st.SigmaL != 5 {
		t.Errorf("sigmaL = %f", st.SigmaL)
	}
	if st.WorstDelay != 1.07 || st.WorstLeakage != 1 {
		t.Errorf("worst: %+v", st)
	}
}

func TestMeasureGatesEmpty(t *testing.T) {
	if _, err := MeasureGates(nil, 0.3, nil, nil, Device180()); err == nil {
		t.Error("no gates should error")
	}
}
