// Package timing closes the loop from lithography back to design: it
// extracts transistor gates (poly over active), measures each gate's
// printed channel length on the simulated wafer, and maps the length
// distribution to delay and leakage spread with compact device models.
// This is the "impact on design" the paper's audience cared about —
// post-OPC CDs feeding timing signoff (the methodology later formalized
// in Yang/Capodieci/Sylvester, DAC 2005).
package timing

import (
	"errors"
	"fmt"
	"math"

	"goopc/internal/geom"
	"goopc/internal/optics"
	"goopc/internal/resist"
)

// Device holds the compact electrical model.
type Device struct {
	// NominalL is the drawn channel length (nm).
	NominalL geom.Coord
	// Alpha is the alpha-power-law saturation exponent: drive current
	// scales as (L/Lnom)^-Alpha, so gate delay scales as
	// (L/Lnom)^Alpha. 1.3 is typical for a 180 nm velocity-saturated
	// device.
	Alpha float64
	// LeakSlopeNM is the subthreshold leakage slope vs channel length:
	// leakage multiplies by e every LeakSlopeNM of gate shortening.
	LeakSlopeNM float64
}

// Device180 returns the 180 nm-node compact model.
func Device180() Device {
	return Device{NominalL: 180, Alpha: 1.3, LeakSlopeNM: 18}
}

// DelayFactor returns the gate delay relative to nominal for a printed
// channel length.
func (d Device) DelayFactor(printedL float64) float64 {
	if printedL <= 0 {
		return math.Inf(1)
	}
	return math.Pow(printedL/float64(d.NominalL), d.Alpha)
}

// LeakageFactor returns the subthreshold leakage relative to nominal.
// Shorter channels leak exponentially more.
func (d Device) LeakageFactor(printedL float64) float64 {
	return math.Exp((float64(d.NominalL) - printedL) / d.LeakSlopeNM)
}

// Gate is one extracted transistor channel: the intersection of a poly
// line with active.
type Gate struct {
	// Channel is the poly-over-active rectangle.
	Channel geom.Rect
	// DrawnL is the drawn channel length; CutHorizontal is true when
	// the length runs along x.
	DrawnL        geom.Coord
	CutHorizontal bool
}

// ExtractGates intersects poly with active and returns a gate per
// crossing rectangle. The channel length is taken as the dimension that
// matches typical gate geometry (the smaller side, bounded by maxL).
func ExtractGates(poly, active []geom.Polygon, maxL geom.Coord) []Gate {
	cross := geom.BooleanPolygons(poly, nil, "or").
		Intersect(geom.BooleanPolygons(active, nil, "or"))
	var out []Gate
	for _, r := range cross.Rects() {
		w, h := r.W(), r.H()
		var g Gate
		g.Channel = r
		switch {
		case w <= h && w <= maxL:
			g.DrawnL = w
			g.CutHorizontal = true
		case h < w && h <= maxL:
			g.DrawnL = h
			g.CutHorizontal = false
		default:
			continue // not channel-shaped (e.g. pad overlap)
		}
		out = append(out, g)
	}
	return out
}

// GateResult is the printed measurement of one gate.
type GateResult struct {
	Gate     Gate
	PrintedL float64 // NaN when the gate failed to print
	Delay    float64
	Leakage  float64
}

// ErrNoGates is returned when extraction finds nothing to measure.
var ErrNoGates = errors.New("timing: no gates extracted")

// MeasureGates images the mask and measures every gate's printed
// channel length at its channel center. The mask is the full corrected
// poly layer; window geometry is handled per gate with a local clip.
func MeasureGates(sim *optics.Simulator, threshold float64, mask []geom.Polygon,
	gates []Gate, dev Device) ([]GateResult, error) {
	if len(gates) == 0 {
		return nil, ErrNoGates
	}
	// Index mask polygons for local clips.
	idx := geom.NewGridIndex(5000)
	for i, p := range mask {
		idx.Insert(p.BBox(), int32(i))
	}
	ambit := geom.Coord(2 * sim.S.LambdaNM / sim.S.NA)
	out := make([]GateResult, 0, len(gates))
	for _, g := range gates {
		c := g.Channel.Center()
		window := geom.Rect{X0: c.X - 400, Y0: c.Y - 400, X1: c.X + 400, Y1: c.Y + 400}
		var clip []geom.Polygon
		for _, id := range idx.CollectIDs(window.Grow(ambit)) {
			clip = append(clip, mask[id])
		}
		im, err := sim.Aerial(clip, window)
		if err != nil {
			return nil, fmt.Errorf("timing: gate at %v: %w", c, err)
		}
		res := GateResult{Gate: g, PrintedL: math.NaN()}
		cd, err := resist.MeasureCD(im, threshold, float64(c.X), float64(c.Y),
			g.CutHorizontal, float64(4*g.DrawnL))
		if err == nil {
			res.PrintedL = cd
			res.Delay = dev.DelayFactor(cd)
			res.Leakage = dev.LeakageFactor(cd)
		}
		out = append(out, res)
	}
	return out, nil
}

// Stats aggregates a gate population into the numbers a timing signoff
// consumes.
type Stats struct {
	Gates  int
	Failed int // gates that did not print
	// MeanL and SigmaL describe the printed-length distribution (nm).
	MeanL, SigmaL float64
	// WorstDelay is the slowest gate's delay factor; MeanDelay the
	// population mean.
	MeanDelay, WorstDelay float64
	// MeanLeakage is the population mean leakage factor (nominal = 1);
	// WorstLeakage the leakiest gate.
	MeanLeakage, WorstLeakage float64
}

// Aggregate computes the statistics of a measured population.
func Aggregate(results []GateResult) Stats {
	var st Stats
	st.Gates = len(results)
	var sumL, sumL2, sumD, sumK float64
	n := 0
	for _, r := range results {
		if math.IsNaN(r.PrintedL) {
			st.Failed++
			continue
		}
		n++
		sumL += r.PrintedL
		sumL2 += r.PrintedL * r.PrintedL
		sumD += r.Delay
		sumK += r.Leakage
		if r.Delay > st.WorstDelay {
			st.WorstDelay = r.Delay
		}
		if r.Leakage > st.WorstLeakage {
			st.WorstLeakage = r.Leakage
		}
	}
	if n > 0 {
		st.MeanL = sumL / float64(n)
		v := sumL2/float64(n) - st.MeanL*st.MeanL
		if v > 0 {
			st.SigmaL = math.Sqrt(v)
		}
		st.MeanDelay = sumD / float64(n)
		st.MeanLeakage = sumK / float64(n)
	}
	return st
}
