// Package jobdeck runs multi-layer OPC tape-out jobs described by a
// JSON deck: which layers to correct, at which adoption level, in which
// mode (hierarchical master-by-master or flat tiled), against which
// exposure setup. The deck is the artifact a production flow checks
// into revision control next to the layout.
package jobdeck

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"goopc/internal/core"
	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/optics"
)

// Deck is the serializable job description.
type Deck struct {
	Name string `json:"name"`
	// Optics selects the exposure setup; zero values take the 248 nm
	// defaults.
	Optics OpticsSpec `json:"optics"`
	// Anchor is the dose-to-size calibration pattern.
	Anchor AnchorSpec `json:"anchor"`
	// BiasSpaces are the rule-table environment bins (empty uses
	// defaults; L1 jobs need them).
	BiasSpaces []geom.Coord `json:"biasSpaces,omitempty"`
	// Layers lists the correction jobs.
	Layers []LayerJob `json:"layers"`
}

// OpticsSpec is the JSON shape of the exposure setup.
type OpticsSpec struct {
	LambdaNM    float64 `json:"lambdaNM,omitempty"`
	NA          float64 `json:"na,omitempty"`
	Sigma       float64 `json:"sigma,omitempty"`
	SigmaInner  float64 `json:"sigmaInner,omitempty"`
	Annular     bool    `json:"annular,omitempty"`
	SourceSteps int     `json:"sourceSteps,omitempty"`
	GuardNM     float64 `json:"guardNM,omitempty"`
	// Tone: "bright" (default), "dark", "attpsm-bright", "attpsm-dark".
	Tone string `json:"tone,omitempty"`
}

// AnchorSpec is the calibration anchor.
type AnchorSpec struct {
	CD    geom.Coord `json:"cd,omitempty"`
	Pitch geom.Coord `json:"pitch,omitempty"`
}

// LayerJob corrects one layer.
type LayerJob struct {
	Layer layout.Layer `json:"layer"`
	// Level: "L0", "L1", "L2", "L3".
	Level string `json:"level"`
	// Mode: "hier" (master-by-master, hierarchy preserved) or "flat"
	// (flatten then tile). Default "hier".
	Mode string `json:"mode,omitempty"`
	// TileNM is the flat-mode tile size (0 uses 4x the optical ambit).
	TileNM geom.Coord `json:"tileNM,omitempty"`
}

// Parse reads a JSON deck.
func Parse(r io.Reader) (*Deck, error) {
	var d Deck
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("jobdeck: %w", err)
	}
	if len(d.Layers) == 0 {
		return nil, fmt.Errorf("jobdeck: deck %q has no layers", d.Name)
	}
	for i, l := range d.Layers {
		if _, err := parseLevel(l.Level); err != nil {
			return nil, fmt.Errorf("jobdeck: layer %d: %w", i, err)
		}
		switch l.Mode {
		case "", "hier", "flat":
		default:
			return nil, fmt.Errorf("jobdeck: layer %d: unknown mode %q", i, l.Mode)
		}
	}
	return &d, nil
}

// Write serializes the deck as indented JSON.
func (d *Deck) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

func parseLevel(s string) (core.Level, error) {
	switch s {
	case "L0":
		return core.L0, nil
	case "L1":
		return core.L1, nil
	case "L2":
		return core.L2, nil
	case "L3":
		return core.L3, nil
	}
	return 0, fmt.Errorf("unknown level %q", s)
}

// opticsSettings materializes the spec.
func (o OpticsSpec) settings() optics.Settings {
	s := optics.Default()
	if o.Annular {
		s = optics.DefaultAnnular()
	}
	if o.LambdaNM > 0 {
		s.LambdaNM = o.LambdaNM
	}
	if o.NA > 0 {
		s.NA = o.NA
	}
	if o.Sigma > 0 {
		s.SigmaOuter = o.Sigma
	}
	if o.SigmaInner > 0 {
		s.SigmaInner = o.SigmaInner
	}
	if o.SourceSteps > 0 {
		s.SourceSteps = o.SourceSteps
	}
	if o.GuardNM > 0 {
		s.GuardNM = o.GuardNM
	}
	switch o.Tone {
	case "", "bright":
		s.MaskTone = optics.BrightField
	case "dark":
		s.MaskTone = optics.DarkField
	case "attpsm-bright":
		s.MaskTone = optics.AttPSMBrightField
	case "attpsm-dark":
		s.MaskTone = optics.AttPSMDarkField
	}
	return s
}

// LayerResult reports one layer job.
type LayerResult struct {
	Layer   layout.Layer
	Level   core.Level
	Mode    string
	Seconds float64
	// Cells (hier mode) or Tiles (flat mode) processed.
	Cells, Tiles int
	// Figures written to the OPC output layer (stored, hierarchical).
	Figures int
}

// Report is the whole job outcome.
type Report struct {
	Deck      string
	Threshold float64
	Layers    []LayerResult
}

// Run executes the deck against a layout, writing corrected geometry to
// each layer's OPC output layer (layout.OPCLayer) in place. The flow is
// calibrated once. needRules controls rule-table generation (only L1
// jobs need it; skipping it saves setup time).
func Run(d *Deck, ly *layout.Layout) (*Report, error) {
	if ly.Top == nil {
		return nil, layout.ErrNoTop
	}
	needRules := false
	for _, l := range d.Layers {
		if l.Level == "L1" || l.Level == "L3" {
			needRules = true
		}
	}
	opts := core.Options{
		Optics:        d.Optics.settings(),
		AnchorCD:      d.Anchor.CD,
		AnchorPitch:   d.Anchor.Pitch,
		BiasSpaces:    d.BiasSpaces,
		SkipBiasTable: !needRules,
	}
	flow, err := core.NewFlow(opts)
	if err != nil {
		return nil, fmt.Errorf("jobdeck: calibration: %w", err)
	}
	rep := &Report{Deck: d.Name, Threshold: flow.Threshold}
	for _, job := range d.Layers {
		level, _ := parseLevel(job.Level)
		t0 := time.Now()
		lr := LayerResult{Layer: job.Layer, Level: level, Mode: job.Mode}
		if lr.Mode == "" {
			lr.Mode = "hier"
		}
		switch lr.Mode {
		case "hier":
			cr, err := flow.CorrectCells(ly, job.Layer, level)
			if err != nil {
				return nil, fmt.Errorf("jobdeck: layer %v: %w", job.Layer, err)
			}
			lr.Cells = len(cr.Cells)
			for _, c := range cr.Cells {
				lr.Figures += c.Polygons
			}
		case "flat":
			target := layout.Flatten(ly.Top, job.Layer)
			if len(target) == 0 {
				return nil, fmt.Errorf("jobdeck: layer %v has no geometry", job.Layer)
			}
			tile := job.TileNM
			if tile == 0 {
				tile = 4 * flow.Ambit
			}
			res, st, err := flow.CorrectWindowed(target, level, tile, true)
			if err != nil {
				return nil, fmt.Errorf("jobdeck: layer %v: %w", job.Layer, err)
			}
			lr.Tiles = st.Tiles
			lr.Figures = len(res.Corrected)
			// Flat results land on the top cell.
			ly.Top.SetLayer(layout.OPCLayer(job.Layer), res.AllMask())
		}
		lr.Seconds = time.Since(t0).Seconds()
		rep.Layers = append(rep.Layers, lr)
	}
	return rep, nil
}
