package jobdeck

import (
	"bytes"
	"strings"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/layout"
	"goopc/internal/optics"
)

const sampleDeck = `{
  "name": "tapeout-demo",
  "optics": {"sourceSteps": 5, "guardNM": 1200},
  "anchor": {"cd": 250, "pitch": 500},
  "layers": [
    {"layer": 2, "level": "L2", "mode": "hier"}
  ]
}`

func TestParseValidDeck(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "tapeout-demo" || len(d.Layers) != 1 {
		t.Fatalf("deck: %+v", d)
	}
	if d.Layers[0].Layer != layout.Poly || d.Layers[0].Level != "L2" {
		t.Errorf("layer job: %+v", d.Layers[0])
	}
	// Round trip.
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || len(d2.Layers) != len(d.Layers) {
		t.Error("round trip changed the deck")
	}
}

func TestParseRejectsBadDecks(t *testing.T) {
	cases := []string{
		`{"name":"x","layers":[]}`,
		`{"name":"x","layers":[{"layer":2,"level":"L9"}]}`,
		`{"name":"x","layers":[{"layer":2,"level":"L1","mode":"sideways"}]}`,
		`{"name":"x","layers":[{"layer":2,"level":"L1"}],"unknown":1}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("deck accepted: %s", c)
		}
	}
}

func TestOpticsSpecSettings(t *testing.T) {
	s := OpticsSpec{}.settings()
	if s.LambdaNM != 248 || s.MaskTone != optics.BrightField {
		t.Errorf("defaults: %+v", s)
	}
	s = OpticsSpec{Annular: true, Tone: "attpsm-bright", SourceSteps: 9}.settings()
	if s.Shape != optics.Annular || s.MaskTone != optics.AttPSMBrightField || s.SourceSteps != 9 {
		t.Errorf("custom: %+v", s)
	}
	s = OpticsSpec{Tone: "dark"}.settings()
	if s.MaskTone != optics.DarkField {
		t.Errorf("dark tone: %v", s.MaskTone)
	}
}

func TestRunHierJob(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	ly := layout.New("job")
	bit := ly.MustCell("BIT")
	bit.AddRect(layout.Poly, geom.R(0, 0, 180, 2000))
	top := ly.MustCell("TOP")
	top.PlaceArray(bit, geom.Identity(), 4, 4, geom.Pt(1200, 0), geom.Pt(0, 2600))
	ly.SetTop(top)

	rep, err := Run(d, ly)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deck != "tapeout-demo" || rep.Threshold <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Layers) != 1 || rep.Layers[0].Cells != 1 {
		t.Fatalf("layer result: %+v", rep.Layers)
	}
	// The OPC layer exists on the master.
	if len(bit.Shapes[layout.OPCLayer(layout.Poly)]) == 0 {
		t.Error("no corrected geometry written")
	}
}

func TestRunFlatJob(t *testing.T) {
	deck := `{
	  "name": "flat-demo",
	  "optics": {"sourceSteps": 5, "guardNM": 1200},
	  "layers": [{"layer": 2, "level": "L2", "mode": "flat"}]
	}`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	ly := layout.New("job")
	top := ly.MustCell("TOP")
	for i := 0; i < 4; i++ {
		top.AddRect(layout.Poly, geom.R(geom.Coord(i)*700, 0, geom.Coord(i)*700+180, 2000))
	}
	ly.SetTop(top)
	rep, err := Run(d, ly)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Layers[0].Tiles == 0 || rep.Layers[0].Figures == 0 {
		t.Fatalf("flat result: %+v", rep.Layers[0])
	}
	if len(top.Shapes[layout.OPCLayer(layout.Poly)]) == 0 {
		t.Error("no corrected geometry on top")
	}
}

func TestRunValidation(t *testing.T) {
	d, _ := Parse(strings.NewReader(sampleDeck))
	if _, err := Run(d, layout.New("empty")); err == nil {
		t.Error("layout without top should fail")
	}
	// A flat job on a missing layer fails.
	deck := `{"name":"x","optics":{"sourceSteps":5,"guardNM":1200},
	  "layers":[{"layer":6,"level":"L2","mode":"flat"}]}`
	d2, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	ly := layout.New("j")
	top := ly.MustCell("TOP")
	top.AddRect(layout.Poly, geom.R(0, 0, 180, 2000))
	ly.SetTop(top)
	if _, err := Run(d2, ly); err == nil {
		t.Error("missing layer should fail")
	}
}
