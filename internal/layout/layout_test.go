package layout

import (
	"bytes"
	"fmt"
	"testing"

	"goopc/internal/gds"
	"goopc/internal/geom"
)

func simpleLayout(t *testing.T) *Layout {
	t.Helper()
	ly := New("test")
	leaf := ly.MustCell("LEAF")
	leaf.AddRect(Poly, geom.R(0, 0, 100, 300))
	leaf.AddRect(Metal1, geom.R(0, 0, 300, 100))
	mid := ly.MustCell("MID")
	mid.PlaceAt(leaf, geom.Pt(0, 0))
	mid.PlaceAt(leaf, geom.Pt(1000, 0))
	top := ly.MustCell("TOP")
	top.PlaceAt(mid, geom.Pt(0, 0))
	top.PlaceAt(mid, geom.Pt(0, 2000))
	top.AddRect(Poly, geom.R(5000, 5000, 5100, 5300))
	ly.SetTop(top)
	return ly
}

func TestNewCellDuplicate(t *testing.T) {
	ly := New("l")
	if _, err := ly.NewCell("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := ly.NewCell("A"); err == nil {
		t.Error("duplicate cell name should error")
	}
}

func TestCellBBox(t *testing.T) {
	ly := simpleLayout(t)
	leaf := ly.Cell("LEAF")
	if bb := leaf.BBox(); bb != geom.R(0, 0, 300, 300) {
		t.Errorf("leaf bbox = %v", bb)
	}
	mid := ly.Cell("MID")
	if bb := mid.BBox(); bb != geom.R(0, 0, 1300, 300) {
		t.Errorf("mid bbox = %v", bb)
	}
	top := ly.Cell("TOP")
	if bb := top.BBox(); bb != geom.R(0, 0, 5100, 5300) {
		t.Errorf("top bbox = %v", bb)
	}
}

func TestBBoxCacheInvalidation(t *testing.T) {
	ly := New("l")
	c := ly.MustCell("C")
	c.AddRect(Poly, geom.R(0, 0, 10, 10))
	_ = c.BBox()
	c.AddRect(Poly, geom.R(100, 100, 200, 200))
	if bb := c.BBox(); bb != geom.R(0, 0, 200, 200) {
		t.Errorf("bbox after add = %v", bb)
	}
}

func TestFlatten(t *testing.T) {
	ly := simpleLayout(t)
	polys := Flatten(ly.Top, Poly)
	// 4 leaf instances + 1 top-level rect.
	if len(polys) != 5 {
		t.Fatalf("flattened poly count = %d", len(polys))
	}
	var total int64
	for _, p := range polys {
		total += p.Area()
	}
	if total != 4*100*300+100*300 {
		t.Errorf("total area = %d", total)
	}
}

func TestFlattenWindow(t *testing.T) {
	ly := simpleLayout(t)
	// Window around the second leaf of the first mid only.
	polys := FlattenWindow(ly.Top, Poly, geom.R(900, 0, 1400, 400))
	if len(polys) != 1 {
		t.Fatalf("windowed count = %d", len(polys))
	}
	if polys[0].BBox() != geom.R(1000, 0, 1100, 300) {
		t.Errorf("windowed polygon at %v", polys[0].BBox())
	}
	// Empty window.
	if got := FlattenWindow(ly.Top, Poly, geom.R(9000, 9000, 9100, 9100)); len(got) != 0 {
		t.Errorf("far window returned %d polygons", len(got))
	}
}

func TestFlattenWithOrientations(t *testing.T) {
	ly := New("l")
	leaf := ly.MustCell("LEAF")
	leaf.AddRect(Poly, geom.R(0, 0, 100, 300))
	top := ly.MustCell("TOP")
	x := geom.Xform{Orient: geom.R90, Mag: 1, Offset: geom.Pt(1000, 0)}
	top.Place(leaf, x)
	ly.SetTop(top)
	polys := Flatten(ly.Top, Poly)
	if len(polys) != 1 {
		t.Fatal("expected 1 polygon")
	}
	// R90 of (0,0,100,300) is (-300,0,0,100), shifted to (700,0,1000,100).
	if bb := polys[0].BBox(); bb != geom.R(700, 0, 1000, 100) {
		t.Errorf("rotated bbox = %v", bb)
	}
	if !polys[0].IsCCW() {
		t.Error("winding must be preserved through transforms")
	}
}

func TestFlattenArray(t *testing.T) {
	ly := New("l")
	leaf := ly.MustCell("LEAF")
	leaf.AddRect(Contact, geom.R(0, 0, 220, 220))
	top := ly.MustCell("TOP")
	top.PlaceArray(leaf, geom.Identity(), 3, 2, geom.Pt(500, 0), geom.Pt(0, 500))
	ly.SetTop(top)
	polys := Flatten(ly.Top, Contact)
	if len(polys) != 6 {
		t.Fatalf("array expansion = %d", len(polys))
	}
	// Last element at (1000, 500).
	found := false
	for _, p := range polys {
		if p.BBox() == geom.R(1000, 500, 1220, 720) {
			found = true
		}
	}
	if !found {
		t.Error("array corner element missing")
	}
}

func TestFlattenAll(t *testing.T) {
	ly := simpleLayout(t)
	flat, err := FlattenAll(ly)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Top.LocalFigures() != 5+4 {
		t.Errorf("flat figures = %d", flat.Top.LocalFigures())
	}
	if len(flat.Top.Insts) != 0 {
		t.Error("flat layout must have no instances")
	}
}

func TestHierStats(t *testing.T) {
	ly := simpleLayout(t)
	st, err := CollectHierStats(ly)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 3 {
		t.Errorf("cells = %d", st.Cells)
	}
	if st.StoredFigures != 3 { // 2 in leaf + 1 in top
		t.Errorf("stored = %d", st.StoredFigures)
	}
	if st.ExpandedFigures != 4*2+1 {
		t.Errorf("expanded = %d", st.ExpandedFigures)
	}
	if st.Placements != 2+4 {
		t.Errorf("placements = %d", st.Placements)
	}
	if st.CompressionRatio <= 1 {
		t.Errorf("compression = %f", st.CompressionRatio)
	}
}

func TestGDSRoundTrip(t *testing.T) {
	ly := simpleLayout(t)
	var buf bytes.Buffer
	if _, err := WriteGDS(&buf, ly); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Top == nil || back.Top.Name != "TOP" {
		t.Fatalf("top = %v", back.Top)
	}
	// Flattened geometry identical.
	want := geom.RegionFromPolygons(Flatten(ly.Top, Poly)...)
	got := geom.RegionFromPolygons(Flatten(back.Top, Poly)...)
	if !want.Xor(got).Empty() {
		t.Error("poly geometry changed across GDS round trip")
	}
	st, err := CollectHierStats(back)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 3 {
		t.Errorf("hierarchy not preserved: %d cells", st.Cells)
	}
}

func TestGDSRoundTripArray(t *testing.T) {
	ly := New("arr")
	leaf := ly.MustCell("BIT")
	leaf.AddRect(Poly, geom.R(0, 0, 180, 1000))
	top := ly.MustCell("TOP")
	top.PlaceArray(leaf, geom.Identity(), 8, 4, geom.Pt(2000, 0), geom.Pt(0, 3000))
	ly.SetTop(top)
	var buf bytes.Buffer
	if _, err := WriteGDS(&buf, ly); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	polys := Flatten(back.Top, Poly)
	if len(polys) != 32 {
		t.Errorf("array round trip expanded to %d", len(polys))
	}
}

func TestValidate(t *testing.T) {
	ly := New("v")
	if err := ly.Validate(); err == nil {
		t.Error("layout without top should fail")
	}
	c := ly.MustCell("C")
	ly.SetTop(c)
	c.AddPolygon(Poly, geom.Polygon{geom.Pt(0, 0), geom.Pt(10, 10), geom.Pt(0, 10)})
	if err := ly.Validate(); err == nil {
		t.Error("diagonal polygon should fail validation")
	}
}

func TestOPCLayer(t *testing.T) {
	if OPCLayer(Poly) != Layer(102) {
		t.Errorf("OPCLayer(Poly) = %d", OPCLayer(Poly))
	}
}

func TestInstanceCount(t *testing.T) {
	in := Instance{Cols: 0, Rows: 0}
	if in.Count() != 1 {
		t.Errorf("default count = %d", in.Count())
	}
	in = Instance{Cols: 3, Rows: 4}
	if in.Count() != 12 {
		t.Errorf("array count = %d", in.Count())
	}
}

func TestSetLayerDelete(t *testing.T) {
	ly := New("l")
	c := ly.MustCell("C")
	c.AddRect(Poly, geom.R(0, 0, 10, 10))
	c.SetLayer(Poly, nil)
	if len(c.Layers()) != 0 {
		t.Error("SetLayer(nil) should remove the layer")
	}
}

func TestFromGDSNormalizesWinding(t *testing.T) {
	lib := gdsLibWithCWRect(t)
	ly, err := FromGDS(lib)
	if err != nil {
		t.Fatal(err)
	}
	polys := ly.Cell("S").Shapes[Poly]
	if len(polys) != 1 || !polys[0].IsCCW() {
		t.Error("importer must normalize rings to CCW")
	}
}

func gdsLibWithCWRect(t *testing.T) *gds.Library {
	t.Helper()
	lib := gds.NewLibrary("L")
	s := lib.AddStruct("S")
	s.Add(&gds.Boundary{Layer: int16(Poly), XY: geom.R(0, 0, 100, 100).Polygon().Reverse()})
	return lib
}

func TestFromGDSRejectsDiagonal(t *testing.T) {
	lib := gds.NewLibrary("L")
	s := lib.AddStruct("S")
	s.Add(&gds.Boundary{Layer: 1, XY: geom.Polygon{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100),
	}})
	if _, err := FromGDS(lib); err == nil {
		t.Error("diagonal boundary should be rejected by the importer")
	}
}

func TestDeepHierarchyFlatten(t *testing.T) {
	// 60 nesting levels, each shifting by (10, 10): the leaf rect lands
	// at the accumulated offset.
	ly := New("deep")
	leaf := ly.MustCell("L0")
	leaf.AddRect(Poly, geom.R(0, 0, 100, 100))
	prev := leaf
	const depth = 60
	for i := 1; i <= depth; i++ {
		c := ly.MustCell(fmt.Sprintf("L%d", i))
		c.PlaceAt(prev, geom.Pt(10, 10))
		prev = c
	}
	ly.SetTop(prev)
	polys := Flatten(prev, Poly)
	if len(polys) != 1 {
		t.Fatalf("flatten = %d polys", len(polys))
	}
	want := geom.R(10*depth, 10*depth, 10*depth+100, 10*depth+100)
	if polys[0].BBox() != want {
		t.Errorf("deep flatten at %v, want %v", polys[0].BBox(), want)
	}
	// Hierarchy statistics walk the full depth.
	st, err := CollectHierStats(ly)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != depth+1 || st.Placements != depth {
		t.Errorf("stats: %+v", st)
	}
}

func TestFlattenRotatedArray(t *testing.T) {
	// An array placed under a rotated parent: transforms compose.
	ly := New("ra")
	bit := ly.MustCell("BIT")
	bit.AddRect(Poly, geom.R(0, 0, 100, 200))
	arr := ly.MustCell("ARR")
	arr.PlaceArray(bit, geom.Identity(), 2, 1, geom.Pt(500, 0), geom.Pt(0, 0))
	top := ly.MustCell("TOP")
	top.Place(arr, geom.Xform{Orient: geom.R90, Mag: 1, Offset: geom.Pt(10000, 0)})
	ly.SetTop(top)
	polys := Flatten(top, Poly)
	if len(polys) != 2 {
		t.Fatalf("polys = %d", len(polys))
	}
	var total int64
	for _, p := range polys {
		total += p.Area()
		if !p.IsCCW() {
			t.Error("winding lost")
		}
	}
	if total != 2*100*200 {
		t.Errorf("area = %d", total)
	}
	// R90 of the second element origin (500,0) lands at (10000-0, 500).
	found := false
	for _, p := range polys {
		if p.BBox() == geom.R(10000-200, 500, 10000, 600) {
			found = true
		}
	}
	if !found {
		t.Errorf("rotated array element misplaced: %v %v", polys[0].BBox(), polys[1].BBox())
	}
}
