// Package layout provides the hierarchical cell database the OPC flow
// operates on: named cells holding per-layer polygons plus placed
// instances (with the eight right-angle orientations and array
// placement), conversion to and from GDSII libraries, flattening with
// transform composition, windowed clipping, and hierarchy statistics.
package layout

import (
	"errors"
	"fmt"
	"sort"

	"goopc/internal/geom"
)

// Layer identifies a drawn or derived mask layer.
type Layer int16

// The process layer map used throughout the repository (see DESIGN.md).
const (
	Active   Layer = 1
	Poly     Layer = 2
	Contact  Layer = 3
	Metal1   Layer = 4
	Via1     Layer = 5
	Metal2   Layer = 6
	NWell    Layer = 7
	PImplant Layer = 8
	NImplant Layer = 9

	// OPCOffset shifts a drawn layer to its post-OPC output layer.
	OPCOffset Layer = 100
	// SRAF is the sub-resolution assist feature layer.
	SRAF Layer = 120
)

// OPCLayer returns the post-correction output layer for a drawn layer.
func OPCLayer(l Layer) Layer { return l + OPCOffset }

func (l Layer) String() string {
	switch l {
	case Active:
		return "active"
	case Poly:
		return "poly"
	case Contact:
		return "contact"
	case Metal1:
		return "metal1"
	case Via1:
		return "via1"
	case Metal2:
		return "metal2"
	case NWell:
		return "nwell"
	case SRAF:
		return "sraf"
	}
	return fmt.Sprintf("layer%d", int16(l))
}

// Instance places another cell, possibly as a Cols x Rows array (both
// default to 1). Steps are the array displacement vectors.
type Instance struct {
	Cell    *Cell
	Xform   geom.Xform
	Cols    int
	Rows    int
	ColStep geom.Point
	RowStep geom.Point
}

// Count returns the number of placements the instance expands to.
func (in Instance) Count() int {
	c, r := in.Cols, in.Rows
	if c < 1 {
		c = 1
	}
	if r < 1 {
		r = 1
	}
	return c * r
}

// Each calls fn with the transform of every array element.
func (in Instance) Each(fn func(geom.Xform)) {
	cols, rows := in.Cols, in.Rows
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := in.Xform
			x.Offset = x.Offset.Add(geom.Pt(
				in.ColStep.X*geom.Coord(c)+in.RowStep.X*geom.Coord(r),
				in.ColStep.Y*geom.Coord(c)+in.RowStep.Y*geom.Coord(r),
			))
			fn(x)
		}
	}
}

// Cell is a named piece of layout: local polygons per layer plus child
// instances.
type Cell struct {
	Name   string
	Shapes map[Layer][]geom.Polygon
	Insts  []Instance

	bboxValid bool
	bbox      geom.Rect
}

// NewCell creates an empty cell.
func NewCell(name string) *Cell {
	return &Cell{Name: name, Shapes: map[Layer][]geom.Polygon{}}
}

// AddPolygon adds a ring to a layer. Rings should be CCW; Validate
// checks.
func (c *Cell) AddPolygon(l Layer, p geom.Polygon) {
	c.Shapes[l] = append(c.Shapes[l], p)
	c.bboxValid = false
}

// AddRect adds a rectangle to a layer.
func (c *Cell) AddRect(l Layer, r geom.Rect) {
	if r.Empty() {
		return
	}
	c.AddPolygon(l, r.Polygon())
}

// AddRegion adds every rectangle of a region to a layer as separate
// polygons.
func (c *Cell) AddRegion(l Layer, g geom.Region) {
	for _, r := range g.Rects() {
		c.AddRect(l, r)
	}
}

// SetLayer replaces the geometry of one layer.
func (c *Cell) SetLayer(l Layer, ps []geom.Polygon) {
	if len(ps) == 0 {
		delete(c.Shapes, l)
	} else {
		c.Shapes[l] = ps
	}
	c.bboxValid = false
}

// Place adds a single instance of child at the transform.
func (c *Cell) Place(child *Cell, x geom.Xform) {
	c.Insts = append(c.Insts, Instance{Cell: child, Xform: x, Cols: 1, Rows: 1})
	c.bboxValid = false
}

// PlaceAt adds an unrotated instance at the offset.
func (c *Cell) PlaceAt(child *Cell, at geom.Point) {
	x := geom.Identity()
	x.Offset = at
	c.Place(child, x)
}

// PlaceArray adds a Cols x Rows array instance.
func (c *Cell) PlaceArray(child *Cell, x geom.Xform, cols, rows int, colStep, rowStep geom.Point) {
	c.Insts = append(c.Insts, Instance{
		Cell: child, Xform: x, Cols: cols, Rows: rows, ColStep: colStep, RowStep: rowStep,
	})
	c.bboxValid = false
}

// Layers returns the layers with local geometry, sorted.
func (c *Cell) Layers() []Layer {
	out := make([]Layer, 0, len(c.Shapes))
	for l := range c.Shapes {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalFigures counts the polygons drawn directly in this cell.
func (c *Cell) LocalFigures() int {
	n := 0
	for _, ps := range c.Shapes {
		n += len(ps)
	}
	return n
}

// BBox returns the bounding box of the cell including children.
// The result is cached until the cell is modified; modifying a child
// cell invalidates only that child, so callers that mutate deep
// hierarchies should call InvalidateBBoxes on the layout.
func (c *Cell) BBox() geom.Rect {
	if c.bboxValid {
		return c.bbox
	}
	var bb geom.Rect
	first := true
	acc := func(r geom.Rect) {
		if r.Empty() {
			return
		}
		if first {
			bb, first = r, false
		} else {
			bb = bb.Union(r)
		}
	}
	for _, ps := range c.Shapes {
		for _, p := range ps {
			acc(p.BBox())
		}
	}
	for _, in := range c.Insts {
		cb := in.Cell.BBox()
		if cb.Empty() {
			continue
		}
		in.Each(func(x geom.Xform) {
			acc(x.ApplyRect(cb))
		})
	}
	c.bbox, c.bboxValid = bb, true
	return bb
}

// Layout is a collection of cells with a designated top.
type Layout struct {
	Name   string
	Top    *Cell
	cells  []*Cell
	byName map[string]*Cell
}

// New creates an empty layout.
func New(name string) *Layout {
	return &Layout{Name: name, byName: map[string]*Cell{}}
}

// NewCell creates and registers a cell; it errors on duplicate names.
func (ly *Layout) NewCell(name string) (*Cell, error) {
	if _, ok := ly.byName[name]; ok {
		return nil, fmt.Errorf("layout: duplicate cell %q", name)
	}
	c := NewCell(name)
	ly.cells = append(ly.cells, c)
	ly.byName[name] = c
	return c, nil
}

// MustCell is NewCell for construction code where duplicates are bugs.
func (ly *Layout) MustCell(name string) *Cell {
	c, err := ly.NewCell(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Cell looks a cell up by name; nil when absent.
func (ly *Layout) Cell(name string) *Cell { return ly.byName[name] }

// Cells returns all registered cells in creation order.
func (ly *Layout) Cells() []*Cell { return ly.cells }

// SetTop designates the top cell.
func (ly *Layout) SetTop(c *Cell) { ly.Top = c }

// InvalidateBBoxes clears every cached bounding box.
func (ly *Layout) InvalidateBBoxes() {
	for _, c := range ly.cells {
		c.bboxValid = false
	}
}

// ErrNoTop is returned by operations that need a top cell.
var ErrNoTop = errors.New("layout: no top cell set")

// Validate checks polygon legality in every cell and that the top is
// set.
func (ly *Layout) Validate() error {
	if ly.Top == nil {
		return ErrNoTop
	}
	for _, c := range ly.cells {
		for l, ps := range c.Shapes {
			for i, p := range ps {
				if err := p.Validate(); err != nil {
					return fmt.Errorf("layout: cell %q layer %v polygon %d: %w", c.Name, l, i, err)
				}
			}
		}
	}
	return nil
}
