package gen

import (
	"fmt"
	"math/rand"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// CatalogEntry is one named layout generator the dataset factory
// (internal/dataset) enumerates. Build creates a fresh cell in ly and
// returns it with the drawn layer to correct. Builds are deterministic:
// the same (variant, rng seed) produces byte-identical geometry, which
// is what makes dataset shards regenerable.
//
// Entries are sized for untiled model correction (a few microns a
// side): the learned prior is pattern-local — its capture radius is an
// optical ambit, not a chip — so small cells cover the same signature
// population full-layer tiles draw from.
type CatalogEntry struct {
	Name string
	// Variants is the number of distinct parameterizations; Build
	// accepts variant in [0, Variants).
	Variants int
	Build    func(ly *layout.Layout, name string, variant int, rng *rand.Rand) (*layout.Cell, layout.Layer, error)
}

// Catalog returns the named generators in deterministic order.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			// Dense-to-iso line arrays: the proximity sweep at the heart of
			// the paper's through-pitch data.
			Name: "through-pitch", Variants: 3,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				cd := []geom.Coord{180, 220, 260}[v]
				pitches := []geom.Coord{2 * cd, 2*cd + 140, 3 * cd}
				cell, _, err := ThroughPitch(ly, name, layout.Poly, cd, pitches, 3000, 4)
				return cell, layout.Poly, err
			},
		},
		{
			// Facing line ends across shrinking gaps — the line-end
			// pullback population.
			Name: "line-end", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				cell, _, err := LineEndGap(ly, name, layout.Poly, 180,
					[]geom.Coord{240, 320, 440}, 2000, v == 1)
				return cell, layout.Poly, err
			},
		},
		{
			// L/T corner structures: convex/concave corner fragments.
			Name: "corner", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				cd := []geom.Coord{180, 240}[v]
				cell, _, err := CornerTest(ly, name, layout.Poly, cd, 1600)
				return cell, layout.Poly, err
			},
		},
		{
			// Square contact arrays: the small-feature corner-rounding
			// population.
			Name: "contact-array", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				size := []geom.Coord{220, 260}[v]
				cell, _, err := ContactArray(ly, name, layout.Poly, size, 2*size, 4, 4)
				return cell, layout.Poly, err
			},
		},
		{
			// A dense pack next to an isolated line: the dense-iso bias
			// split rule-based OPC tabulates.
			Name: "dense-iso", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				cd := []geom.Coord{180, 220}[v]
				cell, _, err := DenseIso(ly, name, layout.Poly, cd, 2*cd, 3000)
				return cell, layout.Poly, err
			},
		},
		{
			// A small random standard-cell block placement (poly layer):
			// product-like gate patterns with realistic repetition.
			Name: "stdcell", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				lib, err := BuildCellLib(ly, Tech180())
				if err != nil {
					return nil, layout.Poly, err
				}
				rows, cols := 1, 2+v
				cell, err := BuildBlock(ly, lib, name, rows, cols, rng)
				return cell, layout.Poly, err
			},
		},
		{
			// A small SRAM array: the most repetitive pattern population.
			Name: "sram", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				n := 2 + v
				cell, err := BuildSRAM(ly, Tech180(), name, n, n)
				return cell, layout.Poly, err
			},
		},
		{
			// A randomly routed metal block: bends, jogs and line ends with
			// low repetition — the hard residual the prior must not
			// mispredict (misses are fine; wrong biases are not).
			Name: "routed", Variants: 2,
			Build: func(ly *layout.Layout, name string, v int, rng *rand.Rand) (*layout.Cell, layout.Layer, error) {
				size := []geom.Coord{5000, 7000}[v]
				nets := []int{4, 6}[v]
				cell, err := BuildRoutedBlock(ly, Tech180(), name, size, size, nets, rng)
				return cell, layout.Metal1, err
			},
		},
	}
}

// FindCatalog looks up a catalog entry by name.
func FindCatalog(name string) (CatalogEntry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	return CatalogEntry{}, fmt.Errorf("gen: unknown catalog generator %q (have %v)", name, CatalogNames())
}

// CatalogNames lists the catalog entry names in order.
func CatalogNames() []string {
	entries := Catalog()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}
