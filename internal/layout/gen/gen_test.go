package gen

import (
	"math/rand"
	"testing"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

func TestThroughPitch(t *testing.T) {
	ly := layout.New("tp")
	cell, sites, err := ThroughPitch(ly, "TP", layout.Poly, 180, []geom.Coord{360, 500, 700}, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cell.Shapes[layout.Poly]); got != 3*5+1 {
		t.Errorf("line count = %d", got)
	}
	if len(sites) != 4 { // 3 pitches + iso
		t.Fatalf("sites = %d", len(sites))
	}
	for _, s := range sites[:3] {
		if s.Kind != PitchSite || s.Want != 180 {
			t.Errorf("site %q kind=%v want=%d", s.Name, s.Kind, s.Want)
		}
		// Site must sit inside a drawn line.
		hit := false
		for _, p := range cell.Shapes[layout.Poly] {
			if p.ContainsPoint(s.At) {
				hit = true
			}
		}
		if !hit {
			t.Errorf("site %q at %v not on a line", s.Name, s.At)
		}
	}
	if sites[3].Kind != IsoSite {
		t.Error("last site should be iso")
	}
}

func TestThroughPitchErrors(t *testing.T) {
	ly := layout.New("tp")
	if _, _, err := ThroughPitch(ly, "A", layout.Poly, 0, nil, 100, 1); err == nil {
		t.Error("zero cd should fail")
	}
	if _, _, err := ThroughPitch(ly, "B", layout.Poly, 180, []geom.Coord{100}, 1000, 3); err == nil {
		t.Error("pitch < cd should fail")
	}
}

func TestLineEndGap(t *testing.T) {
	ly := layout.New("le")
	cell, sites, err := LineEndGap(ly, "LE", layout.Poly, 180, []geom.Coord{240, 300, 400}, 2000, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 {
		t.Fatalf("sites = %d", len(sites))
	}
	// With neighbors: 4 rects per gap.
	if got := len(cell.Shapes[layout.Poly]); got != 12 {
		t.Errorf("rect count = %d", got)
	}
	for _, s := range sites {
		if s.CutHorizontal {
			t.Error("line-end cut must be vertical")
		}
		// The site center must be in the gap (not on poly).
		for _, p := range cell.Shapes[layout.Poly] {
			if p.ContainsPoint(s.At) {
				t.Errorf("site %q sits on poly", s.Name)
			}
		}
	}
}

func TestCornerTest(t *testing.T) {
	ly := layout.New("ct")
	cell, sites, err := CornerTest(ly, "CT", layout.Poly, 180, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("sites = %d", len(sites))
	}
	p := cell.Shapes[layout.Poly][0]
	convex, concave := p.CountCorners()
	if convex != 5 || concave != 1 {
		t.Errorf("L corners: %d/%d", convex, concave)
	}
	if _, _, err := CornerTest(ly, "CT2", layout.Poly, 180, 300); err == nil {
		t.Error("arm too short should fail")
	}
}

func TestContactArray(t *testing.T) {
	ly := layout.New("ca")
	cell, sites, err := ContactArray(ly, "CA", layout.Contact, 220, 500, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cell.Shapes[layout.Contact]); got != 24 {
		t.Errorf("contacts = %d", got)
	}
	if len(sites) != 1 || sites[0].Kind != ContactSite {
		t.Errorf("sites = %v", sites)
	}
}

func TestBuildCellLib(t *testing.T) {
	ly := layout.New("lib")
	lib, err := BuildCellLib(ly, Tech180())
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 6 {
		t.Fatalf("cells = %d", len(lib.Cells))
	}
	inv := lib.Cell("INVX1")
	if inv == nil {
		t.Fatal("INVX1 missing")
	}
	if lib.Cell("NOPE") != nil {
		t.Error("unknown cell should be nil")
	}
	// Every cell has poly, active, contact, metal1 geometry.
	for _, c := range lib.Cells {
		for _, l := range []layout.Layer{layout.Poly, layout.Active, layout.Contact, layout.Metal1} {
			if len(c.Shapes[l]) == 0 {
				t.Errorf("cell %s missing layer %v", c.Name, l)
			}
		}
		if c.BBox().H() != Tech180().CellHeight {
			t.Errorf("cell %s height = %d", c.Name, c.BBox().H())
		}
		// All polygons valid and CCW.
		for l, ps := range c.Shapes {
			for _, p := range ps {
				if err := p.Validate(); err != nil {
					t.Errorf("cell %s layer %v: %v", c.Name, l, err)
				}
				if !p.IsCCW() {
					t.Errorf("cell %s layer %v: CW polygon", c.Name, l)
				}
			}
		}
	}
	// DFF is the widest cell.
	dff := lib.Cell("DFFX1")
	if dff.BBox().W() <= inv.BBox().W() {
		t.Error("DFF should be wider than INV")
	}
}

func TestBuildBlock(t *testing.T) {
	ly := layout.New("blk")
	lib, err := BuildCellLib(ly, Tech180())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	block, err := BuildBlock(ly, lib, "BLOCK", 4, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Insts) != 40 {
		t.Fatalf("instances = %d", len(block.Insts))
	}
	ly.SetTop(block)
	st, err := layout.CollectHierStats(ly)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressionRatio <= 1.5 {
		t.Errorf("block should reuse masters heavily, ratio = %f", st.CompressionRatio)
	}
	// Rows abut: total height = 4 * cell height.
	if h := block.BBox().H(); h != 4*Tech180().CellHeight {
		t.Errorf("block height = %d", h)
	}
	// Determinism for a fixed seed.
	ly2 := layout.New("blk2")
	lib2, _ := BuildCellLib(ly2, Tech180())
	block2, err := BuildBlock(ly2, lib2, "BLOCK", 4, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range block.Insts {
		if block.Insts[i].Cell.Name != block2.Insts[i].Cell.Name {
			t.Fatal("block generation must be deterministic for a fixed seed")
		}
	}
}

func TestBuildSRAM(t *testing.T) {
	ly := layout.New("sram")
	arr, err := BuildSRAM(ly, Tech180(), "SRAM64", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Insts) != 1 || arr.Insts[0].Count() != 128 {
		t.Fatalf("array: %d insts, count %d", len(arr.Insts), arr.Insts[0].Count())
	}
	ly.SetTop(arr)
	polys := layout.Flatten(arr, layout.Poly)
	bitPolys := len(ly.Cell("SRAM64_bit").Shapes[layout.Poly])
	if len(polys) != 128*bitPolys {
		t.Errorf("flattened poly = %d, want %d", len(polys), 128*bitPolys)
	}
	if _, err := BuildSRAM(ly, Tech180(), "BAD", 0, 4); err == nil {
		t.Error("zero rows should fail")
	}
}

func TestBuildRoutedBlock(t *testing.T) {
	ly := layout.New("rt")
	rng := rand.New(rand.NewSource(7))
	blk, err := BuildRoutedBlock(ly, Tech180(), "RT", 40000, 40000, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	m1 := len(blk.Shapes[layout.Metal1])
	m2 := len(blk.Shapes[layout.Metal2])
	vias := len(blk.Shapes[layout.Via1])
	if m1 == 0 || m2 == 0 || vias == 0 {
		t.Errorf("routing layers empty: m1=%d m2=%d via=%d", m1, m2, vias)
	}
	if m1 != vias || m2 != vias {
		t.Errorf("each net has one segment per layer and one via: %d/%d/%d", m1, m2, vias)
	}
	// No metal1 shorts: net segments must not overlap.
	segs := blk.Shapes[layout.Metal1]
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if segs[i].BBox().Overlaps(segs[j].BBox()) {
				t.Fatalf("metal1 segments %d and %d overlap", i, j)
			}
		}
	}
	if _, err := BuildRoutedBlock(ly, Tech180(), "BAD", 100, 100, 5, rng); err == nil {
		t.Error("too-small block should fail")
	}
}
