package gen

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// BuildSRAM generates a bit-cell and arrays it rows x cols with an array
// instance. The bit cell is a compact 6T-style footprint: two pairs of
// vertical poly gates at tight pitch, shared active, contacts, and
// metal1 bit lines — the densest, most proximity-stressed layout in a
// 2001 design, which is why SRAM drove OPC adoption.
func BuildSRAM(ly *layout.Layout, t Tech, name string, rows, cols int) (*layout.Cell, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: SRAM %q needs rows, cols >= 1", name)
	}
	bit, err := ly.NewCell(name + "_bit")
	if err != nil {
		return nil, err
	}
	// Bit cell footprint: 4 poly stripes at 90% of logic pitch.
	pitch := t.PolyPitch * 9 / 10
	cellW := 4 * pitch
	cellH := t.CellHeight / 2

	// Active: two horizontal stripes.
	bit.AddRect(layout.Active, geom.R(pitch/4, cellH/6, cellW-pitch/4, cellH/6+t.ActiveW))
	bit.AddRect(layout.Active, geom.R(pitch/4, cellH-cellH/6-t.ActiveW, cellW-pitch/4, cellH-cellH/6))

	// Four poly gates; the middle two are cross-coupled with short
	// line-ends facing each other (the classic SRAM OPC hotspot).
	for g := 0; g < 4; g++ {
		x := geom.Coord(g)*pitch + pitch/2 - t.PolyCD/2
		switch g {
		case 1:
			// Lower half only: line end in the middle of the cell.
			bit.AddRect(layout.Poly, geom.R(x, cellH/12, x+t.PolyCD, cellH/2-t.PolyCD))
		case 2:
			// Upper half only: facing line end.
			bit.AddRect(layout.Poly, geom.R(x, cellH/2+t.PolyCD, x+t.PolyCD, cellH-cellH/12))
		default:
			bit.AddRect(layout.Poly, geom.R(x, cellH/12, x+t.PolyCD, cellH-cellH/12))
		}
	}

	// Contacts at the four active/gate junction columns.
	for g := 0; g <= 4; g += 2 {
		cx := geom.Coord(g) * pitch
		if cx == 0 {
			cx = pitch / 3
		}
		if cx >= cellW {
			cx = cellW - pitch/3
		}
		bit.AddRect(layout.Contact, geom.RectFromCenter(geom.Pt(cx, cellH/6+t.ActiveW/2), t.ContactSize, t.ContactSize))
		bit.AddRect(layout.Contact, geom.RectFromCenter(geom.Pt(cx, cellH-cellH/6-t.ActiveW/2), t.ContactSize, t.ContactSize))
	}

	// Metal1 bit lines: two vertical stripes full height.
	bit.AddRect(layout.Metal1, geom.R(pitch/2-t.M1W/2, 0, pitch/2+t.M1W/2, cellH))
	bit.AddRect(layout.Metal1, geom.R(cellW-pitch/2-t.M1W/2, 0, cellW-pitch/2+t.M1W/2, cellH))

	arr, err := ly.NewCell(name)
	if err != nil {
		return nil, err
	}
	arr.PlaceArray(bit, geom.Identity(), cols, rows,
		geom.Pt(cellW, 0), geom.Pt(0, cellH))
	return arr, nil
}
