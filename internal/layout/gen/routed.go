package gen

import (
	"fmt"
	"math/rand"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// BuildRoutedBlock generates a random Manhattan-routed block: metal1
// runs horizontally on a track grid, metal2 vertically, with vias at
// layer changes. Each net is an L or Z route between two random grid
// points. Track utilization and net count scale with the area, so the
// runtime-scaling experiment can sweep block size.
func BuildRoutedBlock(ly *layout.Layout, t Tech, name string, w, h geom.Coord, nets int, rng *rand.Rand) (*layout.Cell, error) {
	if w <= 0 || h <= 0 || nets < 1 {
		return nil, fmt.Errorf("gen: routed block %q needs positive dimensions and nets", name)
	}
	c, err := ly.NewCell(name)
	if err != nil {
		return nil, err
	}
	pitch1 := t.M1W + t.M1S
	pitch2 := t.M2W + t.M2S
	tracksY := int(h / pitch1)
	tracksX := int(w / pitch2)
	if tracksX < 2 || tracksY < 2 {
		return nil, fmt.Errorf("gen: routed block %q too small for track grid", name)
	}
	// Occupancy per track keeps routes from shorting: each horizontal
	// track and vertical track records used intervals coarsely (whole
	// track claimed once used). Simple but yields legal, dense routing.
	usedH := make([]bool, tracksY)
	usedV := make([]bool, tracksX)

	viaSize := t.ContactSize
	placed := 0
	for attempt := 0; attempt < nets*10 && placed < nets; attempt++ {
		ht := rng.Intn(tracksY)
		vt := rng.Intn(tracksX)
		if usedH[ht] || usedV[vt] {
			continue
		}
		usedH[ht] = true
		usedV[vt] = true
		y := geom.Coord(ht)*pitch1 + pitch1/2
		x := geom.Coord(vt)*pitch2 + pitch2/2
		// Horizontal metal1 segment from a random start to the junction.
		x0 := geom.Coord(rng.Intn(tracksX))*pitch2 + pitch2/2
		if x0 == x {
			x0 = pitch2 / 2
		}
		lo, hi := x0, x
		if lo > hi {
			lo, hi = hi, lo
		}
		c.AddRect(layout.Metal1, geom.R(lo-t.M1W/2, y-t.M1W/2, hi+t.M1W/2, y+t.M1W/2))
		// Vertical metal2 segment from the junction to a random end.
		y1 := geom.Coord(rng.Intn(tracksY))*pitch1 + pitch1/2
		if y1 == y {
			y1 = pitch1 / 2
		}
		lo2, hi2 := y, y1
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		c.AddRect(layout.Metal2, geom.R(x-t.M2W/2, lo2-t.M2W/2, x+t.M2W/2, hi2+t.M2W/2))
		c.AddRect(layout.Via1, geom.RectFromCenter(geom.Pt(x, y), viaSize, viaSize))
		placed++
	}
	if placed == 0 {
		return nil, fmt.Errorf("gen: routed block %q could not place any net", name)
	}
	return c, nil
}
