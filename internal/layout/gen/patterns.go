package gen

import (
	"fmt"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// ThroughPitch builds the classic iso-dense test structure: groups of
// vertical lines of width cd at each requested pitch, plus one isolated
// line, all of the given length. Groups are separated by 5x the largest
// pitch so they do not optically interact. The center line of each group
// carries the measurement site.
//
// The returned sites measure line width with a horizontal cut at mid
// height.
func ThroughPitch(ly *layout.Layout, name string, l layout.Layer, cd geom.Coord, pitches []geom.Coord, length geom.Coord, linesPerGroup int) (*layout.Cell, []Site, error) {
	if cd <= 0 || length <= 0 || linesPerGroup < 1 {
		return nil, nil, fmt.Errorf("gen: bad through-pitch parameters cd=%d length=%d lines=%d", cd, length, linesPerGroup)
	}
	cell, err := ly.NewCell(name)
	if err != nil {
		return nil, nil, err
	}
	var maxPitch geom.Coord
	for _, p := range pitches {
		if p < cd {
			return nil, nil, fmt.Errorf("gen: pitch %d smaller than cd %d", p, cd)
		}
		if p > maxPitch {
			maxPitch = p
		}
	}
	gap := 5 * maxPitch
	if gap < 3000 {
		gap = 3000
	}
	var sites []Site
	x := geom.Coord(0)
	midY := length / 2
	for _, pitch := range pitches {
		groupStart := x
		for i := 0; i < linesPerGroup; i++ {
			lx := groupStart + geom.Coord(i)*pitch
			cell.AddRect(l, geom.R(lx, 0, lx+cd, length))
		}
		center := linesPerGroup / 2
		cx := groupStart + geom.Coord(center)*pitch + cd/2
		sites = append(sites, Site{
			Name:          fmt.Sprintf("p%d", pitch),
			Kind:          PitchSite,
			At:            geom.Pt(cx, midY),
			CutHorizontal: true,
			Want:          cd,
			Pitch:         pitch,
		})
		x = groupStart + geom.Coord(linesPerGroup-1)*pitch + cd + gap
	}
	// Isolated line at the far end.
	cell.AddRect(l, geom.R(x, 0, x+cd, length))
	sites = append(sites, Site{
		Name:          "iso",
		Kind:          IsoSite,
		At:            geom.Pt(x+cd/2, midY),
		CutHorizontal: true,
		Want:          cd,
	})
	return cell, sites, nil
}

// LineEndGap builds pairs of vertical lines facing tip-to-tip across a
// gap, one pair per gap value, optionally flanked by dense neighbors.
// The site measures the printed gap along the line axis (vertical cut).
func LineEndGap(ly *layout.Layout, name string, l layout.Layer, cd geom.Coord, gaps []geom.Coord, length geom.Coord, withNeighbors bool) (*layout.Cell, []Site, error) {
	if cd <= 0 || length <= 0 {
		return nil, nil, fmt.Errorf("gen: bad line-end parameters cd=%d length=%d", cd, length)
	}
	cell, err := ly.NewCell(name)
	if err != nil {
		return nil, nil, err
	}
	pitch := 2 * cd
	spacing := geom.Coord(4000)
	var sites []Site
	x := geom.Coord(0)
	for _, gap := range gaps {
		yLow0, yLow1 := geom.Coord(0), length
		yHigh0, yHigh1 := length+gap, 2*length+gap
		cell.AddRect(l, geom.R(x, yLow0, x+cd, yLow1))
		cell.AddRect(l, geom.R(x, yHigh0, x+cd, yHigh1))
		if withNeighbors {
			// Continuous flanking lines create the asymmetric environment
			// where line-end pullback is worst.
			cell.AddRect(l, geom.R(x-pitch, yLow0, x-pitch+cd, yHigh1))
			cell.AddRect(l, geom.R(x+pitch, yLow0, x+pitch+cd, yHigh1))
		}
		sites = append(sites, Site{
			Name:          fmt.Sprintf("gap%d", gap),
			Kind:          LineEndSite,
			At:            geom.Pt(x+cd/2, length+gap/2),
			CutHorizontal: false,
			Want:          gap,
		})
		x += spacing
	}
	return cell, sites, nil
}

// CornerTest builds L-shaped elbows of the given arm width; the site
// probes the width at the outer corner diagonal region with a horizontal
// cut just below the elbow.
func CornerTest(ly *layout.Layout, name string, l layout.Layer, cd geom.Coord, armLen geom.Coord) (*layout.Cell, []Site, error) {
	if cd <= 0 || armLen <= 2*cd {
		return nil, nil, fmt.Errorf("gen: bad corner parameters cd=%d arm=%d", cd, armLen)
	}
	cell, err := ly.NewCell(name)
	if err != nil {
		return nil, nil, err
	}
	// CCW L: vertical arm up, horizontal arm right.
	cell.AddPolygon(l, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(armLen, 0), geom.Pt(armLen, cd),
		geom.Pt(cd, cd), geom.Pt(cd, armLen), geom.Pt(0, armLen),
	})
	sites := []Site{
		{
			Name:          "corner-vert",
			Kind:          CornerSite,
			At:            geom.Pt(cd/2, cd+cd), // just above the elbow on the vertical arm
			CutHorizontal: true,
			Want:          cd,
		},
		{
			Name:          "corner-horz",
			Kind:          CornerSite,
			At:            geom.Pt(cd+cd, cd/2),
			CutHorizontal: false,
			Want:          cd,
		},
	}
	return cell, sites, nil
}

// ContactArray builds a rows x cols array of square contacts.
func ContactArray(ly *layout.Layout, name string, l layout.Layer, size, pitch geom.Coord, rows, cols int) (*layout.Cell, []Site, error) {
	if size <= 0 || pitch < size || rows < 1 || cols < 1 {
		return nil, nil, fmt.Errorf("gen: bad contact array size=%d pitch=%d", size, pitch)
	}
	cell, err := ly.NewCell(name)
	if err != nil {
		return nil, nil, err
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := geom.Coord(c) * pitch
			y := geom.Coord(r) * pitch
			cell.AddRect(l, geom.R(x, y, x+size, y+size))
		}
	}
	mid := geom.Pt(geom.Coord(cols/2)*pitch+size/2, geom.Coord(rows/2)*pitch+size/2)
	sites := []Site{{
		Name: "contact-center", Kind: ContactSite, At: mid,
		CutHorizontal: true, Want: size, Pitch: pitch,
	}}
	return cell, sites, nil
}

// DenseIso builds the minimal two-environment structure used by the
// process-window experiment: one dense group at the given pitch and one
// isolated line, both of width cd.
func DenseIso(ly *layout.Layout, name string, l layout.Layer, cd, pitch, length geom.Coord) (*layout.Cell, []Site, error) {
	return ThroughPitch(ly, name, l, cd, []geom.Coord{pitch}, length, 7)
}
