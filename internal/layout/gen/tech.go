// Package gen synthesizes the layouts the experiments run on: lithography
// test structures (through-pitch line arrays, line-end gaps, corner
// tests, contact arrays), a small standard-cell library with a random
// block placer, an SRAM array, and a randomly routed logic block. These
// stand in for the proprietary product layouts the reproduced paper's
// flow was exercised on; the impact metrics depend on layout statistics
// (pitch distribution, density, repetition), which these generators
// parameterize (see DESIGN.md, substitutions table).
package gen

import "goopc/internal/geom"

// Tech holds the drawn design rules the generators target. Dimensions
// are DBU (nm). The defaults model a 180 nm-node process printed with
// 248 nm lithography, the regime in which production OPC adoption
// happened.
type Tech struct {
	// PolyCD is the drawn transistor gate length.
	PolyCD geom.Coord
	// PolyPitch is the minimum poly pitch (contacted).
	PolyPitch geom.Coord
	// PolyEndcap is the poly extension past active.
	PolyEndcap geom.Coord
	// ActiveW is the default transistor width.
	ActiveW geom.Coord
	// ContactSize and ContactSpace rule the contact layer.
	ContactSize, ContactSpace geom.Coord
	// ContactEnclosure is poly/active/metal enclosure of contact.
	ContactEnclosure geom.Coord
	// M1W and M1S are metal1 width and space.
	M1W, M1S geom.Coord
	// M2W and M2S are metal2 width and space.
	M2W, M2S geom.Coord
	// CellHeight is the standard-cell height.
	CellHeight geom.Coord
	// RailW is the power rail width.
	RailW geom.Coord
}

// Tech180 returns the default 180 nm-node rule set.
func Tech180() Tech {
	return Tech{
		PolyCD:           180,
		PolyPitch:        560,
		PolyEndcap:       220,
		ActiveW:          660,
		ContactSize:      220,
		ContactSpace:     280,
		ContactEnclosure: 120,
		M1W:              280,
		M1S:              280,
		M2W:              320,
		M2S:              320,
		CellHeight:       5040,
		RailW:            560,
	}
}

// SiteKind tags a CD measurement site by the proximity environment it
// probes; the through-pitch and line-end experiments group results by
// these.
type SiteKind uint8

// Site environments.
const (
	DenseSite SiteKind = iota
	IsoSite
	PitchSite
	LineEndSite
	CornerSite
	ContactSite
)

func (k SiteKind) String() string {
	switch k {
	case DenseSite:
		return "dense"
	case IsoSite:
		return "iso"
	case PitchSite:
		return "pitch"
	case LineEndSite:
		return "line-end"
	case CornerSite:
		return "corner"
	case ContactSite:
		return "contact"
	}
	return "?"
}

// Site is one planned metrology location: a cut across a feature with
// the drawn (intended) dimension, or a line-end position probe.
type Site struct {
	Name string
	Kind SiteKind
	// At is the center of the measurement cut.
	At geom.Point
	// CutHorizontal is true when the cut runs along x (measuring a
	// vertical feature's width).
	CutHorizontal bool
	// Want is the drawn CD in DBU. For line-end sites Want is the drawn
	// gap between the two facing tips.
	Want geom.Coord
	// Pitch is the local pitch (0 for isolated).
	Pitch geom.Coord
}
