package gen

import (
	"fmt"
	"math/rand"

	"goopc/internal/geom"
	"goopc/internal/layout"
)

// CellLib is a generated standard-cell library.
type CellLib struct {
	Tech  Tech
	Cells []*layout.Cell
}

// BuildCellLib generates the standard-cell set (INV, BUF, NAND2, NOR2,
// AOI21, DFF) into the layout.
func BuildCellLib(ly *layout.Layout, t Tech) (*CellLib, error) {
	lib := &CellLib{Tech: t}
	specs := []struct {
		name  string
		gates int
		flop  bool
	}{
		{"INVX1", 1, false},
		{"BUFX2", 2, false},
		{"NAND2X1", 2, false},
		{"NOR2X1", 2, false},
		{"AOI21X1", 3, false},
		{"DFFX1", 8, true},
	}
	for _, sp := range specs {
		c, err := buildGateCell(ly, t, sp.name, sp.gates, sp.flop)
		if err != nil {
			return nil, err
		}
		lib.Cells = append(lib.Cells, c)
	}
	return lib, nil
}

// Cell returns the library cell with the name, or nil.
func (l *CellLib) Cell(name string) *layout.Cell {
	for _, c := range l.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// buildGateCell draws a schematic-free but geometrically realistic
// standard cell: power rails, N and P active stripes, vertical poly
// gates with endcaps, active and poly contacts, and metal1 straps with
// bends. The poly layer exhibits exactly the constructs OPC targets:
// dense lines at minimum pitch, line ends, and T-junction landing pads.
func buildGateCell(ly *layout.Layout, t Tech, name string, gates int, flop bool) (*layout.Cell, error) {
	if gates < 1 {
		return nil, fmt.Errorf("gen: cell %q needs gates >= 1", name)
	}
	c, err := ly.NewCell(name)
	if err != nil {
		return nil, err
	}
	width := geom.Coord(gates+1) * t.PolyPitch
	h := t.CellHeight

	// Power rails (metal1) along the top and bottom edges.
	c.AddRect(layout.Metal1, geom.R(0, 0, width, t.RailW))
	c.AddRect(layout.Metal1, geom.R(0, h-t.RailW, width, h))

	// Active stripes: NMOS lower, PMOS upper (PMOS wider).
	nA := geom.R(t.PolyPitch/2, t.RailW+400, width-t.PolyPitch/2, t.RailW+400+t.ActiveW)
	pW := t.ActiveW + t.ActiveW/2
	pA := geom.R(t.PolyPitch/2, h-t.RailW-400-pW, width-t.PolyPitch/2, h-t.RailW-400)
	c.AddRect(layout.Active, nA)
	c.AddRect(layout.Active, pA)
	c.AddRect(layout.NWell, geom.R(0, h/2, width, h))

	// Vertical poly gates crossing both actives, with endcaps.
	gateY0 := nA.Y0 - t.PolyEndcap
	gateY1 := pA.Y1 + t.PolyEndcap
	for g := 0; g < gates; g++ {
		x := geom.Coord(g+1)*t.PolyPitch - t.PolyCD/2
		c.AddRect(layout.Poly, geom.R(x, gateY0, x+t.PolyCD, gateY1))
		// Poly contact landing pad: a T-head on alternating gates, the
		// construct whose corner rounding OPC serifs address.
		if g%2 == 0 {
			padW := t.ContactSize + 2*t.ContactEnclosure
			pad := geom.R(x+t.PolyCD/2-padW/2, gateY1, x+t.PolyCD/2+padW/2, gateY1+padW)
			c.AddRect(layout.Poly, pad)
			c.AddRect(layout.Contact, geom.RectFromCenter(pad.Center(), t.ContactSize, t.ContactSize))
			// Metal1 landing over the poly contact, tall enough to merge
			// with the rail region and satisfy the M1 area rule.
			c.AddRect(layout.Metal1, geom.RectFromCenter(pad.Center(), t.M1W, 460))
		}
	}

	// Source/drain contacts between gates on both actives.
	for g := 0; g <= gates; g++ {
		cx := geom.Coord(g)*t.PolyPitch + t.PolyPitch/2
		if cx < nA.X0+t.ContactEnclosure || cx > nA.X1-t.ContactEnclosure {
			continue
		}
		c.AddRect(layout.Contact, geom.RectFromCenter(geom.Pt(cx, nA.Center().Y), t.ContactSize, t.ContactSize))
		c.AddRect(layout.Contact, geom.RectFromCenter(geom.Pt(cx, pA.Center().Y), t.ContactSize, t.ContactSize))
		// Metal1 landing pads over both contacts (straps merge into
		// them where present).
		c.AddRect(layout.Metal1, geom.RectFromCenter(geom.Pt(cx, nA.Center().Y), t.M1W, 460))
		c.AddRect(layout.Metal1, geom.RectFromCenter(geom.Pt(cx, pA.Center().Y), t.M1W, 460))
		// Metal1 strap from the contact toward the rail, with a bend on
		// alternating columns to create corner-rich routing.
		if g%2 == 0 {
			c.AddRect(layout.Metal1, geom.R(cx-t.M1W/2, t.RailW/2, cx+t.M1W/2, nA.Center().Y+t.M1W/2))
		} else {
			c.AddRect(layout.Metal1, geom.R(cx-t.M1W/2, nA.Center().Y-t.M1W/2, cx+t.M1W/2, nA.Center().Y+3*t.M1W))
			c.AddRect(layout.Metal1, geom.R(cx-t.M1W/2, nA.Center().Y+2*t.M1W, cx+2*t.M1W, nA.Center().Y+3*t.M1W))
		}
		if g%2 == 0 {
			c.AddRect(layout.Metal1, geom.R(cx-t.M1W/2, pA.Center().Y-t.M1W/2, cx+t.M1W/2, h-t.RailW/2))
		}
	}

	// Flops get an internal feedback loop: a horizontal poly route with
	// two bends (adds long horizontal poly plus jogs).
	if flop {
		y := h / 2
		c.AddRect(layout.Poly, geom.R(t.PolyPitch/2, y-t.PolyCD/2, width-t.PolyPitch/2, y+t.PolyCD/2))
		// The feedback jog lands on the first gate (poly route into the
		// gate line, as a real flop's internal feedback does). It stays
		// clear of the actives: field poly only.
		c.AddRect(layout.Poly, geom.R(t.PolyPitch/2, y-t.PolyCD/2, t.PolyPitch+t.PolyCD/2, y+2*t.PolyCD))
	}
	return c, nil
}

// BuildBlock places rows x cols random library cells in abutted rows
// (alternate rows flipped, as placers do) and returns the block cell.
// The same cell master appears many times, which is what makes the
// hierarchy experiments meaningful.
func BuildBlock(ly *layout.Layout, lib *CellLib, name string, rows, cols int, rng *rand.Rand) (*layout.Cell, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: block %q needs rows, cols >= 1", name)
	}
	block, err := ly.NewCell(name)
	if err != nil {
		return nil, err
	}
	t := lib.Tech
	for r := 0; r < rows; r++ {
		x := geom.Coord(0)
		y := geom.Coord(r) * t.CellHeight
		flip := r%2 == 1
		for cIdx := 0; cIdx < cols; cIdx++ {
			cell := lib.Cells[rng.Intn(len(lib.Cells))]
			w := cell.BBox().W()
			xf := geom.Identity()
			if flip {
				// Mirror about X then shift so the cell occupies
				// [y, y+height] with its own y=0 at the top.
				xf.Orient = geom.MX
				xf.Offset = geom.Pt(x, y+t.CellHeight)
			} else {
				xf.Offset = geom.Pt(x, y)
			}
			block.Place(cell, xf)
			x += w
		}
	}
	return block, nil
}
