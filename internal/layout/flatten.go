package layout

import (
	"goopc/internal/geom"
)

// Flatten returns all polygons of one layer under the cell, with every
// instance transform applied. The result is fully flat: hierarchy and
// arrays are expanded.
func Flatten(c *Cell, l Layer) []geom.Polygon {
	var out []geom.Polygon
	flattenInto(c, l, geom.Identity(), &out, nil)
	return out
}

// FlattenWindow returns the polygons of one layer under the cell whose
// transformed bounding boxes touch the window. Subtrees whose bounding
// boxes miss the window are pruned without expansion, so clip extraction
// from large layouts stays cheap.
func FlattenWindow(c *Cell, l Layer, window geom.Rect) []geom.Polygon {
	var out []geom.Polygon
	flattenInto(c, l, geom.Identity(), &out, &window)
	return out
}

func flattenInto(c *Cell, l Layer, x geom.Xform, out *[]geom.Polygon, window *geom.Rect) {
	if window != nil {
		cb := x.ApplyRect(c.BBox())
		if cb.Empty() || !cb.Touches(*window) {
			return
		}
	}
	for _, p := range c.Shapes[l] {
		q := x.ApplyPolygon(p)
		if window != nil && !q.BBox().Touches(*window) {
			continue
		}
		*out = append(*out, q)
	}
	for _, in := range c.Insts {
		child := in.Cell
		in.Each(func(ix geom.Xform) {
			flattenInto(child, l, x.Compose(ix), out, window)
		})
	}
}

// FlattenAll flattens every layer under the cell into a new single-cell
// layout with the same name. This is the "hierarchy destroyed" endpoint
// the paper's data-volume discussion warns about.
func FlattenAll(ly *Layout) (*Layout, error) {
	if ly.Top == nil {
		return nil, ErrNoTop
	}
	flat := New(ly.Name + "_flat")
	top := flat.MustCell(ly.Top.Name)
	flat.SetTop(top)
	for _, l := range collectLayers(ly.Top, map[*Cell]bool{}) {
		top.SetLayer(l, Flatten(ly.Top, l))
	}
	return flat, nil
}

func collectLayers(c *Cell, seen map[*Cell]bool) []Layer {
	if seen[c] {
		return nil
	}
	seen[c] = true
	set := map[Layer]bool{}
	for l := range c.Shapes {
		set[l] = true
	}
	for _, in := range c.Insts {
		for _, l := range collectLayers(in.Cell, seen) {
			set[l] = true
		}
	}
	out := make([]Layer, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sortLayers(out)
	return out
}

func sortLayers(ls []Layer) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// HierStats summarizes how much work hierarchy saves: figures stored vs
// figures after full expansion.
type HierStats struct {
	Cells           int
	Instances       int   // instance records (arrays count once)
	Placements      int64 // expanded placements
	StoredFigures   int   // polygons stored across cells
	ExpandedFigures int64 // polygons a full flatten would produce
	// CompressionRatio is ExpandedFigures / StoredFigures (1.0 when flat).
	CompressionRatio float64
}

// CollectHierStats walks the hierarchy under the layout's top cell.
func CollectHierStats(ly *Layout) (HierStats, error) {
	if ly.Top == nil {
		return HierStats{}, ErrNoTop
	}
	var st HierStats
	// Count stored figures over reachable cells once.
	reach := map[*Cell]bool{}
	var mark func(c *Cell)
	mark = func(c *Cell) {
		if reach[c] {
			return
		}
		reach[c] = true
		st.Cells++
		st.StoredFigures += c.LocalFigures()
		st.Instances += len(c.Insts)
		for _, in := range c.Insts {
			mark(in.Cell)
		}
	}
	mark(ly.Top)
	// Expanded figures: dynamic count over the instantiation tree.
	memo := map[*Cell]int64{}
	var expand func(c *Cell) int64
	expand = func(c *Cell) int64 {
		if v, ok := memo[c]; ok {
			return v
		}
		n := int64(c.LocalFigures())
		for _, in := range c.Insts {
			n += int64(in.Count()) * expand(in.Cell)
		}
		memo[c] = n
		return n
	}
	st.ExpandedFigures = expand(ly.Top)
	var place func(c *Cell) int64
	placeMemo := map[*Cell]int64{}
	place = func(c *Cell) int64 {
		if v, ok := placeMemo[c]; ok {
			return v
		}
		var n int64
		for _, in := range c.Insts {
			n += int64(in.Count()) * (1 + place(in.Cell))
		}
		placeMemo[c] = n
		return n
	}
	st.Placements = place(ly.Top)
	if st.StoredFigures > 0 {
		st.CompressionRatio = float64(st.ExpandedFigures) / float64(st.StoredFigures)
	}
	return st, nil
}
