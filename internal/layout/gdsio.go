package layout

import (
	"fmt"
	"io"

	"goopc/internal/gds"
	"goopc/internal/geom"
)

// ToGDS converts the layout to a GDSII library. Cell geometry becomes
// BOUNDARY elements; instances become SREF/AREF. Cells are emitted
// children-first so readers that resolve references on the fly work.
func ToGDS(ly *Layout) (*gds.Library, error) {
	if ly.Top == nil {
		return nil, ErrNoTop
	}
	lib := gds.NewLibrary(ly.Name)
	emitted := map[*Cell]bool{}
	var emit func(c *Cell) error
	emit = func(c *Cell) error {
		if emitted[c] {
			return nil
		}
		emitted[c] = true
		for _, in := range c.Insts {
			if err := emit(in.Cell); err != nil {
				return err
			}
		}
		s := lib.AddStruct(c.Name)
		for _, l := range c.Layers() {
			for _, p := range c.Shapes[l] {
				s.Add(&gds.Boundary{Layer: int16(l), XY: p.Clone()})
			}
		}
		for _, in := range c.Insts {
			strans := gds.StransFromOrient(in.Xform.Orient)
			if in.Xform.Mag > 1 {
				strans.Mag = float64(in.Xform.Mag)
			}
			if in.Cols > 1 || in.Rows > 1 {
				cols, rows := in.Cols, in.Rows
				if cols < 1 {
					cols = 1
				}
				if rows < 1 {
					rows = 1
				}
				s.Add(&gds.ARef{
					Name: in.Cell.Name, Strans: strans,
					Cols: int16(cols), Rows: int16(rows),
					Origin:  in.Xform.Offset,
					ColStep: in.ColStep, RowStep: in.RowStep,
				})
			} else {
				s.Add(&gds.SRef{Name: in.Cell.Name, Strans: strans, Origin: in.Xform.Offset})
			}
		}
		return nil
	}
	// Emit all registered cells (reachable first from top, then orphans)
	// so libraries round-trip completely.
	if err := emit(ly.Top); err != nil {
		return nil, err
	}
	for _, c := range ly.cells {
		if err := emit(c); err != nil {
			return nil, err
		}
	}
	return lib, nil
}

// FromGDS converts a GDSII library to a layout. PATH elements are
// expanded to boundary polygons; TEXT is dropped. The top cell is the
// structure that no other structure references (when unique), otherwise
// the last structure.
func FromGDS(lib *gds.Library) (*Layout, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	ly := New(lib.Name)
	// First pass: create cells.
	for _, s := range lib.Structs {
		if _, err := ly.NewCell(s.Name); err != nil {
			return nil, err
		}
	}
	referenced := map[string]bool{}
	for _, s := range lib.Structs {
		c := ly.Cell(s.Name)
		for _, el := range s.Elements {
			switch e := el.(type) {
			case *gds.Boundary:
				ring := geom.Polygon(e.XY)
				if err := ring.Validate(); err != nil {
					return nil, fmt.Errorf("layout: structure %q: %w", s.Name, err)
				}
				if !ring.IsCCW() {
					ring = ring.Reverse()
				}
				c.AddPolygon(Layer(e.Layer), ring)
			case *gds.Path:
				polys, err := e.Outline()
				if err != nil {
					return nil, fmt.Errorf("layout: structure %q: %w", s.Name, err)
				}
				for _, p := range polys {
					c.AddPolygon(Layer(e.Layer), p)
				}
			case *gds.SRef:
				x, err := e.Strans.Xform(e.Origin)
				if err != nil {
					return nil, fmt.Errorf("layout: structure %q ref %q: %w", s.Name, e.Name, err)
				}
				c.Place(ly.Cell(e.Name), x)
				referenced[e.Name] = true
			case *gds.ARef:
				x, err := e.Strans.Xform(e.Origin)
				if err != nil {
					return nil, fmt.Errorf("layout: structure %q aref %q: %w", s.Name, e.Name, err)
				}
				c.PlaceArray(ly.Cell(e.Name), x, int(e.Cols), int(e.Rows), e.ColStep, e.RowStep)
				referenced[e.Name] = true
			case *gds.Text:
				// Annotations carry no mask geometry.
			}
		}
	}
	var top *Cell
	nRoots := 0
	for _, s := range lib.Structs {
		if !referenced[s.Name] {
			top = ly.Cell(s.Name)
			nRoots++
		}
	}
	if nRoots != 1 && len(lib.Structs) > 0 {
		top = ly.Cell(lib.Structs[len(lib.Structs)-1].Name)
	}
	ly.SetTop(top)
	return ly, nil
}

// WriteGDS serializes the layout as a GDSII stream.
func WriteGDS(w io.Writer, ly *Layout) (int64, error) {
	lib, err := ToGDS(ly)
	if err != nil {
		return 0, err
	}
	return gds.Write(w, lib)
}

// ReadGDS parses a GDSII stream into a layout.
func ReadGDS(r io.Reader) (*Layout, error) {
	lib, err := gds.Read(r)
	if err != nil {
		return nil, err
	}
	return FromGDS(lib)
}
